package gridstrat

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func refModel(t testing.TB) *EmpiricalModel {
	t.Helper()
	tr, err := SynthesizeDataset("2006-IX")
	if err != nil {
		t.Fatal(err)
	}
	m, err := ModelFromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPublicAPISurface(t *testing.T) {
	if len(PaperDatasets()) != 12 {
		t.Fatalf("%d paper datasets", len(PaperDatasets()))
	}
	tr, err := SynthesizeDataset("2007-51")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "2007-51" || tr.Timeout != DefaultTimeout {
		t.Fatalf("bad trace header %q %v", tr.Name, tr.Timeout)
	}
	if _, err := SynthesizeDataset("nope"); err == nil {
		t.Fatal("unknown dataset should fail")
	}

	set, err := SynthesizeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Traces) != 13 {
		t.Fatalf("%d traces in set", len(set.Traces))
	}
}

func TestPublicRoundTrips(t *testing.T) {
	tr, err := SynthesizeDataset("2008-01")
	if err != nil {
		t.Fatal(err)
	}
	var csv, js bytes.Buffer
	if err := WriteTraceCSV(&csv, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceJSON(&js, tr); err != nil {
		t.Fatal(err)
	}
	a, err := ReadTraceCSV(&csv)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadTraceJSON(&js)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != tr.Len() || b.Len() != tr.Len() {
		t.Fatal("round trips lost records")
	}
}

func TestPublicStrategyPipeline(t *testing.T) {
	m := refModel(t)
	tInf, single := OptimizeSingle(m)
	if tInf <= 0 || single.EJ <= 0 {
		t.Fatalf("single optimization failed: %v %v", tInf, single.EJ)
	}
	if got := EJSingle(m, tInf); math.Abs(got-single.EJ) > 1e-9 {
		t.Fatal("EJSingle disagrees with optimizer")
	}
	if SigmaSingle(m, tInf) <= 0 {
		t.Fatal("σ must be positive")
	}
	_, mult := OptimizeMultiple(m, 4)
	if !(mult.EJ < single.EJ) {
		t.Fatal("b=4 should beat single")
	}
	p, del := OptimizeDelayed(m)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !(del.EJ < single.EJ) {
		t.Fatal("delayed should beat single")
	}
	ev, err := DelayedEvaluate(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.EJ-del.EJ) > 1e-9 {
		t.Fatal("DelayedEvaluate disagrees with optimizer")
	}
	if np := NParallelExpected(m, p); math.Abs(np-ev.Parallel) > 1e-9 {
		t.Fatal("NParallelExpected disagrees with evaluation")
	}
}

func TestPublicModelsFromLatenciesAndDistributions(t *testing.T) {
	m, err := NewEmpiricalModelFromLatencies([]float64{100, 200, 300, 400, 500}, 0.1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rho() != 0.1 {
		t.Fatalf("rho %v", m.Rho())
	}
	if _, err := NewEmpiricalModelFromLatencies(nil, 0.1, 1000); err == nil {
		t.Fatal("empty latencies should fail")
	}
}

func TestPublicSimulators(t *testing.T) {
	m := refModel(t)
	rng := rand.New(rand.NewSource(5))
	sim, err := SimulateSingle(m, 500, 20000, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := EJSingle(m, 500)
	if math.Abs(sim.EJ-want) > 6*sim.StdErr {
		t.Fatalf("MC %v±%v vs analytic %v", sim.EJ, sim.StdErr, want)
	}
	if _, err := SimulateMultiple(m, 3, 500, 5000, rng); err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateDelayed(m, DelayedParams{T0: 300, TInf: 450}, 5000, rng); err != nil {
		t.Fatal(err)
	}
}

func TestPublicGridSimulator(t *testing.T) {
	g, err := NewGrid(DefaultGrid(8, 31))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RunProbes(g, DefaultProbeConfig(200), "public")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 200 {
		t.Fatalf("%d probes", tr.Len())
	}
	if _, err := ModelFromTrace(tr); err != nil {
		t.Fatal(err)
	}
}

func TestRecommendBudgets(t *testing.T) {
	m := refModel(t)

	// Budget 1: only single qualifies (delayed needs N‖ > 1).
	r1, err := Recommend(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Strategy != StrategySingle {
		t.Fatalf("budget 1 picked %s", r1.Strategy)
	}
	if math.Abs(r1.Delta-1) > 1e-12 {
		t.Fatalf("single Δcost %v", r1.Delta)
	}

	// Budget 1.5: delayed fits, multiple (b=1) does not help.
	r15, err := Recommend(m, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if r15.Strategy != StrategyDelayed {
		t.Fatalf("budget 1.5 picked %s", r15.Strategy)
	}
	if !(r15.Eval.EJ < r1.Eval.EJ) {
		t.Fatal("delayed should beat single under budget 1.5")
	}
	if r15.Eval.Parallel > 1.5 {
		t.Fatalf("budget violated: N‖ = %v", r15.Eval.Parallel)
	}

	// Budget 5: multiple wins on raw EJ.
	r5, err := Recommend(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r5.Strategy != StrategyMultiple || r5.B != 5 {
		t.Fatalf("budget 5 picked %s b=%d", r5.Strategy, r5.B)
	}
	if !(r5.Eval.EJ < r15.Eval.EJ) {
		t.Fatal("multiple should beat delayed on EJ")
	}
	if !(r5.Delta > 1) {
		t.Fatal("multiple should cost more than single")
	}

	if _, err := Recommend(m, 0.5); err == nil {
		t.Fatal("budget < 1 should fail")
	}

	// Strings render.
	for _, r := range []Recommendation{r1, r15, r5} {
		if len(r.String()) == 0 || !strings.Contains(r.String(), "EJ=") {
			t.Fatalf("bad summary %q", r.String())
		}
	}
}

func TestRecommendCheapest(t *testing.T) {
	m := refModel(t)
	r, err := RecommendCheapest(m)
	if err != nil {
		t.Fatal(err)
	}
	// On 2006-IX the delayed strategy achieves Δcost < 1.
	if r.Strategy != StrategyDelayed {
		t.Fatalf("cheapest picked %s", r.Strategy)
	}
	if !(r.Delta < 1) {
		t.Fatalf("cheapest Δcost = %v", r.Delta)
	}
}

func TestExperimentsFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite is exercised in internal/experiments")
	}
	if raceEnabled {
		t.Skip("the full suite dominates the race build's runtime; the worker pool is race-checked by internal/experiments' TestRunAllWorkerPool")
	}
	c, err := NewExperiments()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteAllExperiments(c, dir, discard{}); err != nil {
		t.Fatal(err)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
