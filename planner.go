package gridstrat

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"gridstrat/internal/core"
	"gridstrat/internal/workload"
)

// Compile-time checks that the concrete strategies satisfy the
// cancellable Strategy surface the Planner threads its context through.
var (
	_ ctxStrategy = Single{}
	_ ctxStrategy = Multiple{}
	_ ctxStrategy = Delayed{}
)

// Planner is the high-level facade over the strategy models: it owns a
// latency model, a parallel-copy budget, an optional deadline and cost
// ceiling, a context for cancelling long optimizations, a random
// source for Monte Carlo, and an execution parallelism degree. All
// integral evaluations on the model are memoized behind the Planner,
// so repeated queries (Recommend, then Rank, then CompareDeadline on
// the same model) are cheap.
//
// A Planner is safe for concurrent use, including Simulate: the
// configured random source is only ever consumed under the Planner's
// lock to derive per-call master seeds, and everything downstream runs
// on derived, call-local RNG streams.
type Planner struct {
	model Model // memoized wrapper around the user's model
	cfg   plannerConfig

	mu sync.Mutex
	cc *core.CostContext // lazily established cost baseline

	// rngMu guards only the master-seed draws of Simulate. It is
	// separate from mu so a Simulate call never blocks behind the
	// (potentially seconds-long) first-query cost-baseline
	// optimization that costContext runs under mu.
	rngMu sync.Mutex
}

type plannerConfig struct {
	maxParallel float64
	deadline    float64
	budget      float64
	ctx         context.Context
	rng         Rand
	b           int
	parallelism int
}

// PlannerOption configures a Planner at construction.
type PlannerOption func(*plannerConfig) error

// WithMaxParallel sets the parallel-copy budget used by Recommend:
// only strategies whose average copy count stays within max compete.
// It must be finite and >= 1. The default is 2.
func WithMaxParallel(max float64) PlannerOption {
	return func(c *plannerConfig) error {
		if max < 1 || math.IsNaN(max) || math.IsInf(max, 1) {
			return fmt.Errorf("gridstrat: parallel budget %v must be finite and >= 1", max)
		}
		c.maxParallel = max
		return nil
	}
}

// WithDeadline sets the deadline (seconds) consumed by CompareDeadline
// and SmallestCollection.
func WithDeadline(d float64) PlannerOption {
	return func(c *plannerConfig) error {
		if !(d > 0) {
			return fmt.Errorf("gridstrat: deadline %v must be positive", d)
		}
		c.deadline = d
		return nil
	}
}

// WithBudget sets a Δcost ceiling (Eq. 6, relative to the single
// optimum): Recommend and Rank drop configurations whose
// infrastructure cost exceeds it. Zero (the default) means no
// ceiling.
func WithBudget(maxDelta float64) PlannerOption {
	return func(c *plannerConfig) error {
		if maxDelta < 0 || math.IsNaN(maxDelta) {
			return fmt.Errorf("gridstrat: cost budget %v must be >= 0 (0 clears the ceiling)", maxDelta)
		}
		c.budget = maxDelta
		return nil
	}
}

// WithContext attaches a context to the Planner: every long-running
// optimization and Monte Carlo simulation checks it and aborts with
// the context's error once it is done.
func WithContext(ctx context.Context) PlannerOption {
	return func(c *plannerConfig) error {
		if ctx == nil {
			return fmt.Errorf("gridstrat: nil context")
		}
		c.ctx = ctx
		return nil
	}
}

// WithRand sets the random source for the Planner's Monte Carlo
// entry points. The default is a deterministic source seeded with 1.
func WithRand(rng Rand) PlannerOption {
	return func(c *plannerConfig) error {
		if rng == nil {
			return errNilRand
		}
		c.rng = rng
		return nil
	}
}

// WithSeed sets the Planner's random source to a deterministic stream
// derived from the full 64-bit seed — shorthand for
// WithRand(NewSeededRand(seed)). Two Planners built with the same seed
// produce identical Simulate results for the same call sequence at any
// WithParallelism setting, which is what a service needs to make a
// simulation request reproducible from a wire-level seed field.
func WithSeed(seed uint64) PlannerOption {
	return func(c *plannerConfig) error {
		c.rng = core.NewSeededRand(seed)
		return nil
	}
}

// WithParallelism sets the number of worker goroutines the Planner's
// execution engine uses for grid-scan optimizations and Monte Carlo
// simulation. The default is runtime.GOMAXPROCS(0); n = 1 restores
// fully sequential execution on the calling goroutine. Results are
// independent of n: grid scans reduce in a fixed order and the
// sharded simulators derive per-shard RNG streams from a single seed
// draw, so a seeded run is bit-reproducible at any parallelism.
func WithParallelism(n int) PlannerOption {
	return func(c *plannerConfig) error {
		if n < 1 {
			return fmt.Errorf("gridstrat: parallelism %d must be >= 1", n)
		}
		c.parallelism = n
		return nil
	}
}

// WithCollectionSize sets the collection size b used where the Planner
// needs a default Multiple configuration (CompareDeadline, Rank with
// no arguments). It must be >= 1; the default is 2.
func WithCollectionSize(b int) PlannerOption {
	return func(c *plannerConfig) error {
		if err := core.ValidateB(b); err != nil {
			return fmt.Errorf("gridstrat: %w", err)
		}
		c.b = b
		return nil
	}
}

// NewPlanner builds a Planner over the latency model. The model's
// integral evaluations are memoized for the Planner's lifetime, so
// build one Planner per model and reuse it across queries.
func NewPlanner(m Model, opts ...PlannerOption) (*Planner, error) {
	if m == nil {
		return nil, fmt.Errorf("gridstrat: nil model")
	}
	cfg := plannerConfig{
		maxParallel: 2,
		ctx:         context.Background(),
		rng:         rand.New(rand.NewSource(1)),
		b:           2,
		parallelism: runtime.GOMAXPROCS(0),
	}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	return &Planner{model: newMemoModel(m), cfg: cfg}, nil
}

// Model returns the Planner's memoized model. It satisfies Model and
// can be passed to any free function in this package; evaluations made
// through it share the Planner's cache.
func (p *Planner) Model() Model { return p.model }

// costContext establishes (once) the single-resubmission cost
// baseline every Δcost figure is anchored on.
func (p *Planner) costContext() (*core.CostContext, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cc != nil {
		return p.cc, nil
	}
	cc, err := core.NewCostContextCtx(p.cfg.ctx, p.model, p.cfg.parallelism)
	if err != nil {
		return nil, err
	}
	p.cc = cc
	return cc, nil
}

// delayedRatioGrid is the t∞/t0 grid Recommend sweeps for
// budget-compatible delayed configurations (§6.2 of the paper).
var delayedRatioGrid = []float64{1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 1.9, 2.0}

// singleBaseline is the single-resubmission entry every advisor query
// starts from: the Δcost reference itself.
func (p *Planner) singleBaseline(cc *core.CostContext) Recommendation {
	return Recommendation{
		Strategy: StrategySingle,
		TInf:     cc.RefTimeout,
		Eval:     Evaluation{EJ: cc.RefEJ, Sigma: core.SigmaSingle(p.model, cc.RefTimeout), Parallel: 1},
		Delta:    1,
	}
}

// affordableB converts the parallel-copy budget to the largest
// affordable collection size without overflowing the int conversion
// for absurdly large budgets.
func affordableB(maxParallel float64) int {
	bf := math.Floor(maxParallel)
	if bf >= math.MaxInt32 {
		return math.MaxInt32
	}
	return int(bf)
}

// Recommend picks the strategy with the smallest expected total
// latency among those whose average parallel-copy count stays within
// the Planner's WithMaxParallel budget (and, when WithBudget is set,
// whose Δcost stays under the ceiling). With a budget below 2 only
// single resubmission and budget-compatible delayed configurations
// compete; larger budgets unlock multiple submission with b up to
// ⌊budget⌋.
func (p *Planner) Recommend() (Recommendation, error) {
	cc, err := p.costContext()
	if err != nil {
		return Recommendation{}, err
	}
	inBudget := func(delta float64) bool { return p.cfg.budget <= 0 || delta <= p.cfg.budget }

	best := Recommendation{Eval: Evaluation{EJ: math.Inf(1)}}
	if inBudget(1) {
		best = p.singleBaseline(cc)
	}

	// Multiple submission with the largest affordable collection.
	if b := affordableB(p.cfg.maxParallel); b >= 2 {
		tInf, ev, err := core.OptimizeMultipleCtx(p.cfg.ctx, p.model, b, p.cfg.parallelism)
		if err != nil {
			return Recommendation{}, err
		}
		delta := cc.Delta(ev.EJ, float64(b))
		if inBudget(delta) && ev.EJ < best.Eval.EJ {
			best = Recommendation{Strategy: StrategyMultiple, TInf: tInf, B: b, Eval: ev, Delta: delta}
		}
	}

	// Delayed: sweep ratios, keep budget-compatible configurations.
	for _, ratio := range delayedRatioGrid {
		dp, ev, err := core.OptimizeDelayedRatioCtx(p.cfg.ctx, p.model, ratio, p.cfg.parallelism)
		if err != nil {
			return Recommendation{}, err
		}
		if math.IsInf(ev.EJ, 1) || ev.Parallel > p.cfg.maxParallel {
			continue
		}
		delta := cc.Delta(ev.EJ, ev.Parallel)
		if inBudget(delta) && ev.EJ < best.Eval.EJ {
			best = Recommendation{Strategy: StrategyDelayed, Delayed: dp, Eval: ev, Delta: delta}
		}
	}
	if math.IsInf(best.Eval.EJ, 1) {
		return Recommendation{}, fmt.Errorf("gridstrat: no strategy fits Δcost budget %v", p.cfg.budget)
	}
	return best, nil
}

// classMaxB caps the collection sizes RecommendForClass enumerates —
// beyond this, extra copies buy vanishing deadline probability while
// the cost grows linearly.
const classMaxB = 8

// RecommendForClass plans one SLO class: among the configurations
// compatible with the class's parallel-copy and Δcost budgets (the
// optimized single baseline, multiple submission at every affordable
// collection size, and the budget-compatible delayed ratio sweep), it
// returns the cheapest one whose modeled deadline-hit probability
// P(J <= Policy.Deadline) reaches Policy.Target. When no candidate
// reaches the target, the planner reports infeasibility explicitly
// (Feasible = false) and returns the closest miss — it never silently
// recommends a configuration that misses the class SLO.
func (p *Planner) RecommendForClass(pol ClassPolicy) (ClassRecommendation, error) {
	if err := pol.Validate(); err != nil {
		return ClassRecommendation{}, fmt.Errorf("gridstrat: %w", err)
	}
	cc, err := p.costContext()
	if err != nil {
		return ClassRecommendation{}, err
	}
	inBudget := func(delta float64) bool { return pol.Budget <= 0 || delta <= pol.Budget }

	candidates := []Recommendation{p.singleBaseline(cc)}
	maxB := affordableB(pol.MaxParallel)
	if maxB > classMaxB {
		maxB = classMaxB
	}
	for b := 2; b <= maxB; b++ {
		tInf, ev, err := core.OptimizeMultipleCtx(p.cfg.ctx, p.model, b, p.cfg.parallelism)
		if err != nil {
			return ClassRecommendation{}, err
		}
		candidates = append(candidates, Recommendation{
			Strategy: StrategyMultiple, TInf: tInf, B: b, Eval: ev, Delta: cc.Delta(ev.EJ, float64(b))})
	}
	for _, ratio := range delayedRatioGrid {
		dp, ev, err := core.OptimizeDelayedRatioCtx(p.cfg.ctx, p.model, ratio, p.cfg.parallelism)
		if err != nil {
			return ClassRecommendation{}, err
		}
		if math.IsInf(ev.EJ, 1) || ev.Parallel > pol.MaxParallel {
			continue
		}
		candidates = append(candidates, Recommendation{
			Strategy: StrategyDelayed, Delayed: dp, Eval: ev, Delta: cc.Delta(ev.EJ, ev.Parallel)})
	}

	out := ClassRecommendation{Policy: pol, PHit: math.Inf(-1)}
	bestDelta := math.Inf(1)
	for _, cand := range candidates {
		if cand.Eval.Parallel > pol.MaxParallel || !inBudget(cand.Delta) {
			continue
		}
		cdf := cand.AsStrategy().CDF(p.model)
		if cdf == nil {
			continue
		}
		pHit := cdf(pol.Deadline)
		switch {
		case pHit >= pol.Target && (!out.Feasible ||
			cand.Delta < bestDelta ||
			(cand.Delta == bestDelta && cand.Eval.EJ < out.Rec.Eval.EJ)):
			// Cheapest configuration meeting the SLO; expected latency
			// breaks Δcost ties.
			out.Feasible = true
			out.Rec, out.PHit, bestDelta = cand, pHit, cand.Delta
		case !out.Feasible && (pHit > out.PHit ||
			(pHit == out.PHit && cand.Delta < bestDelta)):
			// Track the closest miss until something feasible shows up.
			out.Rec, out.PHit, bestDelta = cand, pHit, cand.Delta
		}
	}
	if math.IsInf(out.PHit, -1) {
		return ClassRecommendation{}, fmt.Errorf(
			"gridstrat: no configuration fits class %s budgets (parallel <= %v, Δcost <= %v)",
			pol.Class, pol.MaxParallel, pol.Budget)
	}
	return out, nil
}

// RecommendForClasses plans every policy (see RecommendForClass) and
// returns the per-class recommendations in input order.
func (p *Planner) RecommendForClasses(policies []ClassPolicy) ([]ClassRecommendation, error) {
	out := make([]ClassRecommendation, 0, len(policies))
	for _, pol := range policies {
		cr, err := p.RecommendForClass(pol)
		if err != nil {
			return nil, err
		}
		out = append(out, cr)
	}
	return out, nil
}

// PlanClasses allocates collection sizes to per-class application
// demands in priority order under a shared parallel-copy capacity —
// the class-aware SmallestMeetingDeadline (see
// workload.SmallestMeetingDeadlineContended). It returns the
// allocations (critical first) and the unused capacity.
func (p *Planner) PlanClasses(demands []ClassDemand, capacity float64, maxB int) ([]ClassAllocation, float64, error) {
	return workload.SmallestMeetingDeadlineContended(p.model, demands, capacity, maxB)
}

// RecommendCheapest returns the configuration minimizing Δcost — the
// infrastructure-friendly choice of the paper's §7: usually a delayed
// strategy with Δcost < 1 when the latency law rewards it, otherwise
// plain single resubmission.
func (p *Planner) RecommendCheapest() (Recommendation, error) {
	cc, err := p.costContext()
	if err != nil {
		return Recommendation{}, err
	}
	best := p.singleBaseline(cc)
	res, err := cc.OptimizeDelayedCostCtx(p.cfg.ctx, p.cfg.parallelism)
	if err != nil {
		return Recommendation{}, err
	}
	if res.Delta < best.Delta {
		best = Recommendation{Strategy: StrategyDelayed, Delayed: res.Params, Eval: res.Eval, Delta: res.Delta}
	}
	return best, nil
}

// Cost evaluates an explicitly parameterized strategy and returns its
// evaluation together with its Δcost relative to the Planner's single
// optimum — the paper's Eq. 6 for arbitrary configurations.
func (p *Planner) Cost(s Strategy) (Evaluation, float64, error) {
	cc, err := p.costContext()
	if err != nil {
		return Evaluation{}, 0, err
	}
	ev, err := s.Evaluate(p.model)
	if err != nil {
		return Evaluation{}, 0, err
	}
	return ev, cc.Delta(ev.EJ, ev.Parallel), nil
}

// CompareDeadline evaluates the deadline-hit probability P(J <=
// deadline) and the 95th-percentile latency of the optimized single,
// multiple (WithCollectionSize copies) and delayed strategies at the
// Planner's WithDeadline deadline.
func (p *Planner) CompareDeadline() (DeadlineReport, error) {
	if p.cfg.deadline <= 0 {
		return DeadlineReport{}, fmt.Errorf("gridstrat: no deadline configured (use WithDeadline)")
	}
	return core.CompareDeadlineCtx(p.cfg.ctx, p.model, p.cfg.deadline, p.cfg.b, p.cfg.parallelism)
}

// Optimize tunes a strategy's free parameters on the Planner's model
// under the Planner's context and parallelism.
func (p *Planner) Optimize(s Strategy) (Strategy, Evaluation, error) {
	cs, ok := s.(ctxStrategy)
	if !ok {
		return s.Optimize(p.model)
	}
	return cs.optimizeCtx(p.cfg.ctx, p.model, p.cfg.parallelism)
}

// Simulate replays a parameterized strategy against the Planner's
// model with the Planner's random source, context and parallelism.
// Each call draws one master seed from the configured source (under
// the Planner's lock, so concurrent Simulate calls are safe) and runs
// the sharded simulator on a stream derived from it; for a fixed seed
// and call order the result is bit-identical at any WithParallelism
// setting.
func (p *Planner) Simulate(s Strategy, runs int) (SimResult, error) {
	p.rngMu.Lock()
	seed := p.cfg.rng.Uint64()
	p.rngMu.Unlock()
	// Full-64-bit derivation: rand.NewSource would truncate the seed
	// modulo 2³¹−1 and could hand two calls identical streams.
	rng := core.NewSeededRand(seed)
	cs, ok := s.(ctxStrategy)
	if !ok {
		return s.Simulate(p.model, runs, rng)
	}
	return cs.simulateCtx(p.cfg.ctx, p.model, runs, rng, p.cfg.parallelism)
}

// resolve returns a fully parameterized version of s with its
// evaluation. Strategies with no timing parameters set (zero TInf and
// T0) are optimized first; anything with a nonzero timing parameter —
// including a negative or NaN one — is evaluated exactly as given, so
// a partially or invalidly specified strategy (e.g. Delayed with only
// T0) fails with its validation error rather than silently re-tuning
// the pinned knob.
func (p *Planner) resolve(s Strategy) (Strategy, Evaluation, error) {
	if s == nil {
		return nil, Evaluation{}, fmt.Errorf("gridstrat: nil strategy")
	}
	if params := s.Params(); params.TInf != 0 || params.T0 != 0 {
		ev, err := s.Evaluate(p.model)
		if err != nil {
			return nil, Evaluation{}, err
		}
		return s, ev, nil
	}
	return p.Optimize(s)
}

// RankedStrategy is one entry of Planner.Rank's ordering.
type RankedStrategy struct {
	Strategy Strategy   // tuned strategy
	Eval     Evaluation // EJ, σJ, N‖ at the tuned parameters
	Delta    float64    // Δcost relative to the single optimum
}

// Rank optimizes (when needed) and evaluates the given strategies on
// the Planner's model and returns them sorted by ascending expected
// latency. Called with no arguments it ranks the three paper
// strategies with the Planner's default collection size. When
// WithBudget is set, configurations over the Δcost ceiling are
// dropped.
func (p *Planner) Rank(strategies ...Strategy) ([]RankedStrategy, error) {
	if len(strategies) == 0 {
		strategies = Strategies(p.cfg.b)
	}
	cc, err := p.costContext()
	if err != nil {
		return nil, err
	}
	out := make([]RankedStrategy, 0, len(strategies))
	for _, s := range strategies {
		tuned, ev, err := p.resolve(s)
		if err != nil {
			return nil, err
		}
		delta := cc.Delta(ev.EJ, ev.Parallel)
		if p.cfg.budget > 0 && delta > p.cfg.budget {
			continue
		}
		out = append(out, RankedStrategy{Strategy: tuned, Eval: ev, Delta: delta})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Eval.EJ < out[j].Eval.EJ })
	return out, nil
}

// workloadLaw bridges a tuned Strategy to the makespan model's
// representation of its total-latency law.
func (p *Planner) workloadLaw(s Strategy, ev Evaluation) workload.Strategy {
	params := s.Params()
	hint := params.TInf
	if params.T0 > 0 {
		hint = params.T0
	}
	return workload.Strategy{
		Name: fmt.Sprint(s),
		CDF:  s.CDF(p.model),
		EJ:   ev.EJ,
		Load: ev.Parallel,
		Hint: hint,
	}
}

// EstimateMakespan computes the expected wall-clock time of a
// bag-of-tasks application under the Planner's recommended strategy
// (order-statistics wave model over the strategy's latency law).
func (p *Planner) EstimateMakespan(app Application) (MakespanEstimate, error) {
	rec, err := p.Recommend()
	if err != nil {
		return MakespanEstimate{}, err
	}
	return p.EstimateMakespanUnder(app, rec.AsStrategy())
}

// EstimateMakespanUnder computes the expected wall-clock time of the
// application under one explicit strategy; un-tuned strategies are
// optimized first.
func (p *Planner) EstimateMakespanUnder(app Application, s Strategy) (MakespanEstimate, error) {
	tuned, ev, err := p.resolve(s)
	if err != nil {
		return MakespanEstimate{}, err
	}
	return workload.EstimateMakespan(app, p.workloadLaw(tuned, ev))
}

// CompareMakespan evaluates several strategies on one application,
// returning estimates in input order; un-tuned strategies are
// optimized first.
func (p *Planner) CompareMakespan(app Application, strategies ...Strategy) ([]MakespanEstimate, error) {
	out := make([]MakespanEstimate, 0, len(strategies))
	for _, s := range strategies {
		est, err := p.EstimateMakespanUnder(app, s)
		if err != nil {
			return nil, err
		}
		out = append(out, est)
	}
	return out, nil
}

// SmallestCollection returns the smallest collection size b (up to
// maxB) whose analytic makespan meets the Planner's WithDeadline
// deadline, or 0 if none does.
func (p *Planner) SmallestCollection(app Application, maxB int) (int, MakespanEstimate, error) {
	if p.cfg.deadline <= 0 {
		return 0, MakespanEstimate{}, fmt.Errorf("gridstrat: no deadline configured (use WithDeadline)")
	}
	if maxB < 1 {
		return 0, MakespanEstimate{}, fmt.Errorf("gridstrat: maxB must be >= 1, got %d", maxB)
	}
	if err := app.Validate(); err != nil {
		return 0, MakespanEstimate{}, err
	}
	for b := 1; b <= maxB; b++ {
		est, err := p.EstimateMakespanUnder(app, Multiple{B: b})
		if err != nil {
			return 0, MakespanEstimate{}, err
		}
		if est.Makespan <= p.cfg.deadline {
			return b, est, nil
		}
	}
	return 0, MakespanEstimate{}, nil
}

// --- Memoized model ---

// memoModel wraps a Model and caches its pointwise and integral
// evaluations. The strategy optimizers hammer the same integrals at
// the same grid points across queries (Recommend's ratio sweep,
// CompareDeadline's three optimizations, Rank), so one Planner-level
// cache makes repeated queries on one model cheap. Sample is
// deliberately not cached.
//
// NaN arguments bypass the cache entirely: NaN != NaN, so a NaN key
// could never be hit again and every NaN query would leak one dead map
// entry. With NaN excluded, total memory is bounded by the five maps ×
// memoLimit entries each (each map is reset wholesale when full).
type memoModel struct {
	base Model

	mu     sync.Mutex
	ftilde map[float64]float64
	pow    map[powKey]float64
	upow   map[powKey]float64
	prod   map[prodKey]float64
	uprod  map[prodKey]float64
}

type powKey struct {
	t float64
	b int
}

type prodKey struct {
	t, shift float64
}

// memoLimit bounds each cache map; when one fills up it is reset
// rather than evicted entry-by-entry (optimizer grids are reused
// wholesale, so partial eviction buys nothing).
const memoLimit = 1 << 18

func newMemoModel(m Model) *memoModel {
	// Avoid double-wrapping when a Planner is built over another
	// Planner's model.
	if mm, ok := m.(*memoModel); ok {
		return mm
	}
	return &memoModel{
		base:   m,
		ftilde: make(map[float64]float64),
		pow:    make(map[powKey]float64),
		upow:   make(map[powKey]float64),
		prod:   make(map[prodKey]float64),
		uprod:  make(map[prodKey]float64),
	}
}

func (m *memoModel) Ftilde(t float64) float64 {
	if math.IsNaN(t) {
		return m.base.Ftilde(t)
	}
	return cached(&m.mu, &m.ftilde, t, func() float64 { return m.base.Ftilde(t) })
}

func (m *memoModel) Rho() float64        { return m.base.Rho() }
func (m *memoModel) UpperBound() float64 { return m.base.UpperBound() }

func (m *memoModel) IntOneMinusFPow(T float64, b int) float64 {
	if math.IsNaN(T) {
		return m.base.IntOneMinusFPow(T, b)
	}
	return cached(&m.mu, &m.pow, powKey{t: T, b: b}, func() float64 { return m.base.IntOneMinusFPow(T, b) })
}

func (m *memoModel) IntUOneMinusFPow(T float64, b int) float64 {
	if math.IsNaN(T) {
		return m.base.IntUOneMinusFPow(T, b)
	}
	return cached(&m.mu, &m.upow, powKey{t: T, b: b}, func() float64 { return m.base.IntUOneMinusFPow(T, b) })
}

// IntOneMinusFPowBatch implements core.BatchIntegrals so the swept
// grid scans stay available behind the Planner's memo layer: a
// batch-capable base model answers the whole ascending grid in one
// kernel sweep (identical to the scalar values, so bypassing the memo
// maps is safe); any other base model falls back to the memoized
// scalar method per point, keeping the memoization guarantees of
// repeated Planner queries intact.
func (m *memoModel) IntOneMinusFPowBatch(Ts []float64, b int) []float64 {
	if bi, ok := m.base.(core.BatchIntegrals); ok {
		return bi.IntOneMinusFPowBatch(Ts, b)
	}
	out := make([]float64, len(Ts))
	for i, t := range Ts {
		out[i] = m.IntOneMinusFPow(t, b)
	}
	return out
}

// IntUOneMinusFPowBatch implements core.BatchIntegrals (see
// IntOneMinusFPowBatch).
func (m *memoModel) IntUOneMinusFPowBatch(Ts []float64, b int) []float64 {
	if bi, ok := m.base.(core.BatchIntegrals); ok {
		return bi.IntUOneMinusFPowBatch(Ts, b)
	}
	out := make([]float64, len(Ts))
	for i, t := range Ts {
		out[i] = m.IntUOneMinusFPow(t, b)
	}
	return out
}

// IntProdBothBatch implements core.BatchIntegrals (see
// IntOneMinusFPowBatch).
func (m *memoModel) IntProdBothBatch(Ts []float64, shift float64) (plain, uweighted []float64) {
	if bi, ok := m.base.(core.BatchIntegrals); ok {
		return bi.IntProdBothBatch(Ts, shift)
	}
	plain = make([]float64, len(Ts))
	uweighted = make([]float64, len(Ts))
	for i, t := range Ts {
		plain[i] = m.IntProdOneMinusF(t, shift)
		uweighted[i] = m.IntUProdOneMinusF(t, shift)
	}
	return plain, uweighted
}

// IntProdBothOneMinusF implements core.ProdBothIntegrals through the
// memoized scalar cross terms: behind the Planner the memo maps are
// the cache of record, so a repeated query is free either way and a
// cold one stays a pair of cacheable scalar lookups.
func (m *memoModel) IntProdBothOneMinusF(T, shift float64) (plain, uweighted float64) {
	return m.IntProdOneMinusF(T, shift), m.IntUProdOneMinusF(T, shift)
}

func (m *memoModel) IntProdOneMinusF(T, shift float64) float64 {
	if math.IsNaN(T) || math.IsNaN(shift) {
		return m.base.IntProdOneMinusF(T, shift)
	}
	return cached(&m.mu, &m.prod, prodKey{t: T, shift: shift}, func() float64 { return m.base.IntProdOneMinusF(T, shift) })
}

func (m *memoModel) IntUProdOneMinusF(T, shift float64) float64 {
	if math.IsNaN(T) || math.IsNaN(shift) {
		return m.base.IntUProdOneMinusF(T, shift)
	}
	return cached(&m.mu, &m.uprod, prodKey{t: T, shift: shift}, func() float64 { return m.base.IntUProdOneMinusF(T, shift) })
}

// cached is the memoModel lookup-or-compute step: the value is
// computed outside the lock (duplicate concurrent computes are benign
// — the integrals are pure), and a full cache hitting memoLimit is
// reset wholesale. Callers must keep NaN out of k (see memoModel);
// this is the cache boundary the parallel grid scans hammer
// concurrently, so it must stay correct under -race.
func cached[K comparable](mu *sync.Mutex, slot *map[K]float64, k K, compute func() float64) float64 {
	mu.Lock()
	if v, ok := (*slot)[k]; ok {
		mu.Unlock()
		return v
	}
	mu.Unlock()
	v := compute()
	mu.Lock()
	if len(*slot) >= memoLimit {
		*slot = make(map[K]float64)
	}
	(*slot)[k] = v
	mu.Unlock()
	return v
}

func (m *memoModel) Sample(rng *rand.Rand) float64 { return m.base.Sample(rng) }
