package gridstrat

import (
	"context"
	"errors"
	"fmt"
	"math"

	"gridstrat/internal/core"
)

// Strategy is a job-submission strategy of the paper: a named,
// parameterized policy whose total-latency law is a functional of the
// latency model F̃R. The three concrete implementations are Single,
// Multiple and Delayed. A Strategy value is immutable; Optimize
// returns a new value carrying the tuned parameters.
//
// The zero value of each concrete type has no parameters set: Evaluate,
// CDF and Simulate require parameters (set explicitly or obtained from
// Optimize), while Optimize works from the zero value.
type Strategy interface {
	// Name identifies the strategy family.
	Name() StrategyName
	// Params returns the strategy's current parameters; zero fields are
	// unset.
	Params() StrategyParams
	// Evaluate computes EJ, σJ and N‖ at the strategy's parameters.
	Evaluate(m Model) (Evaluation, error)
	// CDF returns the distribution function of the total latency J at
	// the strategy's parameters, or nil when they are invalid.
	CDF(m Model) func(float64) float64
	// Optimize tunes the strategy's free parameters on the model and
	// returns the tuned strategy with its evaluation.
	Optimize(m Model) (Strategy, Evaluation, error)
	// Simulate replays the strategy runs times against latencies
	// sampled from the model — the Monte Carlo cross-check of Evaluate.
	Simulate(m Model, runs int, rng Rand) (SimResult, error)
}

// StrategyParams is the union of the three strategies' knobs; fields
// not used by a strategy are zero.
type StrategyParams struct {
	TInf float64 // timeout t∞ (all strategies)
	B    int     // collection size (Multiple)
	T0   float64 // submission period t0 (Delayed)
}

// ctxStrategy is the cancellable extension of Strategy implemented by
// all concrete types; the Planner threads its context through it.
type ctxStrategy interface {
	Strategy
	optimizeCtx(ctx context.Context, m Model, workers int) (Strategy, Evaluation, error)
	simulateCtx(ctx context.Context, m Model, runs int, rng Rand, workers int) (SimResult, error)
}

var errNilRand = errors.New("gridstrat: nil random source (use rand.New or Planner's WithRand)")

// --- Single resubmission (paper §4) ---

// Single is the single-resubmission strategy: cancel and resubmit at
// the timeout TInf. The zero value is the un-tuned strategy.
type Single struct {
	TInf float64
}

// Name returns StrategySingle.
func (s Single) Name() StrategyName { return StrategySingle }

// Params returns the timeout.
func (s Single) Params() StrategyParams { return StrategyParams{TInf: s.TInf} }

// String renders the strategy with its parameters.
func (s Single) String() string { return fmt.Sprintf("single(t∞=%.0fs)", s.TInf) }

func (s Single) validate() error {
	if !(s.TInf > 0) {
		return fmt.Errorf("gridstrat: single needs a positive timeout, got %v (call Optimize first?)", s.TInf)
	}
	return nil
}

// Evaluate computes Eq. 1–2 at the strategy's timeout.
func (s Single) Evaluate(m Model) (Evaluation, error) {
	if err := s.validate(); err != nil {
		return Evaluation{}, err
	}
	ej := core.EJSingle(m, s.TInf)
	if math.IsInf(ej, 1) {
		return Evaluation{}, fmt.Errorf("gridstrat: no success probability at t∞=%v", s.TInf)
	}
	return Evaluation{EJ: ej, Sigma: core.SigmaSingle(m, s.TInf), Parallel: 1}, nil
}

// CDF returns the total-latency law of the strategy, nil if the
// timeout is unset.
func (s Single) CDF(m Model) func(float64) float64 {
	if s.validate() != nil {
		return nil
	}
	return core.SingleCDF(m, s.TInf)
}

// Optimize minimizes EJ over the timeout (the paper's Eq. 1 optimum).
func (s Single) Optimize(m Model) (Strategy, Evaluation, error) {
	return s.optimizeCtx(context.Background(), m, 1)
}

func (s Single) optimizeCtx(ctx context.Context, m Model, workers int) (Strategy, Evaluation, error) {
	tInf, ev, err := core.OptimizeSingleCtx(ctx, m, workers)
	if err != nil {
		return nil, Evaluation{}, err
	}
	return Single{TInf: tInf}, ev, nil
}

// Simulate replays the strategy against sampled latencies.
func (s Single) Simulate(m Model, runs int, rng Rand) (SimResult, error) {
	return s.simulateCtx(context.Background(), m, runs, rng, 1)
}

func (s Single) simulateCtx(ctx context.Context, m Model, runs int, rng Rand, workers int) (SimResult, error) {
	if rng == nil {
		return SimResult{}, errNilRand
	}
	if err := s.validate(); err != nil {
		return SimResult{}, err
	}
	return core.SimulateSingleCtx(ctx, m, s.TInf, runs, rng, workers)
}

// --- Multiple submission (paper §5) ---

// Multiple is the multiple-submission strategy: B copies are submitted
// together, the rest cancelled when one starts, and the whole
// collection resubmitted at TInf. B must be set; Optimize tunes TInf.
type Multiple struct {
	B    int
	TInf float64
}

// Name returns StrategyMultiple.
func (s Multiple) Name() StrategyName { return StrategyMultiple }

// Params returns the collection size and timeout.
func (s Multiple) Params() StrategyParams { return StrategyParams{TInf: s.TInf, B: s.B} }

// String renders the strategy with its parameters.
func (s Multiple) String() string { return fmt.Sprintf("multiple(b=%d, t∞=%.0fs)", s.B, s.TInf) }

func (s Multiple) validate() error {
	if err := core.ValidateB(s.B); err != nil {
		return fmt.Errorf("gridstrat: %w", err)
	}
	if !(s.TInf > 0) {
		return fmt.Errorf("gridstrat: multiple needs a positive timeout, got %v (call Optimize first?)", s.TInf)
	}
	return nil
}

// Evaluate computes Eq. 3–4 at the strategy's parameters.
func (s Multiple) Evaluate(m Model) (Evaluation, error) {
	if err := s.validate(); err != nil {
		return Evaluation{}, err
	}
	ej := core.EJMultiple(m, s.B, s.TInf)
	if math.IsInf(ej, 1) {
		return Evaluation{}, fmt.Errorf("gridstrat: no success probability at t∞=%v", s.TInf)
	}
	return Evaluation{EJ: ej, Sigma: core.SigmaMultiple(m, s.B, s.TInf), Parallel: float64(s.B)}, nil
}

// CDF returns the total-latency law of the strategy, nil if the
// parameters are invalid.
func (s Multiple) CDF(m Model) func(float64) float64 {
	if s.validate() != nil {
		return nil
	}
	return core.MultipleCDF(m, s.B, s.TInf)
}

// Optimize minimizes EJ over the timeout for the fixed collection
// size B.
func (s Multiple) Optimize(m Model) (Strategy, Evaluation, error) {
	return s.optimizeCtx(context.Background(), m, 1)
}

func (s Multiple) optimizeCtx(ctx context.Context, m Model, workers int) (Strategy, Evaluation, error) {
	tInf, ev, err := core.OptimizeMultipleCtx(ctx, m, s.B, workers)
	if err != nil {
		return nil, Evaluation{}, err
	}
	return Multiple{B: s.B, TInf: tInf}, ev, nil
}

// Simulate replays the strategy against sampled latencies.
func (s Multiple) Simulate(m Model, runs int, rng Rand) (SimResult, error) {
	return s.simulateCtx(context.Background(), m, runs, rng, 1)
}

func (s Multiple) simulateCtx(ctx context.Context, m Model, runs int, rng Rand, workers int) (SimResult, error) {
	if rng == nil {
		return SimResult{}, errNilRand
	}
	if err := s.validate(); err != nil {
		return SimResult{}, err
	}
	return core.SimulateMultipleCtx(ctx, m, s.B, s.TInf, runs, rng, workers)
}

// --- Delayed resubmission (paper §6) ---

// Delayed is the delayed-resubmission strategy: a copy is submitted
// every T0 seconds while nothing has started, each copy cancelled TInf
// after its own submission (T0 < TInf <= 2·T0). The zero value is the
// un-tuned strategy; Optimize tunes both knobs.
type Delayed struct {
	T0   float64
	TInf float64
}

// Name returns StrategyDelayed.
func (s Delayed) Name() StrategyName { return StrategyDelayed }

// Params returns the period and timeout.
func (s Delayed) Params() StrategyParams { return StrategyParams{TInf: s.TInf, T0: s.T0} }

// String renders the strategy with its parameters.
func (s Delayed) String() string { return fmt.Sprintf("delayed(t0=%.0fs, t∞=%.0fs)", s.T0, s.TInf) }

// DelayedParams returns the parameters in the core representation.
func (s Delayed) DelayedParams() DelayedParams { return DelayedParams{T0: s.T0, TInf: s.TInf} }

// Evaluate computes the exact EJ, σJ and E[N‖] at the strategy's
// parameters.
func (s Delayed) Evaluate(m Model) (Evaluation, error) {
	return core.DelayedEvaluate(m, s.DelayedParams())
}

// CDF returns the total-latency law of the strategy, nil if the
// parameters are invalid.
func (s Delayed) CDF(m Model) func(float64) float64 {
	p := s.DelayedParams()
	if p.Validate() != nil {
		return nil
	}
	return core.DelayedCDF(m, p)
}

// Optimize minimizes the exact EJ over (t0, t∞) subject to
// t0 < t∞ <= 2·t0.
func (s Delayed) Optimize(m Model) (Strategy, Evaluation, error) {
	return s.optimizeCtx(context.Background(), m, 1)
}

func (s Delayed) optimizeCtx(ctx context.Context, m Model, workers int) (Strategy, Evaluation, error) {
	p, ev, err := core.OptimizeDelayedCtx(ctx, m, workers)
	if err != nil {
		return nil, Evaluation{}, err
	}
	return Delayed{T0: p.T0, TInf: p.TInf}, ev, nil
}

// Simulate replays the strategy against sampled latencies.
func (s Delayed) Simulate(m Model, runs int, rng Rand) (SimResult, error) {
	return s.simulateCtx(context.Background(), m, runs, rng, 1)
}

func (s Delayed) simulateCtx(ctx context.Context, m Model, runs int, rng Rand, workers int) (SimResult, error) {
	if rng == nil {
		return SimResult{}, errNilRand
	}
	return core.SimulateDelayedCtx(ctx, m, s.DelayedParams(), runs, rng, workers)
}

// Strategies returns one un-tuned strategy per family — the natural
// argument list for Planner.Rank. b is the collection size of the
// Multiple entry.
func Strategies(b int) []Strategy {
	return []Strategy{Single{}, Multiple{B: b}, Delayed{}}
}

// AsStrategy converts the recommendation into the equivalent typed
// Strategy carrying the tuned parameters.
func (r Recommendation) AsStrategy() Strategy {
	switch r.Strategy {
	case StrategyMultiple:
		return Multiple{B: r.B, TInf: r.TInf}
	case StrategyDelayed:
		return Delayed{T0: r.Delayed.T0, TInf: r.Delayed.TInf}
	default:
		return Single{TInf: r.TInf}
	}
}
