package gridstrat

// The bench-snapshot harness records the repo's performance
// trajectory. The PR 2 snapshot (BENCH_PR2.json, committed) compared
// the sequential vs parallel execution engine; this PR 3 snapshot
// compares the PR 2 evaluation paths (O(n) ECDF integral walkers,
// binary-search bootstrap sampling) against the kernelized paths
// (prefix-sum integral kernels, swept grid scans, O(1) inverse-CDF
// sampling) on the same workloads. The JSON schema is unchanged; for
// BENCH_PR3.json the `sequential_ns` field holds the PR 2 path and
// `parallel_ns` the kernelized path, both at workers = 1, so `speedup`
// is the pure algorithmic win. It is gated behind an environment
// variable so regular test runs stay fast:
//
//	GRIDSTRAT_BENCH_SNAPSHOT=1 go test -run TestBenchSnapshot -v .
//
// CI runs it on every push and uploads the JSON as a build artifact
// (see .github/workflows/ci.yml). Every timed pair also cross-checks
// its two variants' results: integrals to 1e-12 and seeded Monte
// Carlo bit-for-bit, so the snapshot doubles as the exactness gate of
// the kernel rewrite.

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"gridstrat/internal/core"
	"gridstrat/internal/experiments"
	"gridstrat/internal/stats"
)

type benchSnapshot struct {
	Schema     string           `json:"schema"`
	PR         int              `json:"pr"`
	Generated  string           `json:"generated"`
	GoVersion  string           `json:"go"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	NumCPU     int              `json:"num_cpu"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Benchmarks []benchSnapEntry `json:"benchmarks"`
}

type benchSnapEntry struct {
	Name         string  `json:"name"`
	SequentialNS int64   `json:"sequential_ns"` // PR 2 path (walkers)
	ParallelNS   int64   `json:"parallel_ns"`   // kernelized path
	Speedup      float64 `json:"speedup"`
}

// walkerModel is the PR 2 evaluation path frozen as a Model: every
// integral runs the O(n) reference walker and every bootstrap draw the
// binary-search Quantile path. It deliberately does not implement
// BatchIntegrals/ProdBothIntegrals, so the optimizers treat it exactly
// as they treated models before the kernel rewrite.
type walkerModel struct {
	e       *stats.ECDF
	rho, ub float64
}

func (m walkerModel) Ftilde(t float64) float64 { return (1 - m.rho) * m.e.Eval(t) }
func (m walkerModel) Rho() float64             { return m.rho }
func (m walkerModel) UpperBound() float64      { return m.ub }
func (m walkerModel) IntOneMinusFPow(T float64, b int) float64 {
	return m.e.IntegralOneMinusFPowWalk(T, 1-m.rho, b)
}
func (m walkerModel) IntUOneMinusFPow(T float64, b int) float64 {
	return m.e.IntegralUOneMinusFPowWalk(T, 1-m.rho, b)
}
func (m walkerModel) IntProdOneMinusF(T, shift float64) float64 {
	return m.e.IntegralProdOneMinusFWalk(T, shift, 1-m.rho)
}
func (m walkerModel) IntUProdOneMinusF(T, shift float64) float64 {
	return m.e.IntegralUProdOneMinusFWalk(T, shift, 1-m.rho)
}
func (m walkerModel) Sample(rng *rand.Rand) float64 {
	if rng.Float64() < m.rho {
		return core.Inf
	}
	return m.e.Quantile(rng.Float64()) // pre-table sampler
}

// timeIt returns the best-of-`reps` wall time of f.
func timeIt(t *testing.T, reps int, f func() error) int64 {
	t.Helper()
	best := int64(0)
	for r := 0; r < reps; r++ {
		start := time.Now()
		if err := f(); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start).Nanoseconds(); best == 0 || d < best {
			best = d
		}
	}
	return best
}

func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestBenchSnapshot(t *testing.T) {
	if os.Getenv("GRIDSTRAT_BENCH_SNAPSHOT") == "" {
		t.Skip("set GRIDSTRAT_BENCH_SNAPSHOT=1 to record the perf snapshot (writes BENCH_PR3.json)")
	}
	out := os.Getenv("GRIDSTRAT_BENCH_OUT")
	if out == "" {
		out = "BENCH_PR3.json"
	}

	snap := benchSnapshot{
		Schema:     "gridstrat-bench-snapshot/v1",
		PR:         3,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	record := func(name string, walkNS, kernNS int64) {
		snap.Benchmarks = append(snap.Benchmarks, benchSnapEntry{
			Name:         name,
			SequentialNS: walkNS,
			ParallelNS:   kernNS,
			Speedup:      float64(walkNS) / float64(kernNS),
		})
		t.Logf("%s: PR2 path %v, kernelized %v (%.2fx)",
			name, time.Duration(walkNS), time.Duration(kernNS), float64(walkNS)/float64(kernNS))
	}

	ctx := context.Background()
	ec, err := experiments.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	kern, err := ec.Model(experiments.ReferenceDataset)
	if err != nil {
		t.Fatal(err)
	}
	walk := walkerModel{e: kern.ECDF(), rho: kern.Rho(), ub: kern.UpperBound()}

	// Grid-scan ablation: the multiple-submission timeout optimization
	// (the acceptance benchmark). Both paths run at workers = 1; the
	// results must agree to 1e-12.
	var tW, tK float64
	var evW, evK Evaluation
	optWalk := timeIt(t, 3, func() error {
		var err error
		tW, evW, err = core.OptimizeMultipleCtx(ctx, walk, 5, 1)
		return err
	})
	optKern := timeIt(t, 3, func() error {
		var err error
		tK, evK, err = core.OptimizeMultipleCtx(ctx, kern, 5, 1)
		return err
	})
	if !relClose(tW, tK, 1e-9) || !relClose(evW.EJ, evK.EJ, 1e-12) || !relClose(evW.Sigma, evK.Sigma, 1e-12) {
		t.Fatalf("kernelized optimum diverged: walker (%v, %+v) vs kernel (%v, %+v)", tW, evW, tK, evK)
	}
	record("AblationOptimizeMultipleB5", optWalk, optKern)

	// Figure-2 curve ablation: a 2000-point EJ(t∞) tabulation.
	var ejW, ejK []float64
	curveWalk := timeIt(t, 3, func() error {
		_, ejW = core.MultipleCurve(walk, 5, 2000, 2000)
		return nil
	})
	curveKern := timeIt(t, 3, func() error {
		_, ejK = core.MultipleCurve(kern, 5, 2000, 2000)
		return nil
	})
	for i := range ejW {
		if !relClose(ejW[i], ejK[i], 1e-12) {
			t.Fatalf("MultipleCurve[%d] diverged: %v vs %v", i, ejW[i], ejK[i])
		}
	}
	record("AblationMultipleCurveB5x2000", curveWalk, curveKern)

	// Delayed-surface ablation: the (t0, t∞) scan behind Figure 5. All
	// delayed integrals have b = 1, where kernel and walker are
	// bit-identical, so the optima must match exactly.
	var pW, pK DelayedParams
	surfWalk := timeIt(t, 1, func() error {
		var err error
		pW, _, err = core.OptimizeDelayedCtx(ctx, walk, 1)
		return err
	})
	surfKern := timeIt(t, 1, func() error {
		var err error
		pK, _, err = core.OptimizeDelayedCtx(ctx, kern, 1)
		return err
	})
	if pW != pK {
		t.Fatalf("delayed surface optimum diverged: %+v vs %+v", pW, pK)
	}
	record("AblationDelayedSurfaceScan", surfWalk, surfKern)

	// Monte Carlo ablation: the sampler acceptance criterion — the O(1)
	// inverse-CDF table must reproduce the binary-search draw stream
	// bit for bit, so two seeded replays must be identical structs.
	const mcRuns = 400000
	var mcW, mcK SimResult
	mcWalk := timeIt(t, 3, func() error {
		r, err := core.SimulateMultipleCtx(ctx, walk, 3, 600, mcRuns, rand.New(rand.NewSource(1)), 1)
		mcW = r
		return err
	})
	mcKern := timeIt(t, 3, func() error {
		r, err := core.SimulateMultipleCtx(ctx, kern, 3, 600, mcRuns, rand.New(rand.NewSource(1)), 1)
		mcK = r
		return err
	})
	if mcW != mcK {
		t.Fatalf("seeded Monte Carlo diverged across samplers: %+v vs %+v", mcW, mcK)
	}
	record("AblationMonteCarloMultiple400k", mcWalk, mcKern)

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d CPUs, GOMAXPROCS %d)", out, snap.NumCPU, snap.GOMAXPROCS)
}
