package gridstrat

// The bench-snapshot harness records the first point of the repo's
// performance trajectory: wall-clock times of the sequential
// (workers = 1) vs parallel (all cores) execution engine on the
// paper-evaluation workloads, written as BENCH_PR2.json. It is gated
// behind an environment variable so regular test runs stay fast:
//
//	GRIDSTRAT_BENCH_SNAPSHOT=1 go test -run TestBenchSnapshot -v .
//
// CI runs it on every push and uploads the JSON as a build artifact
// (see .github/workflows/ci.yml). Because the sharded simulators and
// parallel grid scans are bit-reproducible at any worker count, the
// two timed variants of each workload also cross-check each other's
// results.

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"gridstrat/internal/core"
	"gridstrat/internal/experiments"
)

type benchSnapshot struct {
	Schema     string           `json:"schema"`
	PR         int              `json:"pr"`
	Generated  string           `json:"generated"`
	GoVersion  string           `json:"go"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	NumCPU     int              `json:"num_cpu"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Benchmarks []benchSnapEntry `json:"benchmarks"`
}

type benchSnapEntry struct {
	Name         string  `json:"name"`
	SequentialNS int64   `json:"sequential_ns"`
	ParallelNS   int64   `json:"parallel_ns"`
	Speedup      float64 `json:"speedup"`
}

// timeIt returns the best-of-`reps` wall time of f.
func timeIt(t *testing.T, reps int, f func() error) int64 {
	t.Helper()
	best := int64(0)
	for r := 0; r < reps; r++ {
		start := time.Now()
		if err := f(); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start).Nanoseconds(); best == 0 || d < best {
			best = d
		}
	}
	return best
}

func TestBenchSnapshot(t *testing.T) {
	if os.Getenv("GRIDSTRAT_BENCH_SNAPSHOT") == "" {
		t.Skip("set GRIDSTRAT_BENCH_SNAPSHOT=1 to record the perf snapshot (writes BENCH_PR2.json)")
	}
	out := os.Getenv("GRIDSTRAT_BENCH_OUT")
	if out == "" {
		out = "BENCH_PR2.json"
	}

	snap := benchSnapshot{
		Schema:     "gridstrat-bench-snapshot/v1",
		PR:         2,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	record := func(name string, seqNS, parNS int64) {
		snap.Benchmarks = append(snap.Benchmarks, benchSnapEntry{
			Name:         name,
			SequentialNS: seqNS,
			ParallelNS:   parNS,
			Speedup:      float64(seqNS) / float64(parNS),
		})
		t.Logf("%s: sequential %v, parallel %v (%.2fx)",
			name, time.Duration(seqNS), time.Duration(parNS), float64(seqNS)/float64(parNS))
	}

	// Monte Carlo ablation: one large multiple-submission replay. The
	// two variants must agree bit-for-bit (sharding contract).
	m, err := experiments.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	model, err := m.Model(experiments.ReferenceDataset)
	if err != nil {
		t.Fatal(err)
	}
	const mcRuns = 400000
	var seqRes, parRes SimResult
	mcSeq := timeIt(t, 3, func() error {
		r, err := core.SimulateMultipleCtx(context.Background(), model, 3, 600, mcRuns, rand.New(rand.NewSource(1)), 1)
		seqRes = r
		return err
	})
	mcPar := timeIt(t, 3, func() error {
		r, err := core.SimulateMultipleCtx(context.Background(), model, 3, 600, mcRuns, rand.New(rand.NewSource(1)), 0)
		parRes = r
		return err
	})
	if seqRes != parRes {
		t.Fatalf("sharded MC diverged: sequential %+v vs parallel %+v", seqRes, parRes)
	}
	record("AblationMonteCarloMultiple400k", mcSeq, mcPar)

	// Optimizer ablation: the multiple-submission timeout scan.
	optSeq := timeIt(t, 3, func() error {
		_, _, err := core.OptimizeMultipleCtx(context.Background(), model, 5, 1)
		return err
	})
	optPar := timeIt(t, 3, func() error {
		_, _, err := core.OptimizeMultipleCtx(context.Background(), model, 5, 0)
		return err
	})
	record("AblationOptimizeMultipleB5", optSeq, optPar)

	// Full evaluation harness. One warm-up pass fills the Context's
	// shared model/cost caches so the timed passes compare the engine,
	// not cache population order.
	if _, err := experiments.RunAll(m, io.Discard, 0); err != nil {
		t.Fatal(err)
	}
	runSeq := timeIt(t, 1, func() error {
		_, err := experiments.RunAll(m, io.Discard, 1)
		return err
	})
	runPar := timeIt(t, 1, func() error {
		_, err := experiments.RunAll(m, io.Discard, 0)
		return err
	})
	record("RunAll", runSeq, runPar)

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d CPUs, GOMAXPROCS %d)", out, snap.NumCPU, snap.GOMAXPROCS)
}
