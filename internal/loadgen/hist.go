package loadgen

import (
	"math"
	"sync/atomic"
	"time"
)

// hist is a concurrent log-bucketed latency histogram in the HDR
// style: fixed memory, lock-free recording, bounded relative error.
// Buckets are spaced geometrically from histMin to histMax with
// histBucketsPerDecade buckets per decade, giving ~5.9% worst-case
// relative error per reported quantile — far below the run-to-run
// noise of any wire benchmark — while recording costs one atomic add.
const (
	histMin              = 100 * time.Nanosecond
	histMax              = 100 * time.Second
	histBucketsPerDecade = 40
)

var (
	histDecades = int(math.Log10(float64(histMax) / float64(histMin)))
	histBuckets = histDecades*histBucketsPerDecade + 2 // + underflow & overflow
	histGamma   = math.Pow(10, 1.0/histBucketsPerDecade)
	histLogG    = math.Log(histGamma)
)

type hist struct {
	counts []atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Int64 // summed nanoseconds, for the mean
}

func newHist() *hist {
	return &hist{counts: make([]atomic.Uint64, histBuckets)}
}

// bucketOf maps a duration to its bucket index: 0 is underflow,
// len-1 overflow.
func bucketOf(d time.Duration) int {
	if d < histMin {
		return 0
	}
	if d >= histMax {
		return histBuckets - 1
	}
	i := 1 + int(math.Log(float64(d)/float64(histMin))/histLogG)
	if i > histBuckets-2 {
		i = histBuckets - 2
	}
	return i
}

// boundOf returns the upper bound of bucket i (the value a quantile
// falling in it reports).
func boundOf(i int) time.Duration {
	if i <= 0 {
		return histMin
	}
	if i >= histBuckets-1 {
		return histMax
	}
	return time.Duration(float64(histMin) * math.Pow(histGamma, float64(i)))
}

func (h *hist) record(d time.Duration) {
	h.counts[bucketOf(d)].Add(1)
	h.total.Add(1)
	h.sum.Add(int64(d))
}

// quantile reports the q-th (0 < q ≤ 1) latency quantile.
func (h *hist) quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			return boundOf(i)
		}
	}
	return histMax
}

func (h *hist) count() uint64 { return h.total.Load() }

func (h *hist) mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(n))
}
