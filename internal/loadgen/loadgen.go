// Package loadgen is gridstrat's wire-level load driver: a concurrent
// open- or closed-loop generator of mixed planning traffic (single
// recommends, batch plans, observation ingests) against a gridstratd
// or gridstratrouter address, recording latency in an HDR-style
// log-bucketed histogram and reporting p50/p95/p99/throughput as a
// JSON-ready Report. cmd/loadgen is the CLI wrapper; the wire bench
// snapshot (bench_wire_test.go) drives it in-process.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"gridstrat/internal/server"
)

// Mix weighs the scenario blend; zero-sum defaults to singles only.
type Mix struct {
	Single float64 `json:"single"`
	Batch  float64 `json:"batch"`
	Ingest float64 `json:"ingest"`
}

// ClassMix weighs the SLO-class blend stamped on requests; zero-sum
// defaults to all-standard.
type ClassMix struct {
	Critical  float64 `json:"critical"`
	Standard  float64 `json:"standard"`
	Sheddable float64 `json:"sheddable"`
}

// Config tunes one load run.
type Config struct {
	// BaseURL targets the daemon or router (e.g. "http://127.0.0.1:8372").
	BaseURL string
	// HTTPClient issues the traffic (default: pooled transport, 30s
	// timeout).
	HTTPClient *http.Client
	// Model is the model every operation targets (required).
	Model string
	// Duration is the measured interval (default 5s).
	Duration time.Duration
	// Warmup runs traffic without recording first (default 0).
	Warmup time.Duration
	// Workers is the concurrency degree (default 8). Closed loop:
	// each worker issues back-to-back requests. Open loop: workers
	// drain the paced arrival queue.
	Workers int
	// TargetQPS > 0 switches to open-loop arrivals at that rate;
	// 0 (default) is closed-loop.
	TargetQPS float64
	// BatchSize is the item count of each batch operation (default 64).
	BatchSize int
	// Mix weighs single/batch/ingest operations (default all-single).
	Mix Mix
	// ClassMix weighs the SLO classes (default all-standard).
	ClassMix ClassMix
	// IngestBatch is the records per ingest operation (default 64).
	IngestBatch int
	// Seed makes the scenario/class draws reproducible (default 1).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.IngestBatch <= 0 {
		c.IngestBatch = 64
	}
	if c.Mix.Single+c.Mix.Batch+c.Mix.Ingest <= 0 {
		c.Mix = Mix{Single: 1}
	}
	if c.ClassMix.Critical+c.ClassMix.Standard+c.ClassMix.Sheddable <= 0 {
		c.ClassMix = ClassMix{Standard: 1}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// OpStats is one scenario's slice of the report.
type OpStats struct {
	Requests uint64  `json:"requests"`
	Items    uint64  `json:"items"` // batch: items admitted; others: == requests
	Errors   uint64  `json:"errors"`
	Shed     uint64  `json:"shed"` // 429 responses + shed batch items
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MeanMs   float64 `json:"mean_ms"`
}

// Report is the JSON document a run emits.
type Report struct {
	Target        string             `json:"target"`
	Model         string             `json:"model"`
	Mode          string             `json:"mode"` // "open" or "closed"
	Workers       int                `json:"workers"`
	TargetQPS     float64            `json:"target_qps,omitempty"`
	BatchSize     int                `json:"batch_size"`
	Mix           Mix                `json:"mix"`
	ClassMix      ClassMix           `json:"class_mix"`
	WarmupS       float64            `json:"warmup_s"`
	DurationS     float64            `json:"duration_s"` // measured wall clock
	Requests      uint64             `json:"requests"`
	Items         uint64             `json:"items"`
	Errors        uint64             `json:"errors"`
	Shed          uint64             `json:"shed"`
	ThroughputRPS float64            `json:"throughput_rps"`
	ItemsPerS     float64            `json:"items_per_s"`
	P50Ms         float64            `json:"p50_ms"`
	P95Ms         float64            `json:"p95_ms"`
	P99Ms         float64            `json:"p99_ms"`
	MeanMs        float64            `json:"mean_ms"`
	Ops           map[string]OpStats `json:"ops"`
}

const (
	opSingle = iota
	opBatch
	opIngest
	numOps
)

var opNames = [numOps]string{"single", "batch", "ingest"}

// runState is the shared recording state of one run.
type runState struct {
	cfg       Config
	clients   [3]*server.Client // critical, standard, sheddable
	all       *hist
	ops       [numOps]*hist
	reqs      [numOps]atomic.Uint64
	items     [numOps]atomic.Uint64
	errs      [numOps]atomic.Uint64
	shed      [numOps]atomic.Uint64
	recording atomic.Bool
}

// Run drives one load run and reports it. The context bounds the
// whole run (warmup included); cancelling it ends the run early with
// the traffic measured so far.
func Run(ctx context.Context, cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" {
		return Report{}, errors.New("loadgen: BaseURL required")
	}
	if cfg.Model == "" {
		return Report{}, errors.New("loadgen: Model required")
	}
	st := &runState{cfg: cfg, all: newHist()}
	for i := range st.ops {
		st.ops[i] = newHist()
	}
	base := server.NewClient(cfg.BaseURL, cfg.HTTPClient)
	st.clients = [3]*server.Client{
		base.WithClass("critical"),
		base, // standard: omit the header, the server default
		base.WithClass("sheddable"),
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Warmup+cfg.Duration)
	defer cancel()

	if cfg.Warmup > 0 {
		warmTimer := time.AfterFunc(cfg.Warmup, func() { st.recording.Store(true) })
		defer warmTimer.Stop()
	} else {
		st.recording.Store(true)
	}
	measuredStart := time.Now().Add(cfg.Warmup)

	var wg sync.WaitGroup
	mode := "closed"
	if cfg.TargetQPS > 0 {
		mode = "open"
		arrivals := make(chan struct{}, cfg.Workers*4)
		wg.Add(1)
		go func() { // pacer: one token per 1/QPS interval
			defer wg.Done()
			defer close(arrivals)
			interval := time.Duration(float64(time.Second) / cfg.TargetQPS)
			next := time.Now()
			for {
				next = next.Add(interval)
				if d := time.Until(next); d > 0 {
					select {
					case <-runCtx.Done():
						return
					case <-time.After(d):
					}
				} else if runCtx.Err() != nil {
					return
				}
				select {
				case arrivals <- struct{}{}:
				default: // workers saturated: the arrival is dropped, not queued unboundedly
				}
			}
		}()
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
				for range arrivals {
					st.issue(runCtx, rng)
				}
			}(w)
		}
	} else {
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
				for runCtx.Err() == nil {
					st.issue(runCtx, rng)
				}
			}(w)
		}
	}
	wg.Wait()
	measured := time.Since(measuredStart).Seconds()
	if measured <= 0 {
		measured = cfg.Duration.Seconds()
	}

	return st.report(mode, measured), nil
}

// pickOp draws a scenario from the mix.
func (st *runState) pickOp(rng *rand.Rand) int {
	m := st.cfg.Mix
	r := rng.Float64() * (m.Single + m.Batch + m.Ingest)
	switch {
	case r < m.Single:
		return opSingle
	case r < m.Single+m.Batch:
		return opBatch
	default:
		return opIngest
	}
}

// pickClient draws an SLO class from the mix.
func (st *runState) pickClient(rng *rand.Rand) *server.Client {
	m := st.cfg.ClassMix
	r := rng.Float64() * (m.Critical + m.Standard + m.Sheddable)
	switch {
	case r < m.Critical:
		return st.clients[0]
	case r < m.Critical+m.Standard:
		return st.clients[1]
	default:
		return st.clients[2]
	}
}

// issue runs one operation and records it.
func (st *runState) issue(ctx context.Context, rng *rand.Rand) {
	op := st.pickOp(rng)
	c := st.pickClient(rng)
	var (
		items uint64
		shed  uint64
		err   error
	)
	start := time.Now()
	switch op {
	case opSingle:
		_, err = c.Recommend(ctx, st.cfg.Model, server.RecommendRequest{})
		items = 1
	case opBatch:
		req := server.BatchPlanRequest{Items: make([]server.BatchItem, st.cfg.BatchSize)}
		for i := range req.Items {
			req.Items[i] = server.BatchItem{Model: st.cfg.Model, Op: "recommend"}
		}
		var resp server.BatchPlanResponse
		resp, err = c.PlanBatch(ctx, req)
		if err == nil {
			items = uint64(resp.Admitted)
			shed = uint64(resp.Shed)
		}
	case opIngest:
		lats := make([]float64, st.cfg.IngestBatch)
		for i := range lats {
			lats[i] = 30 + 60*rng.Float64()
		}
		_, err = c.Observe(ctx, st.cfg.Model, server.ObserveRequest{Latencies: lats})
		items = uint64(st.cfg.IngestBatch)
	}
	elapsed := time.Since(start)

	if !st.recording.Load() || ctx.Err() != nil {
		return // warmup traffic, or a request cut short by the run ending
	}
	st.reqs[op].Add(1)
	st.items[op].Add(items)
	st.shed[op].Add(shed)
	if err != nil {
		var apiErr *server.APIError
		if errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests {
			st.shed[op].Add(1)
		} else {
			st.errs[op].Add(1)
		}
		return
	}
	st.all.record(elapsed)
	st.ops[op].record(elapsed)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func (st *runState) report(mode string, measuredS float64) Report {
	r := Report{
		Target:    st.cfg.BaseURL,
		Model:     st.cfg.Model,
		Mode:      mode,
		Workers:   st.cfg.Workers,
		TargetQPS: st.cfg.TargetQPS,
		BatchSize: st.cfg.BatchSize,
		Mix:       st.cfg.Mix,
		ClassMix:  st.cfg.ClassMix,
		WarmupS:   st.cfg.Warmup.Seconds(),
		DurationS: measuredS,
		P50Ms:     ms(st.all.quantile(0.50)),
		P95Ms:     ms(st.all.quantile(0.95)),
		P99Ms:     ms(st.all.quantile(0.99)),
		MeanMs:    ms(st.all.mean()),
		Ops:       make(map[string]OpStats, numOps),
	}
	for op := 0; op < numOps; op++ {
		reqs := st.reqs[op].Load()
		if reqs == 0 {
			continue
		}
		r.Requests += reqs
		r.Items += st.items[op].Load()
		r.Errors += st.errs[op].Load()
		r.Shed += st.shed[op].Load()
		r.Ops[opNames[op]] = OpStats{
			Requests: reqs,
			Items:    st.items[op].Load(),
			Errors:   st.errs[op].Load(),
			Shed:     st.shed[op].Load(),
			P50Ms:    ms(st.ops[op].quantile(0.50)),
			P95Ms:    ms(st.ops[op].quantile(0.95)),
			P99Ms:    ms(st.ops[op].quantile(0.99)),
			MeanMs:   ms(st.ops[op].mean()),
		}
	}
	if measuredS > 0 {
		r.ThroughputRPS = float64(r.Requests) / measuredS
		r.ItemsPerS = float64(r.Items) / measuredS
	}
	return r
}

// Validate sanity-checks a report for the CI smoke: traffic flowed
// and it was not all errors.
func (r Report) Validate() error {
	if r.Requests == 0 {
		return errors.New("loadgen: no requests completed")
	}
	if r.Errors == r.Requests {
		return fmt.Errorf("loadgen: all %d requests errored", r.Requests)
	}
	if r.ThroughputRPS <= 0 {
		return errors.New("loadgen: zero throughput")
	}
	return nil
}
