package stats

import (
	"errors"
	"math"
)

// ErrNoConverge is returned by iterative special-function and fitting
// routines that fail to reach the requested tolerance.
var ErrNoConverge = errors.New("stats: iteration did not converge")

// PowInt computes xⁿ for an integer exponent by binary exponentiation:
// O(log n) multiplications with no exp/log round trip, which is both
// faster than math.Pow for the small integer powers the strategy
// formulas raise survival probabilities to and exact for n in {0, 1}.
// Negative exponents return 1/xⁿ.
func PowInt(x float64, n int) float64 {
	switch {
	case n == math.MinInt:
		// -n would overflow back to minInt; this only arises from
		// out-of-range float→int conversions upstream.
		return math.Pow(x, float64(n))
	case n < 0:
		return 1 / PowInt(x, -n)
	case n == 0:
		return 1
	case n == 1:
		return x // the delayed strategy's hot path
	case n == 2:
		return x * x
	}
	r := 1.0
	for n > 0 {
		if n&1 == 1 {
			r *= x
		}
		x *= x
		n >>= 1
	}
	return r
}

// RegularizedGammaP computes the regularized lower incomplete gamma
// function P(a, x) = γ(a, x)/Γ(a) for a > 0, x >= 0.
//
// It follows the classic Numerical-Recipes split: the series expansion
// converges quickly for x < a+1, the continued fraction elsewhere.
func RegularizedGammaP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case math.IsInf(x, 1):
		return 1
	case x < a+1:
		return gammaPSeries(a, x)
	default:
		return 1 - gammaQContinuedFraction(a, x)
	}
}

// RegularizedGammaQ computes the regularized upper incomplete gamma
// function Q(a, x) = 1 - P(a, x).
func RegularizedGammaQ(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 1
	case math.IsInf(x, 1):
		return 0
	case x < a+1:
		return 1 - gammaPSeries(a, x)
	default:
		return gammaQContinuedFraction(a, x)
	}
}

const (
	specialEps     = 1e-14
	specialMaxIter = 500
)

// gammaPSeries evaluates P(a,x) by its power series.
func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < specialMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*specialEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinuedFraction evaluates Q(a,x) by Lentz's continued
// fraction algorithm.
func gammaQContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= specialMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < specialEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// LogGamma returns ln Γ(x) for x > 0.
func LogGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Digamma returns the digamma function ψ(x) = d/dx ln Γ(x) for x > 0.
// It uses the recurrence ψ(x) = ψ(x+1) - 1/x to push the argument above
// 6 and then the asymptotic expansion.
func Digamma(x float64) float64 {
	if math.IsNaN(x) || x <= 0 && x == math.Trunc(x) {
		return math.NaN()
	}
	result := 0.0
	for x < 12 {
		result -= 1 / x
		x++
	}
	// Asymptotic series: ψ(x) ~ ln x - 1/(2x) - Σ B_{2n}/(2n x^{2n}).
	inv := 1 / x
	inv2 := inv * inv
	result += math.Log(x) - 0.5*inv
	result -= inv2 * (1.0/12 - inv2*(1.0/120-inv2*(1.0/252-inv2*(1.0/240-inv2*1.0/132))))
	return result
}

// Trigamma returns ψ'(x), the derivative of the digamma function, for
// x > 0. Used by the Newton iteration in gamma MLE fitting.
func Trigamma(x float64) float64 {
	if math.IsNaN(x) || x <= 0 {
		return math.NaN()
	}
	result := 0.0
	for x < 12 {
		result += 1 / (x * x)
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	// ψ'(x) ~ 1/x + 1/(2x²) + Σ B_{2n}/x^{2n+1}.
	result += inv * (1 + 0.5*inv + inv2*(1.0/6-inv2*(1.0/30-inv2*(1.0/42-inv2*1.0/30))))
	return result
}

// ErfInv returns the inverse error function: ErfInv(Erf(x)) == x.
// The implementation uses a rational approximation refined by two
// Newton steps, accurate to ~1e-15 over (-1, 1).
func ErfInv(y float64) float64 {
	switch {
	case math.IsNaN(y) || y <= -1 || y >= 1:
		if y == 1 {
			return math.Inf(1)
		}
		if y == -1 {
			return math.Inf(-1)
		}
		return math.NaN()
	case y == 0:
		return 0
	}
	// Initial guess via the normal quantile relation
	// erfinv(y) = Φ⁻¹((y+1)/2) / √2.
	x := NormalQuantile((y+1)/2) / math.Sqrt2
	// Newton refinement on f(x) = erf(x) - y; f'(x) = 2/√π · e^{-x²}.
	for i := 0; i < 3; i++ {
		err := math.Erf(x) - y
		deriv := 2 / math.SqrtPi * math.Exp(-x*x)
		if deriv == 0 {
			break
		}
		x -= err / deriv
	}
	return x
}

// NormalQuantile returns the quantile function (inverse CDF) of the
// standard normal distribution, using the Acklam rational approximation
// polished by one Halley step — good to ~1e-15.
func NormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}

	// Coefficients for the Acklam approximation.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}

	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley step against the exact CDF.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// NormalCDF returns the standard normal cumulative distribution
// function Φ(x).
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalPDF returns the standard normal density φ(x).
func NormalPDF(x float64) float64 {
	return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
}
