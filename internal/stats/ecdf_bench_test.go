package stats

import (
	"math/rand"
	"testing"
)

// benchECDF is a trace-sized ECDF (the paper's weekly sets hold ~800
// probes; the pooled set ~11k).
func benchECDF(n int) *ECDF {
	rng := rand.New(rand.NewSource(1))
	sample := make([]float64, n)
	for i := range sample {
		sample[i] = rng.ExpFloat64()*450 + 30
	}
	return MustECDF(sample)
}

var benchSink float64

// --- The four integral kernels, table-backed vs reference walker ---

func BenchmarkKernelIntegralOneMinusFPow(b *testing.B) {
	e := benchECDF(2000)
	e.IntegralOneMinusFPow(500, 0.9, 5) // build the table outside the loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = e.IntegralOneMinusFPow(500, 0.9, 5)
	}
}

func BenchmarkKernelIntegralOneMinusFPowWalk(b *testing.B) {
	e := benchECDF(2000)
	for i := 0; i < b.N; i++ {
		benchSink = e.IntegralOneMinusFPowWalk(500, 0.9, 5)
	}
}

func BenchmarkKernelIntegralUOneMinusFPow(b *testing.B) {
	e := benchECDF(2000)
	e.IntegralUOneMinusFPow(500, 0.9, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = e.IntegralUOneMinusFPow(500, 0.9, 5)
	}
}

func BenchmarkKernelIntegralUOneMinusFPowWalk(b *testing.B) {
	e := benchECDF(2000)
	for i := 0; i < b.N; i++ {
		benchSink = e.IntegralUOneMinusFPowWalk(500, 0.9, 5)
	}
}

func BenchmarkKernelIntegralProdBoth(b *testing.B) {
	e := benchECDF(2000)
	for i := 0; i < b.N; i++ {
		p, u := e.IntegralProdBoth(200, 300, 0.9)
		benchSink = p + u
	}
}

func BenchmarkKernelIntegralProdSeparateWalks(b *testing.B) {
	e := benchECDF(2000)
	for i := 0; i < b.N; i++ {
		benchSink = e.IntegralProdOneMinusFWalk(200, 300, 0.9) +
			e.IntegralUProdOneMinusFWalk(200, 300, 0.9)
	}
}

// BenchmarkKernelBatchGrid answers a 400-point ascending grid — the
// shape of one optimizer refinement round — per iteration.
func BenchmarkKernelBatchGrid(b *testing.B) {
	e := benchECDF(2000)
	Ts := make([]float64, 400)
	for i := range Ts {
		Ts[i] = float64(i+1) * 25
	}
	e.IntegralOneMinusFPowBatch(Ts, 0.9, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := e.IntegralOneMinusFPowBatch(Ts, 0.9, 5)
		benchSink = out[len(out)-1]
	}
}

func BenchmarkKernelBatchGridWalk(b *testing.B) {
	e := benchECDF(2000)
	Ts := make([]float64, 400)
	for i := range Ts {
		Ts[i] = float64(i+1) * 25
	}
	for i := 0; i < b.N; i++ {
		for _, T := range Ts {
			benchSink = e.IntegralOneMinusFPowWalk(T, 0.9, 5)
		}
	}
}

// --- The sampler: O(1) table vs the historical binary-search path ---

func BenchmarkECDFRand(b *testing.B) {
	e := benchECDF(2000)
	rng := rand.New(rand.NewSource(2))
	e.Rand(rng) // build the bucket table outside the loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = e.Rand(rng)
	}
}

func BenchmarkECDFRandQuantilePath(b *testing.B) {
	e := benchECDF(2000)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < b.N; i++ {
		benchSink = e.Quantile(rng.Float64())
	}
}
