package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := MustECDF([]float64{3, 1, 2, 2, 5})
	if e.N() != 5 {
		t.Fatalf("N = %d", e.N())
	}
	almostEq(t, e.Eval(0.5), 0, 1e-15, "below min")
	almostEq(t, e.Eval(1), 0.2, 1e-15, "at 1")
	almostEq(t, e.Eval(2), 0.6, 1e-15, "at duplicate 2")
	almostEq(t, e.Eval(2.5), 0.6, 1e-15, "between")
	almostEq(t, e.Eval(5), 1, 1e-15, "at max")
	almostEq(t, e.Eval(100), 1, 1e-15, "above max")
	almostEq(t, e.Mean(), 13.0/5, 1e-12, "mean")
	if e.Min() != 1 || e.Max() != 5 {
		t.Fatalf("min/max = %v/%v", e.Min(), e.Max())
	}
}

func TestECDFErrors(t *testing.T) {
	if _, err := NewECDF(nil); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	if _, err := NewECDF([]float64{1, math.NaN()}); err == nil {
		t.Fatal("want NaN error")
	}
}

func TestECDFQuantileInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sample := make([]float64, 500)
	for i := range sample {
		sample[i] = rng.Float64() * 1000
	}
	e := MustECDF(sample)
	for _, p := range []float64{0.01, 0.3, 0.5, 0.77, 0.99} {
		x := e.Quantile(p)
		if e.Eval(x) < p {
			t.Fatalf("Eval(Quantile(%v)) = %v < p", p, e.Eval(x))
		}
	}
	if e.Quantile(0) != e.Min() || e.Quantile(1) != e.Max() {
		t.Fatal("quantile limits wrong")
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		sample := make([]float64, len(raw))
		for i, v := range raw {
			sample[i] = math.Mod(math.Abs(v), 1e6)
		}
		e := MustECDF(sample)
		prev := -1.0
		for x := e.Min() - 1; x <= e.Max()+1; x += (e.Max() - e.Min() + 2) / 50 {
			c := e.Eval(x)
			if c < prev || c < 0 || c > 1 {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestECDFMeanVarMatchSummary(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sample := make([]float64, 999)
	for i := range sample {
		sample[i] = rng.NormFloat64()*30 + 500
	}
	e := MustECDF(sample)
	almostEq(t, e.Mean(), Mean(sample), 1e-9, "mean")
	almostEq(t, e.Var(), Variance(sample), 1e-6, "var")
	almostEq(t, e.Std(), StdDev(sample), 1e-7, "std")
}

// integralBruteForce numerically integrates (1-s·F)^b with tiny steps
// for cross-checking the exact step integrals.
func integralBruteForce(e *ECDF, T, s float64, b int, moment int) float64 {
	const steps = 400000
	h := T / steps
	sum := 0.0
	for i := 0; i < steps; i++ {
		u := (float64(i) + 0.5) * h
		v := math.Pow(1-s*e.Eval(u), float64(b))
		if moment == 1 {
			v *= u
		}
		sum += v
	}
	return sum * h
}

func TestIntegralOneMinusFPowExact(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	sample := make([]float64, 60)
	for i := range sample {
		sample[i] = rng.Float64() * 100
	}
	e := MustECDF(sample)
	for _, tc := range []struct {
		T, s float64
		b    int
	}{
		{50, 1, 1}, {50, 0.9, 1}, {80, 0.95, 3}, {120, 0.8, 5}, {30, 1, 2},
	} {
		got := e.IntegralOneMinusFPow(tc.T, tc.s, tc.b)
		want := integralBruteForce(e, tc.T, tc.s, tc.b, 0)
		almostEq(t, got, want, 1e-2, "∫(1-sF)^b")

		got = e.IntegralUOneMinusFPow(tc.T, tc.s, tc.b)
		want = integralBruteForce(e, tc.T, tc.s, tc.b, 1)
		almostEq(t, got, want, 1.0, "∫u(1-sF)^b")
	}
}

func TestIntegralEdgeCases(t *testing.T) {
	e := MustECDF([]float64{10, 20})
	if e.IntegralOneMinusFPow(0, 1, 1) != 0 {
		t.Fatal("T=0 integral should be 0")
	}
	if e.IntegralOneMinusFPow(-5, 1, 1) != 0 {
		t.Fatal("negative T integral should be 0")
	}
	// Before any sample point, integrand is 1: ∫₀⁵ 1 du = 5.
	almostEq(t, e.IntegralOneMinusFPow(5, 1, 1), 5, 1e-12, "pre-support")
	// After all mass with s=1, integrand vanishes beyond 20.
	almostEq(t, e.IntegralOneMinusFPow(100, 1, 1),
		10+0.5*10, 1e-12, "post-support") // 10 (to first) + 0.5*10 (half mass)
	mustPanic(t, func() { e.IntegralOneMinusFPow(10, 1, 0) })
	mustPanic(t, func() { e.IntegralUOneMinusFPow(10, 1, -1) })
}

func TestIntegralAgainstAnalyticExponential(t *testing.T) {
	// For huge samples the ECDF integral converges to the analytic
	// ∫₀ᵀ e^{-λu} du = (1-e^{-λT})/λ.
	rng := rand.New(rand.NewSource(31))
	d := NewExponential(0.01)
	sample := make([]float64, 150000)
	for i := range sample {
		sample[i] = d.Rand(rng)
	}
	e := MustECDF(sample)
	T := 300.0
	want := (1 - math.Exp(-0.01*T)) / 0.01
	got := e.IntegralOneMinusFPow(T, 1, 1)
	if math.Abs(got-want) > want*0.02 {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestPartialExpectation(t *testing.T) {
	e := MustECDF([]float64{1, 2, 3, 4})
	almostEq(t, e.PartialExpectation(2.5), (1+2)/4.0, 1e-12, "partial")
	almostEq(t, e.PartialExpectation(100), e.Mean(), 1e-12, "full")
	almostEq(t, e.PartialExpectation(0.5), 0, 1e-12, "none")
}

func TestRestrict(t *testing.T) {
	e := MustECDF([]float64{1, 2, 2, 3, 10, 20})
	r, err := e.Restrict(5)
	if err != nil {
		t.Fatal(err)
	}
	if r.N() != 4 {
		t.Fatalf("restricted N = %d, want 4", r.N())
	}
	almostEq(t, r.Mean(), 2, 1e-12, "restricted mean")
	if _, err := e.Restrict(0.5); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestLinearInterpolated(t *testing.T) {
	e := MustECDF([]float64{0, 10})
	f := e.LinearInterpolated()
	almostEq(t, f(-1), 0, 1e-15, "below")
	almostEq(t, f(0), 0.5, 1e-15, "at first point")
	almostEq(t, f(5), 0.75, 1e-12, "midpoint")
	almostEq(t, f(10), 1, 1e-15, "at max")
	almostEq(t, f(11), 1, 1e-15, "above")
	// Monotone everywhere.
	prev := -1.0
	for x := -2.0; x < 12; x += 0.1 {
		v := f(x)
		if v < prev {
			t.Fatalf("interpolated CDF not monotone at %v", x)
		}
		prev = v
	}
}

func TestECDFBootstrapRand(t *testing.T) {
	e := MustECDF([]float64{5, 5, 5, 9})
	rng := rand.New(rand.NewSource(41))
	count9 := 0
	const n = 100000
	for i := 0; i < n; i++ {
		v := e.Rand(rng)
		if v != 5 && v != 9 {
			t.Fatalf("bootstrap drew %v not in support", v)
		}
		if v == 9 {
			count9++
		}
	}
	frac := float64(count9) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("P(9) = %v, want 0.25", frac)
	}
}

func TestECDFSupportSorted(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = math.Mod(v, 1000)
			if math.IsNaN(xs[i]) {
				xs[i] = 0
			}
		}
		e := MustECDF(xs)
		return sort.Float64sAreSorted(e.Support())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
