package stats

import (
	"math"
	"sort"
)

// KSStatistic returns the two-sided Kolmogorov–Smirnov distance
// sup_x |F_n(x) - F(x)| between the empirical CDF of sample and the
// theoretical CDF of d.
func KSStatistic(sample []float64, d Distribution) float64 {
	if len(sample) == 0 {
		return 0
	}
	xs := append([]float64(nil), sample...)
	sort.Float64s(xs)
	n := float64(len(xs))
	maxD := 0.0
	for i, x := range xs {
		f := d.CDF(x)
		dPlus := float64(i+1)/n - f
		dMinus := f - float64(i)/n
		if dPlus > maxD {
			maxD = dPlus
		}
		if dMinus > maxD {
			maxD = dMinus
		}
	}
	return maxD
}

// KSPValue approximates the asymptotic p-value of a KS statistic for a
// sample of size n using the Kolmogorov distribution series (with the
// standard small-sample effective-size correction).
func KSPValue(ks float64, n int) float64 {
	if n <= 0 || ks <= 0 {
		return 1
	}
	sqrtN := math.Sqrt(float64(n))
	lambda := (sqrtN + 0.12 + 0.11/sqrtN) * ks
	var p float64
	if lambda < 1.18 {
		// Jacobi-theta dual series, which converges fast for small λ
		// where the alternating series does not:
		// Q(λ) = 1 - (√(2π)/λ) Σ_{k odd} e^{-k²π²/(8λ²)}.
		t := math.Exp(-math.Pi * math.Pi / (8 * lambda * lambda))
		p = 1 - math.Sqrt(2*math.Pi)/lambda*(t+math.Pow(t, 9)+math.Pow(t, 25))
	} else {
		// Q(λ) = 2 Σ_{k>=1} (-1)^{k-1} e^{-2 k² λ²}.
		sum := 0.0
		sign := 1.0
		for k := 1; k <= 100; k++ {
			term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
			sum += term
			if math.Abs(term) < 1e-12 {
				break
			}
			sign = -sign
		}
		p = 2 * sum
	}
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	}
	return p
}

// KSTwoSample returns the two-sample KS distance between samples a
// and b.
func KSTwoSample(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var i, j int
	maxD := 0.0
	na, nb := float64(len(as)), float64(len(bs))
	for i < len(as) && j < len(bs) {
		if as[i] <= bs[j] {
			i++
		} else {
			j++
		}
		d := math.Abs(float64(i)/na - float64(j)/nb)
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}

// AndersonDarling returns the Anderson–Darling A² statistic of sample
// against the theoretical distribution d. A² emphasizes tail
// discrepancies, which matters for heavy-tailed latency fits.
func AndersonDarling(sample []float64, d Distribution) float64 {
	n := len(sample)
	if n == 0 {
		return 0
	}
	xs := append([]float64(nil), sample...)
	sort.Float64s(xs)
	const eps = 1e-300
	sum := 0.0
	for i, x := range xs {
		fi := math.Min(math.Max(d.CDF(x), eps), 1-1e-16)
		fr := math.Min(math.Max(d.CDF(xs[n-1-i]), eps), 1-1e-16)
		sum += (2*float64(i) + 1) * (math.Log(fi) + math.Log(1-fr))
	}
	return -float64(n) - sum/float64(n)
}

// ChiSquareGOF bins the sample into k equiprobable cells under d and
// returns the Pearson chi-square statistic and its degrees of freedom
// (k-1; the caller subtracts fitted-parameter counts as appropriate).
func ChiSquareGOF(sample []float64, d Distribution, k int) (chi2 float64, dof int) {
	n := len(sample)
	if n == 0 || k < 2 {
		return 0, 0
	}
	expected := float64(n) / float64(k)
	counts := make([]int, k)
	for _, x := range sample {
		p := d.CDF(x)
		i := int(p * float64(k))
		if i >= k {
			i = k - 1
		}
		if i < 0 {
			i = 0
		}
		counts[i]++
	}
	for _, c := range counts {
		diff := float64(c) - expected
		chi2 += diff * diff / expected
	}
	return chi2, k - 1
}

// ChiSquarePValue returns P(X² >= chi2) for a chi-square distribution
// with dof degrees of freedom.
func ChiSquarePValue(chi2 float64, dof int) float64 {
	if dof <= 0 || chi2 <= 0 {
		return 1
	}
	return RegularizedGammaQ(float64(dof)/2, chi2/2)
}
