package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestKDEMatchesGeneratingDensity(t *testing.T) {
	d := NewLogNormal(6, 0.7)
	sample := sampleFrom(d, 30000, 21)
	k, err := NewKDE(sample, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k.Bandwidth() <= 0 {
		t.Fatal("non-positive bandwidth")
	}
	// Density close to the truth at bulk points.
	for _, x := range []float64{200, 400, 600, 900} {
		got, want := k.PDF(x), d.PDF(x)
		if math.Abs(got-want) > 0.25*want {
			t.Errorf("PDF(%v) = %v, want ≈%v", x, got, want)
		}
	}
	// CDF close everywhere.
	for _, x := range []float64{150, 400, 800, 1600} {
		if math.Abs(k.CDF(x)-d.CDF(x)) > 0.02 {
			t.Errorf("CDF(%v) = %v, want ≈%v", x, k.CDF(x), d.CDF(x))
		}
	}
}

func TestKDEPDFIntegratesToOne(t *testing.T) {
	sample := sampleFrom(NewGamma(2, 0.01), 2000, 22)
	k, err := NewKDE(sample, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := Simpson(k.PDF, -200, 1500, 4000)
	if math.Abs(total-1) > 0.01 {
		t.Fatalf("∫pdf = %v", total)
	}
}

func TestKDEQuantileRoundTrip(t *testing.T) {
	sample := sampleFrom(NewUniform(0, 100), 5000, 23)
	k, err := NewKDE(sample, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.1, 0.5, 0.9} {
		x := k.Quantile(p)
		if math.Abs(k.CDF(x)-p) > 1e-6 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, k.CDF(x))
		}
	}
}

func TestKDEMoments(t *testing.T) {
	sample := sampleFrom(NewGamma(4, 0.02), 50000, 24)
	k, err := NewKDE(sample, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k.Mean()-200) > 5 {
		t.Fatalf("mean %v", k.Mean())
	}
	if math.Abs(k.Var()-10000) > 800 {
		t.Fatalf("var %v", k.Var())
	}
}

func TestKDESampling(t *testing.T) {
	d := NewLogNormal(5, 0.5)
	k, err := NewKDE(sampleFrom(d, 20000, 25), 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(26))
	resampled := make([]float64, 20000)
	for i := range resampled {
		resampled[i] = k.Rand(rng)
	}
	if ks := KSTwoSample(resampled, sampleFrom(d, 20000, 27)); ks > 0.03 {
		t.Fatalf("resampled law diverges: KS=%v", ks)
	}
}

func TestKDEErrors(t *testing.T) {
	if _, err := NewKDE(nil, 0); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	if _, err := NewKDE([]float64{1, math.NaN()}, 0); err == nil {
		t.Fatal("NaN should fail")
	}
	if SilvermanBandwidth([]float64{5}) != 1 {
		t.Fatal("degenerate bandwidth should be 1")
	}
	if SilvermanBandwidth([]float64{3, 3, 3, 3}) != 1 {
		t.Fatal("zero-spread bandwidth should be 1")
	}
}
