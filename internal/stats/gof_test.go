package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestKSStatisticZeroForPerfectFit(t *testing.T) {
	// The KS distance of a sample against its own empirical quantiles
	// is at most 1/n.
	d := NewUniform(0, 1)
	n := 1000
	sample := make([]float64, n)
	for i := range sample {
		sample[i] = (float64(i) + 0.5) / float64(n)
	}
	if ks := KSStatistic(sample, d); ks > 1.0/float64(n) {
		t.Fatalf("KS = %v, want <= %v", ks, 1.0/float64(n))
	}
}

func TestKSStatisticDetectsMismatch(t *testing.T) {
	sample := sampleFrom(NewLogNormal(6, 1), 5000, 9)
	goodKS := KSStatistic(sample, NewLogNormal(6, 1))
	badKS := KSStatistic(sample, NewExponential(1.0/600))
	if goodKS >= badKS {
		t.Fatalf("good fit KS %v should be below bad fit KS %v", goodKS, badKS)
	}
	if badKS < 0.05 {
		t.Fatalf("mismatched fit should have large KS, got %v", badKS)
	}
}

func TestKSPValueRange(t *testing.T) {
	if p := KSPValue(0.001, 100); p < 0.99 {
		t.Fatalf("tiny KS should give p~1, got %v", p)
	}
	if p := KSPValue(0.5, 1000); p > 1e-10 {
		t.Fatalf("huge KS should give p~0, got %v", p)
	}
	if p := KSPValue(0, 10); p != 1 {
		t.Fatalf("zero KS p-value = %v", p)
	}
	// Monotone decreasing in the statistic.
	prev := 1.0
	for ks := 0.01; ks < 0.3; ks += 0.01 {
		p := KSPValue(ks, 200)
		if p > prev+1e-12 {
			t.Fatalf("p-value not monotone at ks=%v", ks)
		}
		prev = p
	}
}

func TestKSTwoSample(t *testing.T) {
	a := sampleFrom(NewUniform(0, 1), 4000, 10)
	b := sampleFrom(NewUniform(0, 1), 4000, 11)
	c := sampleFrom(NewUniform(0.5, 1.5), 4000, 12)
	same := KSTwoSample(a, b)
	diff := KSTwoSample(a, c)
	if same > 0.05 {
		t.Fatalf("same-law KS too large: %v", same)
	}
	if diff < 0.3 {
		t.Fatalf("shifted-law KS too small: %v", diff)
	}
	if KSTwoSample(nil, a) != 0 {
		t.Fatal("empty sample KS should be 0")
	}
}

func TestAndersonDarling(t *testing.T) {
	sample := sampleFrom(NewWeibull(1.2, 300), 3000, 13)
	good := AndersonDarling(sample, NewWeibull(1.2, 300))
	bad := AndersonDarling(sample, NewExponential(1.0/100))
	if good >= bad {
		t.Fatalf("AD: good %v should be below bad %v", good, bad)
	}
	if good > 5 {
		t.Fatalf("AD for true law should be small, got %v", good)
	}
}

func TestChiSquareGOF(t *testing.T) {
	d := NewGamma(2, 0.01)
	sample := sampleFrom(d, 10000, 14)
	chi2, dof := ChiSquareGOF(sample, d, 20)
	if dof != 19 {
		t.Fatalf("dof = %d, want 19", dof)
	}
	p := ChiSquarePValue(chi2, dof)
	if p < 1e-4 {
		t.Fatalf("true-law chi2 p-value too small: chi2=%v p=%v", chi2, p)
	}
	chi2, dof = ChiSquareGOF(sample, NewUniform(0, 1000), 20)
	if ChiSquarePValue(chi2, dof) > 1e-6 {
		t.Fatal("wrong-law chi2 should reject")
	}
}

func TestChiSquarePValueKnown(t *testing.T) {
	// P(X²₂ >= 2) = e^{-1}.
	almostEq(t, ChiSquarePValue(2, 2), math.Exp(-1), 1e-10, "chi2(2) tail")
	if ChiSquarePValue(0, 5) != 1 || ChiSquarePValue(3, 0) != 1 {
		t.Fatal("edge cases should return 1")
	}
}

func TestSummaryAndHelpers(t *testing.T) {
	sample := []float64{4, 1, 3, 2, 5}
	s := Summarize(sample)
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("bad summary %+v", s)
	}
	almostEq(t, s.Mean, 3, 1e-12, "mean")
	almostEq(t, s.Median, 3, 1e-12, "median")
	almostEq(t, s.Var, 2, 1e-12, "var")

	if got := Summarize(nil); got.N != 0 {
		t.Fatal("empty summary should be zero")
	}

	mean, count := TruncatedMean([]float64{1, 2, 100}, 10)
	almostEq(t, mean, 1.5, 1e-12, "truncated mean")
	if count != 2 {
		t.Fatalf("count = %d", count)
	}
	almostEq(t, CensoredMean([]float64{1, 2, 100}, 10), 13.0/3, 1e-12, "censored mean")
	almostEq(t, OutlierRatio([]float64{1, 2, 100}, 10), 1.0/3, 1e-12, "outlier ratio")
	almostEq(t, TruncatedStd([]float64{1, 3, 100}, 10), 1, 1e-12, "truncated std")
	if OutlierRatio(nil, 5) != 0 || CensoredMean(nil, 5) != 0 {
		t.Fatal("empty-slice helpers should return 0")
	}
	m, c := TruncatedMean([]float64{100}, 10)
	if m != 0 || c != 0 {
		t.Fatal("all-above truncated mean should be 0,0")
	}
}

func TestSampleVarianceBessel(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	almostEq(t, SampleVariance(s), Variance(s)*4.0/3.0, 1e-12, "bessel factor")
	if SampleVariance([]float64{7}) != 0 {
		t.Fatal("singleton sample variance should be 0")
	}
}

func TestPercentilePanicsAndEdges(t *testing.T) {
	mustPanic(t, func() { Percentile(nil, 0.5) })
	s := []float64{10, 20, 30}
	almostEq(t, Percentile(s, 0), 10, 1e-15, "p0")
	almostEq(t, Percentile(s, 1), 30, 1e-15, "p1")
	almostEq(t, Percentile(s, 0.5), 20, 1e-15, "p50")
	almostEq(t, Percentile(s, 0.25), 15, 1e-12, "p25 interpolated")
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	h.AddAll([]float64{5, 15, 15, 95, -3, 250})
	if h.Under != 1 || h.Over != 1 || h.Total() != 6 {
		t.Fatalf("under/over/total = %d/%d/%d", h.Under, h.Over, h.Total())
	}
	almostEq(t, h.Density(15), 2.0/(6*10), 1e-12, "density")
	almostEq(t, h.CDF(20), 4.0/6, 1e-12, "cdf at bin edge: {-3,5,15,15} <= 20")
	almostEq(t, h.CDF(1000), 1, 1e-12, "cdf total")
	almostEq(t, h.CDF(-10), 0, 1e-12, "cdf below")
	almostEq(t, h.Mode(), 15, 1e-12, "mode")
	mustPanic(t, func() { NewHistogram(5, 5, 3) })
	mustPanic(t, func() { NewHistogram(0, 1, 0) })
}

func TestHistogramCDFMatchesECDF(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	d := NewLogNormal(6, 0.8)
	sample := make([]float64, 50000)
	h := NewHistogram(0, 10000, 2000)
	for i := range sample {
		sample[i] = d.Rand(rng)
		h.Add(sample[i])
	}
	e := MustECDF(sample)
	for _, x := range []float64{200, 400, 800, 1600, 3200} {
		if math.Abs(h.CDF(x)-e.Eval(x)) > 0.01 {
			t.Fatalf("hist CDF %v vs ECDF %v at %v", h.CDF(x), e.Eval(x), x)
		}
	}
}

func TestFreedmanDiaconisBins(t *testing.T) {
	sample := sampleFrom(NewUniform(0, 100), 10000, 16)
	sorted := append([]float64(nil), sample...)
	sortFloats(sorted)
	bins := FreedmanDiaconisBins(sorted)
	if bins < 20 || bins > 200 {
		t.Fatalf("unexpected bin count %d", bins)
	}
	if FreedmanDiaconisBins([]float64{1}) != 8 {
		t.Fatal("degenerate sample should give minimum bins")
	}
	if FreedmanDiaconisBins([]float64{2, 2, 2, 2}) != 8 {
		t.Fatal("zero-IQR sample should give minimum bins")
	}
}

func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

func TestIntegrators(t *testing.T) {
	f := func(x float64) float64 { return x * x }
	almostEq(t, Trapezoid(f, 0, 3, 3000), 9, 1e-5, "trapezoid x²")
	almostEq(t, Simpson(f, 0, 3, 10), 9, 1e-12, "simpson x² exact")
	almostEq(t, Simpson(f, 0, 3, 11), 9, 1e-12, "simpson odd n rounds up")
	almostEq(t, AdaptiveSimpson(math.Sin, 0, math.Pi, 1e-12), 2, 1e-9, "adaptive sin")
	if Trapezoid(f, 2, 2, 5) != 0 || AdaptiveSimpson(f, 2, 2, 1e-9) != 0 {
		t.Fatal("zero-width integrals should be 0")
	}
	mustPanic(t, func() { Trapezoid(f, 3, 1, 5) })
	mustPanic(t, func() { Simpson(f, 0, 1, 1) })
	mustPanic(t, func() { AdaptiveSimpson(f, 3, 1, 1e-9) })
}

func TestUniformGrid(t *testing.T) {
	g := NewUniformGrid(func(x float64) float64 { return 2 * x }, 0, 10, 100)
	almostEq(t, g.At(5), 10, 1e-12, "interpolation")
	almostEq(t, g.At(5.05), 10.1, 1e-12, "between nodes")
	almostEq(t, g.At(-1), 0, 1e-12, "clamp low")
	almostEq(t, g.At(11), 20, 1e-12, "clamp high")
	almostEq(t, g.Integral(), 100, 1e-9, "∫2x over [0,10]")
	mustPanic(t, func() { NewUniformGrid(math.Sin, 1, 0, 10) })
}
