package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// FitResult reports a fitted distribution together with its
// log-likelihood and the Kolmogorov–Smirnov distance to the sample, so
// that candidate families can be ranked.
type FitResult struct {
	Name   string
	Dist   Distribution
	LogLik float64
	KS     float64
}

// FitExponentialMLE fits an exponential distribution by maximum
// likelihood (rate = 1/mean). It errors on empty or non-positive-mean
// samples.
func FitExponentialMLE(sample []float64) (Exponential, error) {
	if len(sample) == 0 {
		return Exponential{}, ErrEmpty
	}
	m := Mean(sample)
	if m <= 0 {
		return Exponential{}, errors.New("stats: exponential MLE requires positive mean")
	}
	return Exponential{Rate: 1 / m}, nil
}

// FitLogNormalMLE fits a lognormal by maximum likelihood (mean and
// variance of the log sample). All values must be positive.
func FitLogNormalMLE(sample []float64) (LogNormal, error) {
	if len(sample) == 0 {
		return LogNormal{}, ErrEmpty
	}
	logs := make([]float64, len(sample))
	for i, v := range sample {
		if v <= 0 {
			return LogNormal{}, fmt.Errorf("stats: lognormal MLE requires positive data, got %v", v)
		}
		logs[i] = math.Log(v)
	}
	mu := Mean(logs)
	sigma := StdDev(logs)
	if sigma <= 0 {
		sigma = 1e-9 // degenerate: all values equal
	}
	return LogNormal{Mu: mu, Sigma: sigma}, nil
}

// FitParetoMLE fits a Pareto distribution by maximum likelihood with
// xm set to the sample minimum.
func FitParetoMLE(sample []float64) (Pareto, error) {
	if len(sample) == 0 {
		return Pareto{}, ErrEmpty
	}
	xm := math.Inf(1)
	for _, v := range sample {
		if v <= 0 {
			return Pareto{}, fmt.Errorf("stats: pareto MLE requires positive data, got %v", v)
		}
		xm = math.Min(xm, v)
	}
	sum := 0.0
	for _, v := range sample {
		sum += math.Log(v / xm)
	}
	if sum <= 0 {
		return Pareto{}, errors.New("stats: pareto MLE degenerate sample")
	}
	return Pareto{Xm: xm, Alpha: float64(len(sample)) / sum}, nil
}

// FitWeibullMLE fits a Weibull distribution by maximum likelihood,
// solving the shape equation by Newton iteration started at the
// method-of-moments estimate.
func FitWeibullMLE(sample []float64) (Weibull, error) {
	if len(sample) == 0 {
		return Weibull{}, ErrEmpty
	}
	var logs []float64
	for _, v := range sample {
		if v <= 0 {
			return Weibull{}, fmt.Errorf("stats: weibull MLE requires positive data, got %v", v)
		}
		logs = append(logs, math.Log(v))
	}
	meanLog := Mean(logs)

	// Initial shape from the log-variance relation:
	// Var[ln X] = π²/(6 k²).
	vLog := Variance(logs)
	k := math.Pi / math.Sqrt(6*math.Max(vLog, 1e-12))
	if k <= 0 || math.IsNaN(k) || math.IsInf(k, 0) {
		k = 1
	}

	// MLE condition: g(k) = Σx^k ln x / Σx^k - 1/k - meanLog = 0.
	g := func(k float64) (val, deriv float64) {
		var s0, s1, s2 float64
		for i, v := range sample {
			xk := math.Pow(v, k)
			s0 += xk
			s1 += xk * logs[i]
			s2 += xk * logs[i] * logs[i]
		}
		val = s1/s0 - 1/k - meanLog
		deriv = (s2*s0-s1*s1)/(s0*s0) + 1/(k*k)
		return val, deriv
	}

	converged := false
	for i := 0; i < 100; i++ {
		val, deriv := g(k)
		if math.Abs(val) < 1e-10 {
			converged = true
			break
		}
		if deriv == 0 || math.IsNaN(deriv) {
			break
		}
		next := k - val/deriv
		if next <= 0 {
			next = k / 2
		}
		if math.Abs(next-k) < 1e-12*math.Max(1, k) {
			k = next
			converged = true
			break
		}
		k = next
	}
	if !converged {
		// Fall back to bisection over a wide bracket.
		lo, hi := 1e-3, 1e3
		flo, _ := g(lo)
		fhi, _ := g(hi)
		if flo*fhi > 0 {
			return Weibull{}, ErrNoConverge
		}
		for i := 0; i < 200; i++ {
			mid := 0.5 * (lo + hi)
			fm, _ := g(mid)
			if flo*fm <= 0 {
				hi = mid
			} else {
				lo, flo = mid, fm
			}
		}
		k = 0.5 * (lo + hi)
	}

	var sk float64
	for _, v := range sample {
		sk += math.Pow(v, k)
	}
	lambda := math.Pow(sk/float64(len(sample)), 1/k)
	if lambda <= 0 || math.IsNaN(lambda) {
		return Weibull{}, ErrNoConverge
	}
	return Weibull{K: k, Lambda: lambda}, nil
}

// FitGammaMLE fits a gamma distribution by maximum likelihood using
// the standard Newton iteration on the shape from the
// log-mean/mean-log statistic.
func FitGammaMLE(sample []float64) (Gamma, error) {
	if len(sample) == 0 {
		return Gamma{}, ErrEmpty
	}
	var sumLog float64
	for _, v := range sample {
		if v <= 0 {
			return Gamma{}, fmt.Errorf("stats: gamma MLE requires positive data, got %v", v)
		}
		sumLog += math.Log(v)
	}
	mean := Mean(sample)
	s := math.Log(mean) - sumLog/float64(len(sample))
	if s <= 0 {
		return Gamma{}, errors.New("stats: gamma MLE degenerate sample")
	}
	// Minka's initialization.
	alpha := (3 - s + math.Sqrt((s-3)*(s-3)+24*s)) / (12 * s)
	for i := 0; i < 100; i++ {
		num := math.Log(alpha) - Digamma(alpha) - s
		den := 1/alpha - Trigamma(alpha)
		if den == 0 {
			break
		}
		next := alpha - num/den
		if next <= 0 {
			next = alpha / 2
		}
		if math.Abs(next-alpha) < 1e-12*math.Max(1, alpha) {
			alpha = next
			break
		}
		alpha = next
	}
	if alpha <= 0 || math.IsNaN(alpha) {
		return Gamma{}, ErrNoConverge
	}
	return Gamma{Alpha: alpha, Beta: alpha / mean}, nil
}

// FitShiftedLogNormalMoments fits a shifted lognormal matching the
// sample mean and standard deviation with the given fixed shift. This
// is the generator family used to synthesize per-week EGEE latency
// bodies: the shift models the hard middleware floor.
func FitShiftedLogNormalMoments(mean, std, shift float64) (Shifted, error) {
	if mean-shift <= 0 {
		return Shifted{}, fmt.Errorf("stats: shift %v must be below mean %v", shift, mean)
	}
	if std <= 0 {
		return Shifted{}, errors.New("stats: std must be positive")
	}
	return Shifted{Base: LogNormalFromMoments(mean-shift, std), Offset: shift}, nil
}

// LogLikelihood returns the total log density of sample under d.
func LogLikelihood(d Distribution, sample []float64) float64 {
	sum := 0.0
	for _, v := range sample {
		p := d.PDF(v)
		if p <= 0 {
			return math.Inf(-1)
		}
		sum += math.Log(p)
	}
	return sum
}

// FitBest fits every applicable parametric family to the sample by MLE
// and returns the results sorted by descending log-likelihood. Families
// that fail to fit are silently skipped; the slice may be empty.
func FitBest(sample []float64) []FitResult {
	var out []FitResult
	add := func(name string, d Distribution, err error) {
		if err != nil {
			return
		}
		out = append(out, FitResult{
			Name:   name,
			Dist:   d,
			LogLik: LogLikelihood(d, sample),
			KS:     KSStatistic(sample, d),
		})
	}
	exp, err := FitExponentialMLE(sample)
	add("exponential", exp, err)
	ln, err := FitLogNormalMLE(sample)
	add("lognormal", ln, err)
	wb, err := FitWeibullMLE(sample)
	add("weibull", wb, err)
	gm, err := FitGammaMLE(sample)
	add("gamma", gm, err)
	pa, err := FitParetoMLE(sample)
	add("pareto", pa, err)

	sort.Slice(out, func(i, j int) bool { return out[i].LogLik > out[j].LogLik })
	return out
}
