package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// allDists returns a representative set of distributions used by the
// generic conformance tests below.
func allDists() map[string]Distribution {
	return map[string]Distribution{
		"exponential": NewExponential(0.002),
		"uniform":     NewUniform(100, 900),
		"lognormal":   NewLogNormal(6, 0.8),
		"weibull<1":   NewWeibull(0.7, 500),
		"weibull>1":   NewWeibull(1.8, 500),
		"pareto":      NewPareto(120, 2.5),
		"gamma<1":     NewGamma(0.6, 0.002),
		"gamma>1":     NewGamma(3, 0.01),
		"shifted":     NewShifted(NewLogNormal(5.5, 0.9), 120),
		"scaled":      NewScaled(NewExponential(1), 450),
		"mixture": NewMixture(
			[]Distribution{NewShifted(NewLogNormal(5.5, 0.7), 100), NewPareto(2000, 1.8)},
			[]float64{0.9, 0.1}),
		"truncated": NewTruncatedAbove(NewLogNormal(6, 1.2), 10000),
	}
}

func TestCDFMonotoneAndBounded(t *testing.T) {
	for name, d := range allDists() {
		prev := -1.0
		for x := -50.0; x <= 20000; x += 37.3 {
			c := d.CDF(x)
			if c < 0 || c > 1 || math.IsNaN(c) {
				t.Fatalf("%s: CDF(%v) = %v out of [0,1]", name, x, c)
			}
			if c < prev-1e-12 {
				t.Fatalf("%s: CDF not monotone at %v: %v < %v", name, x, c, prev)
			}
			prev = c
		}
	}
}

func TestQuantileCDFRoundTrip(t *testing.T) {
	for name, d := range allDists() {
		for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			x := d.Quantile(p)
			got := d.CDF(x)
			if math.Abs(got-p) > 1e-6 {
				t.Errorf("%s: CDF(Quantile(%v)) = %v", name, p, got)
			}
		}
	}
}

func TestPDFIntegratesToCDF(t *testing.T) {
	for name, d := range allDists() {
		lo := d.Quantile(0.001)
		for _, p := range []float64{0.2, 0.5, 0.9} {
			hi := d.Quantile(p)
			if hi <= lo {
				continue
			}
			got := AdaptiveSimpson(d.PDF, lo, hi, 1e-10) + d.CDF(lo)
			if math.Abs(got-p) > 1e-4 {
				t.Errorf("%s: ∫pdf to q(%v) = %v, want %v", name, p, got, p)
			}
		}
	}
}

func TestSampleMomentsMatchAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 200000
	for name, d := range allDists() {
		if math.IsInf(d.Var(), 1) || name == "pareto" {
			// Heavy tails: infinite variance, or (pareto with
			// 2<alpha<4) infinite kurtosis making the sample variance
			// converge too slowly for a fixed-n check.
			continue
		}
		var sum, sum2 float64
		for i := 0; i < n; i++ {
			v := d.Rand(rng)
			sum += v
			sum2 += v * v
		}
		mean := sum / n
		variance := sum2/n - mean*mean
		wantMean, wantVar := d.Mean(), d.Var()
		tolM := 0.02 * math.Max(1, math.Abs(wantMean))
		if math.Abs(mean-wantMean) > tolM {
			t.Errorf("%s: sample mean %v vs analytic %v", name, mean, wantMean)
		}
		tolV := 0.1 * math.Max(1, wantVar)
		if math.Abs(variance-wantVar) > tolV {
			t.Errorf("%s: sample var %v vs analytic %v", name, variance, wantVar)
		}
	}
}

func TestSampleVsCDFKolmogorov(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	const n = 20000
	for name, d := range allDists() {
		sample := make([]float64, n)
		for i := range sample {
			sample[i] = d.Rand(rng)
		}
		ks := KSStatistic(sample, d)
		// 1.95/sqrt(n) is the 0.1% critical value.
		if ks > 1.95/math.Sqrt(n) {
			t.Errorf("%s: KS=%v exceeds 0.1%% critical value", name, ks)
		}
	}
}

func TestExponentialBasics(t *testing.T) {
	e := NewExponential(0.5)
	almostEq(t, e.Mean(), 2, 1e-12, "mean")
	almostEq(t, e.Var(), 4, 1e-12, "var")
	almostEq(t, e.CDF(2), 1-math.Exp(-1), 1e-12, "cdf")
	almostEq(t, e.Quantile(0.5), 2*math.Ln2, 1e-12, "median")
	if e.PDF(-1) != 0 || e.CDF(-1) != 0 {
		t.Fatal("negative support should be zero")
	}
}

func TestLogNormalFromMoments(t *testing.T) {
	f := func(rawMean, rawStd float64) bool {
		mean := 10 + math.Abs(math.Mod(rawMean, 1000))
		std := 1 + math.Abs(math.Mod(rawStd, 2000))
		l := LogNormalFromMoments(mean, std)
		return math.Abs(l.Mean()-mean) < 1e-6*mean &&
			math.Abs(Std(l)-std) < 1e-6*std
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWeibullSpecialCases(t *testing.T) {
	// k=1 reduces to exponential with rate 1/lambda.
	w := NewWeibull(1, 200)
	e := NewExponential(1.0 / 200)
	for _, x := range []float64{10, 100, 500, 2000} {
		almostEq(t, w.CDF(x), e.CDF(x), 1e-12, "weibull k=1 vs exponential")
	}
	if !math.IsInf(NewWeibull(0.5, 1).PDF(0), 1) {
		t.Fatal("weibull k<1 density should blow up at 0")
	}
	if NewWeibull(2, 1).PDF(0) != 0 {
		t.Fatal("weibull k>1 density should vanish at 0")
	}
}

func TestParetoTail(t *testing.T) {
	p := NewPareto(100, 2)
	almostEq(t, p.Mean(), 200, 1e-12, "mean")
	if !math.IsInf(p.Var(), 1) {
		t.Fatal("alpha=2 variance should be infinite")
	}
	if !math.IsInf(NewPareto(100, 1).Mean(), 1) {
		t.Fatal("alpha=1 mean should be infinite")
	}
	almostEq(t, p.CDF(200), 0.75, 1e-12, "cdf")
	if p.CDF(50) != 0 {
		t.Fatal("below xm CDF must be 0")
	}
}

func TestGammaChiSquareIdentity(t *testing.T) {
	// Chi-square with k dof is Gamma(k/2, 1/2).
	g := NewGamma(1.5, 0.5) // chi2(3)
	almostEq(t, g.CDF(3), 0.6083748237289109, 1e-10, "chi2(3) cdf at 3")
	almostEq(t, g.Mean(), 3, 1e-12, "mean")
	almostEq(t, g.Var(), 6, 1e-12, "var")
}

func TestMixtureMomentsAndWeights(t *testing.T) {
	a := NewUniform(0, 1)
	b := NewUniform(10, 12)
	m := NewMixture([]Distribution{a, b}, []float64{3, 1})
	almostEq(t, m.Weight(0), 0.75, 1e-12, "weight normalization")
	almostEq(t, m.Mean(), 0.75*0.5+0.25*11, 1e-12, "mixture mean")
	wantVar := 0.75*(1.0/12) + 0.25*(4.0/12) +
		0.75*math.Pow(0.5-m.Mean(), 2) + 0.25*math.Pow(11-m.Mean(), 2)
	almostEq(t, m.Var(), wantVar, 1e-12, "mixture var")
	almostEq(t, m.CDF(1), 0.75, 1e-12, "mixture cdf gap")
	almostEq(t, m.CDF(5), 0.75, 1e-12, "mixture cdf plateau")
}

func TestMixturePanics(t *testing.T) {
	mustPanic(t, func() { NewMixture(nil, nil) })
	mustPanic(t, func() { NewMixture([]Distribution{NewUniform(0, 1)}, []float64{0}) })
	mustPanic(t, func() {
		NewMixture([]Distribution{NewUniform(0, 1)}, []float64{-1})
	})
	mustPanic(t, func() {
		NewMixture([]Distribution{NewUniform(0, 1)}, []float64{1, 2})
	})
}

func TestTruncatedAbove(t *testing.T) {
	base := NewLogNormal(6, 1.5)
	tr := NewTruncatedAbove(base, 10000)
	if got := tr.CDF(10000); got != 1 {
		t.Fatalf("CDF at bound = %v, want 1", got)
	}
	if tr.Quantile(1) != 10000 {
		t.Fatalf("Quantile(1) = %v, want bound", tr.Quantile(1))
	}
	// Truncated mean must be below the untruncated mean and below bound.
	if tr.Mean() >= base.Mean() || tr.Mean() >= 10000 {
		t.Fatalf("truncated mean %v out of range (base %v)", tr.Mean(), base.Mean())
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		if v := tr.Rand(rng); v > 10000 {
			t.Fatalf("sample %v above bound", v)
		}
	}
}

func TestShiftedAndScaled(t *testing.T) {
	base := NewExponential(0.01)
	s := NewShifted(base, 150)
	almostEq(t, s.Mean(), 250, 1e-9, "shifted mean")
	almostEq(t, s.Var(), base.Var(), 1e-9, "shifted var")
	almostEq(t, s.Quantile(0.5), base.Quantile(0.5)+150, 1e-9, "shifted median")

	sc := NewScaled(base, 3)
	almostEq(t, sc.Mean(), 300, 1e-9, "scaled mean")
	almostEq(t, sc.Var(), 9*base.Var(), 1e-9, "scaled var")
}

func TestConstructorPanics(t *testing.T) {
	mustPanic(t, func() { NewExponential(0) })
	mustPanic(t, func() { NewExponential(-2) })
	mustPanic(t, func() { NewUniform(3, 3) })
	mustPanic(t, func() { NewLogNormal(0, 0) })
	mustPanic(t, func() { NewWeibull(0, 1) })
	mustPanic(t, func() { NewPareto(1, 0) })
	mustPanic(t, func() { NewGamma(-1, 1) })
	mustPanic(t, func() { NewScaled(NewExponential(1), 0) })
	mustPanic(t, func() { NewShifted(nil, 0) })
	mustPanic(t, func() { LogNormalFromMoments(-1, 1) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
