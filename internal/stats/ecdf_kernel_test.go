package stats

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// randomECDF draws an ECDF with duplicates, point masses, and
// occasional zero support points — the shapes real latency traces
// produce.
func randomECDF(rng *rand.Rand) *ECDF {
	n := 1 + rng.Intn(200)
	sample := make([]float64, n)
	for i := range sample {
		switch rng.Intn(10) {
		case 0:
			sample[i] = 0 // point mass at zero
		case 1, 2:
			sample[i] = float64(rng.Intn(20)) * 7.5 // duplicates
		default:
			sample[i] = rng.Float64() * 1000
		}
	}
	return MustECDF(sample)
}

// kernelQueryPoints builds the T probes the issue calls out: on
// support points, between them, below the support, above it, and the
// exact edges 0 / Min / Max.
func kernelQueryPoints(e *ECDF, rng *rand.Rand) []float64 {
	xs := e.Support()
	Ts := []float64{0, -1, e.Min(), e.Max(), e.Max() + 13.7, e.Min() / 2}
	for k := 0; k < 8; k++ {
		i := rng.Intn(len(xs))
		Ts = append(Ts, xs[i]) // exactly on a support point
		if i+1 < len(xs) {
			Ts = append(Ts, 0.5*(xs[i]+xs[i+1])) // strictly between
		}
	}
	Ts = append(Ts, rng.Float64()*1200)
	return Ts
}

func relErr(got, want float64) float64 {
	if got == want {
		return 0
	}
	d := math.Abs(got - want)
	scale := math.Max(math.Abs(want), 1)
	return d / scale
}

// TestKernelMatchesWalkerProperty is the tentpole exactness gate: on
// random ECDFs, all four integral primitives must agree between the
// prefix-sum kernels and the O(n) reference walkers to 1e-12 for every
// combination of T placement, shift, s ∈ {1-ρ, 1}, and b ∈ {1,2,5,10}.
func TestKernelMatchesWalkerProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 60; trial++ {
		e := randomECDF(rng)
		ss := []float64{1, 1 - rng.Float64()*0.3} // s = 1 and s = 1-ρ
		Ts := kernelQueryPoints(e, rng)
		shifts := []float64{0, e.Min(), e.Max() / 3, e.Max() + 50, rng.Float64() * 800}
		for _, s := range ss {
			for _, b := range []int{1, 2, 5, 10} {
				for _, T := range Ts {
					got := e.IntegralOneMinusFPow(T, s, b)
					want := e.IntegralOneMinusFPowWalk(T, s, b)
					if relErr(got, want) > 1e-12 {
						t.Fatalf("pow kernel: T=%v s=%v b=%d got %v want %v", T, s, b, got, want)
					}
					gotU := e.IntegralUOneMinusFPow(T, s, b)
					wantU := e.IntegralUOneMinusFPowWalk(T, s, b)
					if relErr(gotU, wantU) > 1e-12 {
						t.Fatalf("upow kernel: T=%v s=%v b=%d got %v want %v", T, s, b, gotU, wantU)
					}
				}
			}
			for _, shift := range shifts {
				for _, T := range Ts {
					p0, u0 := e.IntegralProdBoth(T, shift, s)
					w0 := e.IntegralProdOneMinusFWalk(T, shift, s)
					wu := e.IntegralUProdOneMinusFWalk(T, shift, s)
					if p0 != w0 {
						t.Fatalf("prod fused: T=%v shift=%v s=%v got %v want %v", T, shift, s, p0, w0)
					}
					if u0 != wu {
						t.Fatalf("uprod fused: T=%v shift=%v s=%v got %v want %v", T, shift, s, u0, wu)
					}
				}
			}
		}
	}
}

// TestBatchMatchesScalarBitwise pins the stronger contract the swept
// grid scans rely on: batch answers equal the scalar kernel answers
// bit for bit on ascending grids (and still exactly on unsorted ones
// via the fallback path).
func TestBatchMatchesScalarBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 40; trial++ {
		e := randomECDF(rng)
		s := 1 - rng.Float64()*0.4
		// Ascending grid straddling the support, with duplicates.
		g := 1 + rng.Intn(60)
		Ts := make([]float64, 0, g+4)
		lo, hi := -5.0, e.Max()*1.3+1
		for i := 0; i < g; i++ {
			Ts = append(Ts, lo+(hi-lo)*float64(i)/float64(g))
		}
		Ts = append(Ts, e.Max(), e.Max(), hi, hi)
		sort.Float64s(Ts)
		for _, b := range []int{1, 3, 10} {
			batch := e.IntegralOneMinusFPowBatch(Ts, s, b)
			batchU := e.IntegralUOneMinusFPowBatch(Ts, s, b)
			for i, T := range Ts {
				if want := e.IntegralOneMinusFPow(T, s, b); batch[i] != want {
					t.Fatalf("pow batch[%d]: T=%v b=%d got %v want %v", i, T, b, batch[i], want)
				}
				if want := e.IntegralUOneMinusFPow(T, s, b); batchU[i] != want {
					t.Fatalf("upow batch[%d]: T=%v b=%d got %v want %v", i, T, b, batchU[i], want)
				}
			}
		}
		shift := rng.Float64() * e.Max()
		p, u := e.IntegralProdBothBatch(Ts, shift, s)
		for i, T := range Ts {
			if want := e.IntegralProdOneMinusF(T, shift, s); p[i] != want {
				t.Fatalf("prod batch[%d]: T=%v shift=%v got %v want %v", i, T, shift, p[i], want)
			}
			if want := e.IntegralUProdOneMinusF(T, shift, s); u[i] != want {
				t.Fatalf("uprod batch[%d]: T=%v shift=%v got %v want %v", i, T, shift, u[i], want)
			}
		}
		// Unsorted input: the fallback path must still be exact.
		unsorted := []float64{Ts[len(Ts)-1], Ts[0], e.Max() / 2, e.Max() / 3}
		ub := e.IntegralOneMinusFPowBatch(unsorted, s, 2)
		up, uu := e.IntegralProdBothBatch(unsorted, shift, s)
		for i, T := range unsorted {
			if want := e.IntegralOneMinusFPow(T, s, 2); ub[i] != want {
				t.Fatalf("unsorted pow batch[%d] mismatch", i)
			}
			if want := e.IntegralProdOneMinusF(T, shift, s); up[i] != want {
				t.Fatalf("unsorted prod batch[%d] mismatch", i)
			}
			if want := e.IntegralUProdOneMinusF(T, shift, s); uu[i] != want {
				t.Fatalf("unsorted uprod batch[%d] mismatch", i)
			}
		}
	}
}

// TestRandMatchesQuantileStream pins the sampler acceptance criterion:
// the O(1) table-guided Rand must map every uniform to exactly the
// same support point as the historical Quantile(rng.Float64()) path,
// so seeded Monte Carlo streams are bit-identical before and after the
// sampler swap.
func TestRandMatchesQuantileStream(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 25; trial++ {
		e := randomECDF(rng)
		if trial%3 == 0 {
			// Exercise restricted ECDFs too: their cum values are not
			// multiples of 1/n.
			if r, err := e.Restrict(e.Max() * 0.7); err == nil {
				e = r
			}
		}
		seed := rng.Int63()
		r1 := rand.New(rand.NewSource(seed))
		r2 := rand.New(rand.NewSource(seed))
		for i := 0; i < 5000; i++ {
			got := e.Rand(r1)
			want := e.Quantile(r2.Float64())
			if got != want {
				t.Fatalf("draw %d: Rand %v != Quantile path %v", i, got, want)
			}
		}
	}
}

// fixedSource makes rand.Float64 yield one chosen value u: Go's
// Float64 is float64(Int63())/2⁶³, and every u here has u·2⁶³ exactly
// representable.
type fixedSource struct{ v int64 }

func (f *fixedSource) Int63() int64 { return f.v }
func (f *fixedSource) Seed(int64)   {}

func fixedRand(u float64) *rand.Rand {
	return rand.New(&fixedSource{v: int64(math.Ldexp(u, 63))})
}

// TestRandExactUniforms drives the sampler with handcrafted uniforms
// sitting exactly on cum boundaries, where the bucket walk must agree
// with the binary search of Quantile.
func TestRandExactUniforms(t *testing.T) {
	e := MustECDF([]float64{5, 5, 5, 9})
	// cum = {0.75, 1}.
	for _, tc := range []struct {
		u    float64
		want float64
	}{
		{0, 5},
		{0.5, 5},
		{math.Nextafter(0.75, 0), 5},
		{0.75, 5},
		{math.Nextafter(0.75, 1), 9},
		{math.Nextafter(1, 0), 9},
	} {
		if got := e.Rand(fixedRand(tc.u)); got != tc.want {
			t.Fatalf("Rand at u=%v = %v, want %v", tc.u, got, tc.want)
		}
		if q := e.Quantile(tc.u); q != tc.want {
			t.Fatalf("Quantile(%v) = %v, want %v", tc.u, q, tc.want)
		}
	}
}

// TestQuantileInvariantEdges pins the documented invariant
// cum[last] == 1: Quantile(1) and Quantile(nextafter(1, 0)) both
// return Max (the search never needs the historical out-of-range
// clamp).
func TestQuantileInvariantEdges(t *testing.T) {
	for _, e := range []*ECDF{
		MustECDF([]float64{1, 2}),
		MustECDF([]float64{3}),
		randomECDF(rand.New(rand.NewSource(5))),
	} {
		if got := e.Quantile(1); got != e.Max() {
			t.Fatalf("Quantile(1) = %v, want Max %v", got, e.Max())
		}
		if got := e.Quantile(math.Nextafter(1, 0)); got != e.Max() {
			t.Fatalf("Quantile(1-ulp) = %v, want Max %v", got, e.Max())
		}
		if got := e.Quantile(math.Nextafter(1, 2)); got != e.Max() {
			t.Fatalf("Quantile(1+ulp) = %v, want Max %v", got, e.Max())
		}
	}
}

// TestRestrictExactWeights checks the direct (xs, cum) construction:
// restricted masses are exact ratios — including for the output of a
// previous Restrict, whose weights are not multiples of 1/n and which
// the old duplicate-materializing implementation rounded.
func TestRestrictExactWeights(t *testing.T) {
	e := MustECDF([]float64{1, 1, 2, 3, 3, 3, 10})
	r, err := e.Restrict(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.N() != 6 {
		t.Fatalf("restricted N = %d, want 6", r.N())
	}
	// P(X=1 | X<=3) = 2/6 exactly.
	if got, want := r.Eval(1), 2.0/6.0; math.Abs(got-want) > 1e-15 {
		t.Fatalf("restricted Eval(1) = %v, want %v", got, want)
	}
	if r.Eval(r.Max()) != 1 {
		t.Fatal("restricted cum not pinned to 1")
	}
	// Restrict of a restricted law: weights are now sixths; a further
	// restriction must keep the exact ratio 2/3 for the mass at 1.
	rr, err := r.Restrict(2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rr.Eval(1), 2.0/3.0; math.Abs(got-want) > 1e-15 {
		t.Fatalf("double-restricted Eval(1) = %v, want %v", got, want)
	}
	if got, want := rr.Mean(), (2*1.0+1*2.0)/3.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("double-restricted mean = %v, want %v", got, want)
	}
}

// TestKernelTablesConcurrent exercises the lazy kernel and sampler
// tables from 8 goroutines (run under -race in CI): concurrent first
// touches of multiple (s, b) keys, batch sweeps, and draws must all
// agree with the sequential walkers.
func TestKernelTablesConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(313))
	e := randomECDF(rng)
	s := 0.85
	Ts := kernelQueryPoints(e, rng)
	type ref struct{ pow, upow, prod, uprod float64 }
	// Sequential ground truth via the walkers, before any table exists.
	want := make(map[int][]ref)
	for _, b := range []int{1, 2, 5, 10} {
		rs := make([]ref, len(Ts))
		for i, T := range Ts {
			rs[i] = ref{
				pow:   e.IntegralOneMinusFPowWalk(T, s, b),
				upow:  e.IntegralUOneMinusFPowWalk(T, s, b),
				prod:  e.IntegralProdOneMinusFWalk(T, 40, s),
				uprod: e.IntegralUProdOneMinusFWalk(T, 40, s),
			}
		}
		want[b] = rs
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			lrng := rand.New(rand.NewSource(int64(1000 + g)))
			for rep := 0; rep < 50; rep++ {
				b := []int{1, 2, 5, 10}[(g+rep)%4]
				for i, T := range Ts {
					if got := e.IntegralOneMinusFPow(T, s, b); relErr(got, want[b][i].pow) > 1e-12 {
						errs <- errMismatch
						return
					}
					if got := e.IntegralUOneMinusFPow(T, s, b); relErr(got, want[b][i].upow) > 1e-12 {
						errs <- errMismatch
						return
					}
					if got := e.IntegralProdOneMinusF(T, 40, s); got != want[b][i].prod {
						errs <- errMismatch
						return
					}
				}
				e.Rand(lrng)
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

var errMismatch = errorString("concurrent kernel query diverged from walker")

type errorString string

func (e errorString) Error() string { return string(e) }
