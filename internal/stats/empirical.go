package stats

import "math/rand"

// EmpiricalDistribution is the query surface the submission-strategy
// models actually consume: CDF evaluation, quantiles, bootstrap
// sampling, and the exact step-function integral kernels (scalar and
// batched), plus the warm-swap and memory-accounting hooks the serving
// layer drives. Two backends implement it — the exact counted ECDF and
// the mergeable quantile Sketch — so every layer above (core models,
// Planner memoization, the gridstratd registry) is representation-
// agnostic: demoting a model from exact to sketch swaps the backend
// without touching a single call site.
//
// (The name leaves Distribution to the parametric laws in
// distributions.go: an EmpiricalDistribution is data-driven, a
// Distribution is analytic.)
//
// Concurrency: implementations must be safe for concurrent use after
// construction — the Model contract the parallel optimizers and the
// server's lock-free query path rely on. Both in-repo backends are:
// their lazily built tables are mutex- or Once-guarded.
type EmpiricalDistribution interface {
	// N returns the (effective) sample size behind the distribution.
	N() int
	// Min and Max bound the support.
	Min() float64
	Max() float64
	// Eval returns F(x) = P(X <= x).
	Eval(x float64) float64
	// Quantile returns the generalized inverse CDF.
	Quantile(p float64) float64
	// SampleQuantile returns the type-7 interpolated sample quantile.
	SampleQuantile(p float64) float64
	// Mean and Std summarize the distribution.
	Mean() float64
	Std() float64
	// Rand draws one bootstrap sample.
	Rand(rng *rand.Rand) float64

	// The pow-integral kernels: ∫₀ᵀ (1-s·F)^b du and the u-weighted
	// companion, scalar and batched over an ascending grid.
	IntegralOneMinusFPow(T, s float64, b int) float64
	IntegralUOneMinusFPow(T, s float64, b int) float64
	IntegralOneMinusFPowBatch(Ts []float64, s float64, b int) []float64
	IntegralUOneMinusFPowBatch(Ts []float64, s float64, b int) []float64

	// The delayed cross-term kernels: ∫₀ᵀ (1-s·F(u+shift))·(1-s·F(u)) du
	// and friends, including the fused both-moments walks.
	IntegralProdOneMinusF(T, shift, s float64) float64
	IntegralUProdOneMinusF(T, shift, s float64) float64
	IntegralProdBoth(T, shift, s float64) (plain, uweighted float64)
	IntegralProdBothBatch(Ts []float64, shift, s float64) (plain, uweighted []float64)

	// MemBytes estimates the resident heap footprint: support arrays,
	// built prefix-sum tables, sampler table — the registry's byte
	// accounting reads it.
	MemBytes() int64

	// Warm-swap surface: the kernel manifest of an outgoing epoch and
	// the eager builders the ingest path hands it to.
	TableKeys() []TableKey
	Prewarm(keys []TableKey)
	PrewarmSampler()
	SamplerWarm() bool
}

// Compile-time checks: both backends satisfy the interface.
var (
	_ EmpiricalDistribution = (*ECDF)(nil)
	_ EmpiricalDistribution = (*Sketch)(nil)
)

// powKernelBytes is the per-support-point cost of one prefix-sum
// kernel (seg + pre + preU float64 entries).
const powKernelBytes = 3 * 8

// MemBytes estimates the ECDF's resident heap footprint: the support
// arrays (values, cumulative probabilities, counts), every built
// prefix-sum kernel (three float64 slices over the support each), and
// the O(1) sampler bucket table when built. Safe for concurrent use.
func (e *ECDF) MemBytes() int64 {
	b := int64(len(e.xs)+len(e.cum)) * 8
	b += int64(len(e.cnt)) * 8
	e.kmu.RLock()
	nk := len(e.kernels)
	e.kmu.RUnlock()
	b += int64(nk) * int64(len(e.xs)) * powKernelBytes
	if e.randBuilt.Load() {
		b += int64(len(e.randIdx)) * 4
	}
	return b
}

// DropKernels releases every built prefix-sum kernel — the demotion
// path's memory reclaim for an ECDF kept only as a merge base. Later
// queries rebuild tables lazily, so dropping is safe (and safe for
// concurrent use); only the warm cache is lost. The sampler bucket
// table is Once-guarded and cannot be released.
func (e *ECDF) DropKernels() {
	e.kmu.Lock()
	e.kernels = nil
	e.kmu.Unlock()
}
