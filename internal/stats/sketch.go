package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultSketchK is the per-level compactor capacity used when callers
// pass k <= 0. At k = 1024 a window of 10^5 latencies compacts into
// roughly log2(n/k) ≈ 7 levels — some 60 KB of resident state against
// the megabytes an exact counted ECDF (support, kernels, sampler)
// holds — with a worst-case rank error well under 1%.
const DefaultSketchK = 1024

// Sketch is a mergeable KLL-style quantile sketch of a latency sample:
// a stack of sorted compactor levels where every item at level i
// carries weight 2^i. It is the approximate, bounded-error backend of
// the EmpiricalDistribution interface — the representation the
// gridstratd registry demotes cold models to when byte pressure makes
// the exact counted ECDF too expensive to keep resident.
//
// Compaction is deterministic: when a level overflows its capacity k,
// adjacent pairs are halved by keeping one survivor per pair at twice
// the weight, with the surviving parity alternating per level between
// compactions so the rank errors of successive compactions cancel in
// expectation. An odd leftover stays at its level, so total weight is
// conserved exactly: N() is always the true number of observed values.
//
// Queries are answered through a lazily compiled counted-ECDF view of
// the (value, weight) multiset, so every exact-integral kernel, batch
// sweep, sampler table and warm-swap hook of the ECDF is reused
// verbatim. While no compaction has occurred (n <= k) the view is
// bit-identical to the exact ECDF of the same sample — the property
// the force-demote CI toggle leans on.
//
// Like the ECDF's merge path, a Sketch is an immutable epoch:
// MergeSorted and MergeSortedEvict return a new Sketch and never
// modify the receiver, so a reader holding the old epoch is never
// raced. A Sketch is safe for concurrent use after construction.
type Sketch struct {
	k      int         // per-level compactor capacity
	n      int64       // total weight == number of observed values
	levels [][]float64 // levels[i]: ascending values of weight 2^i
	flip   []bool      // per-level alternating survivor parity
	comps  []int64     // per-level compaction counts (error bound)

	viewOnce  sync.Once
	viewBuilt atomic.Bool
	view      *ECDF
}

// NewSketch builds a Sketch of sample (unweighted, any order) with
// per-level capacity k (DefaultSketchK when k <= 0). The input slice
// is not modified. It returns ErrEmpty for an empty sample and an
// error if any value is NaN.
func NewSketch(sample []float64, k int) (*Sketch, error) {
	if len(sample) == 0 {
		return nil, ErrEmpty
	}
	xs := append([]float64(nil), sample...)
	for _, v := range xs {
		if math.IsNaN(v) {
			return nil, fmt.Errorf("stats: NaN in sample")
		}
	}
	sort.Float64s(xs)
	return sketchFromSortedTrusted(xs, k), nil
}

// SketchFromSorted builds a Sketch of an already ascending sample. The
// input slice is not modified. It returns ErrEmpty for an empty sample
// and an error if the sample contains NaN or is not ascending.
func SketchFromSorted(sorted []float64, k int) (*Sketch, error) {
	if len(sorted) == 0 {
		return nil, ErrEmpty
	}
	if err := checkAscending("sample", sorted); err != nil {
		return nil, err
	}
	return sketchFromSortedTrusted(append([]float64(nil), sorted...), k), nil
}

// SketchFromECDF builds a Sketch of the flat sample behind a counted
// ECDF — the demotion constructor, which never rematerializes the
// sample: values are streamed from the support counts in ascending
// order. It returns an error for weighted (Restrict-built) ECDFs,
// whose fractional masses have no flat sample to sketch.
func SketchFromECDF(e *ECDF, k int) (*Sketch, error) {
	if !e.Counted() {
		return nil, fmt.Errorf("stats: sketch of a weighted ECDF (built by Restrict)")
	}
	s := emptySketch(k)
	for i, x := range e.xs {
		for c := 0; c < e.cnt[i]; c++ {
			s.levels[0] = append(s.levels[0], x)
			s.n++
			if len(s.levels[0]) > s.k {
				s.compact()
			}
		}
	}
	return s, nil
}

func emptySketch(k int) *Sketch {
	if k <= 0 {
		k = DefaultSketchK
	}
	return &Sketch{k: k, levels: [][]float64{nil}, flip: []bool{false}, comps: []int64{0}}
}

func sketchFromSortedTrusted(sorted []float64, k int) *Sketch {
	s := emptySketch(k)
	for _, x := range sorted {
		s.levels[0] = append(s.levels[0], x)
		s.n++
		if len(s.levels[0]) > s.k {
			s.compact()
		}
	}
	return s
}

// compact halves every overflowing level, bottom-up. One pass: pair
// adjacent items of an overflowing level, keep one survivor per pair
// at the alternating parity, promote survivors (weight doubled) into
// the next level's sorted order, and leave an odd leftover in place —
// weight is conserved exactly at every step.
func (s *Sketch) compact() {
	for i := 0; i < len(s.levels); i++ {
		if len(s.levels[i]) <= s.k {
			continue
		}
		lv := s.levels[i]
		m := len(lv)
		keepOdd := m%2 == 1
		if keepOdd {
			m-- // the last, largest item stays at this level
		}
		off := 0
		if s.flip[i] {
			off = 1
		}
		s.flip[i] = !s.flip[i]
		s.comps[i]++
		survivors := make([]float64, 0, m/2)
		for p := 0; p+1 < m; p += 2 {
			survivors = append(survivors, lv[p+off])
		}
		if keepOdd {
			s.levels[i] = append(lv[:0], lv[m])
		} else {
			s.levels[i] = lv[:0]
		}
		if i+1 == len(s.levels) {
			s.levels = append(s.levels, nil)
			s.flip = append(s.flip, false)
			s.comps = append(s.comps, 0)
		}
		s.levels[i+1] = mergeAscending(s.levels[i+1], survivors)
	}
}

// mergeAscending merges two ascending slices into a new ascending
// slice (stable: a's items precede equal b items).
func mergeAscending(a, b []float64) []float64 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append([]float64(nil), b...)
	}
	out := make([]float64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// clone returns a deep copy of the compactor stack with no compiled
// view — the start of the next immutable epoch.
func (s *Sketch) clone() *Sketch {
	out := &Sketch{
		k:      s.k,
		n:      s.n,
		levels: make([][]float64, len(s.levels)),
		flip:   append([]bool(nil), s.flip...),
		comps:  append([]int64(nil), s.comps...),
	}
	for i, lv := range s.levels {
		out.levels[i] = append([]float64(nil), lv...)
	}
	return out
}

// MergeSorted returns the Sketch extended by an ascending batch — the
// next epoch of a growing window, mirroring ECDF.MergeSorted. The
// receiver is not modified.
func (s *Sketch) MergeSorted(add []float64) (*Sketch, error) {
	return s.MergeSortedEvict(add, nil)
}

// MergeSortedEvict returns the Sketch plus the ascending slice add and
// minus the ascending slice evict — one rolling-window step under the
// same signature as ECDF.MergeSortedEvict, so the ingest path drives
// either backend through one call site. The receiver is not modified.
//
// Eviction is necessarily approximate: a value can only be removed
// while it still exists as a weight-1 item at level 0. Values already
// folded into a compacted survivor are silently retained — the sketch
// is a grow-only summary of everything it has seen, and the registry
// treats the WAL/Rolling window (not the sketch) as the source of
// truth, so exactness is always recoverable by replay. Evictions that
// miss therefore do not error; they are simply ignored.
func (s *Sketch) MergeSortedEvict(add, evict []float64) (*Sketch, error) {
	if err := checkAscending("add", add); err != nil {
		return nil, err
	}
	if err := checkAscending("evict", evict); err != nil {
		return nil, err
	}
	out := s.clone()
	if len(evict) > 0 {
		lv := out.levels[0]
		kept := lv[:0]
		di := 0
		for _, x := range lv {
			for di < len(evict) && evict[di] < x {
				di++
			}
			if di < len(evict) && evict[di] == x {
				di++
				out.n--
				continue
			}
			kept = append(kept, x)
		}
		out.levels[0] = kept
	}
	if len(add) > 0 {
		out.levels[0] = mergeAscending(out.levels[0], add)
		out.n += int64(len(add))
		for len(out.levels[0]) > out.k {
			out.compact()
		}
	}
	if out.n <= 0 {
		return nil, ErrEmpty
	}
	return out, nil
}

// K returns the per-level compactor capacity.
func (s *Sketch) K() int { return s.k }

// Levels returns the number of compactor levels.
func (s *Sketch) Levels() int { return len(s.levels) }

// Compactions returns the total number of level compactions performed
// over the sketch's history (including epochs it was cloned from).
func (s *Sketch) Compactions() int64 {
	var t int64
	for _, c := range s.comps {
		t += c
	}
	return t
}

// ErrorBound returns the worst-case rank error of any CDF/quantile
// query as a fraction of n. Each compaction at level i perturbs a
// fixed rank by at most 2^i (a query point straddles at most one
// adjacent pair), so the bound is Σ comps[i]·2^i / n, capped at 1.
// Zero means the sketch is still exact (no compaction has occurred).
func (s *Sketch) ErrorBound() float64 {
	var b float64
	for i, c := range s.comps {
		b += float64(c) * float64(int64(1)<<uint(i))
	}
	eps := b / float64(s.n)
	if eps > 1 {
		eps = 1
	}
	return eps
}

// View returns the sketch compiled into a counted ECDF of the
// (value, weight) multiset — built once, lazily, then shared. Every
// query method of the EmpiricalDistribution surface delegates to it,
// so the exact prefix-sum kernels, batch sweeps and O(1) sampler of
// the ECDF serve sketch-backed models unchanged. While the sketch has
// never compacted, the view is bit-identical to the exact ECDF of the
// same sample (same construction arithmetic over the same multiset).
func (s *Sketch) View() *ECDF {
	s.viewOnce.Do(func() {
		s.view = s.compile()
		s.viewBuilt.Store(true)
	})
	return s.view
}

// compile flattens the level stack into a counted ECDF: an ascending
// multi-way merge of the levels with per-value integer weights, and
// cumulative probabilities computed with the same
// float64(running)/float64(n) arithmetic as fromSortedTrusted.
func (s *Sketch) compile() *ECDF {
	idx := make([]int, len(s.levels))
	support := 0
	for _, lv := range s.levels {
		support += len(lv)
	}
	e := &ECDF{
		n:   int(s.n),
		xs:  make([]float64, 0, support),
		cum: make([]float64, 0, support),
		cnt: make([]int, 0, support),
	}
	nf := float64(s.n)
	running := 0
	for {
		best := math.Inf(1)
		found := false
		for i, lv := range s.levels {
			if idx[i] < len(lv) && lv[idx[i]] < best {
				best = lv[idx[i]]
				found = true
			}
		}
		if !found {
			break
		}
		c := 0
		for i, lv := range s.levels {
			for idx[i] < len(lv) && lv[idx[i]] == best {
				c += 1 << uint(i)
				idx[i]++
			}
		}
		running += c
		e.xs = append(e.xs, best)
		e.cum = append(e.cum, float64(running)/nf)
		e.cnt = append(e.cnt, c)
	}
	e.cum[len(e.cum)-1] = 1
	return e
}

// --- EmpiricalDistribution surface: delegate to the compiled view ---

// N returns the number of values the sketch has absorbed (total
// weight; exact, since compaction conserves weight).
func (s *Sketch) N() int { return int(s.n) }

// Min returns the smallest retained value. The true sample minimum may
// have been compacted away; the bound is within ErrorBound in rank.
func (s *Sketch) Min() float64 { return s.View().Min() }

// Max returns the largest retained value (same caveat as Min).
func (s *Sketch) Max() float64 { return s.View().Max() }

// Eval returns the sketched F(x) = P(X <= x), within ErrorBound of the
// exact empirical CDF in rank.
func (s *Sketch) Eval(x float64) float64 { return s.View().Eval(x) }

// Quantile returns the generalized inverse of the sketched CDF.
func (s *Sketch) Quantile(p float64) float64 { return s.View().Quantile(p) }

// SampleQuantile returns the type-7 interpolated quantile of the
// sketched multiset.
func (s *Sketch) SampleQuantile(p float64) float64 { return s.View().SampleQuantile(p) }

// Mean returns the mean of the sketched multiset.
func (s *Sketch) Mean() float64 { return s.View().Mean() }

// Std returns the standard deviation of the sketched multiset.
func (s *Sketch) Std() float64 { return s.View().Std() }

// Rand draws one bootstrap sample from the sketched multiset,
// consuming exactly one uniform from rng like ECDF.Rand.
func (s *Sketch) Rand(rng *rand.Rand) float64 { return s.View().Rand(rng) }

// IntegralOneMinusFPow computes ∫₀ᵀ (1-s·F)^b du over the sketched
// step CDF — the exact kernel machinery applied to the approximate
// representation, so the result is within b·s·ErrorBound·T of the
// exact model's answer (the integrand is Lipschitz in F).
func (s *Sketch) IntegralOneMinusFPow(T, sc float64, b int) float64 {
	return s.View().IntegralOneMinusFPow(T, sc, b)
}

// IntegralUOneMinusFPow is the u-weighted companion.
func (s *Sketch) IntegralUOneMinusFPow(T, sc float64, b int) float64 {
	return s.View().IntegralUOneMinusFPow(T, sc, b)
}

// IntegralOneMinusFPowBatch answers the pow-integral over a grid.
func (s *Sketch) IntegralOneMinusFPowBatch(Ts []float64, sc float64, b int) []float64 {
	return s.View().IntegralOneMinusFPowBatch(Ts, sc, b)
}

// IntegralUOneMinusFPowBatch is the u-weighted batch companion.
func (s *Sketch) IntegralUOneMinusFPowBatch(Ts []float64, sc float64, b int) []float64 {
	return s.View().IntegralUOneMinusFPowBatch(Ts, sc, b)
}

// IntegralProdOneMinusF computes the delayed cross-term integral.
func (s *Sketch) IntegralProdOneMinusF(T, shift, sc float64) float64 {
	return s.View().IntegralProdOneMinusF(T, shift, sc)
}

// IntegralUProdOneMinusF is the u-weighted cross-term companion.
func (s *Sketch) IntegralUProdOneMinusF(T, shift, sc float64) float64 {
	return s.View().IntegralUProdOneMinusF(T, shift, sc)
}

// IntegralProdBoth computes both cross-term moments in one walk.
func (s *Sketch) IntegralProdBoth(T, shift, sc float64) (plain, uweighted float64) {
	return s.View().IntegralProdBoth(T, shift, sc)
}

// IntegralProdBothBatch answers both cross-term moments over a grid.
func (s *Sketch) IntegralProdBothBatch(Ts []float64, shift, sc float64) (plain, uweighted []float64) {
	return s.View().IntegralProdBothBatch(Ts, shift, sc)
}

// MemBytes estimates the resident heap footprint: the compactor stack
// plus the compiled view (with whatever tables it has built) once one
// exists.
func (s *Sketch) MemBytes() int64 {
	var b int64
	for _, lv := range s.levels {
		b += int64(cap(lv)) * 8
	}
	b += int64(len(s.flip)) + int64(len(s.comps))*8
	if s.viewBuilt.Load() {
		b += s.view.MemBytes()
	}
	return b
}

// TableKeys returns the compiled view's kernel manifest (empty when no
// query has compiled a view yet).
func (s *Sketch) TableKeys() []TableKey {
	if !s.viewBuilt.Load() {
		return nil
	}
	return s.view.TableKeys()
}

// Prewarm eagerly builds the view's kernels for the given keys.
func (s *Sketch) Prewarm(keys []TableKey) { s.View().Prewarm(keys) }

// PrewarmSampler eagerly builds the view's sampler bucket table.
func (s *Sketch) PrewarmSampler() { s.View().PrewarmSampler() }

// SamplerWarm reports whether the view's sampler table has been built.
func (s *Sketch) SamplerWarm() bool { return s.viewBuilt.Load() && s.view.SamplerWarm() }
