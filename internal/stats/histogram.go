package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-width binned density estimate over [Lo, Hi).
// Values outside the range are counted in Under/Over but do not
// contribute to the density.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
	total  int
}

// NewHistogram creates an empty histogram with bins equal-width bins
// over [lo, hi). It panics unless lo < hi and bins >= 1.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if !(lo < hi) || bins < 1 {
		panic(fmt.Sprintf("stats: invalid histogram spec [%v,%v) bins=%d", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// BinWidth returns the common width of all bins.
func (h *Histogram) BinWidth() float64 {
	return (h.Hi - h.Lo) / float64(len(h.Counts))
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.BinWidth())
		if i >= len(h.Counts) { // guard x == Hi-ulp rounding
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// AddAll records every value of sample.
func (h *Histogram) AddAll(sample []float64) {
	for _, v := range sample {
		h.Add(v)
	}
}

// Total returns the number of observations recorded, including
// out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// Density returns the estimated probability density at x (relative to
// all recorded observations, so out-of-range mass deflates in-range
// density, matching the paper's F̃ normalization).
func (h *Histogram) Density(x float64) float64 {
	if h.total == 0 || x < h.Lo || x >= h.Hi {
		return 0
	}
	i := int((x - h.Lo) / h.BinWidth())
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	return float64(h.Counts[i]) / (float64(h.total) * h.BinWidth())
}

// CDF returns the cumulative fraction of observations <= x, again
// normalized by the total including out-of-range values.
func (h *Histogram) CDF(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	if x < h.Lo {
		return 0
	}
	cum := h.Under
	if x >= h.Hi {
		cum += h.Over
		for _, c := range h.Counts {
			cum += c
		}
		return float64(cum) / float64(h.total)
	}
	w := h.BinWidth()
	i := int((x - h.Lo) / w)
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	for j := 0; j < i; j++ {
		cum += h.Counts[j]
	}
	// Linear within the current bin.
	frac := (x - (h.Lo + float64(i)*w)) / w
	return (float64(cum) + frac*float64(h.Counts[i])) / float64(h.total)
}

// Mode returns the midpoint of the fullest bin (ties resolve to the
// leftmost).
func (h *Histogram) Mode() float64 {
	best, bi := -1, 0
	for i, c := range h.Counts {
		if c > best {
			best, bi = c, i
		}
	}
	return h.Lo + (float64(bi)+0.5)*h.BinWidth()
}

// FreedmanDiaconisBins suggests a bin count for a sample using the
// Freedman–Diaconis rule, clamped to [min 8, max 4096].
func FreedmanDiaconisBins(sorted []float64) int {
	n := len(sorted)
	if n < 2 {
		return 8
	}
	iqr := Percentile(sorted, 0.75) - Percentile(sorted, 0.25)
	if iqr <= 0 {
		return 8
	}
	width := 2 * iqr / math.Cbrt(float64(n))
	span := sorted[n-1] - sorted[0]
	if width <= 0 || span <= 0 {
		return 8
	}
	bins := int(math.Ceil(span / width))
	if bins < 8 {
		bins = 8
	}
	if bins > 4096 {
		bins = 4096
	}
	return bins
}
