package stats

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// HyperExponential is a finite mixture of exponentials — the classic
// high-variability model of the workload-characterization literature
// the paper builds on (Feitelson; Christodoulopoulos et al.): CV > 1
// with a simple Markovian structure.
type HyperExponential struct {
	Weights []float64 // normalized, positive
	Rates   []float64 // positive
	cum     []float64 // prefix sums of Weights
}

// NewHyperExponential builds a hyperexponential; weights are
// normalized. It panics on length mismatch or non-positive entries.
func NewHyperExponential(weights, rates []float64) *HyperExponential {
	if len(weights) == 0 || len(weights) != len(rates) {
		panic(fmt.Sprintf("stats: hyperexp needs matching non-empty slices, got %d/%d",
			len(weights), len(rates)))
	}
	total := 0.0
	for i := range weights {
		if weights[i] <= 0 || rates[i] <= 0 ||
			math.IsNaN(weights[i]) || math.IsNaN(rates[i]) {
			panic(fmt.Sprintf("stats: hyperexp component %d invalid (w=%v, λ=%v)",
				i, weights[i], rates[i]))
		}
		total += weights[i]
	}
	h := &HyperExponential{
		Weights: make([]float64, len(weights)),
		Rates:   append([]float64(nil), rates...),
		cum:     make([]float64, len(weights)),
	}
	acc := 0.0
	for i, w := range weights {
		h.Weights[i] = w / total
		acc += w / total
		h.cum[i] = acc
	}
	h.cum[len(h.cum)-1] = 1
	return h
}

func (h *HyperExponential) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	sum := 0.0
	for i, w := range h.Weights {
		sum += w * h.Rates[i] * math.Exp(-h.Rates[i]*x)
	}
	return sum
}

func (h *HyperExponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	sum := 0.0
	for i, w := range h.Weights {
		sum += w * -math.Expm1(-h.Rates[i]*x)
	}
	return sum
}

func (h *HyperExponential) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	// Bracket with the slowest component's quantile.
	minRate := math.Inf(1)
	for _, r := range h.Rates {
		minRate = math.Min(minRate, r)
	}
	hi := -math.Log1p(-p) / minRate
	return quantileBisect(h.CDF, p, 0, math.Max(hi, 1))
}

func (h *HyperExponential) Rand(rng *rand.Rand) float64 {
	u := rng.Float64()
	i := 0
	for i < len(h.cum)-1 && u > h.cum[i] {
		i++
	}
	return rng.ExpFloat64() / h.Rates[i]
}

func (h *HyperExponential) Mean() float64 {
	sum := 0.0
	for i, w := range h.Weights {
		sum += w / h.Rates[i]
	}
	return sum
}

func (h *HyperExponential) Var() float64 {
	m := h.Mean()
	m2 := 0.0
	for i, w := range h.Weights {
		m2 += 2 * w / (h.Rates[i] * h.Rates[i])
	}
	return m2 - m*m
}

// FitHyperExpEM fits a k-component hyperexponential by
// expectation–maximization, initialized by splitting the sample at
// quantile boundaries. Returns ErrNoConverge if the log-likelihood
// fails to stabilize within maxIter.
func FitHyperExpEM(sample []float64, k, maxIter int) (*HyperExponential, error) {
	if len(sample) == 0 {
		return nil, ErrEmpty
	}
	if k < 1 || k > len(sample) {
		return nil, fmt.Errorf("stats: hyperexp EM needs 1 <= k <= n, got k=%d n=%d", k, len(sample))
	}
	for _, v := range sample {
		if v <= 0 || math.IsNaN(v) {
			return nil, errors.New("stats: hyperexp EM requires positive data")
		}
	}
	if maxIter <= 0 {
		maxIter = 500
	}

	// Initialize: sort-free quantile split via repeated means.
	weights := make([]float64, k)
	rates := make([]float64, k)
	mean := Mean(sample)
	for i := 0; i < k; i++ {
		weights[i] = 1 / float64(k)
		// Spread initial rates geometrically around 1/mean.
		rates[i] = math.Pow(4, float64(i)-float64(k-1)/2) / mean
	}

	n := len(sample)
	resp := make([]float64, k) // responsibilities for one observation
	prevLL := math.Inf(-1)
	for iter := 0; iter < maxIter; iter++ {
		// Accumulators.
		sumW := make([]float64, k)
		sumWX := make([]float64, k)
		ll := 0.0

		for _, x := range sample {
			total := 0.0
			for j := 0; j < k; j++ {
				resp[j] = weights[j] * rates[j] * math.Exp(-rates[j]*x)
				total += resp[j]
			}
			if total <= 0 {
				return nil, ErrNoConverge
			}
			ll += math.Log(total)
			for j := 0; j < k; j++ {
				r := resp[j] / total
				sumW[j] += r
				sumWX[j] += r * x
			}
		}
		// M step.
		for j := 0; j < k; j++ {
			if sumW[j] <= 1e-12 || sumWX[j] <= 0 {
				// Dead component: re-seed it at the global mean scale.
				sumW[j] = 1e-6 * float64(n)
				sumWX[j] = sumW[j] * mean
			}
			weights[j] = sumW[j] / float64(n)
			rates[j] = sumW[j] / sumWX[j]
		}
		if math.Abs(ll-prevLL) < 1e-9*math.Abs(ll)+1e-12 {
			return NewHyperExponential(weights, rates), nil
		}
		prevLL = ll
	}
	return NewHyperExponential(weights, rates), nil
}

// LogLogistic is the log-logistic distribution with scale Alpha > 0
// (the median) and shape Beta > 0; Beta < 1 ⇒ no mean, 1 < Beta < 2 ⇒
// finite mean but infinite variance. A standard heavy-tailed latency
// model with a closed-form CDF.
type LogLogistic struct {
	Alpha float64 // scale = median
	Beta  float64 // shape
}

// NewLogLogistic returns a log-logistic distribution; it panics unless
// both parameters are positive.
func NewLogLogistic(alpha, beta float64) LogLogistic {
	if alpha <= 0 || beta <= 0 || math.IsNaN(alpha) || math.IsNaN(beta) {
		panic(fmt.Sprintf("stats: loglogistic parameters must be positive, got α=%v β=%v", alpha, beta))
	}
	return LogLogistic{Alpha: alpha, Beta: beta}
}

func (l LogLogistic) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		switch {
		case l.Beta < 1:
			return math.Inf(1)
		case l.Beta == 1:
			return 1 / l.Alpha
		default:
			return 0
		}
	}
	z := math.Pow(x/l.Alpha, l.Beta)
	denom := 1 + z
	return l.Beta / l.Alpha * math.Pow(x/l.Alpha, l.Beta-1) / (denom * denom)
}

func (l LogLogistic) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := math.Pow(x/l.Alpha, -l.Beta)
	return 1 / (1 + z)
}

func (l LogLogistic) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	return l.Alpha * math.Pow(p/(1-p), 1/l.Beta)
}

func (l LogLogistic) Rand(rng *rand.Rand) float64 {
	return l.Quantile(rng.Float64())
}

func (l LogLogistic) Mean() float64 {
	if l.Beta <= 1 {
		return math.Inf(1)
	}
	b := math.Pi / l.Beta
	return l.Alpha * b / math.Sin(b)
}

func (l LogLogistic) Var() float64 {
	if l.Beta <= 2 {
		return math.Inf(1)
	}
	b := math.Pi / l.Beta
	m := l.Alpha * b / math.Sin(b)
	m2 := l.Alpha * l.Alpha * 2 * b / math.Sin(2*b)
	return m2 - m*m
}

// FitLogLogisticMLE fits a log-logistic distribution by maximum
// likelihood via Nelder–Mead-free Newton on the log-parameters would be
// overkill; instead it exploits that ln X is logistic(ln α, 1/β) and
// matches the logistic location/scale by the standard moment relations
// refined with a few fixed-point steps on the ML equations.
func FitLogLogisticMLE(sample []float64) (LogLogistic, error) {
	if len(sample) == 0 {
		return LogLogistic{}, ErrEmpty
	}
	logs := make([]float64, len(sample))
	for i, v := range sample {
		if v <= 0 {
			return LogLogistic{}, fmt.Errorf("stats: loglogistic requires positive data, got %v", v)
		}
		logs[i] = math.Log(v)
	}
	// Logistic(μ, s): mean μ, variance s²π²/3.
	mu := Mean(logs)
	s := math.Sqrt(3*Variance(logs)) / math.Pi
	if s <= 0 {
		s = 1e-9
	}
	// Fixed-point refinement of the logistic ML equations:
	// Σ tanh((x-μ)/2s) = 0 and Σ (x-μ)/s·tanh((x-μ)/2s) = n.
	for iter := 0; iter < 200; iter++ {
		var sumT, sumXT float64
		for _, x := range logs {
			t := math.Tanh((x - mu) / (2 * s))
			sumT += t
			sumXT += (x - mu) * t
		}
		n := float64(len(logs))
		newMu := mu + s*sumT/n*2
		newS := sumXT / n
		if newS <= 0 {
			break
		}
		if math.Abs(newMu-mu) < 1e-12*math.Max(1, math.Abs(mu)) &&
			math.Abs(newS-s) < 1e-12*math.Max(1, s) {
			mu, s = newMu, newS
			break
		}
		mu, s = newMu, newS
	}
	return NewLogLogistic(math.Exp(mu), 1/s), nil
}
