package stats

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ErrEmpty is returned when a sample-based constructor receives no
// data.
var ErrEmpty = errors.New("stats: empty sample")

// ECDF is the empirical cumulative distribution function of a sample,
// stored as sorted unique support points with cumulative probabilities.
// It supports exact integrals of functionals of the step function,
// which the submission-strategy models are built on.
type ECDF struct {
	xs  []float64 // sorted unique support
	cum []float64 // cum[i] = P(X <= xs[i]), cum[last] == 1
	n   int       // original sample size
}

// NewECDF builds the ECDF of sample (unweighted). The input slice is
// not modified. It returns ErrEmpty for an empty sample and an error if
// any value is NaN.
func NewECDF(sample []float64) (*ECDF, error) {
	if len(sample) == 0 {
		return nil, ErrEmpty
	}
	xs := append([]float64(nil), sample...)
	for _, v := range xs {
		if math.IsNaN(v) {
			return nil, errors.New("stats: NaN in sample")
		}
	}
	sort.Float64s(xs)
	e := &ECDF{n: len(xs)}
	n := float64(len(xs))
	for i := 0; i < len(xs); {
		j := i
		for j < len(xs) && xs[j] == xs[i] {
			j++
		}
		e.xs = append(e.xs, xs[i])
		e.cum = append(e.cum, float64(j)/n)
		i = j
	}
	e.cum[len(e.cum)-1] = 1
	return e, nil
}

// MustECDF is NewECDF that panics on error; for tests and literals.
func MustECDF(sample []float64) *ECDF {
	e, err := NewECDF(sample)
	if err != nil {
		panic(err)
	}
	return e
}

// N returns the size of the underlying sample.
func (e *ECDF) N() int { return e.n }

// Support returns the sorted unique support points (do not modify).
func (e *ECDF) Support() []float64 { return e.xs }

// Min returns the smallest sample value.
func (e *ECDF) Min() float64 { return e.xs[0] }

// Max returns the largest sample value.
func (e *ECDF) Max() float64 { return e.xs[len(e.xs)-1] }

// Eval returns F(x) = P(X <= x), a right-continuous step function.
func (e *ECDF) Eval(x float64) float64 {
	// Index of first support point > x.
	i := sort.SearchFloat64s(e.xs, x)
	if i < len(e.xs) && e.xs[i] == x {
		return e.cum[i]
	}
	if i == 0 {
		return 0
	}
	return e.cum[i-1]
}

// Quantile returns the generalized inverse: the smallest support point
// x with F(x) >= p. For p <= 0 it returns Min; for p >= 1, Max.
func (e *ECDF) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return e.xs[0]
	case p >= 1:
		return e.xs[len(e.xs)-1]
	}
	i := sort.Search(len(e.cum), func(i int) bool { return e.cum[i] >= p })
	if i == len(e.cum) {
		i = len(e.cum) - 1
	}
	return e.xs[i]
}

// Rand draws one bootstrap sample (a support point with its empirical
// probability).
func (e *ECDF) Rand(rng *rand.Rand) float64 {
	return e.Quantile(rng.Float64())
}

// Mean returns the sample mean.
func (e *ECDF) Mean() float64 {
	sum := 0.0
	prev := 0.0
	for i, x := range e.xs {
		sum += x * (e.cum[i] - prev)
		prev = e.cum[i]
	}
	return sum
}

// Var returns the (population) sample variance.
func (e *ECDF) Var() float64 {
	mean := e.Mean()
	sum := 0.0
	prev := 0.0
	for i, x := range e.xs {
		d := x - mean
		sum += d * d * (e.cum[i] - prev)
		prev = e.cum[i]
	}
	return sum
}

// Std returns the sample standard deviation.
func (e *ECDF) Std() float64 { return math.Sqrt(e.Var()) }

// IntegralOneMinusFPow computes  ∫₀ᵀ (1 - s·F(u))^b du  exactly, where
// F is this step ECDF, s in [0, 1] is a scale factor (the paper's 1-ρ
// making F̃ = s·F), and b >= 1 an integer power. T must be >= 0.
//
// This single primitive covers the single-resubmission integral (b=1)
// and the multiple-submission integral (general b) of the paper with no
// discretization error.
func (e *ECDF) IntegralOneMinusFPow(T, s float64, b int) float64 {
	if T <= 0 || s < 0 {
		return 0
	}
	if b < 1 {
		panic(fmt.Sprintf("stats: power b must be >= 1, got %d", b))
	}
	total := 0.0
	prevX := 0.0
	prevF := 0.0 // F value on [prevX, next support)
	for i := 0; i <= len(e.xs); i++ {
		var x, f float64
		if i < len(e.xs) {
			x = e.xs[i]
			f = e.cum[i]
		} else {
			x = math.Inf(1)
			f = 1
		}
		if x > T {
			x = T
		}
		if x > prevX {
			total += (x - prevX) * math.Pow(1-s*prevF, float64(b))
		}
		if x >= T {
			return total
		}
		prevX = x
		prevF = f
	}
	return total
}

// IntegralUOneMinusFPow computes ∫₀ᵀ u·(1 - s·F(u))^b du exactly; this
// is the second-moment integrand of Eq. 2 and Eq. 4 of the paper.
func (e *ECDF) IntegralUOneMinusFPow(T, s float64, b int) float64 {
	if T <= 0 || s < 0 {
		return 0
	}
	if b < 1 {
		panic(fmt.Sprintf("stats: power b must be >= 1, got %d", b))
	}
	total := 0.0
	prevX := 0.0
	prevF := 0.0
	for i := 0; i <= len(e.xs); i++ {
		var x, f float64
		if i < len(e.xs) {
			x = e.xs[i]
			f = e.cum[i]
		} else {
			x = math.Inf(1)
			f = 1
		}
		if x > T {
			x = T
		}
		if x > prevX {
			total += 0.5 * (x*x - prevX*prevX) * math.Pow(1-s*prevF, float64(b))
		}
		if x >= T {
			return total
		}
		prevX = x
		prevF = f
	}
	return total
}

// IntegralProdOneMinusF computes ∫₀ᵀ (1 - s·F(u+shift))·(1 - s·F(u)) du
// exactly over the step ECDF. This is the cross term of the
// delayed-resubmission survival function, where two job copies offset
// by the delay are racing.
func (e *ECDF) IntegralProdOneMinusF(T, shift, s float64) float64 {
	return e.integralProd(T, shift, s, false)
}

// IntegralUProdOneMinusF computes ∫₀ᵀ u·(1-s·F(u+shift))·(1-s·F(u)) du
// exactly; the second-moment companion of IntegralProdOneMinusF.
func (e *ECDF) IntegralUProdOneMinusF(T, shift, s float64) float64 {
	return e.integralProd(T, shift, s, true)
}

// integralProd walks the merged jump points of F(u) and F(u+shift)
// over [0, T) with two cursors — allocation-free and exact, since both
// factors are constant between consecutive jumps.
func (e *ECDF) integralProd(T, shift, s float64, withU bool) float64 {
	if T <= 0 || s < 0 {
		return 0
	}
	// Cursor i: next jump of F(u) at u = xs[i]; cursor j: next jump of
	// F(u+shift) at u = xs[j]-shift. F values carried are those on the
	// current segment [u, nextBreak).
	i := sort.SearchFloat64s(e.xs, 0)
	if i < len(e.xs) && e.xs[i] == 0 {
		i++ // jump at exactly 0 is already included in Eval(0)
	}
	j := sort.SearchFloat64s(e.xs, shift)
	if j < len(e.xs) && e.xs[j] == shift {
		j++
	}
	f2 := e.Eval(0)
	f1 := e.Eval(shift)
	u := 0.0
	total := 0.0
	for u < T {
		next := T
		if i < len(e.xs) && e.xs[i] < next {
			next = e.xs[i]
		}
		if j < len(e.xs) && e.xs[j]-shift < next {
			next = e.xs[j] - shift
		}
		c := (1 - s*f2) * (1 - s*f1)
		if withU {
			total += c * 0.5 * (next*next - u*u)
		} else {
			total += c * (next - u)
		}
		if next >= T {
			break
		}
		for i < len(e.xs) && e.xs[i] <= next {
			f2 = e.cum[i]
			i++
		}
		for j < len(e.xs) && e.xs[j]-shift <= next {
			f1 = e.cum[j]
			j++
		}
		u = next
	}
	return total
}

// PartialExpectation computes ∫₀ᵀ u dF(u) = (1/n)·Σ_{x_i <= T} x_i,
// the contribution of samples below T to the mean (exact).
func (e *ECDF) PartialExpectation(T float64) float64 {
	sum := 0.0
	prev := 0.0
	for i, x := range e.xs {
		if x > T {
			break
		}
		sum += x * (e.cum[i] - prev)
		prev = e.cum[i]
	}
	return sum
}

// Restrict returns a new ECDF of only the sample values <= T (the
// conditional law given X <= T). It returns ErrEmpty if no values
// qualify.
func (e *ECDF) Restrict(T float64) (*ECDF, error) {
	var kept []float64
	prev := 0.0
	n := float64(e.n)
	for i, x := range e.xs {
		w := e.cum[i] - prev
		prev = e.cum[i]
		if x > T {
			break
		}
		count := int(math.Round(w * n))
		for k := 0; k < count; k++ {
			kept = append(kept, x)
		}
	}
	return NewECDF(kept)
}

// LinearInterpolated returns a continuous piecewise-linear CDF passing
// through the ECDF's step midpoints, suitable for density-based
// evaluations (the delayed-resubmission closed form needs a density).
// The returned function is non-decreasing, 0 before Min and 1 after
// Max.
func (e *ECDF) LinearInterpolated() func(float64) float64 {
	xs := e.xs
	cum := e.cum
	return func(x float64) float64 {
		if x <= xs[0] {
			if x == xs[0] {
				return cum[0]
			}
			return 0
		}
		if x >= xs[len(xs)-1] {
			return 1
		}
		i := sort.SearchFloat64s(xs, x)
		if i < len(xs) && xs[i] == x {
			return cum[i]
		}
		// Between xs[i-1] and xs[i].
		x0, x1 := xs[i-1], xs[i]
		y0, y1 := cum[i-1], cum[i]
		return y0 + (y1-y0)*(x-x0)/(x1-x0)
	}
}
