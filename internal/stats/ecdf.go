package stats

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrEmpty is returned when a sample-based constructor receives no
// data.
var ErrEmpty = errors.New("stats: empty sample")

// ECDF is the empirical cumulative distribution function of a sample,
// stored as sorted unique support points with cumulative probabilities.
// It supports exact integrals of functionals of the step function,
// which the submission-strategy models are built on.
//
// The integral primitives are answered by lazily built prefix-sum
// kernels (one table per (s, b) integrand) so a query costs a binary
// search plus an O(1) segment combine instead of an O(n) walk; the
// `…Batch` variants answer a whole ascending grid in one O(n+G) sweep.
// Table construction is guarded by an RWMutex and the sampler table by
// a sync.Once, so a single ECDF is safe for concurrent use — the Model
// contract the parallel optimizers and sharded simulators rely on.
type ECDF struct {
	xs  []float64 // sorted unique support
	cum []float64 // cum[i] = P(X <= xs[i]), cum[last] == 1
	n   int       // original sample size

	// cnt[i] is the number of sample values at xs[i]. It is what makes
	// an ECDF mergeable: MergeSortedEvict rebuilds the next window's
	// cum exactly (float64(runningCount)/float64(n), the same
	// arithmetic as NewECDF) instead of re-sorting the flat sample.
	// nil for weighted ECDFs (the output of Restrict), which cannot be
	// merged.
	cnt []int

	// Lazily built per-(s, b) prefix-sum kernels for the pow-integrals.
	kmu     sync.RWMutex
	kernels map[powKernelKey]*powKernel

	// Lazily built O(1) inverse-CDF bucket table for Rand. randBuilt
	// mirrors the Once so the warm-swap handoff can ask whether the
	// outgoing epoch ever sampled without racing the builder.
	randOnce  sync.Once
	randBuilt atomic.Bool
	randIdx   []int32
}

// NewECDF builds the ECDF of sample (unweighted). The input slice is
// not modified. It returns ErrEmpty for an empty sample and an error if
// any value is NaN.
func NewECDF(sample []float64) (*ECDF, error) {
	if len(sample) == 0 {
		return nil, ErrEmpty
	}
	xs := append([]float64(nil), sample...)
	for _, v := range xs {
		if math.IsNaN(v) {
			return nil, errors.New("stats: NaN in sample")
		}
	}
	sort.Float64s(xs)
	return fromSortedTrusted(xs), nil
}

// fromSortedTrusted builds the counted ECDF of an ascending, NaN-free
// sample. It is the single construction loop shared by NewECDF,
// NewECDFFromSorted and the merge path's full-rebuild fallback, so
// every counted ECDF of one sample multiset is bit-identical no matter
// which constructor produced it.
func fromSortedTrusted(xs []float64) *ECDF {
	e := &ECDF{n: len(xs)}
	n := float64(len(xs))
	for i := 0; i < len(xs); {
		j := i
		for j < len(xs) && xs[j] == xs[i] {
			j++
		}
		e.xs = append(e.xs, xs[i])
		e.cum = append(e.cum, float64(j)/n)
		e.cnt = append(e.cnt, j-i)
		i = j
	}
	e.cum[len(e.cum)-1] = 1
	return e
}

// NewECDFFromSorted builds the ECDF of an already ascending sample,
// skipping NewECDF's O(n log n) sort — the constructor of the
// incremental ingestion path, whose samples arrive pre-sorted from a
// merge. The input slice is not modified. It returns ErrEmpty for an
// empty sample and an error if the sample contains NaN or is not
// ascending. The result is bit-identical to NewECDF on the same
// multiset.
func NewECDFFromSorted(sorted []float64) (*ECDF, error) {
	if len(sorted) == 0 {
		return nil, ErrEmpty
	}
	if err := checkAscending("sample", sorted); err != nil {
		return nil, err
	}
	return fromSortedTrusted(append([]float64(nil), sorted...)), nil
}

// MustECDF is NewECDF that panics on error; for tests and literals.
func MustECDF(sample []float64) *ECDF {
	e, err := NewECDF(sample)
	if err != nil {
		panic(err)
	}
	return e
}

// N returns the size of the underlying sample.
func (e *ECDF) N() int { return e.n }

// Support returns the sorted unique support points (do not modify).
func (e *ECDF) Support() []float64 { return e.xs }

// Min returns the smallest sample value.
func (e *ECDF) Min() float64 { return e.xs[0] }

// Max returns the largest sample value.
func (e *ECDF) Max() float64 { return e.xs[len(e.xs)-1] }

// Eval returns F(x) = P(X <= x), a right-continuous step function.
func (e *ECDF) Eval(x float64) float64 {
	// Index of first support point > x.
	i := sort.SearchFloat64s(e.xs, x)
	if i < len(e.xs) && e.xs[i] == x {
		return e.cum[i]
	}
	if i == 0 {
		return 0
	}
	return e.cum[i-1]
}

// Quantile returns the generalized inverse: the smallest support point
// x with F(x) >= p. For p <= 0 it returns Min; for p >= 1, Max.
//
// Invariant: cum[last] is pinned to exactly 1 at construction (and by
// Restrict), so for p in (0, 1) the search below always finds an index
// — the last entry satisfies the predicate even when accumulated
// rounding would leave float64(n)/n slightly under 1.
func (e *ECDF) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return e.xs[0]
	case p >= 1:
		return e.xs[len(e.xs)-1]
	}
	return e.xs[sort.Search(len(e.cum), func(i int) bool { return e.cum[i] >= p })]
}

// buildRandTable precomputes the inverse-CDF bucket table: for each of
// the nb uniform buckets [k/nb, (k+1)/nb), randIdx[k] is a support
// index at (or within a step or two of) the generalized inverse for
// any u in the bucket. Because every support point carries mass at
// least 1/n and nb >= n, each bucket overlaps at most a couple of cum
// entries, so a table-guided draw finishes in O(1).
func (e *ECDF) buildRandTable() {
	nb := e.n
	if nb < len(e.xs) {
		nb = len(e.xs)
	}
	idx := make([]int32, nb+1)
	j := 0
	for k := 0; k <= nb; k++ {
		p := float64(k) / float64(nb)
		for j < len(e.cum)-1 && e.cum[j] < p {
			j++
		}
		idx[k] = int32(j)
	}
	e.randIdx = idx
	e.randBuilt.Store(true)
}

// Rand draws one bootstrap sample (a support point with its empirical
// probability). It consumes exactly one uniform from rng and returns
// Quantile(u) computed through the precomputed bucket table, so a
// seeded stream of draws is bit-identical to the historical
// Quantile(rng.Float64()) implementation while each draw costs O(1)
// instead of a binary search.
func (e *ECDF) Rand(rng *rand.Rand) float64 {
	e.randOnce.Do(e.buildRandTable)
	u := rng.Float64()
	nb := len(e.randIdx) - 1
	k := int(u * float64(nb))
	if k >= nb {
		k = nb - 1
	}
	// Resolve the exact generalized inverse from the bucket hint: the
	// predicate cum[i] >= u is monotone, so walking from any start
	// reaches the smallest satisfying index; the table keeps both walks
	// O(1).
	i := int(e.randIdx[k])
	for i > 0 && e.cum[i-1] >= u {
		i--
	}
	for e.cum[i] < u {
		i++
	}
	return e.xs[i]
}

// Mean returns the sample mean.
func (e *ECDF) Mean() float64 {
	sum := 0.0
	prev := 0.0
	for i, x := range e.xs {
		sum += x * (e.cum[i] - prev)
		prev = e.cum[i]
	}
	return sum
}

// Var returns the (population) sample variance.
func (e *ECDF) Var() float64 {
	mean := e.Mean()
	sum := 0.0
	prev := 0.0
	for i, x := range e.xs {
		d := x - mean
		sum += d * d * (e.cum[i] - prev)
		prev = e.cum[i]
	}
	return sum
}

// Std returns the sample standard deviation.
func (e *ECDF) Std() float64 { return math.Sqrt(e.Var()) }

// --- Prefix-sum kernels for the pow-integrals ---

// powKernelKey identifies one (scale, power) integrand (1 - s·F)^b.
type powKernelKey struct {
	s float64
	b int
}

// powKernel is the prefix-sum table of one integrand: seg[i] is the
// constant integrand value on [xs[i], xs[i+1]) and pre/preU accumulate
// the plain and u-weighted integrals up to each support point with the
// same left-to-right addition order as the reference walkers, so a
// table-backed query reproduces the walker's floating-point result for
// b = 1 exactly and within a few ulps otherwise.
type powKernel struct {
	seg  []float64 // (1 - s·cum[i])^b on [xs[i], xs[i+1])
	pre  []float64 // ∫₀^{xs[i]} (1 - s·F(u))^b du
	preU []float64 // ∫₀^{xs[i]} u·(1 - s·F(u))^b du
}

// maxPowKernels bounds the per-ECDF kernel cache. Each table costs
// three float64 slices over the support (24·|support| bytes); a model
// only ever queries one s (its 1-ρ) and a handful of b values, so the
// cap exists purely to bound memory against adversarial query
// patterns — queries past the cap fall back to the uncached O(n)
// walkers.
const maxPowKernels = 64

// powKernelFor returns the lazily built kernel for (s, b), or nil when
// the fast path does not apply (negative support, or cache full for a
// previously unseen key) and the caller must use the walker.
func (e *ECDF) powKernelFor(s float64, b int) *powKernel {
	if e.xs[0] < 0 {
		// The reference walkers have bespoke behaviour for negative
		// support (latencies are non-negative, so this never triggers
		// in practice); keep exact parity by walking.
		return nil
	}
	key := powKernelKey{s: s, b: b}
	e.kmu.RLock()
	k := e.kernels[key]
	e.kmu.RUnlock()
	if k != nil {
		return k
	}
	e.kmu.Lock()
	defer e.kmu.Unlock()
	if k = e.kernels[key]; k != nil {
		return k
	}
	if len(e.kernels) >= maxPowKernels {
		return nil
	}
	m := len(e.xs)
	k = &powKernel{
		seg:  make([]float64, m),
		pre:  make([]float64, m),
		preU: make([]float64, m),
	}
	for i := 0; i < m; i++ {
		k.seg[i] = PowInt(1-s*e.cum[i], b)
	}
	// Integrand is 1 before the first jump ((1 - s·0)^b).
	k.pre[0] = e.xs[0]
	k.preU[0] = 0.5 * e.xs[0] * e.xs[0]
	for i := 1; i < m; i++ {
		k.pre[i] = k.pre[i-1] + (e.xs[i]-e.xs[i-1])*k.seg[i-1]
		k.preU[i] = k.preU[i-1] + 0.5*(e.xs[i]*e.xs[i]-e.xs[i-1]*e.xs[i-1])*k.seg[i-1]
	}
	if e.kernels == nil {
		e.kernels = make(map[powKernelKey]*powKernel)
	}
	e.kernels[key] = k
	return k
}

// integral answers ∫₀ᵀ (1-s·F)^b given the table: the prefix through
// the last support point below T plus the partial final segment.
func (k *powKernel) integral(xs []float64, T float64) float64 {
	return k.integralAt(xs, sort.SearchFloat64s(xs, T), T)
}

// integralU answers ∫₀ᵀ u·(1-s·F)^b from the table.
func (k *powKernel) integralU(xs []float64, T float64) float64 {
	return k.integralUAt(xs, sort.SearchFloat64s(xs, T), T)
}

// integralAt is integral with the segment index j (first support point
// >= T) already located — the batch sweeps carry it as a cursor.
func (k *powKernel) integralAt(xs []float64, j int, T float64) float64 {
	if j == 0 {
		return T
	}
	return k.pre[j-1] + (T-xs[j-1])*k.seg[j-1]
}

// integralUAt is integralU with the segment index already located.
func (k *powKernel) integralUAt(xs []float64, j int, T float64) float64 {
	if j == 0 {
		return 0.5 * T * T
	}
	return k.preU[j-1] + 0.5*(T*T-xs[j-1]*xs[j-1])*k.seg[j-1]
}

// checkPow validates the integer power shared by the pow-integrals.
func checkPow(b int) {
	if b < 1 {
		panic(fmt.Sprintf("stats: power b must be >= 1, got %d", b))
	}
}

// IntegralOneMinusFPow computes  ∫₀ᵀ (1 - s·F(u))^b du  exactly, where
// F is this step ECDF, s in [0, 1] is a scale factor (the paper's 1-ρ
// making F̃ = s·F), and b >= 1 an integer power. T must be >= 0.
//
// This single primitive covers the single-resubmission integral (b=1)
// and the multiple-submission integral (general b) of the paper with no
// discretization error. The first query for a given (s, b) builds an
// O(n) prefix-sum kernel; every later query is a binary search plus an
// O(1) segment combine.
func (e *ECDF) IntegralOneMinusFPow(T, s float64, b int) float64 {
	if T <= 0 || s < 0 {
		return 0
	}
	checkPow(b)
	if k := e.powKernelFor(s, b); k != nil {
		return k.integral(e.xs, T)
	}
	return e.IntegralOneMinusFPowWalk(T, s, b)
}

// IntegralUOneMinusFPow computes ∫₀ᵀ u·(1 - s·F(u))^b du exactly; this
// is the second-moment integrand of Eq. 2 and Eq. 4 of the paper. Like
// IntegralOneMinusFPow it is answered from the lazily built (s, b)
// prefix-sum kernel.
func (e *ECDF) IntegralUOneMinusFPow(T, s float64, b int) float64 {
	if T <= 0 || s < 0 {
		return 0
	}
	checkPow(b)
	if k := e.powKernelFor(s, b); k != nil {
		return k.integralU(e.xs, T)
	}
	return e.IntegralUOneMinusFPowWalk(T, s, b)
}

// IntegralOneMinusFPowBatch answers ∫₀ᵀ (1-s·F)^b for every T in Ts.
// An ascending Ts (the optimizer grids) is answered with one monotone
// cursor sweep — O(n + G) total; out-of-order entries fall back to a
// fresh binary search per entry. Results are bit-identical to the
// scalar method at every entry.
func (e *ECDF) IntegralOneMinusFPowBatch(Ts []float64, s float64, b int) []float64 {
	return e.powBatch(Ts, s, b, false)
}

// IntegralUOneMinusFPowBatch is the u-weighted companion of
// IntegralOneMinusFPowBatch.
func (e *ECDF) IntegralUOneMinusFPowBatch(Ts []float64, s float64, b int) []float64 {
	return e.powBatch(Ts, s, b, true)
}

// powBatch is the shared cursor sweep of the two pow-integral batch
// variants; uweighted selects the emitted moment.
func (e *ECDF) powBatch(Ts []float64, s float64, b int, uweighted bool) []float64 {
	checkPow(b)
	out := make([]float64, len(Ts))
	if s < 0 {
		return out
	}
	k := e.powKernelFor(s, b)
	j := 0
	cursorT := math.Inf(-1) // largest T the cursor was positioned for
	for i, T := range Ts {
		if T <= 0 {
			continue
		}
		if k == nil {
			if uweighted {
				out[i] = e.IntegralUOneMinusFPowWalk(T, s, b)
			} else {
				out[i] = e.IntegralOneMinusFPowWalk(T, s, b)
			}
			continue
		}
		if T < cursorT {
			j = sort.SearchFloat64s(e.xs, T) // out-of-order entry
		} else {
			for j < len(e.xs) && e.xs[j] < T {
				j++
			}
			cursorT = T
		}
		if uweighted {
			out[i] = k.integralUAt(e.xs, j, T)
		} else {
			out[i] = k.integralAt(e.xs, j, T)
		}
	}
	return out
}

// --- Reference walkers ---
//
// The original O(n) implementations are retained under the …Walk names
// as the ground truth the kernels are property-tested against, and as
// the "PR 2 path" the perf-trajectory snapshot (BENCH_PR3.json) times
// the kernels against.

// IntegralOneMinusFPowWalk is the O(n) reference walker for
// IntegralOneMinusFPow.
func (e *ECDF) IntegralOneMinusFPowWalk(T, s float64, b int) float64 {
	if T <= 0 || s < 0 {
		return 0
	}
	checkPow(b)
	total := 0.0
	prevX := 0.0
	prevF := 0.0 // F value on [prevX, next support)
	for i := 0; i <= len(e.xs); i++ {
		var x, f float64
		if i < len(e.xs) {
			x = e.xs[i]
			f = e.cum[i]
		} else {
			x = math.Inf(1)
			f = 1
		}
		if x > T {
			x = T
		}
		if x > prevX {
			total += (x - prevX) * math.Pow(1-s*prevF, float64(b))
		}
		if x >= T {
			return total
		}
		prevX = x
		prevF = f
	}
	return total
}

// IntegralUOneMinusFPowWalk is the O(n) reference walker for
// IntegralUOneMinusFPow.
func (e *ECDF) IntegralUOneMinusFPowWalk(T, s float64, b int) float64 {
	if T <= 0 || s < 0 {
		return 0
	}
	checkPow(b)
	total := 0.0
	prevX := 0.0
	prevF := 0.0
	for i := 0; i <= len(e.xs); i++ {
		var x, f float64
		if i < len(e.xs) {
			x = e.xs[i]
			f = e.cum[i]
		} else {
			x = math.Inf(1)
			f = 1
		}
		if x > T {
			x = T
		}
		if x > prevX {
			total += 0.5 * (x*x - prevX*prevX) * math.Pow(1-s*prevF, float64(b))
		}
		if x >= T {
			return total
		}
		prevX = x
		prevF = f
	}
	return total
}

// --- Delayed cross-term integrals ---

// IntegralProdOneMinusF computes ∫₀ᵀ (1 - s·F(u+shift))·(1 - s·F(u)) du
// exactly over the step ECDF. This is the cross term of the
// delayed-resubmission survival function, where two job copies offset
// by the delay are racing. The walk is windowed: binary-searched cursor
// entry and early exit at T keep the cost proportional to the support
// points inside [0, T] ∪ [shift, shift+T], not the full support.
func (e *ECDF) IntegralProdOneMinusF(T, shift, s float64) float64 {
	return e.integralProd(T, shift, s, false)
}

// IntegralUProdOneMinusF computes ∫₀ᵀ u·(1-s·F(u+shift))·(1-s·F(u)) du
// exactly; the second-moment companion of IntegralProdOneMinusF.
func (e *ECDF) IntegralUProdOneMinusF(T, shift, s float64) float64 {
	return e.integralProd(T, shift, s, true)
}

// IntegralProdOneMinusFWalk is IntegralProdOneMinusF under the walker
// naming scheme (the cross terms are inherently merged walks; the name
// exists so the four integral primitives expose a uniform reference
// surface for property tests and the perf snapshot).
func (e *ECDF) IntegralProdOneMinusFWalk(T, shift, s float64) float64 {
	return e.integralProd(T, shift, s, false)
}

// IntegralUProdOneMinusFWalk is the reference walker name for
// IntegralUProdOneMinusF.
func (e *ECDF) IntegralUProdOneMinusFWalk(T, shift, s float64) float64 {
	return e.integralProd(T, shift, s, true)
}

// IntegralProdBoth computes both cross-term integrals (plain and
// u-weighted) in one merged walk — half the walk cost of calling the
// two scalar methods, with bit-identical results.
func (e *ECDF) IntegralProdBoth(T, shift, s float64) (plain, uweighted float64) {
	var p, u [1]float64
	e.prodBothSweep([]float64{T}, shift, s, p[:], u[:])
	return p[0], u[0]
}

// IntegralProdBothBatch answers both cross-term integrals for every T
// in the ascending slice Ts in one merged walk (O(n + G)); this is the
// sweep the 2D delayed-surface scans use, where one grid row shares a
// single shift = t0. A non-ascending Ts falls back to per-entry walks.
// Results are bit-identical to the scalar methods at every entry.
func (e *ECDF) IntegralProdBothBatch(Ts []float64, shift, s float64) (plain, uweighted []float64) {
	plain = make([]float64, len(Ts))
	uweighted = make([]float64, len(Ts))
	if len(Ts) == 0 {
		return plain, uweighted
	}
	for i := 1; i < len(Ts); i++ {
		if Ts[i] < Ts[i-1] {
			for j, T := range Ts {
				plain[j], uweighted[j] = e.IntegralProdBoth(T, shift, s)
			}
			return plain, uweighted
		}
	}
	e.prodBothSweep(Ts, shift, s, plain, uweighted)
	return plain, uweighted
}

// prodBothSweep walks the merged jump points of F(u) and F(u+shift)
// once, accumulating both the plain and the u-weighted cross-term
// integrals, and emits the running value at every checkpoint in the
// ascending slice Ts. Checkpoint emission adds the partial final
// segment without mutating the running totals, so each emitted value
// reproduces exactly the floating-point sum a scalar walk stopping at
// that T would produce.
func (e *ECDF) prodBothSweep(Ts []float64, shift, s float64, out0, out1 []float64) {
	t := 0
	for t < len(Ts) && (Ts[t] <= 0 || s < 0) {
		out0[t], out1[t] = 0, 0
		t++
	}
	if t == len(Ts) {
		return
	}
	Tmax := Ts[len(Ts)-1]
	// Cursor i: next jump of F(u) at u = xs[i]; cursor j: next jump of
	// F(u+shift) at u = xs[j]-shift. F values carried are those on the
	// current segment [u, nextBreak).
	i := sort.SearchFloat64s(e.xs, 0)
	if i < len(e.xs) && e.xs[i] == 0 {
		i++ // jump at exactly 0 is already included in Eval(0)
	}
	j := sort.SearchFloat64s(e.xs, shift)
	if j < len(e.xs) && e.xs[j] == shift {
		j++
	}
	f2 := e.Eval(0)
	f1 := e.Eval(shift)
	u := 0.0
	tot0, tot1 := 0.0, 0.0
	for u < Tmax {
		next := Tmax
		if i < len(e.xs) && e.xs[i] < next {
			next = e.xs[i]
		}
		if j < len(e.xs) && e.xs[j]-shift < next {
			next = e.xs[j] - shift
		}
		c := (1 - s*f2) * (1 - s*f1)
		for t < len(Ts) && Ts[t] <= next {
			out0[t] = tot0 + c*(Ts[t]-u)
			out1[t] = tot1 + c*0.5*(Ts[t]*Ts[t]-u*u)
			t++
		}
		tot0 += c * (next - u)
		tot1 += c * 0.5 * (next*next - u*u)
		if next >= Tmax {
			break
		}
		for i < len(e.xs) && e.xs[i] <= next {
			f2 = e.cum[i]
			i++
		}
		for j < len(e.xs) && e.xs[j]-shift <= next {
			f1 = e.cum[j]
			j++
		}
		u = next
	}
	// Defensive: every checkpoint <= Tmax is emitted in-loop; fill any
	// float-edge stragglers with the final totals.
	for ; t < len(Ts); t++ {
		out0[t], out1[t] = tot0, tot1
	}
}

// integralProd walks the merged jump points of F(u) and F(u+shift)
// over [0, T) with two cursors — allocation-free and exact, since both
// factors are constant between consecutive jumps.
func (e *ECDF) integralProd(T, shift, s float64, withU bool) float64 {
	if T <= 0 || s < 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.xs, 0)
	if i < len(e.xs) && e.xs[i] == 0 {
		i++ // jump at exactly 0 is already included in Eval(0)
	}
	j := sort.SearchFloat64s(e.xs, shift)
	if j < len(e.xs) && e.xs[j] == shift {
		j++
	}
	f2 := e.Eval(0)
	f1 := e.Eval(shift)
	u := 0.0
	total := 0.0
	for u < T {
		next := T
		if i < len(e.xs) && e.xs[i] < next {
			next = e.xs[i]
		}
		if j < len(e.xs) && e.xs[j]-shift < next {
			next = e.xs[j] - shift
		}
		c := (1 - s*f2) * (1 - s*f1)
		if withU {
			total += c * 0.5 * (next*next - u*u)
		} else {
			total += c * (next - u)
		}
		if next >= T {
			break
		}
		for i < len(e.xs) && e.xs[i] <= next {
			f2 = e.cum[i]
			i++
		}
		for j < len(e.xs) && e.xs[j]-shift <= next {
			f1 = e.cum[j]
			j++
		}
		u = next
	}
	return total
}

// PartialExpectation computes ∫₀ᵀ u dF(u) = (1/n)·Σ_{x_i <= T} x_i,
// the contribution of samples below T to the mean (exact).
func (e *ECDF) PartialExpectation(T float64) float64 {
	sum := 0.0
	prev := 0.0
	for i, x := range e.xs {
		if x > T {
			break
		}
		sum += x * (e.cum[i] - prev)
		prev = e.cum[i]
	}
	return sum
}

// Restrict returns a new ECDF of only the sample values <= T (the
// conditional law given X <= T). It returns ErrEmpty if no values
// qualify.
//
// The restricted ECDF is built directly from the (xs, cum) weights in
// O(k) for k kept support points — no materialization of duplicate
// samples, no re-sort, and no rounding drift for weights that are not
// exact multiples of 1/n (e.g. the output of a previous Restrict).
func (e *ECDF) Restrict(T float64) (*ECDF, error) {
	// First support index beyond T: keep xs[:hi].
	hi := sort.SearchFloat64s(e.xs, T)
	if hi < len(e.xs) && e.xs[hi] == T {
		hi++
	}
	if hi == 0 {
		return nil, ErrEmpty
	}
	mass := e.cum[hi-1]
	xs := append([]float64(nil), e.xs[:hi]...)
	cum := make([]float64, hi)
	for i := 0; i < hi; i++ {
		cum[i] = e.cum[i] / mass
	}
	cum[hi-1] = 1 // pin the Quantile invariant exactly
	n := int(math.Round(mass * float64(e.n)))
	if n < hi {
		n = hi // at least one sample per retained support point
	}
	return &ECDF{xs: xs, cum: cum, n: n}, nil
}

// LinearInterpolated returns a continuous piecewise-linear CDF passing
// through the ECDF's step midpoints, suitable for density-based
// evaluations (the delayed-resubmission closed form needs a density).
// The returned function is non-decreasing, 0 before Min and 1 after
// Max.
func (e *ECDF) LinearInterpolated() func(float64) float64 {
	xs := e.xs
	cum := e.cum
	return func(x float64) float64 {
		if x <= xs[0] {
			if x == xs[0] {
				return cum[0]
			}
			return 0
		}
		if x >= xs[len(xs)-1] {
			return 1
		}
		i := sort.SearchFloat64s(xs, x)
		if i < len(xs) && xs[i] == x {
			return cum[i]
		}
		// Between xs[i-1] and xs[i].
		x0, x1 := xs[i-1], xs[i]
		y0, y1 := cum[i-1], cum[i]
		return y0 + (y1-y0)*(x-x0)/(x1-x0)
	}
}
