package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) != math.IsNaN(want) {
		t.Fatalf("%s: got %v, want %v", msg, got, want)
	}
	if math.IsNaN(want) {
		return
	}
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (tol %v, diff %v)", msg, got, want, tol, math.Abs(got-want))
	}
}

func TestRegularizedGammaPKnownValues(t *testing.T) {
	cases := []struct {
		a, x, want float64
	}{
		{1, 1, 1 - math.Exp(-1)}, // exponential CDF
		{1, 2, 1 - math.Exp(-2)},
		{0.5, 0.5, math.Erf(math.Sqrt(0.5))}, // chi-square(1) at x=1: P(0.5, 0.5)
		{2, 2, 1 - 3*math.Exp(-2)},           // Erlang-2
		{5, 5, 0.5595067149347875},           // reference value
		{10, 3, 0.0011024881301856177},       // series regime
		{3, 20, 1 - 221*math.Exp(-20)},       // CF regime: Q(3,20)=e^{-20}(1+20+200)
	}
	for _, c := range cases {
		almostEq(t, RegularizedGammaP(c.a, c.x), c.want, 1e-12, "P(a,x)")
	}
}

func TestRegularizedGammaEdgeCases(t *testing.T) {
	if got := RegularizedGammaP(2, 0); got != 0 {
		t.Fatalf("P(2,0) = %v, want 0", got)
	}
	if got := RegularizedGammaP(2, math.Inf(1)); got != 1 {
		t.Fatalf("P(2,inf) = %v, want 1", got)
	}
	if !math.IsNaN(RegularizedGammaP(-1, 1)) {
		t.Fatal("P(-1,1) should be NaN")
	}
	if got := RegularizedGammaQ(2, 0); got != 1 {
		t.Fatalf("Q(2,0) = %v, want 1", got)
	}
}

func TestRegularizedGammaComplement(t *testing.T) {
	f := func(a, x float64) bool {
		a = 0.1 + math.Abs(math.Mod(a, 20))
		x = math.Abs(math.Mod(x, 50))
		p := RegularizedGammaP(a, x)
		q := RegularizedGammaQ(a, x)
		return math.Abs(p+q-1) < 1e-10 && p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRegularizedGammaPMonotoneInX(t *testing.T) {
	for _, a := range []float64{0.3, 1, 2.5, 10} {
		prev := -1.0
		for x := 0.0; x <= 40; x += 0.25 {
			p := RegularizedGammaP(a, x)
			if p < prev-1e-12 {
				t.Fatalf("P(%v, %v)=%v not monotone (prev %v)", a, x, p, prev)
			}
			prev = p
		}
	}
}

func TestDigammaKnownValues(t *testing.T) {
	const gamma = 0.5772156649015329 // Euler–Mascheroni
	almostEq(t, Digamma(1), -gamma, 1e-12, "psi(1)")
	almostEq(t, Digamma(2), 1-gamma, 1e-12, "psi(2)")
	almostEq(t, Digamma(0.5), -2*math.Ln2-gamma, 1e-12, "psi(1/2)")
	almostEq(t, Digamma(10), 2.251752589066721, 1e-12, "psi(10)")
}

func TestDigammaRecurrence(t *testing.T) {
	// ψ(x+1) = ψ(x) + 1/x.
	for _, x := range []float64{0.1, 0.7, 1.3, 4.2, 25} {
		almostEq(t, Digamma(x+1), Digamma(x)+1/x, 1e-10, "digamma recurrence")
	}
}

func TestTrigammaKnownValues(t *testing.T) {
	almostEq(t, Trigamma(1), math.Pi*math.Pi/6, 1e-10, "psi'(1)")
	almostEq(t, Trigamma(0.5), math.Pi*math.Pi/2, 1e-10, "psi'(1/2)")
	// Recurrence ψ'(x+1) = ψ'(x) - 1/x².
	for _, x := range []float64{0.3, 1.5, 7} {
		almostEq(t, Trigamma(x+1), Trigamma(x)-1/(x*x), 1e-10, "trigamma recurrence")
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-6, 0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999, 1 - 1e-9} {
		x := NormalQuantile(p)
		almostEq(t, NormalCDF(x), p, 1e-12, "Phi(Phi^-1(p))")
	}
	if NormalQuantile(0.5) != 0 {
		t.Fatalf("median should be exactly 0, got %v", NormalQuantile(0.5))
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("quantile limits wrong")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Fatal("out-of-range p should be NaN")
	}
}

func TestNormalQuantileSymmetry(t *testing.T) {
	f := func(raw float64) bool {
		p := 0.5 + math.Mod(math.Abs(raw), 0.4999)
		return math.Abs(NormalQuantile(p)+NormalQuantile(1-p)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestErfInvRoundTrip(t *testing.T) {
	for _, x := range []float64{-3, -1.5, -0.5, -0.01, 0, 0.01, 0.5, 1.5, 3} {
		y := math.Erf(x)
		almostEq(t, ErfInv(y), x, 1e-9, "erfinv(erf(x))")
	}
	if !math.IsInf(ErfInv(1), 1) || !math.IsInf(ErfInv(-1), -1) {
		t.Fatal("erfinv limits wrong")
	}
	if !math.IsNaN(ErfInv(1.5)) {
		t.Fatal("erfinv(1.5) should be NaN")
	}
}

func TestNormalPDFIntegratesToCDF(t *testing.T) {
	// ∫_{-8}^{x} φ = Φ(x).
	for _, x := range []float64{-1, 0, 0.7, 2} {
		got := AdaptiveSimpson(NormalPDF, -8, x, 1e-12)
		almostEq(t, got, NormalCDF(x), 1e-9, "pdf integral vs cdf")
	}
}

func TestPowInt(t *testing.T) {
	if PowInt(2, 10) != 1024 || PowInt(2, 0) != 1 || PowInt(0.5, -2) != 4 {
		t.Fatal("PowInt basic values wrong")
	}
	for _, b := range []int{1, 2, 3, 5, 10, 17} {
		got := PowInt(0.73, b)
		want := math.Pow(0.73, float64(b))
		if math.Abs(got-want) > 1e-15*want {
			t.Fatalf("PowInt(0.73, %d) = %v, want %v", b, got, want)
		}
	}
	// The overflowed-conversion sentinel must terminate, not recurse.
	if got := PowInt(0.9, math.MinInt); got != math.Inf(1) {
		t.Fatalf("PowInt(0.9, MinInt) = %v, want +Inf", got)
	}
	if got := PowInt(2, math.MinInt); got != 0 {
		t.Fatalf("PowInt(2, MinInt) = %v, want 0", got)
	}
}
