package stats

import (
	"math"
	"sort"
)

// TrendResult is the outcome of a Mann–Kendall trend test.
type TrendResult struct {
	S      int     // Mann–Kendall S statistic (Σ sign(x_j - x_i), j > i)
	Tau    float64 // Kendall's tau: S normalized by the pair count
	Z      float64 // normal approximation score
	PValue float64 // two-sided p-value of "no monotone trend"
}

// MannKendall tests a sequence for a monotone trend — the
// non-stationarity check applied to windowed latency statistics of a
// trace. The normal approximation (with tie correction) is accurate
// for n ≳ 10; smaller sequences return PValue = 1.
func MannKendall(values []float64) TrendResult {
	n := len(values)
	if n < 3 {
		return TrendResult{PValue: 1}
	}
	s := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case values[j] > values[i]:
				s++
			case values[j] < values[i]:
				s--
			}
		}
	}
	pairs := n * (n - 1) / 2
	res := TrendResult{S: s, Tau: float64(s) / float64(pairs)}

	// Variance with tie correction.
	ties := map[float64]int{}
	for _, v := range values {
		ties[v]++
	}
	varS := float64(n*(n-1)*(2*n+5)) / 18
	for _, t := range ties {
		if t > 1 {
			varS -= float64(t*(t-1)*(2*t+5)) / 18
		}
	}
	if varS <= 0 {
		res.PValue = 1
		return res
	}
	switch {
	case s > 0:
		res.Z = float64(s-1) / math.Sqrt(varS)
	case s < 0:
		res.Z = float64(s+1) / math.Sqrt(varS)
	}
	res.PValue = 2 * (1 - NormalCDF(math.Abs(res.Z)))
	if res.PValue > 1 {
		res.PValue = 1
	}
	if n < 10 {
		res.PValue = math.Max(res.PValue, 0.05) // approximation unreliable
	}
	return res
}

// SenSlope returns the Theil–Sen slope estimate (median of pairwise
// slopes) of a sequence sampled at unit spacing — the robust trend
// magnitude companion of MannKendall.
func SenSlope(values []float64) float64 {
	n := len(values)
	if n < 2 {
		return 0
	}
	slopes := make([]float64, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			slopes = append(slopes, (values[j]-values[i])/float64(j-i))
		}
	}
	sort.Float64s(slopes)
	return Percentile(slopes, 0.5)
}
