// Package stats provides the statistical substrate for the gridstrat
// library: empirical cumulative distribution functions with exact
// step-function integrals, parametric probability distributions
// (lognormal, Weibull, Pareto, gamma, exponential, uniform and
// mixtures), maximum-likelihood and method-of-moments fitting,
// goodness-of-fit tests (Kolmogorov–Smirnov, Anderson–Darling,
// chi-square), sample summary statistics, numerical quadrature and the
// special functions they require.
//
// The package exists because the paper reproduced by this repository
// ("Modeling User Submission Strategies on Production Grids", HPDC'09)
// is built entirely on functionals of the cumulative latency histogram
// F̃R(t) = (1-ρ)·FR(t). Everything here is implemented from scratch on
// top of the Go standard library, closing the "sparse statistics
// libraries; manual distribution fitting" reproduction gap.
//
// Conventions: all distributions are over non-negative reals (latencies
// in seconds) unless documented otherwise; random sampling always takes
// an explicit *rand.Rand so that callers control determinism.
package stats
