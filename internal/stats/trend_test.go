package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestMannKendallDetectsTrend(t *testing.T) {
	// Strictly increasing: S = n(n-1)/2, tau = 1, tiny p.
	inc := make([]float64, 30)
	for i := range inc {
		inc[i] = float64(i)
	}
	r := MannKendall(inc)
	if r.Tau != 1 {
		t.Fatalf("tau = %v", r.Tau)
	}
	if r.PValue > 1e-6 {
		t.Fatalf("p = %v for strict trend", r.PValue)
	}
	// Decreasing: tau = -1.
	dec := make([]float64, 30)
	for i := range dec {
		dec[i] = -float64(i)
	}
	if r := MannKendall(dec); r.Tau != -1 || r.PValue > 1e-6 {
		t.Fatalf("decreasing: tau=%v p=%v", r.Tau, r.PValue)
	}
}

func TestMannKendallNoTrendOnNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	rejections := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 40)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		if MannKendall(xs).PValue < 0.05 {
			rejections++
		}
	}
	// The test has level 5%: expect ≈10 false rejections out of 200.
	if rejections > 25 {
		t.Fatalf("%d/%d false trend detections", rejections, trials)
	}
}

func TestMannKendallEdgeCases(t *testing.T) {
	if r := MannKendall(nil); r.PValue != 1 {
		t.Fatal("empty sequence should give p=1")
	}
	if r := MannKendall([]float64{1, 2}); r.PValue != 1 {
		t.Fatal("too-short sequence should give p=1")
	}
	// All ties: no trend, p = 1.
	if r := MannKendall([]float64{5, 5, 5, 5, 5}); r.S != 0 || r.PValue != 1 {
		t.Fatalf("ties: %+v", r)
	}
}

func TestSenSlope(t *testing.T) {
	// Perfect line with slope 2.5.
	xs := make([]float64, 20)
	for i := range xs {
		xs[i] = 2.5 * float64(i)
	}
	if got := SenSlope(xs); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("slope %v", got)
	}
	// Robust to one outlier.
	xs[10] = 1e6
	if got := SenSlope(xs); math.Abs(got-2.5) > 0.5 {
		t.Fatalf("outlier destroyed slope: %v", got)
	}
	if SenSlope([]float64{7}) != 0 {
		t.Fatal("degenerate slope should be 0")
	}
}
