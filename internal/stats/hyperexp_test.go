package stats

import (
	"math"
	"testing"
)

func TestHyperExponentialMoments(t *testing.T) {
	h := NewHyperExponential([]float64{0.6, 0.4}, []float64{0.01, 0.001})
	wantMean := 0.6/0.01 + 0.4/0.001
	almostEq(t, h.Mean(), wantMean, 1e-9, "mean")
	wantM2 := 2*0.6/(0.01*0.01) + 2*0.4/(0.001*0.001)
	almostEq(t, h.Var(), wantM2-wantMean*wantMean, 1e-6, "var")
	// CV > 1: the defining property.
	if Std(h) <= h.Mean() {
		t.Fatalf("hyperexp CV should exceed 1: mean=%v std=%v", h.Mean(), Std(h))
	}
}

func TestHyperExponentialReducesToExponential(t *testing.T) {
	h := NewHyperExponential([]float64{1}, []float64{0.005})
	e := NewExponential(0.005)
	for _, x := range []float64{10, 100, 500, 2000} {
		almostEq(t, h.CDF(x), e.CDF(x), 1e-12, "cdf")
		almostEq(t, h.PDF(x), e.PDF(x), 1e-12, "pdf")
	}
}

func TestHyperExponentialConformance(t *testing.T) {
	h := NewHyperExponential([]float64{0.7, 0.3}, []float64{0.01, 0.0008})
	// Quantile/CDF round trip.
	for _, p := range []float64{0.05, 0.3, 0.5, 0.9, 0.99} {
		x := h.Quantile(p)
		almostEq(t, h.CDF(x), p, 1e-8, "round trip")
	}
	// Sampling matches the law.
	sample := sampleFrom(h, 30000, 81)
	if ks := KSStatistic(sample, h); ks > 1.95/math.Sqrt(30000) {
		t.Fatalf("KS = %v", ks)
	}
	// Weights normalize.
	h2 := NewHyperExponential([]float64{2, 2}, []float64{1, 2})
	almostEq(t, h2.Weights[0], 0.5, 1e-12, "normalization")
}

func TestHyperExponentialPanics(t *testing.T) {
	mustPanic(t, func() { NewHyperExponential(nil, nil) })
	mustPanic(t, func() { NewHyperExponential([]float64{1}, []float64{1, 2}) })
	mustPanic(t, func() { NewHyperExponential([]float64{0}, []float64{1}) })
	mustPanic(t, func() { NewHyperExponential([]float64{1}, []float64{-1}) })
}

func TestFitHyperExpEMRecovers(t *testing.T) {
	want := NewHyperExponential([]float64{0.7, 0.3}, []float64{0.02, 0.002})
	sample := sampleFrom(want, 40000, 82)
	got, err := FitHyperExpEM(sample, 2, 500)
	if err != nil {
		t.Fatal(err)
	}
	// Moments recovered within a few percent.
	if math.Abs(got.Mean()-want.Mean()) > 0.05*want.Mean() {
		t.Fatalf("mean %v, want %v", got.Mean(), want.Mean())
	}
	if math.Abs(Std(got)-Std(want)) > 0.1*Std(want) {
		t.Fatalf("std %v, want %v", Std(got), Std(want))
	}
	// Distribution recovered: KS distance small.
	if ks := KSStatistic(sample, got); ks > 0.01 {
		t.Fatalf("fitted KS = %v", ks)
	}
	// Likelihood at least as good as a single exponential's.
	exp1, err := FitExponentialMLE(sample)
	if err != nil {
		t.Fatal(err)
	}
	if LogLikelihood(got, sample) < LogLikelihood(exp1, sample) {
		t.Fatal("EM fit worse than exponential MLE")
	}
}

func TestFitHyperExpEMSingleComponent(t *testing.T) {
	want := NewExponential(0.004)
	sample := sampleFrom(want, 20000, 83)
	got, err := FitHyperExpEM(sample, 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Rates[0]-want.Rate) > 0.05*want.Rate {
		t.Fatalf("rate %v, want %v", got.Rates[0], want.Rate)
	}
}

func TestFitHyperExpEMErrors(t *testing.T) {
	if _, err := FitHyperExpEM(nil, 2, 100); err != ErrEmpty {
		t.Fatal("want ErrEmpty")
	}
	if _, err := FitHyperExpEM([]float64{1, 2}, 5, 100); err == nil {
		t.Fatal("k > n should fail")
	}
	if _, err := FitHyperExpEM([]float64{1, -2}, 1, 100); err == nil {
		t.Fatal("negative data should fail")
	}
	if _, err := FitHyperExpEM([]float64{1, 2, 3}, 0, 100); err == nil {
		t.Fatal("k=0 should fail")
	}
}

func TestLogLogisticBasics(t *testing.T) {
	l := NewLogLogistic(300, 2.5)
	// Median equals alpha.
	almostEq(t, l.Quantile(0.5), 300, 1e-9, "median")
	almostEq(t, l.CDF(300), 0.5, 1e-12, "cdf at median")
	// Quantile/CDF round trip.
	for _, p := range []float64{0.01, 0.2, 0.8, 0.99} {
		almostEq(t, l.CDF(l.Quantile(p)), p, 1e-10, "round trip")
	}
	// Mean formula: α·(π/β)/sin(π/β).
	b := math.Pi / 2.5
	almostEq(t, l.Mean(), 300*b/math.Sin(b), 1e-9, "mean")
	// Heavy-tail regimes.
	if !math.IsInf(NewLogLogistic(300, 0.9).Mean(), 1) {
		t.Fatal("β<1 mean should be infinite")
	}
	if !math.IsInf(NewLogLogistic(300, 1.5).Var(), 1) {
		t.Fatal("β<2 variance should be infinite")
	}
	mustPanic(t, func() { NewLogLogistic(0, 1) })
	mustPanic(t, func() { NewLogLogistic(1, -2) })
}

func TestLogLogisticSampling(t *testing.T) {
	l := NewLogLogistic(250, 3)
	sample := sampleFrom(l, 30000, 84)
	if ks := KSStatistic(sample, l); ks > 1.95/math.Sqrt(30000) {
		t.Fatalf("KS = %v", ks)
	}
}

func TestFitLogLogisticMLE(t *testing.T) {
	want := NewLogLogistic(400, 2.2)
	sample := sampleFrom(want, 40000, 85)
	got, err := FitLogLogisticMLE(sample)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Alpha-want.Alpha) > 0.05*want.Alpha {
		t.Fatalf("alpha %v, want %v", got.Alpha, want.Alpha)
	}
	if math.Abs(got.Beta-want.Beta) > 0.08*want.Beta {
		t.Fatalf("beta %v, want %v", got.Beta, want.Beta)
	}
	if _, err := FitLogLogisticMLE(nil); err != ErrEmpty {
		t.Fatal("want ErrEmpty")
	}
	if _, err := FitLogLogisticMLE([]float64{-1, 2}); err == nil {
		t.Fatal("negative data should fail")
	}
}
