package stats

import (
	"fmt"
	"math"
)

// Trapezoid integrates f over [a, b] with n uniform panels using the
// composite trapezoid rule. It panics unless n >= 1 and a <= b.
func Trapezoid(f func(float64) float64, a, b float64, n int) float64 {
	if n < 1 || a > b {
		panic(fmt.Sprintf("stats: invalid trapezoid spec [%v,%v] n=%d", a, b, n))
	}
	if a == b {
		return 0
	}
	h := (b - a) / float64(n)
	sum := 0.5 * (f(a) + f(b))
	for i := 1; i < n; i++ {
		sum += f(a + float64(i)*h)
	}
	return sum * h
}

// Simpson integrates f over [a, b] with n uniform panels (n rounded up
// to even) using the composite Simpson rule.
func Simpson(f func(float64) float64, a, b float64, n int) float64 {
	if n < 2 || a > b {
		panic(fmt.Sprintf("stats: invalid simpson spec [%v,%v] n=%d", a, b, n))
	}
	if a == b {
		return 0
	}
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// AdaptiveSimpson integrates f over [a, b] to absolute tolerance tol
// using adaptive Simpson quadrature with a recursion-depth cap.
func AdaptiveSimpson(f func(float64) float64, a, b, tol float64) float64 {
	if a > b {
		panic(fmt.Sprintf("stats: invalid interval [%v,%v]", a, b))
	}
	if a == b {
		return 0
	}
	fa, fb := f(a), f(b)
	m := 0.5 * (a + b)
	fm := f(m)
	whole := simpsonPanel(a, b, fa, fm, fb)
	return adaptiveSimpsonRec(f, a, b, fa, fm, fb, whole, tol, 50)
}

func simpsonPanel(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptiveSimpsonRec(f func(float64) float64, a, b, fa, fm, fb, whole, tol float64, depth int) float64 {
	m := 0.5 * (a + b)
	lm := 0.5 * (a + m)
	rm := 0.5 * (m + b)
	flm, frm := f(lm), f(rm)
	left := simpsonPanel(a, m, fa, flm, fm)
	right := simpsonPanel(m, b, fm, frm, fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptiveSimpsonRec(f, a, m, fa, flm, fm, left, tol/2, depth-1) +
		adaptiveSimpsonRec(f, m, b, fm, frm, fb, right, tol/2, depth-1)
}

// UniformGrid holds a function tabulated on a uniform grid — the
// workhorse representation for the delayed-resubmission integrals,
// where every term is a functional of F̃R and its density on [0, t∞].
type UniformGrid struct {
	X0 float64   // first abscissa
	Dx float64   // spacing (> 0)
	Y  []float64 // values, len >= 2
}

// NewUniformGrid tabulates f on n+1 points spanning [a, b].
func NewUniformGrid(f func(float64) float64, a, b float64, n int) *UniformGrid {
	if n < 1 || !(a < b) {
		panic(fmt.Sprintf("stats: invalid grid spec [%v,%v] n=%d", a, b, n))
	}
	g := &UniformGrid{X0: a, Dx: (b - a) / float64(n), Y: make([]float64, n+1)}
	for i := range g.Y {
		g.Y[i] = f(a + float64(i)*g.Dx)
	}
	return g
}

// At linearly interpolates the tabulated function at x, clamping to the
// boundary values outside the grid.
func (g *UniformGrid) At(x float64) float64 {
	t := (x - g.X0) / g.Dx
	if t <= 0 {
		return g.Y[0]
	}
	if t >= float64(len(g.Y)-1) {
		return g.Y[len(g.Y)-1]
	}
	i := int(t)
	frac := t - float64(i)
	return g.Y[i]*(1-frac) + g.Y[i+1]*frac
}

// Integral returns the trapezoid integral of the tabulated function
// over its full span.
func (g *UniformGrid) Integral() float64 {
	sum := 0.5 * (g.Y[0] + g.Y[len(g.Y)-1])
	for i := 1; i < len(g.Y)-1; i++ {
		sum += g.Y[i]
	}
	return sum * g.Dx
}
