package stats

import (
	"fmt"
	"math"
	"sort"
)

// This file is the incremental-ingestion surface of the ECDF: merge-
// based construction of the next rolling-window epoch (MergeSorted /
// MergeSortedEvict) and the kernel warm-up pair (TableKeys / Prewarm)
// that lets a model swap go live with hot prefix-sum tables instead of
// repaying their O(n) builds on the first post-swap query.

// Counted reports whether the ECDF carries exact per-support sample
// counts. Counted ECDFs (built by NewECDF, NewECDFFromSorted or a
// merge) support MergeSortedEvict and SampleQuantile; weighted ones
// (built by Restrict) do not.
func (e *ECDF) Counted() bool { return e.cnt != nil }

// MergeSorted returns the ECDF of this sample extended by an ascending
// batch — the next epoch of a growing window, built in O(m + k) for m
// support points and k batch values instead of re-sorting the flat
// sample. See MergeSortedEvict for the full append-and-evict form.
func (e *ECDF) MergeSorted(batch []float64) (*ECDF, error) {
	return e.MergeSortedEvict(batch, nil)
}

// MergeSortedEvict returns the ECDF of this sample plus the ascending
// slice add and minus the ascending slice evict — one rolling-window
// step, in O(m + len(add) + len(evict)) with no re-sort. Every evicted
// value must be present in the current sample (with multiplicity); the
// receiver is not modified.
//
// The result is bit-identical to NewECDF on the equivalent flat
// sample: counts are merged exactly and the cumulative probabilities
// are recomputed as float64(runningCount)/float64(n), the same
// expression NewECDF evaluates. Kernel tables and the sampler table do
// not carry over — warm the new epoch with Prewarm(old.TableKeys())
// before swapping it in.
//
// It returns an error for weighted (Restrict-built) receivers,
// non-ascending or NaN inputs, evictions that are not in the sample,
// and ErrEmpty when every value is evicted.
func (e *ECDF) MergeSortedEvict(add, evict []float64) (*ECDF, error) {
	if e.cnt == nil {
		return nil, fmt.Errorf("stats: merge on a weighted ECDF (built by Restrict)")
	}
	if err := checkAscending("add", add); err != nil {
		return nil, err
	}
	if err := checkAscending("evict", evict); err != nil {
		return nil, err
	}
	n := e.n + len(add) - len(evict)
	if n <= 0 {
		if n < 0 {
			return nil, fmt.Errorf("stats: evicting %d values from a sample of %d", len(evict), e.n)
		}
		return nil, ErrEmpty
	}
	out := &ECDF{
		n:   n,
		xs:  make([]float64, 0, len(e.xs)+len(add)),
		cum: make([]float64, 0, len(e.xs)+len(add)),
		cnt: make([]int, 0, len(e.xs)+len(add)),
	}
	nf := float64(n)
	running := 0
	ai, di := 0, 0
	emit := func(x float64, c int) error {
		if c < 0 {
			return fmt.Errorf("stats: evicting value %v more often than it occurs", x)
		}
		if c == 0 {
			return nil
		}
		running += c
		out.xs = append(out.xs, x)
		out.cum = append(out.cum, float64(running)/nf)
		out.cnt = append(out.cnt, c)
		return nil
	}
	for i := 0; i < len(e.xs); i++ {
		// Added values strictly below the next existing support point
		// become new support. Evictions may match them too: a record
		// added and evicted within one window step (a batch wider than
		// the window) cancels here.
		for ai < len(add) && add[ai] < e.xs[i] {
			x := add[ai]
			c := 0
			for ai < len(add) && add[ai] == x {
				c++
				ai++
			}
			for di < len(evict) && evict[di] == x {
				c--
				di++
			}
			if di < len(evict) && evict[di] < x {
				return nil, fmt.Errorf("stats: evicted value %v not in the sample", evict[di])
			}
			if err := emit(x, c); err != nil {
				return nil, err
			}
		}
		c := e.cnt[i]
		for ai < len(add) && add[ai] == e.xs[i] {
			c++
			ai++
		}
		for di < len(evict) && evict[di] == e.xs[i] {
			c--
			di++
		}
		if di < len(evict) && evict[di] < e.xs[i] {
			return nil, fmt.Errorf("stats: evicted value %v not in the sample", evict[di])
		}
		if err := emit(e.xs[i], c); err != nil {
			return nil, err
		}
	}
	for ai < len(add) {
		x := add[ai]
		c := 0
		for ai < len(add) && add[ai] == x {
			c++
			ai++
		}
		for di < len(evict) && evict[di] == x {
			c--
			di++
		}
		if di < len(evict) && evict[di] < x {
			return nil, fmt.Errorf("stats: evicted value %v not in the sample", evict[di])
		}
		if err := emit(x, c); err != nil {
			return nil, err
		}
	}
	if di < len(evict) {
		return nil, fmt.Errorf("stats: evicted value %v not in the sample", evict[di])
	}
	out.cum[len(out.cum)-1] = 1
	return out, nil
}

func checkAscending(name string, xs []float64) error {
	for i, v := range xs {
		if math.IsNaN(v) {
			return fmt.Errorf("stats: NaN in %s batch", name)
		}
		if i > 0 && v < xs[i-1] {
			return fmt.Errorf("stats: %s batch not sorted at index %d", name, i)
		}
	}
	return nil
}

// TableKey identifies one lazily built (scale, power) prefix-sum
// kernel: the integrand (1 - S·F)^B. The set of keys an ECDF has
// built is exactly the set of integrands its queries have touched, so
// carrying TableKeys() from the outgoing epoch to Prewarm() on the
// incoming one reproduces the old epoch's warm cache ahead of the
// swap.
type TableKey struct {
	S float64
	B int
}

// TableKeys returns the (s, b) kernel keys this ECDF has built,
// sorted, plus nothing else — the warm-cache manifest handed to the
// next epoch's Prewarm. Safe for concurrent use.
func (e *ECDF) TableKeys() []TableKey {
	e.kmu.RLock()
	keys := make([]TableKey, 0, len(e.kernels))
	for k := range e.kernels {
		keys = append(keys, TableKey{S: k.s, B: k.b})
	}
	e.kmu.RUnlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].S != keys[j].S {
			return keys[i].S < keys[j].S
		}
		return keys[i].B < keys[j].B
	})
	return keys
}

// Prewarm eagerly builds the prefix-sum kernels for the given keys, so
// the first queries after this ECDF is swapped in cost a binary search
// instead of an O(n) table build. Keys past the kernel cache cap are
// skipped, exactly as a lazy query would be. Safe for concurrent use
// (idempotent). Companion: PrewarmSampler for the bootstrap-sampling
// table — kept separate so a model that never simulates does not pay
// an O(n) sampler build per rebuild.
func (e *ECDF) Prewarm(keys []TableKey) {
	for _, k := range keys {
		if k.S < 0 || k.B < 1 {
			continue // a lazy query would never have built this key
		}
		e.powKernelFor(k.S, k.B)
	}
}

// PrewarmSampler eagerly builds the O(1) inverse-CDF bucket table the
// bootstrap sampler (Rand) uses, so the first post-swap Monte Carlo
// draw skips the O(n) build. Safe for concurrent use (idempotent).
func (e *ECDF) PrewarmSampler() {
	e.randOnce.Do(e.buildRandTable)
}

// SamplerWarm reports whether the sampler bucket table has been built
// (by a draw or by PrewarmSampler) — the sampler half of the
// TableKeys warm-cache manifest.
func (e *ECDF) SamplerWarm() bool { return e.randBuilt.Load() }

// SampleQuantile returns the p-quantile of the underlying flat sample
// under the same type-7 linear-interpolation convention as
// stats.Percentile on the sorted sample — exact order statistics
// resolved from the support counts in O(m), without materializing the
// sample. It returns NaN for weighted (Restrict-built) ECDFs.
func (e *ECDF) SampleQuantile(p float64) float64 {
	if e.cnt == nil {
		return math.NaN()
	}
	if p <= 0 {
		return e.xs[0]
	}
	if p >= 1 {
		return e.xs[len(e.xs)-1]
	}
	h := p * float64(e.n-1)
	lo := int(math.Floor(h))
	if lo+1 >= e.n {
		return e.xs[len(e.xs)-1]
	}
	x0 := e.orderStat(lo)
	x1 := e.orderStat(lo + 1)
	return x0 + (h-float64(lo))*(x1-x0)
}

// orderStat returns the r-th (0-based) smallest sample value from the
// support counts.
func (e *ECDF) orderStat(r int) float64 {
	c := 0
	for i, x := range e.xs {
		c += e.cnt[i]
		if c > r {
			return x
		}
	}
	return e.xs[len(e.xs)-1]
}
