package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Shifted translates a base distribution right by Offset: if X ~ Base
// then Shifted is the law of X + Offset. Grid latencies have a hard
// floor (middleware round-trip time), which a positive offset models.
type Shifted struct {
	Base   Distribution
	Offset float64
}

// NewShifted returns Base translated by offset (offset may be any
// finite value).
func NewShifted(base Distribution, offset float64) Shifted {
	if base == nil || math.IsNaN(offset) || math.IsInf(offset, 0) {
		panic("stats: shifted requires a base distribution and finite offset")
	}
	return Shifted{Base: base, Offset: offset}
}

func (s Shifted) PDF(x float64) float64      { return s.Base.PDF(x - s.Offset) }
func (s Shifted) CDF(x float64) float64      { return s.Base.CDF(x - s.Offset) }
func (s Shifted) Quantile(p float64) float64 { return s.Base.Quantile(p) + s.Offset }
func (s Shifted) Rand(rng *rand.Rand) float64 {
	return s.Base.Rand(rng) + s.Offset
}
func (s Shifted) Mean() float64 { return s.Base.Mean() + s.Offset }
func (s Shifted) Var() float64  { return s.Base.Var() }

// Scaled multiplies a base distribution by Factor > 0: the law of
// Factor·X.
type Scaled struct {
	Base   Distribution
	Factor float64
}

// NewScaled returns Base scaled by factor; it panics unless
// factor > 0.
func NewScaled(base Distribution, factor float64) Scaled {
	if base == nil || factor <= 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		panic(fmt.Sprintf("stats: scaled requires positive finite factor, got %v", factor))
	}
	return Scaled{Base: base, Factor: factor}
}

func (s Scaled) PDF(x float64) float64      { return s.Base.PDF(x/s.Factor) / s.Factor }
func (s Scaled) CDF(x float64) float64      { return s.Base.CDF(x / s.Factor) }
func (s Scaled) Quantile(p float64) float64 { return s.Base.Quantile(p) * s.Factor }
func (s Scaled) Rand(rng *rand.Rand) float64 {
	return s.Base.Rand(rng) * s.Factor
}
func (s Scaled) Mean() float64 { return s.Base.Mean() * s.Factor }
func (s Scaled) Var() float64  { return s.Base.Var() * s.Factor * s.Factor }

// Mixture is a finite mixture of component distributions with
// non-negative weights summing to one.
type Mixture struct {
	components []Distribution
	weights    []float64 // normalized
	cumWeights []float64 // prefix sums for sampling
}

// NewMixture builds a mixture from parallel slices of components and
// (not necessarily normalized) positive weights. It panics on length
// mismatch, empty input, or non-positive total weight.
func NewMixture(components []Distribution, weights []float64) *Mixture {
	if len(components) == 0 || len(components) != len(weights) {
		panic(fmt.Sprintf("stats: mixture needs matching non-empty slices, got %d components and %d weights",
			len(components), len(weights)))
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("stats: mixture weight %d is invalid: %v", i, w))
		}
		total += w
	}
	if total <= 0 {
		panic("stats: mixture total weight must be positive")
	}
	m := &Mixture{
		components: append([]Distribution(nil), components...),
		weights:    make([]float64, len(weights)),
		cumWeights: make([]float64, len(weights)),
	}
	acc := 0.0
	for i, w := range weights {
		m.weights[i] = w / total
		acc += w / total
		m.cumWeights[i] = acc
	}
	m.cumWeights[len(m.cumWeights)-1] = 1
	return m
}

// Components returns the number of mixture components.
func (m *Mixture) Components() int { return len(m.components) }

// Weight returns the normalized weight of component i.
func (m *Mixture) Weight(i int) float64 { return m.weights[i] }

// Component returns component i.
func (m *Mixture) Component(i int) Distribution { return m.components[i] }

func (m *Mixture) PDF(x float64) float64 {
	sum := 0.0
	for i, c := range m.components {
		sum += m.weights[i] * c.PDF(x)
	}
	return sum
}

func (m *Mixture) CDF(x float64) float64 {
	sum := 0.0
	for i, c := range m.components {
		sum += m.weights[i] * c.CDF(x)
	}
	return sum
}

func (m *Mixture) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		lo := math.Inf(1)
		for _, c := range m.components {
			lo = math.Min(lo, c.Quantile(0))
		}
		return lo
	case p >= 1:
		return math.Inf(1)
	}
	// Bracket using component quantiles, then bisect the mixture CDF.
	lo, hi := math.Inf(1), 0.0
	for _, c := range m.components {
		lo = math.Min(lo, c.Quantile(p/2))
		q := c.Quantile(math.Min(1-1e-12, p+(1-p)/2))
		if !math.IsInf(q, 1) {
			hi = math.Max(hi, q)
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	return quantileBisect(m.CDF, p, math.Min(lo, 0), hi)
}

func (m *Mixture) Rand(rng *rand.Rand) float64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(m.cumWeights, u)
	if i >= len(m.components) {
		i = len(m.components) - 1
	}
	return m.components[i].Rand(rng)
}

func (m *Mixture) Mean() float64 {
	sum := 0.0
	for i, c := range m.components {
		sum += m.weights[i] * c.Mean()
	}
	return sum
}

func (m *Mixture) Var() float64 {
	mean := m.Mean()
	sum := 0.0
	for i, c := range m.components {
		cm := c.Mean()
		sum += m.weights[i] * (c.Var() + (cm-mean)*(cm-mean))
	}
	return sum
}

// TruncatedAbove conditions a base distribution on X <= Bound. It is
// used to model the paper's 10,000-second probe timeout: observed
// non-outlier latencies are exactly the base law conditioned below the
// timeout.
type TruncatedAbove struct {
	Base  Distribution
	Bound float64
	mass  float64 // CDF(Bound), cached
}

// NewTruncatedAbove returns Base conditioned on X <= bound; it panics
// if the base puts (numerically) no mass below bound.
func NewTruncatedAbove(base Distribution, bound float64) TruncatedAbove {
	if base == nil {
		panic("stats: truncation requires a base distribution")
	}
	mass := base.CDF(bound)
	if !(mass > 0) {
		panic(fmt.Sprintf("stats: no mass below truncation bound %v", bound))
	}
	return TruncatedAbove{Base: base, Bound: bound, mass: mass}
}

func (t TruncatedAbove) PDF(x float64) float64 {
	if x > t.Bound {
		return 0
	}
	return t.Base.PDF(x) / t.mass
}

func (t TruncatedAbove) CDF(x float64) float64 {
	if x >= t.Bound {
		return 1
	}
	return t.Base.CDF(x) / t.mass
}

func (t TruncatedAbove) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return t.Base.Quantile(0)
	case p >= 1:
		return t.Bound
	}
	return t.Base.Quantile(p * t.mass)
}

// Rand draws by inversion so that no rejection loop is needed even for
// deep truncation.
func (t TruncatedAbove) Rand(rng *rand.Rand) float64 {
	return t.Quantile(rng.Float64())
}

// Mean integrates x·pdf over [q(0), Bound] numerically.
func (t TruncatedAbove) Mean() float64 {
	m, _ := t.moments()
	return m
}

// Var integrates numerically alongside Mean.
func (t TruncatedAbove) Var() float64 {
	_, v := t.moments()
	return v
}

func (t TruncatedAbove) moments() (mean, variance float64) {
	// Integrate by quantile substitution: E[g(X)] = ∫₀¹ g(Q(p)) dp,
	// which is robust for heavy-tailed bases.
	const n = 4096
	var s1, s2 float64
	for i := 0; i < n; i++ {
		p := (float64(i) + 0.5) / n
		x := t.Quantile(p)
		s1 += x
		s2 += x * x
	}
	mean = s1 / n
	variance = s2/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}
