package stats

import (
	"math"
	"math/rand"
	"testing"
)

func sampleFrom(d Distribution, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Rand(rng)
	}
	return out
}

func TestFitExponentialMLE(t *testing.T) {
	want := NewExponential(0.004)
	got, err := FitExponentialMLE(sampleFrom(want, 50000, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Rate-want.Rate) > 0.05*want.Rate {
		t.Fatalf("rate %v, want ~%v", got.Rate, want.Rate)
	}
	if _, err := FitExponentialMLE(nil); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	if _, err := FitExponentialMLE([]float64{-1, -2}); err == nil {
		t.Fatal("want error for negative mean")
	}
}

func TestFitLogNormalMLE(t *testing.T) {
	want := NewLogNormal(6.1, 0.85)
	got, err := FitLogNormalMLE(sampleFrom(want, 50000, 2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Mu-want.Mu) > 0.02 || math.Abs(got.Sigma-want.Sigma) > 0.02 {
		t.Fatalf("got (%v, %v), want (%v, %v)", got.Mu, got.Sigma, want.Mu, want.Sigma)
	}
	if _, err := FitLogNormalMLE([]float64{1, -1}); err == nil {
		t.Fatal("want error for non-positive data")
	}
}

func TestFitWeibullMLE(t *testing.T) {
	for _, want := range []Weibull{NewWeibull(0.8, 450), NewWeibull(1.6, 300)} {
		got, err := FitWeibullMLE(sampleFrom(want, 50000, 3))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.K-want.K) > 0.05*want.K {
			t.Fatalf("shape %v, want ~%v", got.K, want.K)
		}
		if math.Abs(got.Lambda-want.Lambda) > 0.05*want.Lambda {
			t.Fatalf("scale %v, want ~%v", got.Lambda, want.Lambda)
		}
	}
}

func TestFitGammaMLE(t *testing.T) {
	want := NewGamma(2.5, 0.005)
	got, err := FitGammaMLE(sampleFrom(want, 50000, 4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Alpha-want.Alpha) > 0.05*want.Alpha {
		t.Fatalf("alpha %v, want ~%v", got.Alpha, want.Alpha)
	}
	if math.Abs(got.Beta-want.Beta) > 0.05*want.Beta {
		t.Fatalf("beta %v, want ~%v", got.Beta, want.Beta)
	}
	if _, err := FitGammaMLE([]float64{5, 5, 5}); err == nil {
		t.Fatal("constant sample should fail gamma MLE")
	}
}

func TestFitParetoMLE(t *testing.T) {
	want := NewPareto(150, 2.2)
	got, err := FitParetoMLE(sampleFrom(want, 50000, 5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Alpha-want.Alpha) > 0.05*want.Alpha {
		t.Fatalf("alpha %v, want ~%v", got.Alpha, want.Alpha)
	}
	if got.Xm > 151 || got.Xm < 150 {
		t.Fatalf("xm %v, want ~150", got.Xm)
	}
}

func TestFitShiftedLogNormalMoments(t *testing.T) {
	d, err := FitShiftedLogNormalMoments(500, 700, 120)
	if err != nil {
		t.Fatal(err)
	}
	almostEq(t, d.Mean(), 500, 1e-6, "mean")
	almostEq(t, Std(d), 700, 1e-6, "std")
	if _, err := FitShiftedLogNormalMoments(100, 50, 150); err == nil {
		t.Fatal("shift above mean should error")
	}
	if _, err := FitShiftedLogNormalMoments(100, 0, 10); err == nil {
		t.Fatal("zero std should error")
	}
}

func TestFitBestPicksGeneratingFamily(t *testing.T) {
	// Data generated from a lognormal should rank lognormal first.
	sample := sampleFrom(NewLogNormal(6, 0.9), 20000, 6)
	results := FitBest(sample)
	if len(results) == 0 {
		t.Fatal("no fits returned")
	}
	if results[0].Name != "lognormal" {
		t.Fatalf("best fit = %s (loglik %v), want lognormal", results[0].Name, results[0].LogLik)
	}
	// Log-likelihoods must be sorted descending.
	for i := 1; i < len(results); i++ {
		if results[i].LogLik > results[i-1].LogLik {
			t.Fatal("results not sorted by log-likelihood")
		}
	}

	// And data from a Weibull should rank Weibull first.
	sample = sampleFrom(NewWeibull(0.9, 400), 20000, 7)
	results = FitBest(sample)
	if results[0].Name != "weibull" {
		t.Fatalf("best fit = %s, want weibull", results[0].Name)
	}
}

func TestLogLikelihoodOutOfSupport(t *testing.T) {
	if !math.IsInf(LogLikelihood(NewPareto(100, 2), []float64{50}), -1) {
		t.Fatal("below-support likelihood should be -Inf")
	}
}
