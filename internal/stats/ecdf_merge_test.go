package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// ecdfEqual reports bit-exact equality of support, cumulative
// probabilities, counts and sample size.
func ecdfEqual(a, b *ECDF) bool {
	if a.n != b.n || len(a.xs) != len(b.xs) {
		return false
	}
	for i := range a.xs {
		if a.xs[i] != b.xs[i] || a.cum[i] != b.cum[i] || a.cnt[i] != b.cnt[i] {
			return false
		}
	}
	return true
}

func TestNewECDFFromSortedMatchesNewECDF(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		sample := make([]float64, n)
		for i := range sample {
			// Coarse grid to force duplicate support points.
			sample[i] = float64(rng.Intn(40)) * 3.5
		}
		ref, err := NewECDF(sample)
		if err != nil {
			t.Fatal(err)
		}
		sorted := append([]float64(nil), sample...)
		sort.Float64s(sorted)
		got, err := NewECDFFromSorted(sorted)
		if err != nil {
			t.Fatal(err)
		}
		if !ecdfEqual(ref, got) {
			t.Fatalf("trial %d: NewECDFFromSorted diverged from NewECDF", trial)
		}
	}
	if _, err := NewECDFFromSorted([]float64{2, 1}); err == nil {
		t.Fatal("unsorted sample accepted")
	}
	if _, err := NewECDFFromSorted([]float64{1, math.NaN()}); err == nil {
		t.Fatal("NaN sample accepted")
	}
	if _, err := NewECDFFromSorted(nil); err != ErrEmpty {
		t.Fatalf("empty sample: got %v, want ErrEmpty", err)
	}
}

// TestMergeSortedEvictMatchesFlat is the merge ground-truth property:
// a random chain of append+evict steps stays bit-identical to NewECDF
// on the equivalent flat sample at every epoch.
func TestMergeSortedEvictMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		flat := make([]float64, 1+rng.Intn(50))
		for i := range flat {
			flat[i] = float64(rng.Intn(30)) * 2.25
		}
		cur, err := NewECDF(flat)
		if err != nil {
			t.Fatal(err)
		}
		// Keep the live multiset in a sorted slice for reference.
		sort.Float64s(flat)
		for step := 0; step < 20; step++ {
			add := make([]float64, rng.Intn(20))
			for i := range add {
				add[i] = float64(rng.Intn(30)) * 2.25
			}
			sort.Float64s(add)
			// Evict a random sorted subset of the live values.
			nEvict := rng.Intn(len(flat) + 1)
			if nEvict+len(add) >= len(flat)+len(add) { // keep at least one value
				nEvict = len(flat) + len(add) - 1
				if nEvict > len(flat) {
					nEvict = len(flat)
				}
			}
			perm := rng.Perm(len(flat))[:nEvict]
			sort.Ints(perm)
			evict := make([]float64, 0, nEvict)
			for _, i := range perm {
				evict = append(evict, flat[i])
			}
			next, err := cur.MergeSortedEvict(add, evict)
			if err != nil {
				t.Fatalf("trial %d step %d: merge: %v", trial, step, err)
			}
			// Reference: rebuild flat multiset and sort-construct.
			kept := flat[:0:0]
			ei := 0
			for _, v := range flat {
				if ei < len(evict) && evict[ei] == v {
					ei++
					continue
				}
				kept = append(kept, v)
			}
			flat = append(kept, add...)
			sort.Float64s(flat)
			ref, err := NewECDF(flat)
			if err != nil {
				t.Fatal(err)
			}
			if !ecdfEqual(ref, next) {
				t.Fatalf("trial %d step %d: merged ECDF diverged from flat rebuild", trial, step)
			}
			cur = next
		}
	}
}

func TestMergeSortedEvictErrors(t *testing.T) {
	e := MustECDF([]float64{1, 2, 2, 3})
	if _, err := e.MergeSortedEvict(nil, []float64{2.5}); err == nil {
		t.Fatal("evicting a value not in the sample succeeded")
	}
	if _, err := e.MergeSortedEvict(nil, []float64{2, 2, 2}); err == nil {
		t.Fatal("over-evicting a value succeeded")
	}
	if _, err := e.MergeSortedEvict(nil, []float64{1, 2, 2, 3}); err != ErrEmpty {
		t.Fatalf("evicting everything: got %v, want ErrEmpty", err)
	}
	if _, err := e.MergeSortedEvict([]float64{3, 1}, nil); err == nil {
		t.Fatal("unsorted add batch accepted")
	}
	if _, err := e.MergeSortedEvict([]float64{math.NaN()}, nil); err == nil {
		t.Fatal("NaN add batch accepted")
	}
	r, err := e.Restrict(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.MergeSorted([]float64{1}); err == nil {
		t.Fatal("merge on a weighted (Restrict) ECDF succeeded")
	}
	if r.Counted() {
		t.Fatal("Restrict output claims counts")
	}
	if !e.Counted() {
		t.Fatal("NewECDF output lacks counts")
	}
}

// TestPrewarmHandoff pins the warm-cache swap: TableKeys lists exactly
// the kernels queries built, Prewarm reproduces them on a successor,
// and prewarmed answers are bit-identical to lazily built ones.
func TestPrewarmHandoff(t *testing.T) {
	old := MustECDF([]float64{1, 3, 5, 7, 11})
	if got := old.TableKeys(); len(got) != 0 {
		t.Fatalf("fresh ECDF has kernels %v", got)
	}
	// Touch three integrands.
	old.IntegralOneMinusFPow(6, 0.9, 1)
	old.IntegralOneMinusFPow(6, 0.9, 5)
	old.IntegralUOneMinusFPow(6, 0.8, 2)
	keys := old.TableKeys()
	want := []TableKey{{S: 0.8, B: 2}, {S: 0.9, B: 1}, {S: 0.9, B: 5}}
	if len(keys) != len(want) {
		t.Fatalf("TableKeys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("TableKeys = %v, want %v", keys, want)
		}
	}

	next, err := old.MergeSorted([]float64{2, 9})
	if err != nil {
		t.Fatal(err)
	}
	next.Prewarm(keys)
	if got := next.TableKeys(); len(got) != len(want) {
		t.Fatalf("prewarmed keys = %v, want %v", got, want)
	}
	// A cold twin must answer identically to the prewarmed copy.
	cold, err := old.MergeSorted([]float64{2, 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range want {
		for _, T := range []float64{0.5, 4, 8, 20} {
			if a, b := next.IntegralOneMinusFPow(T, k.S, k.B), cold.IntegralOneMinusFPow(T, k.S, k.B); a != b {
				t.Fatalf("prewarmed integral diverged at (T=%v, s=%v, b=%d): %v vs %v", T, k.S, k.B, a, b)
			}
		}
	}
	// The sampler table warms separately (a model that never simulates
	// must not pay the O(n) build): Prewarm leaves it cold, SamplerWarm
	// reports the handoff state, and a prewarmed sampler's seeded draw
	// stream matches the cold path bit for bit.
	if next.SamplerWarm() {
		t.Fatal("Prewarm built the sampler table")
	}
	next.PrewarmSampler()
	if !next.SamplerWarm() {
		t.Fatal("PrewarmSampler did not mark the sampler warm")
	}
	rng1, rng2 := rand.New(rand.NewSource(5)), rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		if a, b := next.Rand(rng1), cold.Rand(rng2); a != b {
			t.Fatalf("draw %d diverged: %v vs %v", i, a, b)
		}
	}
	if !cold.SamplerWarm() {
		t.Fatal("a draw did not mark the sampler warm")
	}
	// Nonsense keys are ignored, not built.
	next.Prewarm([]TableKey{{S: -1, B: 1}, {S: 0.5, B: 0}})
	if got := next.TableKeys(); len(got) != len(want) {
		t.Fatalf("nonsense keys were built: %v", got)
	}
}

func TestSampleQuantileMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(120)
		sample := make([]float64, n)
		for i := range sample {
			sample[i] = float64(rng.Intn(25)) * 1.75
		}
		e := MustECDF(sample)
		sorted := append([]float64(nil), sample...)
		sort.Float64s(sorted)
		for _, p := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1} {
			if got, want := e.SampleQuantile(p), Percentile(sorted, p); got != want {
				t.Fatalf("trial %d: SampleQuantile(%v) = %v, want %v", trial, p, got, want)
			}
		}
	}
	r, _ := MustECDF([]float64{1, 2, 3}).Restrict(2)
	if !math.IsNaN(r.SampleQuantile(0.5)) {
		t.Fatal("weighted ECDF SampleQuantile should be NaN")
	}
}
