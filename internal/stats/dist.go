package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Distribution is a univariate continuous probability distribution.
//
// Implementations must guarantee CDF is non-decreasing with limits 0
// and 1, Quantile is the (generalized) inverse of CDF, and Rand draws
// i.i.d. samples using only the supplied source.
type Distribution interface {
	// PDF returns the probability density at x.
	PDF(x float64) float64
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Quantile returns the p-quantile, p in [0, 1].
	Quantile(p float64) float64
	// Rand draws one sample using rng.
	Rand(rng *rand.Rand) float64
	// Mean returns the expectation (may be +Inf).
	Mean() float64
	// Var returns the variance (may be +Inf).
	Var() float64
}

// Std returns the standard deviation of d.
func Std(d Distribution) float64 { return math.Sqrt(d.Var()) }

// quantileBisect inverts a CDF by bisection on [lo, hi]. It is the
// fallback used by distributions without a closed-form quantile. The
// bracket is widened geometrically if it does not already contain p.
func quantileBisect(cdf func(float64) float64, p, lo, hi float64) float64 {
	if p <= 0 {
		return lo
	}
	if p >= 1 {
		return math.Inf(1)
	}
	for cdf(hi) < p {
		lo = hi
		hi *= 2
		if math.IsInf(hi, 1) {
			return hi
		}
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if mid == lo || mid == hi {
			break
		}
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// --- Exponential ---

// Exponential is the exponential distribution with rate λ > 0.
type Exponential struct{ Rate float64 }

// NewExponential returns an exponential distribution with the given
// rate; it panics if rate <= 0.
func NewExponential(rate float64) Exponential {
	if rate <= 0 || math.IsNaN(rate) {
		panic(fmt.Sprintf("stats: exponential rate must be positive, got %v", rate))
	}
	return Exponential{Rate: rate}
}

func (e Exponential) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return e.Rate * math.Exp(-e.Rate*x)
}

func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-e.Rate * x)
}

func (e Exponential) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	return -math.Log1p(-p) / e.Rate
}

func (e Exponential) Rand(rng *rand.Rand) float64 { return rng.ExpFloat64() / e.Rate }
func (e Exponential) Mean() float64               { return 1 / e.Rate }
func (e Exponential) Var() float64                { return 1 / (e.Rate * e.Rate) }

// --- Uniform ---

// Uniform is the continuous uniform distribution on [A, B].
type Uniform struct{ A, B float64 }

// NewUniform returns a uniform distribution on [a, b]; it panics unless
// a < b.
func NewUniform(a, b float64) Uniform {
	if !(a < b) {
		panic(fmt.Sprintf("stats: uniform requires a < b, got [%v, %v]", a, b))
	}
	return Uniform{A: a, B: b}
}

func (u Uniform) PDF(x float64) float64 {
	if x < u.A || x > u.B {
		return 0
	}
	return 1 / (u.B - u.A)
}

func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.A:
		return 0
	case x >= u.B:
		return 1
	}
	return (x - u.A) / (u.B - u.A)
}

func (u Uniform) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return u.A
	case p >= 1:
		return u.B
	}
	return u.A + p*(u.B-u.A)
}

func (u Uniform) Rand(rng *rand.Rand) float64 { return u.A + rng.Float64()*(u.B-u.A) }
func (u Uniform) Mean() float64               { return 0.5 * (u.A + u.B) }
func (u Uniform) Var() float64                { d := u.B - u.A; return d * d / 12 }

// --- LogNormal ---

// LogNormal is the lognormal distribution: ln X ~ N(Mu, Sigma²).
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// NewLogNormal returns a lognormal distribution; it panics if
// sigma <= 0.
func NewLogNormal(mu, sigma float64) LogNormal {
	if sigma <= 0 || math.IsNaN(sigma) {
		panic(fmt.Sprintf("stats: lognormal sigma must be positive, got %v", sigma))
	}
	return LogNormal{Mu: mu, Sigma: sigma}
}

// LogNormalFromMoments returns the lognormal whose mean and standard
// deviation equal the given values (both must be positive).
func LogNormalFromMoments(mean, std float64) LogNormal {
	if mean <= 0 || std <= 0 {
		panic(fmt.Sprintf("stats: lognormal moments must be positive, got mean=%v std=%v", mean, std))
	}
	v := math.Log1p(std * std / (mean * mean)) // ln(1 + σ²/μ²)
	return LogNormal{Mu: math.Log(mean) - v/2, Sigma: math.Sqrt(v)}
}

func (l LogNormal) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - l.Mu) / l.Sigma
	return math.Exp(-z*z/2) / (x * l.Sigma * math.Sqrt(2*math.Pi))
}

func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return NormalCDF((math.Log(x) - l.Mu) / l.Sigma)
}

func (l LogNormal) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	return math.Exp(l.Mu + l.Sigma*NormalQuantile(p))
}

func (l LogNormal) Rand(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

func (l LogNormal) Var() float64 {
	s2 := l.Sigma * l.Sigma
	return math.Expm1(s2) * math.Exp(2*l.Mu+s2)
}

// --- Weibull ---

// Weibull is the Weibull distribution with shape K > 0 and scale
// Lambda > 0. K < 1 yields a heavy-ish tail (decreasing hazard), which
// is a common fit for grid queue-wait times.
type Weibull struct {
	K      float64 // shape
	Lambda float64 // scale
}

// NewWeibull returns a Weibull distribution; it panics unless both
// parameters are positive.
func NewWeibull(k, lambda float64) Weibull {
	if k <= 0 || lambda <= 0 || math.IsNaN(k) || math.IsNaN(lambda) {
		panic(fmt.Sprintf("stats: weibull parameters must be positive, got k=%v lambda=%v", k, lambda))
	}
	return Weibull{K: k, Lambda: lambda}
}

func (w Weibull) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		if w.K < 1 {
			return math.Inf(1)
		}
		if w.K == 1 {
			return 1 / w.Lambda
		}
		return 0
	}
	z := x / w.Lambda
	return w.K / w.Lambda * math.Pow(z, w.K-1) * math.Exp(-math.Pow(z, w.K))
}

func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(x/w.Lambda, w.K))
}

func (w Weibull) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	return w.Lambda * math.Pow(-math.Log1p(-p), 1/w.K)
}

func (w Weibull) Rand(rng *rand.Rand) float64 {
	return w.Lambda * math.Pow(rng.ExpFloat64(), 1/w.K)
}

func (w Weibull) Mean() float64 {
	return w.Lambda * math.Gamma(1+1/w.K)
}

func (w Weibull) Var() float64 {
	g1 := math.Gamma(1 + 1/w.K)
	g2 := math.Gamma(1 + 2/w.K)
	return w.Lambda * w.Lambda * (g2 - g1*g1)
}

// --- Pareto ---

// Pareto is the Pareto (type I) distribution with scale Xm > 0 and
// shape Alpha > 0: P(X > x) = (Xm/x)^Alpha for x >= Xm.
type Pareto struct {
	Xm    float64 // scale (minimum)
	Alpha float64 // tail index
}

// NewPareto returns a Pareto distribution; it panics unless both
// parameters are positive.
func NewPareto(xm, alpha float64) Pareto {
	if xm <= 0 || alpha <= 0 || math.IsNaN(xm) || math.IsNaN(alpha) {
		panic(fmt.Sprintf("stats: pareto parameters must be positive, got xm=%v alpha=%v", xm, alpha))
	}
	return Pareto{Xm: xm, Alpha: alpha}
}

func (p Pareto) PDF(x float64) float64 {
	if x < p.Xm {
		return 0
	}
	return p.Alpha * math.Pow(p.Xm, p.Alpha) / math.Pow(x, p.Alpha+1)
}

func (p Pareto) CDF(x float64) float64 {
	if x <= p.Xm {
		return 0
	}
	return 1 - math.Pow(p.Xm/x, p.Alpha)
}

func (p Pareto) Quantile(q float64) float64 {
	switch {
	case q <= 0:
		return p.Xm
	case q >= 1:
		return math.Inf(1)
	}
	return p.Xm * math.Pow(1-q, -1/p.Alpha)
}

func (p Pareto) Rand(rng *rand.Rand) float64 {
	return p.Xm * math.Exp(rng.ExpFloat64()/p.Alpha)
}

func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

func (p Pareto) Var() float64 {
	if p.Alpha <= 2 {
		return math.Inf(1)
	}
	return p.Xm * p.Xm * p.Alpha / ((p.Alpha - 1) * (p.Alpha - 1) * (p.Alpha - 2))
}

// --- Gamma ---

// Gamma is the gamma distribution with shape Alpha > 0 and rate
// Beta > 0 (mean Alpha/Beta).
type Gamma struct {
	Alpha float64 // shape
	Beta  float64 // rate
}

// NewGamma returns a gamma distribution; it panics unless both
// parameters are positive.
func NewGamma(alpha, beta float64) Gamma {
	if alpha <= 0 || beta <= 0 || math.IsNaN(alpha) || math.IsNaN(beta) {
		panic(fmt.Sprintf("stats: gamma parameters must be positive, got alpha=%v beta=%v", alpha, beta))
	}
	return Gamma{Alpha: alpha, Beta: beta}
}

func (g Gamma) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		switch {
		case g.Alpha < 1:
			return math.Inf(1)
		case g.Alpha == 1:
			return g.Beta
		default:
			return 0
		}
	}
	lg, _ := math.Lgamma(g.Alpha)
	return math.Exp(g.Alpha*math.Log(g.Beta) + (g.Alpha-1)*math.Log(x) - g.Beta*x - lg)
}

func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return RegularizedGammaP(g.Alpha, g.Beta*x)
}

func (g Gamma) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	// Wilson–Hilferty starting point, then bisection fallback around it.
	z := NormalQuantile(p)
	wh := g.Alpha * math.Pow(1-1/(9*g.Alpha)+z/(3*math.Sqrt(g.Alpha)), 3) / g.Beta
	if wh <= 0 || math.IsNaN(wh) {
		wh = g.Mean()
	}
	return quantileBisect(g.CDF, p, 0, math.Max(wh*4, g.Mean()*4))
}

// Rand draws a gamma variate using the Marsaglia–Tsang method (with the
// alpha < 1 boost).
func (g Gamma) Rand(rng *rand.Rand) float64 {
	alpha := g.Alpha
	boost := 1.0
	if alpha < 1 {
		boost = math.Pow(rng.Float64(), 1/alpha)
		alpha++
	}
	d := alpha - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return boost * d * v / g.Beta
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return boost * d * v / g.Beta
		}
	}
}

func (g Gamma) Mean() float64 { return g.Alpha / g.Beta }
func (g Gamma) Var() float64  { return g.Alpha / (g.Beta * g.Beta) }
