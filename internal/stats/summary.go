package stats

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // population standard deviation
	Var    float64 // population variance
	Min    float64
	Max    float64
	Median float64
	P25    float64
	P75    float64
	P95    float64
	P99    float64
}

// Summarize computes descriptive statistics of sample. It returns the
// zero Summary for an empty sample.
func Summarize(sample []float64) Summary {
	if len(sample) == 0 {
		return Summary{}
	}
	s := Summary{N: len(sample)}
	xs := append([]float64(nil), sample...)
	sort.Float64s(xs)
	s.Min, s.Max = xs[0], xs[len(xs)-1]
	s.Mean = Mean(xs)
	s.Var = Variance(xs)
	s.Std = math.Sqrt(s.Var)
	s.Median = Percentile(xs, 0.5)
	s.P25 = Percentile(xs, 0.25)
	s.P75 = Percentile(xs, 0.75)
	s.P95 = Percentile(xs, 0.95)
	s.P99 = Percentile(xs, 0.99)
	return s
}

// Mean returns the arithmetic mean of sample (0 if empty). The
// Kahan-compensated summation keeps the result stable on long traces.
func Mean(sample []float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	sum, comp := 0.0, 0.0
	for _, v := range sample {
		y := v - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum / float64(len(sample))
}

// Variance returns the population variance of sample (0 if fewer than
// two values), computed by the two-pass compensated algorithm.
func Variance(sample []float64) float64 {
	if len(sample) < 2 {
		return 0
	}
	mean := Mean(sample)
	var ss, comp float64
	for _, v := range sample {
		d := v - mean
		ss += d * d
		comp += d
	}
	n := float64(len(sample))
	return (ss - comp*comp/n) / n
}

// StdDev returns the population standard deviation of sample.
func StdDev(sample []float64) float64 { return math.Sqrt(Variance(sample)) }

// SampleVariance returns the unbiased (n-1) variance.
func SampleVariance(sample []float64) float64 {
	n := len(sample)
	if n < 2 {
		return 0
	}
	return Variance(sample) * float64(n) / float64(n-1)
}

// Percentile returns the p-quantile (p in [0,1]) of a *sorted* sample
// using linear interpolation between closest ranks (type-7, the R/NumPy
// default). It panics on an empty sample.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: percentile of empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	h := p * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo] + (h-float64(lo))*(sorted[hi]-sorted[lo])
}

// TruncatedMean returns the mean of the sample values <= bound and the
// count of such values. Used for the paper's "mean < 10⁴ s" column.
func TruncatedMean(sample []float64, bound float64) (mean float64, count int) {
	sum := 0.0
	for _, v := range sample {
		if v <= bound {
			sum += v
			count++
		}
	}
	if count == 0 {
		return 0, 0
	}
	return sum / float64(count), count
}

// CensoredMean returns the mean with values above bound replaced by
// bound — the paper's "mean with 10⁵" lower bound of the true mean.
func CensoredMean(sample []float64, bound float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range sample {
		sum += math.Min(v, bound)
	}
	return sum / float64(len(sample))
}

// TruncatedStd returns the population standard deviation of the sample
// values <= bound.
func TruncatedStd(sample []float64, bound float64) float64 {
	var kept []float64
	for _, v := range sample {
		if v <= bound {
			kept = append(kept, v)
		}
	}
	return StdDev(kept)
}

// OutlierRatio returns the fraction of sample values strictly greater
// than bound.
func OutlierRatio(sample []float64, bound float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	n := 0
	for _, v := range sample {
		if v > bound {
			n++
		}
	}
	return float64(n) / float64(len(sample))
}
