package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// KDE is a Gaussian kernel density estimate of a sample. The paper's
// Eq. 5 consumes a latency *density* f̃R, which a raw ECDF does not
// provide; the KDE (or a histogram) closes that gap.
type KDE struct {
	xs []float64 // sorted sample
	h  float64   // bandwidth
}

// SilvermanBandwidth returns Silverman's rule-of-thumb bandwidth
// 0.9·min(σ̂, IQR/1.34)·n^{-1/5} for the sample.
func SilvermanBandwidth(sample []float64) float64 {
	if len(sample) < 2 {
		return 1
	}
	xs := append([]float64(nil), sample...)
	sort.Float64s(xs)
	sigma := StdDev(xs)
	iqr := Percentile(xs, 0.75) - Percentile(xs, 0.25)
	spread := sigma
	if iqr > 0 && iqr/1.34 < spread {
		spread = iqr / 1.34
	}
	if spread <= 0 {
		return 1
	}
	return 0.9 * spread * math.Pow(float64(len(xs)), -0.2)
}

// NewKDE builds a Gaussian KDE with the given bandwidth (pass <= 0 for
// Silverman's rule). It returns ErrEmpty for an empty sample.
func NewKDE(sample []float64, bandwidth float64) (*KDE, error) {
	if len(sample) == 0 {
		return nil, ErrEmpty
	}
	for _, v := range sample {
		if math.IsNaN(v) {
			return nil, fmt.Errorf("stats: NaN in KDE sample")
		}
	}
	if bandwidth <= 0 {
		bandwidth = SilvermanBandwidth(sample)
	}
	xs := append([]float64(nil), sample...)
	sort.Float64s(xs)
	return &KDE{xs: xs, h: bandwidth}, nil
}

// Bandwidth returns the kernel bandwidth in use.
func (k *KDE) Bandwidth() float64 { return k.h }

// PDF returns the estimated density at x. Kernels further than 8
// bandwidths contribute < 1e-15 and are skipped via the sorted order.
func (k *KDE) PDF(x float64) float64 {
	lo := sort.SearchFloat64s(k.xs, x-8*k.h)
	hi := sort.SearchFloat64s(k.xs, x+8*k.h)
	sum := 0.0
	for _, xi := range k.xs[lo:hi] {
		z := (x - xi) / k.h
		sum += math.Exp(-z * z / 2)
	}
	return sum / (float64(len(k.xs)) * k.h * math.Sqrt(2*math.Pi))
}

// CDF returns the estimated cumulative probability at x.
func (k *KDE) CDF(x float64) float64 {
	sum := 0.0
	for _, xi := range k.xs {
		z := (x - xi) / k.h
		switch {
		case z > 8:
			sum++
		case z < -8:
			// contributes 0
		default:
			sum += NormalCDF(z)
		}
	}
	return sum / float64(len(k.xs))
}

// Quantile inverts the KDE CDF by bisection.
func (k *KDE) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return k.xs[0] - 8*k.h
	case p >= 1:
		return math.Inf(1)
	}
	lo := k.xs[0] - 9*k.h
	hi := k.xs[len(k.xs)-1] + 9*k.h
	return quantileBisect(k.CDF, p, lo, hi)
}

// Rand draws from the KDE: a sample point plus kernel noise.
func (k *KDE) Rand(rng *rand.Rand) float64 {
	xi := k.xs[rng.Intn(len(k.xs))]
	return xi + k.h*rng.NormFloat64()
}

// Mean returns the KDE mean (the sample mean: Gaussian kernels are
// centered).
func (k *KDE) Mean() float64 { return Mean(k.xs) }

// Var returns the KDE variance: sample variance plus h².
func (k *KDE) Var() float64 { return Variance(k.xs) + k.h*k.h }
