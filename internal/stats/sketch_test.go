package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// randomSample draws n latency-like values (lognormal-ish spread) from
// a fixed seed.
func randomSample(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = 100 * math.Exp(rng.NormFloat64())
	}
	return out
}

// TestSketchLosslessBitEqual pins the property the force-sketch CI
// toggle leans on: while no compaction has occurred (n <= k), the
// compiled view is bit-identical to the exact ECDF of the same sample
// — same support, same cumulative probabilities, same counts.
func TestSketchLosslessBitEqual(t *testing.T) {
	sample := randomSample(800, 1)
	sample = append(sample, sample[10], sample[20], sample[20]) // ties
	s, err := NewSketch(sample, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if s.Compactions() != 0 {
		t.Fatalf("n=%d <= k=1024 but %d compactions", len(sample), s.Compactions())
	}
	if got := s.ErrorBound(); got != 0 {
		t.Fatalf("uncompacted sketch reports error bound %v", got)
	}
	exact, err := NewECDF(sample)
	if err != nil {
		t.Fatal(err)
	}
	view := s.View()
	if len(view.xs) != len(exact.xs) {
		t.Fatalf("support: view %d, exact %d", len(view.xs), len(exact.xs))
	}
	for i := range view.xs {
		if view.xs[i] != exact.xs[i] || view.cum[i] != exact.cum[i] || view.cnt[i] != exact.cnt[i] {
			t.Fatalf("index %d: view (%v,%v,%d) != exact (%v,%v,%d)",
				i, view.xs[i], view.cum[i], view.cnt[i], exact.xs[i], exact.cum[i], exact.cnt[i])
		}
	}
	// The integral kernels must agree bit for bit too — they only read
	// xs/cum/cnt, but this guards the counted flag and kernel plumbing.
	for _, T := range []float64{50, 150, 900} {
		if a, b := s.IntegralOneMinusFPow(T, 1, 3), exact.IntegralOneMinusFPow(T, 1, 3); a != b {
			t.Fatalf("IntegralOneMinusFPow(%v): sketch %v, exact %v", T, a, b)
		}
		if a, b := s.IntegralUProdOneMinusF(T, 10, 1), exact.IntegralUProdOneMinusF(T, 10, 1); a != b {
			t.Fatalf("IntegralUProdOneMinusF(%v): sketch %v, exact %v", T, a, b)
		}
	}
}

// TestSketchWeightConservation: compaction keeps one survivor per pair
// at twice the weight, so total weight — and therefore N() and the
// view's count column — equals the number of observed values exactly.
func TestSketchWeightConservation(t *testing.T) {
	for _, n := range []int{1, 7, 1024, 1025, 10_000, 60_000} {
		s, err := NewSketch(randomSample(n, int64(n)), 256)
		if err != nil {
			t.Fatal(err)
		}
		if s.N() != n {
			t.Fatalf("n=%d: N() = %d", n, s.N())
		}
		total := 0
		for _, c := range s.View().cnt {
			total += c
		}
		if total != n {
			t.Fatalf("n=%d: view counts sum to %d", n, total)
		}
		if last := s.View().cum[len(s.View().cum)-1]; last != 1 {
			t.Fatalf("n=%d: cum[last] = %v", n, last)
		}
	}
}

// TestSketchRankError: on a heavily compacted sketch, every CDF
// evaluation stays within the self-reported ErrorBound of the exact
// empirical CDF, and the bound itself is small (O(log(n/k)/k)).
func TestSketchRankError(t *testing.T) {
	sample := randomSample(50_000, 2)
	s, err := NewSketch(sample, 256)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewECDF(sample)
	if err != nil {
		t.Fatal(err)
	}
	eps := s.ErrorBound()
	if eps <= 0 || eps > 0.12 {
		t.Fatalf("k=256, n=50000: error bound %v outside (0, 0.12]", eps)
	}
	worst := 0.0
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		x := exact.Quantile(p)
		if d := math.Abs(s.Eval(x) - exact.Eval(x)); d > worst {
			worst = d
		}
	}
	if worst > eps {
		t.Fatalf("observed CDF error %v exceeds reported bound %v", worst, eps)
	}
	// Quantiles are within the bound in probability: F_exact of the
	// sketched quantile is within eps of the requested p.
	for _, p := range []float64{0.1, 0.5, 0.9} {
		if d := math.Abs(exact.Eval(s.Quantile(p)) - p); d > eps+1.0/float64(len(sample)) {
			t.Fatalf("quantile(%v): rank displacement %v > bound %v", p, d, eps)
		}
	}
}

// TestSketchDefaultKBound pins the headline sizing claim: at the
// default capacity a 10^5-value window sketches with a worst-case rank
// error under 3%.
func TestSketchDefaultKBound(t *testing.T) {
	s, err := NewSketch(randomSample(100_000, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != DefaultSketchK {
		t.Fatalf("K() = %d, want %d", s.K(), DefaultSketchK)
	}
	if eps := s.ErrorBound(); eps >= 0.03 {
		t.Fatalf("error bound %v >= 0.03 at default k", eps)
	}
}

// TestSketchMergeEvictExactWhileUncompacted: before any compaction the
// sketch tracks the rolling multiset exactly, so a merge+evict epoch
// step lands bit-equal to the ECDF merge of the same window.
func TestSketchMergeEvictExactWhileUncompacted(t *testing.T) {
	base := randomSample(400, 4)
	sort.Float64s(base)
	add := randomSample(50, 5)
	sort.Float64s(add)
	evict := append([]float64(nil), base[:30]...) // oldest values leave

	s, err := SketchFromSorted(base, 1024)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := s.MergeSortedEvict(add, evict)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewECDFFromSorted(base)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := e.MergeSortedEvict(add, evict)
	if err != nil {
		t.Fatal(err)
	}
	if s2.N() != e2.N() {
		t.Fatalf("N: sketch %d, ecdf %d", s2.N(), e2.N())
	}
	v := s2.View()
	if len(v.xs) != len(e2.xs) {
		t.Fatalf("support: sketch %d, ecdf %d", len(v.xs), len(e2.xs))
	}
	for i := range v.xs {
		if v.xs[i] != e2.xs[i] || v.cum[i] != e2.cum[i] {
			t.Fatalf("index %d: sketch (%v,%v) != ecdf (%v,%v)", i, v.xs[i], v.cum[i], e2.xs[i], e2.cum[i])
		}
	}
	// The receiver is an immutable epoch: s still describes the base.
	if s.N() != len(base) {
		t.Fatalf("receiver mutated: N = %d, want %d", s.N(), len(base))
	}
}

// TestSketchMergeEvictRandomized drives a long randomized epoch chain
// through a compacted sketch and pins the structural invariants at
// every step: weight accounting (evictions only subtract when a
// weight-1 copy was actually removed), monotone ascending view with
// cum[last] = 1, and the error bound against the grow-only multiset
// the sketch actually retains.
func TestSketchMergeEvictRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	window := randomSample(4000, 7)
	s, err := NewSketch(window, 128)
	if err != nil {
		t.Fatal(err)
	}
	sort.Float64s(window)
	for step := 0; step < 40; step++ {
		add := randomSample(100+rng.Intn(200), int64(1000+step))
		sort.Float64s(add)
		// Evict a random slice of current window values plus a few
		// values the window never held (must be silently ignored).
		k := rng.Intn(80)
		lo := rng.Intn(len(window) - k)
		evict := append([]float64(nil), window[lo:lo+k]...)
		evict = append(evict, -1, 1e12)
		sort.Float64s(evict)

		before := s.N()
		next, err := s.MergeSortedEvict(add, evict)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		removed := before + len(add) - next.N()
		if removed < 0 || removed > k {
			t.Fatalf("step %d: removed %d outside [0, %d]", step, removed, k)
		}
		v := next.View()
		for i := 1; i < len(v.xs); i++ {
			if !(v.xs[i] > v.xs[i-1]) || v.cum[i] < v.cum[i-1] {
				t.Fatalf("step %d: view not monotone at %d", step, i)
			}
		}
		if v.cum[len(v.cum)-1] != 1 {
			t.Fatalf("step %d: cum[last] = %v", step, v.cum[len(v.cum)-1])
		}
		if eps := next.ErrorBound(); eps < 0 || eps > 1 {
			t.Fatalf("step %d: error bound %v", step, eps)
		}
		window = append(window, add...)
		sort.Float64s(window)
		s = next
	}
}

// TestSketchDeterminism: the compaction schedule is deterministic, so
// two sketches built from the same sequence are identical — levels,
// parities and compiled views all match bit for bit.
func TestSketchDeterminism(t *testing.T) {
	sample := randomSample(20_000, 8)
	a, err := NewSketch(sample, 512)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSketch(sample, 512)
	if err != nil {
		t.Fatal(err)
	}
	if a.Levels() != b.Levels() || a.Compactions() != b.Compactions() {
		t.Fatalf("shape: (%d,%d) vs (%d,%d)", a.Levels(), a.Compactions(), b.Levels(), b.Compactions())
	}
	av, bv := a.View(), b.View()
	if len(av.xs) != len(bv.xs) {
		t.Fatalf("support: %d vs %d", len(av.xs), len(bv.xs))
	}
	for i := range av.xs {
		if av.xs[i] != bv.xs[i] || av.cum[i] != bv.cum[i] || av.cnt[i] != bv.cnt[i] {
			t.Fatalf("views diverge at %d", i)
		}
	}
}

// TestSketchFromECDF: the demotion constructor streams the flat sample
// out of the counted support, so it must equal the sketch of the raw
// sample (the multiset round-trips exactly through the ECDF).
func TestSketchFromECDF(t *testing.T) {
	sample := randomSample(30_000, 9)
	sample = append(sample, sample[0], sample[0], sample[1]) // duplicates survive
	e, err := NewECDF(sample)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewSketch(sample, 256)
	if err != nil {
		t.Fatal(err)
	}
	viaECDF, err := SketchFromECDF(e, 256)
	if err != nil {
		t.Fatal(err)
	}
	if direct.N() != viaECDF.N() {
		t.Fatalf("N: direct %d, via ECDF %d", direct.N(), viaECDF.N())
	}
	dv, ev := direct.View(), viaECDF.View()
	if len(dv.xs) != len(ev.xs) {
		t.Fatalf("support: %d vs %d", len(dv.xs), len(ev.xs))
	}
	for i := range dv.xs {
		if dv.xs[i] != ev.xs[i] || dv.cnt[i] != ev.cnt[i] {
			t.Fatalf("multisets diverge at %d", i)
		}
	}
	// Weighted (Restrict-built) ECDFs have no flat sample to stream.
	r, err := e.Restrict(e.Quantile(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SketchFromECDF(r, 256); err == nil {
		t.Fatal("SketchFromECDF accepted a weighted ECDF")
	}
}

// TestSketchMemBytes: the whole point — a compacted sketch of a large
// window is orders of magnitude smaller than the exact ECDF, and the
// estimate grows once the view compiles.
func TestSketchMemBytes(t *testing.T) {
	sample := randomSample(100_000, 10)
	s, err := NewSketch(sample, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewECDF(sample)
	if err != nil {
		t.Fatal(err)
	}
	bare := s.MemBytes()
	if bare <= 0 {
		t.Fatalf("MemBytes = %d", bare)
	}
	s.View()
	withView := s.MemBytes()
	if withView <= bare {
		t.Fatalf("view did not grow the estimate: %d -> %d", bare, withView)
	}
	if ratio := float64(e.MemBytes()) / float64(withView); ratio < 4 {
		t.Fatalf("exact/sketch byte ratio %.1f < 4 (exact %d, sketch %d)", ratio, e.MemBytes(), withView)
	}
}

// TestSketchInterfaceParity exercises the full EmpiricalDistribution
// surface on a compacted sketch against the exact ECDF with loose
// (error-bound-derived) tolerances, so a regression in any delegated
// method is caught even where bit-equality cannot hold.
func TestSketchInterfaceParity(t *testing.T) {
	sample := randomSample(40_000, 11)
	s, err := NewSketch(sample, 512)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewECDF(sample)
	if err != nil {
		t.Fatal(err)
	}
	eps := s.ErrorBound()
	relClose := func(name string, got, want, tol float64) {
		t.Helper()
		denom := math.Abs(want)
		if denom < 1e-12 {
			denom = 1e-12
		}
		if math.Abs(got-want)/denom > tol {
			t.Fatalf("%s: sketch %v, exact %v (tol %v)", name, got, want, tol)
		}
	}
	relClose("Mean", s.Mean(), e.Mean(), 5*eps)
	relClose("Std", s.Std(), e.Std(), 10*eps)
	relClose("SampleQuantile(0.5)", s.SampleQuantile(0.5), e.SampleQuantile(0.5), 10*eps)
	T := e.Quantile(0.95)
	for b := 1; b <= 3; b++ {
		got := s.IntegralOneMinusFPow(T, 1, b)
		want := e.IntegralOneMinusFPow(T, 1, b)
		// |∂(1-F)^b/∂F| <= b, so the integral moves at most b·eps·T.
		if math.Abs(got-want) > float64(b)*eps*T+1e-9 {
			t.Fatalf("IntegralOneMinusFPow b=%d: |%v - %v| > %v", b, got, want, float64(b)*eps*T)
		}
		gb := s.IntegralOneMinusFPowBatch([]float64{T / 2, T}, 1, b)
		if gb[1] != got {
			t.Fatalf("batch/scalar mismatch at b=%d", b)
		}
	}
	plain, uw := s.IntegralProdBoth(T, T/10, 1)
	if p2 := s.IntegralProdOneMinusF(T, T/10, 1); p2 != plain {
		t.Fatalf("ProdBoth plain %v != IntegralProdOneMinusF %v", plain, p2)
	}
	if u2 := s.IntegralUProdOneMinusF(T, T/10, 1); u2 != uw {
		t.Fatalf("ProdBoth u %v != IntegralUProdOneMinusF %v", uw, u2)
	}
	wantPlain := e.IntegralProdOneMinusF(T, T/10, 1)
	if math.Abs(plain-wantPlain) > 2*eps*T+1e-9 {
		t.Fatalf("IntegralProdOneMinusF: |%v - %v| > %v", plain, wantPlain, 2*eps*T)
	}
	// Rand consumes one uniform and returns a retained value.
	rng := rand.New(rand.NewSource(12))
	v := s.Rand(rng)
	if v < s.Min() || v > s.Max() {
		t.Fatalf("Rand %v outside [%v, %v]", v, s.Min(), s.Max())
	}
}

// TestSketchEmptyAndErrors covers the constructor error surface.
func TestSketchEmptyAndErrors(t *testing.T) {
	if _, err := NewSketch(nil, 0); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, err := NewSketch([]float64{1, math.NaN()}, 0); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := SketchFromSorted([]float64{2, 1}, 0); err == nil {
		t.Fatal("descending sample accepted")
	}
	s, err := NewSketch([]float64{5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.MergeSortedEvict(nil, []float64{5}); err == nil {
		t.Fatal("evicting the last value must report ErrEmpty")
	}
}
