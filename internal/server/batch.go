package server

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"gridstrat"
)

// This file implements POST /v1/batch/plan: many (model, op) planning
// queries in one HTTP exchange. The batch is the wire-level
// counterpart of the library's batched kernels — one request
// amortizes connection, framing, admission and encoding costs over
// every item, and items on the same model snapshot share its memoized
// integral cache, so a batch of 64 touches each model's tables once
// where 64 single requests would race to warm them separately.
//
// Semantics:
//   - Items execute with bounded concurrency (the server worker cap)
//     over registry snapshots; results are positionally ordered.
//   - Each item succeeds or fails alone: a bad item yields a per-item
//     error envelope, never a failed batch.
//   - Admission charges one unit per item against the request class's
//     ceiling (see acquireN). A partially admitted batch executes the
//     granted head and sheds the tail with per-item "shed" envelopes
//     plus a Retry-After header; a fully refused batch answers 429.

// maxBatchItems caps the items one batch may carry — the same
// "bounded request" discipline as maxObservationBatch: the per-item
// cost model bounds concurrency, this bounds the envelope itself.
const maxBatchItems = 4096

// handleBatchPlan serves POST /v1/batch/plan.
func (s *Server) handleBatchPlan(w http.ResponseWriter, r *http.Request) {
	var req BatchPlanRequest
	if err := s.decodeJSONPooled(w, r, &req, false); err != nil {
		return
	}
	n := len(req.Items)
	if n == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "empty batch: provide items")
		return
	}
	if n > maxBatchItems {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("batch of %d items exceeds the cap %d", n, maxBatchItems))
		return
	}

	class := RequestClass(r.Context())
	granted64, observed := s.adm.acquireN(class, int64(n))
	granted := int(granted64)
	if granted == 0 {
		s.adm.batchSheds.Add(uint64(n))
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterS))
		writeError(w, http.StatusTooManyRequests, "shed",
			fmt.Sprintf("%s-class batch of %d shed whole: %d units in flight against a %s limit of %d; retry after %ds",
				class, n, observed, class, s.adm.limits[class], retryAfterS))
		return
	}
	defer s.adm.releaseN(granted64)

	s.adm.batchRequests.Add(1)
	s.adm.batchItems.Add(uint64(granted))

	results := make([]BatchItemResult, n)
	s.runBatch(r, req.Items[:granted], results[:granted])

	shed := n - granted
	if shed > 0 {
		s.adm.batchSheds.Add(uint64(shed))
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterS))
		for i := granted; i < n; i++ {
			results[i] = BatchItemResult{Error: &BatchItemError{
				Status: http.StatusTooManyRequests,
				Code:   "shed",
				Message: fmt.Sprintf("item shed by partial admission: %d of %d admitted against the %s limit of %d; retry after %ds",
					granted, n, class, s.adm.limits[class], retryAfterS),
			}}
		}
	}
	writeJSON(w, http.StatusOK, BatchPlanResponse{
		Results:  results,
		Admitted: granted,
		Shed:     shed,
	})
}

// runBatch executes items into results (same length) with bounded
// concurrency. A single-item batch runs inline — no goroutine, no
// WaitGroup — so the smallest batches stay on the caller's stack.
func (s *Server) runBatch(r *http.Request, items []BatchItem, results []BatchItemResult) {
	if len(items) == 1 {
		results[0] = s.batchItemResult(r, items[0])
		return
	}
	workers := s.cfg.MaxWorkers
	if workers > len(items) {
		workers = len(items)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				results[i] = s.batchItemResult(r, items[i])
			}
		}()
	}
	wg.Wait()
}

// batchItemError renders err exactly as the single-request handler
// would, embedded in the item envelope.
func batchItemError(err error) BatchItemResult {
	status, code, msg := computeErrEnvelope(err)
	return BatchItemResult{Error: &BatchItemError{Status: status, Code: code, Message: msg}}
}

func batchItemBadRequest(msg string) BatchItemResult {
	return BatchItemResult{Error: &BatchItemError{
		Status: http.StatusBadRequest, Code: "bad_request", Message: msg,
	}}
}

// batchItemResult executes one item, mirroring the corresponding
// single-request handler exactly: same resolution (registry get with
// on-demand restore), same option handling, same degraded marking,
// same error vocabulary. The parity suite holds batch items
// bit-identical to single calls.
func (s *Server) batchItemResult(r *http.Request, it BatchItem) BatchItemResult {
	// Per-item shape validation: fields belonging to a different op
	// are caller bugs, rejected rather than ignored.
	switch it.Op {
	case "recommend":
		if len(it.Strategies) > 0 || it.Strategy != nil {
			return batchItemBadRequest("recommend items take options/cheapest only")
		}
	case "rank":
		if it.Cheapest || it.Strategy != nil {
			return batchItemBadRequest("rank items take options/strategies only")
		}
	case "optimize":
		if it.Cheapest || len(it.Strategies) > 0 {
			return batchItemBadRequest("optimize items take options/strategy only")
		}
		if it.Strategy == nil {
			return batchItemBadRequest("optimize items require a strategy")
		}
	case "":
		return batchItemBadRequest("missing op (want recommend, rank or optimize)")
	default:
		return batchItemBadRequest(fmt.Sprintf("unknown op %q (want recommend, rank or optimize)", it.Op))
	}

	e, err := s.reg.Get(it.Model)
	if err != nil {
		e, err = s.reg.Restore(it.Model)
	}
	if err != nil {
		return batchItemError(err)
	}
	st := e.State()

	switch it.Op {
	case "recommend":
		// The option-free item rides the snapshot's cached default
		// recommendation, the same fast path as the single endpoint.
		if it.Options == nil && !it.Cheapest {
			if err := r.Context().Err(); err != nil {
				return batchItemError(err)
			}
			if _, _, err := st.defaultRecommend(e.ID); err != nil {
				return batchItemError(err)
			}
			resp := &RecommendResponse{
				Model:          e.ID,
				Version:        st.Version,
				Recommendation: st.recEnvelope,
			}
			resp.DegradedReason, resp.Degraded = s.degradedOf(e, st)
			return BatchItemResult{Recommend: resp}
		}
		p, err := s.plannerFor(r, st, it.Options)
		if err != nil {
			return batchItemBadRequest(err.Error())
		}
		var rec gridstrat.Recommendation
		if it.Cheapest {
			rec, err = p.RecommendCheapest()
		} else {
			rec, err = p.Recommend()
		}
		if err != nil {
			return batchItemError(err)
		}
		resp := &RecommendResponse{
			Model:          e.ID,
			Version:        st.Version,
			Recommendation: recToJSON(rec),
		}
		resp.DegradedReason, resp.Degraded = s.degradedOf(e, st)
		return BatchItemResult{Recommend: resp}

	case "rank":
		var strategies []gridstrat.Strategy
		for i, sp := range it.Strategies {
			strat, err := sp.toStrategy()
			if err != nil {
				return batchItemBadRequest(fmt.Sprintf("strategies[%d]: %v", i, err))
			}
			strategies = append(strategies, strat)
		}
		p, err := s.plannerFor(r, st, it.Options)
		if err != nil {
			return batchItemBadRequest(err.Error())
		}
		ranked, err := p.Rank(strategies...)
		if err != nil {
			return batchItemError(err)
		}
		resp := &RankResponse{Model: e.ID, Version: st.Version, Ranking: []RankedJSON{}}
		for _, rs := range ranked {
			resp.Ranking = append(resp.Ranking, RankedJSON{
				StrategySpec: specOf(rs.Strategy),
				Eval:         evalToJSON(rs.Eval),
				DeltaCost:    rs.Delta,
			})
		}
		resp.DegradedReason, resp.Degraded = s.degradedOf(e, st)
		return BatchItemResult{Rank: resp}

	default: // "optimize", validated above
		strat, err := it.Strategy.toStrategy()
		if err != nil {
			return batchItemBadRequest(err.Error())
		}
		p, err := s.plannerFor(r, st, it.Options)
		if err != nil {
			return batchItemBadRequest(err.Error())
		}
		tuned, ev, err := p.Optimize(strat)
		if err != nil {
			return batchItemError(err)
		}
		resp := &OptimizeResponse{
			Model:    e.ID,
			Version:  st.Version,
			Strategy: specOf(tuned),
			Eval:     evalToJSON(ev),
		}
		resp.DegradedReason, resp.Degraded = s.degradedOf(e, st)
		return BatchItemResult{Optimize: resp}
	}
}
