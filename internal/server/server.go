package server

import (
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"gridstrat"
	"gridstrat/internal/chaos"
	"gridstrat/internal/trace"
	"gridstrat/internal/wal"
)

// Version identifies the service build; it is reported by /v1/healthz
// so operators (and the cluster router) can tell heterogeneous
// backends apart.
const Version = "0.8.0"

// Config tunes a Server. The zero value is usable: every field falls
// back to the default documented on it.
type Config struct {
	// Shards is the registry shard count (default 8).
	Shards int
	// MaxModels caps the registry size; inserting past it evicts the
	// least-recently-used model of the target shard (default 256).
	MaxModels int
	// DefaultWindow is the rolling-window width (seconds) of models
	// created without an explicit window_s (default 7 days — the
	// paper's weekly tuning granularity).
	DefaultWindow float64
	// MaxBodyBytes bounds request bodies, trace uploads included
	// (default 32 MiB).
	MaxBodyBytes int64
	// MaxRuns caps the per-request Monte Carlo run count
	// (default 2,000,000).
	MaxRuns int
	// MaxWorkers caps the per-request parallelism degree; larger
	// requests are clamped, not rejected (default GOMAXPROCS).
	MaxWorkers int
	// RebuildInterval decouples observation acks from model rebuilds:
	// when positive, batches are stamped, queued and acknowledged
	// immediately, and a per-entry worker coalesces everything queued
	// within the interval into one rebuild (bounded staleness; the
	// observations endpoint's sync flag forces an inline drain). Zero
	// (the default) keeps the synchronous rebuild-per-batch behaviour.
	RebuildInterval time.Duration
	// MaxQueuedRecords caps the acknowledged-but-unapplied records per
	// entry in async mode; a batch pushing the queue past the cap pays
	// for an inline coalesced drain (default 1,048,576).
	MaxQueuedRecords int
	// WALDir enables durable persistence: every model gets an
	// append-only observation log plus periodic compacted snapshots
	// under this directory, and Recover replays them on boot so a
	// restart loses no acknowledged state. Empty (the default) keeps
	// the registry memory-only.
	WALDir string
	// WALSync is the fsync policy for WAL appends: "always",
	// "interval" (the default) or "none".
	WALSync string
	// WALSyncInterval is the flush period of the "interval" policy
	// (default 100ms).
	WALSyncInterval time.Duration
	// WALSegmentBytes rotates WAL segments past this size
	// (default 4 MiB).
	WALSegmentBytes int64
	// SnapshotEvery compacts a model's log into a fresh snapshot after
	// this many appended records (default 4096), bounding both disk
	// use and replay time.
	SnapshotEvery int
	// MaxBytes caps the registry's estimated resident heap footprint
	// (window records + model representations + built tables). Past
	// the cap the coldest exact-tier models are demoted to the
	// quantile-sketch tier — on a durable server the window moves to
	// the WAL snapshot and drops from memory — and, once nothing is
	// left to demote, the coldest entries are evicted outright. Zero
	// (the default) disables byte-based tiering; MaxModels still
	// bounds the count.
	MaxBytes int64
	// SketchTier builds every model in the sketch tier from
	// registration on — the representation-parity CI toggle
	// (GRIDSTRAT_SKETCH_TIER=1 in the test helper).
	SketchTier bool
	// MaxInflight is the hard cap on concurrently admitted
	// /v1/models* requests; past class-specific fractions of it
	// (sheddable 50%, standard 90%, critical 100%) requests answer
	// 429 + Retry-After instead of queueing (see admission.go).
	// Zero (the default) disables admission control.
	MaxInflight int
	// DegradedPending is the acknowledged-but-unapplied record count
	// past which query responses on an entry are marked degraded
	// ("backlog") — the answer is still the last-good snapshot, but it
	// lags the acked data (default 4096).
	DegradedPending int
	// WALHooks injects append/fsync faults into the WAL (nil in
	// production) — the internal/chaos test seam.
	WALHooks *wal.Hooks
	// Chaos injects deterministic handler-level faults (latency,
	// resets, 5xx) per the scenario; nil disables. The CI chaos drill
	// arms it via gridstratd's -chaos flag.
	Chaos *chaos.Scenario
	// Logger receives one line per request; nil disables request
	// logging.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.MaxModels <= 0 {
		c.MaxModels = 256
	}
	if c.DefaultWindow <= 0 {
		c.DefaultWindow = 7 * 24 * 3600
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxRuns <= 0 {
		c.MaxRuns = 2_000_000
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 4096
	}
	if c.DegradedPending <= 0 {
		c.DegradedPending = 4096
	}
	return c
}

// Server is the gridstratd HTTP planning service: a model registry
// plus the route handlers of the /v1 API. Construct it with New, then
// serve Handler() with any http.Server. A Server is safe for
// concurrent use; all mutable state lives in the registry.
type Server struct {
	cfg   Config
	reg   *Registry
	mux   *http.ServeMux
	start time.Time
	adm   *admission

	// degradedCount tallies responses served with degraded: true (see
	// degradedOf for the conditions).
	degradedCount atomic.Uint64

	// recovering is true from construction (of a WAL-enabled server)
	// until Recover finishes; registry-wide routes (create, list,
	// delete) answer 503 and /v1/healthz reports "recovering" so a
	// cluster router can tell a booting backend from a dead one.
	// Model-scoped routes restore their model on demand and serve it
	// with degraded: "recovering" instead of refusing.
	recovering atomic.Bool
}

// New builds a Server with an empty registry. With Config.WALDir set
// the registry is durable: call Recover before (or concurrently with)
// serving to replay the persisted models.
func New(cfg Config) (*Server, error) {
	s := &Server{
		cfg:   cfg.withDefaults(),
		start: time.Now(),
	}
	s.adm = newAdmission(s.cfg.MaxInflight)
	s.reg = NewRegistry(s.cfg.Shards, s.cfg.MaxModels)
	s.reg.SetIngestPolicy(s.cfg.RebuildInterval, s.cfg.MaxQueuedRecords)
	s.reg.SetMemoryPolicy(s.cfg.MaxBytes, s.cfg.SketchTier)
	if s.cfg.WALDir != "" {
		policy, err := wal.ParseSyncPolicy(s.cfg.WALSync)
		if err != nil {
			return nil, err
		}
		store, err := wal.NewStore(s.cfg.WALDir, wal.Options{
			Sync:         policy,
			SyncEvery:    s.cfg.WALSyncInterval,
			SegmentBytes: s.cfg.WALSegmentBytes,
			Hooks:        s.cfg.WALHooks,
		})
		if err != nil {
			return nil, err
		}
		s.reg.SetWAL(store, s.cfg.SnapshotEvery)
		s.recovering.Store(true)
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// MustNew is New for configurations that cannot fail (no WAL); it
// panics on error. Tests and examples use it.
func MustNew(cfg Config) *Server {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Recover replays every persisted model from the WAL directory into
// the registry, then marks the server ready. On a WAL-less server it
// is a no-op. Models whose durable state cannot support a model (for
// example an async-mode window that crashed degenerate) are skipped
// with a log line; their files are left in place for inspection.
//
// Run it before accepting traffic, or concurrently with serving: model
// routes answer 503 service_unavailable until it returns.
func (s *Server) Recover() error {
	if s.reg.walStore == nil {
		return nil
	}
	defer s.recovering.Store(false)
	ids, err := s.reg.walStore.List()
	if err != nil {
		return err
	}
	for _, id := range ids {
		if _, err := s.reg.Restore(id); err != nil {
			if s.cfg.Logger != nil {
				s.cfg.Logger.Printf("wal: skipping model %q: %v", id, err)
			}
			continue
		}
	}
	return nil
}

// Recovering reports whether a WAL replay is still in flight.
func (s *Server) Recovering() bool { return s.recovering.Load() }

// routes registers every endpoint. docs/openapi.yaml is the normative
// description of this surface; the two must list exactly the same
// routes.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/models", s.handleCreateModel)
	s.mux.HandleFunc("GET /v1/models", s.handleListModels)
	s.mux.HandleFunc("GET /v1/models/{id}", s.handleGetModel)
	s.mux.HandleFunc("DELETE /v1/models/{id}", s.handleDeleteModel)
	s.mux.HandleFunc("POST /v1/models/{id}/recommend", s.handleRecommend)
	s.mux.HandleFunc("POST /v1/models/{id}/rank", s.handleRank)
	s.mux.HandleFunc("POST /v1/models/{id}/optimize", s.handleOptimize)
	s.mux.HandleFunc("POST /v1/models/{id}/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/models/{id}/makespan", s.handleMakespan)
	s.mux.HandleFunc("POST /v1/models/{id}/observations", s.handleObservations)
	s.mux.HandleFunc("POST /v1/batch/plan", s.handleBatchPlan)
}

// Handler returns the service's HTTP handler: the route mux wrapped
// in admission control (SLO-class shedding + deadline propagation),
// panic recovery, optional fault injection and (when configured)
// request logging. Chaos sits inside admission so injected faults
// exercise exactly what real slow/failing work would: an injected
// latency spike holds its admission slot, pushing the gate toward
// shedding, the way a genuinely slow backend does.
func (s *Server) Handler() http.Handler {
	var h http.Handler = s.mux
	if s.cfg.Chaos != nil {
		h = chaos.Middleware(h, *s.cfg.Chaos)
	}
	h = s.admissionMiddleware(h)
	h = recoverMiddleware(h)
	if s.cfg.Logger != nil {
		h = loggingMiddleware(s.cfg.Logger, h)
	}
	return h
}

// Registry exposes the model registry (used by the daemon for preload
// and by tests for direct inspection).
func (s *Server) Registry() *Registry { return s.reg }

// Preload registers the named paper datasets (or every one of them
// for the single name "all") under their dataset names.
func (s *Server) Preload(names ...string) error {
	if len(names) == 1 && names[0] == "all" {
		names = nil
		for _, spec := range gridstrat.PaperDatasets() {
			names = append(names, spec.Name)
		}
	}
	for _, name := range names {
		tr, err := gridstrat.SynthesizeDataset(name)
		if err != nil {
			return err
		}
		if _, err := s.reg.Put(name, "dataset:"+name, s.cfg.DefaultWindow, tr); err != nil {
			return fmt.Errorf("preloading %q: %w", name, err)
		}
	}
	return nil
}

// plannerFor builds the per-request Planner: the entry's memoized
// model (so every request on one model snapshot shares one integral
// cache), the request context (so a dropped connection cancels the
// optimization mid-scan), and the request's constraint options. The
// server-wide worker cap is applied first so it also binds requests
// that omit the workers option (whose Planner default, GOMAXPROCS,
// may exceed the cap); an explicit clamped option overrides it.
func (s *Server) plannerFor(r *http.Request, st *ModelState, o *Options) (*gridstrat.Planner, error) {
	opts := []gridstrat.PlannerOption{
		gridstrat.WithContext(r.Context()),
		gridstrat.WithParallelism(s.cfg.MaxWorkers),
	}
	opts = append(opts, o.plannerOptions(s.cfg.MaxWorkers)...)
	return gridstrat.NewPlanner(st.Model, opts...)
}

// parseTrace decodes an uploaded trace document in the given format.
func parseTrace(format, doc string) (*trace.Trace, error) {
	switch format {
	case "csv":
		return gridstrat.ReadTraceCSV(strings.NewReader(doc))
	case "gwf":
		return gridstrat.ReadTraceGWF(strings.NewReader(doc))
	case "json":
		return gridstrat.ReadTraceJSON(strings.NewReader(doc))
	default:
		return nil, fmt.Errorf("unknown trace format %q (want csv, gwf or json)", format)
	}
}
