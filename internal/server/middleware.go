package server

import (
	"log"
	"net/http"
	"time"
)

// statusRecorder captures the response status for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(status int) {
	sr.status = status
	sr.ResponseWriter.WriteHeader(status)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// loggingMiddleware writes one line per request: method, path,
// status, duration.
func loggingMiddleware(l *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		l.Printf("%s %s %d %s", r.Method, r.URL.Path, rec.status, time.Since(start).Round(time.Microsecond))
	})
}

// recoverMiddleware converts handler panics into a 500 envelope so
// one bad request cannot take the daemon down. If the header already
// went out there is nothing to be done beyond closing the stream —
// WriteHeader would just log a superfluous-call warning.
func recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					// net/http's sanctioned abort: let it propagate so
					// the connection is dropped silently as documented.
					panic(p)
				}
				if rec.status == 0 {
					writeError(w, http.StatusInternalServerError, "internal",
						"internal error (see server log)")
				}
				log.Printf("server: panic serving %s %s: %v", r.Method, r.URL.Path, p)
			}
		}()
		next.ServeHTTP(rec, r)
	})
}
