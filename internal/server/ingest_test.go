package server

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"gridstrat"
	"gridstrat/internal/stats"
	"gridstrat/internal/trace"
)

// seedTrace builds a deterministic in-memory trace: n completed probes
// spaced spacing seconds apart plus a few outliers at the tail.
func seedTrace(name string, n int, spacing float64, outliers int) *trace.Trace {
	rng := rand.New(rand.NewSource(7))
	tr := &trace.Trace{Name: name, Timeout: trace.DefaultTimeout}
	id := 0
	for i := 0; i < n; i++ {
		tr.Records = append(tr.Records, trace.ProbeRecord{
			ID: id, Submit: float64(i) * spacing, Latency: 100 * (0.5 + rng.Float64()), Status: trace.StatusCompleted,
		})
		id++
	}
	for i := 0; i < outliers; i++ {
		tr.Records = append(tr.Records, trace.ProbeRecord{
			ID: id, Submit: float64(n+i) * spacing, Latency: tr.Timeout, Status: trace.StatusOutlier,
		})
		id++
	}
	return tr
}

// legacyEntry replays the pre-incremental write path — copy every
// window record, re-stamp, LastWindow re-scan, full model rebuild per
// batch — exactly as Entry.Observe implemented it before the rolling-
// buffer refactor. It is the ground truth of the equivalence test and
// the baseline of the ingest benchmarks.
type legacyEntry struct {
	win    *trace.Trace
	width  float64
	nextID int
}

func newLegacyEntry(tr *trace.Trace, width float64) (*legacyEntry, error) {
	windowed, err := trace.LastWindow(tr, width)
	if err != nil {
		return nil, err
	}
	if _, err := gridstrat.ModelFromTrace(windowed); err != nil {
		return nil, err
	}
	maxID := 0
	for _, rec := range tr.Records {
		if rec.ID >= maxID {
			maxID = rec.ID + 1
		}
	}
	return &legacyEntry{win: windowed, width: width, nextID: maxID}, nil
}

func (l *legacyEntry) observe(recs []trace.ProbeRecord, start *float64, spacing float64) (*gridstrat.EmpiricalModel, error) {
	if spacing <= 0 {
		spacing = 1
	}
	cursor := 0.0
	if start != nil {
		cursor = *start
	} else {
		for _, r := range l.win.Records {
			if s := r.Submit + spacing; s > cursor {
				cursor = s
			}
		}
	}
	combined := &trace.Trace{
		Name:    l.win.Name,
		Timeout: l.win.Timeout,
		Records: append([]trace.ProbeRecord(nil), l.win.Records...),
	}
	id := l.nextID
	for _, r := range recs {
		r.ID = id
		r.Submit = cursor
		id++
		cursor += spacing
		combined.Records = append(combined.Records, r)
	}
	if err := combined.Validate(); err != nil {
		return nil, err
	}
	windowed, err := trace.LastWindow(combined, l.width)
	if err != nil {
		return nil, err
	}
	em, err := gridstrat.ModelFromTrace(windowed)
	if err != nil {
		return nil, err // all-or-nothing: window unchanged
	}
	// The historical newModelState also wrapped a memoizing Planner
	// and recomputed the window summary on every batch; keep both so
	// the replica stays a faithful baseline for the ingest benchmarks.
	if _, err := gridstrat.NewPlanner(em); err != nil {
		return nil, err
	}
	_ = windowed.ComputeStats()
	l.nextID = id
	l.win = windowed
	return em, nil
}

// ecdfBitEqual compares support, cumulative probabilities and sample
// size bit for bit.
func ecdfBitEqual(a, b *stats.ECDF) bool {
	as, bs := a.Support(), b.Support()
	if a.N() != b.N() || len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] || a.Eval(as[i]) != b.Eval(bs[i]) {
			return false
		}
	}
	return true
}

// seededOutputs answers the acceptance queries on a model: a seeded
// Monte Carlo replay and the analytic recommendation.
func seededOutputs(t *testing.T, m gridstrat.Model) (gridstrat.SimResult, gridstrat.Recommendation) {
	t.Helper()
	p, err := gridstrat.NewPlanner(m, gridstrat.WithSeed(99), gridstrat.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := p.Simulate(gridstrat.Multiple{B: 3, TInf: 600}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := p.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	return sim, rec
}

// TestIncrementalMatchesLegacyEndToEnd is the acceptance-criteria
// equivalence: for random observation-batch sequences, the synchronous
// incremental path tracks the legacy full-rebuild path batch by batch
// — same accept/reject decisions, bit-identical ECDFs — and the async
// path converges to the same ModelState once its queue drains, with
// identical seeded simulate and recommend outputs.
func TestIncrementalMatchesLegacyEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 4; trial++ {
		width := []float64{250, 900, 1e8}[trial%3]
		seed := seedTrace("eq", 40, 5, 3)

		legacy, err := newLegacyEntry(seed, width)
		if err != nil {
			t.Fatal(err)
		}
		syncE, err := newEntry("eq", "test", width, seed, 0, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		asyncE, err := newEntry("eq", "test", width, seed, time.Hour, 1<<20, false)
		if err != nil {
			t.Fatal(err)
		}

		var lastLegacy *gridstrat.EmpiricalModel
		for step := 0; step < 30; step++ {
			var batch []trace.ProbeRecord
			k := 1 + rng.Intn(6)
			for i := 0; i < k; i++ {
				st, lat := trace.StatusCompleted, rng.Float64()*800
				if rng.Intn(8) == 0 {
					st, lat = trace.StatusOutlier, trace.DefaultTimeout
				}
				batch = append(batch, trace.ProbeRecord{Latency: lat, Status: st})
			}
			var start *float64
			if rng.Intn(4) == 0 {
				s := float64(rng.Intn(3000))
				start = &s
			}
			spacing := []float64{0, 1, 7}[rng.Intn(3)]
			if rng.Intn(10) == 0 {
				// Wipe attempt: all-outlier batch far in the future. Both
				// paths must reject it identically (all-or-nothing).
				batch = batch[:0]
				for i := 0; i < 3; i++ {
					batch = append(batch, trace.ProbeRecord{Latency: trace.DefaultTimeout, Status: trace.StatusOutlier})
				}
				s := 1e9
				start = &s
			}

			em, legacyErr := legacy.observe(batch, start, spacing)
			_, syncErr := syncE.Observe(batch, start, spacing)
			if (legacyErr == nil) != (syncErr == nil) {
				t.Fatalf("trial %d step %d: accept/reject diverged: legacy %v, sync %v", trial, step, legacyErr, syncErr)
			}
			if legacyErr != nil {
				continue
			}
			lastLegacy = em
			// The async entry receives exactly the accepted sequence.
			if _, err := asyncE.Observe(batch, start, spacing); err != nil {
				t.Fatalf("trial %d step %d: async ack: %v", trial, step, err)
			}

			st := syncE.State()
			if len(st.Trace.Records) != len(legacy.win.Records) {
				t.Fatalf("trial %d step %d: window sizes diverged: %d vs %d",
					trial, step, len(st.Trace.Records), len(legacy.win.Records))
			}
			if !ecdfBitEqual(st.ecdf, em.ECDF()) {
				t.Fatalf("trial %d step %d: sync ECDF diverged from legacy", trial, step)
			}
			if st.Model.Rho() != em.Rho() {
				t.Fatalf("trial %d step %d: rho diverged: %v vs %v", trial, step, st.Model.Rho(), em.Rho())
			}
		}
		if lastLegacy == nil {
			t.Fatalf("trial %d: no batch accepted", trial)
		}

		// Drain the async queue; all three paths must now agree.
		asyncState, _, err := asyncE.Flush()
		if err != nil {
			t.Fatalf("trial %d: flush: %v", trial, err)
		}
		syncState := syncE.State()
		if !ecdfBitEqual(asyncState.ecdf, syncState.ecdf) || !ecdfBitEqual(asyncState.ecdf, lastLegacy.ECDF()) {
			t.Fatalf("trial %d: drained async ECDF diverged", trial)
		}
		simL, recL := seededOutputs(t, lastLegacy)
		simS, recS := seededOutputs(t, syncState.Model)
		simA, recA := seededOutputs(t, asyncState.Model)
		if simL != simS || simL != simA {
			t.Fatalf("trial %d: seeded simulate diverged:\nlegacy %+v\nsync   %+v\nasync  %+v", trial, simL, simS, simA)
		}
		if recL.AsStrategy() != recS.AsStrategy() || recL.AsStrategy() != recA.AsStrategy() ||
			recL.Eval != recS.Eval || recL.Eval != recA.Eval {
			t.Fatalf("trial %d: recommendation diverged", trial)
		}
	}
}

// TestObserveCursorState pins the satellite fix: the default submit
// cursor is carried in entry state (not recomputed by scanning the
// window) and survives trims, explicit starts and the ceiling
// re-base.
func TestObserveCursorState(t *testing.T) {
	seed := seedTrace("cur", 10, 10, 0) // submits 0..90
	e, err := newEntry("cur", "test", 400, seed, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	maxSubmit := func(st *ModelState) float64 {
		m := math.Inf(-1)
		for _, r := range st.Trace.Records {
			if r.Submit > m {
				m = r.Submit
			}
		}
		return m
	}

	// Default stamping continues right after the newest record.
	res, err := e.Observe([]trace.ProbeRecord{{Latency: 50, Status: trace.StatusCompleted}}, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxSubmit(res.State); got != 95 {
		t.Fatalf("default cursor stamped %v, want 95", got)
	}

	// An explicit start in the past does not move the cursor backwards:
	// the next default batch still stamps after the overall maximum.
	past := 40.0
	if _, err := e.Observe([]trace.ProbeRecord{{Latency: 51, Status: trace.StatusCompleted}}, &past, 5); err != nil {
		t.Fatal(err)
	}
	res, err = e.Observe([]trace.ProbeRecord{{Latency: 52, Status: trace.StatusCompleted}}, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxSubmit(res.State); got != 100 {
		t.Fatalf("cursor after past-start batch stamped %v, want 100", got)
	}

	// A far-future explicit start trims the whole old regime; the
	// cursor survives the trim and keeps advancing from the new max.
	future := 5000.0
	if _, err := e.Observe([]trace.ProbeRecord{{Latency: 53, Status: trace.StatusCompleted}}, &future, 5); err != nil {
		t.Fatal(err)
	}
	res, err = e.Observe([]trace.ProbeRecord{{Latency: 54, Status: trace.StatusCompleted}}, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxSubmit(res.State); got != 5003 {
		t.Fatalf("cursor after trim stamped %v, want 5003", got)
	}
	if got := len(res.State.Trace.Records); got != 2 {
		t.Fatalf("window holds %d records after the regime jump, want 2", got)
	}

	// The ceiling re-base rebuilds the cursor onto the shifted window
	// and ingestion keeps stamping monotonically afterwards.
	nearCeiling := 9.9999999e12
	if _, err := e.Observe([]trace.ProbeRecord{{Latency: 55, Status: trace.StatusCompleted}}, &nearCeiling, 1); err != nil {
		t.Fatal(err)
	}
	res, err = e.Observe([]trace.ProbeRecord{{Latency: 56, Status: trace.StatusCompleted}}, nil, maxSpacing)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxSubmit(res.State); got > 1e9 {
		t.Fatalf("window not re-based: max submit %g", got)
	}
	res, err = e.Observe([]trace.ProbeRecord{{Latency: 57, Status: trace.StatusCompleted}}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, prev := maxSubmit(res.State), res.State.Trace.Records[len(res.State.Trace.Records)-2].Submit; got != prev+2 {
		t.Fatalf("cursor lost across re-base: max %v, predecessor %v", got, prev)
	}
}

// TestAsyncIngestLifecycle pins the decoupled mode end to end:
// immediate acks with pending counts, one coalesced rebuild per
// drain, warm swaps, counters, and the sync=true escape hatch.
func TestAsyncIngestLifecycle(t *testing.T) {
	s := MustNew(Config{RebuildInterval: time.Hour}) // worker never fires on its own
	if err := s.Preload("2006-IX"); err != nil {
		t.Fatal(err)
	}
	e, err := s.Registry().Get("2006-IX")
	if err != nil {
		t.Fatal(err)
	}
	v1 := e.State().Version

	// Three acks queue without a rebuild.
	total := 0
	for i := 0; i < 3; i++ {
		res, err := e.Observe([]trace.ProbeRecord{
			{Latency: 80 + float64(i), Status: trace.StatusCompleted},
			{Latency: 90, Status: trace.StatusCompleted},
		}, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		total += res.Appended
		if res.State.Version != v1 {
			t.Fatalf("ack %d rebuilt eagerly (version %d)", i, res.State.Version)
		}
		if res.Pending != total {
			t.Fatalf("ack %d pending %d, want %d", i, res.Pending, total)
		}
	}
	if got := e.Pending(); got != 6 {
		t.Fatalf("pending %d, want 6", got)
	}

	// Flush folds all three batches into one rebuild.
	st, _, err := e.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != v1+1 {
		t.Fatalf("drained version %d, want %d", st.Version, v1+1)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending %d after flush", e.Pending())
	}
	if got := e.rebuilds.Load(); got != 1 {
		t.Fatalf("rebuilds %d, want 1", got)
	}
	if got := e.coalesced.Load(); got != 2 {
		t.Fatalf("coalesced %d, want 2 (3 batches, 1 rebuild)", got)
	}

	// /v1/stats surfaces the pipeline counters.
	var total2 ShardStats
	for _, sh := range s.Registry().Stats() {
		total2.Rebuilds += sh.Rebuilds
		total2.CoalescedBatches += sh.CoalescedBatches
		total2.QueuedRecords += sh.QueuedRecords
	}
	if total2.Rebuilds != 1 || total2.CoalescedBatches != 2 || total2.QueuedRecords != 0 {
		t.Fatalf("stats counters %+v", total2)
	}

	// A short interval drains on its own: bounded staleness.
	s2 := MustNew(Config{RebuildInterval: 2 * time.Millisecond})
	if err := s2.Preload("2006-IX"); err != nil {
		t.Fatal(err)
	}
	e2, err := s2.Registry().Get("2006-IX")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Observe([]trace.ProbeRecord{{Latency: 70, Status: trace.StatusCompleted}}, nil, 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for e2.Pending() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("async worker never drained the queue")
		}
		time.Sleep(time.Millisecond)
	}
	if e2.State().Version <= 1 {
		t.Fatalf("worker drained without a rebuild (version %d)", e2.State().Version)
	}
}

// TestObserveSyncFlagOverHTTP pins the handler's sync escape hatch on
// an async server: the response reflects the drained state.
func TestObserveSyncFlagOverHTTP(t *testing.T) {
	s, _, c := newTestServerCfg(t, Config{RebuildInterval: time.Hour})
	ctx := context.Background()
	mustCreateUpload(t, c, "m", 1e9)

	// Plain ack: pending, stale version.
	res, err := c.Observe(ctx, "m", ObserveRequest{Latencies: []float64{50, 60}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 1 || res.Pending != 2 {
		t.Fatalf("plain async ack: %+v", res)
	}
	// Sync ack: drained, fresh version, window grown by both batches.
	res, err = c.Observe(ctx, "m", ObserveRequest{Latencies: []float64{70}, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 || res.Pending != 0 {
		t.Fatalf("sync ack: %+v", res)
	}
	if res.WindowRecords != 126+3 {
		t.Fatalf("window %d records, want %d", res.WindowRecords, 126+3)
	}
	// The pipeline counters surface through the HTTP totals: one
	// rebuild covering two batches.
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Totals.Rebuilds != 1 || st.Totals.CoalescedBatches != 1 || st.Totals.QueuedRecords != 0 {
		t.Fatalf("HTTP stats totals %+v", st.Totals)
	}
	_ = s
}

// TestObserveSyncDrainFailureAnswers200 pins the acknowledged-batch
// contract on an async server: a sync request whose drain leaves the
// window degenerate must NOT answer non-2xx (the records were
// acknowledged — a retry would double-ingest them); the unchanged
// version and the rebuild_failures counter carry the failure.
func TestObserveSyncDrainFailureAnswers200(t *testing.T) {
	s, _, c := newTestServerCfg(t, Config{RebuildInterval: time.Hour})
	ctx := context.Background()
	tr := seedTrace("deg", 10, 5, 0)
	if _, err := s.Registry().Put("deg", "test", 100, tr); err != nil {
		t.Fatal(err)
	}
	start := 1e6
	res, err := c.Observe(ctx, "deg", ObserveRequest{Outliers: 2, StartS: &start, Sync: true})
	if err != nil {
		t.Fatalf("sync drain of a degenerate window must still answer 200, got %v", err)
	}
	if res.Version != 1 || res.Pending != 0 || res.Appended != 2 {
		t.Fatalf("degenerate sync ack: %+v", res)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Totals.RebuildFailures != 1 {
		t.Fatalf("rebuild_failures %d, want 1", st.Totals.RebuildFailures)
	}
}

// TestBackpressureInlineDrain pins the queued-records cap: a batch
// pushing the queue past it pays for the drain instead of growing
// memory.
func TestBackpressureInlineDrain(t *testing.T) {
	seed := seedTrace("bp", 20, 5, 1)
	e, err := newEntry("bp", "test", 1e9, seed, time.Hour, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Observe([]trace.ProbeRecord{
		{Latency: 10, Status: trace.StatusCompleted},
		{Latency: 11, Status: trace.StatusCompleted},
		{Latency: 12, Status: trace.StatusCompleted},
	}, nil, 1); err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 3 {
		t.Fatalf("pending %d, want 3", e.Pending())
	}
	// This ack crosses the cap of 4 → inline coalesced drain.
	res, err := e.Observe([]trace.ProbeRecord{
		{Latency: 13, Status: trace.StatusCompleted},
		{Latency: 14, Status: trace.StatusCompleted},
	}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 0 || res.Pending != 0 {
		t.Fatalf("queue not drained: entry %d, result %d", e.Pending(), res.Pending)
	}
	if res.State.Version != 2 || len(res.State.Trace.Records) != 21+5 {
		t.Fatalf("drained state: version %d, %d records", res.State.Version, len(res.State.Trace.Records))
	}
	if got := e.coalesced.Load(); got != 1 {
		t.Fatalf("coalesced %d, want 1 (2 batches, 1 rebuild)", got)
	}
}

// TestAsyncDegenerateWindowKeepsLastGoodModel pins the async failure
// story: a drain that would leave the window without completed probes
// keeps the previous model, counts a failure, and the next healthy
// batch recovers via the full-rebuild fallback.
func TestAsyncDegenerateWindowKeepsLastGoodModel(t *testing.T) {
	seed := seedTrace("deg", 10, 5, 0)
	e, err := newEntry("deg", "test", 100, seed, time.Hour, 1<<20, false)
	if err != nil {
		t.Fatal(err)
	}
	v1 := e.State().Version

	// All-outlier batch far ahead: everything completed falls out.
	far := 1e6
	if _, err := e.Observe([]trace.ProbeRecord{
		{Latency: trace.DefaultTimeout, Status: trace.StatusOutlier},
		{Latency: trace.DefaultTimeout, Status: trace.StatusOutlier},
	}, &far, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Flush(); err == nil {
		t.Fatal("degenerate drain succeeded")
	}
	if e.State().Version != v1 {
		t.Fatalf("degenerate drain swapped a model (version %d)", e.State().Version)
	}
	if e.rebuildFails.Load() != 1 {
		t.Fatalf("rebuild failures %d, want 1", e.rebuildFails.Load())
	}

	// A healthy batch recovers: the window now has completed probes
	// again and the rebuilt model reflects the full buffered history.
	if _, err := e.Observe([]trace.ProbeRecord{{Latency: 42, Status: trace.StatusCompleted}}, nil, 1); err != nil {
		t.Fatal(err)
	}
	st, _, err := e.Flush()
	if err != nil {
		t.Fatalf("recovery drain: %v", err)
	}
	if st.Version != v1+1 {
		t.Fatalf("recovered version %d, want %d", st.Version, v1+1)
	}
	if n := st.ecdf.N(); n != 1 {
		t.Fatalf("recovered window has %d completed probes, want 1 (outliers-only history plus the new probe)", n)
	}
	if st.Stats.Outliers != 2 {
		t.Fatalf("recovered window outliers %d, want 2", st.Stats.Outliers)
	}
}
