package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// Allocation-regression ceilings for the wire hot paths. The pre-PR
// warm single-recommend path measured ~304 allocs/op under exactly
// this harness (httptest request + recorder each iteration, roughly a
// dozen of those allocations being the harness itself); the pooled
// encoder/decoder plus the per-snapshot cached default recommendation
// bring it to ~31. The ceilings are pinned at the 5× contract
// (304/5 ≈ 60, pinned at 58) rather than at the measured value so
// routine refactors have headroom while a regression that erodes the
// advertised speedup still fails loudly.
//
// The ceilings only hold for plain builds: -race adds its own heap
// traffic, so these skip under the race detector.

// allocsPerOp runs f warm and returns allocations per invocation.
func allocsPerOp(runs int, f func()) float64 {
	f() // warm caches, pools and lazily-built state outside the count
	return testing.AllocsPerRun(runs, f)
}

// newAllocServer builds a server with one registered model, bypassing
// httptest.Server: the measurements drive the handler directly so
// only server-side and per-request-harness allocations are counted.
func newAllocServer(t *testing.T) (http.Handler, *Server) {
	t.Helper()
	s := MustNew(Config{})
	if _, err := s.Registry().Put("m", "test", 4000, synthTrace("m", 120, 6, 1)); err != nil {
		t.Fatal(err)
	}
	return s.Handler(), s
}

func TestAllocWarmSingleRecommend(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation ceilings do not hold under -race")
	}
	handler, _ := newAllocServer(t)

	got := allocsPerOp(200, func() {
		r := httptest.NewRequest(http.MethodPost, "/v1/models/m/recommend", strings.NewReader("{}"))
		w := httptest.NewRecorder()
		handler.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			panic(w.Body.String())
		}
	})
	const ceiling = 58 // 5× the ~304 pre-PR baseline, same harness
	t.Logf("warm single recommend: %.1f allocs/op (ceiling %d)", got, ceiling)
	if got > ceiling {
		t.Fatalf("warm single-recommend allocates %.1f/op, over the %d ceiling — the ≥5× reduction over the ~304 pre-PR baseline no longer holds", got, ceiling)
	}
}

func TestAllocWarmBatchPerItem(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation ceilings do not hold under -race")
	}
	handler, _ := newAllocServer(t)

	const items = 64
	req := BatchPlanRequest{Items: make([]BatchItem, items)}
	for i := range req.Items {
		req.Items[i] = BatchItem{Model: "m", Op: "recommend"}
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	got := allocsPerOp(50, func() {
		r := httptest.NewRequest(http.MethodPost, "/v1/batch/plan", bytes.NewReader(body))
		w := httptest.NewRecorder()
		handler.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			panic(w.Body.String())
		}
	})
	perItem := got / items
	// A batch item must amortize far below a full single request: the
	// envelope pays decode/encode/admission once for all 64 items. The
	// pre-PR cost of answering 64 queries was 64 single requests
	// (~304 allocs each); 12/item keeps the batch path more than 25×
	// under that while leaving ~2× headroom over the measured value.
	const perItemCeiling = 12
	t.Logf("warm batch of %d: %.1f allocs/op, %.2f per item (ceiling %d)", items, got, perItem, perItemCeiling)
	if perItem > perItemCeiling {
		t.Fatalf("batch path allocates %.2f/item (%.1f for %d items), over the %d/item ceiling", perItem, got, items, perItemCeiling)
	}
}
