package server_test

// The PR 10 wire-speed snapshot: end-to-end HTTP measurements of the
// batch planning endpoint against sequential single requests, plus a
// short closed-loop loadgen drive for the latency/throughput curve.
// Lives in the external test package because it drives the server
// through internal/loadgen, which itself imports internal/server.
//
// Gate and output override (same schema as the earlier snapshots):
//
//	GRIDSTRAT_BENCH_SNAPSHOT=1 GRIDSTRAT_BENCH_OUT=$PWD/BENCH_PR10.json \
//	  go test -run TestBenchSnapshotWire -v ./internal/server/
//
// Acceptance, enforced here rather than merely recorded:
//   - one batch of 64 default recommends must complete ≥5× faster
//     than 64 sequential single requests over the same connection;
//   - the warm single-recommend path must allocate ≥5× less than the
//     ~304 allocs/op pre-PR baseline (the alloc_test.go ceilings pin
//     the same contract on every plain test run).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"gridstrat"
	"gridstrat/internal/loadgen"
	"gridstrat/internal/server"
	"gridstrat/internal/trace"
)

// preAllocBaseline is the warm single-recommend allocation cost
// measured on the pre-PR-10 tree under the alloc_test.go harness.
const preAllocBaseline = 304.0

type wireSnapshot struct {
	Schema     string          `json:"schema"`
	PR         int             `json:"pr"`
	Generated  string          `json:"generated"`
	GoVersion  string          `json:"go"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	NumCPU     int             `json:"num_cpu"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Benchmarks []wireSnapEntry `json:"benchmarks"`
	Loadgen    *loadgen.Report `json:"loadgen,omitempty"`
}

type wireSnapEntry struct {
	Name         string  `json:"name"`
	SequentialNS int64   `json:"sequential_ns"` // 64 sequential singles / pre-PR allocs
	ParallelNS   int64   `json:"parallel_ns"`   // one batch of 64 / post-PR allocs
	Speedup      float64 `json:"speedup"`
}

// wireTrace renders a synthetic CSV trace document for model creation.
func wireTrace(t *testing.T, n int) string {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	tr := &trace.Trace{Name: "wire", Timeout: trace.DefaultTimeout}
	for i := 0; i < n; i++ {
		tr.Records = append(tr.Records, trace.ProbeRecord{
			ID: i, Submit: float64(i) * 10, Latency: 30 + 120*rng.Float64(), Status: trace.StatusCompleted,
		})
	}
	var buf bytes.Buffer
	if err := gridstrat.WriteTraceCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// bestOf returns the best-of-reps wall time of f.
func bestOf(t *testing.T, reps int, f func() error) int64 {
	t.Helper()
	best := int64(0)
	for r := 0; r < reps; r++ {
		start := time.Now()
		if err := f(); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start).Nanoseconds(); best == 0 || d < best {
			best = d
		}
	}
	return best
}

func TestBenchSnapshotWire(t *testing.T) {
	if os.Getenv("GRIDSTRAT_BENCH_SNAPSHOT") == "" {
		t.Skip("set GRIDSTRAT_BENCH_SNAPSHOT=1 to record the wire perf snapshot (writes BENCH_PR10.json)")
	}
	out := os.Getenv("GRIDSTRAT_BENCH_OUT")
	if out == "" {
		out = "BENCH_PR10.json"
	}

	s := server.MustNew(server.Config{})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c := server.NewClient(hs.URL, hs.Client())
	ctx := context.Background()
	if _, err := c.CreateModel(ctx, server.CreateModelRequest{
		ID: "wire", Format: "csv", Trace: wireTrace(t, 400), WindowS: 1e6,
	}); err != nil {
		t.Fatal(err)
	}

	snap := wireSnapshot{
		Schema:     "gridstrat-bench-snapshot/v1",
		PR:         10,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	record := func(name string, seqNS, batchNS int64) float64 {
		speedup := float64(seqNS) / float64(batchNS)
		snap.Benchmarks = append(snap.Benchmarks, wireSnapEntry{
			Name: name, SequentialNS: seqNS, ParallelNS: batchNS, Speedup: speedup,
		})
		t.Logf("%s: sequential %v, batched %v (%.2fx)",
			name, time.Duration(seqNS), time.Duration(batchNS), speedup)
		return speedup
	}

	// --- Batch-of-64 vs 64 sequential singles, same connection pool ---
	const n = 64
	items := make([]server.BatchItem, n)
	for i := range items {
		items[i] = server.BatchItem{Model: "wire", Op: "recommend"}
	}
	single := func() error {
		if _, err := c.Recommend(ctx, "wire", server.RecommendRequest{}); err != nil {
			return err
		}
		return nil
	}
	batch := func() error {
		resp, err := c.PlanBatch(ctx, server.BatchPlanRequest{Items: items})
		if err != nil {
			return err
		}
		if resp.Admitted != n || resp.Shed != 0 {
			return fmt.Errorf("batch envelope: admitted %d shed %d", resp.Admitted, resp.Shed)
		}
		for i, r := range resp.Results {
			if r.Recommend == nil {
				return fmt.Errorf("item %d failed: %+v", i, r.Error)
			}
		}
		return nil
	}
	// Warm connections, caches and pools outside the timed region.
	for i := 0; i < 8; i++ {
		if err := single(); err != nil {
			t.Fatal(err)
		}
	}
	if err := batch(); err != nil {
		t.Fatal(err)
	}
	// Up to three measurement attempts, keeping the best pair: the
	// contract is a capability bound ("a batch CAN be 5x faster"), so
	// one noisy scheduler interval on a loaded runner must not flake
	// the snapshot. A genuine regression fails all three.
	var seqNS, batchNS int64
	speedup := 0.0
	for attempt := 0; attempt < 3 && speedup < 5; attempt++ {
		sNS := bestOf(t, 5, func() error {
			for i := 0; i < n; i++ {
				if err := single(); err != nil {
					return err
				}
			}
			return nil
		})
		bNS := bestOf(t, 5, batch)
		if seqNS == 0 || float64(sNS)/float64(bNS) > speedup {
			seqNS, batchNS = sNS, bNS
			speedup = float64(sNS) / float64(bNS)
		}
	}
	record("WireBatch64VsSequential64", seqNS, batchNS)
	if speedup < 5 {
		t.Fatalf("batch of %d is only %.2fx faster than %d sequential singles (need >=5x): seq %v, batch %v",
			n, speedup, n, time.Duration(seqNS), time.Duration(batchNS))
	}

	// --- Warm-path allocation trajectory (handler driven directly) ---
	handler := s.Handler()
	warm := func() {
		r := httptest.NewRequest(http.MethodPost, "/v1/models/wire/recommend", strings.NewReader("{}"))
		w := httptest.NewRecorder()
		handler.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			panic(w.Body.String())
		}
	}
	warm()
	allocs := testing.AllocsPerRun(200, warm)
	if reduction := record("AllocsWarmSingleRecommend", int64(preAllocBaseline), int64(allocs)); reduction < 5 {
		t.Fatalf("warm single-recommend allocates %.1f/op, under a 5x reduction of the %.0f pre-PR baseline", allocs, preAllocBaseline)
	}

	// --- Closed-loop soak curve via internal/loadgen ---
	report, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:    hs.URL,
		HTTPClient: hs.Client(),
		Model:      "wire",
		Duration:   2 * time.Second,
		Warmup:     300 * time.Millisecond,
		Workers:    8,
		BatchSize:  n,
		Mix:        loadgen.Mix{Single: 0.9, Batch: 0.1},
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Validate(); err != nil {
		t.Fatalf("loadgen drive failed the smoke contract: %v", err)
	}
	snap.Loadgen = &report
	t.Logf("loadgen closed loop: %d requests, %.0f req/s, p50 %.2fms p95 %.2fms p99 %.2fms",
		report.Requests, report.ThroughputRPS, report.P50Ms, report.P95Ms, report.P99Ms)

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d CPUs, GOMAXPROCS %d)", out, snap.NumCPU, snap.GOMAXPROCS)
}
