package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// APIError is a non-2xx response decoded from the service's error
// envelope.
type APIError struct {
	Status  int    // HTTP status code
	Code    string // envelope code, e.g. "not_found"
	Message string // envelope message
	// RetryAfter is the server's Retry-After hint (zero when the
	// response carried none): how long a shed (429) or unavailable
	// (503) answer asks the caller to wait before retrying. The
	// client's own retry loop honors it in place of its backoff.
	RetryAfter time.Duration
}

// Error renders the status, code and message on one line.
func (e *APIError) Error() string {
	return fmt.Sprintf("gridstratd: %d %s: %s", e.Status, e.Code, e.Message)
}

// RetryPolicy bounds the client's transparent retries of idempotent
// GETs. Retries cover exactly the failures a restarting or briefly
// overloaded daemon produces — transport errors (connection refused
// mid-restart) and 5xx envelopes (503 while a WAL replay is in
// flight) — with exponential backoff plus full jitter between
// attempts. Non-idempotent requests are never retried: the caller
// owns the at-most-once decision for writes.
type RetryPolicy struct {
	// MaxAttempts is the total try count, first request included
	// (minimum 1; a policy of 1 never retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: the k-th retry waits a
	// uniformly random duration in (0, BaseDelay·2^k], capped at
	// MaxDelay — "full jitter", so a fleet of clients re-probing a
	// restarting daemon does not stampede it in lockstep. A response
	// carrying a Retry-After hint (a 429 shed, a 503) overrides the
	// jittered delay with the server's own ask.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep (default 2s).
	MaxDelay time.Duration
	// Budget caps the total wall-clock time the attempt loop may
	// spend, sleeps included, measured from the first request. A retry
	// whose pre-sleep would overrun the budget is not made — the last
	// real failure is returned instead, so a caller with its own
	// deadline is never left waiting on a backoff that cannot help.
	// Zero means no wall-clock cap (MaxAttempts still bounds the loop).
	Budget time.Duration
}

// DefaultRetryPolicy retries idempotent GETs three times over roughly
// half a second — enough to ride out a daemon restart's socket gap
// without masking a real outage.
var DefaultRetryPolicy = RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}

// Client is a typed Go client for the gridstratd HTTP API. The zero
// value is not usable; construct it with NewClient. It is safe for
// concurrent use.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy // zero: no retries
	class string      // X-Gridstrat-Class on every request; "": none
}

// NewClient builds a client for the service at base (for example
// "http://127.0.0.1:8372"). A nil http.Client falls back to
// http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: base, hc: hc}
}

// WithRetry returns a copy of the client that retries idempotent GETs
// under the policy (see RetryPolicy for what is and is not retried).
func (c *Client) WithRetry(p RetryPolicy) *Client {
	out := *c
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	out.retry = p
	return &out
}

// WithClass returns a copy of the client that stamps every request
// with the SLO class ("critical", "standard" or "sheddable") via the
// X-Gridstrat-Class header, steering the server's admission control
// (see docs/openapi.yaml). An empty class removes the header.
func (c *Client) WithClass(class string) *Client {
	out := *c
	out.class = class
	return &out
}

// do issues one JSON request and decodes the response into out (when
// non-nil). Non-2xx responses are returned as *APIError. The request
// body is marshaled through the package's pooled encoders (pool.go)
// rather than a fresh json.Marshal slice per call — do is synchronous,
// so the buffer is safely back in the pool once the round trip
// returns.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		e := respEncPool.Get().(*respEncoder)
		e.buf.Reset()
		defer func() {
			if e.buf.Cap() <= maxPooledBuf {
				respEncPool.Put(e)
			}
		}()
		if err := e.enc.Encode(in); err != nil {
			return err
		}
		body = bytes.NewReader(e.buf.Bytes())
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return c.roundTrip(req, out)
}

// roundTrip executes a prebuilt request — retrying idempotent GETs
// under the client's policy — maps non-2xx responses to *APIError via
// the error envelope, and decodes a 2xx body into out (when non-nil).
func (c *Client) roundTrip(req *http.Request, out any) error {
	if c.class != "" {
		req.Header.Set(ClassHeader, c.class)
	}
	attempts := 1
	if req.Method == http.MethodGet && req.Body == nil && c.retry.MaxAttempts > attempts {
		attempts = c.retry.MaxAttempts
	}
	var cutoff time.Time
	if c.retry.Budget > 0 {
		cutoff = time.Now().Add(c.retry.Budget)
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			d := c.retryDelay(attempt, lastErr)
			if !cutoff.IsZero() && time.Now().Add(d).After(cutoff) {
				return lastErr // the sleep would overrun the retry budget
			}
			if err := sleep(req.Context(), d); err != nil {
				return lastErr // context gone: report the real failure
			}
		}
		err := c.roundTripOnce(req, out)
		if err == nil || !retryable(err) {
			return err
		}
		lastErr = err
	}
	return lastErr
}

// retryDelay picks the attempt's pre-sleep: the server's Retry-After
// ask when the last failure carried one, else the jittered
// exponential backoff.
func (c *Client) retryDelay(attempt int, lastErr error) time.Duration {
	var apiErr *APIError
	if errors.As(lastErr, &apiErr) && apiErr.RetryAfter > 0 {
		return apiErr.RetryAfter
	}
	d := c.retry.BaseDelay << (attempt - 1)
	if d <= 0 || d > c.retry.MaxDelay {
		d = c.retry.MaxDelay
	}
	return time.Duration(rand.Int63n(int64(d)) + 1) // full jitter: (0, d]
}

// sleep waits d, bailing early if the context ends first.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryable reports whether a roundTripOnce failure may resolve on a
// fresh attempt: transport errors (nothing was received — for a GET,
// safe to reissue), 5xx envelopes (the daemon is restarting, replaying
// its WAL, or its durable log is briefly refusing appends) and 429
// sheds (the admission gate turned the request away and said when to
// come back). Other 4xx responses are the caller's bug or a real miss;
// retrying them would only add latency.
func retryable(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status >= 500 || apiErr.Status == http.StatusTooManyRequests
	}
	return true // transport-level failure
}

// roundTripOnce is one request execution.
func (c *Client) roundTripOnce(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		apiErr := &APIError{Status: resp.StatusCode, Code: "unknown", Message: resp.Status}
		var env ErrorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err == nil && env.Error.Code != "" {
			apiErr.Code, apiErr.Message = env.Error.Code, env.Error.Message
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if s, err := strconv.Atoi(ra); err == nil && s >= 0 {
				apiErr.RetryAfter = time.Duration(s) * time.Second
			}
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health fetches GET /healthz.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	var out HealthResponse
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// Stats fetches GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// CreateModel registers a model (dataset-seeded or inline upload) via
// POST /v1/models.
func (c *Client) CreateModel(ctx context.Context, req CreateModelRequest) (ModelInfo, error) {
	var out ModelInfo
	err := c.do(ctx, http.MethodPost, "/v1/models", req, &out)
	return out, err
}

// UploadTrace registers a model from a raw trace document (format
// "csv", "gwf" or "json") via the non-JSON upload shape of
// POST /v1/models. A zero window keeps the server default.
func (c *Client) UploadTrace(ctx context.Context, id, format string, doc []byte, windowS float64) (ModelInfo, error) {
	q := url.Values{"id": {id}, "format": {format}}
	if windowS > 0 {
		q.Set("window_s", strconv.FormatFloat(windowS, 'g', -1, 64))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/models?"+q.Encode(), bytes.NewReader(doc))
	if err != nil {
		return ModelInfo{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	var out ModelInfo
	return out, c.roundTrip(req, &out)
}

// ListModels fetches GET /v1/models.
func (c *Client) ListModels(ctx context.Context) ([]ModelInfo, error) {
	var out ListModelsResponse
	err := c.do(ctx, http.MethodGet, "/v1/models", nil, &out)
	return out.Models, err
}

// GetModel fetches GET /v1/models/{id}. A positive stationarityWindow
// adds the drift/trend report at that analysis width.
func (c *Client) GetModel(ctx context.Context, id string, stationarityWindow float64) (ModelInfo, error) {
	path := "/v1/models/" + url.PathEscape(id)
	if stationarityWindow > 0 {
		path += "?window_s=" + strconv.FormatFloat(stationarityWindow, 'g', -1, 64)
	}
	var out ModelInfo
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// DeleteModel issues DELETE /v1/models/{id}.
func (c *Client) DeleteModel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/models/"+url.PathEscape(id), nil, nil)
}

// Recommend fetches POST /v1/models/{id}/recommend.
func (c *Client) Recommend(ctx context.Context, id string, req RecommendRequest) (RecommendResponse, error) {
	var out RecommendResponse
	err := c.do(ctx, http.MethodPost, "/v1/models/"+url.PathEscape(id)+"/recommend", req, &out)
	return out, err
}

// Rank fetches POST /v1/models/{id}/rank.
func (c *Client) Rank(ctx context.Context, id string, req RankRequest) (RankResponse, error) {
	var out RankResponse
	err := c.do(ctx, http.MethodPost, "/v1/models/"+url.PathEscape(id)+"/rank", req, &out)
	return out, err
}

// Optimize fetches POST /v1/models/{id}/optimize.
func (c *Client) Optimize(ctx context.Context, id string, req OptimizeRequest) (OptimizeResponse, error) {
	var out OptimizeResponse
	err := c.do(ctx, http.MethodPost, "/v1/models/"+url.PathEscape(id)+"/optimize", req, &out)
	return out, err
}

// Simulate fetches POST /v1/models/{id}/simulate.
func (c *Client) Simulate(ctx context.Context, id string, req SimulateRequest) (SimulateResponse, error) {
	var out SimulateResponse
	err := c.do(ctx, http.MethodPost, "/v1/models/"+url.PathEscape(id)+"/simulate", req, &out)
	return out, err
}

// Makespan fetches POST /v1/models/{id}/makespan.
func (c *Client) Makespan(ctx context.Context, id string, req MakespanRequest) (MakespanResponse, error) {
	var out MakespanResponse
	err := c.do(ctx, http.MethodPost, "/v1/models/"+url.PathEscape(id)+"/makespan", req, &out)
	return out, err
}

// PlanBatch fetches POST /v1/batch/plan: many (model, op) planning
// queries in one exchange, with per-item error envelopes (the call
// only errors on transport failures, malformed batches or a
// whole-batch 429 shed; inspect each BatchItemResult for its own
// outcome).
func (c *Client) PlanBatch(ctx context.Context, req BatchPlanRequest) (BatchPlanResponse, error) {
	var out BatchPlanResponse
	err := c.do(ctx, http.MethodPost, "/v1/batch/plan", req, &out)
	return out, err
}

// Observe streams one observation batch to
// POST /v1/models/{id}/observations. Against a server running with a
// rebuild interval the ack returns before the model rebuild — the
// response's Pending counts the queued records — unless req.Sync
// forces the coalesced rebuild inline.
func (c *Client) Observe(ctx context.Context, id string, req ObserveRequest) (ObserveResponse, error) {
	var out ObserveResponse
	err := c.do(ctx, http.MethodPost, "/v1/models/"+url.PathEscape(id)+"/observations", req, &out)
	return out, err
}
