package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// This file is the service's admission-control layer: SLO-class-aware
// load shedding plus per-request deadline propagation. The paper's
// finding that the priority/admission policy — not routing — is the
// primary SLO lever is applied to gridstratd's own front door: when
// the daemon saturates, sheddable traffic is turned away first (429 +
// Retry-After), standard next, and critical traffic is only refused at
// the hard inflight cap, so the requests that matter ride out the
// contention that would otherwise stall everything equally.

// Class is a request's SLO class, carried in the X-Gridstrat-Class
// header. Requests without the header are ClassStandard.
type Class uint8

const (
	// ClassCritical is shed only at the hard inflight cap.
	ClassCritical Class = iota
	// ClassStandard (the default) is shed past 90% of the cap.
	ClassStandard
	// ClassSheddable is shed past 50% of the cap — background traffic
	// that exists to absorb contention ahead of the other classes.
	ClassSheddable
	numClasses
)

// ClassHeader carries the request's SLO class.
const ClassHeader = "X-Gridstrat-Class"

// DeadlineHeader carries the caller's remaining budget in whole
// milliseconds; the server turns it into a context deadline so
// planning work is abandoned the moment the answer can no longer
// arrive in time (the response is then a 504 envelope).
const DeadlineHeader = "X-Gridstrat-Deadline-Ms"

// maxDeadlineMs bounds the deadline header (~24h): anything larger is
// indistinguishable from "no deadline" and would only risk overflow.
const maxDeadlineMs = 24 * 3600 * 1000

func (c Class) String() string {
	switch c {
	case ClassCritical:
		return "critical"
	case ClassSheddable:
		return "sheddable"
	default:
		return "standard"
	}
}

// ParseClass maps the header value to a Class. Empty means standard;
// unknown values are a caller bug and rejected with ok=false.
func ParseClass(h string) (Class, bool) {
	switch strings.ToLower(strings.TrimSpace(h)) {
	case "":
		return ClassStandard, true
	case "critical":
		return ClassCritical, true
	case "standard":
		return ClassStandard, true
	case "sheddable":
		return ClassSheddable, true
	default:
		return ClassStandard, false
	}
}

// admission is the server's inflight gate. One shared counter, three
// per-class admission ceilings: a class is admitted while the total
// inflight count (this request included) stays at or under its limit.
// Sheddable gives way first, then standard; critical only hits the
// hard cap. Zero max disables the gate entirely.
type admission struct {
	max    int64
	limits [numClasses]int64

	inflight atomic.Int64
	admitted atomic.Uint64
	shed     [numClasses]atomic.Uint64

	// Batch-plan counters (server-wide, reported as the stats "batch"
	// block): requests and items served, and items shed by partial or
	// whole-batch refusal. Item-level shedding is tracked here rather
	// than in the per-class request counters so a 64-item batch losing
	// its tail does not read as 64 refused requests.
	batchRequests atomic.Uint64
	batchItems    atomic.Uint64
	batchSheds    atomic.Uint64
}

// newAdmission builds the gate. The class ceilings are fixed fractions
// of the hard cap — sheddable 50%, standard 90%, critical 100% — each
// at least 1 so a tiny cap still admits one request of every class.
func newAdmission(max int) *admission {
	a := &admission{}
	if max <= 0 {
		return a // disabled
	}
	a.max = int64(max)
	frac := func(f float64) int64 {
		n := int64(f * float64(max))
		if n < 1 {
			n = 1
		}
		return n
	}
	a.limits[ClassCritical] = a.max
	a.limits[ClassStandard] = frac(0.9)
	a.limits[ClassSheddable] = frac(0.5)
	return a
}

// acquire admits or sheds one request of the class, returning the
// inflight count it observed at the decision (this request included)
// so shed messages can report the number the verdict was based on
// rather than a later, already-decremented read. On admit the caller
// must release exactly once.
func (a *admission) acquire(c Class) (int64, bool) {
	if a.max <= 0 {
		a.admitted.Add(1)
		return 0, true
	}
	n := a.inflight.Add(1)
	if n > a.limits[c] {
		a.inflight.Add(-1)
		a.shed[c].Add(1)
		return n, false
	}
	a.admitted.Add(1)
	return n, true
}

func (a *admission) release() {
	if a.max > 0 {
		a.inflight.Add(-1)
	}
}

// acquireN is the batch-aware cost model: a batch of want items
// charges want units against the class ceiling, and admission may be
// partial — when only part of the budget is free, the head of the
// batch is admitted and the tail shed. Returns the granted unit count
// (0 means the whole batch was refused) and the inflight total
// observed at the decision. The caller must releaseN(granted) once
// the granted items finish. Whole-batch refusal counts one shed
// request against the class (matching the single-request counters);
// item-level shed accounting is the batchSheds counter, which the
// handler increments per dropped item.
func (a *admission) acquireN(c Class, want int64) (granted, observed int64) {
	a.admitted.Add(1)
	if a.max <= 0 {
		return want, 0
	}
	limit := a.limits[c]
	for {
		cur := a.inflight.Load()
		free := limit - cur
		if free <= 0 {
			a.admitted.Add(^uint64(0)) // undo: the request was not admitted
			a.shed[c].Add(1)
			return 0, cur + want
		}
		g := want
		if g > free {
			g = free
		}
		if a.inflight.CompareAndSwap(cur, cur+g) {
			return g, cur + g
		}
	}
}

// releaseN returns n admission units taken by acquireN.
func (a *admission) releaseN(n int64) {
	if a.max > 0 && n > 0 {
		a.inflight.Add(-n)
	}
}

// retryAfterS estimates how long a shed caller should wait before
// retrying. The gate has no queue to measure, so the hint is the
// coarse one operators expect: one second.
const retryAfterS = 1

// classKey is the context key carrying the request's parsed Class for
// handlers that want it (none do today; the middleware records it for
// symmetry with the deadline, which handlers do consume via ctx).
type classKey struct{}

// RequestClass returns the SLO class the admission middleware parsed
// for this request (ClassStandard when the middleware did not run).
func RequestClass(ctx context.Context) Class {
	if c, ok := ctx.Value(classKey{}).(Class); ok {
		return c
	}
	return ClassStandard
}

// admissionMiddleware gates /v1/models* traffic by SLO class and
// propagates the caller's deadline header into the request context.
// Health and stats stay exempt: they are cheap, and they are exactly
// what an operator (or the cluster router's health checker) needs to
// see while the daemon is shedding.
func (s *Server) admissionMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Batch-plan requests are class-parsed and deadline-propagated
		// here, but their admission units are charged per item by the
		// handler (acquireN) — one slot for the envelope would let a
		// 64-item batch slip past a nearly-full gate.
		batch := strings.HasPrefix(r.URL.Path, "/v1/batch/")
		if !batch && !strings.HasPrefix(r.URL.Path, "/v1/models") {
			next.ServeHTTP(w, r)
			return
		}
		class, ok := ParseClass(r.Header.Get(ClassHeader))
		if !ok {
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("unknown %s %q (want critical, standard or sheddable)",
					ClassHeader, r.Header.Get(ClassHeader)))
			return
		}
		deadline := r.Header.Get(DeadlineHeader)
		// The overwhelmingly common request — standard class, no
		// deadline — needs no context derivation at all (RequestClass
		// defaults to standard), so the hot path skips the WithValue
		// and request-clone allocations entirely.
		if class != ClassStandard || deadline != "" {
			ctx := context.WithValue(r.Context(), classKey{}, class)
			if deadline != "" {
				ms, err := strconv.ParseInt(deadline, 10, 64)
				if err != nil || ms <= 0 || ms > maxDeadlineMs {
					writeError(w, http.StatusBadRequest, "bad_request",
						fmt.Sprintf("bad %s %q (want integer milliseconds in (0, %d])",
							DeadlineHeader, deadline, int64(maxDeadlineMs)))
					return
				}
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
				defer cancel()
			}
			r = r.WithContext(ctx)
		}
		if batch {
			next.ServeHTTP(w, r)
			return
		}
		if n, ok := s.adm.acquire(class); !ok {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterS))
			writeError(w, http.StatusTooManyRequests, "shed",
				fmt.Sprintf("%s-class request shed: %d requests in flight against a %s limit of %d; retry after %ds",
					class, n, class, s.adm.limits[class], retryAfterS))
			return
		}
		defer s.adm.release()
		next.ServeHTTP(w, r)
	})
}

// ResilienceStats is the admission/degradation slice of /v1/stats —
// server-wide counters, not per-shard (the gate is one front door).
// The cluster router sums each backend's block into its fleet totals.
type ResilienceStats struct {
	AdmittedTotal     uint64 `json:"admitted_total"`
	ShedCritical      uint64 `json:"shed_critical"`
	ShedStandard      uint64 `json:"shed_standard"`
	ShedSheddable     uint64 `json:"shed_sheddable"`
	DegradedResponses uint64 `json:"degraded_responses"`
}

// resilienceStats snapshots the counters.
func (s *Server) resilienceStats() ResilienceStats {
	return ResilienceStats{
		AdmittedTotal:     s.adm.admitted.Load(),
		ShedCritical:      s.adm.shed[ClassCritical].Load(),
		ShedStandard:      s.adm.shed[ClassStandard].Load(),
		ShedSheddable:     s.adm.shed[ClassSheddable].Load(),
		DegradedResponses: s.degradedCount.Load(),
	}
}

// BatchStats is the batch-plan slice of /v1/stats — server-wide
// counters like ResilienceStats (the batch gate is one front door).
// The cluster router sums each backend's block into its fleet totals.
type BatchStats struct {
	Requests uint64 `json:"batch_requests"`
	Items    uint64 `json:"batch_items"`
	Sheds    uint64 `json:"batch_sheds"`
}

// batchStats snapshots the counters.
func (s *Server) batchStats() BatchStats {
	return BatchStats{
		Requests: s.adm.batchRequests.Load(),
		Items:    s.adm.batchItems.Load(),
		Sheds:    s.adm.batchSheds.Load(),
	}
}

// AddBatchStats accumulates b into a, field by field (the router uses
// it to sum fleet totals).
func AddBatchStats(a *BatchStats, b BatchStats) {
	a.Requests += b.Requests
	a.Items += b.Items
	a.Sheds += b.Sheds
}

// AddResilienceStats accumulates b into a, field by field (the router
// uses it to sum fleet totals).
func AddResilienceStats(a *ResilienceStats, b ResilienceStats) {
	a.AdmittedTotal += b.AdmittedTotal
	a.ShedCritical += b.ShedCritical
	a.ShedStandard += b.ShedStandard
	a.ShedSheddable += b.ShedSheddable
	a.DegradedResponses += b.DegradedResponses
}

// degradedOf decides whether a response computed on this snapshot must
// be marked degraded, and why. Degraded answers are still correct
// answers — the last-good model state, or a bounded-error sketch —
// served in conditions where the pre-resilience server answered 503:
//
//   - "recovering": the boot WAL replay is still in flight and this
//     model was restored on demand; other models may still be missing.
//   - "backlog": acknowledged observations beyond the staleness
//     threshold are queued but not yet folded into any snapshot, so
//     the answer lags the acked data.
//   - "memory_pressure": the byte-pressure enforcer demoted this model
//     to the sketch tier, so integrals carry the sketch's (certified)
//     rank error. A model that is sketch-tier by policy is not
//     degraded — that is its normal representation.
//
// The counter increments here, so call it once per response, on the
// success path only.
func (s *Server) degradedOf(e *Entry, st *ModelState) (string, bool) {
	reason := ""
	switch {
	case s.recovering.Load():
		reason = "recovering"
	case e.Pending() >= s.degradedPending():
		reason = "backlog"
	case st.Tier == TierSketch && !e.policySketch:
		reason = "memory_pressure"
	default:
		return "", false
	}
	s.degradedCount.Add(1)
	return reason, true
}

// degradedPending is the queued-record threshold past which responses
// are marked degraded (the config value, defaulted in withDefaults).
func (s *Server) degradedPending() int { return s.cfg.DegradedPending }
