package server

// Tiering capacity/latency snapshot — the PR 7 artifact.
//
// TestBenchSnapshotTiering measures, on one W = 1e5 durable registry
// entry, the resident bytes of the exact tier (window + counted ECDF +
// warmed kernels) against the deep-demoted sketch tier (compiled view
// + its kernels, window in the WAL), and the steady-state batch query
// latency of both representations. It writes BENCH_PR7.json and
// enforces the PR 7 acceptance bound in-test: the sketch tier must fit
// at least 20x more models per GB than the exact tier. Gate and output
// override:
//
//	GRIDSTRAT_BENCH_SNAPSHOT=1 GRIDSTRAT_BENCH_OUT=$PWD/BENCH_PR7.json \
//	  go test -run TestBenchSnapshotTiering -v ./internal/server/
//
// CI runs it on every push and uploads the JSON as a build artifact.

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"gridstrat/internal/stats"
)

// tieringSnapshot extends the bench-snapshot schema with the tier
// capacity section; the benchmarks list reuses ingestSnapEntry with
// `sequential_ns` = exact and `parallel_ns` = sketch, so `speedup`
// reads as exact-over-sketch query-latency ratio.
type tieringSnapshot struct {
	Schema     string            `json:"schema"`
	PR         int               `json:"pr"`
	Generated  string            `json:"generated"`
	GoVersion  string            `json:"go"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	NumCPU     int               `json:"num_cpu"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Tiering    tieringCapacity   `json:"tiering"`
	Benchmarks []ingestSnapEntry `json:"benchmarks"`
}

type tieringCapacity struct {
	WindowRecords     int     `json:"window_records"`
	SketchK           int     `json:"sketch_k"`
	SketchErrorBound  float64 `json:"sketch_error_bound"`
	ExactBytes        int64   `json:"exact_bytes_per_model"`
	SketchBytes       int64   `json:"sketch_bytes_per_model"`
	ModelsPerGBExact  float64 `json:"models_per_gb_exact"`
	ModelsPerGBSketch float64 `json:"models_per_gb_sketch"`
	Ratio             float64 `json:"ratio"`
}

// tierQueryTime times the steady-state batch query mix — a pow-kernel
// grid sweep plus a cross-term grid sweep — on one empirical backend,
// best of reps (the first call per backend warms the kernels outside
// the timed region).
func tierQueryTime(d stats.EmpiricalDistribution, reps int) int64 {
	grid := make([]float64, 256)
	max := d.Max()
	for i := range grid {
		grid[i] = max * float64(i+1) / float64(len(grid))
	}
	d.IntegralOneMinusFPowBatch(grid, 1, 2)
	d.IntegralProdBothBatch(grid, max/10, 1)
	best := int64(0)
	for r := 0; r < reps; r++ {
		start := time.Now()
		d.IntegralOneMinusFPowBatch(grid, 1, 2)
		d.IntegralProdBothBatch(grid, max/10, 1)
		if e := time.Since(start).Nanoseconds(); best == 0 || e < best {
			best = e
		}
	}
	return best
}

func TestBenchSnapshotTiering(t *testing.T) {
	if os.Getenv("GRIDSTRAT_BENCH_SNAPSHOT") == "" {
		t.Skip("set GRIDSTRAT_BENCH_SNAPSHOT=1 to record the tiering snapshot (writes BENCH_PR7.json)")
	}
	out := os.Getenv("GRIDSTRAT_BENCH_OUT")
	if out == "" {
		out = "BENCH_PR7.json"
	}

	const w = 100_000
	reg, e, err := benchWALRegistry(w, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Delete("bench")

	// Exact tier, queried: kernels and tables warmed by the latency
	// measurement, so the byte figure is what a serving model holds.
	exact := e.State()
	exactNS := tierQueryTime(exact.ecdf, 5)
	exactBytes := e.MemBytes()

	if !e.demote() {
		t.Fatal("demote returned false")
	}
	sk := e.State().sketch
	if sk == nil {
		t.Fatal("demoted state has no sketch")
	}
	sketchNS := tierQueryTime(sk, 5)
	sketchBytes := e.MemBytes()

	const gb = 1e9
	cap := tieringCapacity{
		WindowRecords:     w,
		SketchK:           sk.K(),
		SketchErrorBound:  sk.ErrorBound(),
		ExactBytes:        exactBytes,
		SketchBytes:       sketchBytes,
		ModelsPerGBExact:  gb / float64(exactBytes),
		ModelsPerGBSketch: gb / float64(sketchBytes),
		Ratio:             float64(exactBytes) / float64(sketchBytes),
	}
	t.Logf("exact: %d B/model (%.0f models/GB), sketch: %d B/model (%.0f models/GB) — %.1fx, eps=%.4f",
		cap.ExactBytes, cap.ModelsPerGBExact, cap.SketchBytes, cap.ModelsPerGBSketch, cap.Ratio, cap.SketchErrorBound)
	t.Logf("query mix: exact %v, sketch %v (%.2fx)",
		time.Duration(exactNS), time.Duration(sketchNS), float64(exactNS)/float64(sketchNS))

	// Acceptance: the point of the sketch tier is million-model
	// tenancy — at least 20x the resident density of the exact tier.
	if cap.Ratio < 20 {
		t.Fatalf("sketch tier packs only %.1fx more models/GB (bound: 20x)", cap.Ratio)
	}

	snap := tieringSnapshot{
		Schema:     "gridstrat-bench-snapshot/v1",
		PR:         7,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Tiering:    cap,
		Benchmarks: []ingestSnapEntry{{
			Name:         "QueryBatchMixW1e5",
			SequentialNS: exactNS,
			ParallelNS:   sketchNS,
			Speedup:      float64(exactNS) / float64(sketchNS),
		}},
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
