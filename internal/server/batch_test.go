package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
)

// TestBatchPlanParity holds batch items bit-identical to the single
// endpoints: the same (model, op, options) tuple answered through
// POST /v1/batch/plan must marshal to exactly the bytes the dedicated
// handler would have produced — the batch path is an amortization, not
// a second implementation.
func TestBatchPlanParity(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	mustCreateUpload(t, c, "a", 1e6)
	mustCreateUpload(t, c, "b", 1e6)

	opts := &Options{Workers: 3, DeadlineS: 900}
	strat := &StrategySpec{Strategy: "multiple", B: 2, TInfS: 300}
	strats := []StrategySpec{
		{Strategy: "single", TInfS: 200},
		{Strategy: "delayed", TInfS: 300, T0S: 200},
	}

	items := []BatchItem{
		{Model: "a", Op: "recommend"},                 // cached default fast path
		{Model: "b", Op: "recommend", Options: opts},  // explicit-options slow path
		{Model: "a", Op: "recommend", Cheapest: true}, // cheapest variant
		{Model: "b", Op: "rank", Strategies: strats},  // explicit candidate set
		{Model: "a", Op: "rank", Options: opts},       // default candidate set
		{Model: "b", Op: "optimize", Strategy: strat}, // tuned strategy
		{Model: "a", Op: "optimize", Strategy: strat, Options: opts},
	}

	batch, err := c.PlanBatch(ctx, BatchPlanRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Admitted != len(items) || batch.Shed != 0 || len(batch.Results) != len(items) {
		t.Fatalf("unexpected envelope: admitted %d shed %d results %d",
			batch.Admitted, batch.Shed, len(batch.Results))
	}

	// Answer every item through its single endpoint and compare the
	// marshaled wire forms (struct equality via JSON catches any field
	// the batch path forgot to populate).
	for i, it := range items {
		var single, batched any
		switch it.Op {
		case "recommend":
			r, err := c.Recommend(ctx, it.Model, RecommendRequest{Options: it.Options, Cheapest: it.Cheapest})
			if err != nil {
				t.Fatalf("item %d single recommend: %v", i, err)
			}
			single, batched = r, batch.Results[i].Recommend
		case "rank":
			r, err := c.Rank(ctx, it.Model, RankRequest{Options: it.Options, Strategies: it.Strategies})
			if err != nil {
				t.Fatalf("item %d single rank: %v", i, err)
			}
			single, batched = r, batch.Results[i].Rank
		case "optimize":
			r, err := c.Optimize(ctx, it.Model, OptimizeRequest{Strategy: *it.Strategy, Options: it.Options})
			if err != nil {
				t.Fatalf("item %d single optimize: %v", i, err)
			}
			single, batched = r, batch.Results[i].Optimize
		}
		if batched == nil || reflect.ValueOf(batched).IsNil() {
			t.Fatalf("item %d (%s %s): missing result, error %+v", i, it.Op, it.Model, batch.Results[i].Error)
		}
		sj, _ := json.Marshal(single)
		bj, _ := json.Marshal(batched)
		if !bytes.Equal(sj, bj) {
			t.Fatalf("item %d (%s %s) diverges from the single endpoint:\n single: %s\n batch:  %s",
				i, it.Op, it.Model, sj, bj)
		}
	}
}

// TestRecommendDefaultByteParity pins the cached-default fast path to
// the encoder's exact output: POST {} rides the snapshot's pre-marshaled
// bytes while POST {"options":{}} recomputes through the planner and
// json.Encoder — the two bodies must be byte-identical, trailing
// newline included.
func TestRecommendDefaultByteParity(t *testing.T) {
	_, hs, c := newTestServer(t)
	mustCreateUpload(t, c, "m", 1e6)

	post := func(body string) []byte {
		t.Helper()
		resp, err := http.Post(hs.URL+"/v1/models/m/recommend", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %q: status %d body %s", body, resp.StatusCode, raw)
		}
		return raw
	}

	fast := post(`{}`)
	again := post(`{}`)
	slow := post(`{"options":{}}`)
	if !bytes.Equal(fast, again) {
		t.Fatalf("cached fast path is not stable:\n first:  %s\n second: %s", fast, again)
	}
	if !bytes.Equal(fast, slow) {
		t.Fatalf("fast path diverges from the computed path:\n cached:   %s\n computed: %s", fast, slow)
	}
	if fast[len(fast)-1] != '\n' {
		t.Fatalf("cached body lost the encoder's trailing newline: %q", fast)
	}
}

// TestSeededSimulateParityPooled holds seeded Monte Carlo replays
// bit-identical through the pooled request/response buffers: the same
// seed must yield the same wire bytes on every call, and a different
// seed must not (guarding against a pooled buffer leaking state
// between decodes).
func TestSeededSimulateParityPooled(t *testing.T) {
	_, hs, c := newTestServer(t)
	mustCreateUpload(t, c, "m", 1e6)

	post := func(body string) []byte {
		t.Helper()
		resp, err := http.Post(hs.URL+"/v1/models/m/simulate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("simulate: status %d body %s", resp.StatusCode, raw)
		}
		return raw
	}

	body := `{"strategy":{"strategy":"single","t_inf_s":300},"runs":2000,"options":{"seed":42}}`
	first := post(body)
	second := post(body)
	if !bytes.Equal(first, second) {
		t.Fatalf("seeded simulate is not reproducible over the pooled path:\n first:  %s\n second: %s", first, second)
	}
	other := post(`{"strategy":{"strategy":"single","t_inf_s":300},"runs":2000,"options":{"seed":43}}`)
	if bytes.Equal(first, other) {
		t.Fatal("different seeds produced identical replays — seed is being ignored")
	}
}

// TestBatchItemErrorIsolation checks that a bad item fails alone: its
// envelope carries the status/code the single endpoint would have
// answered, and every other item still succeeds.
func TestBatchItemErrorIsolation(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	mustCreateUpload(t, c, "good", 1e6)

	resp, err := c.PlanBatch(ctx, BatchPlanRequest{Items: []BatchItem{
		{Model: "good", Op: "recommend"},
		{Model: "ghost", Op: "recommend"},                                // unknown model
		{Model: "good", Op: "teleport"},                                  // unknown op
		{Model: "good", Op: "optimize"},                                  // missing strategy
		{Model: "good", Op: "rank", Cheapest: true},                      // stray recommend field
		{Model: "good", Op: "recommend", Options: &Options{Workers: -4}}, // invalid option
		{Model: "good", Op: "recommend", Cheapest: true},
	}})
	if err != nil {
		t.Fatalf("a batch with bad items must still answer 200: %v", err)
	}
	if resp.Admitted != 7 || resp.Shed != 0 {
		t.Fatalf("unexpected envelope: %+v", resp)
	}

	wantErr := func(i, status int, code string) {
		t.Helper()
		e := resp.Results[i].Error
		if e == nil {
			t.Fatalf("item %d: expected an error envelope, got %+v", i, resp.Results[i])
		}
		if e.Status != status || e.Code != code {
			t.Fatalf("item %d: got status %d code %q (%s), want %d %q", i, e.Status, e.Code, e.Message, status, code)
		}
	}
	if resp.Results[0].Recommend == nil || resp.Results[0].Recommend.Model != "good" {
		t.Fatalf("item 0 should have succeeded: %+v", resp.Results[0])
	}
	wantErr(1, http.StatusNotFound, "not_found")
	wantErr(2, http.StatusBadRequest, "bad_request")
	wantErr(3, http.StatusBadRequest, "bad_request")
	wantErr(4, http.StatusBadRequest, "bad_request")
	wantErr(5, http.StatusBadRequest, "bad_request")
	if resp.Results[6].Recommend == nil {
		t.Fatalf("item 6 should have succeeded despite its bad neighbours: %+v", resp.Results[6])
	}
}

// TestBatchEnvelopeValidation covers the request-level rejections that
// never reach per-item execution.
func TestBatchEnvelopeValidation(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()

	_, err := c.PlanBatch(ctx, BatchPlanRequest{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("empty batch: got %v, want 400", err)
	}
	_, err = c.PlanBatch(ctx, BatchPlanRequest{Items: make([]BatchItem, maxBatchItems+1)})
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("oversized batch: got %v, want 400", err)
	}
}

// TestBatchPartialAdmission exercises the batch-aware cost model: a
// 10-item standard batch against MaxInflight 8 (standard ceiling 7)
// executes the 7-item head and sheds the 3-item tail with per-item
// shed envelopes, a Retry-After header, and matching stats counters.
func TestBatchPartialAdmission(t *testing.T) {
	s, hs, c := newTestServerCfg(t, Config{MaxInflight: 8})
	ctx := context.Background()
	mustCreateUpload(t, c, "m", 1e6)

	items := make([]BatchItem, 10)
	for i := range items {
		items[i] = BatchItem{Model: "m", Op: "recommend"}
	}
	body, _ := json.Marshal(BatchPlanRequest{Items: items})
	hr, err := http.Post(hs.URL+"/v1/batch/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(hr.Body)
		t.Fatalf("partial admission must still answer 200: %d %s", hr.StatusCode, raw)
	}
	if ra := hr.Header.Get("Retry-After"); ra == "" {
		t.Fatal("partially shed batch is missing the Retry-After header")
	}
	var resp BatchPlanResponse
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Admitted != 7 || resp.Shed != 3 {
		t.Fatalf("got admitted %d shed %d, want 7/3 against the standard ceiling", resp.Admitted, resp.Shed)
	}
	for i := 0; i < 7; i++ {
		if resp.Results[i].Recommend == nil {
			t.Fatalf("admitted head item %d failed: %+v", i, resp.Results[i])
		}
	}
	for i := 7; i < 10; i++ {
		e := resp.Results[i].Error
		if e == nil || e.Status != http.StatusTooManyRequests || e.Code != "shed" {
			t.Fatalf("shed tail item %d: got %+v, want a 429 shed envelope", i, resp.Results[i])
		}
	}

	// The gate must be fully released: a follow-up batch of exactly the
	// ceiling is admitted whole.
	follow, err := c.PlanBatch(ctx, BatchPlanRequest{Items: items[:7]})
	if err != nil || follow.Admitted != 7 || follow.Shed != 0 {
		t.Fatalf("follow-up batch after release: %+v, %v", follow, err)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Batch.Requests != 2 || stats.Batch.Items != 14 || stats.Batch.Sheds != 3 {
		t.Fatalf("batch counters = %+v, want requests 2, items 14, sheds 3", stats.Batch)
	}
	_ = s
}

// TestBatchWholeRefusal pins the full-refusal contract: with the
// class budget already consumed, a batch answers a top-level 429 shed
// envelope with Retry-After, counts one shed request for the class
// (the single-request convention) plus every item in batch_sheds, and
// executes nothing.
func TestBatchWholeRefusal(t *testing.T) {
	s, hs, c := newTestServerCfg(t, Config{MaxInflight: 8})
	ctx := context.Background()
	mustCreateUpload(t, c, "m", 1e6)

	// Occupy the whole standard budget (ceiling 7 of cap 8).
	granted, _ := s.adm.acquireN(ClassStandard, 7)
	if granted != 7 {
		t.Fatalf("setup: granted %d of the standard ceiling", granted)
	}
	defer s.adm.releaseN(granted)

	items := make([]BatchItem, 5)
	for i := range items {
		items[i] = BatchItem{Model: "m", Op: "recommend"}
	}
	body, _ := json.Marshal(BatchPlanRequest{Items: items})
	hr, err := http.Post(hs.URL+"/v1/batch/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated batch: got %d %s, want 429", hr.StatusCode, raw)
	}
	if hr.Header.Get("Retry-After") == "" {
		t.Fatal("whole-batch refusal is missing the Retry-After header")
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code != "shed" {
		t.Fatalf("refusal envelope: %s (%v)", raw, err)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Batch.Requests != 0 || stats.Batch.Items != 0 || stats.Batch.Sheds != 5 {
		t.Fatalf("batch counters after whole refusal = %+v, want requests 0, items 0, sheds 5", stats.Batch)
	}
	if stats.Resilience.ShedStandard != 1 {
		t.Fatalf("whole refusal must count one shed standard request, got %d", stats.Resilience.ShedStandard)
	}
	_ = ctx
}

// TestBatchCriticalBypassesStandardCeiling checks that the batch cost
// model respects SLO classes: the same batch that standard traffic
// cannot fully land is admitted whole at critical.
func TestBatchCriticalBypassesStandardCeiling(t *testing.T) {
	_, _, c := newTestServerCfg(t, Config{MaxInflight: 8})
	ctx := context.Background()
	mustCreateUpload(t, c, "m", 1e6)

	items := make([]BatchItem, 8)
	for i := range items {
		items[i] = BatchItem{Model: "m", Op: "recommend"}
	}
	std, err := c.PlanBatch(ctx, BatchPlanRequest{Items: items})
	if err != nil || std.Admitted != 7 || std.Shed != 1 {
		t.Fatalf("standard batch of 8: %+v, %v (want 7 admitted, 1 shed)", std, err)
	}
	crit, err := c.WithClass("critical").PlanBatch(ctx, BatchPlanRequest{Items: items})
	if err != nil || crit.Admitted != 8 || crit.Shed != 0 {
		t.Fatalf("critical batch of 8: %+v, %v (want all admitted)", crit, err)
	}
}
