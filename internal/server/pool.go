package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// This file holds the allocation-avoidance plumbing of the serving hot
// path: pooled response encoders, pooled request-body buffers, and a
// map-free query-parameter scanner. The recommend/batch endpoints are
// the service's wire-speed paths — every per-request allocation here is
// paid millions of times under load, so the scratch space is recycled
// through sync.Pools instead of being re-allocated per request. The
// allocation budget per route is pinned by alloc_test.go.

// maxPooledBuf caps the capacity of a buffer returned to a pool: one
// pathological response (a huge rank, a trace upload echo) must not pin
// megabytes inside the pool forever.
const maxPooledBuf = 1 << 18 // 256 KiB

// respEncoder is a pooled response serializer: a bytes.Buffer with a
// json.Encoder permanently wired to it, so neither is re-allocated per
// response.
type respEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var respEncPool = sync.Pool{
	New: func() any {
		e := &respEncoder{}
		e.enc = json.NewEncoder(&e.buf)
		e.enc.SetEscapeHTML(false)
		return e
	},
}

// writeJSONBody serializes v through a pooled encoder and writes it as
// one body with an explicit Content-Length. Encoding errors after the
// header would be unrecoverable mid-stream; here the encode happens
// before any byte is committed, so a failed encode still produces a
// clean 500 envelope.
func writeJSONBody(w http.ResponseWriter, status int, v any) {
	e := respEncPool.Get().(*respEncoder)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		respEncPool.Put(e)
		writeRawJSON(w, http.StatusInternalServerError,
			[]byte(`{"error":{"code":"internal","message":"response encoding failed"}}`+"\n"))
		return
	}
	writeRawJSON(w, status, e.buf.Bytes())
	if e.buf.Cap() <= maxPooledBuf {
		respEncPool.Put(e)
	}
}

// writeRawJSON writes pre-serialized JSON bytes — the cached-response
// fast path and the tail of writeJSONBody.
func writeRawJSON(w http.ResponseWriter, status int, body []byte) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// bodyBufPool recycles the scratch buffers request bodies are read
// into before json.Unmarshal (a pooled read + Unmarshal allocates far
// less than a fresh json.Decoder per request, and the buffer survives
// to the next request).
var bodyBufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// getBodyBuf leases a reset scratch buffer.
func getBodyBuf() *bytes.Buffer {
	b := bodyBufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

// putBodyBuf returns a scratch buffer unless it grew past the pool cap.
func putBodyBuf(b *bytes.Buffer) {
	if b.Cap() <= maxPooledBuf {
		bodyBufPool.Put(b)
	}
}

// decodeJSONPooled decodes the request body into v through a pooled
// read buffer, enforcing the configured size cap. It mirrors
// decodeJSON's error contract (same envelopes, allowEmpty semantics)
// while allocating no per-request decoder or read buffer. An entirely
// absent body (ContentLength 0) short-circuits before touching the
// pool at all.
func (s *Server) decodeJSONPooled(w http.ResponseWriter, r *http.Request, v any, allowEmpty bool) error {
	if r.ContentLength == 0 {
		if allowEmpty {
			return nil
		}
		writeError(w, http.StatusBadRequest, "bad_request", "malformed JSON body: EOF")
		return io.EOF
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	buf := getBodyBuf()
	defer putBodyBuf(buf)
	if _, err := buf.ReadFrom(r.Body); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "too_large",
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return err
		}
		writeError(w, http.StatusBadRequest, "bad_request", "reading body: "+err.Error())
		return err
	}
	if buf.Len() == 0 {
		if allowEmpty {
			return nil
		}
		writeError(w, http.StatusBadRequest, "bad_request", "malformed JSON body: EOF")
		return io.EOF
	}
	if err := json.Unmarshal(buf.Bytes(), v); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "malformed JSON body: "+err.Error())
		return err
	}
	return nil
}

// queryValue scans a raw query string for one key without building the
// url.Values map (r.URL.Query() allocates a map plus a slice per key on
// every call — churn the per-route option parsing avoids by asking for
// exactly the parameter it was compiled to accept). Keys and values
// are expected in their encoded form; values containing %-escapes or
// '+' fall back to url.QueryUnescape via the caller when needed — the
// service's numeric parameters (window_s) never carry either.
func queryValue(rawQuery, key string) (string, bool) {
	for len(rawQuery) > 0 {
		var pair string
		if i := strings.IndexByte(rawQuery, '&'); i >= 0 {
			pair, rawQuery = rawQuery[:i], rawQuery[i+1:]
		} else {
			pair, rawQuery = rawQuery, ""
		}
		if len(pair) < len(key)+1 || pair[:len(key)] != key || pair[len(key)] != '=' {
			continue
		}
		return pair[len(key)+1:], true
	}
	return "", false
}
