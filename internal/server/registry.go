// Package server implements gridstratd, the long-running HTTP/JSON
// planning service over the gridstrat library: a sharded model
// registry mapping model IDs to memoized Planners, query endpoints for
// every Planner question (recommend, rank, optimize, simulate,
// makespan), and a trace-ingestion endpoint that turns the paper's
// weekly tuning loop (§7.2) into a continuous rolling-window rebuild.
//
// The package is wired together by three layers: Registry (sharded,
// RWMutex-per-shard storage of model entries with LRU eviction and
// atomic model swaps), Server (route handlers, codecs, middleware),
// and Client (a typed Go client used by the handler tests and the
// examples). The write path — rolling trace buffers, merge-built
// ECDFs, warm-cache model swaps and the coalescing async rebuild
// worker — lives in ingest.go.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gridstrat"
	"gridstrat/internal/core"
	"gridstrat/internal/stats"
	"gridstrat/internal/trace"
	"gridstrat/internal/wal"
)

// Registry errors reported to handlers; the HTTP layer maps them to
// 404, 409 and 400 envelopes respectively.
var (
	ErrNotFound = errors.New("server: model not found")
	ErrExists   = errors.New("server: model already exists")
	ErrInvalid  = errors.New("server: invalid argument")

	// ErrDurability marks a refused acknowledgement whose cause is the
	// durable log, not the request: the disk is full, the fsync failed,
	// or the log is poisoned by an unhealed torn write. Handlers map it
	// to 503 — the batch is safe to retry (it was never acked) once the
	// storage recovers.
	ErrDurability = errors.New("server: durable log unavailable")
)

// ModelTier is the representation a model snapshot is held in: the
// exact counted ECDF (every integral exact over the window), or the
// mergeable quantile sketch (bounded-error, an order of magnitude
// smaller) the registry demotes cold models to under byte pressure.
type ModelTier uint8

const (
	TierExact ModelTier = iota
	TierSketch
)

// String renders the tier for logs and the /v1/models wire form.
func (t ModelTier) String() string {
	if t == TierSketch {
		return "sketch"
	}
	return "exact"
}

// ModelState is one immutable snapshot of a registered model: the
// rolling-window trace it was built from, the memoized latency model
// shared by every Planner answering queries on it, and the summary
// statistics of the window. Ingestion never mutates a ModelState; it
// builds a successor and swaps the entry's pointer, so in-flight
// queries keep computing on the snapshot they started with.
type ModelState struct {
	Trace   *trace.Trace // records inside the rolling window, ascending by submit
	Model   gridstrat.Model
	Stats   trace.Stats
	Version int64     // bumped on every successful rebuild
	Built   time.Time // when this snapshot was constructed

	// Tier is the representation behind Model: exact ECDF or quantile
	// sketch. Deep-demoted sketch states (durable registries) also drop
	// the window from Trace — the WAL snapshot holds the records — so
	// Trace carries only the name/timeout header there.
	Tier ModelTier

	// ecdf is the counted empirical CDF underlying an exact-tier Model
	// — the merge base of the next epoch's incremental rebuild and the
	// source of the TableKeys handed to its Prewarm. Sketch-tier states
	// built by a rebuild keep it (kernel-less) as the merge base;
	// deep-demoted ones drop it.
	ecdf *stats.ECDF

	// sketch is the quantile-sketch backend of a sketch-tier Model.
	sketch *stats.Sketch

	// planner is the snapshot's shared default-options Planner — the
	// same one assembleModelState builds to obtain the memo wrapper.
	// Option-default queries reuse it instead of constructing a fresh
	// Planner (and a fresh cost-context baseline) per request; requests
	// carrying explicit options still get their own. It runs under a
	// background context: the work it does is bounded and warms the
	// snapshot-wide memo cache, so per-request cancellation is not
	// worth a per-request Planner on the hot path.
	planner *gridstrat.Planner

	// Default-recommendation cache: the answer to an option-free
	// recommend on this snapshot is deterministic, so it is computed
	// once and the wire form (recJSON: the complete non-degraded
	// RecommendResponse bytes, trailing newline included, byte-equal
	// to what the uncached encoder produces) is replayed on every
	// subsequent hit. recEnvelope keeps the per-item form batch items
	// share without re-converting.
	recOnce     sync.Once
	rec         gridstrat.Recommendation
	recEnvelope RecommendationJSON
	recJSON     []byte
	recErr      error
}

// defaultRecommend resolves the snapshot's option-free recommendation,
// computing and caching it on first use. id is the owning entry's
// model ID (a ModelState belongs to exactly one entry, so the cached
// wire bytes embed it safely).
func (st *ModelState) defaultRecommend(id string) (gridstrat.Recommendation, []byte, error) {
	st.recOnce.Do(func() {
		st.rec, st.recErr = st.planner.Recommend()
		if st.recErr != nil {
			return
		}
		st.recEnvelope = recToJSON(st.rec)
		body, err := json.Marshal(RecommendResponse{
			Model:          id,
			Version:        st.Version,
			Recommendation: st.recEnvelope,
		})
		if err != nil {
			st.recErr = err
			return
		}
		// json.Encoder (the streaming path) terminates with '\n';
		// keeping the cached bytes identical makes cached and uncached
		// responses indistinguishable on the wire.
		st.recJSON = append(body, '\n')
	})
	return st.rec, st.recJSON, st.recErr
}

// MemBytes estimates the snapshot's resident heap footprint: the
// window records held by Trace plus the model representation (and
// whatever kernel/sampler tables it has built).
func (st *ModelState) MemBytes() int64 {
	var b int64
	if st.Trace != nil {
		b += int64(len(st.Trace.Records)) * probeRecordBytes
	}
	if st.sketch != nil {
		b += st.sketch.MemBytes()
	}
	if st.ecdf != nil {
		b += st.ecdf.MemBytes()
	}
	return b
}

// newModelState builds the model snapshot of a windowed trace from
// scratch: ECDF sort, outlier-ratio scan, full ComputeStats. It is the
// registration-time constructor (and the ingest path's recovery
// fallback); steady-state rebuilds go through newModelStateMerged.
func newModelState(tr *trace.Trace, version int64) (*ModelState, error) {
	ecdf, err := tr.ECDF()
	if err != nil {
		return nil, err
	}
	return assembleModelState(tr, ecdf, tr.OutlierRatio(), tr.ComputeStats(), version)
}

// newModelStateMerged builds the snapshot of a window whose ECDF was
// already produced incrementally (merge of the predecessor epoch), so
// no per-rebuild sort is paid: the stats are derived from the counted
// ECDF in O(support).
func newModelStateMerged(tr *trace.Trace, ecdf *stats.ECDF, outliers int, version int64) (*ModelState, error) {
	rho := 0.0
	if terminal := ecdf.N() + outliers; terminal > 0 {
		rho = float64(outliers) / float64(terminal)
	}
	st := trace.StatsFromECDF(tr.Name, ecdf, len(tr.Records), outliers, tr.Timeout)
	return assembleModelState(tr, ecdf, rho, st, version)
}

// newModelStateSketch builds a sketch-tier snapshot: the model queries
// the sketch's compiled view, the stats derive from that view, and
// base (when non-nil) rides along kernel-less as the merge base of the
// next incremental rebuild. probes is the window record count the
// stats report (the deep-demotion path passes it explicitly because
// tr may be a records-free header there).
func newModelStateSketch(tr *trace.Trace, sk *stats.Sketch, base *stats.ECDF, probes, outliers int, version int64) (*ModelState, error) {
	rho := 0.0
	if terminal := sk.N() + outliers; terminal > 0 {
		rho = float64(outliers) / float64(terminal)
	}
	st := trace.StatsFromECDF(tr.Name, sk.View(), probes, outliers, tr.Timeout)
	out, err := assembleModelState(tr, sk, rho, st, version)
	if err != nil {
		return nil, err
	}
	out.Tier = TierSketch
	out.sketch = sk
	out.ecdf = base
	return out, nil
}

// assembleModelState wraps an empirical latency law — exact ECDF or
// quantile sketch — into the queryable model stack. The returned
// state's Model is the memoizing wrapper of a throwaway Planner, so
// every per-request Planner constructed over it shares one integral
// cache (NewPlanner detects an already-memoized model and does not
// double-wrap).
func assembleModelState(tr *trace.Trace, dist stats.EmpiricalDistribution, rho float64, st trace.Stats, version int64) (*ModelState, error) {
	em, err := core.NewEmpiricalModelDist(dist, rho, tr.Timeout)
	if err != nil {
		return nil, err
	}
	p, err := gridstrat.NewPlanner(em)
	if err != nil {
		return nil, err
	}
	out := &ModelState{
		Trace:   tr,
		Model:   p.Model(),
		Stats:   st,
		Version: version,
		Built:   time.Now(),
		planner: p,
	}
	if e, ok := dist.(*stats.ECDF); ok {
		out.ecdf = e
	}
	return out, nil
}

// maxWindowWidth bounds a model's rolling-window width (~317 years).
// An unbounded (or infinite — ParseFloat accepts "Inf") window would
// never trim, so every ingestion batch would grow the trace and the
// per-rebuild cost without limit; it also keeps the re-based submit
// span small enough that the Observe cursor stays below its ceiling.
const maxWindowWidth = 1e10

// maxTraceSubmit is the absolute ceiling on record submit times
// (~0.1% of float64's 2^53 integer range): past it, cursor + spacing
// could stop changing the float64 cursor and the rolling-window
// cutoff would freeze. Handler-level per-batch bounds keep normal
// traffic far below this; the check here makes the invariant durable
// across arbitrarily many batches.
const maxTraceSubmit = 1e13

// ShardStats is one shard's counter snapshot (or, summed, the
// registry totals reported by /v1/stats).
type ShardStats struct {
	Models        int    `json:"models"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	IngestBatches uint64 `json:"ingest_batches"`
	IngestRecords uint64 `json:"ingest_records"`

	// Write-path pipeline counters. Rebuilds counts model swaps;
	// CoalescedBatches the acknowledged batches that were folded into
	// an already-pending rebuild (rebuilds + coalesced = batches
	// applied); RebuildFailures the rebuilds that kept the previous
	// model because the window had become degenerate. QueuedRecords is
	// a gauge — the ingest lag, in records acknowledged but not yet in
	// any model snapshot.
	Rebuilds         uint64 `json:"rebuilds"`
	CoalescedBatches uint64 `json:"coalesced_batches"`
	RebuildFailures  uint64 `json:"rebuild_failures"`
	QueuedRecords    int    `json:"queued_records"`

	// Durability counters (all zero on a WAL-less server). WALAppends
	// counts batch/rebase frames written to the shard's model logs;
	// WALSnapshotBytes the total compacted-snapshot bytes written;
	// ReplayedRecords the records replayed from snapshot tails when
	// the shard's current entries were recovered (boot replay and
	// evicted-model reloads both count).
	WALAppends       uint64 `json:"wal_appends"`
	WALSnapshotBytes uint64 `json:"wal_snapshot_bytes"`
	ReplayedRecords  uint64 `json:"replayed_records"`

	// Tiering counters. ResidentBytes is a gauge: the estimated heap
	// footprint of the shard's entries (window records + model
	// representation + built tables). ModelsExact/ModelsSketch split
	// Models by current tier; Demotions counts exact→sketch moves the
	// byte-pressure enforcer performed.
	ResidentBytes int64  `json:"resident_bytes"`
	ModelsExact   int    `json:"models_exact"`
	ModelsSketch  int    `json:"models_sketch"`
	Demotions     uint64 `json:"demotions"`
}

type registryShard struct {
	mu      sync.RWMutex
	entries map[string]*Entry

	hits          atomic.Uint64
	misses        atomic.Uint64
	evictions     atomic.Uint64
	ingestBatches atomic.Uint64
	ingestRecords atomic.Uint64
	demotions     atomic.Uint64
}

// Registry is the sharded model store. Model IDs are hashed onto a
// fixed set of shards, each guarded by its own RWMutex, so lookups
// from concurrent query handlers only contend within a shard — and
// only on its read lock, since the LRU clock is advanced atomically.
// Each shard holds at most ⌈capacity/shards⌉ entries; inserting past
// that evicts the shard's least-recently-used entry (per-shard LRU is
// the usual sharded approximation of a global LRU: an entry can be
// evicted while a colder one survives in a different shard, in
// exchange for never taking a cross-shard lock).
type Registry struct {
	shards   []*registryShard
	perShard int
	capacity int

	rebuildEvery time.Duration // 0 = synchronous per-batch rebuilds
	maxQueued    int           // backpressure cap on queued ingest records

	// walStore, when set, makes the registry durable: Put opens a
	// per-model log and writes the seed snapshot, the ingest path
	// appends every acknowledged batch, Delete removes the durable
	// state, and Restore rebuilds an entry from disk (boot replay and
	// the lazy reload of evicted models).
	walStore      *wal.Store
	snapshotEvery int

	// restoreMu single-flights Restore: two concurrent reloads of one
	// evicted model must not both open its log (two appenders on one
	// segment would interleave frames). Restores are rare, so one
	// registry-wide mutex is fine.
	restoreMu sync.Mutex

	// Byte-based tiering policy. maxBytes (0 = unlimited) caps the
	// estimated resident footprint across all shards: past it, the
	// enforcer demotes the globally coldest exact-tier models to the
	// sketch tier, then falls back to evicting the coldest entries
	// outright. forceSketch builds every model in the sketch tier from
	// registration on (the GRIDSTRAT_SKETCH_TIER CI toggle). enforceMu
	// single-flights enforcement (TryLock: concurrent triggers skip
	// instead of queueing).
	maxBytes    int64
	forceSketch bool
	enforceMu   sync.Mutex
}

// defaultMaxQueued is the per-entry backpressure cap on acknowledged-
// but-unapplied ingest records; a batch that would push the queue past
// it pays for an inline drain instead of growing memory.
const defaultMaxQueued = 1 << 20

// NewRegistry builds a registry with the given shard count and total
// capacity. Non-positive arguments fall back to 8 shards / 256
// models. Entries rebuild synchronously per batch until
// SetIngestPolicy enables the async coalescing worker.
func NewRegistry(shards, capacity int) *Registry {
	if shards <= 0 {
		shards = 8
	}
	if capacity <= 0 {
		capacity = 256
	}
	if capacity < shards {
		capacity = shards // at least one model per shard
	}
	r := &Registry{
		shards:    make([]*registryShard, shards),
		perShard:  (capacity + shards - 1) / shards,
		capacity:  capacity,
		maxQueued: defaultMaxQueued,
	}
	for i := range r.shards {
		r.shards[i] = &registryShard{entries: make(map[string]*Entry)}
	}
	return r
}

// SetIngestPolicy configures the write path of entries registered
// after the call: a positive rebuildEvery decouples observation acks
// from model rebuilds (an async worker coalesces the batches queued
// within each interval into one rebuild), and maxQueued caps the
// acknowledged-but-unapplied records per entry (non-positive keeps
// the default). rebuildEvery = 0 keeps the synchronous
// rebuild-per-batch behaviour.
func (r *Registry) SetIngestPolicy(rebuildEvery time.Duration, maxQueued int) {
	if rebuildEvery < 0 {
		rebuildEvery = 0
	}
	if maxQueued <= 0 {
		maxQueued = defaultMaxQueued
	}
	r.rebuildEvery = rebuildEvery
	r.maxQueued = maxQueued
}

// SetMemoryPolicy configures byte-based tiering: maxBytes caps the
// estimated resident footprint (0 = unlimited; see EnforcePressure),
// and forceSketch builds every model in the sketch tier from
// registration on. Call it before any Put.
func (r *Registry) SetMemoryPolicy(maxBytes int64, forceSketch bool) {
	if maxBytes < 0 {
		maxBytes = 0
	}
	r.maxBytes = maxBytes
	r.forceSketch = forceSketch
}

// SetWAL makes the registry durable against the given store,
// compacting each model's log into a fresh snapshot after
// snapshotEvery appended records (non-positive falls back to 4096).
// Call it before any Put.
func (r *Registry) SetWAL(store *wal.Store, snapshotEvery int) {
	if snapshotEvery <= 0 {
		snapshotEvery = 4096
	}
	r.walStore = store
	r.snapshotEvery = snapshotEvery
}

// Capacity returns the registry's total model capacity.
func (r *Registry) Capacity() int { return r.capacity }

// shardFor hashes the ID onto its shard with an inline FNV-1a (the
// hash/fnv API would allocate a hasher plus a []byte copy of the ID
// on every registry operation — the service's hottest path).
func (r *Registry) shardFor(id string) *registryShard {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return r.shards[h%uint32(len(r.shards))]
}

// Put registers a model built from the trace under the given ID,
// evicting the shard's least-recently-used entry when the shard is
// full. The trace is loaded into a rolling buffer and trimmed to the
// trailing window first, so the ModelState invariant — records inside
// the window, ascending by submit — holds from registration, not only
// after the first observation batch. It returns ErrExists if the ID
// is already registered and wraps ErrInvalid for out-of-range
// arguments.
func (r *Registry) Put(id, source string, window float64, tr *trace.Trace) (*Entry, error) {
	e, err := r.put(id, source, window, tr)
	if err == nil {
		// Enforce outside put's shard/restore locks: demotion takes
		// entry locks and eviction takes shard locks of its own.
		r.EnforcePressure()
	}
	return e, err
}

func (r *Registry) put(id, source string, window float64, tr *trace.Trace) (*Entry, error) {
	if id == "" {
		return nil, fmt.Errorf("%w: empty model id", ErrInvalid)
	}
	if !(window > 0 && window <= maxWindowWidth) {
		return nil, fmt.Errorf("%w: window %v outside (0, %g]", ErrInvalid, window, float64(maxWindowWidth))
	}
	// Cheap duplicate check before the expensive model build; the
	// authoritative check re-runs under the write lock below (two
	// concurrent Puts of one ID can both pass this one). On a durable
	// registry an evicted-but-persisted model also counts as existing:
	// its state is one Get away, so silently overwriting it here would
	// turn a cache eviction into data loss.
	sh := r.shardFor(id)
	sh.mu.RLock()
	_, dup := sh.entries[id]
	sh.mu.RUnlock()
	if dup {
		return nil, fmt.Errorf("%w: %q", ErrExists, id)
	}
	if r.walStore != nil && r.walStore.Exists(id) {
		return nil, fmt.Errorf("%w: %q (durable; delete it first)", ErrExists, id)
	}
	e, err := newEntry(id, source, window, tr, r.rebuildEvery, r.maxQueued, r.forceSketch)
	if err != nil {
		return nil, err
	}
	if r.walStore != nil {
		// restoreMu serializes log opens: without it, two concurrent
		// Puts of one new ID could both pass the Exists check (no
		// snapshot on disk yet) and both open the model directory,
		// leaving two appenders interleaving frames on one segment. The
		// lock is held through the shard insert below so a Restore
		// cannot open the log in the window before the entry lands.
		r.restoreMu.Lock()
		defer r.restoreMu.Unlock()
		if r.walStore.Exists(id) {
			return nil, fmt.Errorf("%w: %q (durable; delete it first)", ErrExists, id)
		}
		if err := r.attachWAL(e); err != nil {
			return nil, err
		}
	}

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.entries[id]; ok {
		e.closeWAL()
		return nil, fmt.Errorf("%w: %q", ErrExists, id)
	}
	if len(sh.entries) >= r.perShard {
		sh.evictLocked()
	}
	sh.entries[id] = e
	return e, nil
}

// attachWAL opens the entry's log and persists its seed snapshot, so
// the model is durable from the moment Put returns. Any junk segments
// from a registration that crashed before its first snapshot are cut
// and deleted by the snapshot.
func (r *Registry) attachWAL(e *Entry) error {
	log, snap, _, err := r.walStore.Open(e.ID)
	if err != nil {
		return fmt.Errorf("opening wal: %w", err)
	}
	if snap != nil {
		// Lost the race against a concurrent Put that already
		// snapshotted; surface it as a duplicate.
		log.Close()
		return fmt.Errorf("%w: %q", ErrExists, e.ID)
	}
	e.wal = log
	e.store = r.walStore
	e.snapshotEvery = r.snapshotEvery
	if err := e.snapshotNow(); err != nil {
		e.closeWAL()
		_ = r.walStore.Delete(e.ID)
		return fmt.Errorf("writing seed snapshot: %w", err)
	}
	return nil
}

// Restore rebuilds one model from its durable state and inserts it
// into the registry — the boot-replay path and the lazy reload of a
// model that was LRU-evicted but still has its log on disk. It is
// single-flighted; a concurrent Restore (or a Get that raced one)
// resolves to the already-inserted entry.
func (r *Registry) Restore(id string) (*Entry, error) {
	e, err := r.restore(id)
	if err == nil {
		r.EnforcePressure()
	}
	return e, err
}

func (r *Registry) restore(id string) (*Entry, error) {
	if r.walStore == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	r.restoreMu.Lock()
	defer r.restoreMu.Unlock()

	sh := r.shardFor(id)
	sh.mu.RLock()
	e, ok := sh.entries[id]
	sh.mu.RUnlock()
	if ok {
		return e, nil
	}
	if !r.walStore.Exists(id) {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}

	log, snap, replayed, err := r.walStore.Open(id)
	if err != nil {
		return nil, fmt.Errorf("recovering %q: %w", id, err)
	}
	e, err = newEntryFromSnapshot(id, snap, replayed, log, r.rebuildEvery, r.maxQueued, r.snapshotEvery, r.forceSketch)
	if err != nil {
		log.Close()
		return nil, fmt.Errorf("recovering %q: %w", id, err)
	}
	e.store = r.walStore

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if raced, ok := sh.entries[id]; ok {
		e.closeWAL()
		return raced, nil
	}
	if len(sh.entries) >= r.perShard {
		sh.evictLocked()
	}
	sh.entries[id] = e
	return e, nil
}

// evictLocked removes the shard's least-recently-used entry. Caller
// holds the shard write lock. On a durable registry eviction is a
// cache eviction, not a delete: the entry's log is closed but its
// files stay, so the next Get restores the model from disk.
func (sh *registryShard) evictLocked() {
	var victim string
	oldest := int64(1<<63 - 1)
	for id, e := range sh.entries {
		if t := e.lastUsed.Load(); t < oldest {
			oldest, victim = t, id
		}
	}
	if victim != "" {
		sh.entries[victim].closeWAL()
		delete(sh.entries, victim)
		sh.evictions.Add(1)
	}
}

// Get returns the entry for the ID, touching its LRU clock and the
// shard's hit/miss counters.
func (r *Registry) Get(id string) (*Entry, error) {
	sh := r.shardFor(id)
	sh.mu.RLock()
	e, ok := sh.entries[id]
	sh.mu.RUnlock()
	if !ok {
		sh.misses.Add(1)
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	sh.hits.Add(1)
	e.lastUsed.Store(time.Now().UnixNano())
	return e, nil
}

// Delete removes the entry for the ID — durable state included, so a
// deleted model stays deleted across restarts — reporting whether it
// existed (in memory or on disk).
func (r *Registry) Delete(id string) bool {
	sh := r.shardFor(id)
	sh.mu.Lock()
	e, ok := sh.entries[id]
	if ok {
		e.closeWAL()
		delete(sh.entries, id)
	}
	sh.mu.Unlock()
	if r.walStore != nil && r.walStore.Exists(id) {
		_ = r.walStore.Delete(id)
		return true
	}
	if ok && r.walStore != nil {
		_ = r.walStore.Delete(id) // dir without a snapshot yet
	}
	return ok
}

// noteIngest records one ingestion batch in the owning shard's
// counters and re-checks byte pressure (ingestion is what grows
// resident state between registrations).
func (r *Registry) noteIngest(id string, records int) {
	sh := r.shardFor(id)
	sh.ingestBatches.Add(1)
	sh.ingestRecords.Add(uint64(records))
	r.EnforcePressure()
}

// ResidentBytes returns the estimated resident heap footprint of every
// registered entry.
func (r *Registry) ResidentBytes() int64 {
	var total int64
	for _, sh := range r.shards {
		sh.mu.RLock()
		for _, e := range sh.entries {
			total += e.MemBytes()
		}
		sh.mu.RUnlock()
	}
	return total
}

// EnforcePressure brings the registry's estimated resident footprint
// back under the byte cap, in two escalating moves: first the globally
// coldest exact-tier models are demoted to the sketch tier (on a
// durable registry the window moves to the WAL snapshot and drops from
// memory — promotion back is a bit-equal replay; without a WAL the
// demotion only sheds the exact representation's tables), and only
// when no exact model is left to demote are the coldest entries
// evicted outright. No-op without a byte cap. Concurrent triggers
// skip (TryLock) instead of queueing — the next batch re-checks.
func (r *Registry) EnforcePressure() {
	if r.maxBytes <= 0 {
		return
	}
	if !r.enforceMu.TryLock() {
		return
	}
	defer r.enforceMu.Unlock()
	for r.ResidentBytes() > r.maxBytes {
		if e := r.coldest(func(e *Entry) bool { return e.State().Tier == TierExact }); e != nil {
			if e.demote() {
				r.shardFor(e.ID).demotions.Add(1)
				continue
			}
			// Demotion can fail transiently (snapshot write error, raced
			// tier change); fall through to eviction rather than spin.
		}
		if r.Len() <= 1 {
			return // never evict the last model; the cap is best-effort
		}
		victim := r.coldest(nil)
		if victim == nil {
			return
		}
		r.evictID(victim.ID)
	}
}

// coldest returns the registered entry with the oldest LRU clock among
// those matching keep (nil matches all), or nil when none match.
func (r *Registry) coldest(keep func(*Entry) bool) *Entry {
	var victim *Entry
	oldest := int64(1<<63 - 1)
	for _, sh := range r.shards {
		sh.mu.RLock()
		for _, e := range sh.entries {
			if keep != nil && !keep(e) {
				continue
			}
			if t := e.lastUsed.Load(); t < oldest {
				oldest, victim = t, e
			}
		}
		sh.mu.RUnlock()
	}
	return victim
}

// evictID removes one specific entry as a cache eviction (durable
// state stays on disk; see evictLocked).
func (r *Registry) evictID(id string) {
	sh := r.shardFor(id)
	sh.mu.Lock()
	if e, ok := sh.entries[id]; ok {
		e.closeWAL()
		delete(sh.entries, id)
		sh.evictions.Add(1)
	}
	sh.mu.Unlock()
}

// List returns every registered entry sorted by ID.
func (r *Registry) List() []*Entry {
	var out []*Entry
	for _, sh := range r.shards {
		sh.mu.RLock()
		for _, e := range sh.entries {
			out = append(out, e)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of registered models.
func (r *Registry) Len() int {
	n := 0
	for _, sh := range r.shards {
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

// Stats returns a per-shard counter snapshot, including the write-
// path pipeline counters summed over the shard's entries.
func (r *Registry) Stats() []ShardStats {
	out := make([]ShardStats, len(r.shards))
	for i, sh := range r.shards {
		st := ShardStats{
			Hits:          sh.hits.Load(),
			Misses:        sh.misses.Load(),
			Evictions:     sh.evictions.Load(),
			IngestBatches: sh.ingestBatches.Load(),
			IngestRecords: sh.ingestRecords.Load(),
			Demotions:     sh.demotions.Load(),
		}
		sh.mu.RLock()
		st.Models = len(sh.entries)
		for _, e := range sh.entries {
			st.Rebuilds += e.rebuilds.Load()
			st.CoalescedBatches += e.coalesced.Load()
			st.RebuildFailures += e.rebuildFails.Load()
			st.QueuedRecords += e.Pending()
			if e.wal != nil {
				st.WALAppends += e.wal.Appends()
				st.WALSnapshotBytes += e.wal.SnapshotBytes()
			}
			st.ReplayedRecords += uint64(e.replayed)
			st.ResidentBytes += e.MemBytes()
			if e.State().Tier == TierSketch {
				st.ModelsSketch++
			} else {
				st.ModelsExact++
			}
		}
		sh.mu.RUnlock()
		out[i] = st
	}
	return out
}
