// Package server implements gridstratd, the long-running HTTP/JSON
// planning service over the gridstrat library: a sharded model
// registry mapping model IDs to memoized Planners, query endpoints for
// every Planner question (recommend, rank, optimize, simulate,
// makespan), and a trace-ingestion endpoint that turns the paper's
// weekly tuning loop (§7.2) into a continuous rolling-window rebuild.
//
// The package is wired together by three layers: Registry (sharded,
// RWMutex-per-shard storage of model entries with LRU eviction and
// atomic model swaps), Server (route handlers, codecs, middleware),
// and Client (a typed Go client used by the handler tests and the
// examples).
package server

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gridstrat"
	"gridstrat/internal/trace"
)

// Registry errors reported to handlers; the HTTP layer maps them to
// 404, 409 and 400 envelopes respectively.
var (
	ErrNotFound = errors.New("server: model not found")
	ErrExists   = errors.New("server: model already exists")
	ErrInvalid  = errors.New("server: invalid argument")
)

// ModelState is one immutable snapshot of a registered model: the
// rolling-window trace it was built from, the memoized latency model
// shared by every Planner answering queries on it, and the summary
// statistics of the window. Ingestion never mutates a ModelState; it
// builds a successor and swaps the entry's pointer, so in-flight
// queries keep computing on the snapshot they started with.
type ModelState struct {
	Trace   *trace.Trace // records inside the rolling window
	Model   gridstrat.Model
	Stats   trace.Stats
	Version int64     // bumped on every successful rebuild
	Built   time.Time // when this snapshot was constructed
}

// newModelState builds the model snapshot of a windowed trace. The
// returned state's Model is the memoizing wrapper of a throwaway
// Planner, so every per-request Planner constructed over it shares one
// integral cache (NewPlanner detects an already-memoized model and
// does not double-wrap).
func newModelState(tr *trace.Trace, version int64) (*ModelState, error) {
	em, err := gridstrat.ModelFromTrace(tr)
	if err != nil {
		return nil, err
	}
	p, err := gridstrat.NewPlanner(em)
	if err != nil {
		return nil, err
	}
	return &ModelState{
		Trace:   tr,
		Model:   p.Model(),
		Stats:   tr.ComputeStats(),
		Version: version,
		Built:   time.Now(),
	}, nil
}

// Entry is one registered model. The queryable state lives behind an
// atomic pointer: readers Load it without any entry-level lock, and
// Observe swaps in a rebuilt snapshot, so queries and ingestion never
// block each other. Only ingestion batches are serialized (ingestMu),
// because each rebuild must extend its predecessor's window.
type Entry struct {
	ID     string
	Source string  // "dataset:<name>" or "upload:<format>"
	Window float64 // rolling-window width, seconds

	state atomic.Pointer[ModelState]

	// lastUsed is the entry's LRU clock (unix nanoseconds of the most
	// recent Get), advanced with an atomic store so lookups stay on the
	// shard's read lock; eviction picks the smallest value.
	lastUsed atomic.Int64

	ingestMu sync.Mutex
	nextID   int // next free probe-record ID, guarded by ingestMu
}

// State returns the entry's current immutable model snapshot.
func (e *Entry) State() *ModelState { return e.state.Load() }

// ObserveResult summarizes one ingestion batch.
type ObserveResult struct {
	State    *ModelState // snapshot after the swap
	Appended int         // records added by the batch
	Dropped  int         // records that fell out of the rolling window
}

// maxWindowWidth bounds a model's rolling-window width (~317 years).
// An unbounded (or infinite — ParseFloat accepts "Inf") window would
// never trim, so every ingestion batch would grow the trace and the
// per-rebuild cost without limit; it also keeps the re-based submit
// span small enough that the Observe cursor stays below its ceiling.
const maxWindowWidth = 1e10

// maxTraceSubmit is the absolute ceiling on record submit times
// (~0.1% of float64's 2^53 integer range): past it, cursor + spacing
// could stop changing the float64 cursor and the rolling-window
// cutoff would freeze. Handler-level per-batch bounds keep normal
// traffic far below this; the check here makes the invariant durable
// across arbitrarily many batches.
const maxTraceSubmit = 1e13

// Observe appends probe records to the entry's trace, trims the
// result to the trailing rolling window, rebuilds the latency model
// and atomically swaps it in. The batch is all-or-nothing: if the
// windowed trace cannot support a model (for example, every remaining
// record is an outlier), the entry keeps its previous state and the
// error is returned.
//
// Record IDs and submit times are assigned under the entry's ingest
// lock, so concurrent batches interleave cleanly: each record is
// stamped spacing seconds after its predecessor, starting at *start
// when given and right after the window's newest record otherwise.
// Callers only provide Latency and Status.
//
// Observe holds no registry lock, so a batch racing a Delete (or an
// LRU eviction) of the same model can be acknowledged against the
// departing entry; the outcome is identical to the delete landing
// just after the batch, so acknowledged-then-deleted is the same
// at-most-once contract either way.
func (e *Entry) Observe(recs []trace.ProbeRecord, start *float64, spacing float64) (ObserveResult, error) {
	if len(recs) == 0 {
		return ObserveResult{}, fmt.Errorf("server: empty observation batch")
	}
	if spacing <= 0 {
		spacing = 1
	}
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()

	old := e.state.Load()
	cursor := 0.0
	if start != nil {
		cursor = *start
	} else {
		for _, r := range old.Trace.Records {
			if s := r.Submit + spacing; s > cursor {
				cursor = s
			}
		}
	}
	// When the default cursor approaches the ceiling, re-base the
	// window onto t = 0: trimming depends only on relative submit
	// times, so shifting every record preserves each decision while
	// resetting the cursor far below the ceiling (the post-trim span
	// is at most the window width) — ingestion can never wedge itself.
	offset := 0.0
	if start == nil && cursor+spacing*float64(len(recs)) > maxTraceSubmit {
		offset = math.Inf(1)
		for _, r := range old.Trace.Records {
			offset = math.Min(offset, r.Submit)
		}
		cursor -= offset
	}
	combined := &trace.Trace{
		Name:    old.Trace.Name,
		Timeout: old.Trace.Timeout,
		Records: make([]trace.ProbeRecord, 0, len(old.Trace.Records)+len(recs)),
	}
	for _, r := range old.Trace.Records {
		r.Submit -= offset
		combined.Records = append(combined.Records, r)
	}
	id := e.nextID
	for _, r := range recs {
		r.ID = id
		r.Submit = cursor
		id++
		cursor += spacing
		combined.Records = append(combined.Records, r)
	}
	if cursor > maxTraceSubmit {
		return ObserveResult{}, fmt.Errorf("server: submit cursor %g past the %g ceiling", cursor, float64(maxTraceSubmit))
	}
	if err := combined.Validate(); err != nil {
		return ObserveResult{}, err
	}
	windowed, err := trace.LastWindow(combined, e.Window)
	if err != nil {
		return ObserveResult{}, err
	}
	next, err := newModelState(windowed, old.Version+1)
	if err != nil {
		return ObserveResult{}, fmt.Errorf("rebuilding windowed model: %w", err)
	}
	e.nextID = id
	e.state.Store(next)
	return ObserveResult{
		State:    next,
		Appended: len(recs),
		Dropped:  len(combined.Records) - len(windowed.Records),
	}, nil
}

// ShardStats is one shard's counter snapshot (or, summed, the
// registry totals reported by /v1/stats).
type ShardStats struct {
	Models        int    `json:"models"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	IngestBatches uint64 `json:"ingest_batches"`
	IngestRecords uint64 `json:"ingest_records"`
}

type registryShard struct {
	mu      sync.RWMutex
	entries map[string]*Entry

	hits          atomic.Uint64
	misses        atomic.Uint64
	evictions     atomic.Uint64
	ingestBatches atomic.Uint64
	ingestRecords atomic.Uint64
}

// Registry is the sharded model store. Model IDs are hashed onto a
// fixed set of shards, each guarded by its own RWMutex, so lookups
// from concurrent query handlers only contend within a shard — and
// only on its read lock, since the LRU clock is advanced atomically.
// Each shard holds at most ⌈capacity/shards⌉ entries; inserting past
// that evicts the shard's least-recently-used entry (per-shard LRU is
// the usual sharded approximation of a global LRU: an entry can be
// evicted while a colder one survives in a different shard, in
// exchange for never taking a cross-shard lock).
type Registry struct {
	shards   []*registryShard
	perShard int
	capacity int
}

// NewRegistry builds a registry with the given shard count and total
// capacity. Non-positive arguments fall back to 8 shards / 256
// models.
func NewRegistry(shards, capacity int) *Registry {
	if shards <= 0 {
		shards = 8
	}
	if capacity <= 0 {
		capacity = 256
	}
	if capacity < shards {
		capacity = shards // at least one model per shard
	}
	r := &Registry{
		shards:   make([]*registryShard, shards),
		perShard: (capacity + shards - 1) / shards,
		capacity: capacity,
	}
	for i := range r.shards {
		r.shards[i] = &registryShard{entries: make(map[string]*Entry)}
	}
	return r
}

// Capacity returns the registry's total model capacity.
func (r *Registry) Capacity() int { return r.capacity }

// shardFor hashes the ID onto its shard with an inline FNV-1a (the
// hash/fnv API would allocate a hasher plus a []byte copy of the ID
// on every registry operation — the service's hottest path).
func (r *Registry) shardFor(id string) *registryShard {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return r.shards[h%uint32(len(r.shards))]
}

// Put registers a model built from the trace under the given ID,
// evicting the shard's least-recently-used entry when the shard is
// full. The trace is trimmed to the trailing rolling window first, so
// the ModelState invariant — records inside the window — holds from
// registration, not only after the first observation batch. It
// returns ErrExists if the ID is already registered and wraps
// ErrInvalid for out-of-range arguments.
func (r *Registry) Put(id, source string, window float64, tr *trace.Trace) (*Entry, error) {
	if id == "" {
		return nil, fmt.Errorf("%w: empty model id", ErrInvalid)
	}
	if !(window > 0 && window <= maxWindowWidth) {
		return nil, fmt.Errorf("%w: window %v outside (0, %g]", ErrInvalid, window, float64(maxWindowWidth))
	}
	// Cheap duplicate check before the expensive model build; the
	// authoritative check re-runs under the write lock below (two
	// concurrent Puts of one ID can both pass this one).
	sh := r.shardFor(id)
	sh.mu.RLock()
	_, dup := sh.entries[id]
	sh.mu.RUnlock()
	if dup {
		return nil, fmt.Errorf("%w: %q", ErrExists, id)
	}
	windowed, err := trace.LastWindow(tr, window)
	if err != nil {
		return nil, err
	}
	state, err := newModelState(windowed, 1)
	if err != nil {
		return nil, err
	}
	// IDs stay unique against the full seed trace, including records
	// the window trim dropped.
	maxID := 0
	for _, rec := range tr.Records {
		if rec.ID >= maxID {
			maxID = rec.ID + 1
		}
	}
	e := &Entry{ID: id, Source: source, Window: window, nextID: maxID}
	e.state.Store(state)
	e.lastUsed.Store(time.Now().UnixNano())

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.entries[id]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, id)
	}
	if len(sh.entries) >= r.perShard {
		sh.evictLocked()
	}
	sh.entries[id] = e
	return e, nil
}

// evictLocked removes the shard's least-recently-used entry. Caller
// holds the shard write lock.
func (sh *registryShard) evictLocked() {
	var victim string
	oldest := int64(1<<63 - 1)
	for id, e := range sh.entries {
		if t := e.lastUsed.Load(); t < oldest {
			oldest, victim = t, id
		}
	}
	if victim != "" {
		delete(sh.entries, victim)
		sh.evictions.Add(1)
	}
}

// Get returns the entry for the ID, touching its LRU clock and the
// shard's hit/miss counters.
func (r *Registry) Get(id string) (*Entry, error) {
	sh := r.shardFor(id)
	sh.mu.RLock()
	e, ok := sh.entries[id]
	sh.mu.RUnlock()
	if !ok {
		sh.misses.Add(1)
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	sh.hits.Add(1)
	e.lastUsed.Store(time.Now().UnixNano())
	return e, nil
}

// Delete removes the entry for the ID, reporting whether it existed.
func (r *Registry) Delete(id string) bool {
	sh := r.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.entries[id]; !ok {
		return false
	}
	delete(sh.entries, id)
	return true
}

// noteIngest records one ingestion batch in the owning shard's
// counters.
func (r *Registry) noteIngest(id string, records int) {
	sh := r.shardFor(id)
	sh.ingestBatches.Add(1)
	sh.ingestRecords.Add(uint64(records))
}

// List returns every registered entry sorted by ID.
func (r *Registry) List() []*Entry {
	var out []*Entry
	for _, sh := range r.shards {
		sh.mu.RLock()
		for _, e := range sh.entries {
			out = append(out, e)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of registered models.
func (r *Registry) Len() int {
	n := 0
	for _, sh := range r.shards {
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

// Stats returns a per-shard counter snapshot.
func (r *Registry) Stats() []ShardStats {
	out := make([]ShardStats, len(r.shards))
	for i, sh := range r.shards {
		sh.mu.RLock()
		models := len(sh.entries)
		sh.mu.RUnlock()
		out[i] = ShardStats{
			Models:        models,
			Hits:          sh.hits.Load(),
			Misses:        sh.misses.Load(),
			Evictions:     sh.evictions.Load(),
			IngestBatches: sh.ingestBatches.Load(),
			IngestRecords: sh.ingestRecords.Load(),
		}
	}
	return out
}
