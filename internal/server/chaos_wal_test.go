package server

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"gridstrat/internal/chaos"
)

// WAL fault-injection tests: the ack contract under storage failure.
// An append the log could not take durably must refuse the ack (the
// handler maps it to 503 storage_error via ErrDurability), leave the
// in-memory state exactly where it was, and — the durability pin —
// recovery over the damaged directory must land bit-equal to the last
// *acked* state, never including a refused batch.

// faultedServer builds a durable server with the fault plan armed,
// seeds one model and ingests warm batches so the fault lands on a
// log with real history. It returns the entry and the batch rng.
func faultedServer(t *testing.T, cfg Config) (*Entry, *rand.Rand) {
	t.Helper()
	s := recoverServer(t, cfg)
	e, err := s.Registry().Put("m", "test", 4000, synthTrace("m", 60, 3, 1))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 4; i++ {
		if _, err := e.Observe(randomBatch(rng, 20), nil, 2); err != nil {
			t.Fatalf("warm Observe %d: %v", i, err)
		}
	}
	return e, rng
}

// requireEntryPinned asserts the entry still serves exactly the given
// snapshot and stamping state — what a refused ack must guarantee.
func requireEntryPinned(t *testing.T, e *Entry, st *ModelState, cursor float64, nextID int) {
	t.Helper()
	if e.State() != st {
		t.Fatal("refused ack advanced the model snapshot")
	}
	if math.Float64bits(e.cursor) != math.Float64bits(cursor) {
		t.Fatalf("refused ack moved the cursor: %v -> %v", cursor, e.cursor)
	}
	if e.nextID != nextID {
		t.Fatalf("refused ack moved nextID: %d -> %d", nextID, e.nextID)
	}
}

// requireRecoveredEqual replays the WAL directory with the fault plan
// disarmed and asserts the recovered entry is bit-equal to want.
func requireRecoveredEqual(t *testing.T, cfg Config, want *Entry) {
	t.Helper()
	clean := cfg
	clean.WALHooks = nil
	s := recoverServer(t, clean)
	got, err := s.Registry().Get("m")
	if err != nil {
		t.Fatalf("recovered Get: %v", err)
	}
	requireECDFBitEqual(t, want.State().ecdf, got.State().ecdf)
	if !reflect.DeepEqual(want.State().Trace.Records, got.State().Trace.Records) {
		t.Fatalf("recovered window diverged: %d vs %d records",
			len(want.State().Trace.Records), len(got.State().Trace.Records))
	}
	if math.Float64bits(want.cursor) != math.Float64bits(got.cursor) {
		t.Fatalf("recovered cursor: want %v, got %v", want.cursor, got.cursor)
	}
	if want.nextID != got.nextID {
		t.Fatalf("recovered nextID: want %d, got %d", want.nextID, got.nextID)
	}
}

// TestWALENOSPCRefusesAckAndRecovers: a disk-full append refuses the
// ack and changes nothing; the failure is transient (the next batch
// lands) and recovery reproduces exactly the acked history.
func TestWALENOSPCRefusesAckAndRecovers(t *testing.T) {
	faults := chaos.NewWALFaults()
	cfg := Config{WALDir: t.TempDir(), WALSync: "none", WALHooks: faults.Hooks()}
	e, rng := faultedServer(t, cfg)

	st, cursor, nextID := e.State(), e.cursor, e.nextID
	faults.ENOSPCAt(int(faults.Appends()) + 1)
	_, err := e.Observe(randomBatch(rng, 20), nil, 2)
	if err == nil {
		t.Fatal("append through a full disk was acknowledged")
	}
	if !errors.Is(err, ErrDurability) {
		t.Fatalf("want ErrDurability, got %v", err)
	}
	requireEntryPinned(t, e, st, cursor, nextID)

	// ENOSPC writes nothing, so the log stays whole: the next batch
	// must be acknowledged normally.
	if _, err := e.Observe(randomBatch(rng, 20), nil, 2); err != nil {
		t.Fatalf("Observe after transient ENOSPC: %v", err)
	}
	requireRecoveredEqual(t, cfg, e)
}

// TestWALTornWritePoisonsLogAndRecovers: a torn append (part of the
// frame reached disk, the "crash" stopped the cleanup) refuses the
// ack and poisons the log — later appends are refused outright rather
// than landed behind the tear — and recovery truncates the torn tail,
// landing bit-equal to the last acked state.
func TestWALTornWritePoisonsLogAndRecovers(t *testing.T) {
	faults := chaos.NewWALFaults()
	cfg := Config{WALDir: t.TempDir(), WALSync: "none", WALHooks: faults.Hooks()}
	e, rng := faultedServer(t, cfg)

	st, cursor, nextID := e.State(), e.cursor, e.nextID
	faults.TornAt(int(faults.Appends())+1, 0.6)
	_, err := e.Observe(randomBatch(rng, 20), nil, 2)
	if err == nil {
		t.Fatal("torn append was acknowledged")
	}
	if !errors.Is(err, ErrDurability) {
		t.Fatalf("want ErrDurability, got %v", err)
	}
	requireEntryPinned(t, e, st, cursor, nextID)

	// The log is poisoned: appending behind the tear would be silently
	// lost to recovery, so the ack must be refused cleanly instead.
	_, err = e.Observe(randomBatch(rng, 20), nil, 2)
	if err == nil {
		t.Fatal("append onto a poisoned log was acknowledged")
	}
	if !errors.Is(err, ErrDurability) || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("want poisoned-log ErrDurability, got %v", err)
	}
	requireEntryPinned(t, e, st, cursor, nextID)
	requireRecoveredEqual(t, cfg, e)
}

// TestWALFsyncErrorClawsBackFrame: under the "always" policy a failed
// fsync refuses the ack and claws the written-but-unsynced frame back,
// so the refused batch can never be replayed; the log heals and keeps
// taking batches.
func TestWALFsyncErrorClawsBackFrame(t *testing.T) {
	faults := chaos.NewWALFaults()
	cfg := Config{WALDir: t.TempDir(), WALSync: "always", WALHooks: faults.Hooks()}
	e, rng := faultedServer(t, cfg)

	st, cursor, nextID := e.State(), e.cursor, e.nextID
	faults.FsyncErrAt(int(faults.Syncs()) + 1)
	_, err := e.Observe(randomBatch(rng, 20), nil, 2)
	if err == nil {
		t.Fatal("unsynced append was acknowledged")
	}
	if !errors.Is(err, ErrDurability) {
		t.Fatalf("want ErrDurability, got %v", err)
	}
	requireEntryPinned(t, e, st, cursor, nextID)

	// The clawback truncated the unsynced frame, so the log is whole
	// again; the next batch lands, and recovery replays exactly the
	// acked batches — the clawed-back one is absent.
	if _, err := e.Observe(randomBatch(rng, 20), nil, 2); err != nil {
		t.Fatalf("Observe after healed fsync failure: %v", err)
	}
	requireRecoveredEqual(t, cfg, e)
}

// TestObservationsStorageErrorEnvelope: through the HTTP surface a
// refused ack answers 503 storage_error — retryable, explicitly not
// an acknowledgement.
func TestObservationsStorageErrorEnvelope(t *testing.T) {
	faults := chaos.NewWALFaults()
	cfg := Config{WALDir: t.TempDir(), WALSync: "none", WALHooks: faults.Hooks()}
	s := recoverServer(t, cfg)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c := NewClient(hs.URL, hs.Client())
	ctx := context.Background()
	if _, err := s.Registry().Put("m", "test", 4000, synthTrace("m", 40, 2, 1)); err != nil {
		t.Fatalf("Put: %v", err)
	}

	faults.ENOSPCAt(int(faults.Appends()) + 1)
	_, err := c.Observe(ctx, "m", ObserveRequest{Latencies: []float64{100, 200}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if apiErr.Status != 503 || apiErr.Code != "storage_error" {
		t.Fatalf("want 503 storage_error, got %d %s", apiErr.Status, apiErr.Code)
	}

	// Transient: the retried batch is acknowledged.
	if _, err := c.Observe(ctx, "m", ObserveRequest{Latencies: []float64{100, 200}}); err != nil {
		t.Fatalf("retry after storage error: %v", err)
	}
}
