package server

import (
	"fmt"
	"strings"

	"gridstrat"
	"gridstrat/internal/trace"
)

// This file holds the JSON wire schema of every endpoint (documented
// normatively in docs/openapi.yaml) and the converters between wire
// types and the gridstrat library types.

// ErrorBody is the payload of the error envelope every non-2xx
// response carries.
type ErrorBody struct {
	Code    string `json:"code"`    // stable machine-readable identifier
	Message string `json:"message"` // human-readable detail
}

// ErrorEnvelope is the uniform error response: {"error": {code, message}}.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// TraceStatsJSON is the wire form of a model window's Table-1-style
// summary statistics.
type TraceStatsJSON struct {
	Probes        int     `json:"probes"`
	Completed     int     `json:"completed"`
	Outliers      int     `json:"outliers"`
	Rho           float64 `json:"rho"`
	MeanBodyS     float64 `json:"mean_body_s"`
	StdBodyS      float64 `json:"std_body_s"`
	MeanCensoredS float64 `json:"mean_censored_s"`
	MedianS       float64 `json:"median_s"`
}

func statsToJSON(s trace.Stats) TraceStatsJSON {
	return TraceStatsJSON{
		Probes:        s.Probes,
		Completed:     s.Completed,
		Outliers:      s.Outliers,
		Rho:           s.Rho,
		MeanBodyS:     s.MeanBody,
		StdBodyS:      s.StdBody,
		MeanCensoredS: s.MeanCensored,
		MedianS:       s.Median,
	}
}

// StationarityJSON is the wire form of a windowed drift/trend report.
type StationarityJSON struct {
	Windows      int     `json:"windows"`
	MeanDrift    float64 `json:"mean_drift"`
	RhoDrift     float64 `json:"rho_drift"`
	TrendPValue  float64 `json:"trend_p_value"`
	TrendSlopeS  float64 `json:"trend_slope_s"`
	TrendRising  bool    `json:"trend_rising"`
	WindowWidthS float64 `json:"window_width_s"`
}

// ModelInfo describes one registered model. Degraded (with its
// reason) marks an answer served under adverse conditions — boot
// replay still in flight, rebuild backlog past the staleness
// threshold, or a memory-pressure demotion to the sketch tier — that
// the pre-resilience server refused with 503; see degradedOf.
type ModelInfo struct {
	ID             string            `json:"id"`
	Source         string            `json:"source"`
	Version        int64             `json:"version"`
	WindowS        float64           `json:"window_s"`
	TimeoutS       float64           `json:"timeout_s"`
	Tier           string            `json:"tier"` // "exact" or "sketch"
	Stats          TraceStatsJSON    `json:"stats"`
	Stationarity   *StationarityJSON `json:"stationarity,omitempty"`
	Degraded       bool              `json:"degraded,omitempty"`
	DegradedReason string            `json:"degraded_reason,omitempty"` // "recovering", "backlog" or "memory_pressure"
}

func modelInfo(e *Entry) ModelInfo { return modelInfoAt(e, e.State()) }

// modelInfoAt renders the info of one explicit snapshot; handlers
// that also derive other response fields from the state use it to
// keep the whole response on a single snapshot.
func modelInfoAt(e *Entry, st *ModelState) ModelInfo {
	return ModelInfo{
		ID:       e.ID,
		Source:   e.Source,
		Version:  st.Version,
		WindowS:  e.Window,
		TimeoutS: st.Trace.Timeout,
		Tier:     st.Tier.String(),
		Stats:    statsToJSON(st.Stats),
	}
}

// CreateModelRequest registers a model from a named paper dataset or
// an inline trace document.
type CreateModelRequest struct {
	ID      string  `json:"id"`
	Dataset string  `json:"dataset,omitempty"` // paper dataset name, e.g. "2006-IX"
	Format  string  `json:"format,omitempty"`  // "csv", "gwf" or "json" for inline traces
	Trace   string  `json:"trace,omitempty"`   // inline trace document in Format
	WindowS float64 `json:"window_s,omitempty"`
}

// ListModelsResponse is the body of GET /v1/models.
type ListModelsResponse struct {
	Models []ModelInfo `json:"models"`
}

// Options carries the per-request planning constraints; zero fields
// keep the Planner defaults (documented on the gridstrat options).
type Options struct {
	MaxParallel    float64 `json:"max_parallel,omitempty"`
	DeadlineS      float64 `json:"deadline_s,omitempty"`
	Budget         float64 `json:"budget,omitempty"`
	Workers        int     `json:"workers,omitempty"`
	CollectionSize int     `json:"collection_size,omitempty"`
	Seed           *uint64 `json:"seed,omitempty"`
}

// plannerOptions converts wire options to gridstrat options. Invalid
// values are rejected by the option constructors at NewPlanner time,
// which the handlers map to 400.
func (o *Options) plannerOptions(maxWorkers int) []gridstrat.PlannerOption {
	if o == nil {
		return nil
	}
	var opts []gridstrat.PlannerOption
	if o.MaxParallel != 0 {
		opts = append(opts, gridstrat.WithMaxParallel(o.MaxParallel))
	}
	if o.DeadlineS != 0 {
		opts = append(opts, gridstrat.WithDeadline(o.DeadlineS))
	}
	if o.Budget != 0 {
		opts = append(opts, gridstrat.WithBudget(o.Budget))
	}
	if o.Workers != 0 {
		w := o.Workers
		if w > maxWorkers {
			w = maxWorkers
		}
		opts = append(opts, gridstrat.WithParallelism(w))
	}
	if o.CollectionSize != 0 {
		opts = append(opts, gridstrat.WithCollectionSize(o.CollectionSize))
	}
	if o.Seed != nil {
		opts = append(opts, gridstrat.WithSeed(*o.Seed))
	}
	return opts
}

// StrategySpec is the wire form of a (possibly partially
// parameterized) strategy. Zero timing fields (t_inf_s, t0_s) mean
// "unset" — the same convention as the library's zero-value
// strategies, so a spec without them passed to optimize is tuned and
// a parameterized spec passed to rank is evaluated exactly as given.
// The collection size b is never tuned: an omitted b on a multiple
// spec defaults to 2 (mirroring the Planner's default collection
// size), as documented in docs/openapi.yaml.
type StrategySpec struct {
	Strategy string  `json:"strategy"` // "single", "multiple" or "delayed"
	B        int     `json:"b,omitempty"`
	TInfS    float64 `json:"t_inf_s,omitempty"`
	T0S      float64 `json:"t0_s,omitempty"`
}

// toStrategy converts the spec to a library Strategy value.
func (sp StrategySpec) toStrategy() (gridstrat.Strategy, error) {
	switch strings.ToLower(sp.Strategy) {
	case "single":
		return gridstrat.Single{TInf: sp.TInfS}, nil
	case "multiple":
		b := sp.B
		if b == 0 {
			b = 2
		}
		return gridstrat.Multiple{B: b, TInf: sp.TInfS}, nil
	case "delayed":
		return gridstrat.Delayed{T0: sp.T0S, TInf: sp.TInfS}, nil
	case "":
		return nil, fmt.Errorf("missing strategy name (want single, multiple or delayed)")
	default:
		return nil, fmt.Errorf("unknown strategy %q (want single, multiple or delayed)", sp.Strategy)
	}
}

// specOf converts a library Strategy back to its wire form.
func specOf(s gridstrat.Strategy) StrategySpec {
	p := s.Params()
	return StrategySpec{
		Strategy: string(s.Name()),
		B:        p.B,
		TInfS:    p.TInf,
		T0S:      p.T0,
	}
}

// EvaluationJSON is the wire form of a strategy evaluation.
type EvaluationJSON struct {
	EJS      float64 `json:"ej_s"`
	SigmaS   float64 `json:"sigma_s"`
	Parallel float64 `json:"parallel"`
}

func evalToJSON(ev gridstrat.Evaluation) EvaluationJSON {
	return EvaluationJSON{EJS: ev.EJ, SigmaS: ev.Sigma, Parallel: ev.Parallel}
}

// RecommendationJSON is the wire form of an advisor outcome.
type RecommendationJSON struct {
	StrategySpec
	Eval      EvaluationJSON `json:"eval"`
	DeltaCost float64        `json:"delta_cost"`
	Summary   string         `json:"summary"`
}

func recToJSON(rec gridstrat.Recommendation) RecommendationJSON {
	return RecommendationJSON{
		StrategySpec: specOf(rec.AsStrategy()),
		Eval:         evalToJSON(rec.Eval),
		DeltaCost:    rec.Delta,
		Summary:      rec.String(),
	}
}

// RecommendRequest is the body of POST /v1/models/{id}/recommend.
// The body may be empty; Cheapest switches from the fastest-in-budget
// advisor to the Δcost minimizer.
type RecommendRequest struct {
	Options  *Options `json:"options,omitempty"`
	Cheapest bool     `json:"cheapest,omitempty"`
}

// RecommendResponse is the advisor's answer, stamped with the model
// version it was computed on.
type RecommendResponse struct {
	Model          string             `json:"model"`
	Version        int64              `json:"version"`
	Recommendation RecommendationJSON `json:"recommendation"`
	Degraded       bool               `json:"degraded,omitempty"`
	DegradedReason string             `json:"degraded_reason,omitempty"`
}

// RankedJSON is one entry of a ranking.
type RankedJSON struct {
	StrategySpec
	Eval      EvaluationJSON `json:"eval"`
	DeltaCost float64        `json:"delta_cost"`
}

// RankRequest is the body of POST /v1/models/{id}/rank. With no
// strategies the three paper families are ranked with the Planner's
// collection size.
type RankRequest struct {
	Options    *Options       `json:"options,omitempty"`
	Strategies []StrategySpec `json:"strategies,omitempty"`
}

// RankResponse lists strategies by ascending expected latency.
type RankResponse struct {
	Model          string       `json:"model"`
	Version        int64        `json:"version"`
	Ranking        []RankedJSON `json:"ranking"`
	Degraded       bool         `json:"degraded,omitempty"`
	DegradedReason string       `json:"degraded_reason,omitempty"`
}

// OptimizeRequest is the body of POST /v1/models/{id}/optimize.
type OptimizeRequest struct {
	Strategy StrategySpec `json:"strategy"`
	Options  *Options     `json:"options,omitempty"`
}

// OptimizeResponse carries the tuned strategy and its evaluation.
type OptimizeResponse struct {
	Model          string         `json:"model"`
	Version        int64          `json:"version"`
	Strategy       StrategySpec   `json:"strategy"`
	Eval           EvaluationJSON `json:"eval"`
	Degraded       bool           `json:"degraded,omitempty"`
	DegradedReason string         `json:"degraded_reason,omitempty"`
}

// SimResultJSON is the wire form of a Monte Carlo outcome.
type SimResultJSON struct {
	Runs            int     `json:"runs"`
	EJS             float64 `json:"ej_s"`
	SigmaS          float64 `json:"sigma_s"`
	StdErrS         float64 `json:"std_err_s"`
	MeanSubmissions float64 `json:"mean_submissions"`
	MeanParallel    float64 `json:"mean_parallel"`
}

// SimulateRequest is the body of POST /v1/models/{id}/simulate. The
// strategy must be fully parameterized; Seed in Options makes the
// replay reproducible.
type SimulateRequest struct {
	Strategy StrategySpec `json:"strategy"`
	Runs     int          `json:"runs"`
	Options  *Options     `json:"options,omitempty"`
}

// SimulateResponse carries the Monte Carlo result and the seed it ran
// under — the request's seed when given, a freshly drawn one
// otherwise, so any replay can be reproduced by sending the echoed
// seed back.
type SimulateResponse struct {
	Model          string        `json:"model"`
	Version        int64         `json:"version"`
	Seed           uint64        `json:"seed"`
	Result         SimResultJSON `json:"result"`
	Degraded       bool          `json:"degraded,omitempty"`
	DegradedReason string        `json:"degraded_reason,omitempty"`
}

// ApplicationJSON is the wire form of a bag-of-tasks application.
type ApplicationJSON struct {
	Tasks     int     `json:"tasks"`
	WaveWidth int     `json:"wave_width"`
	RuntimeS  float64 `json:"runtime_s"`
}

// MakespanJSON is the wire form of a makespan estimate.
type MakespanJSON struct {
	Strategy     string  `json:"strategy"`
	MakespanS    float64 `json:"makespan_s"`
	PerWaveS     float64 `json:"per_wave_s"`
	GridLoad     float64 `json:"grid_load"`
	TotalTaskSec float64 `json:"total_task_sec"`
}

// MakespanRequest is the body of POST /v1/models/{id}/makespan. With
// a Strategy the estimate is computed under it; with MaxB (and a
// deadline in Options) the smallest collection size meeting the
// deadline is searched; with neither, the recommended strategy is
// used.
type MakespanRequest struct {
	App      ApplicationJSON `json:"app"`
	Strategy *StrategySpec   `json:"strategy,omitempty"`
	MaxB     int             `json:"max_b,omitempty"`
	Options  *Options        `json:"options,omitempty"`
}

// MakespanResponse carries the estimate (and, for smallest-collection
// searches, the chosen b; a search where no b up to MaxB meets the
// deadline answers 422, so a 200 always carries a real estimate).
type MakespanResponse struct {
	Model          string       `json:"model"`
	Version        int64        `json:"version"`
	Estimate       MakespanJSON `json:"estimate"`
	B              int          `json:"b,omitempty"`
	Degraded       bool         `json:"degraded,omitempty"`
	DegradedReason string       `json:"degraded_reason,omitempty"`
}

// ObserveRequest is the body of POST /v1/models/{id}/observations:
// one batch of fresh probe outcomes. Latencies lists completed-probe
// grid latencies; Outliers counts probes that exceeded the model's
// timeout (censored at it). Submit times are assigned sequentially
// from StartS (default: right after the current newest record) with
// SpacingS between consecutive probes (default 1 s). On a server
// running with a rebuild interval (-rebuild-interval), Sync forces
// the coalesced rebuild before the response, so the reported state
// reflects this batch; it is a no-op on a synchronous server.
type ObserveRequest struct {
	Latencies []float64 `json:"latencies"`
	Outliers  int       `json:"outliers,omitempty"`
	StartS    *float64  `json:"start_s,omitempty"`
	SpacingS  float64   `json:"spacing_s,omitempty"`
	Sync      bool      `json:"sync,omitempty"`
}

// ObserveResponse reports the effect of one ingestion batch on the
// rolling window. On a synchronous server (and for sync requests)
// Version, WindowRecords and Stats describe the state this batch
// produced and Pending is 0; on an async server they describe the
// latest built snapshot, and Pending counts the acknowledged records
// (this batch included) still queued for the next coalesced rebuild.
// Dropped counts the records evicted by the rebuild that produced
// the reported state (0 for queued acks). A sync request whose drain
// left the window unable to support a model still answers 200 — the
// records were acknowledged; the unchanged version and the
// rebuild_failures counter report the failed swap.
type ObserveResponse struct {
	Model         string         `json:"model"`
	Version       int64          `json:"version"`
	Appended      int            `json:"appended"`
	Dropped       int            `json:"dropped"`
	Pending       int            `json:"pending"`
	WindowRecords int            `json:"window_records"`
	Stats         TraceStatsJSON `json:"stats"`
}

// HealthResponse is the body of GET /healthz and GET /v1/healthz. WAL
// reports the durability state: "disabled" (memory-only), "recovering"
// (boot replay in flight; model routes answer 503) or "ready".
type HealthResponse struct {
	Status  string  `json:"status"`
	Version string  `json:"version"`
	Models  int     `json:"models"`
	UptimeS float64 `json:"uptime_s"`
	WAL     string  `json:"wal"`
}

// StatsResponse is the body of GET /v1/stats. Resilience and Batch
// are server-wide (the admission gate is one front door, not
// per-shard).
type StatsResponse struct {
	UptimeS    float64         `json:"uptime_s"`
	Models     int             `json:"models"`
	Capacity   int             `json:"capacity"`
	Shards     []ShardStats    `json:"shards"`
	Totals     ShardStats      `json:"totals"`
	Resilience ResilienceStats `json:"resilience"`
	Batch      BatchStats      `json:"batch"`
}

// BatchItem is one operation of a POST /v1/batch/plan request: a
// model, an op ∈ {recommend, rank, optimize} and that op's
// parameters. Cheapest applies to recommend, Strategies to rank,
// Strategy to optimize; fields for other ops are rejected per item.
type BatchItem struct {
	Model      string         `json:"model"`
	Op         string         `json:"op"`
	Options    *Options       `json:"options,omitempty"`
	Cheapest   bool           `json:"cheapest,omitempty"`
	Strategies []StrategySpec `json:"strategies,omitempty"`
	Strategy   *StrategySpec  `json:"strategy,omitempty"`
}

// BatchPlanRequest is the body of POST /v1/batch/plan.
type BatchPlanRequest struct {
	Items []BatchItem `json:"items"`
}

// BatchItemResult is the per-item envelope of a batch response:
// exactly one of Recommend/Rank/Optimize/Error is set, positionally
// matching the request item. A shed tail (partial admission) carries
// Error{code: "shed"} items; any other per-item failure is isolated
// to its envelope so one bad item never fails the batch.
type BatchItemResult struct {
	Recommend *RecommendResponse `json:"recommend,omitempty"`
	Rank      *RankResponse      `json:"rank,omitempty"`
	Optimize  *OptimizeResponse  `json:"optimize,omitempty"`
	Error     *BatchItemError    `json:"error,omitempty"`
}

// BatchItemError is the per-item error envelope: the same code/message
// vocabulary as top-level errors, plus the HTTP status the item would
// have answered as a single request.
type BatchItemError struct {
	Status  int    `json:"status"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// BatchPlanResponse answers POST /v1/batch/plan. Admitted counts the
// items executed; Shed counts the tail refused by partial admission
// (those results carry Error{code: "shed"} and the response carries a
// Retry-After header).
type BatchPlanResponse struct {
	Results  []BatchItemResult `json:"results"`
	Admitted int               `json:"admitted"`
	Shed     int               `json:"shed,omitempty"`
}
