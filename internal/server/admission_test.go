package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"gridstrat/internal/chaos"
)

// Admission-control tests: SLO-class shedding, deadline propagation
// and degraded-mode serving. Chaos latency injection sits inside the
// admission gate, so an injected delay holds its slot exactly like a
// genuinely slow computation — the tests use that to fill the gate
// deterministically.

// classGet issues one GET with an explicit SLO class (empty = none)
// and returns the response; the body is decoded into the error
// envelope when non-2xx.
func classGet(t *testing.T, hc *http.Client, url, class string) (*http.Response, ErrorEnvelope) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if class != "" {
		req.Header.Set(ClassHeader, class)
	}
	resp, err := hc.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var env ErrorEnvelope
	if resp.StatusCode >= 300 {
		_ = json.NewDecoder(resp.Body).Decode(&env)
	}
	return resp, env
}

// TestAdmissionShedByClass fills a MaxInflight=2 gate with two slow
// critical requests (chaos latency holds their slots), then verifies
// each class is shed at its own ceiling: sheddable and standard past
// their fractional limits, critical only at the hard cap — all with
// 429 + Retry-After — and that the per-class counters land in
// /v1/stats.
func TestAdmissionShedByClass(t *testing.T) {
	// The first two GETs on the model are delayed 400ms inside the
	// admission gate; every later request passes untouched.
	sc := chaos.Scenario{Seed: 1, Rules: []chaos.Rule{{
		Name: "hold", PathPrefix: "/v1/models/hold-", Method: http.MethodGet,
		Fault: chaos.FaultLatency, Latency: 400 * time.Millisecond, At: []int{1, 2},
	}}}
	s, hs, c := newTestServerCfg(t, Config{MaxInflight: 2, Chaos: &sc})
	ctx := context.Background()
	if _, err := c.CreateModel(ctx, CreateModelRequest{ID: "hold-m", Dataset: "2006-IX"}); err != nil {
		t.Fatalf("create: %v", err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := classGet(t, hs.Client(), hs.URL+"/v1/models/hold-m", "critical")
			if resp.StatusCode != http.StatusOK {
				t.Errorf("holder request: want 200, got %d", resp.StatusCode)
			}
		}()
	}
	// Wait until both holders occupy their admission slots.
	deadline := time.Now().Add(2 * time.Second)
	for s.adm.inflight.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("holders never filled the gate")
		}
		time.Sleep(time.Millisecond)
	}

	// With 2 in flight against a cap of 2: sheddable (limit 1) and
	// standard (limit 1) shed, and critical sheds too — the hard cap
	// is full.
	for _, tc := range []struct{ class string }{
		{"sheddable"}, {"standard"}, {"critical"},
	} {
		resp, env := classGet(t, hs.Client(), hs.URL+"/v1/models/hold-m", tc.class)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s over the gate: want 429, got %d", tc.class, resp.StatusCode)
		}
		if got := resp.Header.Get("Retry-After"); got != "1" {
			t.Fatalf("%s shed Retry-After: want %q, got %q", tc.class, "1", got)
		}
		if env.Error.Code != "shed" {
			t.Fatalf("%s shed code: want shed, got %q", tc.class, env.Error.Code)
		}
	}

	wg.Wait()
	// The gate drained: a critical request passes again (case folding
	// on the header value included).
	resp, _ := classGet(t, hs.Client(), hs.URL+"/v1/models/hold-m", "Critical")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after drain: want 200, got %d", resp.StatusCode)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	res := stats.Resilience
	if res.ShedSheddable != 1 || res.ShedStandard != 1 || res.ShedCritical != 1 {
		t.Fatalf("shed counters: want 1/1/1, got critical=%d standard=%d sheddable=%d",
			res.ShedCritical, res.ShedStandard, res.ShedSheddable)
	}
	// create + 2 holders + the drain probe were admitted.
	if res.AdmittedTotal < 4 {
		t.Fatalf("admitted_total: want >= 4, got %d", res.AdmittedTotal)
	}
}

// TestAdmissionRejectsBadHeaders: unknown classes and malformed
// deadlines are caller bugs, answered 400 — not silently defaulted.
func TestAdmissionRejectsBadHeaders(t *testing.T) {
	_, hs, _ := newTestServerCfg(t, Config{MaxInflight: 4})

	get := func(class, deadline string) (*http.Response, ErrorEnvelope) {
		req, _ := http.NewRequest(http.MethodGet, hs.URL+"/v1/models", nil)
		if class != "" {
			req.Header.Set(ClassHeader, class)
		}
		if deadline != "" {
			req.Header.Set(DeadlineHeader, deadline)
		}
		resp, err := hs.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env ErrorEnvelope
		_ = json.NewDecoder(resp.Body).Decode(&env)
		return resp, env
	}

	for _, tc := range []struct{ class, deadline string }{
		{"bogus", ""},
		{"", "abc"},
		{"", "-5"},
		{"", "0"},
		{"", "99999999999999"}, // past the 24h ceiling
	} {
		resp, env := get(tc.class, tc.deadline)
		if resp.StatusCode != http.StatusBadRequest || env.Error.Code != "bad_request" {
			t.Fatalf("class=%q deadline=%q: want 400 bad_request, got %d %q",
				tc.class, tc.deadline, resp.StatusCode, env.Error.Code)
		}
	}
	if resp, _ := get("sheddable", "5000"); resp.StatusCode != http.StatusOK {
		t.Fatalf("valid class+deadline: want 200, got %d", resp.StatusCode)
	}
}

// TestDeadlineHeaderAborts504: a deadline far under the work's cost
// turns into a context deadline, and the abandoned computation
// answers 504 deadline_exceeded.
func TestDeadlineHeaderAborts504(t *testing.T) {
	_, hs, c := newTestServerCfg(t, Config{})
	ctx := context.Background()
	if _, err := c.CreateModel(ctx, CreateModelRequest{ID: "m", Dataset: "2006-IX"}); err != nil {
		t.Fatalf("create: %v", err)
	}

	body, _ := json.Marshal(SimulateRequest{
		Strategy: StrategySpec{Strategy: "single", TInfS: 900},
		Runs:     2_000_000,
	})
	req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/models/m/simulate",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(DeadlineHeader, "20")
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	defer resp.Body.Close()
	var env ErrorEnvelope
	_ = json.NewDecoder(resp.Body).Decode(&env)
	if resp.StatusCode != http.StatusGatewayTimeout || env.Error.Code != "deadline_exceeded" {
		t.Fatalf("want 504 deadline_exceeded, got %d %q", resp.StatusCode, env.Error.Code)
	}
}

// TestDegradedRecovering: while the boot WAL replay is in flight,
// model-scoped queries restore their model on demand and answer
// degraded ("recovering") instead of 503; registry-wide routes still
// refuse. After Recover the same query is clean.
func TestDegradedRecovering(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{WALDir: dir, WALSync: "none"}
	s1 := recoverServer(t, cfg)
	if _, err := s1.Registry().Put("m", "test", 4000, synthTrace("m", 60, 3, 1)); err != nil {
		t.Fatalf("Put: %v", err)
	}

	// "Crash" s1; boot a replacement but do NOT run its replay.
	s2, hs, c := newTestServerCfg(t, cfg)
	ctx := context.Background()
	if !s2.Recovering() {
		t.Fatal("WAL-backed server should boot recovering")
	}
	if _, err := c.ListModels(ctx); err == nil {
		t.Fatal("list should 503 while recovering")
	}
	info, err := c.GetModel(ctx, "m", 0)
	if err != nil {
		t.Fatalf("model-scoped GET while recovering: %v", err)
	}
	if !info.Degraded || info.DegradedReason != "recovering" {
		t.Fatalf("want degraded recovering, got degraded=%v reason=%q",
			info.Degraded, info.DegradedReason)
	}
	// An absent model is a real 404 even mid-replay: the durable store
	// is consulted directly.
	if _, err := c.GetModel(ctx, "nope", 0); err == nil {
		t.Fatal("absent model should 404 mid-replay")
	}

	if err := s2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	info, err = c.GetModel(ctx, "m", 0)
	if err != nil {
		t.Fatalf("GET after recover: %v", err)
	}
	if info.Degraded {
		t.Fatalf("recovered server should serve clean, got reason %q", info.DegradedReason)
	}
	_ = hs

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Resilience.DegradedResponses == 0 {
		t.Fatal("degraded_responses counter should have advanced")
	}
}

// TestDegradedBacklog: acknowledged records queued past the staleness
// threshold mark query answers degraded ("backlog"); a sync drain
// clears the flag.
func TestDegradedBacklog(t *testing.T) {
	_, _, c := newTestServerCfg(t, Config{RebuildInterval: time.Hour, DegradedPending: 1})
	ctx := context.Background()
	if _, err := c.CreateModel(ctx, CreateModelRequest{ID: "m", Dataset: "2006-IX"}); err != nil {
		t.Fatalf("create: %v", err)
	}

	obs, err := c.Observe(ctx, "m", ObserveRequest{Latencies: []float64{100, 200, 300}})
	if err != nil {
		t.Fatalf("observe: %v", err)
	}
	if obs.Pending == 0 {
		t.Fatal("async ack should leave a queue")
	}
	info, err := c.GetModel(ctx, "m", 0)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if !info.Degraded || info.DegradedReason != "backlog" {
		t.Fatalf("want degraded backlog, got degraded=%v reason=%q",
			info.Degraded, info.DegradedReason)
	}

	if _, err := c.Observe(ctx, "m", ObserveRequest{Latencies: []float64{150}, Sync: true}); err != nil {
		t.Fatalf("sync observe: %v", err)
	}
	info, err = c.GetModel(ctx, "m", 0)
	if err != nil {
		t.Fatalf("get after drain: %v", err)
	}
	if info.Degraded {
		t.Fatalf("drained entry should serve clean, got reason %q", info.DegradedReason)
	}
}

// TestDegradedMemoryPressure: a pressure-demoted model answers with
// its sketch and says so; a model that is sketch-tier by policy is
// serving its normal representation and is not degraded.
func TestDegradedMemoryPressure(t *testing.T) {
	if os.Getenv("GRIDSTRAT_SKETCH_TIER") == "1" {
		t.Skip("forced sketch tier makes every model policy-sketched")
	}
	s, _, c := newTestServer(t)
	ctx := context.Background()
	if _, err := c.CreateModel(ctx, CreateModelRequest{ID: "m", Dataset: "2006-IX"}); err != nil {
		t.Fatalf("create: %v", err)
	}
	e, err := s.Registry().Get("m")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !e.demote() {
		t.Fatal("demote returned false")
	}
	info, err := c.GetModel(ctx, "m", 0)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if info.Tier != "sketch" {
		t.Fatalf("demoted tier: want sketch, got %q", info.Tier)
	}
	if !info.Degraded || info.DegradedReason != "memory_pressure" {
		t.Fatalf("want degraded memory_pressure, got degraded=%v reason=%q",
			info.Degraded, info.DegradedReason)
	}

	// Policy-sketched models are not degraded: the sketch is their
	// normal representation, not a pressure fallback.
	_, _, cp := newTestServerCfg(t, Config{SketchTier: true})
	if _, err := cp.CreateModel(ctx, CreateModelRequest{ID: "p", Dataset: "2006-IX"}); err != nil {
		t.Fatalf("create policy-sketch: %v", err)
	}
	pinfo, err := cp.GetModel(ctx, "p", 0)
	if err != nil {
		t.Fatalf("get policy-sketch: %v", err)
	}
	if pinfo.Tier != "sketch" || pinfo.Degraded {
		t.Fatalf("policy sketch: want clean sketch, got tier=%q degraded=%v reason=%q",
			pinfo.Tier, pinfo.Degraded, pinfo.DegradedReason)
	}
}

// TestClientRetryHonorsRetryAfterAndBudget: the client surfaces the
// Retry-After hint on a shed response, retries idempotent GETs on
// 429, and gives up retrying once its wall-clock budget would be
// overrun.
func TestClientRetryHonorsRetryAfterAndBudget(t *testing.T) {
	// A stub that sheds the first GET with Retry-After: 1 and serves
	// the second.
	var calls int
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls == 1 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write([]byte(`{"error":{"code":"shed","message":"full"}}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok","version":"t","models":0,"uptime_s":1,"wal":"disabled"}`))
	}))
	defer stub.Close()

	// Budget 100ms < the 1s Retry-After ask: the retry must NOT be
	// attempted, and the 429 surfaces with its hint parsed.
	c := NewClient(stub.URL, stub.Client()).WithRetry(RetryPolicy{
		MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, Budget: 100 * time.Millisecond,
	})
	_, err := c.Health(context.Background())
	var apiErr *APIError
	if err == nil || !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("want 429, got %d", apiErr.Status)
	}
	if apiErr.RetryAfter != time.Second {
		t.Fatalf("RetryAfter: want 1s, got %v", apiErr.RetryAfter)
	}
	if calls != 1 {
		t.Fatalf("budget-bound client should not have retried; %d calls", calls)
	}

	// With budget to spare the client sleeps the server's ask and the
	// retry succeeds.
	calls = 0
	c = NewClient(stub.URL, stub.Client()).WithRetry(RetryPolicy{
		MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, Budget: 5 * time.Second,
	})
	start := time.Now()
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("retried GET: %v", err)
	}
	if calls != 2 {
		t.Fatalf("want 2 calls, got %d", calls)
	}
	if waited := time.Since(start); waited < time.Second {
		t.Fatalf("client ignored the Retry-After ask; waited only %v", waited)
	}
}
