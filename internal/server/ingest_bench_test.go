package server

// Ingest-throughput benchmarks and the PR 5 perf-trajectory snapshot.
//
// BenchmarkObserveBatch drives steady-state observation batches (every
// batch evicts about as many records as it appends) through the two
// write paths at W ∈ {1e4, 1e5} window records:
//
//	full        — the pre-incremental pipeline: copy all W records,
//	              validate, re-scan the window, re-sort the ECDF,
//	              re-sort the summary stats (legacyEntry replica)
//	incremental — the rolling-buffer + merge-ECDF + prewarm pipeline
//
// TestBenchSnapshotIngest times the same workloads plus the post-swap
// first-query pair and writes BENCH_PR5.json (same schema as the PR 2
// and PR 3 snapshots: `sequential_ns` = old path, `parallel_ns` = new
// path). Gate and output override:
//
//	GRIDSTRAT_BENCH_SNAPSHOT=1 GRIDSTRAT_BENCH_OUT=$PWD/BENCH_PR5.json \
//	  go test -run TestBenchSnapshotIngest -v ./internal/server/
//
// CI runs it on every push and uploads the JSON as a build artifact.

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"gridstrat/internal/trace"
)

// benchSeedTrace builds a window of exactly w completed records at 1 s
// spacing (latencies jittered over a wide support so the ECDF stays
// realistic), with the window width chosen so steady-state batches
// evict about as many records as they append.
func benchSeedTrace(w int) (*trace.Trace, float64) {
	rng := rand.New(rand.NewSource(271))
	tr := &trace.Trace{Name: "bench", Timeout: trace.DefaultTimeout}
	for i := 0; i < w; i++ {
		tr.Records = append(tr.Records, trace.ProbeRecord{
			ID: i, Submit: float64(i), Latency: 50 + 900*rng.Float64(), Status: trace.StatusCompleted,
		})
	}
	return tr, float64(w)
}

// benchBatch builds one k-record observation batch.
func benchBatch(rng *rand.Rand, k int) []trace.ProbeRecord {
	recs := make([]trace.ProbeRecord, k)
	for i := range recs {
		recs[i] = trace.ProbeRecord{Latency: 50 + 900*rng.Float64(), Status: trace.StatusCompleted}
	}
	return recs
}

const benchBatchSize = 100

func benchmarkObserveFull(b *testing.B, w int) {
	tr, width := benchSeedTrace(w)
	l, err := newLegacyEntry(tr, width)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.observe(benchBatch(rng, benchBatchSize), nil, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchBatchSize), "records/op")
}

func benchmarkObserveIncremental(b *testing.B, w int) {
	tr, width := benchSeedTrace(w)
	e, err := newEntry("bench", "test", width, tr, 0, 0, false)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Observe(benchBatch(rng, benchBatchSize), nil, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchBatchSize), "records/op")
}

func BenchmarkObserveBatch(b *testing.B) {
	for _, w := range []int{10_000, 100_000} {
		name := "W=1e4"
		if w == 100_000 {
			name = "W=1e5"
		}
		b.Run(name+"/full", func(b *testing.B) { benchmarkObserveFull(b, w) })
		b.Run(name+"/incremental", func(b *testing.B) { benchmarkObserveIncremental(b, w) })
	}
}

// --- PR 5 perf-trajectory snapshot ---

type ingestSnapshot struct {
	Schema     string            `json:"schema"`
	PR         int               `json:"pr"`
	Generated  string            `json:"generated"`
	GoVersion  string            `json:"go"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	NumCPU     int               `json:"num_cpu"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Benchmarks []ingestSnapEntry `json:"benchmarks"`
}

type ingestSnapEntry struct {
	Name         string  `json:"name"`
	SequentialNS int64   `json:"sequential_ns"` // pre-incremental path
	ParallelNS   int64   `json:"parallel_ns"`   // incremental path
	Speedup      float64 `json:"speedup"`
}

// snapTime returns the best-of-reps wall time of f.
func snapTime(t *testing.T, reps int, f func() error) int64 {
	t.Helper()
	best := int64(0)
	for r := 0; r < reps; r++ {
		start := time.Now()
		if err := f(); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start).Nanoseconds(); best == 0 || d < best {
			best = d
		}
	}
	return best
}

func TestBenchSnapshotIngest(t *testing.T) {
	if os.Getenv("GRIDSTRAT_BENCH_SNAPSHOT") == "" {
		t.Skip("set GRIDSTRAT_BENCH_SNAPSHOT=1 to record the ingest perf snapshot (writes BENCH_PR5.json)")
	}
	out := os.Getenv("GRIDSTRAT_BENCH_OUT")
	if out == "" {
		out = "BENCH_PR5.json"
	}
	snap := ingestSnapshot{
		Schema:     "gridstrat-bench-snapshot/v1",
		PR:         5,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	record := func(name string, oldNS, newNS int64) {
		snap.Benchmarks = append(snap.Benchmarks, ingestSnapEntry{
			Name:         name,
			SequentialNS: oldNS,
			ParallelNS:   newNS,
			Speedup:      float64(oldNS) / float64(newNS),
		})
		t.Logf("%s: full-rebuild %v, incremental %v (%.2fx)",
			name, time.Duration(oldNS), time.Duration(newNS), float64(oldNS)/float64(newNS))
	}

	// Ingest throughput: a fixed run of steady-state batches through
	// both write paths. Each timed run gets fresh entries (identical
	// batch streams via identical seeds) so neither path benefits from
	// the other's state.
	for _, cfg := range []struct {
		name    string
		w       int
		batches int
	}{
		{"IngestObserveBatchW1e4", 10_000, 50},
		{"IngestObserveBatchW1e5", 100_000, 20},
	} {
		fullNS := snapTime(t, 3, func() error {
			tr, width := benchSeedTrace(cfg.w)
			l, err := newLegacyEntry(tr, width)
			if err != nil {
				return err
			}
			rng := rand.New(rand.NewSource(9))
			for i := 0; i < cfg.batches; i++ {
				if _, err := l.observe(benchBatch(rng, benchBatchSize), nil, 1); err != nil {
					return err
				}
			}
			return nil
		})
		incrNS := snapTime(t, 3, func() error {
			tr, width := benchSeedTrace(cfg.w)
			e, err := newEntry("bench", "test", width, tr, 0, 0, false)
			if err != nil {
				return err
			}
			rng := rand.New(rand.NewSource(9))
			for i := 0; i < cfg.batches; i++ {
				if _, err := e.Observe(benchBatch(rng, benchBatchSize), nil, 1); err != nil {
					return err
				}
			}
			return nil
		})
		record(cfg.name, fullNS, incrNS)
	}

	// Post-swap first-query latency: the cold-cache penalty the warm
	// handoff eliminates. All three measurements query the same
	// integrand on the same window size; only the cache state differs.
	tr, width := benchSeedTrace(100_000)
	e, err := newEntry("warm", "test", width, tr, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	st := e.State()
	s := 1 - st.Model.Rho()
	st.ecdf.IntegralOneMinusFPow(600, s, 5) // build the kernel once
	// Warm pre-swap reference: a single-shot first query at a fresh T
	// on the already-built table — the same measurement shape as the
	// post-swap probes below, so all three numbers are comparable.
	warmNS := snapTime(t, 1, func() error {
		st.ecdf.IntegralOneMinusFPow(601, s, 5)
		return nil
	})
	// Swap via one observation batch; the rebuild prewarms the new
	// epoch from the old one's table manifest.
	rng := rand.New(rand.NewSource(5))
	res, err := e.Observe(benchBatch(rng, benchBatchSize), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	prewarmedNS := snapTime(t, 1, func() error {
		res.State.ecdf.IntegralOneMinusFPow(602, s, 5)
		return nil
	})
	// Cold baseline: the same post-swap window without the handoff
	// pays the O(n) table build on its first query.
	cold, err := res.State.Trace.ECDF()
	if err != nil {
		t.Fatal(err)
	}
	coldNS := snapTime(t, 1, func() error {
		cold.IntegralOneMinusFPow(602, s, 5)
		return nil
	})
	record("PostSwapFirstQueryB5", coldNS, prewarmedNS)
	t.Logf("PostSwapFirstQueryB5: warm pre-swap reference %v (prewarmed post-swap %v)",
		time.Duration(warmNS), time.Duration(prewarmedNS))
	// Acceptance: the prewarmed first query must not repay the table
	// build — it has to land at warm-query latency, far under the cold
	// build. Allow generous jitter headroom on the µs-scale warm pair.
	if prewarmedNS > coldNS/10 {
		t.Fatalf("post-swap first query %v did not eliminate the cold build (cold %v)",
			time.Duration(prewarmedNS), time.Duration(coldNS))
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d CPUs, GOMAXPROCS %d)", out, snap.NumCPU, snap.GOMAXPROCS)
}
