package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flaky5xx answers 503 for the first n requests, then delegates.
func flaky5xx(n int64, next http.Handler) (http.Handler, *atomic.Int64) {
	var calls atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= n {
			writeError(w, http.StatusServiceUnavailable, "recovering", "warming up")
			return
		}
		next.ServeHTTP(w, r)
	}), &calls
}

func TestClientRetriesIdempotentGets(t *testing.T) {
	s := MustNew(Config{})
	h, calls := flaky5xx(2, s.Handler())
	hs := httptest.NewServer(h)
	defer hs.Close()

	c := NewClient(hs.URL, hs.Client()).WithRetry(RetryPolicy{
		MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond,
	})
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("health should succeed on the third attempt: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("want 3 attempts, got %d", got)
	}
}

func TestClientDoesNotRetryWrites(t *testing.T) {
	s := MustNew(Config{})
	h, calls := flaky5xx(1, s.Handler())
	hs := httptest.NewServer(h)
	defer hs.Close()

	c := NewClient(hs.URL, hs.Client()).WithRetry(RetryPolicy{
		MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond,
	})
	_, err := c.CreateModel(context.Background(), CreateModelRequest{ID: "m", Dataset: "2006-IX"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("write should fail without retry, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("want exactly 1 attempt for a POST, got %d", got)
	}
}

func TestClientDoesNotRetry4xx(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusNotFound, "not_found", "nope")
	}))
	defer hs.Close()

	c := NewClient(hs.URL, nil).WithRetry(RetryPolicy{
		MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
	})
	if _, err := c.GetModel(context.Background(), "missing", 0); err == nil {
		t.Fatal("expected a 404 error")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("4xx must not retry: %d attempts", got)
	}
}

func TestClientRetryRidesOutRestart(t *testing.T) {
	// A connection-refused gap: grab a port, close it (connections now
	// refused), and bring a real server up on it mid-retry.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c := NewClient("http://"+addr, nil).WithRetry(RetryPolicy{
		MaxAttempts: 20, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond,
	})
	s := MustNew(Config{})
	hs := &http.Server{Handler: s.Handler()}
	defer hs.Close()
	go func() {
		time.Sleep(50 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			return // port raced away; the request will fail and report
		}
		_ = hs.Serve(ln2)
	}()
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("health should ride out the restart gap: %v", err)
	}
}

func TestClientZeroPolicyNeverRetries(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusServiceUnavailable, "recovering", "warming up")
	}))
	defer hs.Close()
	c := NewClient(hs.URL, nil) // no WithRetry
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("expected failure")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("plain client must not retry: %d attempts", got)
	}
}
