package server

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"gridstrat"
	"gridstrat/internal/stats"
	"gridstrat/internal/trace"
)

// Durability tests: the kill-and-recover contract of the WAL-backed
// registry. "Crash" here means abandoning a Server without closing its
// logs — every acknowledged batch was already written (the fsync
// policy only defers durability against machine crashes, not process
// ones), so a fresh Server over the same directory must replay to the
// exact pre-crash state. The CI smoke test covers the real-SIGKILL
// variant of the same story.

// synthTrace builds a deterministic seed trace: n completed probes
// with latencies in (0, 600), spaced 10 s apart, plus outliers.
func synthTrace(name string, n, outliers int, seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{Name: name, Timeout: trace.DefaultTimeout}
	for i := 0; i < n; i++ {
		tr.Records = append(tr.Records, trace.ProbeRecord{
			ID:      i,
			Submit:  float64(i) * 10,
			Latency: 1 + 599*rng.Float64(),
			Status:  trace.StatusCompleted,
		})
	}
	for i := 0; i < outliers; i++ {
		tr.Records = append(tr.Records, trace.ProbeRecord{
			ID:      n + i,
			Submit:  float64(n+i) * 10,
			Latency: tr.Timeout,
			Status:  trace.StatusOutlier,
		})
	}
	return tr
}

// randomBatch draws one observation batch: completed latencies with
// the occasional outlier, mirroring what the handler builds from an
// ObserveRequest.
func randomBatch(rng *rand.Rand, max int) []trace.ProbeRecord {
	n := 1 + rng.Intn(max)
	recs := make([]trace.ProbeRecord, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(10) == 0 {
			recs = append(recs, trace.ProbeRecord{Latency: trace.DefaultTimeout, Status: trace.StatusOutlier})
			continue
		}
		recs = append(recs, trace.ProbeRecord{Latency: 1 + 599*rng.Float64(), Status: trace.StatusCompleted})
	}
	return recs
}

// requireECDFBitEqual asserts two ECDFs are bit-for-bit identical:
// same support points (as IEEE bits), same cumulative probability at
// every support point, same sample count.
func requireECDFBitEqual(t *testing.T, want, got *stats.ECDF) {
	t.Helper()
	if want == nil || got == nil {
		t.Fatalf("nil ecdf: want=%v got=%v", want, got)
	}
	ws, gs := want.Support(), got.Support()
	if len(ws) != len(gs) {
		t.Fatalf("support size: want %d, got %d", len(ws), len(gs))
	}
	for i := range ws {
		if math.Float64bits(ws[i]) != math.Float64bits(gs[i]) {
			t.Fatalf("support[%d]: want %x (%v), got %x (%v)",
				i, math.Float64bits(ws[i]), ws[i], math.Float64bits(gs[i]), gs[i])
		}
		if math.Float64bits(want.Eval(ws[i])) != math.Float64bits(got.Eval(gs[i])) {
			t.Fatalf("F(support[%d]): want %v, got %v", i, want.Eval(ws[i]), got.Eval(gs[i]))
		}
	}
	if want.N() != got.N() {
		t.Fatalf("N: want %d, got %d", want.N(), got.N())
	}
}

// recoverServer builds a second Server over the same WAL directory and
// replays it — the "restart" half of kill-and-recover.
func recoverServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := MustNew(cfg)
	if err := s.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if s.Recovering() {
		t.Fatal("Recovering() still true after Recover returned")
	}
	return s
}

// TestKillAndRecoverBitEqual is the tentpole pin: random ingest on a
// synchronous WAL-backed server, crash, restart — the recovered model
// must be bit-equal to the pre-crash one (ECDF support and values,
// window records, stamping cursor), and seeded planning questions must
// answer identically.
func TestKillAndRecoverBitEqual(t *testing.T) {
	cfg := Config{
		WALDir:        t.TempDir(),
		WALSync:       "none", // process-crash durability needs no fsync
		SnapshotEvery: 150,    // several compactions plus a live tail
	}
	s1 := recoverServer(t, cfg) // empty dir: no-op replay

	// Window narrower than the eventual submit span, so ingest both
	// appends and evicts — the recovered window must agree on both
	// edges.
	e1, err := s1.Registry().Put("m", "test", 4000, synthTrace("m", 80, 4, 1))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 40; i++ {
		batch := randomBatch(rng, 30)
		var start *float64
		if rng.Intn(4) == 0 { // explicit start every so often
			v := e1.cursor + 1 + 50*rng.Float64()
			start = &v
		}
		if _, err := e1.Observe(batch, start, 1+9*rng.Float64()); err != nil {
			t.Fatalf("Observe %d: %v", i, err)
		}
	}
	st1 := e1.State()

	// Crash: abandon s1 with its logs open, restart over the same dir.
	s2 := recoverServer(t, cfg)
	e2, err := s2.Registry().Get("m")
	if err != nil {
		t.Fatalf("recovered Get: %v", err)
	}
	st2 := e2.State()

	requireECDFBitEqual(t, st1.ecdf, st2.ecdf)
	if !reflect.DeepEqual(st1.Trace.Records, st2.Trace.Records) {
		t.Fatalf("window records diverged: %d vs %d records",
			len(st1.Trace.Records), len(st2.Trace.Records))
	}
	if math.Float64bits(e1.cursor) != math.Float64bits(e2.cursor) {
		t.Fatalf("cursor: want %v, got %v", e1.cursor, e2.cursor)
	}
	if e1.nextID != e2.nextID {
		t.Fatalf("nextID: want %d, got %d", e1.nextID, e2.nextID)
	}
	if !reflect.DeepEqual(st1.Stats, st2.Stats) {
		t.Fatalf("stats diverged:\nwant %+v\ngot  %+v", st1.Stats, st2.Stats)
	}

	// Same questions, same answers: a deterministic recommend and a
	// seeded Monte Carlo replay on both snapshots.
	p1, err := gridstrat.NewPlanner(st1.Model, gridstrat.WithParallelism(1), gridstrat.WithSeed(9))
	if err != nil {
		t.Fatalf("planner: %v", err)
	}
	p2, err := gridstrat.NewPlanner(st2.Model, gridstrat.WithParallelism(1), gridstrat.WithSeed(9))
	if err != nil {
		t.Fatalf("planner: %v", err)
	}
	r1, err := p1.Recommend()
	if err != nil {
		t.Fatalf("recommend: %v", err)
	}
	r2, err := p2.Recommend()
	if err != nil {
		t.Fatalf("recommend: %v", err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("recommendations diverged:\nwant %+v\ngot  %+v", r1, r2)
	}
	sim1, err := p1.Simulate(r1.AsStrategy(), 500)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	sim2, err := p2.Simulate(r2.AsStrategy(), 500)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if !reflect.DeepEqual(sim1, sim2) {
		t.Fatalf("seeded simulations diverged:\nwant %+v\ngot  %+v", sim1, sim2)
	}

	// The replay is visible in the stats surface.
	var replayed uint64
	for _, sh := range s2.Registry().Stats() {
		replayed += sh.ReplayedRecords
	}
	if replayed == 0 {
		t.Fatal("expected replayed_records > 0 after recovery with a live tail")
	}
}

// TestKillAndRecoverAsyncQueue pins the async story: records
// acknowledged into the queue but never rebuilt survive the crash, and
// the recovered model equals the pre-crash state after a Flush — the
// strongest state an async server ever promised for an acknowledged
// batch.
func TestKillAndRecoverAsyncQueue(t *testing.T) {
	cfg := Config{
		WALDir:          t.TempDir(),
		WALSync:         "none",
		RebuildInterval: time.Hour, // the worker never fires on its own
	}
	s1 := recoverServer(t, cfg)
	e1, err := s1.Registry().Put("m", "test", 1e6, synthTrace("m", 60, 3, 3))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 12; i++ {
		if _, err := e1.Observe(randomBatch(rng, 20), nil, 2); err != nil {
			t.Fatalf("Observe %d: %v", i, err)
		}
	}
	if e1.Pending() == 0 {
		t.Fatal("test needs a non-empty ack queue")
	}

	// The crash happens now; the Flush below only materializes the
	// state the queue already implies, for comparison (it appends no
	// WAL frames).
	s2 := recoverServer(t, cfg)
	want, _, err := e1.Flush()
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}

	e2, err := s2.Registry().Get("m")
	if err != nil {
		t.Fatalf("recovered Get: %v", err)
	}
	if e2.Pending() != 0 {
		t.Fatalf("recovery folds the queue into the model; Pending = %d", e2.Pending())
	}
	requireECDFBitEqual(t, want.ecdf, e2.State().ecdf)
	if !reflect.DeepEqual(want.Trace.Records, e2.State().Trace.Records) {
		t.Fatal("recovered window diverged from the flushed pre-crash window")
	}
}

// TestEvictionReloadsFromDisk pins eviction-as-cache-miss: on a
// durable registry an LRU-evicted model is restored from its snapshot
// on the next request instead of answering 404, and re-registering it
// while its durable state exists is a conflict.
func TestEvictionReloadsFromDisk(t *testing.T) {
	cfg := Config{
		Shards:    1,
		MaxModels: 1, // every insert evicts the previous model
		WALDir:    t.TempDir(),
	}
	s, _, c := newTestServerCfg(t, cfg)
	if err := s.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	ctx := context.Background()

	if _, err := c.CreateModel(ctx, CreateModelRequest{ID: "a", Dataset: "2006-IX"}); err != nil {
		t.Fatalf("create a: %v", err)
	}
	// A few post-registration observations leave a WAL tail past the
	// seed snapshot, so the reload below actually replays records.
	if _, err := c.Observe(ctx, "a", ObserveRequest{Latencies: []float64{120, 340, 510}}); err != nil {
		t.Fatalf("observe a: %v", err)
	}
	infoA, err := c.GetModel(ctx, "a", 0)
	if err != nil {
		t.Fatalf("get a: %v", err)
	}
	if _, err := c.CreateModel(ctx, CreateModelRequest{ID: "b", Dataset: "2006-IX"}); err != nil {
		t.Fatalf("create b (evicts a): %v", err)
	}
	if _, err := s.Registry().Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("a should be evicted from memory, got %v", err)
	}

	// A duplicate registration must see the durable state: silently
	// overwriting an evicted-but-persisted model would turn a cache
	// eviction into data loss.
	if _, err := c.CreateModel(ctx, CreateModelRequest{ID: "a", Dataset: "2006-IX"}); err == nil ||
		!strings.Contains(err.Error(), "exists") {
		t.Fatalf("re-create of evicted durable model: want exists conflict, got %v", err)
	}

	// The request path restores the evicted model transparently.
	got, err := c.GetModel(ctx, "a", 0)
	if err != nil {
		t.Fatalf("get evicted a: %v", err)
	}
	if got.Stats != infoA.Stats || got.WindowS != infoA.WindowS {
		t.Fatalf("restored model diverged:\nwant %+v\ngot  %+v", infoA, got)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Totals.Evictions == 0 {
		t.Fatal("expected at least one eviction")
	}
	if stats.Totals.ReplayedRecords == 0 {
		t.Fatal("expected replayed_records > 0 after the lazy reload")
	}
}

// TestDeleteRemovesDurableState: a deleted model stays deleted across
// restarts, and its ID becomes registrable again.
func TestDeleteRemovesDurableState(t *testing.T) {
	cfg := Config{WALDir: t.TempDir()}
	s1 := recoverServer(t, cfg)
	if _, err := s1.Registry().Put("m", "test", 1e6, synthTrace("m", 40, 2, 5)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if !s1.Registry().Delete("m") {
		t.Fatal("Delete reported not found")
	}
	if s1.Registry().Delete("m") {
		t.Fatal("second Delete should report not found")
	}

	s2 := recoverServer(t, cfg)
	if n := s2.Registry().Len(); n != 0 {
		t.Fatalf("deleted model came back: %d models after restart", n)
	}
	if _, err := s2.Registry().Put("m", "test", 1e6, synthTrace("m", 40, 2, 6)); err != nil {
		t.Fatalf("re-register after delete: %v", err)
	}
}

// TestRecoveringGate: model routes answer 503 while the boot replay is
// in flight, and /v1/healthz reports the phase.
func TestRecoveringGate(t *testing.T) {
	cfg := Config{WALDir: t.TempDir()}
	s, hs, c := newTestServerCfg(t, cfg) // recovering until Recover runs
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatalf("health: %v", err)
	}
	if h.WAL != "recovering" {
		t.Fatalf("health wal: want recovering, got %q", h.WAL)
	}
	if h.Version == "" {
		t.Fatal("health version missing")
	}
	resp, err := http.Get(hs.URL + "/v1/models")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("list while recovering: want 503, got %d", resp.StatusCode)
	}

	if err := s.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	h, err = c.Health(ctx)
	if err != nil {
		t.Fatalf("health: %v", err)
	}
	if h.WAL != "ready" {
		t.Fatalf("health wal: want ready, got %q", h.WAL)
	}
	if _, err := c.ListModels(ctx); err != nil {
		t.Fatalf("list after recover: %v", err)
	}
}
