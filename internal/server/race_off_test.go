//go:build !race

package server

// raceEnabled reports whether the race detector is compiled in. The
// allocation-regression ceilings in alloc_test.go only hold for plain
// builds: race instrumentation adds its own heap traffic, so those
// tests skip themselves under -race.
const raceEnabled = false
