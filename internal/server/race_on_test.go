//go:build race

package server

// See race_off_test.go.
const raceEnabled = true
