package server

// WAL ingest-overhead benchmarks and the PR 6 durability snapshot.
//
// BenchmarkObserveBatchWAL drives the same steady-state observation
// batches as BenchmarkObserveBatch (W = 1e5 window records, 100-record
// batches) through a registry entry twice: once in-memory only, once
// with a write-ahead log attached under the default interval fsync
// policy. The delta is the price of durability on the hot write path.
//
// TestBenchSnapshotWAL times the paired workload and writes
// BENCH_PR6.json (same schema as the earlier snapshots, with
// `sequential_ns` = WAL-on and `parallel_ns` = WAL-off, so `speedup`
// reads as the overhead factor). It enforces the PR 6 acceptance
// bound: WAL-on ingest must stay within 2x of WAL-off. Gate and
// output override:
//
//	GRIDSTRAT_BENCH_SNAPSHOT=1 GRIDSTRAT_BENCH_OUT=$PWD/BENCH_PR6.json \
//	  go test -run TestBenchSnapshotWAL -v ./internal/server/
//
// CI runs it on every push and uploads the JSON as a build artifact.

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"gridstrat/internal/wal"
)

// benchWALRegistry builds a single-shard registry over the W-record
// seed trace, optionally backed by a WAL under dir with the interval
// fsync policy. The snapshot cadence is raised past the workload size
// so the timed loop measures the append path, not a mid-run
// compaction.
func benchWALRegistry(w int, dir string) (*Registry, *Entry, error) {
	r := NewRegistry(1, 8)
	if dir != "" {
		store, err := wal.NewStore(dir, wal.Options{Sync: wal.SyncInterval})
		if err != nil {
			return nil, nil, err
		}
		r.SetWAL(store, 1<<20)
	}
	tr, width := benchSeedTrace(w)
	e, err := r.Put("bench", "test", width, tr)
	if err != nil {
		return nil, nil, err
	}
	return r, e, nil
}

func benchmarkObserveWAL(b *testing.B, w int, withWAL bool) {
	dir := ""
	if withWAL {
		dir = b.TempDir()
	}
	reg, e, err := benchWALRegistry(w, dir)
	if err != nil {
		b.Fatal(err)
	}
	defer reg.Delete("bench")
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Observe(benchBatch(rng, benchBatchSize), nil, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchBatchSize), "records/op")
}

func BenchmarkObserveBatchWAL(b *testing.B) {
	b.Run("W=1e5/off", func(b *testing.B) { benchmarkObserveWAL(b, 100_000, false) })
	b.Run("W=1e5/on", func(b *testing.B) { benchmarkObserveWAL(b, 100_000, true) })
}

// walSnapTime is snapTime with the registry build (including the seed
// snapshot write on the WAL-on arm) hoisted out of the timed region:
// the comparison is about the per-batch append cost, and both arms
// replay the identical batch stream from the same seed.
func walSnapTime(t *testing.T, reps, w, batches int, withWAL bool) int64 {
	t.Helper()
	best := int64(0)
	for r := 0; r < reps; r++ {
		dir := ""
		if withWAL {
			dir = t.TempDir()
		}
		reg, e, err := benchWALRegistry(w, dir)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(9))
		start := time.Now()
		for i := 0; i < batches; i++ {
			if _, err := e.Observe(benchBatch(rng, benchBatchSize), nil, 1); err != nil {
				t.Fatal(err)
			}
		}
		if d := time.Since(start).Nanoseconds(); best == 0 || d < best {
			best = d
		}
		reg.Delete("bench")
	}
	return best
}

func TestBenchSnapshotWAL(t *testing.T) {
	if os.Getenv("GRIDSTRAT_BENCH_SNAPSHOT") == "" {
		t.Skip("set GRIDSTRAT_BENCH_SNAPSHOT=1 to record the WAL overhead snapshot (writes BENCH_PR6.json)")
	}
	out := os.Getenv("GRIDSTRAT_BENCH_OUT")
	if out == "" {
		out = "BENCH_PR6.json"
	}
	snap := ingestSnapshot{
		Schema:     "gridstrat-bench-snapshot/v1",
		PR:         6,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	const w, batches = 100_000, 20
	offNS := walSnapTime(t, 3, w, batches, false)
	onNS := walSnapTime(t, 3, w, batches, true)
	overhead := float64(onNS) / float64(offNS)
	snap.Benchmarks = append(snap.Benchmarks, ingestSnapEntry{
		Name:         "IngestWALOverheadW1e5",
		SequentialNS: onNS,  // WAL-on (durable) arm
		ParallelNS:   offNS, // WAL-off (in-memory) arm
		Speedup:      overhead,
	})
	t.Logf("IngestWALOverheadW1e5: WAL-off %v, WAL-on %v (%.2fx overhead)",
		time.Duration(offNS), time.Duration(onNS), overhead)

	// Acceptance: durability must not halve ingest throughput. The
	// append path is an in-memory encode plus a buffered sequential
	// write; fsync rides the interval flusher off the hot path.
	if overhead > 2.0 {
		t.Fatalf("WAL-on ingest is %.2fx WAL-off (bound: 2x)", overhead)
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d CPUs, GOMAXPROCS %d)", out, snap.NumCPU, snap.GOMAXPROCS)
}
