package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"gridstrat"
	"gridstrat/internal/trace"
)

// newTestServer builds a service and an httptest front for it, with
// the default synchronous ingest pipeline.
func newTestServer(t *testing.T) (*Server, *httptest.Server, *Client) {
	t.Helper()
	return newTestServerCfg(t, Config{})
}

// newTestServerCfg is newTestServer with an explicit configuration
// (async ingest tests set RebuildInterval). GRIDSTRAT_SKETCH_TIER=1
// forces every model into the quantile-sketch tier — CI runs the
// whole suite under it to pin exact/sketch representation parity.
func newTestServerCfg(t *testing.T, cfg Config) (*Server, *httptest.Server, *Client) {
	t.Helper()
	if os.Getenv("GRIDSTRAT_SKETCH_TIER") == "1" {
		cfg.SketchTier = true
	}
	s := MustNew(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs, NewClient(hs.URL, hs.Client())
}

// smallTraceCSV renders a compact synthetic trace: n completed probes
// with latencies drawn around mean, plus a few outliers, spaced
// spacing seconds apart starting at start. Small on purpose — handler
// tests hammer many endpoints and model builds must stay cheap.
func smallTraceCSV(t *testing.T, name string, n int, mean, start, spacing float64, outliers int) string {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	tr := &trace.Trace{Name: name, Timeout: trace.DefaultTimeout}
	id := 0
	for i := 0; i < n; i++ {
		lat := mean * (0.5 + rng.Float64()) // U[0.5, 1.5]·mean
		tr.Records = append(tr.Records, trace.ProbeRecord{
			ID: id, Submit: start + float64(i)*spacing, Latency: lat, Status: trace.StatusCompleted,
		})
		id++
	}
	for i := 0; i < outliers; i++ {
		tr.Records = append(tr.Records, trace.ProbeRecord{
			ID: id, Submit: start + float64(n+i)*spacing, Latency: tr.Timeout, Status: trace.StatusOutlier,
		})
		id++
	}
	var buf bytes.Buffer
	if err := gridstrat.WriteTraceCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// mustCreateUpload registers a small uploaded model and returns its info.
func mustCreateUpload(t *testing.T, c *Client, id string, windowS float64) ModelInfo {
	t.Helper()
	doc := smallTraceCSV(t, id, 120, 100, 0, 10, 6)
	info, err := c.CreateModel(context.Background(), CreateModelRequest{
		ID: id, Format: "csv", Trace: doc, WindowS: windowS,
	})
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func TestHealthz(t *testing.T) {
	_, _, c := newTestServer(t)
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Models != 0 {
		t.Fatalf("unexpected health %+v", h)
	}
}

func TestCreateModelFromDataset(t *testing.T) {
	_, _, c := newTestServer(t)
	info, err := c.CreateModel(context.Background(), CreateModelRequest{ID: "paper", Dataset: "2006-IX"})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "paper" || info.Source != "dataset:2006-IX" || info.Version != 1 {
		t.Fatalf("unexpected info %+v", info)
	}
	if info.Stats.Completed == 0 || info.Stats.Rho <= 0 {
		t.Fatalf("stats not populated: %+v", info.Stats)
	}

	// Duplicate IDs conflict.
	_, err = c.CreateModel(context.Background(), CreateModelRequest{ID: "paper", Dataset: "2006-IX"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict || apiErr.Code != "conflict" {
		t.Fatalf("want 409 conflict, got %v", err)
	}

	// Unknown datasets are a client error.
	_, err = c.CreateModel(context.Background(), CreateModelRequest{ID: "x", Dataset: "1999-00"})
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("want 400, got %v", err)
	}
}

func TestCreateModelUploadShapes(t *testing.T) {
	_, hs, c := newTestServer(t)
	ctx := context.Background()

	// Inline JSON shape with a CSV document.
	mustCreateUpload(t, c, "inline", 0)

	// Raw-body shape with a GWF document.
	tr, err := gridstrat.ReadTraceCSV(strings.NewReader(smallTraceCSV(t, "raw", 80, 200, 0, 5, 4)))
	if err != nil {
		t.Fatal(err)
	}
	var gwf bytes.Buffer
	if err := gridstrat.WriteTraceGWF(&gwf, tr); err != nil {
		t.Fatal(err)
	}
	info, err := c.UploadTrace(ctx, "rawgwf", "gwf", gwf.Bytes(), 3600)
	if err != nil {
		t.Fatal(err)
	}
	if info.Source != "upload:gwf" || info.WindowS != 3600 {
		t.Fatalf("unexpected info %+v", info)
	}

	// Listing returns both, sorted.
	models, err := c.ListModels(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 || models[0].ID != "inline" || models[1].ID != "rawgwf" {
		t.Fatalf("unexpected listing %+v", models)
	}

	// A JSON content type carrying parameters still routes to the JSON
	// shape (axios et al. default to "application/json; charset=utf-8").
	resp, err := hs.Client().Post(hs.URL+"/v1/models", "application/json; charset=utf-8",
		strings.NewReader(`{"id":"charset","dataset":"2006-IX"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("charset content type: status %d, want 201", resp.StatusCode)
	}

	// Missing id / missing source / both sources are client errors.
	for _, body := range []string{
		`{"dataset":"2006-IX"}`,
		`{"id":"z"}`,
		`{"id":"z","dataset":"2006-IX","trace":"x","format":"csv"}`,
	} {
		resp, err := hs.Client().Post(hs.URL+"/v1/models", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %s: status %d, want 400", body, resp.StatusCode)
		}
	}

	// Negative rolling windows are rejected up front as client errors.
	var apiErr *APIError
	if _, err := c.CreateModel(ctx, CreateModelRequest{ID: "negwin", Dataset: "2006-IX", WindowS: -5}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("negative window_s: want 400, got %v", err)
	}

	// Malformed trace documents are client errors.
	if _, err := c.CreateModel(ctx, CreateModelRequest{ID: "bad", Format: "csv", Trace: "not,a,trace"}); err == nil {
		t.Fatal("malformed CSV accepted")
	}
	if _, err := c.CreateModel(ctx, CreateModelRequest{ID: "bad", Format: "tsv", Trace: "x"}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestGetAndDeleteModel(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	mustCreateUpload(t, c, "m", 0)

	info, err := c.GetModel(ctx, "m", 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "m" || info.Stationarity != nil {
		t.Fatalf("unexpected info %+v", info)
	}

	// Stationarity on demand: 120 completed probes spaced 10 s apart
	// span 1290 s; 300 s analysis windows give several usable windows.
	info, err = c.GetModel(ctx, "m", 300)
	if err != nil {
		t.Fatal(err)
	}
	if info.Stationarity == nil || info.Stationarity.Windows < 2 {
		t.Fatalf("stationarity not populated: %+v", info.Stationarity)
	}

	// Adversarially tiny analysis windows are rejected, not spun on.
	var apiErr2 *APIError
	if _, err := c.GetModel(ctx, "m", 1e-12); !errors.As(err, &apiErr2) || apiErr2.Status != http.StatusBadRequest {
		t.Fatalf("tiny window_s: want 400, got %v", err)
	}

	if err := c.DeleteModel(ctx, "m"); err != nil {
		t.Fatal(err)
	}
	var apiErr *APIError
	if _, err := c.GetModel(ctx, "m", 0); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("want 404 after delete, got %v", err)
	}
	if err := c.DeleteModel(ctx, "m"); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("double delete: want 404, got %v", err)
	}
}

func TestRecommendEndpoint(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	mustCreateUpload(t, c, "m", 0)

	rec, err := c.Recommend(ctx, "m", RecommendRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Model != "m" || rec.Version != 1 {
		t.Fatalf("unexpected response %+v", rec)
	}
	if rec.Recommendation.Eval.EJS <= 0 || rec.Recommendation.Summary == "" {
		t.Fatalf("empty recommendation %+v", rec.Recommendation)
	}

	// A copy budget of 1 rules multiple submission out.
	rec1, err := c.Recommend(ctx, "m", RecommendRequest{Options: &Options{MaxParallel: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if rec1.Recommendation.Strategy == "multiple" {
		t.Fatalf("multiple recommended under copy budget 1: %+v", rec1.Recommendation)
	}

	// Cheapest mode yields Δcost <= the fast recommendation's.
	cheap, err := c.Recommend(ctx, "m", RecommendRequest{Cheapest: true})
	if err != nil {
		t.Fatal(err)
	}
	if cheap.Recommendation.DeltaCost > rec.Recommendation.DeltaCost+1e-9 {
		t.Fatalf("cheapest Δcost %v > fastest Δcost %v",
			cheap.Recommendation.DeltaCost, rec.Recommendation.DeltaCost)
	}

	// Bad options are client errors.
	var apiErr *APIError
	if _, err := c.Recommend(ctx, "m", RecommendRequest{Options: &Options{MaxParallel: 0.5}}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("want 400 for bad options, got %v", err)
	}
	// Unknown models are 404.
	if _, err := c.Recommend(ctx, "ghost", RecommendRequest{}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("want 404 for unknown model, got %v", err)
	}
	// An unsatisfiable Δcost budget is a computation failure (422).
	if _, err := c.Recommend(ctx, "m", RecommendRequest{Options: &Options{Budget: 1e-9}}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("want 422 for unsatisfiable budget, got %v", err)
	}
}

func TestRankEndpoint(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	mustCreateUpload(t, c, "m", 0)

	// Default ranking: the three families.
	res, err := c.Rank(ctx, "m", RankRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranking) != 3 {
		t.Fatalf("%d entries, want 3", len(res.Ranking))
	}
	for i := 1; i < len(res.Ranking); i++ {
		if res.Ranking[i].Eval.EJS < res.Ranking[i-1].Eval.EJS {
			t.Fatalf("ranking not sorted by EJ: %+v", res.Ranking)
		}
	}

	// Explicit strategies, one pinned: evaluated as given.
	pinned := res.Ranking[0]
	res2, err := c.Rank(ctx, "m", RankRequest{Strategies: []StrategySpec{
		{Strategy: "single"},
		pinned.StrategySpec,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Ranking) != 2 {
		t.Fatalf("%d entries, want 2", len(res2.Ranking))
	}

	// Unknown strategy names are client errors.
	var apiErr *APIError
	if _, err := c.Rank(ctx, "m", RankRequest{Strategies: []StrategySpec{{Strategy: "quantum"}}}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("want 400, got %v", err)
	}
}

func TestOptimizeEndpoint(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	mustCreateUpload(t, c, "m", 0)

	for _, name := range []string{"single", "multiple", "delayed"} {
		res, err := c.Optimize(ctx, "m", OptimizeRequest{Strategy: StrategySpec{Strategy: name, B: 3}})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Strategy.Strategy != name || res.Strategy.TInfS <= 0 || res.Eval.EJS <= 0 {
			t.Fatalf("%s: unexpected result %+v", name, res)
		}
		if name == "multiple" && res.Strategy.B != 3 {
			t.Fatalf("collection size not preserved: %+v", res.Strategy)
		}
	}

	var apiErr *APIError
	if _, err := c.Optimize(ctx, "m", OptimizeRequest{}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("missing strategy: want 400, got %v", err)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	mustCreateUpload(t, c, "m", 0)

	tuned, err := c.Optimize(ctx, "m", OptimizeRequest{Strategy: StrategySpec{Strategy: "single"}})
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(42)
	req := SimulateRequest{Strategy: tuned.Strategy, Runs: 4000, Options: &Options{Seed: &seed}}
	res1, err := c.Simulate(ctx, "m", req)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Result.Runs != 4000 || res1.Result.EJS <= 0 {
		t.Fatalf("unexpected result %+v", res1.Result)
	}
	// MC mean lands near the analytic expectation.
	if res1.Result.EJS < tuned.Eval.EJS-5*res1.Result.StdErrS || res1.Result.EJS > tuned.Eval.EJS+5*res1.Result.StdErrS {
		t.Fatalf("simulated EJ %v far from analytic %v (stderr %v)",
			res1.Result.EJS, tuned.Eval.EJS, res1.Result.StdErrS)
	}
	// Seeded replays are reproducible at any parallelism.
	res2, err := c.Simulate(ctx, "m", SimulateRequest{
		Strategy: tuned.Strategy, Runs: 4000, Options: &Options{Seed: &seed, Workers: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Result != res2.Result {
		t.Fatalf("seeded replay not reproducible: %+v vs %+v", res1.Result, res2.Result)
	}
	if res1.Seed != seed || res2.Seed != seed {
		t.Fatalf("request seed not echoed: %d, %d, want %d", res1.Seed, res2.Seed, seed)
	}

	// Unseeded replays draw fresh seeds: independent samples, with the
	// drawn seed echoed so the run stays reproducible after the fact.
	u1, err := c.Simulate(ctx, "m", SimulateRequest{Strategy: tuned.Strategy, Runs: 4000})
	if err != nil {
		t.Fatal(err)
	}
	u2, err := c.Simulate(ctx, "m", SimulateRequest{Strategy: tuned.Strategy, Runs: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if u1.Seed == u2.Seed || u1.Result == u2.Result {
		t.Fatalf("unseeded replays not independent: seeds %d/%d, results %+v vs %+v",
			u1.Seed, u2.Seed, u1.Result, u2.Result)
	}
	echoed := u1.Seed
	r1, err := c.Simulate(ctx, "m", SimulateRequest{Strategy: tuned.Strategy, Runs: 4000, Options: &Options{Seed: &echoed}})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Result != u1.Result {
		t.Fatalf("echoed seed did not reproduce the unseeded run: %+v vs %+v", r1.Result, u1.Result)
	}

	var apiErr *APIError
	// Unparameterized strategies cannot be replayed.
	if _, err := c.Simulate(ctx, "m", SimulateRequest{Strategy: StrategySpec{Strategy: "single"}, Runs: 100}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("want 422, got %v", err)
	}
	// Run counts are validated and capped.
	if _, err := c.Simulate(ctx, "m", SimulateRequest{Strategy: tuned.Strategy, Runs: 0}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("runs=0: want 400, got %v", err)
	}
	if _, err := c.Simulate(ctx, "m", SimulateRequest{Strategy: tuned.Strategy, Runs: 1 << 30}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("huge runs: want 400, got %v", err)
	}
}

func TestMakespanEndpoint(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	mustCreateUpload(t, c, "m", 0)

	app := ApplicationJSON{Tasks: 100, WaveWidth: 20, RuntimeS: 30}

	// Recommended strategy.
	res, err := c.Makespan(ctx, "m", MakespanRequest{App: app})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.MakespanS <= 0 || res.B != 0 {
		t.Fatalf("unexpected estimate %+v", res)
	}

	// Explicit strategy.
	res2, err := c.Makespan(ctx, "m", MakespanRequest{App: app, Strategy: &StrategySpec{Strategy: "multiple", B: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Estimate.MakespanS <= 0 {
		t.Fatalf("unexpected estimate %+v", res2)
	}

	// Smallest collection under a generous deadline: b=1 suffices.
	res3, err := c.Makespan(ctx, "m", MakespanRequest{
		App: app, MaxB: 5, Options: &Options{DeadlineS: 1e9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res3.B != 1 {
		t.Fatalf("b=%d under an infinite deadline, want 1", res3.B)
	}

	var apiErr *APIError
	// Invalid application shape.
	if _, err := c.Makespan(ctx, "m", MakespanRequest{App: ApplicationJSON{Tasks: 0, WaveWidth: 5}}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("want 400, got %v", err)
	}
	// max_b needs a deadline.
	if _, err := c.Makespan(ctx, "m", MakespanRequest{App: app, MaxB: 5}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("max_b without deadline: want 422, got %v", err)
	}
	// A deadline no collection size can meet is an explicit 422, not a
	// zero-valued 200.
	if _, err := c.Makespan(ctx, "m", MakespanRequest{App: app, MaxB: 3, Options: &Options{DeadlineS: 0.001}}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible deadline: want 422, got %v", err)
	}
	// A negative max_b is rejected, not silently treated as absent.
	if _, err := c.Makespan(ctx, "m", MakespanRequest{App: app, MaxB: -5}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("negative max_b: want 400, got %v", err)
	}
	// max_b and strategy are mutually exclusive.
	if _, err := c.Makespan(ctx, "m", MakespanRequest{App: app, MaxB: 5, Strategy: &StrategySpec{Strategy: "single"}, Options: &Options{DeadlineS: 1e9}}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("max_b+strategy: want 400, got %v", err)
	}
}

// TestObservationsShiftRecommendation is the acceptance-criteria
// assertion: posting observations visibly shifts a subsequent
// recommendation. The uploaded model sees ~100 s latencies; streaming
// a much slower regime through the rolling window (which drops the
// fast history) must raise the recommended strategy's expected
// latency.
func TestObservationsShiftRecommendation(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()

	// Window of 2000 s; the seed trace spans 1260 s of submits.
	mustCreateUpload(t, c, "drift", 2000)

	before, err := c.Recommend(ctx, "drift", RecommendRequest{})
	if err != nil {
		t.Fatal(err)
	}

	// Stream a 10× slower regime far enough ahead that the old records
	// fall out of the window.
	slow := make([]float64, 150)
	for i := range slow {
		slow[i] = 900 + 20*float64(i%7)
	}
	start := 10000.0
	obs, err := c.Observe(ctx, "drift", ObserveRequest{Latencies: slow, Outliers: 10, StartS: &start, SpacingS: 10})
	if err != nil {
		t.Fatal(err)
	}
	if obs.Version != 2 {
		t.Fatalf("version %d after one batch, want 2", obs.Version)
	}
	if obs.Dropped == 0 {
		t.Fatalf("no records dropped from the rolling window: %+v", obs)
	}
	if obs.WindowRecords != obs.Appended {
		t.Fatalf("window should hold only the new regime: %+v", obs)
	}

	after, err := c.Recommend(ctx, "drift", RecommendRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if after.Version != 2 {
		t.Fatalf("recommendation computed on version %d, want 2", after.Version)
	}
	if after.Recommendation.Eval.EJS < 3*before.Recommendation.Eval.EJS {
		t.Fatalf("recommendation did not shift with the regime: before EJ=%v, after EJ=%v",
			before.Recommendation.Eval.EJS, after.Recommendation.Eval.EJS)
	}
}

func TestObservationsValidation(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	mustCreateUpload(t, c, "m", 0)

	var apiErr *APIError
	cases := []ObserveRequest{
		{},                                      // empty batch
		{Latencies: []float64{-1}},              // negative latency
		{Latencies: []float64{1e12}},            // beyond timeout
		{Latencies: []float64{1}, Outliers: -1}, // negative outliers
		{Outliers: 1 << 30},                     // absurd batch size
		{Latencies: []float64{1}, StartS: f64(1e300)},          // submit beyond float-safe range
		{Latencies: []float64{1}, StartS: f64(-1)},             // negative submit
		{Latencies: []float64{1}, SpacingS: 1e18},              // spacing would freeze the cursor
		{Latencies: []float64{1}, Outliers: math.MaxInt64 - 5}, // int-overflow probe on the batch cap
	}
	for i, req := range cases {
		if _, err := c.Observe(ctx, "m", req); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
			t.Fatalf("case %d: want 400, got %v", i, err)
		}
	}

	// A batch that would leave the window without any completed probe
	// is rejected atomically: the model keeps its previous state.
	start := 1e7
	if _, err := c.Observe(ctx, "m", ObserveRequest{Outliers: 50, StartS: &start}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("all-outlier window: want 422, got %v", err)
	}
	info, err := c.GetModel(ctx, "m", 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 {
		t.Fatalf("failed batch bumped version to %d", info.Version)
	}
	if _, err := c.Recommend(ctx, "m", RecommendRequest{}); err != nil {
		t.Fatalf("model unusable after rejected batch: %v", err)
	}
}

func TestMalformedBodies(t *testing.T) {
	_, hs, c := newTestServer(t)
	mustCreateUpload(t, c, "m", 0)

	paths := []string{
		"/v1/models",
		"/v1/models/m/recommend",
		"/v1/models/m/rank",
		"/v1/models/m/optimize",
		"/v1/models/m/simulate",
		"/v1/models/m/makespan",
		"/v1/models/m/observations",
	}
	for _, path := range paths {
		resp, err := hs.Client().Post(hs.URL+path, "application/json", strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		var env ErrorEnvelope
		if err := jsonDecode(resp, &env); err != nil {
			t.Fatalf("%s: error envelope not decodable: %v", path, err)
		}
		if resp.StatusCode != http.StatusBadRequest || env.Error.Code != "bad_request" {
			t.Fatalf("%s: status %d code %q, want 400 bad_request", path, resp.StatusCode, env.Error.Code)
		}
	}

	// Endpoints requiring a body reject an empty one.
	for _, path := range []string{"/v1/models/m/optimize", "/v1/models/m/simulate", "/v1/models/m/makespan", "/v1/models/m/observations"} {
		resp, err := hs.Client().Post(hs.URL+path, "application/json", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s with empty body: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestUnknownModel404(t *testing.T) {
	_, hs, _ := newTestServer(t)
	reqs := []struct{ method, path string }{
		{http.MethodGet, "/v1/models/ghost"},
		{http.MethodDelete, "/v1/models/ghost"},
		{http.MethodPost, "/v1/models/ghost/recommend"},
		{http.MethodPost, "/v1/models/ghost/rank"},
		{http.MethodPost, "/v1/models/ghost/optimize"},
		{http.MethodPost, "/v1/models/ghost/simulate"},
		{http.MethodPost, "/v1/models/ghost/makespan"},
		{http.MethodPost, "/v1/models/ghost/observations"},
	}
	for _, tc := range reqs {
		req, err := http.NewRequest(tc.method, hs.URL+tc.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := hs.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var env ErrorEnvelope
		if err := jsonDecode(resp, &env); err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		if resp.StatusCode != http.StatusNotFound || env.Error.Code != "not_found" {
			t.Fatalf("%s %s: status %d code %q, want 404 not_found",
				tc.method, tc.path, resp.StatusCode, env.Error.Code)
		}
	}
}

// TestCancelledRequest exercises the context path: a request arriving
// with an already-cancelled context must not burn the optimizer
// budget and must map to the 499 envelope.
func TestCancelledRequest(t *testing.T) {
	s, _, _ := newTestServer(t)
	tr, err := gridstrat.ReadTraceCSV(strings.NewReader(smallTraceCSV(t, "c", 120, 100, 0, 10, 6)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Registry().Put("c", "upload:csv", 1e6, tr); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/models/c/recommend", strings.NewReader("{}")).WithContext(ctx)
	rw := httptest.NewRecorder()
	s.Handler().ServeHTTP(rw, req)
	if rw.Code != statusClientClosedRequest {
		t.Fatalf("status %d, want %d (body %s)", rw.Code, statusClientClosedRequest, rw.Body)
	}
	if !strings.Contains(rw.Body.String(), "cancelled") {
		t.Fatalf("unexpected body %s", rw.Body)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	mustCreateUpload(t, c, "m", 0)

	if _, err := c.Recommend(ctx, "m", RecommendRequest{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recommend(ctx, "ghost", RecommendRequest{}); err == nil {
		t.Fatal("ghost model should 404")
	}
	if _, err := c.Observe(ctx, "m", ObserveRequest{Latencies: []float64{50, 60}}); err != nil {
		t.Fatal(err)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Models != 1 || st.Capacity <= 0 || len(st.Shards) == 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
	if st.Totals.Hits < 2 || st.Totals.Misses < 1 {
		t.Fatalf("counters not advancing: %+v", st.Totals)
	}
	if st.Totals.IngestBatches != 1 || st.Totals.IngestRecords != 2 {
		t.Fatalf("ingest counters %+v", st.Totals)
	}
}

// f64 returns a pointer to the value, for optional wire fields.
func f64(v float64) *float64 { return &v }

// jsonDecode decodes a response body and closes it.
func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("decoding %s: %w", resp.Request.URL, err)
	}
	return nil
}
