package server

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gridstrat/internal/stats"
	"gridstrat/internal/trace"
	"gridstrat/internal/wal"
)

// This file is the service's write path: the per-entry incremental
// ingestion pipeline
//
//	stamp → queue → rolling-buffer append/trim → merge-built ECDF
//	      → kernel prewarm → atomic ModelState swap
//
// A batch of k records against a window of W records costs
// O(k log k + support + evicted) per rebuild — no copy of the whole
// window, no re-sort, no cold first query after the swap — versus the
// O(W log W) copy-sort-rebuild the pre-incremental path paid on every
// batch. With a rebuild interval configured, acks decouple from
// rebuilds entirely: batches queue on the entry and a worker coalesces
// everything that arrived within the interval into one rebuild.

// Entry is one registered model. The queryable state lives behind an
// atomic pointer: readers Load it without any entry-level lock, and
// the rebuild path swaps in a rebuilt snapshot, so queries and
// ingestion never block each other.
//
// Two locks split the write path. qmu is the ack lock — it guards the
// ingest queue, the ID counter and the submit-time cursor, so
// acknowledging a batch is O(batch) stamping plus an enqueue. ingestMu
// is the rebuild lock — it guards the rolling buffer, the window
// status counts and the rebuild-and-swap, so rebuilds serialize
// without ever blocking an ack (lock order: ingestMu before qmu).
type Entry struct {
	ID      string
	Source  string  // "dataset:<name>" or "upload:<format>"
	Window  float64 // rolling-window width, seconds
	timeout float64 // probe censoring bound, immutable after construction

	state atomic.Pointer[ModelState]

	// lastUsed is the entry's LRU clock (unix nanoseconds of the most
	// recent Get), advanced with an atomic store so lookups stay on the
	// shard's read lock; eviction picks the smallest value.
	lastUsed atomic.Int64

	rebuildEvery time.Duration // 0 = rebuild synchronously in Observe
	maxQueued    int           // backpressure cap on queued records

	qmu           sync.Mutex
	queue         []trace.ProbeRecord // stamped records awaiting a rebuild
	queuedBatches int
	workerActive  bool
	nextID        int     // next free probe-record ID
	cursor        float64 // largest submit time across window + queue

	ingestMu    sync.Mutex
	rolling     *trace.Rolling // canonical mutable window, ascending by submit
	winComplete int            // completed records in the window
	winOutliers int            // outlier + fault records in the window
	// fullRebuild marks the window's ECDF chain as broken (a rebuild
	// failed after the buffer was mutated); the next rebuild resorts
	// from the flat window instead of merging, restoring the chain.
	fullRebuild bool

	// Tiering state (guarded by ingestMu). wantSketch is the target
	// representation rebuilds produce; windowDropped marks a deep
	// demotion — rolling is nil and the WAL snapshot holds the window,
	// so any write-path entry needing the buffer promotes (replays)
	// first. windowRecs mirrors rolling.Len() atomically so MemBytes
	// and the pressure enforcer read it lock-free.
	wantSketch    bool
	windowDropped bool
	windowRecs    atomic.Int64
	// policySketch records the registry's force-sketch policy at
	// construction: promotion restores wantSketch to it, so a policy-
	// sketched entry stays sketch across a promote-for-write cycle
	// while a pressure-demoted one returns to the exact tier.
	policySketch bool

	rebuilds     atomic.Uint64
	coalesced    atomic.Uint64
	rebuildFails atomic.Uint64

	// Durability. wal (nil on a memory-only registry) receives one
	// framed batch per acknowledged Observe — written before the ack
	// commits, so every acknowledged record is on the log — plus
	// re-base ops. sinceSnap counts records appended since the last
	// compacted snapshot (guarded by ingestMu; the rebuild path
	// triggers a snapshot past snapshotEvery). replayed is the number
	// of tail records this entry's recovery replayed on top of its
	// snapshot (0 for entries created in this process's lifetime).
	wal           *wal.Log
	store         *wal.Store // nil on a memory-only registry; promote reopens through it
	snapshotEvery int
	sinceSnap     int
	replayed      int
}

// probeRecordBytes is the estimated heap cost of one trace.ProbeRecord
// (int ID + two float64s + status byte, padded).
const probeRecordBytes = 32

// MemBytes estimates the entry's resident heap footprint: the current
// model snapshot (window trace + representation + tables), the rolling
// buffer, and the ingest queue. Lock-free; the byte-pressure enforcer
// and /v1/stats read it concurrently with ingestion.
func (e *Entry) MemBytes() int64 {
	var b int64
	if st := e.state.Load(); st != nil {
		b += st.MemBytes()
	}
	b += e.windowRecs.Load() * probeRecordBytes
	b += int64(e.Pending()) * probeRecordBytes
	return b
}

// newEntry loads a trace into the rolling buffer, trims it to the
// window and builds version 1 of the model — in the sketch tier when
// sketchTier is set (the registry's force-sketch policy).
func newEntry(id, source string, window float64, tr *trace.Trace, rebuildEvery time.Duration, maxQueued int, sketchTier bool) (*Entry, error) {
	rolling, err := trace.NewRolling(tr, window)
	if err != nil {
		return nil, err
	}
	tw := rolling.Snapshot()
	state, err := newModelState(tw, 1)
	if err != nil {
		return nil, err
	}
	if sketchTier {
		sk, err := stats.SketchFromECDF(state.ecdf, 0)
		if err != nil {
			return nil, err
		}
		base := state.ecdf
		_, outliers := countStatuses(tw.Records)
		state, err = newModelStateSketch(tw, sk, base, len(tw.Records), outliers, 1)
		if err != nil {
			return nil, err
		}
	}
	e := &Entry{
		ID:           id,
		Source:       source,
		Window:       window,
		timeout:      rolling.Timeout(),
		rebuildEvery: rebuildEvery,
		maxQueued:    maxQueued,
		rolling:      rolling,
		cursor:       rolling.MaxSubmit(),
		wantSketch:   sketchTier,
		policySketch: sketchTier,
	}
	e.winComplete, e.winOutliers = countStatuses(rolling.Records())
	e.windowRecs.Store(int64(rolling.Len()))
	// IDs stay unique against the full seed trace, including records
	// the window trim dropped.
	for _, rec := range tr.Records {
		if rec.ID >= e.nextID {
			e.nextID = rec.ID + 1
		}
	}
	e.state.Store(state)
	e.lastUsed.Store(time.Now().UnixNano())
	return e, nil
}

// newEntryFromSnapshot rebuilds an entry from its recovered durable
// state: load the records into a rolling buffer (NewRolling re-sorts
// and trims, reproducing exactly the window the live entry held — see
// DESIGN.md's recovery equivalence argument), rebuild the model from
// scratch, and restore the stamping state. The flat rebuild is
// bit-identical to the incremental merge chain the pre-crash entry
// ran, so the recovered ECDF equals the pre-crash one bit for bit.
func newEntryFromSnapshot(id string, snap *wal.EntrySnapshot, replayed int, log *wal.Log, rebuildEvery time.Duration, maxQueued, snapshotEvery int, forceSketch bool) (*Entry, error) {
	tr := &trace.Trace{Name: snap.Name, Timeout: snap.Timeout, Records: snap.Records}
	rolling, err := trace.NewRolling(tr, snap.Window)
	if err != nil {
		return nil, err
	}
	version := snap.Version
	if replayed > 0 {
		version++ // the tail's records fold into one recovery rebuild
	}
	// Build through the same path as a steady-state rebuild — ECDF from
	// the flat window, stats derived from the counted ECDF — so the
	// recovered state is bit-equal to the pre-crash one (ComputeStats
	// sums in a different order and can differ in the last ULP).
	tw := rolling.Snapshot()
	ecdf, err := tw.ECDF()
	if err != nil {
		return nil, err
	}
	_, outliers := countStatuses(tw.Records)
	// A sketch-stamped snapshot with no tail ops recovers deep: the
	// demotion that wrote it was the entry's last durable event, so the
	// same windowless sketch representation is restored (the replayed
	// window just served as the rebuild input). Tail ops after a sketch
	// snapshot mean the entry was promoted back for writes before the
	// crash — it recovers exact, matching its pre-crash tier.
	deepSketch := snap.Tier == uint8(TierSketch) && replayed == 0
	sketchTier := forceSketch || deepSketch
	var state *ModelState
	if sketchTier {
		sk, err := stats.SketchFromECDF(ecdf, 0)
		if err != nil {
			return nil, err
		}
		str, base := tw, ecdf
		if deepSketch {
			str = &trace.Trace{Name: snap.Name, Timeout: snap.Timeout}
			base = nil
		}
		state, err = newModelStateSketch(str, sk, base, len(tw.Records), outliers, version)
		if err != nil {
			return nil, err
		}
	} else {
		state, err = newModelStateMerged(tw, ecdf, outliers, version)
		if err != nil {
			return nil, err
		}
	}
	e := &Entry{
		ID:            id,
		Source:        snap.Source,
		Window:        snap.Window,
		timeout:       rolling.Timeout(),
		rebuildEvery:  rebuildEvery,
		maxQueued:     maxQueued,
		rolling:       rolling,
		cursor:        snap.Cursor,
		nextID:        int(snap.NextID),
		wantSketch:    sketchTier,
		policySketch:  forceSketch,
		wal:           log,
		snapshotEvery: snapshotEvery,
		sinceSnap:     replayed, // a long tail compacts on the next rebuild
		replayed:      replayed,
	}
	e.winComplete, e.winOutliers = countStatuses(rolling.Records())
	e.windowRecs.Store(int64(rolling.Len()))
	if deepSketch {
		e.dropWindowLocked()
	}
	e.state.Store(state)
	e.lastUsed.Store(time.Now().UnixNano())
	return e, nil
}

// dropWindowLocked releases the in-memory window buffers after their
// records are durably captured in a tier-stamped snapshot. Caller
// holds ingestMu (or owns the entry exclusively during construction)
// and has already arranged a sketch-tier state whose Trace is a
// records-free header.
func (e *Entry) dropWindowLocked() {
	e.rolling = nil
	e.windowDropped = true
	e.windowRecs.Store(0)
	e.winComplete, e.winOutliers = 0, 0
	e.wantSketch = true
	e.fullRebuild = true // no merge base survives a window drop
}

// State returns the entry's current immutable model snapshot.
func (e *Entry) State() *ModelState { return e.state.Load() }

// walAppend logs one stamped batch with the cursor/ID state it
// advances the entry to. Called before the ack commits, so a log
// failure rejects the batch instead of acknowledging a record the
// crash story cannot reproduce. No-op on a memory-only entry.
func (e *Entry) walAppend(stamped []trace.ProbeRecord, cursor float64, nextID int) error {
	if e.wal == nil {
		return nil
	}
	if err := e.wal.AppendBatch(wal.Batch{Cursor: cursor, NextID: int64(nextID), Records: stamped}); err != nil {
		return fmt.Errorf("%w: wal append: %v", ErrDurability, err)
	}
	return nil
}

// snapshotLocked compacts the entry's durable state: cut the log at
// this instant (under the ack lock, so no append lands between the
// state copy and the cut), then persist window + queue + stamping
// state — stamped with the given representation tier — and delete the
// covered segments. Caller holds ingestMu and the window must still be
// resident (every caller either precedes a window drop or runs on a
// promoted entry).
func (e *Entry) snapshotLocked(version int64, tier ModelTier) error {
	e.qmu.Lock()
	covered, err := e.wal.Cut()
	if err != nil {
		e.qmu.Unlock()
		return err
	}
	recs := make([]trace.ProbeRecord, 0, e.rolling.Len()+len(e.queue))
	recs = append(recs, e.rolling.Records()...)
	recs = append(recs, e.queue...)
	snap := wal.EntrySnapshot{
		Name:    e.rolling.Name(),
		Source:  e.Source,
		Timeout: e.rolling.Timeout(),
		Window:  e.Window,
		Cursor:  e.cursor,
		NextID:  int64(e.nextID),
		Version: version,
		Records: recs,
		Tier:    uint8(tier),
	}
	e.qmu.Unlock()
	return e.wal.WriteSnapshot(snap, covered)
}

// snapshotNow takes the rebuild lock and compacts immediately — the
// registration path uses it to persist the seed state.
//
// Routine snapshots stamp TierExact even under the force-sketch
// policy: the stamp marks a *windowless* (deep-demoted) entry whose
// representation must be restored without re-deriving it, while a
// policy-sketched entry keeps its window resident and the policy
// itself re-applies at recovery. Only the deep demotion path stamps
// TierSketch.
func (e *Entry) snapshotNow() error {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	if e.wal == nil {
		return nil
	}
	return e.snapshotLocked(e.state.Load().Version, TierExact)
}

// closeWAL closes the entry's log (idempotent; no-op without one).
// Eviction and delete call it; the files stay on disk for eviction
// (Restore reopens them) and are removed separately for delete.
func (e *Entry) closeWAL() {
	if e.wal != nil {
		_ = e.wal.Close()
	}
}

// Pending returns the number of acknowledged records not yet applied
// to any model snapshot — the entry's ingest lag.
func (e *Entry) Pending() int {
	e.qmu.Lock()
	defer e.qmu.Unlock()
	return len(e.queue)
}

// countStatuses tallies completed and outlier+fault records.
func countStatuses(recs []trace.ProbeRecord) (completed, outliers int) {
	for _, r := range recs {
		switch r.Status {
		case trace.StatusCompleted:
			completed++
		case trace.StatusOutlier, trace.StatusFault:
			outliers++
		}
	}
	return completed, outliers
}

// ObserveResult summarizes one ingestion batch.
type ObserveResult struct {
	State    *ModelState // snapshot the ack reflects (see Pending)
	Appended int         // records acknowledged from the batch
	Dropped  int         // records the batch's rebuild evicted (0 for queued acks)
	Pending  int         // acknowledged records not yet in State
}

// Observe appends probe records to the entry's rolling window. Record
// IDs and submit times are assigned under the entry's ack lock, so
// concurrent batches interleave cleanly: each record is stamped
// spacing seconds after its predecessor, starting at *start when given
// and right after the newest known record otherwise. Callers only
// provide Latency and Status.
//
// With no rebuild interval configured the call rebuilds the model
// before returning, all-or-nothing: a batch that would leave the
// window without a single completed probe is rejected and the entry
// keeps its previous state. With a rebuild interval the batch is
// stamped, queued and acknowledged immediately — Pending reports the
// queue depth and the async worker folds everything queued within the
// interval into one rebuild (bounded staleness; a queue past the
// entry's record cap forces an inline drain instead).
//
// Observe holds no registry lock, so a batch racing a Delete (or an
// LRU eviction) of the same model can be acknowledged against the
// departing entry; the outcome is identical to the delete landing
// just after the batch, so acknowledged-then-deleted is the same
// at-most-once contract either way.
func (e *Entry) Observe(recs []trace.ProbeRecord, start *float64, spacing float64) (ObserveResult, error) {
	if len(recs) == 0 {
		return ObserveResult{}, fmt.Errorf("server: empty observation batch")
	}
	if spacing <= 0 {
		spacing = 1
	}
	timeout := e.timeout // immutable after construction
	for i, r := range recs {
		if r.Latency < 0 || math.IsNaN(r.Latency) {
			return ObserveResult{}, fmt.Errorf("server: record %d: invalid latency %v", i, r.Latency)
		}
		if r.Status == trace.StatusCompleted && r.Latency > timeout {
			return ObserveResult{}, fmt.Errorf("server: record %d: completed latency %v exceeds timeout %v", i, r.Latency, timeout)
		}
	}
	if start != nil && !(*start >= 0) {
		return ObserveResult{}, fmt.Errorf("server: negative start %v", *start)
	}
	if e.rebuildEvery <= 0 {
		return e.observeSync(recs, start, spacing)
	}
	return e.observeAsync(recs, start, spacing)
}

// observeSync is the synchronous mode: stamp, pre-check, rebuild and
// swap in one critical section, preserving the historical
// all-or-nothing batch contract.
func (e *Entry) observeSync(recs []trace.ProbeRecord, start *float64, spacing float64) (ObserveResult, error) {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	if err := e.promoteLocked(); err != nil {
		return ObserveResult{}, err
	}
	stamped, cursor, nextID, err := e.stamp(recs, start, spacing, true)
	if err != nil {
		return ObserveResult{}, err
	}
	// All-or-nothing pre-check: would the batch leave the window with
	// no completed probe? Cheap — O(evicted + batch) — and it is the
	// only way a rebuild of a validated batch can fail, so checking it
	// up front means nothing below this point needs a rollback.
	newMax := e.rolling.MaxSubmit()
	if s := stamped[len(stamped)-1].Submit; s > newMax {
		newMax = s
	}
	cutoff := newMax - e.Window
	kept := e.winComplete
	for _, r := range e.rolling.Records() {
		if r.Submit >= cutoff {
			break
		}
		if r.Status == trace.StatusCompleted {
			kept--
		}
	}
	for _, r := range stamped {
		if r.Status == trace.StatusCompleted && r.Submit >= cutoff {
			kept++
		}
	}
	if kept == 0 {
		return ObserveResult{}, fmt.Errorf("rebuilding windowed model: %w", trace.ErrNoCompleted)
	}
	if err := e.walAppend(stamped, cursor, nextID); err != nil {
		return ObserveResult{}, err
	}
	e.commitStamp(cursor, nextID)
	state, dropped, err := e.rebuildLocked(stamped, 1)
	if err != nil {
		return ObserveResult{}, err
	}
	return ObserveResult{State: state, Appended: len(stamped), Dropped: dropped}, nil
}

// observeAsync is the decoupled mode: stamp and enqueue under the ack
// lock, make sure a worker is scheduled, and acknowledge. Only a
// queue past the backpressure cap pays for a rebuild inline.
func (e *Entry) observeAsync(recs []trace.ProbeRecord, start *float64, spacing float64) (ObserveResult, error) {
	e.qmu.Lock()
	stamped, cursor, nextID, err := e.stamp(recs, start, spacing, false)
	if err != nil {
		e.qmu.Unlock()
		return ObserveResult{}, err
	}
	if err := e.walAppend(stamped, cursor, nextID); err != nil {
		e.qmu.Unlock()
		return ObserveResult{}, err
	}
	e.commitStamp(cursor, nextID)
	e.queue = append(e.queue, stamped...)
	e.queuedBatches++
	pending := len(e.queue)
	overCap := pending > e.maxQueued
	if !overCap && !e.workerActive {
		e.workerActive = true
		go e.rebuildWorker()
	}
	e.qmu.Unlock()

	if overCap {
		// Backpressure: this ack pays for one coalesced drain so the
		// queue cannot grow without bound. The batch was acknowledged
		// either way, so a degenerate window is not an error here: the
		// previous model stays current (counted in rebuild_failures)
		// and the records stay applied to the buffer.
		state, dropped, _ := e.Flush()
		return ObserveResult{State: state, Appended: len(stamped), Dropped: dropped}, nil
	}
	return ObserveResult{State: e.state.Load(), Appended: len(stamped), Pending: pending}, nil
}

// stamp assigns IDs and submit times to a copy of the batch without
// committing the cursor or ID counter (commitStamp does, so the sync
// path's pre-check can still reject the batch with nothing to roll
// back). haveIngestMu tells the ceiling re-base slow path whether the
// rebuild lock is already held. Callers hold qmu in async mode; in
// sync mode ingestMu alone serializes and qmu is taken as needed.
func (e *Entry) stamp(recs []trace.ProbeRecord, start *float64, spacing float64, haveIngestMu bool) ([]trace.ProbeRecord, float64, int, error) {
	rebased := false
	for {
		cursor, first := e.cursor, 0.0
		if start != nil {
			first = *start
		} else {
			first = cursor + spacing
		}
		// When the default cursor approaches the ceiling, re-base the
		// window onto t = 0: trimming depends only on relative submit
		// times, so shifting every record preserves each decision while
		// resetting the cursor far below the ceiling (the post-trim
		// span is at most the window width) — ingestion can never wedge
		// itself.
		if start == nil && !rebased && first+spacing*float64(len(recs)) > maxTraceSubmit {
			if haveIngestMu {
				e.rebase()
			} else {
				e.qmu.Unlock()
				e.ingestMu.Lock()
				e.rebase()
				e.ingestMu.Unlock()
				e.qmu.Lock()
			}
			rebased = true
			continue
		}
		stamped := make([]trace.ProbeRecord, len(recs))
		id := e.nextID
		c := first
		for i, r := range recs {
			r.ID = id
			r.Submit = c
			id++
			c += spacing
			stamped[i] = r
		}
		last := stamped[len(stamped)-1].Submit
		if c > maxTraceSubmit {
			return nil, 0, 0, fmt.Errorf("server: submit cursor %g past the %g ceiling", c, float64(maxTraceSubmit))
		}
		if last > cursor {
			cursor = last
		}
		return stamped, cursor, id, nil
	}
}

// commitStamp advances the ack cursor and ID counter to the values a
// successful stamp computed.
func (e *Entry) commitStamp(cursor float64, nextID int) {
	e.cursor = cursor
	e.nextID = nextID
}

// rebase shifts the whole window — buffer, queue and cursor — onto
// t = 0. Caller holds ingestMu and must not hold qmu (it is taken
// here, preserving the ingestMu → qmu order).
func (e *Entry) rebase() {
	if err := e.promoteLocked(); err != nil {
		// Without the window the re-base cannot shift; stamping will
		// reject the batch at the ceiling instead of wedging.
		return
	}
	e.qmu.Lock()
	defer e.qmu.Unlock()
	offset := e.rolling.MinSubmit()
	for _, r := range e.queue {
		if r.Submit < offset {
			offset = r.Submit
		}
	}
	e.rolling.Rebase(offset)
	for i := range e.queue {
		e.queue[i].Submit -= offset
	}
	e.cursor -= offset
	if e.wal != nil {
		if err := e.wal.AppendRebase(offset); err != nil {
			// The in-memory window shifted but the log missed the op;
			// force a compaction on the next rebuild so the snapshot
			// re-captures the shifted state and heals the divergence.
			e.sinceSnap = e.snapshotEvery
		}
	}
}

// rebuildWorker drains the ingest queue on the entry's rebuild
// interval, folding every batch acknowledged within an interval into
// one rebuild, and exits once the queue is empty (the next ack
// schedules a fresh worker — idle entries carry no goroutine).
func (e *Entry) rebuildWorker() {
	for {
		time.Sleep(e.rebuildEvery)
		e.ingestMu.Lock()
		e.qmu.Lock()
		recs, batches := e.queue, e.queuedBatches
		e.queue, e.queuedBatches = nil, 0
		e.qmu.Unlock()
		if len(recs) > 0 {
			_, _, _ = e.rebuildLocked(recs, batches) // failure keeps the last good model; counted
		}
		e.ingestMu.Unlock()

		e.qmu.Lock()
		if len(e.queue) == 0 {
			e.workerActive = false
			e.qmu.Unlock()
			return
		}
		e.qmu.Unlock()
	}
}

// Flush applies every queued record now, returning the resulting
// snapshot and the number of records its rebuild evicted — the
// bounded-staleness escape hatch (the handler's sync=true, the
// backpressure path and the tests use it). With an empty queue it
// returns the current snapshot untouched. An error means the drained
// window could not support a model: the records stay applied to the
// buffer (they were acknowledged), the previous snapshot stays
// current, and the failure is counted in rebuild_failures.
func (e *Entry) Flush() (*ModelState, int, error) {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	e.qmu.Lock()
	recs, batches := e.queue, e.queuedBatches
	e.queue, e.queuedBatches = nil, 0
	e.qmu.Unlock()
	if len(recs) == 0 {
		return e.state.Load(), 0, nil
	}
	return e.rebuildLocked(recs, batches)
}

// rebuildLocked is the incremental rebuild: append the drained
// records to the rolling buffer, trim the window, merge the
// predecessor's ECDF forward (additions in, evictions out — no
// re-sort), prewarm the successor's kernels from the predecessor's
// table manifest, and atomically swap the new ModelState in. Caller
// holds ingestMu. On failure (a window left without completed probes)
// the previous state stays current, the buffer keeps the new records,
// and the next successful rebuild resorts from the flat window.
func (e *Entry) rebuildLocked(recs []trace.ProbeRecord, batches int) (*ModelState, int, error) {
	// A deep-demoted entry replays its window back first: the WAL is
	// the source of truth, so promotion restores exactly the buffer the
	// demotion captured (bit-equal by the recovery guarantee).
	if e.windowDropped {
		if err := e.promoteLocked(); err != nil {
			e.rebuildFails.Add(1)
			return e.state.Load(), 0, fmt.Errorf("rebuilding windowed model: %w", err)
		}
		// Every record drained into recs was acknowledged — and WAL-
		// appended — while the window was dropped, so the promotion
		// replay has already folded it into the buffer; appending it
		// again would double-count. The rebuild below still runs to
		// publish a fresh snapshot over the replayed window.
		recs = nil
	}
	old := e.state.Load()
	e.rolling.Append(recs)
	evicted := e.rolling.Trim()
	e.windowRecs.Store(int64(e.rolling.Len()))
	addC, addO := countStatuses(recs)
	dropC, dropO := countStatuses(evicted)
	e.winComplete += addC - dropC
	e.winOutliers += addO - dropO

	var (
		ecdf = old.ecdf
		err  error
	)
	switch {
	case e.fullRebuild || old.ecdf == nil || !old.ecdf.Counted():
		ecdf, err = e.rolling.Snapshot().ECDF()
	default:
		ecdf, err = old.ecdf.MergeSortedEvict(completedLatencies(recs), completedLatencies(evicted))
		if err != nil {
			// The merge chain is the fast path, not the source of
			// truth: any mismatch falls back to a flat rebuild.
			ecdf, err = e.rolling.Snapshot().ECDF()
		}
	}
	if err != nil {
		e.fullRebuild = true
		e.rebuildFails.Add(1)
		return old, len(evicted), fmt.Errorf("rebuilding windowed model: %w", err)
	}
	// Warm-cache handoff: rebuild the outgoing epoch's integral
	// kernels — and, when it ever sampled, the sampler table — on the
	// incoming ECDF before the swap, so the first post-swap query
	// costs a binary search, not an O(n) table build. Tables the old
	// epoch never built are not built here either. Sketch-tier
	// successors skip the handoff entirely: their queries run on the
	// sketch view, so prewarming the merge-base ECDF would rebuild the
	// very tables demotion exists to shed.
	if !e.wantSketch && old.ecdf != nil {
		ecdf.Prewarm(old.ecdf.TableKeys())
		if old.ecdf.SamplerWarm() {
			ecdf.PrewarmSampler()
		}
	}
	var state *ModelState
	if e.wantSketch {
		var sk *stats.Sketch
		sk, err = stats.SketchFromECDF(ecdf, 0)
		if err == nil {
			tw := e.rolling.Snapshot()
			state, err = newModelStateSketch(tw, sk, ecdf, len(tw.Records), e.winOutliers, old.Version+1)
		}
	} else {
		state, err = newModelStateMerged(e.rolling.Snapshot(), ecdf, e.winOutliers, old.Version+1)
	}
	if err != nil {
		e.fullRebuild = true
		e.rebuildFails.Add(1)
		return old, len(evicted), fmt.Errorf("rebuilding windowed model: %w", err)
	}
	e.state.Store(state)
	e.fullRebuild = false
	e.rebuilds.Add(1)
	if batches > 1 {
		e.coalesced.Add(uint64(batches - 1))
	}
	// Compaction cadence: once enough records have accumulated since
	// the last snapshot, fold them into a fresh one (best-effort — a
	// failed compaction keeps the old snapshot plus the tail, which
	// replays to the same state).
	if e.wal != nil {
		e.sinceSnap += len(recs)
		if e.sinceSnap >= e.snapshotEvery {
			if err := e.snapshotLocked(state.Version, TierExact); err == nil {
				e.sinceSnap = 0
			}
		}
	}
	return state, len(evicted), nil
}

// completedLatencies returns the sorted completed-probe latencies of a
// record slice — the add/evict operands of the ECDF merge.
func completedLatencies(recs []trace.ProbeRecord) []float64 {
	var out []float64
	for _, r := range recs {
		if r.Status == trace.StatusCompleted {
			out = append(out, r.Latency)
		}
	}
	sort.Float64s(out)
	return out
}
