package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"mime"
	"net/http"
	"strconv"
	"time"

	"gridstrat"
	"gridstrat/internal/trace"
)

// statusClientClosedRequest is the nginx-convention status reported
// when the client went away before the computation finished (there is
// no standard code for it; 499 is the de-facto one).
const statusClientClosedRequest = 499

// maxObservationBatch caps the records one ingestion batch may carry.
const maxObservationBatch = 1 << 20

// maxSubmitTime bounds explicit start_s values (~31,000 years in
// seconds) so submit cursors stay far below float64's 2^53 integer
// precision limit.
const maxSubmitTime = 1e12

// maxSpacing bounds spacing_s (~11.6 days between probes). Together
// with maxSubmitTime and maxObservationBatch it keeps the submit
// cursor exact: 1e12 + 2^20·1e6 ≈ 1.05e12 per batch stays far below
// 2^53, and Entry.Observe re-bases the window near its absolute
// ceiling so the cursor can never drift there across batches.
const maxSpacing = 1e6

// maxStationarityWindows caps the window count a stationarity query
// may sweep: the WindowStats advance loop walks one window at a time
// across the trace's submit span, so an adversarially tiny width
// against a long trace would otherwise pin a CPU with no cancellation
// point.
const maxStationarityWindows = 100_000

// writeJSON serializes v with the given status through the pooled
// response encoder (see pool.go): the body is framed with an explicit
// Content-Length and written in one call.
func writeJSON(w http.ResponseWriter, status int, v any) {
	writeJSONBody(w, status, v)
}

// writeError emits the uniform error envelope.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorEnvelope{Error: ErrorBody{Code: code, Message: msg}})
}

// computeErrEnvelope maps an error from planning/simulation work to
// its envelope parts: context cancellation becomes 499 (client closed)
// or 504 (deadline), registry misses 404, refused durable acks 503,
// everything else 422 — the request was well-formed but the
// computation rejected it (unparameterized strategy, no strategy
// within budget, no success mass, …). failCompute writes it as a
// response; the batch endpoint embeds it per item.
func computeErrEnvelope(err error) (status int, code, msg string) {
	switch {
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest, "cancelled", "request cancelled: " + err.Error()
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded", err.Error()
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound, "not_found", err.Error()
	case errors.Is(err, ErrDurability):
		// The ack was refused because the durable log could not take
		// the batch (disk full, fsync failure, poisoned segment); the
		// records were NOT acknowledged, so the caller may retry once
		// the storage recovers.
		return http.StatusServiceUnavailable, "storage_error", err.Error()
	default:
		return http.StatusUnprocessableEntity, "unprocessable", err.Error()
	}
}

// failCompute writes the envelope computeErrEnvelope maps err to.
func failCompute(w http.ResponseWriter, r *http.Request, err error) {
	status, code, msg := computeErrEnvelope(err)
	writeError(w, status, code, msg)
}

// decodeJSON decodes the request body into v under the configured
// size cap. An entirely empty body is allowed when allowEmpty is set
// (endpoints whose every field is optional).
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any, allowEmpty bool) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	err := json.NewDecoder(r.Body).Decode(v)
	if err == nil {
		return nil
	}
	if errors.Is(err, io.EOF) && allowEmpty {
		return nil
	}
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeError(w, http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
		return err
	}
	writeError(w, http.StatusBadRequest, "bad_request", "malformed JSON body: "+err.Error())
	return err
}

// submitSpan returns the submit-time extent of a trace's records.
func submitSpan(tr *trace.Trace) float64 {
	if len(tr.Records) == 0 {
		return 0
	}
	lo, hi := tr.Records[0].Submit, tr.Records[0].Submit
	for _, rec := range tr.Records[1:] {
		if rec.Submit < lo {
			lo = rec.Submit
		}
		if rec.Submit > hi {
			hi = rec.Submit
		}
	}
	return hi - lo
}

// checkReady gates model routes while a WAL replay is in flight: the
// registry is still filling, so a miss would be indistinguishable
// from a deleted model. 503 plus the "recovering" health status lets
// a router keep the backend out of rotation until it is whole.
func (s *Server) checkReady(w http.ResponseWriter) bool {
	if s.recovering.Load() {
		writeError(w, http.StatusServiceUnavailable, "recovering",
			"wal replay in progress; retry shortly")
		return false
	}
	return true
}

// entryFor resolves the {id} path segment against the registry,
// writing the 404 envelope on a miss. On a durable registry a miss
// first tries a restore from disk — an LRU-evicted model is a cache
// miss, not a gone model. The same lazy restore is what lets model
// routes keep serving during a boot WAL replay: a model the replay
// has not reached yet is restored on demand and answers degraded
// ("recovering") instead of 503ing, and a genuinely absent model is a
// real 404 even mid-replay because the durable store is consulted
// directly.
func (s *Server) entryFor(w http.ResponseWriter, r *http.Request) (*Entry, bool) {
	id := r.PathValue("id")
	e, err := s.reg.Get(id)
	if err != nil {
		e, err = s.reg.Restore(id)
	}
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			writeError(w, http.StatusNotFound, "not_found", err.Error())
		} else {
			writeError(w, http.StatusUnprocessableEntity, "unprocessable", err.Error())
		}
		return nil, false
	}
	return e, true
}

// walStatus renders the durability state for /v1/healthz.
func (s *Server) walStatus() string {
	switch {
	case s.reg.walStore == nil:
		return "disabled"
	case s.recovering.Load():
		return "recovering"
	default:
		return "ready"
	}
}

// handleHealth serves GET /healthz and GET /v1/healthz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:  "ok",
		Version: Version,
		Models:  s.reg.Len(),
		UptimeS: time.Since(s.start).Seconds(),
		WAL:     s.walStatus(),
	})
}

// handleStats serves GET /v1/stats: the per-shard registry counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	shards := s.reg.Stats()
	var totals ShardStats
	for _, sh := range shards {
		totals.Models += sh.Models
		totals.Hits += sh.Hits
		totals.Misses += sh.Misses
		totals.Evictions += sh.Evictions
		totals.IngestBatches += sh.IngestBatches
		totals.IngestRecords += sh.IngestRecords
		totals.Rebuilds += sh.Rebuilds
		totals.CoalescedBatches += sh.CoalescedBatches
		totals.RebuildFailures += sh.RebuildFailures
		totals.QueuedRecords += sh.QueuedRecords
		totals.WALAppends += sh.WALAppends
		totals.WALSnapshotBytes += sh.WALSnapshotBytes
		totals.ReplayedRecords += sh.ReplayedRecords
		totals.ResidentBytes += sh.ResidentBytes
		totals.ModelsExact += sh.ModelsExact
		totals.ModelsSketch += sh.ModelsSketch
		totals.Demotions += sh.Demotions
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeS:    time.Since(s.start).Seconds(),
		Models:     totals.Models,
		Capacity:   s.reg.Capacity(),
		Shards:     shards,
		Totals:     totals,
		Resilience: s.resilienceStats(),
		Batch:      s.batchStats(),
	})
}

// handleCreateModel serves POST /v1/models. Two request shapes are
// accepted: an application/json body (CreateModelRequest, with the
// trace document inline for uploads), or a raw trace document in any
// other content type with ?id=, ?format= and optional ?window_s=
// query parameters — the curl-friendly upload path.
func (s *Server) handleCreateModel(w http.ResponseWriter, r *http.Request) {
	if !s.checkReady(w) {
		return
	}
	var req CreateModelRequest
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil {
		ct = mt // strip parameters like "; charset=utf-8"
	}
	if ct == "" || ct == "application/json" {
		if err := s.decodeJSON(w, r, &req, false); err != nil {
			return
		}
	} else {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		raw, err := io.ReadAll(r.Body)
		if err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				writeError(w, http.StatusRequestEntityTooLarge, "too_large",
					fmt.Sprintf("trace upload exceeds %d bytes", tooLarge.Limit))
				return
			}
			writeError(w, http.StatusBadRequest, "bad_request", "reading trace upload: "+err.Error())
			return
		}
		q := r.URL.Query()
		req = CreateModelRequest{ID: q.Get("id"), Format: q.Get("format"), Trace: string(raw)}
		if ws := q.Get("window_s"); ws != "" {
			v, err := strconv.ParseFloat(ws, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad_request", "bad window_s: "+err.Error())
				return
			}
			req.WindowS = v
		}
	}

	if req.ID == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "missing model id")
		return
	}
	if (req.Dataset == "") == (req.Trace == "") {
		writeError(w, http.StatusBadRequest, "bad_request",
			"exactly one of dataset or trace (with format) must be provided")
		return
	}

	var (
		tr     *trace.Trace
		source string
		err    error
	)
	if req.Dataset != "" {
		tr, err = gridstrat.SynthesizeDataset(req.Dataset)
		source = "dataset:" + req.Dataset
	} else {
		tr, err = parseTrace(req.Format, req.Trace)
		source = "upload:" + req.Format
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}

	window := req.WindowS
	if window == 0 {
		window = s.cfg.DefaultWindow
	}
	e, err := s.reg.Put(req.ID, source, window, tr)
	if err != nil {
		switch {
		case errors.Is(err, ErrExists):
			writeError(w, http.StatusConflict, "conflict", err.Error())
		case errors.Is(err, ErrInvalid):
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		default:
			writeError(w, http.StatusUnprocessableEntity, "unprocessable",
				"building model: "+err.Error())
		}
		return
	}
	writeJSON(w, http.StatusCreated, modelInfo(e))
}

// handleListModels serves GET /v1/models.
func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	if !s.checkReady(w) {
		return
	}
	resp := ListModelsResponse{Models: []ModelInfo{}}
	for _, e := range s.reg.List() {
		resp.Models = append(resp.Models, modelInfo(e))
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleGetModel serves GET /v1/models/{id}. With ?window_s=<width>
// the response also carries a stationarity report of the model's
// trace at that analysis window.
func (s *Server) handleGetModel(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entryFor(w, r)
	if !ok {
		return
	}
	// One snapshot load for both the info and the stationarity report,
	// so a concurrent ingestion swap cannot make the response describe
	// two different windows.
	st := e.State()
	info := modelInfoAt(e, st)
	if ws, _ := queryValue(r.URL.RawQuery, "window_s"); ws != "" {
		width, err := strconv.ParseFloat(ws, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "bad window_s: "+err.Error())
			return
		}
		if width <= 0 || math.IsNaN(width) {
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("window_s must be positive, got %v", width))
			return
		}
		if span := submitSpan(st.Trace); span/width > maxStationarityWindows {
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("window_s %v sweeps more than %d windows over the trace's %.0f s submit span",
					width, maxStationarityWindows, span))
			return
		}
		rep, err := gridstrat.AnalyzeStationarity(st.Trace, width)
		if err != nil {
			failCompute(w, r, err)
			return
		}
		info.Stationarity = &StationarityJSON{
			Windows:      rep.Windows,
			MeanDrift:    rep.MeanDrift,
			RhoDrift:     rep.RhoDrift,
			TrendPValue:  rep.MeanTrend.PValue,
			TrendSlopeS:  rep.TrendSlope,
			TrendRising:  rep.TrendSlope > 0,
			WindowWidthS: width,
		}
	}
	info.DegradedReason, info.Degraded = s.degradedOf(e, st)
	writeJSON(w, http.StatusOK, info)
}

// handleDeleteModel serves DELETE /v1/models/{id}.
func (s *Server) handleDeleteModel(w http.ResponseWriter, r *http.Request) {
	if !s.checkReady(w) {
		return
	}
	if !s.reg.Delete(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("%s: %q", ErrNotFound.Error(), r.PathValue("id")))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleRecommend serves POST /v1/models/{id}/recommend.
//
// The option-free request — the serving hot path — is answered from
// the snapshot's cached default recommendation: the first hit on a
// fresh snapshot computes it through the snapshot's shared Planner and
// caches the complete response bytes, and every later hit replays them
// without building a Planner, running the advisor, or encoding JSON.
// Requests with options (or cheapest, or a degraded snapshot) take the
// full per-request path.
func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entryFor(w, r)
	if !ok {
		return
	}
	var req RecommendRequest
	if err := s.decodeJSONPooled(w, r, &req, true); err != nil {
		return
	}
	st := e.State()
	if req.Options == nil && !req.Cheapest {
		// The cached answer is computed under a background context, so
		// honor the request's cancellation explicitly — an abandoned
		// request must still map to the 499/504 envelope.
		if err := r.Context().Err(); err != nil {
			failCompute(w, r, err)
			return
		}
		_, body, err := st.defaultRecommend(e.ID)
		if err != nil {
			failCompute(w, r, err)
			return
		}
		if reason, degraded := s.degradedOf(e, st); degraded {
			// Degraded answers carry per-request fields the cached
			// bytes cannot; re-render around the cached computation.
			resp := RecommendResponse{
				Model:          e.ID,
				Version:        st.Version,
				Recommendation: st.recEnvelope,
				Degraded:       degraded,
				DegradedReason: reason,
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
		writeRawJSON(w, http.StatusOK, body)
		return
	}
	p, err := s.plannerFor(r, st, req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	var rec gridstrat.Recommendation
	if req.Cheapest {
		rec, err = p.RecommendCheapest()
	} else {
		rec, err = p.Recommend()
	}
	if err != nil {
		failCompute(w, r, err)
		return
	}
	resp := RecommendResponse{
		Model:          e.ID,
		Version:        st.Version,
		Recommendation: recToJSON(rec),
	}
	resp.DegradedReason, resp.Degraded = s.degradedOf(e, st)
	writeJSON(w, http.StatusOK, resp)
}

// handleRank serves POST /v1/models/{id}/rank.
func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entryFor(w, r)
	if !ok {
		return
	}
	var req RankRequest
	if err := s.decodeJSONPooled(w, r, &req, true); err != nil {
		return
	}
	var strategies []gridstrat.Strategy
	for i, sp := range req.Strategies {
		st, err := sp.toStrategy()
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("strategies[%d]: %v", i, err))
			return
		}
		strategies = append(strategies, st)
	}
	st := e.State()
	p, err := s.plannerFor(r, st, req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	ranked, err := p.Rank(strategies...)
	if err != nil {
		failCompute(w, r, err)
		return
	}
	resp := RankResponse{Model: e.ID, Version: st.Version, Ranking: []RankedJSON{}}
	for _, rs := range ranked {
		resp.Ranking = append(resp.Ranking, RankedJSON{
			StrategySpec: specOf(rs.Strategy),
			Eval:         evalToJSON(rs.Eval),
			DeltaCost:    rs.Delta,
		})
	}
	resp.DegradedReason, resp.Degraded = s.degradedOf(e, st)
	writeJSON(w, http.StatusOK, resp)
}

// handleOptimize serves POST /v1/models/{id}/optimize: tune the
// strategy's free parameters on the model.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entryFor(w, r)
	if !ok {
		return
	}
	var req OptimizeRequest
	if err := s.decodeJSONPooled(w, r, &req, false); err != nil {
		return
	}
	strat, err := req.Strategy.toStrategy()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	st := e.State()
	p, err := s.plannerFor(r, st, req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	tuned, ev, err := p.Optimize(strat)
	if err != nil {
		failCompute(w, r, err)
		return
	}
	resp := OptimizeResponse{
		Model:    e.ID,
		Version:  st.Version,
		Strategy: specOf(tuned),
		Eval:     evalToJSON(ev),
	}
	resp.DegradedReason, resp.Degraded = s.degradedOf(e, st)
	writeJSON(w, http.StatusOK, resp)
}

// handleSimulate serves POST /v1/models/{id}/simulate: a Monte Carlo
// replay of a fully parameterized strategy.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entryFor(w, r)
	if !ok {
		return
	}
	var req SimulateRequest
	if err := s.decodeJSONPooled(w, r, &req, false); err != nil {
		return
	}
	if req.Runs <= 0 {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("runs must be positive, got %d", req.Runs))
		return
	}
	if req.Runs > s.cfg.MaxRuns {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("runs %d exceeds the per-request cap %d", req.Runs, s.cfg.MaxRuns))
		return
	}
	strat, err := req.Strategy.toStrategy()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	// An omitted seed draws a fresh one per request (the Planner's
	// default RNG is fixed, which would make every unseeded replay
	// byte-identical); echoing it in the response keeps even unseeded
	// runs reproducible after the fact.
	if req.Options == nil {
		req.Options = &Options{}
	}
	if req.Options.Seed == nil {
		seed := rand.Uint64()
		req.Options.Seed = &seed
	}
	st := e.State()
	p, err := s.plannerFor(r, st, req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	res, err := p.Simulate(strat, req.Runs)
	if err != nil {
		failCompute(w, r, err)
		return
	}
	resp := SimulateResponse{
		Model:   e.ID,
		Version: st.Version,
		Seed:    *req.Options.Seed,
		Result: SimResultJSON{
			Runs:            res.Runs,
			EJS:             res.EJ,
			SigmaS:          res.Sigma,
			StdErrS:         res.StdErr,
			MeanSubmissions: res.MeanSubmissions,
			MeanParallel:    res.MeanParallel,
		},
	}
	resp.DegradedReason, resp.Degraded = s.degradedOf(e, st)
	writeJSON(w, http.StatusOK, resp)
}

// handleMakespan serves POST /v1/models/{id}/makespan.
func (s *Server) handleMakespan(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entryFor(w, r)
	if !ok {
		return
	}
	var req MakespanRequest
	if err := s.decodeJSON(w, r, &req, false); err != nil {
		return
	}
	if req.MaxB < 0 {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("max_b must be >= 0, got %d", req.MaxB))
		return
	}
	if req.MaxB > 0 && req.Strategy != nil {
		writeError(w, http.StatusBadRequest, "bad_request",
			"max_b and strategy are mutually exclusive")
		return
	}
	app := gridstrat.Application{
		Tasks:     req.App.Tasks,
		WaveWidth: req.App.WaveWidth,
		Runtime:   req.App.RuntimeS,
	}
	if err := app.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	st := e.State()
	p, err := s.plannerFor(r, st, req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}

	resp := MakespanResponse{Model: e.ID, Version: st.Version}
	var est gridstrat.MakespanEstimate
	switch {
	case req.MaxB > 0:
		resp.B, est, err = p.SmallestCollection(app, req.MaxB)
		if err == nil && resp.B == 0 {
			writeError(w, http.StatusUnprocessableEntity, "unprocessable",
				fmt.Sprintf("no collection size up to %d meets the deadline", req.MaxB))
			return
		}
	case req.Strategy != nil:
		var strat gridstrat.Strategy
		strat, err = req.Strategy.toStrategy()
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		est, err = p.EstimateMakespanUnder(app, strat)
	default:
		est, err = p.EstimateMakespan(app)
	}
	if err != nil {
		failCompute(w, r, err)
		return
	}
	resp.Estimate = MakespanJSON{
		Strategy:     est.Strategy,
		MakespanS:    est.Makespan,
		PerWaveS:     est.PerWave,
		GridLoad:     est.GridLoad,
		TotalTaskSec: est.TotalTaskSec,
	}
	resp.DegradedReason, resp.Degraded = s.degradedOf(e, st)
	writeJSON(w, http.StatusOK, resp)
}

// handleObservations serves POST /v1/models/{id}/observations: append
// one batch of fresh probe outcomes and swap in the rebuilt
// rolling-window model.
func (s *Server) handleObservations(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entryFor(w, r)
	if !ok {
		return
	}
	var req ObserveRequest
	if err := s.decodeJSONPooled(w, r, &req, false); err != nil {
		return
	}
	if len(req.Latencies)+req.Outliers == 0 {
		writeError(w, http.StatusBadRequest, "bad_request",
			"empty batch: provide latencies and/or outliers")
		return
	}
	if req.Outliers < 0 {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("outliers must be >= 0, got %d", req.Outliers))
		return
	}
	// The latency list is bounded by the body cap, but the outlier
	// count is a bare integer — without this cap a 40-byte request
	// could demand gigabytes of records. Each term is checked before
	// the sum so a MaxInt-scale outlier count cannot overflow past the
	// guard into a makeslice panic.
	if req.Outliers > maxObservationBatch || len(req.Latencies) > maxObservationBatch ||
		len(req.Latencies)+req.Outliers > maxObservationBatch {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("batch of %d + %d records exceeds the cap %d",
				len(req.Latencies), req.Outliers, maxObservationBatch))
		return
	}
	if req.SpacingS < 0 || math.IsNaN(req.SpacingS) || req.SpacingS > maxSpacing {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("spacing_s must be within [0, %g], got %v", float64(maxSpacing), req.SpacingS))
		return
	}
	// start_s must stay in a range where cursor arithmetic is exact:
	// past ~2^53 adding the spacing no longer changes the float64
	// cursor, which would freeze the rolling-window cutoff onto every
	// future record and silently stop regimes from aging out.
	if req.StartS != nil && !(*req.StartS >= 0 && *req.StartS <= maxSubmitTime) {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("start_s must be within [0, %g], got %v", maxSubmitTime, *req.StartS))
		return
	}
	timeout := e.State().Trace.Timeout
	recs := make([]trace.ProbeRecord, 0, len(req.Latencies)+req.Outliers)
	for i, lat := range req.Latencies {
		if lat < 0 || math.IsNaN(lat) || lat > timeout {
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("latencies[%d] = %v outside [0, timeout %v]", i, lat, timeout))
			return
		}
		recs = append(recs, trace.ProbeRecord{Latency: lat, Status: trace.StatusCompleted})
	}
	for i := 0; i < req.Outliers; i++ {
		recs = append(recs, trace.ProbeRecord{Latency: timeout, Status: trace.StatusOutlier})
	}
	res, err := e.Observe(recs, req.StartS, req.SpacingS)
	if err != nil {
		failCompute(w, r, err)
		return
	}
	s.reg.noteIngest(e.ID, res.Appended)
	if req.Sync && res.Pending > 0 {
		// The batch was acknowledged into the async queue; the caller
		// asked for its effect, so drain the queue before answering.
		// A failed drain (degenerate window) is NOT an error response:
		// the records were acknowledged and applied to the buffer, so
		// a non-2xx here would invite clients to re-post an ingested
		// batch. The unchanged version reports that no model was
		// built; rebuild_failures in /v1/stats counts it.
		st, dropped, err := e.Flush()
		if err == nil {
			res.Dropped += dropped
		}
		res.State, res.Pending = st, e.Pending()
	}
	writeJSON(w, http.StatusOK, ObserveResponse{
		Model:         e.ID,
		Version:       res.State.Version,
		Appended:      res.Appended,
		Dropped:       res.Dropped,
		Pending:       res.Pending,
		WindowRecords: len(res.State.Trace.Records),
		Stats:         statsToJSON(res.State.Stats),
	})
}
