package server

import (
	"context"
	"math"
	"math/rand"
	"os"
	"testing"

	"gridstrat"
)

// Tiering tests: the exact ⇄ sketch state machine, byte-pressure
// enforcement, and the bit-equality contract of a deep demotion's
// promote-for-write replay.

// TestForceSketchRegistration: with the force-sketch policy every
// model registers, ingests and reports in the sketch tier.
func TestForceSketchRegistration(t *testing.T) {
	s, _, c := newTestServerCfg(t, Config{SketchTier: true})
	e, err := s.Registry().Put("m", "test", 4000, synthTrace("m", 80, 4, 1))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if got := e.State().Tier; got != TierSketch {
		t.Fatalf("tier after Put: %v", got)
	}
	if _, err := e.Observe(randomBatch(rand.New(rand.NewSource(2)), 20), nil, 5); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if got := e.State().Tier; got != TierSketch {
		t.Fatalf("tier after Observe: %v", got)
	}
	// The policy-sketched window stays resident: this is the shallow
	// form, exactness is one flat rebuild away.
	if e.windowRecs.Load() == 0 {
		t.Fatal("force-sketch entry dropped its window")
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Totals.ModelsSketch != 1 || st.Totals.ModelsExact != 0 {
		t.Fatalf("totals: exact %d, sketch %d", st.Totals.ModelsExact, st.Totals.ModelsSketch)
	}
	if st.Totals.ResidentBytes <= 0 {
		t.Fatalf("resident_bytes = %d", st.Totals.ResidentBytes)
	}
	info, err := c.GetModel(context.Background(), "m", 0)
	if err != nil {
		t.Fatalf("GetModel: %v", err)
	}
	if info.Tier != "sketch" {
		t.Fatalf("wire tier = %q", info.Tier)
	}
}

// TestShallowDemotion: on a memory-only registry a demotion keeps the
// window resident but swaps queries onto the sketch and sheds the
// exact representation's kernel tables.
func TestShallowDemotion(t *testing.T) {
	s := MustNew(Config{})
	e, err := s.Registry().Put("m", "test", 1e6, synthTrace("m", 2000, 40, 3))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Build some kernel tables so the demotion has something to shed.
	st := e.State()
	p, err := gridstrat.NewPlanner(st.Model)
	if err != nil {
		t.Fatalf("planner: %v", err)
	}
	if _, err := p.Recommend(); err != nil {
		t.Fatalf("recommend: %v", err)
	}
	before := e.MemBytes()
	if !e.demote() {
		t.Fatal("demote returned false")
	}
	if e.demote() {
		t.Fatal("second demote of a sketch entry returned true")
	}
	after := e.State()
	if after.Tier != TierSketch {
		t.Fatalf("tier = %v", after.Tier)
	}
	if e.windowRecs.Load() == 0 || e.windowDropped {
		t.Fatal("shallow demotion dropped the window")
	}
	if len(after.Trace.Records) == 0 {
		t.Fatal("shallow demotion lost the window trace")
	}
	if got := e.MemBytes(); got >= before {
		t.Fatalf("MemBytes did not shrink: %d -> %d", before, got)
	}
	// The sketch-backed model still answers planner questions.
	p2, err := gridstrat.NewPlanner(after.Model)
	if err != nil {
		t.Fatalf("planner on sketch: %v", err)
	}
	if _, err := p2.Recommend(); err != nil {
		t.Fatalf("recommend on sketch: %v", err)
	}
}

// TestDeepDemotionPromotionBitEqual is the tentpole pin for tiering on
// a durable registry: a deep demotion sheds the window into a
// tier-stamped WAL snapshot, and the promotion a later write triggers
// replays it back so the rebuilt exact model is bit-equal to a twin
// that was never demoted.
func TestDeepDemotionPromotionBitEqual(t *testing.T) {
	mk := func(dir string) (*Server, *Entry) {
		s := recoverServer(t, Config{WALDir: dir, WALSync: "none", SnapshotEvery: 150})
		e, err := s.Registry().Put("m", "test", 4000, synthTrace("m", 80, 4, 1))
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		return s, e
	}
	_, demoted := mk(t.TempDir())
	_, twin := mk(t.TempDir())

	// Identical ingest history on both entries.
	observe := func(e *Entry, seed int64, rounds int) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < rounds; i++ {
			if _, err := e.Observe(randomBatch(rng, 25), nil, 3); err != nil {
				t.Fatalf("Observe: %v", err)
			}
		}
	}
	observe(demoted, 7, 20)
	observe(twin, 7, 20)

	exactBytes := demoted.MemBytes()
	if !demoted.demote() {
		t.Fatal("demote returned false")
	}
	st := demoted.State()
	if st.Tier != TierSketch {
		t.Fatalf("tier = %v", st.Tier)
	}
	if len(st.Trace.Records) != 0 {
		t.Fatalf("deep demotion kept %d window records in the state", len(st.Trace.Records))
	}
	if !demoted.windowDropped || demoted.rolling != nil {
		t.Fatal("deep demotion did not drop the rolling buffer")
	}
	// The window here is small (n < k, no compaction), so the sketch
	// retains every value; the big ratios come from large windows and
	// are pinned by the tiering benchmark. Even so the window records
	// and rolling buffer must be gone.
	if got := demoted.MemBytes(); got >= exactBytes/2 {
		t.Fatalf("deep demotion freed too little: %d -> %d", exactBytes, got)
	}
	// Stats survive windowlessly: probe counts come from the sketch.
	if st.Stats.Probes == 0 {
		t.Fatal("sketch state lost the probe count")
	}
	// The sketched model still answers queries.
	p, err := gridstrat.NewPlanner(st.Model)
	if err != nil {
		t.Fatalf("planner on sketch: %v", err)
	}
	if _, err := p.Recommend(); err != nil {
		t.Fatalf("recommend on sketch: %v", err)
	}

	// One more identical batch on both: the demoted entry promotes
	// (WAL replay) before the write, and both land on the same bits.
	observe(demoted, 8, 1)
	observe(twin, 8, 1)
	a, b := demoted.State(), twin.State()
	if a.Tier != TierExact {
		t.Fatalf("post-write tier = %v", a.Tier)
	}
	requireECDFBitEqual(t, b.ecdf, a.ecdf)
	if math.Float64bits(demoted.cursor) != math.Float64bits(twin.cursor) {
		t.Fatalf("cursor: %v vs %v", demoted.cursor, twin.cursor)
	}
	if demoted.nextID != twin.nextID {
		t.Fatalf("nextID: %d vs %d", demoted.nextID, twin.nextID)
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverged:\npromoted %+v\ntwin     %+v", a.Stats, b.Stats)
	}
}

// TestDeepDemotionRecoveryRestoresTier: the tier stamp on the WAL
// snapshot makes recovery representation-faithful. A crash after a
// deep demotion recovers windowless sketch; a crash after the entry
// was promoted back recovers exact.
func TestDeepDemotionRecoveryRestoresTier(t *testing.T) {
	cfg := Config{WALDir: t.TempDir(), WALSync: "none", SnapshotEvery: 1 << 20}
	s1 := recoverServer(t, cfg)
	e1, err := s1.Registry().Put("m", "test", 4000, synthTrace("m", 80, 4, 1))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		if _, err := e1.Observe(randomBatch(rng, 20), nil, 3); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	if !e1.demote() {
		t.Fatal("demote returned false")
	}

	// Crash while demoted: the sketch-stamped snapshot is the last
	// durable event, so recovery restores the windowless sketch tier.
	s2 := recoverServer(t, cfg)
	e2, err := s2.Registry().Get("m")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got := e2.State().Tier; got != TierSketch {
		t.Fatalf("recovered tier = %v", got)
	}
	if !e2.windowDropped {
		t.Fatal("recovered entry kept a window after a sketch-stamped snapshot")
	}
	if e2.MemBytes() >= e1.MemBytes()*4 {
		t.Fatalf("recovered sketch entry is not small: %d", e2.MemBytes())
	}

	// A write promotes it; a second crash now has tail ops after the
	// sketch snapshot, so recovery restores the exact tier.
	if _, err := e2.Observe(randomBatch(rng, 20), nil, 3); err != nil {
		t.Fatalf("Observe after recovery: %v", err)
	}
	if got := e2.State().Tier; got != TierExact {
		t.Fatalf("post-write tier = %v", got)
	}
	s3 := recoverServer(t, cfg)
	e3, err := s3.Registry().Get("m")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got := e3.State().Tier; got != TierExact {
		t.Fatalf("tier after promote+crash = %v", got)
	}
	requireECDFBitEqual(t, e2.State().ecdf, e3.State().ecdf)
}

// TestEnforcePressureDemotesThenEvicts: past the byte cap the registry
// first demotes the coldest exact models (deep, on a durable store)
// and only evicts once demotion cannot reach the cap.
func TestEnforcePressureDemotesThenEvicts(t *testing.T) {
	t.Run("durable demotes under cap", func(t *testing.T) {
		// Three exact models far exceed the cap; three deep-demoted
		// sketches fit with room to spare, so no eviction happens.
		s := recoverServer(t, Config{
			WALDir:   t.TempDir(),
			WALSync:  "none",
			MaxBytes: 300_000,
		})
		for _, id := range []string{"a", "b", "c"} {
			if _, err := s.Registry().Put(id, "test", 1e6, synthTrace(id, 2000, 40, 11)); err != nil {
				t.Fatalf("Put %s: %v", id, err)
			}
		}
		if got := s.Registry().Len(); got != 3 {
			t.Fatalf("models after enforcement: %d", got)
		}
		if got := s.Registry().ResidentBytes(); got > 300_000 {
			t.Fatalf("resident %d > cap", got)
		}
		var totals ShardStats
		for _, sh := range s.Registry().Stats() {
			totals.Demotions += sh.Demotions
			totals.ModelsSketch += sh.ModelsSketch
			totals.Evictions += sh.Evictions
		}
		if totals.Demotions == 0 || totals.ModelsSketch == 0 {
			t.Fatalf("no demotions recorded: %+v", totals)
		}
		if totals.Evictions != 0 {
			t.Fatalf("evicted %d models although demotion reached the cap", totals.Evictions)
		}
	})

	t.Run("memory-only falls back to eviction", func(t *testing.T) {
		// Shallow demotion keeps windows resident, so a cap below one
		// window can only be approached by evicting down to the last
		// model (which is never evicted).
		s := MustNew(Config{MaxBytes: 10_000})
		for _, id := range []string{"a", "b", "c"} {
			if _, err := s.Registry().Put(id, "test", 1e6, synthTrace(id, 2000, 40, 12)); err != nil {
				t.Fatalf("Put %s: %v", id, err)
			}
		}
		if got := s.Registry().Len(); got != 1 {
			t.Fatalf("models after enforcement: %d (want the never-evicted last one)", got)
		}
		var evictions uint64
		for _, sh := range s.Registry().Stats() {
			evictions += sh.Evictions
		}
		if evictions == 0 {
			t.Fatal("no evictions recorded")
		}
	})
}

// TestDemotedModelServesQueries: end-to-end over HTTP — a model under
// byte pressure keeps answering every planner endpoint from its
// sketch, and /v1/stats reports the tier split.
func TestDemotedModelServesQueries(t *testing.T) {
	s, _, c := newTestServerCfg(t, Config{
		WALDir:   t.TempDir(),
		WALSync:  "none",
		MaxBytes: 150_000,
	})
	if err := s.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	for _, id := range []string{"a", "b"} {
		if _, err := s.Registry().Put(id, "test", 1e6, synthTrace(id, 2000, 40, 13)); err != nil {
			t.Fatalf("Put %s: %v", id, err)
		}
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Totals.ModelsSketch == 0 {
		t.Fatalf("no sketch-tier models under the cap: %+v", st.Totals)
	}
	// Under the force-sketch toggle every model is born sketch, so the
	// enforcer has nothing to demote; otherwise the cap must have
	// demoted at least one exact model.
	if os.Getenv("GRIDSTRAT_SKETCH_TIER") != "1" && st.Totals.Demotions == 0 {
		t.Fatalf("expected demotions under the cap: %+v", st.Totals)
	}
	for _, id := range []string{"a", "b"} {
		if _, err := c.Recommend(context.Background(), id, RecommendRequest{}); err != nil {
			t.Fatalf("Recommend %s: %v", id, err)
		}
		if _, err := c.Rank(context.Background(), id, RankRequest{}); err != nil {
			t.Fatalf("Rank %s: %v", id, err)
		}
	}
	// Ingest on a demoted model promotes it for the write and keeps
	// serving afterwards.
	obs := ObserveRequest{Latencies: []float64{5, 42, 90}}
	if _, err := c.Observe(context.Background(), "a", obs); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if _, err := c.Recommend(context.Background(), "a", RecommendRequest{}); err != nil {
		t.Fatalf("Recommend after observe: %v", err)
	}
}
