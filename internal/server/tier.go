package server

import (
	"fmt"

	"gridstrat/internal/stats"
	"gridstrat/internal/trace"
)

// Tier transitions. A model lives in one of two representations — the
// exact counted ECDF or the mergeable quantile sketch — and the moves
// between them are:
//
//	exact ──demote──▶ sketch ──promote──▶ exact
//
// On a durable registry demotion is *deep*: the window is captured in
// a tier-stamped WAL snapshot and dropped from memory, so the entry
// shrinks to the sketch plus a records-free header. Promotion replays
// the snapshot (plus any batches acknowledged while demoted — they
// are WAL-appended as usual), so the restored window is bit-equal to
// the one the demotion captured; the next rebuild then republishes an
// exact-tier state through the same flat-rebuild path recovery uses.
// Without a WAL the demotion is *shallow*: the window stays resident
// and only the exact representation's kernel and sampler tables are
// shed — queries run on the sketch until memory pressure clears.

// promoteLocked replays a deep-demoted entry's window back from its
// WAL so the write path can mutate it. No-op unless the window was
// dropped. Caller holds ingestMu (qmu is taken here, preserving the
// ingestMu → qmu order). The published state is not rebuilt here —
// every caller follows with a rebuild that republishes the exact
// tier; until then queries keep the sketch snapshot.
func (e *Entry) promoteLocked() error {
	if !e.windowDropped {
		return nil
	}
	if e.store == nil {
		return fmt.Errorf("server: windowless entry %q has no durable store", e.ID)
	}
	e.qmu.Lock()
	defer e.qmu.Unlock()
	// Reopen through the store: Open replays snapshot + tail, so the
	// restored records are exactly everything acknowledged so far. The
	// close/reopen runs under the ack lock, so no append interleaves
	// with the appender swap.
	_ = e.wal.Close()
	log, snap, replayed, err := e.store.Open(e.ID)
	if err != nil {
		// The old appender is closed; the entry stays demoted and acks
		// fail until a later write retries the promotion.
		return fmt.Errorf("server: promoting %q: %w", e.ID, err)
	}
	e.wal = log
	tr := &trace.Trace{Name: snap.Name, Timeout: snap.Timeout, Records: snap.Records}
	rolling, err := trace.NewRolling(tr, snap.Window)
	if err != nil {
		return fmt.Errorf("server: promoting %q: %w", e.ID, err)
	}
	e.rolling = rolling
	e.windowDropped = false
	e.wantSketch = e.policySketch
	e.fullRebuild = true // no merge base survived the drop
	e.winComplete, e.winOutliers = countStatuses(rolling.Records())
	e.windowRecs.Store(int64(rolling.Len()))
	e.replayed += replayed
	// Every queued record was WAL-appended at ack time, so the replay
	// above already folded it into the buffer; dropping the queue here
	// keeps a later drain from applying it twice.
	if len(e.queue) > 0 {
		e.coalesced.Add(uint64(e.queuedBatches))
		e.queue, e.queuedBatches = nil, 0
	}
	// The last durable snapshot is sketch-stamped; force the next
	// rebuild's compaction to re-capture the window under an exact
	// stamp so a crash right after the promotion recovers exact.
	e.sinceSnap = e.snapshotEvery
	return nil
}

// demote moves an exact-tier entry to the sketch tier, reporting
// whether it did (false: already sketch, or a transient failure — the
// pressure enforcer falls through to eviction rather than spinning).
// Durable entries demote deep, memory-only entries shallow; see the
// file comment.
func (e *Entry) demote() bool {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	old := e.state.Load()
	if old.Tier != TierExact || e.windowDropped {
		return false
	}
	// The sketch summarizes the current window. The published merge
	// base is the cheap source; a broken chain falls back to a flat
	// build so the sketch never summarizes a stale epoch.
	base := old.ecdf
	if e.fullRebuild || base == nil || !base.Counted() {
		var err error
		base, err = e.rolling.Snapshot().ECDF()
		if err != nil {
			return false
		}
	}
	sk, err := stats.SketchFromECDF(base, 0)
	if err != nil {
		return false
	}
	if e.wal != nil && e.store != nil {
		// Deep: capture window + queue in a sketch-stamped snapshot
		// (the WAL becomes the window's source of truth), then drop the
		// in-memory buffers. Queued records stay queued — they are in
		// the snapshot, and the promotion a later drain runs discards
		// the queue after replaying them.
		if err := e.snapshotLocked(old.Version, TierSketch); err != nil {
			return false
		}
		hdr := &trace.Trace{Name: e.rolling.Name(), Timeout: e.timeout}
		probes := e.rolling.Len()
		st, err := newModelStateSketch(hdr, sk, nil, probes, e.winOutliers, old.Version)
		if err != nil {
			return false
		}
		e.dropWindowLocked()
		e.state.Store(st)
		e.sinceSnap = 0
		return true
	}
	// Shallow: the window stays resident (there is nowhere durable to
	// move it); shed the exact representation's kernel and sampler
	// tables and serve queries from the sketch. base rides along
	// kernel-less as the next rebuild's merge base.
	base.DropKernels()
	tw := e.rolling.Snapshot()
	st, err := newModelStateSketch(tw, sk, base, len(tw.Records), e.winOutliers, old.Version)
	if err != nil {
		return false
	}
	e.wantSketch = true
	e.state.Store(st)
	return true
}
