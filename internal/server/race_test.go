package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"gridstrat"
	"gridstrat/internal/trace"
)

// asyncIngestEnv reads the CI toggle that reruns the race suite with
// the async ingest worker enabled: GRIDSTRAT_ASYNC_INGEST is either a
// duration ("5ms") or any non-empty value for the 2ms default.
func asyncIngestEnv() (time.Duration, bool) {
	v := os.Getenv("GRIDSTRAT_ASYNC_INGEST")
	if v == "" {
		return 0, false
	}
	if d, err := time.ParseDuration(v); err == nil && d > 0 {
		return d, true
	}
	return 2 * time.Millisecond, true
}

// TestConcurrentIngestAndQuery hammers one model from 8 goroutines —
// half streaming observation batches, half running
// recommend/rank/simulate/stats queries — and checks that every
// request either succeeds or fails with a declared API error. Run
// under -race this pins the registry's concurrency story:
// RWMutex-per-shard lookups, atomic model-state swaps, and the ingest
// locks serializing stamping and rebuilds. With GRIDSTRAT_ASYNC_INGEST
// set (the CI toggle) the same workload runs through the async
// coalescing worker instead of the synchronous rebuild-per-batch
// path.
func TestConcurrentIngestAndQuery(t *testing.T) {
	interval, async := asyncIngestEnv()
	s, _, c := newTestServerCfg(t, Config{RebuildInterval: interval})
	ctx := context.Background()

	// A generous window so ingestion only ever grows the trace: the
	// point here is contention, not drift.
	mustCreateUpload(t, c, "hot", 1e9)

	const (
		writers       = 4
		readers       = 4
		opsPerRoutine = 12
	)
	var wg sync.WaitGroup
	errc := make(chan error, (writers+readers)*opsPerRoutine)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerRoutine; i++ {
				lat := []float64{80 + float64(w), 120 + float64(i), 95}
				if _, err := c.Observe(ctx, "hot", ObserveRequest{Latencies: lat, Outliers: i % 2}); err != nil {
					errc <- fmt.Errorf("writer %d op %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	seed := uint64(9)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < opsPerRoutine; i++ {
				var err error
				switch i % 4 {
				case 0:
					_, err = c.Recommend(ctx, "hot", RecommendRequest{})
				case 1:
					_, err = c.Rank(ctx, "hot", RankRequest{})
				case 2:
					_, err = c.Simulate(ctx, "hot", SimulateRequest{
						Strategy: StrategySpec{Strategy: "single", TInfS: 600},
						Runs:     2000,
						Options:  &Options{Seed: &seed},
					})
				case 3:
					_, err = c.Stats(ctx)
				}
				if err != nil {
					errc <- fmt.Errorf("reader %d op %d: %w", r, i, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Count the records the writers streamed: 3 latencies per op plus
	// an outlier on odd ops.
	appended := 0
	for w := 0; w < writers; w++ {
		for i := 0; i < opsPerRoutine; i++ {
			appended += 3 + i%2
		}
	}
	e, err := s.Registry().Get("hot")
	if err != nil {
		t.Fatal(err)
	}
	if async {
		// Acks may still be queued; drain and check nothing was lost.
		if _, _, err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		if got := len(e.State().Trace.Records); got != 126+appended {
			t.Fatalf("window holds %d records after drain, want %d", got, 126+appended)
		}
		return
	}
	// Synchronous mode: every writer batch swapped its own rebuild.
	info, err := c.GetModel(ctx, "hot", 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(1 + writers*opsPerRoutine); info.Version != want {
		t.Fatalf("version %d after %d batches, want %d", info.Version, writers*opsPerRoutine, want)
	}
	if got := len(e.State().Trace.Records); got != 126+appended {
		t.Fatalf("window holds %d records, want %d", got, 126+appended)
	}
}

// TestConcurrentAsyncIngestAndQuery always exercises the async
// rebuild worker under -race, independent of the CI env toggle: N
// goroutines stream batches while N more query the model and a
// flusher forces drains mid-flight. After a final drain the window
// must hold every acknowledged record and the model must equal a flat
// rebuild of the same window — the merge chain survives concurrency.
func TestConcurrentAsyncIngestAndQuery(t *testing.T) {
	s, _, c := newTestServerCfg(t, Config{RebuildInterval: time.Millisecond})
	ctx := context.Background()
	mustCreateUpload(t, c, "hot", 1e9)
	e, err := s.Registry().Get("hot")
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers = 3
		readers = 3
		ops     = 10
	)
	var wg sync.WaitGroup
	errc := make(chan error, (writers+readers+1)*ops)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				if _, err := c.Observe(ctx, "hot", ObserveRequest{
					Latencies: []float64{60 + float64(w), 110 + float64(i)},
					Sync:      i%3 == 0,
				}); err != nil {
					errc <- fmt.Errorf("writer %d op %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			seed := uint64(13)
			for i := 0; i < ops; i++ {
				var err error
				switch i % 3 {
				case 0:
					_, err = c.Recommend(ctx, "hot", RecommendRequest{})
				case 1:
					_, err = c.Simulate(ctx, "hot", SimulateRequest{
						Strategy: StrategySpec{Strategy: "single", TInfS: 500},
						Runs:     1000,
						Options:  &Options{Seed: &seed},
					})
				case 2:
					_, err = c.Stats(ctx)
				}
				if err != nil {
					errc <- fmt.Errorf("reader %d op %d: %w", r, i, err)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < ops; i++ {
			if _, _, err := e.Flush(); err != nil {
				errc <- fmt.Errorf("flusher op %d: %w", i, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	if _, _, err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	st := e.State()
	if got, want := len(st.Trace.Records), 126+writers*ops*2; got != want {
		t.Fatalf("window holds %d records after drain, want %d", got, want)
	}
	// The merge-chained ECDF equals a flat rebuild of the same window.
	flat, err := st.Trace.ECDF()
	if err != nil {
		t.Fatal(err)
	}
	if !ecdfBitEqual(st.ecdf, flat) {
		t.Fatal("merge-chained ECDF diverged from flat rebuild after concurrent ingest")
	}
}

// TestRegistryLRUEviction pins the per-shard LRU: filling a
// one-shard registry past its capacity evicts the least-recently-used
// entry and counts it.
func TestRegistryLRUEviction(t *testing.T) {
	reg := NewRegistry(1, 3)
	tr, err := gridstrat.ReadTraceCSV(strings.NewReader(smallTraceCSV(t, "lru", 40, 100, 0, 5, 2)))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} {
		if _, err := reg.Put(id, "upload:csv", 1e6, tr); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a and c so b is the LRU victim.
	if _, err := reg.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get("c"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Put("d", "upload:csv", 1e6, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get("b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("b should have been evicted, got %v", err)
	}
	for _, id := range []string{"a", "c", "d"} {
		if _, err := reg.Get(id); err != nil {
			t.Fatalf("%s missing after eviction: %v", id, err)
		}
	}
	var evictions uint64
	for _, sh := range reg.Stats() {
		evictions += sh.Evictions
	}
	if evictions != 1 {
		t.Fatalf("%d evictions recorded, want 1", evictions)
	}
}

// TestObserveRebasesNearCeiling pins the self-healing cursor: when
// the default submit cursor approaches the absolute ceiling, Observe
// re-bases the whole window onto t = 0 instead of wedging ingestion.
func TestObserveRebasesNearCeiling(t *testing.T) {
	reg := NewRegistry(1, 4)
	tr := &trace.Trace{Name: "r", Timeout: trace.DefaultTimeout}
	base := 9.9999999e12 // just under maxTraceSubmit
	for i := 0; i < 50; i++ {
		tr.Records = append(tr.Records, trace.ProbeRecord{
			ID: i, Submit: base + float64(i), Latency: 100, Status: trace.StatusCompleted,
		})
	}
	e, err := reg.Put("r", "upload:csv", 1e8, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Default cursor would land at base+49+1e6 and the projected batch
	// end past maxTraceSubmit: the window must re-base, not error.
	res, err := e.Observe([]trace.ProbeRecord{
		{Latency: 120, Status: trace.StatusCompleted},
		{Latency: 130, Status: trace.StatusCompleted},
	}, nil, maxSpacing)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.State.Trace.Records {
		if r.Submit > 1e9 {
			t.Fatalf("record %d not re-based: submit %g", r.ID, r.Submit)
		}
	}
	if got := len(res.State.Trace.Records); got != 52 {
		t.Fatalf("window holds %d records, want 52 (nothing trimmed under the 1e8 window)", got)
	}
	// Ingestion keeps working afterwards.
	if _, err := e.Observe([]trace.ProbeRecord{{Latency: 140, Status: trace.StatusCompleted}}, nil, 1); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryShardDistribution sanity-checks that IDs spread across
// shards rather than piling onto one.
func TestRegistryShardDistribution(t *testing.T) {
	reg := NewRegistry(8, 256)
	tr, err := gridstrat.ReadTraceCSV(strings.NewReader(smallTraceCSV(t, "sh", 40, 100, 0, 5, 2)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := reg.Put(fmt.Sprintf("model-%d", i), "upload:csv", 1e6, tr); err != nil {
			t.Fatal(err)
		}
	}
	occupied := 0
	for _, sh := range reg.Stats() {
		if sh.Models > 0 {
			occupied++
		}
	}
	if occupied < 4 {
		t.Fatalf("32 models landed on only %d/8 shards", occupied)
	}
	if reg.Len() != 32 {
		t.Fatalf("Len %d, want 32", reg.Len())
	}
}
