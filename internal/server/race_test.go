package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"gridstrat"
	"gridstrat/internal/trace"
)

// TestConcurrentIngestAndQuery hammers one model from 8 goroutines —
// half streaming observation batches (each swapping in a rebuilt
// model), half running recommend/rank/simulate/stats queries — and
// checks that every request either succeeds or fails with a declared
// API error. Run under -race this pins the registry's concurrency
// story: RWMutex-per-shard lookups, atomic model-state swaps, and the
// ingest lock serializing rebuilds.
func TestConcurrentIngestAndQuery(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()

	// A generous window so ingestion only ever grows the trace: the
	// point here is contention, not drift.
	mustCreateUpload(t, c, "hot", 1e9)

	const (
		writers       = 4
		readers       = 4
		opsPerRoutine = 12
	)
	var wg sync.WaitGroup
	errc := make(chan error, (writers+readers)*opsPerRoutine)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerRoutine; i++ {
				lat := []float64{80 + float64(w), 120 + float64(i), 95}
				if _, err := c.Observe(ctx, "hot", ObserveRequest{Latencies: lat, Outliers: i % 2}); err != nil {
					errc <- fmt.Errorf("writer %d op %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	seed := uint64(9)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < opsPerRoutine; i++ {
				var err error
				switch i % 4 {
				case 0:
					_, err = c.Recommend(ctx, "hot", RecommendRequest{})
				case 1:
					_, err = c.Rank(ctx, "hot", RankRequest{})
				case 2:
					_, err = c.Simulate(ctx, "hot", SimulateRequest{
						Strategy: StrategySpec{Strategy: "single", TInfS: 600},
						Runs:     2000,
						Options:  &Options{Seed: &seed},
					})
				case 3:
					_, err = c.Stats(ctx)
				}
				if err != nil {
					errc <- fmt.Errorf("reader %d op %d: %w", r, i, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Every writer batch landed: version == 1 + writers·ops.
	info, err := c.GetModel(ctx, "hot", 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(1 + writers*opsPerRoutine); info.Version != want {
		t.Fatalf("version %d after %d batches, want %d", info.Version, writers*opsPerRoutine, want)
	}
}

// TestRegistryLRUEviction pins the per-shard LRU: filling a
// one-shard registry past its capacity evicts the least-recently-used
// entry and counts it.
func TestRegistryLRUEviction(t *testing.T) {
	reg := NewRegistry(1, 3)
	tr, err := gridstrat.ReadTraceCSV(strings.NewReader(smallTraceCSV(t, "lru", 40, 100, 0, 5, 2)))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} {
		if _, err := reg.Put(id, "upload:csv", 1e6, tr); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a and c so b is the LRU victim.
	if _, err := reg.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get("c"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Put("d", "upload:csv", 1e6, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get("b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("b should have been evicted, got %v", err)
	}
	for _, id := range []string{"a", "c", "d"} {
		if _, err := reg.Get(id); err != nil {
			t.Fatalf("%s missing after eviction: %v", id, err)
		}
	}
	var evictions uint64
	for _, sh := range reg.Stats() {
		evictions += sh.Evictions
	}
	if evictions != 1 {
		t.Fatalf("%d evictions recorded, want 1", evictions)
	}
}

// TestObserveRebasesNearCeiling pins the self-healing cursor: when
// the default submit cursor approaches the absolute ceiling, Observe
// re-bases the whole window onto t = 0 instead of wedging ingestion.
func TestObserveRebasesNearCeiling(t *testing.T) {
	reg := NewRegistry(1, 4)
	tr := &trace.Trace{Name: "r", Timeout: trace.DefaultTimeout}
	base := 9.9999999e12 // just under maxTraceSubmit
	for i := 0; i < 50; i++ {
		tr.Records = append(tr.Records, trace.ProbeRecord{
			ID: i, Submit: base + float64(i), Latency: 100, Status: trace.StatusCompleted,
		})
	}
	e, err := reg.Put("r", "upload:csv", 1e8, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Default cursor would land at base+49+1e6 and the projected batch
	// end past maxTraceSubmit: the window must re-base, not error.
	res, err := e.Observe([]trace.ProbeRecord{
		{Latency: 120, Status: trace.StatusCompleted},
		{Latency: 130, Status: trace.StatusCompleted},
	}, nil, maxSpacing)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.State.Trace.Records {
		if r.Submit > 1e9 {
			t.Fatalf("record %d not re-based: submit %g", r.ID, r.Submit)
		}
	}
	if got := len(res.State.Trace.Records); got != 52 {
		t.Fatalf("window holds %d records, want 52 (nothing trimmed under the 1e8 window)", got)
	}
	// Ingestion keeps working afterwards.
	if _, err := e.Observe([]trace.ProbeRecord{{Latency: 140, Status: trace.StatusCompleted}}, nil, 1); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryShardDistribution sanity-checks that IDs spread across
// shards rather than piling onto one.
func TestRegistryShardDistribution(t *testing.T) {
	reg := NewRegistry(8, 256)
	tr, err := gridstrat.ReadTraceCSV(strings.NewReader(smallTraceCSV(t, "sh", 40, 100, 0, 5, 2)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := reg.Put(fmt.Sprintf("model-%d", i), "upload:csv", 1e6, tr); err != nil {
			t.Fatal(err)
		}
	}
	occupied := 0
	for _, sh := range reg.Stats() {
		if sh.Models > 0 {
			occupied++
		}
	}
	if occupied < 4 {
		t.Fatalf("32 models landed on only %d/8 shards", occupied)
	}
	if reg.Len() != 32 {
		t.Fatalf("Len %d, want 32", reg.Len())
	}
}
