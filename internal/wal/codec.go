package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"gridstrat/internal/trace"
)

// On-disk format. Every durable unit — a segment record or a snapshot
// body — is one frame:
//
//	[4B length of payload, LE] [4B CRC-32C of payload, LE] [payload]
//
// The payload's first byte is the operation type; the rest is the
// type's fixed-layout little-endian body. Numbers are encoded exactly
// (float64 as IEEE bits), so a replayed record round-trips to the very
// same value — the foundation of the kill-and-recover bit-equality
// guarantee. A frame whose length or CRC does not check out marks the
// durable prefix's end: everything before it is applied, everything
// from it on is discarded as a torn tail.

// Operation types.
const (
	opBatch    = byte(1) // one acknowledged observation batch
	opRebase   = byte(2) // a cursor re-base: shift every submit time
	opSnapshot = byte(3) // a full entry-state snapshot (snapshot files only)
)

// maxFrameBytes caps a single frame so a corrupt length prefix cannot
// drive a multi-gigabyte allocation during replay. Snapshots of large
// windows are the biggest frames: 2^20 records × 25 bytes ≈ 25 MiB,
// comfortably inside the 256 MiB cap.
const maxFrameBytes = 256 << 20

// ErrCorrupt reports a frame that failed its length or CRC check.
var ErrCorrupt = errors.New("wal: corrupt frame")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Batch is one acknowledged observation batch as logged at ack time:
// the stamped records plus the ack cursor and ID counter they advanced
// the entry to. Replaying batches in order reproduces the exact
// stamping state the entry held at the crash.
type Batch struct {
	Cursor  float64
	NextID  int64
	Records []trace.ProbeRecord
}

// EntrySnapshot is the full durable state of one registry entry: the
// identity fields fixed at registration, the stamping state, and every
// acknowledged record — the rolling window and (in async mode) the
// not-yet-rebuilt queue flattened into one submit-ordered slice.
// Recovering an entry = load the snapshot, apply the tail ops, rebuild
// the model from the resulting records.
type EntrySnapshot struct {
	Name    string
	Source  string
	Timeout float64
	Window  float64
	Cursor  float64
	NextID  int64
	Version int64
	// CoversSeq is the segment watermark: every segment with sequence
	// <= CoversSeq is already folded into this snapshot. WriteSnapshot
	// stamps it from the covered list Cut returned; Open skips (and
	// deletes) those segments during replay, so a crash between the
	// snapshot rename and the covered-segment removals cannot
	// double-apply their records.
	CoversSeq int64
	Records   []trace.ProbeRecord
	// Tier records the model representation the entry held when the
	// snapshot was cut (0 = exact, 1 = sketch), so recovery restores
	// the same tier without re-deriving the demotion decision. It is
	// encoded as a trailing byte after the records; decodeSnapshot
	// tolerates its absence (pre-tier snapshots read as exact), so old
	// WAL directories replay unchanged.
	Tier uint8
}

// appendFrame appends one framed payload to buf.
func appendFrame(buf, payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// readFrame reads one frame from r, returning its payload. io.EOF
// means a clean end; ErrCorrupt (wrapped) means a torn or damaged
// frame — the caller treats both as the end of the durable prefix.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
		}
		return nil, err // io.EOF: clean end
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n == 0 || n > maxFrameBytes {
		return nil, fmt.Errorf("%w: implausible frame length %d", ErrCorrupt, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated payload", ErrCorrupt)
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// Primitive appenders: fixed-layout little-endian encoding.

func appendU64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}

func appendF64(b []byte, v float64) []byte { return appendU64(b, math.Float64bits(v)) }
func appendI64(b []byte, v int64) []byte   { return appendU64(b, uint64(v)) }
func appendU32(b []byte, v uint32) []byte {
	var t [4]byte
	binary.LittleEndian.PutUint32(t[:], v)
	return append(b, t[:]...)
}
func appendStr(b []byte, s string) []byte { b = appendU32(b, uint32(len(s))); return append(b, s...) }

// reader is a cursor over a payload with sticky error state: decode
// helpers return zero values after the first failure, and the caller
// checks err once at the end.
type reader struct {
	b   []byte
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = fmt.Errorf("%w: short payload", ErrCorrupt)
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *reader) i64() int64   { return int64(r.u64()) }

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) str() string {
	n := r.u32()
	if n > maxFrameBytes {
		r.err = fmt.Errorf("%w: implausible string length %d", ErrCorrupt, n)
		return ""
	}
	return string(r.take(int(n)))
}

// record layout: ID int64 · Submit f64 · Latency f64 · Status byte.
const recordBytes = 8 + 8 + 8 + 1

func appendRecords(b []byte, recs []trace.ProbeRecord) []byte {
	b = appendU32(b, uint32(len(recs)))
	for _, rec := range recs {
		b = appendI64(b, int64(rec.ID))
		b = appendF64(b, rec.Submit)
		b = appendF64(b, rec.Latency)
		b = append(b, byte(rec.Status))
	}
	return b
}

func (r *reader) records() []trace.ProbeRecord {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if int(n)*recordBytes > len(r.b) {
		r.err = fmt.Errorf("%w: record count %d exceeds payload", ErrCorrupt, n)
		return nil
	}
	recs := make([]trace.ProbeRecord, 0, n)
	for i := uint32(0); i < n; i++ {
		rec := trace.ProbeRecord{
			ID:      int(r.i64()),
			Submit:  r.f64(),
			Latency: r.f64(),
		}
		st := r.take(1)
		if st == nil {
			return nil
		}
		rec.Status = trace.Status(st[0])
		recs = append(recs, rec)
	}
	return recs
}

// encodeBatch renders an opBatch payload.
func encodeBatch(b Batch) []byte {
	out := make([]byte, 0, 1+8+8+4+len(b.Records)*recordBytes)
	out = append(out, opBatch)
	out = appendF64(out, b.Cursor)
	out = appendI64(out, b.NextID)
	return appendRecords(out, b.Records)
}

// encodeRebase renders an opRebase payload.
func encodeRebase(offset float64) []byte {
	out := make([]byte, 0, 1+8)
	out = append(out, opRebase)
	return appendF64(out, offset)
}

// encodeSnapshot renders an opSnapshot payload.
func encodeSnapshot(s EntrySnapshot) []byte {
	out := make([]byte, 0, 64+len(s.Name)+len(s.Source)+len(s.Records)*recordBytes)
	out = append(out, opSnapshot)
	out = appendStr(out, s.Name)
	out = appendStr(out, s.Source)
	out = appendF64(out, s.Timeout)
	out = appendF64(out, s.Window)
	out = appendF64(out, s.Cursor)
	out = appendI64(out, s.NextID)
	out = appendI64(out, s.Version)
	out = appendI64(out, s.CoversSeq)
	out = appendRecords(out, s.Records)
	return append(out, s.Tier)
}

// decodeBatch parses an opBatch payload (type byte already consumed by
// the caller's dispatch).
func decodeBatch(b []byte) (Batch, error) {
	r := &reader{b: b}
	out := Batch{Cursor: r.f64(), NextID: r.i64()}
	out.Records = r.records()
	return out, r.err
}

func decodeRebase(b []byte) (float64, error) {
	r := &reader{b: b}
	off := r.f64()
	return off, r.err
}

func decodeSnapshot(b []byte) (EntrySnapshot, error) {
	r := &reader{b: b}
	out := EntrySnapshot{
		Name:      r.str(),
		Source:    r.str(),
		Timeout:   r.f64(),
		Window:    r.f64(),
		Cursor:    r.f64(),
		NextID:    r.i64(),
		Version:   r.i64(),
		CoversSeq: r.i64(),
	}
	out.Records = r.records()
	if r.err == nil && len(r.b) > 0 {
		if t := r.take(1); t != nil {
			out.Tier = t[0]
		}
	}
	return out, r.err
}
