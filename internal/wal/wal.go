// Package wal gives each gridstratd registry entry an append-only
// write-ahead log with periodic compacted snapshots, so a daemon
// restart replays every model to its exact pre-crash state.
//
// Layout: a Store manages one root directory with one subdirectory per
// model (the ID encoded filesystem-safe). A model directory holds
//
//	snapshot.snap   one framed EntrySnapshot (written atomically
//	                via tmp + rename; the compaction point)
//	wal-<seq>.log   append-only segments of framed batch/rebase ops,
//	                replayed in ascending seq order after the snapshot
//
// Writes are buffered and flushed per append; the fsync policy decides
// when the OS buffers are forced to stable storage (every append, on a
// time interval, or never). Segments rotate at a size threshold, and a
// snapshot deletes every segment it covers, bounding both disk use and
// replay time.
//
// Crash safety: a torn frame at the tail of the last segment marks the
// end of the durable prefix — Open truncates the segment back to the
// last whole frame and appends from there, so one torn write never
// poisons the records behind it. Each snapshot carries a segment
// watermark (the highest sequence it folded in); Open deletes rather
// than replays segments at or below it, so a crash between the
// snapshot rename and the covered-segment removals never double-applies
// a record.
package wal

import (
	"encoding/base32"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy decides when appends are forced to stable storage.
type SyncPolicy int

const (
	// SyncInterval fsyncs at most once per interval, amortizing the
	// flush over the appends in between (the default; a crash loses at
	// most the last interval's acknowledgements).
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs on every append: no acknowledged record is
	// ever lost, at the cost of one disk flush per batch.
	SyncAlways
	// SyncNone never fsyncs explicitly; durability is left to the OS
	// writeback cache. Survives process crashes, not power loss.
	SyncNone
)

// ParseSyncPolicy maps the flag spelling to its policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "interval", "":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "none", "never":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or none)", s)
	}
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return "interval"
	}
}

// Hooks are fault-injection seams consulted on the append path (see
// internal/chaos, which builds deterministic ENOSPC/torn-write plans
// against them). Production configs leave them nil; every hook call
// happens under the log's append mutex.
type Hooks struct {
	// BeforeAppend is consulted with the framed bytes before each
	// append. A non-nil error fails the append without writing (the
	// ENOSPC shape); keep > 0 additionally writes frame[:keep] first
	// and poisons the log — the torn-write-then-crash shape, where
	// part of a frame reached the disk and the process never got to
	// clean it up.
	BeforeAppend func(frame []byte) (keep int, err error)
	// BeforeSync is consulted before each fsync; a non-nil error fails
	// the flush (the append path then claws the unsynced frame back so
	// a failed ack can never be replayed).
	BeforeSync func() error
}

// Options tunes a Store and the Logs it opens. The zero value is
// usable; every field falls back to the default documented on it.
type Options struct {
	// Sync is the fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval flush period (default 100ms).
	SyncEvery time.Duration
	// SegmentBytes rotates the active segment past this size
	// (default 4 MiB).
	SegmentBytes int64
	// Hooks inject append/fsync faults for tests (nil in production).
	Hooks *Hooks
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// Store manages the per-model logs under one root directory.
type Store struct {
	root string
	opts Options
}

// NewStore opens (creating if needed) the WAL root directory.
func NewStore(root string, opts Options) (*Store, error) {
	if root == "" {
		return nil, errors.New("wal: empty root directory")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating root: %w", err)
	}
	return &Store{root: root, opts: opts.withDefaults()}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// idEncoding is base32hex without padding, lowercased at encode time:
// filesystem-safe for every model ID (no separators, no dot-files, no
// case collisions on case-insensitive filesystems).
var idEncoding = base32.HexEncoding.WithPadding(base32.NoPadding)

func encodeID(id string) string {
	return strings.ToLower(idEncoding.EncodeToString([]byte(id)))
}

func decodeID(dir string) (string, error) {
	raw, err := idEncoding.DecodeString(strings.ToUpper(dir))
	if err != nil {
		return "", fmt.Errorf("wal: undecodable model directory %q: %w", dir, err)
	}
	return string(raw), nil
}

// Dir returns the directory that holds (or would hold) the model's log.
func (s *Store) Dir(id string) string { return filepath.Join(s.root, encodeID(id)) }

// Exists reports whether the model has durable state: a directory with
// a snapshot in it.
func (s *Store) Exists(id string) bool {
	_, err := os.Stat(filepath.Join(s.Dir(id), snapshotName))
	return err == nil
}

// List returns the IDs of every model with durable state, sorted.
func (s *Store) List() ([]string, error) {
	ents, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("wal: listing root: %w", err)
	}
	var ids []string
	for _, ent := range ents {
		if !ent.IsDir() {
			continue
		}
		id, err := decodeID(ent.Name())
		if err != nil {
			continue // foreign directory; leave it alone
		}
		if s.Exists(id) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Delete removes the model's durable state entirely. Safe to call for
// models that never had any.
func (s *Store) Delete(id string) error {
	return os.RemoveAll(s.Dir(id))
}

const snapshotName = "snapshot.snap"

func segmentName(seq int) string { return fmt.Sprintf("wal-%08d.log", seq) }

// parseSegmentName extracts the sequence number of a segment filename,
// reporting ok=false for anything else.
func parseSegmentName(name string) (int, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	seq, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"))
	if err != nil {
		return 0, false
	}
	return seq, true
}

// ErrBroken marks a log whose failed append could not be healed: the
// active segment may end in a torn frame, so further appends would
// land behind the tear and be silently lost to recovery. Appends are
// refused instead; the entry keeps serving reads, and an eviction +
// restore (or a daemon restart) reopens the log cleanly past the torn
// tail.
var ErrBroken = errors.New("wal: log poisoned by an unhealed torn write")

// Log is one model's write-ahead log: an open active segment plus the
// snapshot/rotation machinery. Appends are serialized by an internal
// mutex; the ingest path additionally serializes them by its own entry
// locks, so frames land in acknowledgement order.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	seg      *os.File // active segment (nil after Close)
	segSeq   int
	segSize  int64
	lastSync time.Time
	closed   bool
	broken   bool // an unhealed torn write ended the appendable prefix

	appends       atomic.Uint64 // batch + rebase frames appended
	snapshotBytes atomic.Uint64 // total snapshot bytes written
}

// Appends returns the number of batch/rebase frames appended since
// open.
func (l *Log) Appends() uint64 { return l.appends.Load() }

// SnapshotBytes returns the total snapshot bytes written since open.
func (l *Log) SnapshotBytes() uint64 { return l.snapshotBytes.Load() }

// Open opens (creating if needed) the model's log and replays its
// durable state: the snapshot, then every segment in order, reduced to
// the final EntrySnapshot. It returns the recovered state (nil when
// the directory holds no snapshot — a fresh log), the number of tail
// records replayed on top of the snapshot, and the ready-to-append
// Log. The last segment is truncated back to its last whole frame, so
// a torn tail write cannot poison later appends.
func (s *Store) Open(id string) (*Log, *EntrySnapshot, int, error) {
	dir := s.Dir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, fmt.Errorf("wal: creating model dir: %w", err)
	}
	l := &Log{dir: dir, opts: s.opts}

	snap, err := readSnapshot(filepath.Join(dir, snapshotName))
	if err != nil {
		return nil, nil, 0, err
	}
	covered := 0
	if snap != nil {
		covered = int(snap.CoversSeq)
	}

	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, 0, err
	}
	replayed := 0
	for _, seg := range segs {
		path := filepath.Join(dir, segmentName(seg))
		if seg <= covered {
			// Already folded into the snapshot: a crash between the
			// snapshot rename and the covered-segment removals left it
			// behind. Replaying it would double-apply its records, so
			// finish the interrupted deletion instead.
			if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
				return nil, nil, 0, fmt.Errorf("wal: removing stale covered segment: %w", err)
			}
			continue
		}
		last := seg == segs[len(segs)-1]
		n, validLen, err := replaySegment(path, snap, last)
		if err != nil {
			return nil, nil, 0, err
		}
		replayed += n
		if last {
			// Drop the torn tail (validLen is the file size when the
			// segment is whole, so this is a no-op then).
			if err := os.Truncate(path, validLen); err != nil {
				return nil, nil, 0, fmt.Errorf("wal: truncating torn tail: %w", err)
			}
		}
	}

	// Append into the last segment (past its valid prefix) or start
	// the first segment past the snapshot's watermark on a directory
	// with no live segments.
	l.segSeq = 1
	if len(segs) > 0 {
		l.segSeq = segs[len(segs)-1]
	}
	if l.segSeq <= covered {
		l.segSeq = covered + 1
	}
	if err := l.openSegment(l.segSeq); err != nil {
		return nil, nil, 0, err
	}
	l.lastSync = time.Now()
	return l, snap, replayed, nil
}

// listSegments returns the directory's segment sequence numbers in
// ascending order.
func listSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing segments: %w", err)
	}
	var segs []int
	for _, ent := range ents {
		if seq, ok := parseSegmentName(ent.Name()); ok {
			segs = append(segs, seq)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// readSnapshot loads and decodes the snapshot file, returning nil when
// it does not exist. A corrupt snapshot is an error — it is written
// atomically, so corruption means real damage, not a torn write.
func readSnapshot(path string) (*EntrySnapshot, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: opening snapshot: %w", err)
	}
	defer f.Close()
	payload, err := readFrame(f)
	if err != nil {
		return nil, fmt.Errorf("wal: reading snapshot %s: %w", path, err)
	}
	if len(payload) == 0 || payload[0] != opSnapshot {
		return nil, fmt.Errorf("%w: snapshot %s has wrong op type", ErrCorrupt, path)
	}
	snap, err := decodeSnapshot(payload[1:])
	if err != nil {
		return nil, fmt.Errorf("wal: decoding snapshot %s: %w", path, err)
	}
	return &snap, nil
}

// replaySegment applies a segment's ops to the accumulating state
// (snap may be nil when no snapshot exists yet — then ops are applied
// onto nothing and only the valid length matters; that only happens
// for logs that crashed before their first snapshot, which Open's
// callers treat as absent). It returns the number of records applied
// and the byte offset of the end of the last whole frame.
//
// A corrupt or undecodable frame in the last segment is a torn tail —
// the legitimate end of the durable prefix — and stops replay cleanly.
// In any earlier segment the same damage is real corruption: tolerating
// it would silently drop the rest of that segment while later segments
// still applied on top, so it is returned as an error instead.
func replaySegment(path string, snap *EntrySnapshot, last bool) (int, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: opening segment: %w", err)
	}
	defer f.Close()

	records := 0
	var valid int64
	r := &countingReader{r: f}
	for {
		payload, err := readFrame(r)
		if errors.Is(err, io.EOF) {
			return records, valid, nil
		}
		if errors.Is(err, ErrCorrupt) {
			if last {
				return records, valid, nil
			}
			return 0, 0, fmt.Errorf("wal: segment %s damaged mid-log: %w", path, err)
		}
		if err != nil {
			return 0, 0, fmt.Errorf("wal: reading segment %s: %w", path, err)
		}
		switch payload[0] {
		case opBatch:
			b, err := decodeBatch(payload[1:])
			if err != nil {
				if last {
					return records, valid, nil // torn body: durable prefix ends here
				}
				return 0, 0, fmt.Errorf("wal: segment %s damaged mid-log: %w", path, err)
			}
			if snap != nil {
				snap.Records = append(snap.Records, b.Records...)
				snap.Cursor = b.Cursor
				snap.NextID = b.NextID
			}
			records += len(b.Records)
		case opRebase:
			off, err := decodeRebase(payload[1:])
			if err != nil {
				if last {
					return records, valid, nil
				}
				return 0, 0, fmt.Errorf("wal: segment %s damaged mid-log: %w", path, err)
			}
			if snap != nil {
				for i := range snap.Records {
					snap.Records[i].Submit -= off
				}
				snap.Cursor -= off
			}
		default:
			// Unknown op from a future format revision: stop replay at
			// the last understood frame rather than misapply it — but
			// only where a torn tail is possible.
			if last {
				return records, valid, nil
			}
			return 0, 0, fmt.Errorf("wal: segment %s: unknown op %d mid-log", path, payload[0])
		}
		valid = r.n
	}
}

// countingReader tracks how many bytes the frame reader consumed, so
// replay knows the exact end offset of the last whole frame.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// openSegment opens (or creates) the segment for appending.
func (l *Log) openSegment(seq int) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: opening segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: stat segment: %w", err)
	}
	l.seg, l.segSeq, l.segSize = f, seq, st.Size()
	return nil
}

// AppendBatch logs one acknowledged observation batch.
func (l *Log) AppendBatch(b Batch) error {
	return l.append(encodeBatch(b))
}

// AppendRebase logs a window re-base by offset.
func (l *Log) AppendRebase(offset float64) error {
	return l.append(encodeRebase(offset))
}

// append frames the payload onto the active segment, rotating past the
// size threshold and fsyncing per the policy.
//
// Failure contract: an error here means the ingest path will refuse
// the ack, so the frame must NOT survive to be replayed. A write that
// failed partway (real short write or injected torn write) is healed
// by truncating the segment back to its pre-append size; if even the
// truncate fails the log is poisoned (ErrBroken) rather than left to
// append acked frames behind a tear that recovery would stop at.
func (l *Log) append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if l.broken {
		return ErrBroken
	}
	frame := appendFrame(make([]byte, 0, 8+len(payload)), payload)
	if h := l.opts.Hooks; h != nil && h.BeforeAppend != nil {
		keep, err := h.BeforeAppend(frame)
		if err != nil {
			if keep > 0 {
				// Injected torn write: part of the frame reaches the
				// file and the "crash" prevents any cleanup, exactly
				// what a power cut mid-write leaves behind.
				if keep > len(frame) {
					keep = len(frame)
				}
				_, _ = l.seg.Write(frame[:keep])
				l.broken = true
			}
			return fmt.Errorf("wal: appending: %w", err)
		}
	}
	if n, err := l.seg.Write(frame); err != nil {
		if n > 0 && l.seg.Truncate(l.segSize) != nil {
			l.broken = true
		}
		return fmt.Errorf("wal: appending: %w", err)
	}
	if err := l.maybeSyncLocked(); err != nil {
		// The frame is written but not durable, and the caller will
		// refuse the ack: claw the frame back so a later replay cannot
		// resurrect a record whose acknowledgement failed.
		if l.seg.Truncate(l.segSize) != nil {
			l.broken = true
		}
		return err
	}
	l.segSize += int64(len(frame))
	l.appends.Add(1)
	if l.segSize >= l.opts.SegmentBytes {
		return l.rotateLocked()
	}
	return nil
}

// maybeSyncLocked applies the fsync policy after a write.
func (l *Log) maybeSyncLocked() error {
	switch l.opts.Sync {
	case SyncAlways:
		return l.syncLocked()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.SyncEvery {
			return l.syncLocked()
		}
	}
	return nil
}

func (l *Log) syncLocked() error {
	if h := l.opts.Hooks; h != nil && h.BeforeSync != nil {
		if err := h.BeforeSync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
	}
	if err := l.seg.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.lastSync = time.Now()
	return nil
}

// rotateLocked closes the active segment (fsyncing it unless the
// policy is SyncNone) and starts the next one.
func (l *Log) rotateLocked() error {
	if l.opts.Sync != SyncNone {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	if err := l.seg.Close(); err != nil {
		return fmt.Errorf("wal: closing segment: %w", err)
	}
	return l.openSegment(l.segSeq + 1)
}

// Cut rotates to a fresh segment and returns the sequence numbers of
// every earlier segment — the set a snapshot of the state as of this
// moment covers. The caller must hold the same serialization it holds
// for appends (the entry's ack lock), so no append can land between
// the state copy and the cut.
func (l *Log) Cut() ([]int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, errors.New("wal: log is closed")
	}
	if err := l.rotateLocked(); err != nil {
		return nil, err
	}
	segs, err := listSegments(l.dir)
	if err != nil {
		return nil, err
	}
	var covered []int
	for _, seq := range segs {
		if seq < l.segSeq {
			covered = append(covered, seq)
		}
	}
	return covered, nil
}

// WriteSnapshot persists the entry state atomically (tmp + fsync +
// rename), then deletes the covered segments. Call with the state
// captured at the moment of a Cut and the segment list Cut returned;
// appends may proceed concurrently — they land in the fresh segment,
// which is never deleted here. The snapshot records the highest
// covered sequence as its watermark, so a crash between the rename
// and the removals cannot re-apply a covered segment on recovery.
func (l *Log) WriteSnapshot(snap EntrySnapshot, covered []int) error {
	for _, seq := range covered {
		if int64(seq) > snap.CoversSeq {
			snap.CoversSeq = int64(seq)
		}
	}
	payload := encodeSnapshot(snap)
	frame := appendFrame(make([]byte, 0, 8+len(payload)), payload)

	tmp := filepath.Join(l.dir, snapshotName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating snapshot tmp: %w", err)
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing snapshot: %w", err)
	}
	if l.opts.Sync != SyncNone {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: fsync snapshot: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapshotName)); err != nil {
		return fmt.Errorf("wal: publishing snapshot: %w", err)
	}
	l.snapshotBytes.Add(uint64(len(frame)))
	// The snapshot is durable; the covered segments are dead weight.
	for _, seq := range covered {
		if err := os.Remove(filepath.Join(l.dir, segmentName(seq))); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("wal: removing covered segment: %w", err)
		}
	}
	return nil
}

// Sync forces buffered appends to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.syncLocked()
}

// Close fsyncs (unless the policy is SyncNone) and closes the active
// segment. The log must not be used afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.opts.Sync != SyncNone {
		if err := l.seg.Sync(); err != nil {
			l.seg.Close()
			return fmt.Errorf("wal: fsync on close: %w", err)
		}
	}
	return l.seg.Close()
}
