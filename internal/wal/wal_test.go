package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"gridstrat/internal/trace"
)

func testStore(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := NewStore(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mkRecords(n int, idBase int, submitBase float64) []trace.ProbeRecord {
	recs := make([]trace.ProbeRecord, n)
	for i := range recs {
		st := trace.StatusCompleted
		if i%7 == 3 {
			st = trace.StatusOutlier
		}
		recs[i] = trace.ProbeRecord{
			ID:      idBase + i,
			Submit:  submitBase + float64(i),
			Latency: 100 + 0.25*float64(i),
			Status:  st,
		}
	}
	return recs
}

func seedSnapshot() EntrySnapshot {
	return EntrySnapshot{
		Name:    "t",
		Source:  "upload:csv",
		Timeout: trace.DefaultTimeout,
		Window:  1e6,
		Cursor:  9,
		NextID:  10,
		Version: 1,
		Records: mkRecords(10, 0, 0),
	}
}

// openFresh opens the model log, asserting no prior durable state, and
// writes the seed snapshot the way the server's creation path does.
func openFresh(t *testing.T, s *Store, id string) *Log {
	t.Helper()
	l, snap, _, err := s.Open(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Fatalf("fresh dir has snapshot %+v", snap)
	}
	covered, err := l.Cut()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot(seedSnapshot(), covered); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestRoundTripSnapshotAndTail(t *testing.T) {
	s := testStore(t, Options{Sync: SyncAlways})
	l := openFresh(t, s, "model/one with spaces")

	b1 := Batch{Cursor: 19, NextID: 20, Records: mkRecords(10, 10, 10)}
	b2 := Batch{Cursor: 29, NextID: 30, Records: mkRecords(10, 20, 20)}
	if err := l.AppendBatch(b1); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendRebase(5); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(b2); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, snap, replayed, err := s.Open("model/one with spaces")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if snap == nil {
		t.Fatal("no snapshot recovered")
	}
	if replayed != 20 {
		t.Fatalf("replayed %d records, want 20", replayed)
	}
	if snap.Name != "t" || snap.Source != "upload:csv" || snap.Window != 1e6 || snap.Version != 1 {
		t.Fatalf("bad identity fields: %+v", snap)
	}
	// b2's records land after the rebase, so only the seed and b1 are
	// shifted by 5; cursor ends at b2's (un-shifted) value.
	want := mkRecords(10, 0, 0)
	for i := range want {
		want[i].Submit -= 5
	}
	shifted := mkRecords(10, 10, 10)
	for i := range shifted {
		shifted[i].Submit -= 5
	}
	want = append(want, shifted...)
	want = append(want, mkRecords(10, 20, 20)...)
	if !reflect.DeepEqual(snap.Records, want) {
		t.Fatalf("records mismatch after replay:\n got %v\nwant %v", snap.Records, want)
	}
	if snap.Cursor != 29 || snap.NextID != 30 {
		t.Fatalf("cursor/nextID = %v/%v, want 29/30", snap.Cursor, snap.NextID)
	}
}

func TestTornTailTruncatedAndAppendable(t *testing.T) {
	s := testStore(t, Options{Sync: SyncAlways})
	l := openFresh(t, s, "m")
	if err := l.AppendBatch(Batch{Cursor: 19, NextID: 20, Records: mkRecords(10, 10, 10)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the tail: append half a frame to the last segment.
	dir := s.Dir("m")
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	last := filepath.Join(dir, segmentName(segs[len(segs)-1]))
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Reopen: the good batch survives, the torn bytes are gone, and a
	// fresh append replays cleanly on a third open.
	l2, snap, replayed, err := s.Open("m")
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 10 || snap == nil || len(snap.Records) != 20 {
		t.Fatalf("after torn tail: replayed=%d snap=%+v", replayed, snap)
	}
	if err := l2.AppendBatch(Batch{Cursor: 25, NextID: 26, Records: mkRecords(6, 20, 20)}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	l3, snap3, replayed3, err := s.Open("m")
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if replayed3 != 16 || len(snap3.Records) != 26 || snap3.Cursor != 25 {
		t.Fatalf("after re-append: replayed=%d records=%d cursor=%v",
			replayed3, len(snap3.Records), snap3.Cursor)
	}
}

func TestSegmentRotationAndSnapshotCompaction(t *testing.T) {
	s := testStore(t, Options{Sync: SyncNone, SegmentBytes: 512})
	l := openFresh(t, s, "m")
	cursor, id := 9.0, 20
	for i := 0; i < 20; i++ {
		cursor += 10
		if err := l.AppendBatch(Batch{Cursor: cursor, NextID: int64(id + 10), Records: mkRecords(10, id, cursor-9)}); err != nil {
			t.Fatal(err)
		}
		id += 10
	}
	segs, err := listSegments(s.Dir("m"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %v", segs)
	}

	// Snapshot as the ingest path would: cut, then persist the state.
	covered, err := l.Cut()
	if err != nil {
		t.Fatal(err)
	}
	state := seedSnapshot()
	state.Records = mkRecords(5, 0, 0) // pretend the window trimmed down
	state.Cursor, state.NextID, state.Version = cursor, int64(id+10), 7
	if err := l.WriteSnapshot(state, covered); err != nil {
		t.Fatal(err)
	}
	segsAfter, err := listSegments(s.Dir("m"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segsAfter) != 1 {
		t.Fatalf("snapshot should leave only the active segment, got %v", segsAfter)
	}
	if err := l.AppendBatch(Batch{Cursor: cursor + 10, NextID: int64(id + 20), Records: mkRecords(10, id, cursor+1)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, snap, replayed, err := s.Open("m")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if replayed != 10 || len(snap.Records) != 15 || snap.Version != 7 {
		t.Fatalf("post-compaction recovery: replayed=%d records=%d version=%d",
			replayed, len(snap.Records), snap.Version)
	}
	if snap.Cursor != cursor+10 {
		t.Fatalf("cursor %v, want %v", snap.Cursor, cursor+10)
	}
}

func TestStaleCoveredSegmentsSkippedOnRecovery(t *testing.T) {
	// A crash between the snapshot rename and the covered-segment
	// removals leaves both on disk. The snapshot's watermark must keep
	// recovery from replaying the covered segments on top of the state
	// they are already folded into.
	s := testStore(t, Options{Sync: SyncNone, SegmentBytes: 512})
	l := openFresh(t, s, "m")
	cursor, id := 9.0, 20
	for i := 0; i < 6; i++ {
		cursor += 10
		if err := l.AppendBatch(Batch{Cursor: cursor, NextID: int64(id + 10), Records: mkRecords(10, id, cursor-9)}); err != nil {
			t.Fatal(err)
		}
		id += 10
	}
	covered, err := l.Cut()
	if err != nil {
		t.Fatal(err)
	}
	// Save the covered segments so the "crash" can resurrect them
	// after WriteSnapshot deletes them.
	dir := s.Dir("m")
	saved := make(map[string][]byte, len(covered))
	for _, seq := range covered {
		b, err := os.ReadFile(filepath.Join(dir, segmentName(seq)))
		if err != nil {
			t.Fatal(err)
		}
		saved[segmentName(seq)] = b
	}
	state := seedSnapshot()
	state.Records = mkRecords(5, 0, 0)
	state.Cursor, state.NextID, state.Version = cursor, int64(id+10), 3
	if err := l.WriteSnapshot(state, covered); err != nil {
		t.Fatal(err)
	}
	// One post-snapshot batch: the legitimate replay tail.
	if err := l.AppendBatch(Batch{Cursor: cursor + 10, NextID: int64(id + 20), Records: mkRecords(10, id, cursor+1)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	for name, b := range saved {
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	l2, snap, replayed, err := s.Open("m")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if replayed != 10 {
		t.Fatalf("replayed %d records, want only the 10 post-snapshot ones", replayed)
	}
	if len(snap.Records) != 15 || snap.Cursor != cursor+10 {
		t.Fatalf("recovered records=%d cursor=%v, want 15/%v (covered segments double-applied?)",
			len(snap.Records), snap.Cursor, cursor+10)
	}
	// Open finishes the interrupted deletion.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range segs {
		if _, stale := saved[segmentName(seq)]; stale {
			t.Fatalf("stale covered segment %d survived recovery (segments: %v)", seq, segs)
		}
	}
}

func TestMidLogCorruptionIsAnError(t *testing.T) {
	// A damaged frame is a legitimate torn tail only in the last
	// segment; in an earlier one it must surface as an error instead of
	// silently dropping the rest of that segment.
	s := testStore(t, Options{Sync: SyncNone, SegmentBytes: 512})
	l := openFresh(t, s, "m")
	cursor, id := 9.0, 20
	for i := 0; i < 6; i++ {
		cursor += 10
		if err := l.AppendBatch(Batch{Cursor: cursor, NextID: int64(id + 10), Records: mkRecords(10, id, cursor-9)}); err != nil {
			t.Fatal(err)
		}
		id += 10
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	dir := s.Dir("m")
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("need at least two segments, got %v", segs)
	}
	// Flip one payload byte in the middle of the first (non-last)
	// segment: CRC mismatch, mid-log.
	first := filepath.Join(dir, segmentName(segs[0]))
	b, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(first, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.Open("m"); err == nil {
		t.Fatal("Open tolerated mid-log corruption in a non-last segment")
	}
}

func TestStoreListDeleteExists(t *testing.T) {
	s := testStore(t, Options{})
	for _, id := range []string{"b", "a", "weird/πid"} {
		l := openFresh(t, s, id)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"a", "b", "weird/πid"}) {
		t.Fatalf("List = %v", ids)
	}
	if !s.Exists("weird/πid") || s.Exists("nope") {
		t.Fatal("Exists misreports")
	}
	if err := s.Delete("b"); err != nil {
		t.Fatal(err)
	}
	ids, _ = s.List()
	if !reflect.DeepEqual(ids, []string{"a", "weird/πid"}) {
		t.Fatalf("List after delete = %v", ids)
	}

	// A dir without a snapshot (crashed before the first one) is not
	// listed as durable state.
	if _, _, _, err := s.Open("fresh-never-snapshotted"); err != nil {
		t.Fatal(err)
	}
	ids, _ = s.List()
	if len(ids) != 2 {
		t.Fatalf("snapshot-less dir leaked into List: %v", ids)
	}
}

func TestSyncIntervalPolicy(t *testing.T) {
	// Smoke: interval policy writes survive Close and a long interval
	// never fsyncs per append (only observable as "no error" here; the
	// timing branch is exercised with a zero interval forcing fsync).
	s := testStore(t, Options{Sync: SyncInterval, SyncEvery: time.Nanosecond})
	l := openFresh(t, s, "m")
	if err := l.AppendBatch(Batch{Cursor: 10, NextID: 11, Records: mkRecords(1, 10, 10)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if l.Appends() != 1 || l.SnapshotBytes() == 0 {
		t.Fatalf("counters: appends=%d snapshotBytes=%d", l.Appends(), l.SnapshotBytes())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, snap, replayed, err := s.Open("m")
	if err != nil || snap == nil || replayed != 1 {
		t.Fatalf("recover: snap=%v replayed=%d err=%v", snap, replayed, err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"always": SyncAlways, "interval": SyncInterval, "": SyncInterval,
		"none": SyncNone, "never": SyncNone, "ALWAYS": SyncAlways,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("want error for unknown policy")
	}
}
