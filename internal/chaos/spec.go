package chaos

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// This file is the operational surface of the injector: a JSON wire
// form for scenarios (so the daemons can arm faults from a flag — the
// CI chaos drill does) and a server-side http.Handler middleware that
// applies a scenario to inbound requests, mirroring what Transport
// does to outbound ones.

// ruleSpec is the JSON wire form of one Rule.
type ruleSpec struct {
	Name       string  `json:"name,omitempty"`
	Host       string  `json:"host,omitempty"`
	PathPrefix string  `json:"path_prefix,omitempty"`
	Method     string  `json:"method,omitempty"`
	Fault      string  `json:"fault"`
	LatencyMs  float64 `json:"latency_ms,omitempty"`
	Status     int     `json:"status,omitempty"`
	At         []int   `json:"at,omitempty"`
	Every      int     `json:"every,omitempty"`
	P          float64 `json:"p,omitempty"`
}

// scenarioSpec is the JSON wire form of a Scenario.
type scenarioSpec struct {
	Seed  uint64     `json:"seed,omitempty"`
	Rules []ruleSpec `json:"rules"`
}

// parseFault maps the wire fault name to a Fault.
func parseFault(s string) (Fault, error) {
	switch s {
	case "latency":
		return FaultLatency, nil
	case "reset":
		return FaultReset, nil
	case "error":
		return FaultError, nil
	case "slow_body":
		return FaultSlowBody, nil
	default:
		return FaultNone, fmt.Errorf("chaos: unknown fault %q (want latency, reset, error or slow_body)", s)
	}
}

// ParseScenario decodes the JSON wire form of a fault plan, e.g.
//
//	{"seed":1,"rules":[{"fault":"latency","latency_ms":80,
//	 "path_prefix":"/v1/models/","every":2}]}
//
// Every rule must name a fault and at least one trigger (at, every or
// p) — an inert rule in a chaos flag is always a typo, so it is
// rejected rather than silently never firing.
func ParseScenario(doc []byte) (Scenario, error) {
	var spec scenarioSpec
	if err := json.Unmarshal(doc, &spec); err != nil {
		return Scenario{}, fmt.Errorf("chaos: parsing scenario: %w", err)
	}
	if len(spec.Rules) == 0 {
		return Scenario{}, fmt.Errorf("chaos: scenario has no rules")
	}
	sc := Scenario{Seed: spec.Seed}
	for i, rs := range spec.Rules {
		fault, err := parseFault(rs.Fault)
		if err != nil {
			return Scenario{}, fmt.Errorf("rules[%d]: %w", i, err)
		}
		if len(rs.At) == 0 && rs.Every == 0 && rs.P == 0 {
			return Scenario{}, fmt.Errorf("chaos: rules[%d]: no trigger (set at, every or p)", i)
		}
		if rs.P < 0 || rs.P > 1 {
			return Scenario{}, fmt.Errorf("chaos: rules[%d]: p %v outside [0, 1]", i, rs.P)
		}
		sc.Rules = append(sc.Rules, Rule{
			Name:       rs.Name,
			Host:       rs.Host,
			PathPrefix: rs.PathPrefix,
			Method:     rs.Method,
			Fault:      fault,
			Latency:    time.Duration(rs.LatencyMs * float64(time.Millisecond)),
			Status:     rs.Status,
			At:         rs.At,
			Every:      rs.Every,
			P:          rs.P,
		})
	}
	return sc, nil
}

// Middleware applies the scenario to inbound requests of an HTTP
// server — the self-injection seam the gridstratd -chaos flag arms, so
// a CI drill can latency-spike or fail a real daemon without touching
// the network between the processes.
//
//   - latency / slow_body: the handler runs after the injected delay
//     (cancelled early if the client gives up). The sleeping request
//     holds whatever admission slot it was granted, exactly like a
//     genuinely slow computation.
//   - error: the synthetic 5xx envelope is written without invoking
//     the handler.
//   - reset: the connection is dropped via http.ErrAbortHandler — the
//     peer sees the same mid-request loss a crashed process produces.
func Middleware(next http.Handler, sc Scenario) http.Handler {
	t := NewTransport(nil, sc) // reused for its rule/trigger engine
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rule, fire := t.decide(r)
		if !fire {
			next.ServeHTTP(w, r)
			return
		}
		t.injected.Add(1)
		switch rule.Fault {
		case FaultReset:
			panic(http.ErrAbortHandler)
		case FaultError:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(rule.Status)
			fmt.Fprintf(w, `{"error":{"code":"chaos","message":"injected %s by rule %q"}}`,
				rule.Fault, rule.Name)
		case FaultLatency, FaultSlowBody:
			if err := sleepCtx(r, rule.Latency); err != nil {
				return // client gone; nothing to answer
			}
			next.ServeHTTP(w, r)
		default:
			next.ServeHTTP(w, r)
		}
	})
}
