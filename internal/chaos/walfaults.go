package chaos

import (
	"sync/atomic"
	"syscall"

	"gridstrat/internal/wal"
)

// WALFaults is a deterministic fault plan for a WAL's append path,
// keyed by 1-based append index: "the 3rd append hits ENOSPC", "the
// 5th append tears after 60% of the frame". Build one, arm it with
// ENOSPCAt/TornAt/FsyncErrAt, and hand Hooks() to wal.Options.
//
// The plan is index-exact, not probabilistic: a test that arms a fault
// at append N gets that fault at append N on every run.
type WALFaults struct {
	appends atomic.Uint64 // appends seen (hook consultations)
	syncs   atomic.Uint64 // fsyncs seen

	enospc   map[uint64]bool    // append index → fail before writing
	torn     map[uint64]float64 // append index → write this fraction, then "crash"
	fsyncErr map[uint64]bool    // fsync index → fail the flush
}

// NewWALFaults returns an empty plan (no faults armed).
func NewWALFaults() *WALFaults {
	return &WALFaults{
		enospc:   map[uint64]bool{},
		torn:     map[uint64]float64{},
		fsyncErr: map[uint64]bool{},
	}
}

// ENOSPCAt arms a disk-full failure on the n-th append (1-based):
// nothing is written and the append returns ENOSPC. Returns the plan
// for chaining.
func (f *WALFaults) ENOSPCAt(n int) *WALFaults {
	f.enospc[uint64(n)] = true
	return f
}

// TornAt arms a torn write on the n-th append (1-based): frac of the
// frame (0 < frac < 1) reaches the file and the simulated crash stops
// everything after, poisoning the log. Recovery must truncate the torn
// tail and land bit-equal to the last acked state.
func (f *WALFaults) TornAt(n int, frac float64) *WALFaults {
	if frac <= 0 {
		frac = 0.5
	}
	if frac >= 1 {
		frac = 0.99
	}
	f.torn[uint64(n)] = frac
	return f
}

// FsyncErrAt arms a flush failure on the n-th fsync (1-based): the
// append that triggered it fails its ack and the unsynced frame is
// clawed back.
func (f *WALFaults) FsyncErrAt(n int) *WALFaults {
	f.fsyncErr[uint64(n)] = true
	return f
}

// Appends returns how many appends the plan has been consulted for.
func (f *WALFaults) Appends() uint64 { return f.appends.Load() }

// Syncs returns how many fsyncs the plan has been consulted for.
// Tests arm FsyncErrAt(Syncs()+1) to fail exactly the next flush.
func (f *WALFaults) Syncs() uint64 { return f.syncs.Load() }

// Hooks compiles the plan into wal.Hooks for wal.Options.
func (f *WALFaults) Hooks() *wal.Hooks {
	return &wal.Hooks{
		BeforeAppend: func(frame []byte) (int, error) {
			n := f.appends.Add(1)
			if f.enospc[n] {
				return 0, syscall.ENOSPC
			}
			if frac, ok := f.torn[n]; ok {
				keep := int(float64(len(frame)) * frac)
				if keep < 1 {
					keep = 1
				}
				if keep >= len(frame) {
					keep = len(frame) - 1
				}
				return keep, syscall.EIO
			}
			return 0, nil
		},
		BeforeSync: func() error {
			n := f.syncs.Add(1)
			if f.fsyncErr[n] {
				return syscall.EIO
			}
			return nil
		},
	}
}
