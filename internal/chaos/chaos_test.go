package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// get issues one GET through the transport and returns the status
// (0 on transport error) and the error.
func get(t *testing.T, tr *Transport, url string) (int, error) {
	t.Helper()
	client := &http.Client{Transport: tr, Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// TestTransportExactTriggers pins the deterministic contract: At and
// Every fire on exact match indices, nothing else is touched, and the
// same scenario replays identically.
func TestTransportExactTriggers(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	run := func() []int {
		tr := NewTransport(nil, Scenario{
			Seed: 42,
			Rules: []Rule{
				{Name: "reset", Fault: FaultReset, At: []int{2}},
				{Name: "err503", Fault: FaultError, Status: 503, Every: 3},
			},
		})
		var got []int
		for i := 0; i < 9; i++ {
			status, err := get(t, tr, srv.URL+"/v1/models/m")
			if err != nil {
				// http.Client wraps transport errors in *url.Error;
				// the only failure the backend can produce here is the
				// injected reset.
				if !errors.Is(err, ErrInjectedReset) {
					t.Fatalf("request %d: unexpected error %v", i, err)
				}
				got = append(got, -1)
				continue
			}
			got = append(got, status)
		}
		return got
	}

	first := run()
	// Request 2 (1-based) resets. Rule 2 sees matches 1,3,4,... (rule 1
	// consumed match 2 by firing first): its own 3rd match is overall
	// request 4, its 6th is request 7.
	want := []int{200, -1, 200, 503, 200, 200, 503, 200, 200}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("request %d: want %d, got %d (full: %v)", i+1, want[i], first[i], first)
		}
	}
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at request %d: %v vs %v", i+1, first, second)
		}
	}
}

// TestTransportSeededCoin pins that P-triggered faults replay
// identically for a fixed seed and differ across seeds.
func TestTransportSeededCoin(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	run := func(seed uint64) []int {
		tr := NewTransport(nil, Scenario{
			Seed:  seed,
			Rules: []Rule{{Name: "flaky", Fault: FaultError, Status: 500, P: 0.5}},
		})
		var got []int
		for i := 0; i < 32; i++ {
			status, err := get(t, tr, srv.URL+"/x")
			if err != nil {
				t.Fatalf("request %d: %v", i, err)
			}
			got = append(got, status)
		}
		return got
	}

	a1, a2 := run(7), run(7)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("seed 7 replay diverged at %d", i)
		}
	}
	b := run(8)
	same := true
	for i := range a1 {
		if a1[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical fault sequences")
	}
	fired := 0
	for _, s := range a1 {
		if s == 500 {
			fired++
		}
	}
	if fired < 8 || fired > 24 {
		t.Fatalf("p=0.5 over 32 draws fired %d times — stream looks broken", fired)
	}
}

// TestTransportMatchScoping: rules only touch matching traffic.
func TestTransportMatchScoping(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	tr := NewTransport(nil, Scenario{
		Rules: []Rule{
			{Name: "obs-only", PathPrefix: "/v1/models/m/observations", Method: "POST", Fault: FaultError, Every: 1},
			{Name: "other-host", Host: "no-such-host", Fault: FaultReset, Every: 1},
		},
	})
	client := &http.Client{Transport: tr, Timeout: 5 * time.Second}

	if status, err := get(t, tr, srv.URL+"/v1/models/m"); err != nil || status != 200 {
		t.Fatalf("unmatched GET: want 200, got %d err=%v", status, err)
	}
	resp, err := client.Post(srv.URL+"/v1/models/m/observations", "application/json", nil)
	if err != nil {
		t.Fatalf("matched POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Fatalf("matched POST: want injected 500, got %d", resp.StatusCode)
	}
	if tr.Fired("obs-only") != 1 || tr.Fired("other-host") != 0 || tr.Injected() != 1 {
		t.Fatalf("counters: obs-only=%d other-host=%d injected=%d",
			tr.Fired("obs-only"), tr.Fired("other-host"), tr.Injected())
	}
}

// TestTransportLatency: FaultLatency delays then forwards, and the
// request context cancels the injected sleep.
func TestTransportLatency(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	tr := NewTransport(nil, Scenario{
		Rules: []Rule{{Name: "slow", Fault: FaultLatency, Latency: 60 * time.Millisecond, Every: 1}},
	})
	start := time.Now()
	status, err := get(t, tr, srv.URL+"/x")
	if err != nil || status != 200 {
		t.Fatalf("latency fault: want delayed 200, got %d err=%v", status, err)
	}
	if el := time.Since(start); el < 50*time.Millisecond {
		t.Fatalf("latency fault returned in %v — injection skipped", el)
	}

	// A client deadline shorter than the injected delay cancels it.
	client := &http.Client{Transport: tr, Timeout: 10 * time.Millisecond}
	if _, err := client.Get(srv.URL + "/x"); err == nil {
		t.Fatal("expected deadline error through injected latency")
	}
}
