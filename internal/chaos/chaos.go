// Package chaos is the repo's deterministic fault injector: the same
// failure modes the gridstrat models describe — latency spikes, lost
// connections, server errors, slow responses, full disks, torn
// writes — reproduced on demand so every resilience mechanism
// (admission control, circuit breakers, hedged reads, WAL recovery)
// is exercised by tests instead of waited for in production.
//
// Two injection surfaces:
//
//   - Transport wraps an http.RoundTripper and applies a Scenario of
//     per-rule faults to matching requests. Decisions are drawn from a
//     seeded splitmix64 stream per rule, so a fixed seed replays the
//     same fault sequence (per rule, in that rule's match order).
//   - WALFaults builds wal.Hooks that fail specific appends or fsyncs
//     by 1-based index — ENOSPC before anything is written, or a torn
//     write that leaves half a frame on disk, exactly the crash shapes
//     WAL recovery must absorb.
//
// Nothing in this package is probabilistic unless a rule asks for it:
// Every-N and At-K triggers are exact counters, so the chaos drills in
// CI assert on invariants, not on luck.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedReset is the transport-level failure injected by a reset
// fault: indistinguishable in handling from a peer that dropped the
// TCP connection mid-request.
var ErrInjectedReset = errors.New("chaos: injected connection reset")

// Fault is one injected failure mode.
type Fault int

const (
	// FaultNone passes the request through untouched.
	FaultNone Fault = iota
	// FaultLatency delays the request by the rule's Latency, then
	// forwards it.
	FaultLatency
	// FaultReset fails the round trip with ErrInjectedReset without
	// forwarding anything.
	FaultReset
	// FaultError short-circuits with a synthetic HTTP error response
	// (the rule's Status, default 500) without forwarding.
	FaultError
	// FaultSlowBody forwards the request after the rule's Latency —
	// the "slow server" shape where headers and body dribble out late.
	FaultSlowBody
)

func (f Fault) String() string {
	switch f {
	case FaultLatency:
		return "latency"
	case FaultReset:
		return "reset"
	case FaultError:
		return "error"
	case FaultSlowBody:
		return "slow_body"
	default:
		return "none"
	}
}

// Rule matches a slice of traffic and decides which fault (if any)
// each matching request suffers. Match fields are ANDed; empty fields
// match everything. Triggers are checked in order: At (exact match
// indices) first, then Every, then P (seeded coin). A rule with no
// trigger never fires.
type Rule struct {
	// Name labels the rule in counters and logs.
	Name string
	// Host substring-matches the request URL host ("" = all).
	Host string
	// PathPrefix prefix-matches the URL path ("" = all).
	PathPrefix string
	// Method matches the request method exactly ("" = all).
	Method string

	// Fault is what happens when the rule fires.
	Fault Fault
	// Latency is the injected delay for FaultLatency/FaultSlowBody.
	Latency time.Duration
	// Status is the synthetic response code for FaultError (default 500).
	Status int

	// At fires on exactly these 1-based match indices.
	At []int
	// Every fires on every Nth match (1 = every match). Zero disables.
	Every int
	// P fires with this probability per match, drawn from the
	// scenario-seeded stream (0 disables). Ignored when At/Every fire.
	P float64
}

func (r Rule) matches(req *http.Request) bool {
	if r.Host != "" && !strings.Contains(req.URL.Host, r.Host) {
		return false
	}
	if r.PathPrefix != "" && !strings.HasPrefix(req.URL.Path, r.PathPrefix) {
		return false
	}
	if r.Method != "" && req.Method != r.Method {
		return false
	}
	return true
}

// Scenario is a reproducible fault plan: a seed plus an ordered rule
// list. The first rule that matches AND fires decides the request's
// fate; later rules are not consulted for that request.
type Scenario struct {
	Seed  uint64
	Rules []Rule
}

// ruleState is one rule's live trigger state.
type ruleState struct {
	rule    Rule
	rng     splitmix64
	matched atomic.Uint64
	fired   atomic.Uint64
}

// Transport applies a Scenario to an http.RoundTripper. It is safe
// for concurrent use; trigger decisions serialize per rule so the
// match counters (and the seeded stream) stay deterministic for a
// serialized workload.
type Transport struct {
	base  http.RoundTripper
	mu    sync.Mutex
	rules []*ruleState

	injected atomic.Uint64 // total faults injected
}

// NewTransport wraps base (nil = http.DefaultTransport) with the
// scenario's fault plan. Each rule draws from its own splitmix64
// stream seeded from Scenario.Seed and the rule index, so adding a
// rule does not reshuffle the others' decisions.
func NewTransport(base http.RoundTripper, sc Scenario) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	t := &Transport{base: base}
	for i, r := range sc.Rules {
		if r.Status == 0 {
			r.Status = http.StatusInternalServerError
		}
		t.rules = append(t.rules, &ruleState{
			rule: r,
			rng:  splitmix64(sc.Seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15)),
		})
	}
	return t
}

// Injected returns the total number of faults injected so far.
func (t *Transport) Injected() uint64 { return t.injected.Load() }

// Fired returns how many times the named rule fired.
func (t *Transport) Fired(name string) uint64 {
	for _, rs := range t.rules {
		if rs.rule.Name == name {
			return rs.fired.Load()
		}
	}
	return 0
}

// decide picks the fault for one request: the first matching rule
// whose trigger fires.
func (t *Transport) decide(req *http.Request) (Rule, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, rs := range t.rules {
		if !rs.rule.matches(req) {
			continue
		}
		n := rs.matched.Add(1)
		fire := false
		for _, at := range rs.rule.At {
			if uint64(at) == n {
				fire = true
				break
			}
		}
		if !fire && rs.rule.Every > 0 && n%uint64(rs.rule.Every) == 0 {
			fire = true
		}
		if !fire && rs.rule.P > 0 && rs.rng.float64() < rs.rule.P {
			fire = true
		}
		if fire {
			rs.fired.Add(1)
			return rs.rule, true
		}
	}
	return Rule{}, false
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	rule, fire := t.decide(req)
	if !fire {
		return t.base.RoundTrip(req)
	}
	t.injected.Add(1)
	switch rule.Fault {
	case FaultReset:
		return nil, fmt.Errorf("%w (rule %q, %s %s)", ErrInjectedReset, rule.Name, req.Method, req.URL.Path)
	case FaultError:
		return syntheticError(req, rule), nil
	case FaultLatency, FaultSlowBody:
		if err := sleepCtx(req, rule.Latency); err != nil {
			return nil, err
		}
		return t.base.RoundTrip(req)
	default:
		return t.base.RoundTrip(req)
	}
}

// sleepCtx waits d or until the request context ends.
func sleepCtx(req *http.Request, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-req.Context().Done():
		return req.Context().Err()
	case <-timer.C:
		return nil
	}
}

// syntheticError fabricates the backend error envelope shape so the
// injected failure is indistinguishable from a real 5xx to the code
// under test.
func syntheticError(req *http.Request, rule Rule) *http.Response {
	body := fmt.Sprintf(`{"error":{"code":"chaos","message":"injected %s by rule %q"}}`,
		rule.Fault, rule.Name)
	return &http.Response{
		StatusCode:    rule.Status,
		Status:        fmt.Sprintf("%d chaos", rule.Status),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": {"application/json"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// splitmix64 is the standard 64-bit mixing PRNG: tiny, seedable, and
// good enough for fault coins (crypto quality is not the point;
// reproducibility is).
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix64) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}
