package core

import (
	"context"
	"fmt"
	"math"

	"gridstrat/internal/stats"
)

// EJMultiple evaluates Eq. 3: the expected total latency of the
// multiple-submission strategy with a collection of b copies and
// timeout tInf,
//
//	EJ(t∞) = ∫₀^t∞ (1-F̃R(u))^b du ÷ (1 - (1-F̃R(t∞))^b).
//
// The whole collection is resubmitted at t∞ when no copy has started,
// so the denominator is the per-round success probability. b = 1
// recovers the single-resubmission Eq. 1. Infeasible parameters
// (b < 1 or t∞ <= 0) yield +Inf, matching the optimizer convention.
func EJMultiple(m Model, b int, tInf float64) float64 {
	if b < 1 || tInf <= 0 {
		return math.Inf(1)
	}
	success := 1 - stats.PowInt(1-m.Ftilde(tInf), b)
	if success <= 0 {
		return math.Inf(1)
	}
	return m.IntOneMinusFPow(tInf, b) / success
}

// ejMultipleBatch evaluates EJMultiple over an ascending timeout grid
// through the model's batch kernels: one O(n+G) integral sweep instead
// of G O(n) walks. Values are identical to per-point EJMultiple calls.
func ejMultipleBatch(m Model, bi BatchIntegrals, b int, ts []float64) []float64 {
	ints := bi.IntOneMinusFPowBatch(ts, b)
	out := make([]float64, len(ts))
	for i, t := range ts {
		if t <= 0 {
			out[i] = math.Inf(1)
			continue
		}
		success := 1 - stats.PowInt(1-m.Ftilde(t), b)
		if success <= 0 {
			out[i] = math.Inf(1)
			continue
		}
		out[i] = ints[i] / success
	}
	return out
}

// SigmaMultiple evaluates Eq. 4: the standard deviation of the total
// latency of the multiple-submission strategy. Infeasible parameters
// yield +Inf.
func SigmaMultiple(m Model, b int, tInf float64) float64 {
	if b < 1 || tInf <= 0 {
		return math.Inf(1)
	}
	qb := stats.PowInt(1-m.Ftilde(tInf), b)
	success := 1 - qb
	if success <= 0 {
		return math.Inf(1)
	}
	i0 := m.IntOneMinusFPow(tInf, b)  // ∫ (1-F̃)^b
	i1 := m.IntUOneMinusFPow(tInf, b) // ∫ u(1-F̃)^b
	variance := 2*i1/success +
		2*tInf*qb*i0/(success*success) -
		(i0*i0)/(success*success)
	if variance < 0 {
		// Numerical cancellation can drive a tiny negative value.
		variance = 0
	}
	return math.Sqrt(variance)
}

// OptimizeMultiple minimizes EJ over the timeout for a fixed
// collection size b, returning the optimal t∞ and the evaluation at
// the optimum (σJ included, Parallel = b).
func OptimizeMultiple(m Model, b int) (tInf float64, ev Evaluation) {
	checkB(b)
	tInf, ev, err := OptimizeMultipleCtx(context.Background(), m, b, 1)
	if err != nil {
		panic(err) // background context: only a degenerate model bracket
	}
	return tInf, ev
}

// OptimizeMultipleCtx is OptimizeMultiple with parameter validation,
// cancellation and a worker count: invalid b and degenerate timeout
// brackets are returned as errors instead of panicking, a done ctx
// aborts the scan, and the grid rounds fan across up to `workers`
// goroutines (<= 0 means all cores; results are identical for every
// count).
func OptimizeMultipleCtx(ctx context.Context, m Model, b int, workers int) (float64, Evaluation, error) {
	if err := ValidateB(b); err != nil {
		return 0, Evaluation{}, err
	}
	var evalBatch func(ts []float64) []float64
	if bi, ok := m.(BatchIntegrals); ok {
		evalBatch = func(ts []float64) []float64 { return ejMultipleBatch(m, bi, b, ts) }
	}
	r, err := optimizeTimeout(ctx, m, func(t float64) float64 { return EJMultiple(m, b, t) }, evalBatch, workers)
	if err != nil {
		return 0, Evaluation{}, err
	}
	return r.X, Evaluation{
		EJ:       r.F,
		Sigma:    SigmaMultiple(m, b, r.X),
		Parallel: float64(b),
	}, nil
}

// MultipleCurve tabulates EJ(t∞) for one collection size over n
// uniformly spaced timeouts up to hi — the data behind Figure 2.
func MultipleCurve(m Model, b int, hi float64, n int) (timeouts, ej []float64) {
	checkB(b)
	if n < 2 || hi <= 0 {
		panic(fmt.Sprintf("core: invalid curve spec hi=%v n=%d", hi, n))
	}
	timeouts = make([]float64, n)
	for i := 0; i < n; i++ {
		timeouts[i] = hi * float64(i+1) / float64(n)
	}
	// The curve grid is ascending, so a batch-capable model tabulates
	// the whole figure in one integral sweep.
	if bi, ok := m.(BatchIntegrals); ok {
		return timeouts, ejMultipleBatch(m, bi, b, timeouts)
	}
	ej = make([]float64, n)
	for i, t := range timeouts {
		ej[i] = EJMultiple(m, b, t)
	}
	return timeouts, ej
}

// ValidateB checks the multiple-submission collection size.
func ValidateB(b int) error {
	if b < 1 {
		return fmt.Errorf("core: collection size b must be >= 1, got %d", b)
	}
	return nil
}

func checkB(b int) {
	if err := ValidateB(b); err != nil {
		panic(err.Error())
	}
}
