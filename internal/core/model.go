// Package core implements the probabilistic submission-strategy models
// of "Modeling User Submission Strategies on Production Grids"
// (Lingrand, Montagnat, Glatard — HPDC 2009).
//
// All three strategies are functionals of the cumulative latency
// histogram F̃R(t) = (1-ρ)·FR(t), where FR is the CDF of non-outlier
// latencies and ρ the outlier ratio:
//
//   - single resubmission with timeout t∞ (paper §4, Eq. 1–2),
//   - multiple submission of b copies (paper §5, Eq. 3–4),
//   - delayed resubmission with delay t0 and timeout t∞ (paper §6),
//     including the average parallel-job count N‖ (§6.1) and the cost
//     criterion Δcost (§7, Eq. 6).
//
// The latency model is abstracted by the Model interface with an exact
// empirical implementation (step-function integrals over a trace ECDF,
// no discretization error) and a parametric implementation (closed-form
// or quadrature over any stats.Distribution), so every formula can be
// cross-validated three ways: exact analytics, quadrature, and Monte
// Carlo simulation of the actual client behaviour.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"gridstrat/internal/stats"
	"gridstrat/internal/trace"
)

// Inf marks an outlier latency in samples drawn from a Model: the job
// never starts within any practical horizon and must be resubmitted.
var Inf = math.Inf(1)

// Model is the latency law F̃R consumed by every strategy formula.
//
// Concurrency: the Planner and the `…Ctx` entry points with a worker
// count other than 1 call Model methods from multiple goroutines, so
// implementations used there must be safe for concurrent use (the
// in-repo empirical and parametric models are — they are read-only
// after construction). The legacy non-ctx free functions and the
// Strategy methods run on the calling goroutine only and carry no such
// requirement; passing workers = 1 (or Planner WithParallelism(1))
// opts any entry point out of concurrency.
type Model interface {
	// Ftilde returns F̃R(t) = (1-ρ)·FR(t) = P(R < t), the probability
	// that a submitted job starts before t.
	Ftilde(t float64) float64
	// Rho returns the outlier ratio ρ.
	Rho() float64
	// UpperBound returns the largest useful timeout (the probe
	// censoring bound); optimizers bracket searches with it.
	UpperBound() float64
	// IntOneMinusFPow returns ∫₀ᵀ (1 - F̃R(u))^b du.
	IntOneMinusFPow(T float64, b int) float64
	// IntUOneMinusFPow returns ∫₀ᵀ u·(1 - F̃R(u))^b du.
	IntUOneMinusFPow(T float64, b int) float64
	// IntProdOneMinusF returns ∫₀ᵀ (1-F̃R(u+shift))·(1-F̃R(u)) du, the
	// cross term of the delayed-resubmission survival function.
	IntProdOneMinusF(T, shift float64) float64
	// IntUProdOneMinusF returns ∫₀ᵀ u·(1-F̃R(u+shift))·(1-F̃R(u)) du.
	IntUProdOneMinusF(T, shift float64) float64
	// Sample draws one job latency: Inf with probability ρ, otherwise
	// a draw from FR.
	Sample(rng *rand.Rand) float64
}

// BatchIntegrals is an optional Model extension the grid-scan
// optimizers detect with a type assertion: a model that can answer a
// whole ascending grid of integral queries in one sweep (the ECDF
// prefix-sum kernels answer G queries in O(n + G) instead of G
// separate O(n) walks). Batch results must be identical — bit for bit
// — to the corresponding scalar methods at every entry, so detecting
// the extension is purely a wall-clock optimization and never changes
// an optimizer's answer.
type BatchIntegrals interface {
	// IntOneMinusFPowBatch returns ∫₀ᵀ (1-F̃R(u))^b du for every T in Ts
	// (ascending for the swept path).
	IntOneMinusFPowBatch(Ts []float64, b int) []float64
	// IntUOneMinusFPowBatch returns ∫₀ᵀ u·(1-F̃R(u))^b du for every T.
	IntUOneMinusFPowBatch(Ts []float64, b int) []float64
	// IntProdBothBatch returns both delayed cross terms for every T in
	// Ts at a single shared shift — one merged walk for a whole grid
	// row of the (t0, t∞) surface.
	IntProdBothBatch(Ts []float64, shift float64) (plain, uweighted []float64)
}

// ProdBothIntegrals is an optional Model extension: both delayed
// cross-term integrals from one merged walk. delayedMoments detects it
// to halve its walk count; results must equal the two scalar methods.
type ProdBothIntegrals interface {
	IntProdBothOneMinusF(T, shift float64) (plain, uweighted float64)
}

// --- Empirical model ---

// EmpiricalModel is the trace-driven Model: FR is an empirical law of
// completed-probe latencies and every integral is evaluated on its
// step function. The law is any stats.EmpiricalDistribution — the
// exact counted ECDF or the mergeable quantile Sketch — so the model,
// the Planner memoization above it, and every strategy formula are
// representation-agnostic: swapping the backend (the serving layer's
// exact ⇄ sketch tier moves) changes nothing at any call site. With
// the ECDF backend every integral is exact; with the Sketch backend it
// is exact over the sketched step function, within the sketch's rank
// error bound of the true one.
type EmpiricalModel struct {
	dist    stats.EmpiricalDistribution
	rho     float64
	timeout float64
}

// NewEmpiricalModel wraps an ECDF of non-outlier latencies with an
// outlier ratio and censoring bound.
func NewEmpiricalModel(ecdf *stats.ECDF, rho, timeout float64) (*EmpiricalModel, error) {
	if ecdf == nil {
		return nil, errors.New("core: nil ECDF")
	}
	return NewEmpiricalModelDist(ecdf, rho, timeout)
}

// NewEmpiricalModelDist wraps any empirical latency law — exact ECDF
// or quantile Sketch — with an outlier ratio and censoring bound; the
// representation-agnostic constructor the tiered serving layer uses.
func NewEmpiricalModelDist(dist stats.EmpiricalDistribution, rho, timeout float64) (*EmpiricalModel, error) {
	if dist == nil {
		return nil, errors.New("core: nil distribution")
	}
	if rho < 0 || rho >= 1 || math.IsNaN(rho) {
		return nil, fmt.Errorf("core: outlier ratio %v outside [0, 1)", rho)
	}
	if timeout <= 0 {
		return nil, fmt.Errorf("core: non-positive timeout %v", timeout)
	}
	return &EmpiricalModel{dist: dist, rho: rho, timeout: timeout}, nil
}

// ModelFromTrace builds the empirical latency model of a probe trace.
func ModelFromTrace(t *trace.Trace) (*EmpiricalModel, error) {
	e, err := t.ECDF()
	if err != nil {
		return nil, fmt.Errorf("core: building model from trace %q: %w", t.Name, err)
	}
	return NewEmpiricalModel(e, t.OutlierRatio(), t.Timeout)
}

// Distribution exposes the underlying empirical latency law, whatever
// its representation (read-only use).
func (m *EmpiricalModel) Distribution() stats.EmpiricalDistribution { return m.dist }

// ECDF exposes the underlying empirical CDF as a step-function ECDF
// (read-only use). For an exact-backed model this is the ECDF itself;
// for a sketch-backed model it is the sketch's compiled counted-ECDF
// view, so bootstrap resampling and plotting code keep working across
// tiers.
func (m *EmpiricalModel) ECDF() *stats.ECDF {
	switch d := m.dist.(type) {
	case *stats.ECDF:
		return d
	case *stats.Sketch:
		return d.View()
	default:
		return nil
	}
}

func (m *EmpiricalModel) Ftilde(t float64) float64 { return (1 - m.rho) * m.dist.Eval(t) }
func (m *EmpiricalModel) Rho() float64             { return m.rho }
func (m *EmpiricalModel) UpperBound() float64      { return m.timeout }

func (m *EmpiricalModel) IntOneMinusFPow(T float64, b int) float64 {
	return m.dist.IntegralOneMinusFPow(T, 1-m.rho, b)
}

func (m *EmpiricalModel) IntUOneMinusFPow(T float64, b int) float64 {
	return m.dist.IntegralUOneMinusFPow(T, 1-m.rho, b)
}

func (m *EmpiricalModel) IntProdOneMinusF(T, shift float64) float64 {
	return m.dist.IntegralProdOneMinusF(T, shift, 1-m.rho)
}

func (m *EmpiricalModel) IntUProdOneMinusF(T, shift float64) float64 {
	return m.dist.IntegralUProdOneMinusF(T, shift, 1-m.rho)
}

// IntOneMinusFPowBatch implements BatchIntegrals over the law's
// prefix-sum kernel.
func (m *EmpiricalModel) IntOneMinusFPowBatch(Ts []float64, b int) []float64 {
	return m.dist.IntegralOneMinusFPowBatch(Ts, 1-m.rho, b)
}

// IntUOneMinusFPowBatch implements BatchIntegrals.
func (m *EmpiricalModel) IntUOneMinusFPowBatch(Ts []float64, b int) []float64 {
	return m.dist.IntegralUOneMinusFPowBatch(Ts, 1-m.rho, b)
}

// IntProdBothBatch implements BatchIntegrals: one merged walk answers
// both cross terms for a whole sorted grid sharing one shift.
func (m *EmpiricalModel) IntProdBothBatch(Ts []float64, shift float64) (plain, uweighted []float64) {
	return m.dist.IntegralProdBothBatch(Ts, shift, 1-m.rho)
}

// IntProdBothOneMinusF implements ProdBothIntegrals: both cross terms
// from one walk.
func (m *EmpiricalModel) IntProdBothOneMinusF(T, shift float64) (plain, uweighted float64) {
	return m.dist.IntegralProdBoth(T, shift, 1-m.rho)
}

func (m *EmpiricalModel) Sample(rng *rand.Rand) float64 {
	if rng.Float64() < m.rho {
		return Inf
	}
	return m.dist.Rand(rng)
}

// MemBytes estimates the resident heap footprint of the model's
// latency law — the registry's byte accounting reads it.
func (m *EmpiricalModel) MemBytes() int64 { return m.dist.MemBytes() }

// TableKeys returns the (s, b) prefix-sum kernel keys this model's law
// has built — the warm-cache manifest of an outgoing model epoch.
// Handing it to the successor's Prewarm reproduces the old epoch's hot
// tables ahead of an atomic model swap.
func (m *EmpiricalModel) TableKeys() []stats.TableKey { return m.dist.TableKeys() }

// Prewarm eagerly builds the law's kernels for the given keys, so the
// first queries on a freshly swapped-in model cost a binary search
// instead of an O(n) table build. Safe for concurrent use. The
// bootstrap-sampler table warms separately (PrewarmSampler on the law)
// and only when the predecessor actually sampled.
func (m *EmpiricalModel) Prewarm(keys []stats.TableKey) { m.dist.Prewarm(keys) }

// --- Parametric model ---

// ParametricModel is a Model over an analytic latency distribution;
// integrals use adaptive quadrature. It exists to validate the exact
// empirical path against closed forms (e.g. exponential latencies) and
// to run what-if studies without a trace.
type ParametricModel struct {
	dist    stats.Distribution
	rho     float64
	timeout float64
}

// NewParametricModel wraps a latency distribution with an outlier
// ratio and an upper bound for optimizer brackets.
func NewParametricModel(d stats.Distribution, rho, timeout float64) (*ParametricModel, error) {
	if d == nil {
		return nil, errors.New("core: nil distribution")
	}
	if rho < 0 || rho >= 1 || math.IsNaN(rho) {
		return nil, fmt.Errorf("core: outlier ratio %v outside [0, 1)", rho)
	}
	if timeout <= 0 {
		return nil, fmt.Errorf("core: non-positive timeout %v", timeout)
	}
	return &ParametricModel{dist: d, rho: rho, timeout: timeout}, nil
}

// Distribution exposes the underlying latency law.
func (m *ParametricModel) Distribution() stats.Distribution { return m.dist }

func (m *ParametricModel) Ftilde(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return (1 - m.rho) * m.dist.CDF(t)
}
func (m *ParametricModel) Rho() float64        { return m.rho }
func (m *ParametricModel) UpperBound() float64 { return m.timeout }

func (m *ParametricModel) IntOneMinusFPow(T float64, b int) float64 {
	if T <= 0 {
		return 0
	}
	f := func(u float64) float64 {
		return stats.PowInt(1-m.Ftilde(u), b)
	}
	return chunkedAdaptive(f, T, 1e-10*T)
}

func (m *ParametricModel) IntUOneMinusFPow(T float64, b int) float64 {
	if T <= 0 {
		return 0
	}
	f := func(u float64) float64 {
		return u * stats.PowInt(1-m.Ftilde(u), b)
	}
	return chunkedAdaptive(f, T, 1e-10*T*T)
}

// chunkedAdaptive integrates f over [0, T] in geometrically growing
// chunks. Latency integrands concentrate in the first percent of large
// timeouts, where a single top-level adaptive pass can sample past the
// feature and terminate spuriously; per-chunk adaptivity cannot.
func chunkedAdaptive(f func(float64) float64, T, tol float64) float64 {
	total := 0.0
	lo := 0.0
	step := T / 1024
	for lo < T {
		hi := math.Min(T, math.Max(2*lo, step))
		total += stats.AdaptiveSimpson(f, lo, hi, tol/12)
		lo = hi
	}
	return total
}

func (m *ParametricModel) IntProdOneMinusF(T, shift float64) float64 {
	if T <= 0 {
		return 0
	}
	f := func(u float64) float64 {
		return (1 - m.Ftilde(u+shift)) * (1 - m.Ftilde(u))
	}
	return chunkedAdaptive(f, T, 1e-10*T)
}

func (m *ParametricModel) IntUProdOneMinusF(T, shift float64) float64 {
	if T <= 0 {
		return 0
	}
	f := func(u float64) float64 {
		return u * (1 - m.Ftilde(u+shift)) * (1 - m.Ftilde(u))
	}
	return chunkedAdaptive(f, T, 1e-10*T*T)
}

func (m *ParametricModel) Sample(rng *rand.Rand) float64 {
	if rng.Float64() < m.rho {
		return Inf
	}
	return m.dist.Rand(rng)
}
