package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// SimResult summarizes a Monte Carlo simulation of a strategy: the
// realized mean and standard deviation of the total latency J, the
// standard error of the mean, the average number of job submissions
// per task (infrastructure load in absolute submissions), and the
// average time-weighted parallel-copy count N‖.
type SimResult struct {
	Runs            int
	EJ              float64
	Sigma           float64
	StdErr          float64
	MeanSubmissions float64
	MeanParallel    float64
}

// ErrNoSuccessMass is returned when the timeout leaves no probability
// of a job starting, so every strategy would loop forever.
var ErrNoSuccessMass = errors.New("core: F̃R(t∞) = 0, strategy cannot terminate")

func checkSimInputs(m Model, tInf float64, runs int) error {
	if runs <= 0 {
		return fmt.Errorf("core: runs must be positive, got %d", runs)
	}
	if m.Ftilde(tInf) <= 0 {
		return ErrNoSuccessMass
	}
	return nil
}

// simCancelStride is how many Monte Carlo runs execute between two
// context checks in the ctx-aware simulators; the same stride bounds
// the resubmission rounds of a single run, which can themselves be
// near-unbounded when F̃R(t∞) is tiny.
const simCancelStride = 256

// SimulateSingle replays the single-resubmission strategy: submit,
// cancel at tInf, resubmit, until a job starts. It validates Eq. 1–2.
func SimulateSingle(m Model, tInf float64, runs int, rng *rand.Rand) (SimResult, error) {
	return SimulateSingleCtx(context.Background(), m, tInf, runs, rng)
}

// SimulateSingleCtx is SimulateSingle with cancellation, checked every
// simCancelStride runs.
func SimulateSingleCtx(ctx context.Context, m Model, tInf float64, runs int, rng *rand.Rand) (SimResult, error) {
	if err := checkSimInputs(m, tInf, runs); err != nil {
		return SimResult{}, err
	}
	var sum, sum2, subs float64
	for i := 0; i < runs; i++ {
		if i%simCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return SimResult{}, err
			}
		}
		var j float64
		for round := 1; ; round++ {
			if round%simCancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return SimResult{}, err
				}
			}
			subs++
			l := m.Sample(rng)
			if l < tInf {
				j += l
				break
			}
			j += tInf
		}
		sum += j
		sum2 += j * j
	}
	return newSimResult(runs, sum, sum2, subs/float64(runs), 1), nil
}

// SimulateMultiple replays the multiple-submission strategy: a
// collection of b copies is submitted, all canceled when one starts;
// the whole collection is resubmitted at tInf if none started. It
// validates Eq. 3–4. An invalid collection size is returned as an
// error.
func SimulateMultiple(m Model, b int, tInf float64, runs int, rng *rand.Rand) (SimResult, error) {
	return SimulateMultipleCtx(context.Background(), m, b, tInf, runs, rng)
}

// SimulateMultipleCtx is SimulateMultiple with cancellation, checked
// every simCancelStride runs.
func SimulateMultipleCtx(ctx context.Context, m Model, b int, tInf float64, runs int, rng *rand.Rand) (SimResult, error) {
	if err := ValidateB(b); err != nil {
		return SimResult{}, err
	}
	if err := checkSimInputs(m, tInf, runs); err != nil {
		return SimResult{}, err
	}
	var sum, sum2, subs float64
	for i := 0; i < runs; i++ {
		if i%simCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return SimResult{}, err
			}
		}
		var j float64
		for round := 1; ; round++ {
			if round%simCancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return SimResult{}, err
				}
			}
			subs += float64(b)
			best := math.Inf(1)
			for k := 0; k < b; k++ {
				if l := m.Sample(rng); l < best {
					best = l
				}
			}
			if best < tInf {
				j += best
				break
			}
			j += tInf
		}
		sum += j
		sum2 += j * j
	}
	return newSimResult(runs, sum, sum2, subs/float64(runs), float64(b)), nil
}

// SimulateDelayed replays the delayed-resubmission strategy exactly as
// figure 4 of the paper describes it: a copy is submitted every T0
// while nothing has started, each copy is canceled TInf after its own
// submission, and everything is canceled the moment one copy starts.
// N‖ is measured as copy-seconds in the system divided by J.
func SimulateDelayed(m Model, p DelayedParams, runs int, rng *rand.Rand) (SimResult, error) {
	return SimulateDelayedCtx(context.Background(), m, p, runs, rng)
}

// SimulateDelayedCtx is SimulateDelayed with cancellation, checked
// every simCancelStride runs.
func SimulateDelayedCtx(ctx context.Context, m Model, p DelayedParams, runs int, rng *rand.Rand) (SimResult, error) {
	if err := p.Validate(); err != nil {
		return SimResult{}, err
	}
	if err := checkSimInputs(m, p.TInf, runs); err != nil {
		return SimResult{}, err
	}
	var sum, sum2, subs, par float64
	for i := 0; i < runs; i++ {
		if i%simCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return SimResult{}, err
			}
		}
		j, submitted, copySeconds, err := runDelayedOnce(ctx, m, p, rng)
		if err != nil {
			return SimResult{}, err
		}
		sum += j
		sum2 += j * j
		subs += float64(submitted)
		par += copySeconds / j
	}
	r := newSimResult(runs, sum, sum2, subs/float64(runs), par/float64(runs))
	return r, nil
}

// runDelayedOnce simulates one task under the delayed strategy and
// returns its total latency J, the number of copies submitted, and the
// total copy-seconds spent in the system before J. A cancelled ctx
// aborts even a single near-unbounded run.
func runDelayedOnce(ctx context.Context, m Model, p DelayedParams, rng *rand.Rand) (j float64, submitted int, copySeconds float64, err error) {
	best := math.Inf(1) // earliest start among submitted copies
	var submitTimes []float64
	for k := 0; ; k++ {
		if k > 0 && k%simCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return 0, 0, 0, err
			}
		}
		sub := float64(k) * p.T0
		if best <= sub {
			break // a copy already started; no further submissions
		}
		l := m.Sample(rng)
		submitted++
		submitTimes = append(submitTimes, sub)
		if l < p.TInf {
			if s := sub + l; s < best {
				best = s
			}
		}
	}
	j = best
	for _, sub := range submitTimes {
		// A copy occupies the system from its submission until its own
		// cancellation at sub+TInf, or until J when a copy starts and
		// the client cancels everything.
		end := math.Min(sub+p.TInf, j)
		if end > sub {
			copySeconds += end - sub
		}
	}
	return j, submitted, copySeconds, nil
}

func newSimResult(runs int, sum, sum2, meanSubs, meanPar float64) SimResult {
	n := float64(runs)
	mean := sum / n
	variance := sum2/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return SimResult{
		Runs:            runs,
		EJ:              mean,
		Sigma:           math.Sqrt(variance),
		StdErr:          math.Sqrt(variance / n),
		MeanSubmissions: meanSubs,
		MeanParallel:    meanPar,
	}
}
