package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"gridstrat/internal/optimize"
)

// SimResult summarizes a Monte Carlo simulation of a strategy: the
// realized mean and standard deviation of the total latency J, the
// standard error of the mean, the average number of job submissions
// per task (infrastructure load in absolute submissions), and the
// average time-weighted parallel-copy count N‖.
type SimResult struct {
	Runs            int
	EJ              float64
	Sigma           float64
	StdErr          float64
	MeanSubmissions float64
	MeanParallel    float64
}

// ErrNoSuccessMass is returned when the timeout leaves no probability
// of a job starting, so every strategy would loop forever.
var ErrNoSuccessMass = errors.New("core: F̃R(t∞) = 0, strategy cannot terminate")

func checkSimInputs(m Model, tInf float64, runs int) error {
	if runs <= 0 {
		return fmt.Errorf("core: runs must be positive, got %d", runs)
	}
	if m.Ftilde(tInf) <= 0 {
		return ErrNoSuccessMass
	}
	return nil
}

// simCancelStride is how many Monte Carlo runs execute between two
// context checks in the ctx-aware simulators; the same stride bounds
// the resubmission rounds of a single run, which can themselves be
// near-unbounded when F̃R(t∞) is tiny.
const simCancelStride = 256

// --- Moment accumulation (Welford / Chan) ---

// moments accumulates count, mean and the centered sum of squares M2
// with Welford's update. The naive sum²/n − mean² formula cancels
// catastrophically when the mean dwarfs the spread (latencies around
// 10⁹ s with σ ≈ 1 s silently report σ = 0); Welford's recurrence
// keeps full precision and, with merge, gives the exact per-shard
// combination rule the sharded simulators need.
type moments struct {
	n    int64
	mean float64
	m2   float64
}

func (a *moments) add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// merge folds o into a (Chan et al.'s pairwise combination). The
// result depends on the order of merges, so callers that need
// reproducible output must merge shards in a fixed (index) order.
func (a *moments) merge(o moments) {
	if o.n == 0 {
		return
	}
	if a.n == 0 {
		*a = o
		return
	}
	n := a.n + o.n
	d := o.mean - a.mean
	a.mean += d * float64(o.n) / float64(n)
	a.m2 += o.m2 + d*d*float64(a.n)*float64(o.n)/float64(n)
	a.n = n
}

// variance returns the population variance M2/n (clamped at 0).
func (a *moments) variance() float64 {
	if a.n == 0 {
		return 0
	}
	v := a.m2 / float64(a.n)
	if v < 0 {
		v = 0
	}
	return v
}

// mcShard is one shard's accumulated state: latency moments plus the
// plain sums whose merge is exact in any case.
type mcShard struct {
	lat  moments
	subs float64 // total job submissions in the shard
	par  float64 // Σ over runs of the per-run N‖
}

func (s *mcShard) merge(o mcShard) {
	s.lat.merge(o.lat)
	s.subs += o.subs
	s.par += o.par
}

// --- Sharded execution ---

// mcShardRuns is the fixed shard granularity of the sharded
// simulators. The shard decomposition depends only on the total run
// count — never on the worker count — so a seeded simulation is
// bit-reproducible whether it executes on 1 or 64 goroutines.
const mcShardRuns = 2048

// splitmix64 is the SplitMix64 mixing function — the standard way to
// derive independent RNG streams from one seed (Steele et al.,
// "Fast splittable pseudorandom number generators").
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// splitMixSource is a rand.Source64 iterating the SplitMix64 sequence
// from a full 64-bit state. math/rand's own NewSource reduces its seed
// modulo 2³¹−1, which would collapse the per-shard seed space enough
// that two shards could silently replay identical streams; this source
// keeps all 64 bits, so shard streams are distinct pseudo-random
// segments of one 2⁶⁴-cycle (overlap probability is negligible for
// realistic shard counts and lengths).
type splitMixSource struct{ state uint64 }

func (s *splitMixSource) Uint64() uint64 {
	r := splitmix64(s.state) // mixes state + the SplitMix64 increment
	s.state += 0x9e3779b97f4a7c15
	return r
}

func (s *splitMixSource) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitMixSource) Seed(seed int64) { s.state = uint64(seed) }

// NewSeededRand returns a *rand.Rand over the full-64-bit SplitMix64
// stream derived from seed — the same derivation the sharded
// simulators use per shard. Use it instead of
// rand.New(rand.NewSource(seed)) wherever distinct seeds must yield
// distinct streams.
func NewSeededRand(seed uint64) *rand.Rand {
	return rand.New(&splitMixSource{state: splitmix64(seed)})
}

// simulateSharded splits `runs` across ⌈runs/mcShardRuns⌉ shards, each
// driven by its own RNG derived deterministically from one draw off
// the caller's source, and executes them on up to `workers` goroutines
// (<= 0 means all cores, 1 runs sequentially on the caller's
// goroutine). Shard accumulators are merged in shard-index order, so
// the result is bit-identical for every worker count.
func simulateSharded(ctx context.Context, runs, workers int, rng *rand.Rand,
	body func(ctx context.Context, runs int, rng *rand.Rand, acc *mcShard) error) (SimResult, error) {

	shards := (runs + mcShardRuns - 1) / mcShardRuns
	// One draw, regardless of worker count: the master seed of the
	// whole sharded run.
	master := rng.Uint64()
	accs := make([]mcShard, shards)
	errs := make([]error, shards)
	optimize.ParallelFor(shards, optimize.Workers(workers), func(i int) {
		n := mcShardRuns
		if i == shards-1 {
			n = runs - i*mcShardRuns
		}
		srng := rand.New(&splitMixSource{state: splitmix64(master + uint64(i))})
		errs[i] = body(ctx, n, srng, &accs[i])
	})
	// Report the first failure in shard order, deterministically (the
	// only error source is ctx cancellation, which every later shard
	// hits on its first stride check, so nothing substantial runs past
	// a failure even on the sequential path).
	for _, err := range errs {
		if err != nil {
			return SimResult{}, err
		}
	}

	var total mcShard
	for i := range accs {
		total.merge(accs[i])
	}
	n := float64(runs)
	v := total.lat.variance()
	return SimResult{
		Runs:            runs,
		EJ:              total.lat.mean,
		Sigma:           math.Sqrt(v),
		StdErr:          math.Sqrt(v / n),
		MeanSubmissions: total.subs / n,
		MeanParallel:    total.par / n,
	}, nil
}

// --- Strategy replays ---

// SimulateSingle replays the single-resubmission strategy: submit,
// cancel at tInf, resubmit, until a job starts. It validates Eq. 1–2.
// It runs on the calling goroutine only, so m need not be safe for
// concurrent use; pass workers to SimulateSingleCtx to parallelize.
func SimulateSingle(m Model, tInf float64, runs int, rng *rand.Rand) (SimResult, error) {
	return SimulateSingleCtx(context.Background(), m, tInf, runs, rng, 1)
}

// SimulateSingleCtx is SimulateSingle with cancellation (checked every
// simCancelStride runs) and a worker count: runs are sharded across up
// to `workers` goroutines (<= 0 means all cores, 1 is sequential). For
// a fixed rng state the result is identical for every worker count.
func SimulateSingleCtx(ctx context.Context, m Model, tInf float64, runs int, rng *rand.Rand, workers int) (SimResult, error) {
	if err := checkSimInputs(m, tInf, runs); err != nil {
		return SimResult{}, err
	}
	return simulateSharded(ctx, runs, workers, rng, func(ctx context.Context, runs int, rng *rand.Rand, acc *mcShard) error {
		for i := 0; i < runs; i++ {
			if i%simCancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			var j float64
			for round := 1; ; round++ {
				if round%simCancelStride == 0 {
					if err := ctx.Err(); err != nil {
						return err
					}
				}
				acc.subs++
				l := m.Sample(rng)
				if l < tInf {
					j += l
					break
				}
				j += tInf
			}
			acc.lat.add(j)
			acc.par++ // single resubmission keeps exactly one copy in flight
		}
		return nil
	})
}

// SimulateMultiple replays the multiple-submission strategy: a
// collection of b copies is submitted, all canceled when one starts;
// the whole collection is resubmitted at tInf if none started. It
// validates Eq. 3–4. An invalid collection size is returned as an
// error. Like SimulateSingle it runs on the calling goroutine only.
func SimulateMultiple(m Model, b int, tInf float64, runs int, rng *rand.Rand) (SimResult, error) {
	return SimulateMultipleCtx(context.Background(), m, b, tInf, runs, rng, 1)
}

// SimulateMultipleCtx is SimulateMultiple with cancellation (checked
// every simCancelStride runs) and a worker count (see
// SimulateSingleCtx for the sharding contract).
func SimulateMultipleCtx(ctx context.Context, m Model, b int, tInf float64, runs int, rng *rand.Rand, workers int) (SimResult, error) {
	if err := ValidateB(b); err != nil {
		return SimResult{}, err
	}
	if err := checkSimInputs(m, tInf, runs); err != nil {
		return SimResult{}, err
	}
	return simulateSharded(ctx, runs, workers, rng, func(ctx context.Context, runs int, rng *rand.Rand, acc *mcShard) error {
		for i := 0; i < runs; i++ {
			if i%simCancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			var j float64
			for round := 1; ; round++ {
				if round%simCancelStride == 0 {
					if err := ctx.Err(); err != nil {
						return err
					}
				}
				acc.subs += float64(b)
				best := math.Inf(1)
				for k := 0; k < b; k++ {
					if l := m.Sample(rng); l < best {
						best = l
					}
				}
				if best < tInf {
					j += best
					break
				}
				j += tInf
			}
			acc.lat.add(j)
			acc.par += float64(b)
		}
		return nil
	})
}

// SimulateDelayed replays the delayed-resubmission strategy exactly as
// figure 4 of the paper describes it: a copy is submitted every T0
// while nothing has started, each copy is canceled TInf after its own
// submission, and everything is canceled the moment one copy starts.
// N‖ is measured as copy-seconds in the system divided by J. Like
// SimulateSingle it runs on the calling goroutine only.
func SimulateDelayed(m Model, p DelayedParams, runs int, rng *rand.Rand) (SimResult, error) {
	return SimulateDelayedCtx(context.Background(), m, p, runs, rng, 1)
}

// SimulateDelayedCtx is SimulateDelayed with cancellation (checked
// every simCancelStride runs) and a worker count (see
// SimulateSingleCtx for the sharding contract).
func SimulateDelayedCtx(ctx context.Context, m Model, p DelayedParams, runs int, rng *rand.Rand, workers int) (SimResult, error) {
	if err := p.Validate(); err != nil {
		return SimResult{}, err
	}
	if err := checkSimInputs(m, p.TInf, runs); err != nil {
		return SimResult{}, err
	}
	return simulateSharded(ctx, runs, workers, rng, func(ctx context.Context, runs int, rng *rand.Rand, acc *mcShard) error {
		for i := 0; i < runs; i++ {
			if i%simCancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			j, submitted, copySeconds, err := runDelayedOnce(ctx, m, p, rng)
			if err != nil {
				return err
			}
			acc.lat.add(j)
			acc.subs += float64(submitted)
			if j > 0 {
				acc.par += copySeconds / j
			} else {
				// The first copy started instantly (a latency-law point
				// mass at 0): exactly one copy was ever in flight, so
				// N‖ = 1 by the same convention as NParallelGivenLatency.
				// Dividing would turn the whole result into NaN.
				acc.par++
			}
		}
		return nil
	})
}

// runDelayedOnce simulates one task under the delayed strategy and
// returns its total latency J, the number of copies submitted, and the
// total copy-seconds spent in the system before J. A cancelled ctx
// aborts even a single near-unbounded run.
func runDelayedOnce(ctx context.Context, m Model, p DelayedParams, rng *rand.Rand) (j float64, submitted int, copySeconds float64, err error) {
	best := math.Inf(1) // earliest start among submitted copies
	var submitTimes []float64
	for k := 0; ; k++ {
		if k > 0 && k%simCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return 0, 0, 0, err
			}
		}
		sub := float64(k) * p.T0
		if best <= sub {
			break // a copy already started; no further submissions
		}
		l := m.Sample(rng)
		submitted++
		submitTimes = append(submitTimes, sub)
		if l < p.TInf {
			if s := sub + l; s < best {
				best = s
			}
		}
	}
	j = best
	for _, sub := range submitTimes {
		// A copy occupies the system from its submission until its own
		// cancellation at sub+TInf, or until J when a copy starts and
		// the client cancels everything.
		end := math.Min(sub+p.TInf, j)
		if end > sub {
			copySeconds += end - sub
		}
	}
	return j, submitted, copySeconds, nil
}
