package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDelayedParamsValidate(t *testing.T) {
	valid := []DelayedParams{
		{T0: 100, TInf: 150},
		{T0: 100, TInf: 200}, // t∞ = 2·t0 boundary allowed
		{T0: 1, TInf: 1.5},
	}
	for _, p := range valid {
		if err := p.Validate(); err != nil {
			t.Errorf("%+v should validate: %v", p, err)
		}
	}
	invalid := []DelayedParams{
		{T0: 0, TInf: 100},
		{T0: -5, TInf: 100},
		{T0: 100, TInf: 100}, // t0 == t∞
		{T0: 100, TInf: 50},
		{T0: 100, TInf: 201}, // more than 2 copies
	}
	for _, p := range invalid {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v should be rejected", p)
		}
	}
	p := DelayedParams{T0: 200, TInf: 300}
	if math.Abs(p.Ratio()-1.5) > 1e-15 {
		t.Fatalf("ratio = %v", p.Ratio())
	}
}

func TestDelayedSurvivalBasics(t *testing.T) {
	m := testEmpirical(t)
	p := DelayedParams{T0: 300, TInf: 450}
	if DelayedSurvival(m, p, -5) != 1 || DelayedSurvival(m, p, 0) != 1 {
		t.Fatal("survival at t<=0 must be 1")
	}
	// First interval: exactly the single-job survival.
	for _, x := range []float64{50, 150, 299} {
		want := 1 - m.Ftilde(x)
		if got := DelayedSurvival(m, p, x); math.Abs(got-want) > 1e-15 {
			t.Fatalf("G(%v) = %v, want %v", x, got, want)
		}
	}
	// Monotone non-increasing and → 0.
	prev := 1.0
	for x := 0.0; x < 20*p.T0; x += 7.3 {
		g := DelayedSurvival(m, p, x)
		if g > prev+1e-12 || g < 0 {
			t.Fatalf("survival not monotone at %v: %v > %v", x, g, prev)
		}
		prev = g
	}
	if DelayedSurvival(m, p, 50*p.T0) > 1e-6 {
		t.Fatal("survival does not vanish")
	}
}

func TestDelayedSurvivalFirstPeriodProduct(t *testing.T) {
	// In [t0, t∞): exact two-copy race, G = (1-F̃(t))(1-F̃(t-t0)).
	m := testParametric(t)
	p := DelayedParams{T0: 300, TInf: 500}
	for _, x := range []float64{310, 400, 480} {
		want := (1 - m.Ftilde(x)) * (1 - m.Ftilde(x-p.T0))
		got := DelayedSurvival(m, p, x)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("G(%v) = %v, want %v", x, got, want)
		}
	}
	// In [t∞, 2t0): first copy canceled, G = q·(1-F̃(t-t0)).
	q := 1 - m.Ftilde(p.TInf)
	for _, x := range []float64{510, 580} {
		want := q * (1 - m.Ftilde(x-p.T0))
		got := DelayedSurvival(m, p, x)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("G(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestEJDelayedClosedFormMatchesStieltjes(t *testing.T) {
	// Two fully independent evaluation routes must agree: the
	// geometric-series closed form and the cell-mass expectation of
	// the identity function.
	for _, m := range []Model{testEmpirical(t), testParametric(t)} {
		for _, p := range []DelayedParams{
			{T0: 200, TInf: 280},
			{T0: 339, TInf: 485},
			{T0: 500, TInf: 990},
		} {
			closed := EJDelayed(m, p)
			stieltjes := ExpectDelayed(m, p, func(l float64) float64 { return l })
			if math.Abs(closed-stieltjes) > 0.002*closed {
				t.Errorf("EJ routes disagree at %+v: closed %v vs stieltjes %v", p, closed, stieltjes)
			}
		}
	}
}

func TestDelayedMCMatchesAnalytic(t *testing.T) {
	m := testEmpirical(t)
	rng := rand.New(rand.NewSource(11))
	for _, p := range []DelayedParams{
		{T0: 250, TInf: 400},
		{T0: 339, TInf: 485},
	} {
		ev, err := DelayedEvaluate(m, p)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := SimulateDelayed(m, p, 120000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sim.EJ-ev.EJ) > 5*sim.StdErr {
			t.Fatalf("%+v: MC EJ %v ± %v vs analytic %v", p, sim.EJ, sim.StdErr, ev.EJ)
		}
		if math.Abs(sim.Sigma-ev.Sigma) > 0.05*ev.Sigma {
			t.Fatalf("%+v: MC σ %v vs analytic %v", p, sim.Sigma, ev.Sigma)
		}
		if math.Abs(sim.MeanParallel-ev.Parallel) > 0.02*ev.Parallel {
			t.Fatalf("%+v: MC N‖ %v vs analytic %v", p, sim.MeanParallel, ev.Parallel)
		}
	}
}

func TestDelayedImprovesOnSingle(t *testing.T) {
	// The paper's core claim: a well-tuned delayed strategy beats the
	// optimal single resubmission on heavy-tailed latency.
	m := testEmpirical(t)
	_, single := OptimizeSingle(m)
	_, ev := OptimizeDelayed(m)
	if !(ev.EJ < single.EJ) {
		t.Fatalf("delayed optimum %v does not beat single %v", ev.EJ, single.EJ)
	}
	// ... while keeping fewer than 2 copies in flight.
	if ev.Parallel < 1 || ev.Parallel >= 2 {
		t.Fatalf("N‖ = %v outside [1, 2)", ev.Parallel)
	}
	// But multiple submission with b=2 beats delayed on raw EJ
	// (Figure 6's message).
	_, mult2 := OptimizeMultiple(m, 2)
	if !(mult2.EJ < ev.EJ) {
		t.Fatalf("b=2 EJ %v should beat delayed %v", mult2.EJ, ev.EJ)
	}
}

func TestNParallelGivenLatencyCases(t *testing.T) {
	p := DelayedParams{T0: 300, TInf: 450}
	// n = 0: single copy.
	if NParallelGivenLatency(100, p) != 1 {
		t.Fatal("n=0 should be 1")
	}
	if NParallelGivenLatency(0, p) != 1 || NParallelGivenLatency(-3, p) != 1 {
		t.Fatal("degenerate l should be 1")
	}
	// n = 1, l < t∞: (t0 + 2(l-t0))/l at l=400: (300+200)/400 = 1.25.
	if got := NParallelGivenLatency(400, p); math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("n=1 I0 case: %v", got)
	}
	// n = 1, l >= t∞: (t0 + 2(t∞-t0) + l-t∞)/l at l=500:
	// (300+300+50)/500 = 1.3.
	if got := NParallelGivenLatency(500, p); math.Abs(got-1.3) > 1e-12 {
		t.Fatalf("n=1 I1 case: %v", got)
	}
	// n = 2, I0: l=620: (300 + 450 + 2(620-600))/620 = 790/620.
	if got := NParallelGivenLatency(620, p); math.Abs(got-790.0/620) > 1e-12 {
		t.Fatalf("n=2 I0 case: %v", got)
	}
	// n = 2, I1: l=800: (300+450+300+(800-750))/800 = 1100/800.
	if got := NParallelGivenLatency(800, p); math.Abs(got-1100.0/800) > 1e-12 {
		t.Fatalf("n=2 I1 case: %v", got)
	}
}

func TestNParallelBoundsProperty(t *testing.T) {
	// Paper §6.1: N‖ ∈ [1, 2-1/(n+1)] and N‖ → t∞/t0 as l → ∞.
	f := func(rawT0, rawRatio, rawL float64) bool {
		t0 := 50 + math.Abs(math.Mod(rawT0, 1000))
		ratio := 1.001 + math.Abs(math.Mod(rawRatio, 0.998))
		p := DelayedParams{T0: t0, TInf: ratio * t0}
		l := math.Abs(math.Mod(rawL, 20*t0))
		if l == 0 {
			l = 1
		}
		n := math.Floor(l / t0)
		npar := NParallelGivenLatency(l, p)
		return npar >= 1-1e-9 && npar <= 2-1/(n+2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Asymptote: N‖(l → ∞) → t∞/t0.
	p := DelayedParams{T0: 200, TInf: 330}
	got := NParallelGivenLatency(1e9, p)
	if math.Abs(got-p.Ratio()) > 1e-3 {
		t.Fatalf("asymptotic N‖ = %v, want %v", got, p.Ratio())
	}
}

func TestEJDelayedPaperVariantBelowExact(t *testing.T) {
	// The paper's FJ over-counts success mass (the B term ignores that
	// copy n+1 is only submitted when copy n survived t0), so its CDF
	// dominates the exact law and its EJ is lower.
	m := testEmpirical(t)
	for _, p := range []DelayedParams{
		{T0: 250, TInf: 400},
		{T0: 339, TInf: 485},
		{T0: 450, TInf: 600},
	} {
		exact := EJDelayed(m, p)
		paper := EJDelayedPaper(m, p)
		if !(paper <= exact+1e-9) {
			t.Errorf("%+v: paper EJ %v above exact %v", p, paper, exact)
		}
		// The gap is moderate, not wild — both describe the same
		// strategy family.
		if paper < 0.5*exact {
			t.Errorf("%+v: paper EJ %v implausibly far below exact %v", p, paper, exact)
		}
	}
}

func TestEJDelayedPaperAgreesWhenFt0Vanishes(t *testing.T) {
	// The over-count term is ∝ F̃(t0): for t0 below the latency floor
	// both formulas coincide. Exponential from 0 has mass at any t>0,
	// so use a shifted law with a hard floor at 400 s.
	m, err := NewParametricModel(
		mustShift(t, 400), 0.0, 20000)
	if err != nil {
		t.Fatal(err)
	}
	p := DelayedParams{T0: 300, TInf: 550} // F̃(300) = 0, F̃(250)=0 too
	exact := EJDelayed(m, p)
	paper := EJDelayedPaper(m, p)
	if math.Abs(exact-paper) > 0.005*exact {
		t.Fatalf("with F̃(t0)=0 exact %v and paper %v must agree", exact, paper)
	}
}

func TestDelayedDegenerateInputs(t *testing.T) {
	m := testEmpirical(t)
	if !math.IsInf(EJDelayed(m, DelayedParams{T0: 100, TInf: 90}), 1) {
		t.Fatal("invalid params should give +Inf")
	}
	if !math.IsNaN(ExpectDelayed(m, DelayedParams{T0: -1, TInf: 2}, func(float64) float64 { return 1 })) {
		t.Fatal("invalid params should give NaN expectation")
	}
	if _, err := DelayedEvaluate(m, DelayedParams{T0: 0, TInf: 1}); err == nil {
		t.Fatal("invalid params should error")
	}
	// Timeout below all support: diverges.
	p := DelayedParams{T0: 1e-7, TInf: 1.5e-7}
	if !math.IsInf(EJDelayed(m, p), 1) {
		t.Fatal("no-success params should give +Inf")
	}
	mustPanicCore(t, func() { OptimizeDelayedRatio(m, 1.0) })
	mustPanicCore(t, func() { OptimizeDelayedRatio(m, 2.5) })
}

func TestOptimizeDelayedRatioBeatsSingleForGoodRatios(t *testing.T) {
	// Table 3: every ratio in (1, 2] yields EJ below the single
	// optimum on the 2006-IX-style trace.
	m := testEmpirical(t)
	_, single := OptimizeSingle(m)
	for _, ratio := range []float64{1.1, 1.25, 1.5, 1.8, 2.0} {
		p, ev := OptimizeDelayedRatio(m, ratio)
		if math.Abs(p.Ratio()-ratio) > 1e-9 {
			t.Fatalf("ratio drifted: %v vs %v", p.Ratio(), ratio)
		}
		if !(ev.EJ < single.EJ) {
			t.Errorf("ratio %v: EJ %v not below single %v", ratio, ev.EJ, single.EJ)
		}
		if ev.Parallel < 1 || ev.Parallel > 1.5+1e-9 {
			t.Errorf("ratio %v: N‖ = %v outside [1, 1.5]", ratio, ev.Parallel)
		}
	}
}

func TestExpectDelayedTotalMass(t *testing.T) {
	// E[1] must be 1: the strategy terminates almost surely.
	m := testEmpirical(t)
	p := DelayedParams{T0: 300, TInf: 450}
	got := ExpectDelayed(m, p, func(float64) float64 { return 1 })
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("total mass %v", got)
	}
}

func mustShift(t *testing.T, floor float64) *shiftedExp {
	t.Helper()
	return &shiftedExp{floor: floor, rate: 1.0 / 300}
}

// shiftedExp is a minimal Distribution with a hard floor, used to test
// the F̃(t0)=0 regime.
type shiftedExp struct {
	floor, rate float64
}

func (s *shiftedExp) PDF(x float64) float64 {
	if x < s.floor {
		return 0
	}
	return s.rate * math.Exp(-s.rate*(x-s.floor))
}
func (s *shiftedExp) CDF(x float64) float64 {
	if x <= s.floor {
		return 0
	}
	return -math.Expm1(-s.rate * (x - s.floor))
}
func (s *shiftedExp) Quantile(p float64) float64 {
	if p <= 0 {
		return s.floor
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return s.floor - math.Log1p(-p)/s.rate
}
func (s *shiftedExp) Rand(rng *rand.Rand) float64 {
	return s.floor + rng.ExpFloat64()/s.rate
}
func (s *shiftedExp) Mean() float64 { return s.floor + 1/s.rate }
func (s *shiftedExp) Var() float64  { return 1 / (s.rate * s.rate) }

// A NaN ratio slips OptimizeDelayedRatio's panic guard; the wrapper
// must keep the pre-Ctx convention of an infeasible (+Inf) evaluation
// so garbage input never wins an EJ comparison.
func TestOptimizeDelayedRatioNaN(t *testing.T) {
	m := testEmpirical(t)
	_, ev := OptimizeDelayedRatio(m, math.NaN())
	if !math.IsInf(ev.EJ, 1) {
		t.Fatalf("NaN ratio gave EJ=%v, want +Inf", ev.EJ)
	}
}
