package core

import (
	"math"

	"gridstrat/internal/stats"
)

// SingleCDF returns the distribution function of the total latency J
// under single resubmission with timeout tInf: with k full windows
// elapsed, P(J > t) = q^k · (1 - F̃R(t - k·t∞)).
func SingleCDF(m Model, tInf float64) func(t float64) float64 {
	return MultipleCDF(m, 1, tInf)
}

// MultipleCDF returns the distribution function of J under the
// multiple-submission strategy: the per-round law has CDF
// G_b = 1-(1-F̃R)^b and rounds renew every t∞. It returns nil for an
// invalid collection size.
func MultipleCDF(m Model, b int, tInf float64) func(t float64) float64 {
	if b < 1 {
		return nil
	}
	q := stats.PowInt(1-m.Ftilde(tInf), b)
	return func(t float64) float64 {
		if t <= 0 {
			return 0
		}
		k := math.Floor(t / tInf)
		u := t - k*tInf
		survivalRound := stats.PowInt(1-m.Ftilde(u), b)
		return 1 - powFloorExp(q, k)*survivalRound
	}
}

// powFloorExp raises q to a non-negative integer-valued float exponent
// (the output of math.Floor): integer fast exponentiation when the
// exponent safely fits the platform int (half of MaxInt — 2⁶² on
// 64-bit, 2³⁰ on 32-bit), math.Pow beyond — an out-of-range float→int
// conversion is implementation-defined and must not reach PowInt.
func powFloorExp(q, e float64) float64 {
	if e < float64(math.MaxInt>>1) {
		return stats.PowInt(q, int(e))
	}
	return math.Pow(q, e)
}

// DelayedCDF returns the distribution function of J under the delayed
// strategy (the complement of DelayedSurvival).
func DelayedCDF(m Model, p DelayedParams) func(t float64) float64 {
	return func(t float64) float64 {
		return 1 - DelayedSurvival(m, p, t)
	}
}

// ExpectedMax returns E[max(J₁…J_n)] for n i.i.d. copies of a
// non-negative random variable with the given CDF, via
// ∫₀^∞ (1 - F(t)ⁿ) dt. The integration horizon doubles until the
// integrand falls below 1e-12 (the strategy CDFs approach 1
// geometrically, so this terminates).
//
// This is the per-wave makespan of a bag-of-tasks application: a wave
// of n tasks finishes when its slowest task starts+runs. A nil CDF or
// n < 1 yields NaN.
func ExpectedMax(cdf func(float64) float64, n int, hint float64) float64 {
	if cdf == nil || n < 1 {
		return math.NaN()
	}
	if hint <= 0 {
		hint = 1
	}
	integrand := func(t float64) float64 {
		return 1 - stats.PowInt(cdf(t), n)
	}
	// Find the effective support.
	hi := hint
	for integrand(hi) > 1e-12 {
		hi *= 2
		if hi > 1e12 {
			return math.Inf(1)
		}
	}
	// Composite Simpson on [0, hi] with resolution tied to hint.
	panels := 4096
	h := hi / float64(panels)
	sum := integrand(0) + integrand(hi)
	for i := 1; i < panels; i++ {
		x := float64(i) * h
		if i%2 == 1 {
			sum += 4 * integrand(x)
		} else {
			sum += 2 * integrand(x)
		}
	}
	return sum * h / 3
}
