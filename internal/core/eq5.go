package core

import (
	"math"
)

// EJDelayedPaperEq5 evaluates the paper's Equation 5 *verbatim* — the
// closed-form expression printed in §6 — using a density f̃R obtained
// by finite differences of F̃R on a uniform grid.
//
// Together with EJDelayedPaper (the paper's interval CDF definitions)
// and EJDelayed (the exact law of the strategy), this gives three
// views of the same quantity:
//
//   - EJDelayed: exact, validated by Monte Carlo;
//   - EJDelayedPaper: the paper's FJ, which over-counts success mass
//     by F̃(t0)·F̃(t-n·t0) per interval (a union/conditioning slip);
//   - EJDelayedPaperEq5: the printed Eq. 5, whose derivation from the
//     paper's fJ carries further term-level typos.
//
// The three are exposed so EXPERIMENTS.md can quantify the gaps; all
// agree in the F̃(t0) → 0 regime.
func EJDelayedPaperEq5(m Model, p DelayedParams) float64 {
	if p.Validate() != nil {
		return math.Inf(1)
	}
	ftInf := m.Ftilde(p.TInf)
	if ftInf <= 0 {
		return math.Inf(1)
	}
	t0, tInf := p.T0, p.TInf
	w := tInf - t0
	ft0 := m.Ftilde(t0)

	// Tabulate F̃ on a uniform grid over [0, t∞] and differentiate for
	// the density-weighted integrals; n chosen so the grid resolves
	// ECDF steps of typical traces.
	const n = 8192
	dx := tInf / n
	f := make([]float64, n+1) // F̃ at grid nodes
	for i := 0; i <= n; i++ {
		f[i] = m.Ftilde(float64(i) * dx)
	}
	// Midpoint density over cell i: (F(x_{i+1})-F(x_i))/dx, located at
	// the cell center. Integrals ∫ g(u)·f̃(u) du become Σ g(mid)·ΔF.
	intUf := func(T float64) float64 { // ∫₀ᵀ u f̃(u) du
		sum := 0.0
		cells := int(T / dx)
		for i := 0; i < cells && i < n; i++ {
			mid := (float64(i) + 0.5) * dx
			sum += mid * (f[i+1] - f[i])
		}
		return sum
	}
	intProd := func(T float64, withU bool) float64 { // ∫₀ᵀ [u]·f̃(u+t0)f̃(u) du
		sum := 0.0
		cells := int(T / dx)
		shift := int(t0 / dx)
		for i := 0; i < cells && i < n; i++ {
			j := i + shift
			if j+1 > n {
				break
			}
			d1 := (f[i+1] - f[i]) / dx
			d2 := (f[j+1] - f[j]) / dx
			v := d1 * d2 * dx
			if withU {
				v *= (float64(i) + 0.5) * dx
			}
			sum += v
		}
		return sum
	}

	// Equation 5, term by term, in the paper's printed order.
	ej := intUf(tInf) / ftInf
	ej += ft0 / ftInf * intUf(w)
	ej += t0 / ftInf
	ej += t0 * m.Ftilde(w) / ftInf
	ej += t0 * ft0 * m.Ftilde(w) / (ftInf * ftInf)
	ej -= t0
	ej += intUf(w)
	ej -= t0 / (ftInf * ftInf) * intProd(w, false)
	ej -= 1 / ftInf * intProd(w, true)
	return ej
}
