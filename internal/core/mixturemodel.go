package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"gridstrat/internal/stats"
)

// MixtureModel pools several latency regimes with weights: the law of
// a job submitted into a randomly drawn regime. It models
// non-stationary periods — e.g. one regime per weekday window, weighted
// by submission volume — while still exposing the exact Model
// interface, so every strategy formula applies unchanged.
//
// F̃(t) = Σ wᵢ·F̃ᵢ(t) is exact; the power/product integrals are not
// linear in F̃ and are evaluated by chunked adaptive quadrature over
// the pooled F̃.
type MixtureModel struct {
	models  []Model
	weights []float64 // normalized
	cum     []float64
	rho     float64
	ub      float64
}

// NewMixtureModel pools models with (not necessarily normalized)
// positive weights.
func NewMixtureModel(models []Model, weights []float64) (*MixtureModel, error) {
	if len(models) == 0 || len(models) != len(weights) {
		return nil, fmt.Errorf("core: mixture needs matching non-empty slices, got %d/%d",
			len(models), len(weights))
	}
	total := 0.0
	for i, w := range weights {
		if w <= 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("core: mixture weight %d invalid: %v", i, w)
		}
		if models[i] == nil {
			return nil, errors.New("core: nil model in mixture")
		}
		total += w
	}
	m := &MixtureModel{
		models:  append([]Model(nil), models...),
		weights: make([]float64, len(weights)),
		cum:     make([]float64, len(weights)),
	}
	acc := 0.0
	for i, w := range weights {
		m.weights[i] = w / total
		acc += w / total
		m.cum[i] = acc
		m.rho += m.weights[i] * models[i].Rho()
		m.ub = math.Max(m.ub, models[i].UpperBound())
	}
	m.cum[len(m.cum)-1] = 1
	return m, nil
}

// Regimes returns the number of pooled regimes.
func (m *MixtureModel) Regimes() int { return len(m.models) }

func (m *MixtureModel) Ftilde(t float64) float64 {
	sum := 0.0
	for i, mm := range m.models {
		sum += m.weights[i] * mm.Ftilde(t)
	}
	return sum
}

func (m *MixtureModel) Rho() float64        { return m.rho }
func (m *MixtureModel) UpperBound() float64 { return m.ub }

func (m *MixtureModel) IntOneMinusFPow(T float64, b int) float64 {
	checkB(b)
	if T <= 0 {
		return 0
	}
	if b == 1 {
		// Linear case: exact via the component integrals.
		sum := 0.0
		for i, mm := range m.models {
			sum += m.weights[i] * mm.IntOneMinusFPow(T, 1)
		}
		return sum
	}
	f := func(u float64) float64 { return stats.PowInt(1-m.Ftilde(u), b) }
	return chunkedAdaptive(f, T, 1e-10*T)
}

func (m *MixtureModel) IntUOneMinusFPow(T float64, b int) float64 {
	checkB(b)
	if T <= 0 {
		return 0
	}
	if b == 1 {
		sum := 0.0
		for i, mm := range m.models {
			sum += m.weights[i] * mm.IntUOneMinusFPow(T, 1)
		}
		return sum
	}
	f := func(u float64) float64 { return u * stats.PowInt(1-m.Ftilde(u), b) }
	return chunkedAdaptive(f, T, 1e-10*T*T)
}

func (m *MixtureModel) IntProdOneMinusF(T, shift float64) float64 {
	if T <= 0 {
		return 0
	}
	f := func(u float64) float64 {
		return (1 - m.Ftilde(u+shift)) * (1 - m.Ftilde(u))
	}
	return chunkedAdaptive(f, T, 1e-10*T)
}

func (m *MixtureModel) IntUProdOneMinusF(T, shift float64) float64 {
	if T <= 0 {
		return 0
	}
	f := func(u float64) float64 {
		return u * (1 - m.Ftilde(u+shift)) * (1 - m.Ftilde(u))
	}
	return chunkedAdaptive(f, T, 1e-10*T*T)
}

func (m *MixtureModel) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	i := 0
	for i < len(m.cum)-1 && u > m.cum[i] {
		i++
	}
	return m.models[i].Sample(rng)
}

// Discretize converts any Model into an EmpiricalModel by tabulating n
// stratified quantiles of FR (inverting F̃ numerically) while
// preserving ρ and the upper bound. Quadrature-backed models (mixtures,
// parametric laws) pay ~ms per strategy evaluation; their discretized
// twin evaluates in exact closed form in microseconds, which is the
// right representation to hand to the optimizers.
func Discretize(m Model, n int) (*EmpiricalModel, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: discretization needs n >= 2, got %d", n)
	}
	rho := m.Rho()
	scale := 1 - rho
	if scale <= 0 {
		return nil, errors.New("core: cannot discretize a model with rho >= 1")
	}
	ub := m.UpperBound()
	// FR(t) = F̃(t)/(1-ρ); invert at stratified midpoints.
	frAt := func(t float64) float64 { return m.Ftilde(t) / scale }
	top := frAt(ub)
	sample := make([]float64, n)
	for i := 0; i < n; i++ {
		p := (float64(i) + 0.5) / float64(n) * top
		lo, hi := 0.0, ub
		for iter := 0; iter < 60; iter++ {
			mid := 0.5 * (lo + hi)
			if frAt(mid) < p {
				lo = mid
			} else {
				hi = mid
			}
		}
		sample[i] = 0.5 * (lo + hi)
	}
	e, err := stats.NewECDF(sample)
	if err != nil {
		return nil, err
	}
	return NewEmpiricalModel(e, rho, ub)
}

// RegimeEvaluation is a strategy's performance in one regime of a
// mixture.
type RegimeEvaluation struct {
	Weight float64
	EJ     float64
}

// EvaluateAcrossRegimes evaluates fixed delayed parameters in every
// regime separately, returning the per-regime EJ and the
// volume-weighted average — what a user with fixed (t0, t∞) actually
// experiences across a non-stationary period. Contrast with
// EJDelayed(mixture), which models a job landing in a random regime:
// the two differ exactly when regimes differ (Jensen-style gap).
func EvaluateAcrossRegimes(m *MixtureModel, p DelayedParams) ([]RegimeEvaluation, float64, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	out := make([]RegimeEvaluation, len(m.models))
	avg := 0.0
	for i, mm := range m.models {
		ej := EJDelayed(mm, p)
		out[i] = RegimeEvaluation{Weight: m.weights[i], EJ: ej}
		avg += m.weights[i] * ej
	}
	return out, avg, nil
}
