package core

import (
	"context"
	"fmt"
	"math"

	"gridstrat/internal/optimize"
)

// CostContext anchors the paper's §7 cost criterion: every strategy is
// charged Δcost = N‖ · EJ(strategy) / EJ(single at its optimum), so
// the single-resubmission strategy costs exactly 1 and anything below
// 1 loads the grid *less* than plain resubmission while finishing
// sooner.
type CostContext struct {
	Model      Model
	RefTimeout float64 // optimal single-resubmission t∞
	RefEJ      float64 // EJ of single resubmission at RefTimeout
}

// NewCostContext optimizes the single-resubmission baseline once and
// fixes it as the cost reference.
func NewCostContext(m Model) (*CostContext, error) {
	return NewCostContextCtx(context.Background(), m, 1)
}

// NewCostContextCtx is NewCostContext with cancellation of the
// baseline optimization and a worker count for its grid scan (<= 0
// means all cores; results are identical for every count).
func NewCostContextCtx(ctx context.Context, m Model, workers int) (*CostContext, error) {
	tInf, ev, err := OptimizeSingleCtx(ctx, m, workers)
	if err != nil {
		return nil, err
	}
	if math.IsInf(ev.EJ, 1) || ev.EJ <= 0 {
		return nil, fmt.Errorf("core: cannot establish cost reference (EJ=%v)", ev.EJ)
	}
	return &CostContext{Model: m, RefTimeout: tInf, RefEJ: ev.EJ}, nil
}

// Delta returns Eq. 6 for an arbitrary (EJ, N‖) pair.
func (c *CostContext) Delta(ej, nParallel float64) float64 {
	return nParallel * ej / c.RefEJ
}

// DeltaMultiple optimizes the multiple-submission strategy for
// collection size b and returns its optimal timeout, evaluation and
// Δcost = b·EJ(b)/EJ(1).
func (c *CostContext) DeltaMultiple(b int) (tInf float64, ev Evaluation, delta float64) {
	tInf, ev = OptimizeMultiple(c.Model, b)
	return tInf, ev, c.Delta(ev.EJ, float64(b))
}

// DeltaDelayed evaluates the delayed strategy at p and its Δcost =
// E[N‖]·EJ(p)/EJ(1).
func (c *CostContext) DeltaDelayed(p DelayedParams) (Evaluation, float64, error) {
	ev, err := DelayedEvaluate(c.Model, p)
	if err != nil {
		return Evaluation{}, 0, err
	}
	return ev, c.Delta(ev.EJ, ev.Parallel), nil
}

// CostResult is the outcome of a Δcost minimization.
type CostResult struct {
	Params DelayedParams
	Eval   Evaluation
	Delta  float64
}

// OptimizeDelayedCost minimizes Δcost over (t0, t∞) with
// t0 < t∞ <= 2·t0, then rounds to integer seconds and polishes on the
// integer lattice — the paper restricts Table 5 to integer parameter
// values because sub-second resubmission control is not realistic.
func (c *CostContext) OptimizeDelayedCost() CostResult {
	r, _ := c.OptimizeDelayedCostCtx(context.Background(), 1)
	return r
}

// OptimizeDelayedCostCtx is OptimizeDelayedCost with cancellation (a
// done ctx aborts both the surface search and the integer polish) and
// a worker count for the coarse surface scan (<= 0 means all cores;
// results are identical for every count).
func (c *CostContext) OptimizeDelayedCostCtx(ctx context.Context, workers int) (CostResult, error) {
	ub := c.Model.UpperBound()
	obj := func(t0, ratio float64) float64 {
		if ctx.Err() != nil {
			return math.Inf(1)
		}
		p := DelayedParams{T0: t0, TInf: ratio * t0}
		if p.Validate() != nil {
			return math.Inf(1)
		}
		ej, _ := delayedMoments(c.Model, p)
		if math.IsInf(ej, 1) {
			return math.Inf(1)
		}
		return c.Delta(ej, nParallelExpectedCells(c.Model, p, costScanCells))
	}
	var r optimize.Result2D
	if bi, ok := c.Model.(BatchIntegrals); ok {
		// Row-sweep mode: the row's EJ values come from one kernel
		// sweep; the N‖ expectation stays per-cell (its integrand is
		// the survival series, not an ECDF integral) but skips the
		// cells the sweep already proved infeasible.
		frow := func(t0 float64, ratios []float64) []float64 {
			if ctx.Err() != nil {
				return infSlice(len(ratios))
			}
			ejs := ejDelayedRow(c.Model, bi, t0, ratios)
			for i, ratio := range ratios {
				if math.IsInf(ejs[i], 1) {
					continue
				}
				p := DelayedParams{T0: t0, TInf: ratio * t0}
				ejs[i] = c.Delta(ejs[i], nParallelExpectedCells(c.Model, p, costScanCells))
			}
			return ejs
		}
		r = optimize.MinimizeRobust2DSweep(obj, frow, ub*1e-3, ub/2, 1.0005, 2.0, workers)
	} else {
		r = optimize.MinimizeRobust2DPar(obj, ub*1e-3, ub/2, 1.0005, 2.0, workers)
	}
	if err := ctx.Err(); err != nil {
		return CostResult{}, err
	}

	// Integer polish around the continuous optimum.
	best := CostResult{Delta: math.Inf(1)}
	t0c := math.Round(r.X)
	tInfc := math.Round(r.X * r.Y)
	for dt0 := -3.0; dt0 <= 3; dt0++ {
		for dti := -3.0; dti <= 3; dti++ {
			if err := ctx.Err(); err != nil {
				return CostResult{}, err
			}
			p := DelayedParams{T0: t0c + dt0, TInf: tInfc + dti}
			if p.Validate() != nil {
				continue
			}
			ev, delta, err := c.DeltaDelayed(p)
			if err != nil {
				continue
			}
			if delta < best.Delta {
				best = CostResult{Params: p, Eval: ev, Delta: delta}
			}
		}
	}
	if math.IsInf(best.Delta, 1) {
		// Integer lattice around the optimum was infeasible (tiny t0);
		// fall back to the continuous point.
		p := DelayedParams{T0: r.X, TInf: r.X * r.Y}
		ev, delta, err := c.DeltaDelayed(p)
		if err == nil {
			best = CostResult{Params: p, Eval: ev, Delta: delta}
		}
	}
	return best, nil
}

// costScanCells trades N‖ precision for speed inside optimization
// loops; final evaluations always use the full resolution.
const costScanCells = 96

// nParallelExpectedCells is NParallelExpected with a configurable cell
// count (see ExpectDelayed).
func nParallelExpectedCells(m Model, p DelayedParams, cells int) float64 {
	if err := p.Validate(); err != nil {
		return math.NaN()
	}
	q := 1 - m.Ftilde(p.TInf)
	if q >= 1 {
		return math.NaN()
	}
	sum := 0.0
	prevG := 1.0
	h := p.T0 / float64(cells)
	for j := 0; ; j++ {
		base := float64(j) * p.T0
		for i := 1; i <= cells; i++ {
			t := base + float64(i)*h
			gt := delayedSurvivalQ(m, p, q, t)
			if mass := prevG - gt; mass > 0 {
				sum += mass * NParallelGivenLatency(t-h/2, p)
			}
			prevG = gt
		}
		if prevG < 1e-12 || j > 10000 {
			break
		}
	}
	return sum
}

// StabilityResult reports the paper's Table 5 robustness probe: the
// worst Δcost when the optimal integer (t0, t∞) is perturbed by up to
// ±radius seconds.
type StabilityResult struct {
	MaxDelta    float64
	MaxRelDiff  float64 // (MaxDelta - Delta*) / Delta*
	Evaluations int
}

// CostStability evaluates Δcost on every feasible integer perturbation
// of p within the given radius and reports the maximum. Invalid inputs
// (negative radius, infeasible p) yield a NaN-filled result.
func (c *CostContext) CostStability(p DelayedParams, radius int) StabilityResult {
	if radius < 0 {
		return StabilityResult{MaxDelta: math.NaN(), MaxRelDiff: math.NaN()}
	}
	_, refDelta, err := c.DeltaDelayed(p)
	if err != nil {
		return StabilityResult{MaxDelta: math.NaN(), MaxRelDiff: math.NaN()}
	}
	res := StabilityResult{MaxDelta: refDelta}
	for dt0 := -radius; dt0 <= radius; dt0++ {
		for dti := -radius; dti <= radius; dti++ {
			q := DelayedParams{T0: p.T0 + float64(dt0), TInf: p.TInf + float64(dti)}
			if q.Validate() != nil {
				continue
			}
			_, delta, err := c.DeltaDelayed(q)
			if err != nil {
				continue
			}
			res.Evaluations++
			if delta > res.MaxDelta {
				res.MaxDelta = delta
			}
		}
	}
	if refDelta > 0 {
		res.MaxRelDiff = (res.MaxDelta - refDelta) / refDelta
	}
	return res
}
