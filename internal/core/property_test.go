package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gridstrat/internal/stats"
)

// randomModel builds a small random empirical model from quick-check
// raw material, exercising the analytics far from the calibrated
// datasets (tiny samples, duplicated values, extreme rho).
func randomModel(raw []float64, rawRho float64) (*EmpiricalModel, bool) {
	if len(raw) == 0 {
		return nil, false
	}
	lat := make([]float64, 0, len(raw))
	for _, v := range raw {
		x := math.Abs(math.Mod(v, 5000))
		if x == 0 || math.IsNaN(x) {
			x = 1
		}
		lat = append(lat, x)
	}
	rho := math.Abs(math.Mod(rawRho, 0.9))
	e, err := stats.NewECDF(lat)
	if err != nil {
		return nil, false
	}
	m, err := NewEmpiricalModel(e, rho, 10000)
	if err != nil {
		return nil, false
	}
	return m, true
}

func TestPropertyEJMultipleDominance(t *testing.T) {
	// At any timeout and any model, more copies never hurt, and EJ is
	// bounded below by the conditional mean of the winning round.
	f := func(raw []float64, rawRho, rawT float64) bool {
		m, ok := randomModel(raw, rawRho)
		if !ok {
			return true
		}
		T := 1 + math.Abs(math.Mod(rawT, 9000))
		prev := math.Inf(1)
		for b := 1; b <= 6; b++ {
			ej := EJMultiple(m, b, T)
			if ej > prev+1e-9 {
				return false
			}
			if !math.IsInf(ej, 1) && ej < 0 {
				return false
			}
			prev = ej
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEJSingleGeometricIdentity(t *testing.T) {
	// Eq. 1 equals the direct geometric decomposition
	// E[J] = E[R | R<t∞] + t∞·(1-F̃)/F̃.
	f := func(raw []float64, rawRho, rawT float64) bool {
		m, ok := randomModel(raw, rawRho)
		if !ok {
			return true
		}
		T := 1 + math.Abs(math.Mod(rawT, 9000))
		ft := m.Ftilde(T)
		if ft <= 0 {
			return math.IsInf(EJSingle(m, T), 1)
		}
		// E[R·1(R<T)] = ∫₀ᵀ u dF̃ = T·F̃(T) - ∫₀ᵀ F̃ = T·F̃(T) - (T - ∫(1-F̃)).
		intOne := m.IntOneMinusFPow(T, 1)
		condMean := (T*ft - (T - intOne)) / ft
		want := condMean + T*(1-ft)/ft
		got := EJSingle(m, T)
		return math.Abs(got-want) < 1e-6*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDelayedSurvivalBounds(t *testing.T) {
	// G(t) = P(J > t) is a survival function: within [0,1], monotone
	// non-increasing, and bounded by the first copy's own factor
	// 1 - F̃(min(t, t∞)).
	//
	// Note it is NOT bounded by the un-canceled single-job survival
	// 1 - F̃(t): when all latency mass lies above t∞, cancelling at t∞
	// loses starts a patient job would have gotten — the quick-check
	// harness found exactly that counterexample to an earlier,
	// stronger version of this property.
	f := func(raw []float64, rawRho, rawT0, rawRatio float64) bool {
		m, ok := randomModel(raw, rawRho)
		if !ok {
			return true
		}
		t0 := 1 + math.Abs(math.Mod(rawT0, 4000))
		ratio := 1.001 + math.Abs(math.Mod(rawRatio, 0.998))
		p := DelayedParams{T0: t0, TInf: ratio * t0}
		if p.Validate() != nil {
			return true
		}
		prev := 1.0
		for i := 0; i <= 80; i++ {
			x := float64(i) * (8 * t0 / 80)
			g := DelayedSurvival(m, p, x)
			if g < -1e-12 || g > 1+1e-12 {
				return false
			}
			if g > prev+1e-9 {
				return false // survival must be non-increasing
			}
			prev = g
			firstFactor := 1 - m.Ftilde(math.Min(x, p.TInf))
			if g > firstFactor+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDelayedClosedFormVsStieltjes(t *testing.T) {
	// The geometric-series closed form must match the cell-mass
	// expectation on arbitrary models.
	f := func(raw []float64, rawRho, rawT0, rawRatio float64) bool {
		m, ok := randomModel(raw, rawRho)
		if !ok {
			return true
		}
		t0 := 10 + math.Abs(math.Mod(rawT0, 3000))
		ratio := 1.05 + math.Abs(math.Mod(rawRatio, 0.9))
		p := DelayedParams{T0: t0, TInf: ratio * t0}
		if p.Validate() != nil {
			return true
		}
		closed := EJDelayed(m, p)
		if math.IsInf(closed, 1) {
			return true // no success mass; Stieltjes would diverge too
		}
		stieltjes := ExpectDelayed(m, p, func(l float64) float64 { return l })
		return math.Abs(closed-stieltjes) < 5e-3*math.Max(1, closed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCDFQuantileConsistency(t *testing.T) {
	f := func(raw []float64, rawRho, rawT, rawP float64) bool {
		m, ok := randomModel(raw, rawRho)
		if !ok {
			return true
		}
		T := 10 + math.Abs(math.Mod(rawT, 5000))
		if m.Ftilde(T) <= 0 {
			return true
		}
		p := 0.01 + math.Abs(math.Mod(rawP, 0.98))
		cdf := SingleCDF(m, T)
		x := QuantileJ(cdf, p, T)
		if math.IsInf(x, 1) {
			return false
		}
		return cdf(x) >= p-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareDeadline(t *testing.T) {
	m := testEmpirical(t)
	rep, err := CompareDeadline(m, 600, 4)
	if err != nil {
		t.Fatal(err)
	}
	// More redundancy ⇒ higher deadline probability.
	if !(rep.Multiple.Probability > rep.Single.Probability) {
		t.Fatalf("b=4 P=%v should beat single P=%v",
			rep.Multiple.Probability, rep.Single.Probability)
	}
	if !(rep.Delayed.Probability >= rep.Single.Probability-1e-9) {
		t.Fatalf("delayed P=%v should not trail single P=%v",
			rep.Delayed.Probability, rep.Single.Probability)
	}
	// P95 ordering mirrors it.
	if !(rep.Multiple.P95 < rep.Single.P95) {
		t.Fatalf("b=4 P95=%v should beat single P95=%v", rep.Multiple.P95, rep.Single.P95)
	}
	for _, e := range []DeadlineEntry{rep.Single, rep.Multiple, rep.Delayed} {
		if e.Probability < 0 || e.Probability > 1 {
			t.Fatalf("%s: probability %v", e.Label, e.Probability)
		}
		if e.P95 <= 0 || math.IsInf(e.P95, 1) {
			t.Fatalf("%s: P95 %v", e.Label, e.P95)
		}
	}
	if _, err := CompareDeadline(m, -5, 2); err == nil {
		t.Fatal("negative deadline should fail")
	}

	// Cross-check one quantile against Monte Carlo.
	rng := rand.New(rand.NewSource(91))
	tS, _ := OptimizeSingle(m)
	sim, err := SimulateSingle(m, tS, 60000, rng)
	if err != nil {
		t.Fatal(err)
	}
	_ = sim
	met := 0
	for i := 0; i < 60000; i++ {
		j := 0.0
		for {
			l := m.Sample(rng)
			if l < tS {
				j += l
				break
			}
			j += tS
		}
		if j <= 600 {
			met++
		}
	}
	mc := float64(met) / 60000
	if math.Abs(mc-rep.Single.Probability) > 0.01 {
		t.Fatalf("deadline P analytic %v vs MC %v", rep.Single.Probability, mc)
	}
}
