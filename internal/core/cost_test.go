package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestCostContextReference(t *testing.T) {
	m := testEmpirical(t)
	cc, err := NewCostContext(m)
	if err != nil {
		t.Fatal(err)
	}
	if cc.RefEJ <= 0 || math.IsInf(cc.RefEJ, 1) {
		t.Fatalf("bad reference EJ %v", cc.RefEJ)
	}
	// Single resubmission costs exactly 1 by construction (Eq. 6).
	if got := cc.Delta(cc.RefEJ, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Δcost(single) = %v, want 1", got)
	}
	// DeltaMultiple(1) re-optimizes the same strategy: Δ ≈ 1.
	_, _, delta := cc.DeltaMultiple(1)
	if math.Abs(delta-1) > 1e-6 {
		t.Fatalf("Δcost(b=1) = %v, want 1", delta)
	}
}

func TestDeltaMultipleIncreasing(t *testing.T) {
	// Table 4 right side: Δcost grows with b and exceeds 1 from b=2 —
	// multiple submission buys latency with grid load.
	m := testEmpirical(t)
	cc, err := NewCostContext(m)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.0
	for _, b := range []int{2, 3, 5, 8, 12, 20} {
		_, ev, delta := cc.DeltaMultiple(b)
		if delta <= 1 {
			t.Errorf("Δcost(b=%d) = %v, want > 1", b, delta)
		}
		if delta <= prev {
			t.Errorf("Δcost(b=%d) = %v not increasing (prev %v)", b, delta, prev)
		}
		if ev.Parallel != float64(b) {
			t.Errorf("Parallel = %v, want %d", ev.Parallel, b)
		}
		prev = delta
	}
}

func TestOptimizeDelayedCostBeatsSingle(t *testing.T) {
	// The paper's §7 headline: on 2006-IX the delayed strategy can be
	// tuned to Δcost < 1 — faster than single resubmission *and*
	// lighter on the grid.
	m := testEmpirical(t)
	cc, err := NewCostContext(m)
	if err != nil {
		t.Fatal(err)
	}
	res := cc.OptimizeDelayedCost()
	if err := res.Params.Validate(); err != nil {
		t.Fatalf("optimizer returned invalid params: %v", err)
	}
	if !(res.Delta < 1) {
		t.Fatalf("min Δcost = %v, want < 1 on 2006-IX-style trace", res.Delta)
	}
	if !(res.Eval.EJ < cc.RefEJ) {
		t.Fatalf("cost optimum EJ %v should still beat single %v", res.Eval.EJ, cc.RefEJ)
	}
	// Integer lattice, as the paper restricts Table 5.
	if res.Params.T0 != math.Trunc(res.Params.T0) || res.Params.TInf != math.Trunc(res.Params.TInf) {
		t.Fatalf("params not integers: %+v", res.Params)
	}
}

func TestDeltaDelayedConsistency(t *testing.T) {
	m := testEmpirical(t)
	cc, err := NewCostContext(m)
	if err != nil {
		t.Fatal(err)
	}
	p := DelayedParams{T0: 300, TInf: 420}
	ev, delta, err := cc.DeltaDelayed(p)
	if err != nil {
		t.Fatal(err)
	}
	want := ev.Parallel * ev.EJ / cc.RefEJ
	if math.Abs(delta-want) > 1e-12 {
		t.Fatalf("Δ = %v, want %v", delta, want)
	}
	if _, _, err := cc.DeltaDelayed(DelayedParams{T0: -1, TInf: 5}); err == nil {
		t.Fatal("invalid params should error")
	}
}

func TestCostStability(t *testing.T) {
	m := testEmpirical(t)
	cc, err := NewCostContext(m)
	if err != nil {
		t.Fatal(err)
	}
	res := cc.OptimizeDelayedCost()

	// Radius 0: only the point itself.
	s0 := cc.CostStability(res.Params, 0)
	if math.Abs(s0.MaxDelta-res.Delta) > 1e-9 || s0.MaxRelDiff > 1e-9 {
		t.Fatalf("radius-0 stability should be the point itself: %+v", s0)
	}
	// Radius 5 (the paper's probe): bounded degradation.
	s5 := cc.CostStability(res.Params, 5)
	if s5.MaxDelta < res.Delta {
		t.Fatalf("max over neighborhood %v below center %v", s5.MaxDelta, res.Delta)
	}
	if s5.MaxRelDiff > 0.2 {
		t.Fatalf("±5 s perturbation should stay within ~15%%: got %.1f%%", s5.MaxRelDiff*100)
	}
	if s5.Evaluations == 0 {
		t.Fatal("no feasible perturbations evaluated")
	}
	if neg := cc.CostStability(res.Params, -1); !math.IsNaN(neg.MaxDelta) {
		t.Fatal("negative radius should give NaN")
	}
	// Invalid center: NaN result.
	bad := cc.CostStability(DelayedParams{T0: -1, TInf: 3}, 2)
	if !math.IsNaN(bad.MaxDelta) {
		t.Fatal("invalid center should give NaN")
	}
}

func TestCostContextFailsWithoutSuccessMass(t *testing.T) {
	// A model whose latencies all exceed the timeout bound cannot
	// anchor a cost reference... but OptimizeSingle still finds the
	// point mass if any exists; construct a truly hopeless model via
	// rho ≈ 1 being rejected earlier, so instead verify the error path
	// with an upper bound below all support.
	m := hopelessModel{}
	if _, err := NewCostContext(m); err == nil {
		t.Fatal("hopeless model should fail to anchor")
	}
}

// hopelessModel has no success mass anywhere below its upper bound.
type hopelessModel struct{}

func (hopelessModel) Ftilde(float64) float64 { return 0 }
func (hopelessModel) Rho() float64           { return 0.99 }
func (hopelessModel) UpperBound() float64    { return 100 }
func (hopelessModel) IntOneMinusFPow(T float64, b int) float64 {
	if T < 0 {
		return 0
	}
	return T
}
func (hopelessModel) IntUOneMinusFPow(T float64, b int) float64 {
	if T < 0 {
		return 0
	}
	return T * T / 2
}
func (hopelessModel) IntProdOneMinusF(T, shift float64) float64 {
	if T < 0 {
		return 0
	}
	return T
}
func (hopelessModel) IntUProdOneMinusF(T, shift float64) float64 {
	if T < 0 {
		return 0
	}
	return T * T / 2
}
func (hopelessModel) Sample(*rand.Rand) float64 { return math.Inf(1) }
