package core

import (
	"context"
	"fmt"
	"math"
)

// QuantileJ inverts a strategy's total-latency CDF: the smallest t
// with P(J <= t) >= p, found by doubling bracket + bisection (strategy
// CDFs are non-decreasing with geometric tails, so this terminates).
func QuantileJ(cdf func(float64) float64, p, hint float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	if hint <= 0 {
		hint = 1
	}
	hi := hint
	for cdf(hi) < p {
		hi *= 2
		if hi > 1e15 {
			return math.Inf(1)
		}
	}
	lo := 0.0
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if mid == lo || mid == hi {
			break
		}
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// DeadlineReport compares the three strategies on the probability of a
// task starting before a deadline.
type DeadlineReport struct {
	Deadline float64
	Single   DeadlineEntry
	Multiple DeadlineEntry
	Delayed  DeadlineEntry
}

// DeadlineEntry is one strategy's deadline performance.
type DeadlineEntry struct {
	Label       string
	Probability float64 // P(J <= deadline)
	Parallel    float64 // average copies in flight
	P95         float64 // 95th percentile of J
}

// CompareDeadline evaluates P(J <= deadline) for the optimized single
// strategy, b-fold multiple submission, and the EJ-optimal delayed
// strategy. It is the "soft real-time" view of the paper's evaluation:
// users often care about tail quantiles, not expectations. Invalid
// deadlines and collection sizes are returned as errors.
func CompareDeadline(m Model, deadline float64, b int) (DeadlineReport, error) {
	return CompareDeadlineCtx(context.Background(), m, deadline, b, 1)
}

// CompareDeadlineCtx is CompareDeadline with cancellation of the three
// per-strategy optimizations and a worker count for their scans (<= 0
// means all cores; results are identical for every count).
func CompareDeadlineCtx(ctx context.Context, m Model, deadline float64, b int, workers int) (DeadlineReport, error) {
	if deadline <= 0 {
		return DeadlineReport{}, fmt.Errorf("core: non-positive deadline %v", deadline)
	}
	if err := ValidateB(b); err != nil {
		return DeadlineReport{}, err
	}
	rep := DeadlineReport{Deadline: deadline}

	tS, _, err := OptimizeSingleCtx(ctx, m, workers)
	if err != nil {
		return DeadlineReport{}, err
	}
	cdfS := SingleCDF(m, tS)
	rep.Single = DeadlineEntry{
		Label:       fmt.Sprintf("single(t∞=%.0fs)", tS),
		Probability: cdfS(deadline),
		Parallel:    1,
		P95:         QuantileJ(cdfS, 0.95, tS),
	}

	tM, _, err := OptimizeMultipleCtx(ctx, m, b, workers)
	if err != nil {
		return DeadlineReport{}, err
	}
	cdfM := MultipleCDF(m, b, tM)
	rep.Multiple = DeadlineEntry{
		Label:       fmt.Sprintf("multiple(b=%d, t∞=%.0fs)", b, tM),
		Probability: cdfM(deadline),
		Parallel:    float64(b),
		P95:         QuantileJ(cdfM, 0.95, tM),
	}

	p, ev, err := OptimizeDelayedCtx(ctx, m, workers)
	if err != nil {
		return DeadlineReport{}, err
	}
	cdfD := DelayedCDF(m, p)
	rep.Delayed = DeadlineEntry{
		Label:       fmt.Sprintf("delayed(t0=%.0fs, t∞=%.0fs)", p.T0, p.TInf),
		Probability: cdfD(deadline),
		Parallel:    ev.Parallel,
		P95:         QuantileJ(cdfD, 0.95, p.T0),
	}
	return rep, nil
}
