package core

import (
	"fmt"
	"math/rand"
	"sort"

	"gridstrat/internal/stats"
)

// BootstrapCI is a percentile bootstrap confidence interval for a
// statistic of the latency model.
type BootstrapCI struct {
	Point     float64 // statistic on the original model
	Lo, Hi    float64 // percentile interval bounds
	Level     float64 // confidence level, e.g. 0.95
	Resamples int
}

// BootstrapModel draws one bootstrap replicate of an empirical model:
// non-outlier latencies resampled with replacement and the outlier
// count redrawn binomially. This quantifies how much a week's worth of
// probes pins down the strategy statistics (the estimation concern of
// the paper's §7.2).
func BootstrapModel(m *EmpiricalModel, rng *rand.Rand) (*EmpiricalModel, error) {
	e := m.ECDF()
	n := e.N()
	resampled := make([]float64, n)
	for i := range resampled {
		resampled[i] = e.Rand(rng)
	}
	ne, err := stats.NewECDF(resampled)
	if err != nil {
		return nil, err
	}
	// Redraw the outlier count binomially over the full probe
	// population: the completed count n is (1-ρ) of the probes.
	total := int(float64(n)/(1-m.Rho()) + 0.5)
	outliers := 0
	for i := 0; i < total; i++ {
		if rng.Float64() < m.Rho() {
			outliers++
		}
	}
	rho := float64(outliers) / float64(total)
	if rho >= 1 {
		rho = 1 - 1.0/float64(total)
	}
	return NewEmpiricalModel(ne, rho, m.UpperBound())
}

// BootstrapStatistic computes a percentile bootstrap CI for any
// model statistic (e.g. the EJ of a fixed strategy configuration).
func BootstrapStatistic(m *EmpiricalModel, stat func(Model) float64,
	resamples int, level float64, rng *rand.Rand) (BootstrapCI, error) {
	if resamples < 10 {
		return BootstrapCI{}, fmt.Errorf("core: need >= 10 resamples, got %d", resamples)
	}
	if level <= 0 || level >= 1 {
		return BootstrapCI{}, fmt.Errorf("core: confidence level %v outside (0, 1)", level)
	}
	values := make([]float64, 0, resamples)
	for i := 0; i < resamples; i++ {
		bm, err := BootstrapModel(m, rng)
		if err != nil {
			return BootstrapCI{}, err
		}
		values = append(values, stat(bm))
	}
	sort.Float64s(values)
	alpha := (1 - level) / 2
	return BootstrapCI{
		Point:     stat(m),
		Lo:        stats.Percentile(values, alpha),
		Hi:        stats.Percentile(values, 1-alpha),
		Level:     level,
		Resamples: resamples,
	}, nil
}

// BootstrapDelayedEJ is a convenience wrapper: the CI of EJ for a
// fixed delayed configuration.
func BootstrapDelayedEJ(m *EmpiricalModel, p DelayedParams,
	resamples int, level float64, rng *rand.Rand) (BootstrapCI, error) {
	if err := p.Validate(); err != nil {
		return BootstrapCI{}, err
	}
	return BootstrapStatistic(m, func(bm Model) float64 {
		return EJDelayed(bm, p)
	}, resamples, level, rng)
}

// BootstrapSingleEJ is the CI of EJ for a fixed single-resubmission
// timeout.
func BootstrapSingleEJ(m *EmpiricalModel, tInf float64,
	resamples int, level float64, rng *rand.Rand) (BootstrapCI, error) {
	if tInf <= 0 {
		return BootstrapCI{}, fmt.Errorf("core: non-positive timeout %v", tInf)
	}
	return BootstrapStatistic(m, func(bm Model) float64 {
		return EJSingle(bm, tInf)
	}, resamples, level, rng)
}
