package core

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"

	"gridstrat/internal/stats"
)

// cdfVsMC checks a strategy CDF against the empirical distribution of
// Monte Carlo replays via the KS distance.
func cdfVsMC(t *testing.T, name string, cdf func(float64) float64, draw func(*rand.Rand) float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(33))
	const n = 40000
	sample := make([]float64, n)
	for i := range sample {
		sample[i] = draw(rng)
	}
	sort.Float64s(sample)
	maxD := 0.0
	for i, x := range sample {
		d := math.Abs(float64(i+1)/n - cdf(x))
		if d > maxD {
			maxD = d
		}
	}
	if maxD > 1.95/math.Sqrt(n) {
		t.Errorf("%s: KS distance %v between analytic CDF and simulation", name, maxD)
	}
}

func TestSingleCDFMatchesSimulation(t *testing.T) {
	m := testEmpirical(t)
	tInf := 500.0
	cdf := SingleCDF(m, tInf)
	cdfVsMC(t, "single", cdf, func(rng *rand.Rand) float64 {
		j := 0.0
		for {
			l := m.Sample(rng)
			if l < tInf {
				return j + l
			}
			j += tInf
		}
	})
}

func TestMultipleCDFMatchesSimulation(t *testing.T) {
	m := testEmpirical(t)
	tInf, b := 600.0, 3
	cdf := MultipleCDF(m, b, tInf)
	cdfVsMC(t, "multiple", cdf, func(rng *rand.Rand) float64 {
		j := 0.0
		for {
			best := math.Inf(1)
			for k := 0; k < b; k++ {
				if l := m.Sample(rng); l < best {
					best = l
				}
			}
			if best < tInf {
				return j + best
			}
			j += tInf
		}
	})
}

func TestDelayedCDFMatchesSimulation(t *testing.T) {
	m := testEmpirical(t)
	p := DelayedParams{T0: 300, TInf: 450}
	cdf := DelayedCDF(m, p)
	cdfVsMC(t, "delayed", cdf, func(rng *rand.Rand) float64 {
		j, _, _, err := runDelayedOnce(context.Background(), m, p, rng)
		if err != nil {
			t.Fatal(err)
		}
		return j
	})
}

func TestCDFsIntegrateToEJ(t *testing.T) {
	// ∫(1-FJ) over the support must equal the closed-form EJ.
	m := testEmpirical(t)
	tInf := 500.0
	cdf := SingleCDF(m, tInf)
	got := ExpectedMax(cdf, 1, tInf)
	want := EJSingle(m, tInf)
	if math.Abs(got-want) > 0.005*want {
		t.Fatalf("∫(1-FJ) = %v vs EJ = %v", got, want)
	}

	b := 4
	cdfB := MultipleCDF(m, b, tInf)
	got = ExpectedMax(cdfB, 1, tInf)
	want = EJMultiple(m, b, tInf)
	if math.Abs(got-want) > 0.005*want {
		t.Fatalf("multiple: ∫(1-FJ) = %v vs EJ = %v", got, want)
	}

	p := DelayedParams{T0: 339, TInf: 485}
	got = ExpectedMax(DelayedCDF(m, p), 1, p.T0)
	want = EJDelayed(m, p)
	if math.Abs(got-want) > 0.005*want {
		t.Fatalf("delayed: ∫(1-FJ) = %v vs EJ = %v", got, want)
	}
}

func TestExpectedMaxKnownLaws(t *testing.T) {
	// Uniform(0,1): E[max of n] = n/(n+1).
	u := stats.NewUniform(0, 1)
	for _, n := range []int{1, 2, 5, 20} {
		got := ExpectedMax(u.CDF, n, 1)
		want := float64(n) / float64(n+1)
		if math.Abs(got-want) > 1e-4 {
			t.Errorf("uniform max(%d) = %v, want %v", n, got, want)
		}
	}
	// Exponential(λ): E[max of n] = H_n/λ.
	e := stats.NewExponential(0.01)
	h := 0.0
	for n := 1; n <= 10; n++ {
		h += 1.0 / float64(n)
		got := ExpectedMax(e.CDF, n, 100)
		want := h / 0.01
		if math.Abs(got-want) > 0.005*want {
			t.Errorf("exponential max(%d) = %v, want %v", n, got, want)
		}
	}
	if !math.IsNaN(ExpectedMax(u.CDF, 0, 1)) {
		t.Fatal("n < 1 should give NaN")
	}
	if !math.IsNaN(ExpectedMax(nil, 3, 1)) {
		t.Fatal("nil CDF should give NaN")
	}
}

func TestExpectedMaxGrowsWithN(t *testing.T) {
	m := testEmpirical(t)
	cdf := MultipleCDF(m, 2, 600)
	prev := 0.0
	for _, n := range []int{1, 5, 25, 100} {
		v := ExpectedMax(cdf, n, 600)
		if v <= prev {
			t.Fatalf("E[max] not increasing at n=%d: %v <= %v", n, v, prev)
		}
		prev = v
	}
}

func TestEq5AgreesInFloorRegime(t *testing.T) {
	// With F̃(t0) = 0 all three delayed routes coincide.
	m, err := NewParametricModel(mustShift(t, 400), 0.0, 20000)
	if err != nil {
		t.Fatal(err)
	}
	p := DelayedParams{T0: 300, TInf: 550}
	exact := EJDelayed(m, p)
	eq5 := EJDelayedPaperEq5(m, p)
	if math.Abs(exact-eq5) > 0.02*exact {
		t.Fatalf("Eq5 %v vs exact %v with F̃(t0)=0", eq5, exact)
	}
}

func TestEq5FiniteOnEmpirical(t *testing.T) {
	m := testEmpirical(t)
	for _, p := range []DelayedParams{
		{T0: 250, TInf: 400},
		{T0: 339, TInf: 485},
	} {
		v := EJDelayedPaperEq5(m, p)
		if math.IsInf(v, 0) || math.IsNaN(v) || v <= 0 {
			t.Fatalf("Eq5 gave %v at %+v", v, p)
		}
		// Same order of magnitude as the exact value (the printed
		// formula carries typos, so only a loose band is asserted).
		exact := EJDelayed(m, p)
		if v < 0.3*exact || v > 3*exact {
			t.Fatalf("Eq5 %v implausibly far from exact %v", v, exact)
		}
	}
	if !math.IsInf(EJDelayedPaperEq5(m, DelayedParams{T0: -1, TInf: 5}), 1) {
		t.Fatal("invalid params should give +Inf")
	}
}

func TestBootstrapCI(t *testing.T) {
	m := testEmpirical(t)
	rng := rand.New(rand.NewSource(44))
	p := DelayedParams{T0: 300, TInf: 450}
	ci, err := BootstrapDelayedEJ(m, p, 200, 0.95, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !(ci.Lo <= ci.Point && ci.Point <= ci.Hi) {
		t.Fatalf("point %v outside interval [%v, %v]", ci.Point, ci.Lo, ci.Hi)
	}
	// With ~1900 completed probes the CI is tight but not degenerate.
	width := (ci.Hi - ci.Lo) / ci.Point
	if width <= 0 || width > 0.5 {
		t.Fatalf("suspicious CI width %.1f%%", width*100)
	}

	ciS, err := BootstrapSingleEJ(m, 500, 100, 0.9, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !(ciS.Lo < ciS.Hi) {
		t.Fatal("degenerate single CI")
	}

	// Error paths.
	if _, err := BootstrapDelayedEJ(m, DelayedParams{T0: -1, TInf: 2}, 50, 0.95, rng); err == nil {
		t.Fatal("invalid params should fail")
	}
	if _, err := BootstrapSingleEJ(m, -5, 50, 0.95, rng); err == nil {
		t.Fatal("invalid timeout should fail")
	}
	if _, err := BootstrapStatistic(m, func(Model) float64 { return 1 }, 5, 0.95, rng); err == nil {
		t.Fatal("too few resamples should fail")
	}
	if _, err := BootstrapStatistic(m, func(Model) float64 { return 1 }, 50, 1.5, rng); err == nil {
		t.Fatal("bad level should fail")
	}
}

func TestBootstrapModelPreservesShape(t *testing.T) {
	m := testEmpirical(t)
	rng := rand.New(rand.NewSource(55))
	bm, err := BootstrapModel(m, rng)
	if err != nil {
		t.Fatal(err)
	}
	if bm.ECDF().N() != m.ECDF().N() {
		t.Fatalf("resample size %d != %d", bm.ECDF().N(), m.ECDF().N())
	}
	if math.Abs(bm.Rho()-m.Rho()) > 0.05 {
		t.Fatalf("bootstrap rho %v far from %v", bm.Rho(), m.Rho())
	}
	// Means should be close (resampling noise only).
	if math.Abs(bm.ECDF().Mean()-m.ECDF().Mean()) > 0.15*m.ECDF().Mean() {
		t.Fatalf("bootstrap mean %v far from %v", bm.ECDF().Mean(), m.ECDF().Mean())
	}
}
