package core

import (
	"math"
	"math/rand"
	"testing"

	"gridstrat/internal/trace"
)

func weekModel(t *testing.T, name string) (*EmpiricalModel, int) {
	t.Helper()
	spec, err := trace.LookupDataset(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ModelFromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	return m, len(tr.Latencies())
}

func TestMixtureModelValidation(t *testing.T) {
	m1, _ := weekModel(t, "2007-51")
	if _, err := NewMixtureModel(nil, nil); err == nil {
		t.Fatal("empty mixture should fail")
	}
	if _, err := NewMixtureModel([]Model{m1}, []float64{0}); err == nil {
		t.Fatal("zero weight should fail")
	}
	if _, err := NewMixtureModel([]Model{m1, nil}, []float64{1, 1}); err == nil {
		t.Fatal("nil model should fail")
	}
	if _, err := NewMixtureModel([]Model{m1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestMixtureModelPoolsCorrectly(t *testing.T) {
	// A mixture of two weeks weighted by completed-probe counts must
	// match the model built from the merged trace.
	specA, _ := trace.LookupDataset("2007-51")
	specB, _ := trace.LookupDataset("2007-52")
	trA, err := trace.Synthesize(specA)
	if err != nil {
		t.Fatal(err)
	}
	trB, err := trace.Synthesize(specB)
	if err != nil {
		t.Fatal(err)
	}
	mA, err := ModelFromTrace(trA)
	if err != nil {
		t.Fatal(err)
	}
	mB, err := ModelFromTrace(trB)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := trace.Merge("pool", trA, trB)
	if err != nil {
		t.Fatal(err)
	}
	mPool, err := ModelFromTrace(merged)
	if err != nil {
		t.Fatal(err)
	}

	// Weight by terminal probe counts (completed + outliers), which is
	// what pooling the raw records does.
	wA := float64(trA.Len())
	wB := float64(trB.Len())
	mix, err := NewMixtureModel([]Model{mA, mB}, []float64{wA, wB})
	if err != nil {
		t.Fatal(err)
	}
	if mix.Regimes() != 2 {
		t.Fatalf("%d regimes", mix.Regimes())
	}
	for _, x := range []float64{150, 300, 600, 1500, 5000} {
		got, want := mix.Ftilde(x), mPool.Ftilde(x)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("F̃(%v): mixture %v vs pooled %v", x, got, want)
		}
	}
	// EJ agreement within quadrature + pooling tolerance.
	for _, T := range []float64{400, 800} {
		got, want := EJSingle(mix, T), EJSingle(mPool, T)
		if math.Abs(got-want) > 0.02*want {
			t.Errorf("EJ(%v): mixture %v vs pooled %v", T, got, want)
		}
	}
}

func TestMixtureModelStrategiesRun(t *testing.T) {
	mA, _ := weekModel(t, "2007-51")
	mB, _ := weekModel(t, "2008-03")
	mix, err := NewMixtureModel([]Model{mA, mB}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// The optimization-friendly path: discretize the mixture (exact
	// integrals), optimize there, then evaluate on the true mixture.
	disc, err := Discretize(mix, 4000)
	if err != nil {
		t.Fatal(err)
	}
	tInf, single := OptimizeSingle(disc)
	if math.IsInf(single.EJ, 1) || tInf <= 0 {
		t.Fatal("single optimization failed on discretized mixture")
	}
	// Discretization preserves the strategy values: evaluate on the
	// quadrature-backed mixture at the optimized parameters.
	if got := EJSingle(mix, tInf); math.Abs(got-single.EJ) > 0.01*single.EJ {
		t.Fatalf("discretized EJ %v vs mixture EJ %v", single.EJ, got)
	}

	if multi := EJMultiple(mix, 3, tInf); !(multi < single.EJ) {
		t.Fatal("b=3 should beat single on mixture")
	}

	p, delayed := OptimizeDelayed(disc)
	if !(delayed.EJ < single.EJ) {
		t.Fatal("delayed should beat single on mixture")
	}
	// MC validation against the true mixture model.
	rng := rand.New(rand.NewSource(93))
	sim, err := SimulateDelayed(mix, p, 60000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sim.EJ-delayed.EJ) > math.Max(6*sim.StdErr, 0.01*delayed.EJ) {
		t.Fatalf("mixture MC %v ± %v vs discretized analytic %v", sim.EJ, sim.StdErr, delayed.EJ)
	}
}

func TestDiscretizeAccuracy(t *testing.T) {
	// Discretizing an empirical model reproduces its integrals.
	m, _ := weekModel(t, "2007-52")
	disc, err := Discretize(m, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(disc.Rho()-m.Rho()) > 1e-12 {
		t.Fatalf("rho drifted: %v vs %v", disc.Rho(), m.Rho())
	}
	for _, T := range []float64{300, 700, 2000} {
		a, b := EJSingle(m, T), EJSingle(disc, T)
		if math.Abs(a-b) > 0.01*a {
			t.Fatalf("EJ(%v): %v vs discretized %v", T, a, b)
		}
	}
	p := DelayedParams{T0: 300, TInf: 450}
	a, b := EJDelayed(m, p), EJDelayed(disc, p)
	if math.Abs(a-b) > 0.01*a {
		t.Fatalf("delayed EJ: %v vs discretized %v", a, b)
	}
	if _, err := Discretize(m, 1); err == nil {
		t.Fatal("n=1 should fail")
	}
}

func TestMixtureSamplingWeights(t *testing.T) {
	mA, _ := weekModel(t, "2007-51")
	mB, _ := weekModel(t, "2008-01")
	mix, err := NewMixtureModel([]Model{mA, mB}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	// ρ of the mixture is the weighted ρ.
	want := 0.75*mA.Rho() + 0.25*mB.Rho()
	if math.Abs(mix.Rho()-want) > 1e-12 {
		t.Fatalf("mixture rho %v, want %v", mix.Rho(), want)
	}
	// Sampled outlier fraction matches.
	rng := rand.New(rand.NewSource(95))
	inf := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if math.IsInf(mix.Sample(rng), 1) {
			inf++
		}
	}
	if math.Abs(float64(inf)/n-want) > 0.01 {
		t.Fatalf("sampled rho %v, want %v", float64(inf)/n, want)
	}
}

func TestEvaluateAcrossRegimes(t *testing.T) {
	mA, _ := weekModel(t, "2007-51")
	mB, _ := weekModel(t, "2008-03")
	mix, err := NewMixtureModel([]Model{mA, mB}, []float64{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	p := DelayedParams{T0: 300, TInf: 450}
	regimes, avg, err := EvaluateAcrossRegimes(mix, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(regimes) != 2 {
		t.Fatalf("%d regimes", len(regimes))
	}
	want := regimes[0].Weight*regimes[0].EJ + regimes[1].Weight*regimes[1].EJ
	if math.Abs(avg-want) > 1e-9 {
		t.Fatalf("average %v, want %v", avg, want)
	}
	// The per-regime average differs from the mixture-law EJ when the
	// regimes differ (a job resubmitted inside one regime stays in it,
	// vs. re-drawing the regime each attempt under the mixture law).
	mixEJ := EJDelayed(mix, p)
	if math.IsInf(mixEJ, 1) {
		t.Fatal("mixture EJ diverged")
	}
	if _, _, err := EvaluateAcrossRegimes(mix, DelayedParams{T0: -1, TInf: 3}); err == nil {
		t.Fatal("invalid params should fail")
	}
}
