package core

import (
	"context"
	"math/rand"
	"testing"

	"gridstrat/internal/stats"
)

// scalarOnly strips the optional BatchIntegrals / ProdBothIntegrals
// extensions from a model by embedding the bare interface, forcing
// every optimizer down the per-point scalar path.
type scalarOnly struct{ Model }

func parityModel(t *testing.T, seed int64, rho float64) *EmpiricalModel {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sample := make([]float64, 1200)
	for i := range sample {
		sample[i] = rng.ExpFloat64()*450 + 30
	}
	m, err := NewEmpiricalModel(stats.MustECDF(sample), rho, 10000)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestBatchOptimizersMatchScalarPath is the cross-layer exactness gate
// of the kernelized engine: every optimizer that detects
// BatchIntegrals must return bit-identical results with the extension
// hidden (per-point scalar kernels) and visible (swept batch kernels),
// at several worker counts.
func TestBatchOptimizersMatchScalarPath(t *testing.T) {
	ctx := context.Background()
	for _, rho := range []float64{0, 0.17} {
		m := parityModel(t, 42, rho)
		sm := scalarOnly{m}
		if _, ok := Model(sm).(BatchIntegrals); ok {
			t.Fatal("scalarOnly must hide the batch extension")
		}

		for _, b := range []int{1, 3, 5} {
			for _, workers := range []int{1, 4} {
				tb, evb, err := OptimizeMultipleCtx(ctx, m, b, workers)
				if err != nil {
					t.Fatal(err)
				}
				ts, evs, err := OptimizeMultipleCtx(ctx, sm, b, workers)
				if err != nil {
					t.Fatal(err)
				}
				if tb != ts || evb != evs {
					t.Fatalf("b=%d workers=%d: batch (%v, %+v) != scalar (%v, %+v)", b, workers, tb, evb, ts, evs)
				}
			}
		}

		tsb, ejb := MultipleCurve(m, 4, 2000, 250)
		tss, ejs := MultipleCurve(sm, 4, 2000, 250)
		for i := range tsb {
			if tsb[i] != tss[i] || ejb[i] != ejs[i] {
				t.Fatalf("MultipleCurve[%d]: batch (%v, %v) != scalar (%v, %v)", i, tsb[i], ejb[i], tss[i], ejs[i])
			}
		}

		pb, evb, err := OptimizeDelayedCtx(ctx, m, 1)
		if err != nil {
			t.Fatal(err)
		}
		ps, evs, err := OptimizeDelayedCtx(ctx, sm, 1)
		if err != nil {
			t.Fatal(err)
		}
		if pb != ps || evb != evs {
			t.Fatalf("OptimizeDelayed: batch (%+v, %+v) != scalar (%+v, %+v)", pb, evb, ps, evs)
		}

		for _, ratio := range []float64{1.3, 2.0} {
			pb, evb, err := OptimizeDelayedRatioCtx(ctx, m, ratio, 2)
			if err != nil {
				t.Fatal(err)
			}
			ps, evs, err := OptimizeDelayedRatioCtx(ctx, sm, ratio, 2)
			if err != nil {
				t.Fatal(err)
			}
			if pb != ps || evb != evs {
				t.Fatalf("ratio %v: batch (%+v, %+v) != scalar (%+v, %+v)", ratio, pb, evb, ps, evs)
			}
		}

		ccb, err := NewCostContextCtx(ctx, m, 1)
		if err != nil {
			t.Fatal(err)
		}
		ccs, err := NewCostContextCtx(ctx, sm, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ccb.RefTimeout != ccs.RefTimeout || ccb.RefEJ != ccs.RefEJ {
			t.Fatalf("cost baselines diverged: %+v vs %+v", ccb, ccs)
		}
		rb, err := ccb.OptimizeDelayedCostCtx(ctx, 1)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := ccs.OptimizeDelayedCostCtx(ctx, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rb != rs {
			t.Fatalf("OptimizeDelayedCost: batch %+v != scalar %+v", rb, rs)
		}
	}
}

// TestKernelIntegralsMatchWalkersOnModel re-checks the four Model
// integral methods against the exported reference walkers through the
// EmpiricalModel's s = 1-ρ scaling.
func TestKernelIntegralsMatchWalkersOnModel(t *testing.T) {
	m := parityModel(t, 7, 0.12)
	e := m.ECDF()
	s := 1 - m.Rho()
	for _, T := range []float64{0, 25, 333.25, 5000, 20000} {
		for _, b := range []int{1, 2, 5, 10} {
			if got, want := m.IntOneMinusFPow(T, b), e.IntegralOneMinusFPowWalk(T, s, b); relDiff(got, want) > 1e-12 {
				t.Fatalf("IntOneMinusFPow(%v, %d) = %v, walker %v", T, b, got, want)
			}
			if got, want := m.IntUOneMinusFPow(T, b), e.IntegralUOneMinusFPowWalk(T, s, b); relDiff(got, want) > 1e-12 {
				t.Fatalf("IntUOneMinusFPow(%v, %d) = %v, walker %v", T, b, got, want)
			}
		}
		for _, shift := range []float64{0, 100, 7000} {
			if got, want := m.IntProdOneMinusF(T, shift), e.IntegralProdOneMinusFWalk(T, shift, s); got != want {
				t.Fatalf("IntProdOneMinusF(%v, %v) = %v, walker %v", T, shift, got, want)
			}
			if got, want := m.IntUProdOneMinusF(T, shift), e.IntegralUProdOneMinusFWalk(T, shift, s); got != want {
				t.Fatalf("IntUProdOneMinusF(%v, %v) = %v, walker %v", T, shift, got, want)
			}
		}
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if ab := b; ab > 1 || ab < -1 {
		if ab < 0 {
			ab = -ab
		}
		scale = ab
	}
	return d / scale
}

// TestHugeExponentNoOverflow guards the float→int exponent conversions
// against the pre-kernel behaviour: CDFs and survival functions at
// astronomically large times must return their limits, not crash on an
// overflowed integer exponent.
func TestHugeExponentNoOverflow(t *testing.T) {
	m := parityModel(t, 3, 0.1) // latencies ≈ Exp(450)+30: mass above 50
	cdf := MultipleCDF(m, 2, 50)
	// k = floor(1e21/50) = 2e19 >= 2^62: must take the math.Pow branch
	// and return the q^k → 0 limit, i.e. certain success.
	if got := cdf(1e21); got != 1 {
		t.Fatalf("MultipleCDF at huge t/tInf = %v, want 1", got)
	}
	p := DelayedParams{T0: 100, TInf: 150}
	if got := DelayedSurvival(m, p, 1e21); got != 0 {
		t.Fatalf("DelayedSurvival at huge t/T0 = %v, want 0", got)
	}
	// A zero-success-mass timeout keeps its historical limit (q = 1).
	if got := MultipleCDF(m, 2, 1e-9)(1e10); got != 0 {
		t.Fatalf("MultipleCDF with no success mass = %v, want 0", got)
	}
}
