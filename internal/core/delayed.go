package core

import (
	"context"
	"fmt"
	"math"

	"gridstrat/internal/optimize"
	"gridstrat/internal/stats"
)

// DelayedParams are the two knobs of the delayed-resubmission strategy
// (paper §6): a copy of the job is submitted every T0 seconds while
// nothing has started, and each copy is canceled TInf seconds after
// its own submission. The constraint T0 < TInf <= 2·T0 keeps at most
// two copies in flight.
type DelayedParams struct {
	T0   float64
	TInf float64
}

// Validate checks 0 < T0 < TInf <= 2·T0.
func (p DelayedParams) Validate() error {
	if !(p.T0 > 0) {
		return fmt.Errorf("core: delayed t0 must be positive, got %v", p.T0)
	}
	if !(p.T0 < p.TInf) {
		return fmt.Errorf("core: delayed requires t0 < t∞, got t0=%v t∞=%v", p.T0, p.TInf)
	}
	if p.TInf > 2*p.T0 {
		return fmt.Errorf("core: delayed requires t∞ <= 2·t0 (at most 2 copies), got t0=%v t∞=%v", p.T0, p.TInf)
	}
	return nil
}

// Ratio returns TInf/T0.
func (p DelayedParams) Ratio() float64 { return p.TInf / p.T0 }

// DelayedSurvival returns the exact survival function of the total
// latency J under the delayed strategy: P(J > t).
//
// With copies submitted at s_k = (k-1)·T0 while nothing runs, and copy
// k canceled at s_k + TInf, "no copy started by t" factorizes over the
// copies submitted by t:
//
//	P(J > t) = Π_k (1 - F̃R(min(t - s_k, t∞))),
//
// where copies whose window fully elapsed contribute the constant
// q = 1 - F̃R(t∞). Because TInf <= 2·T0, at most two factors are ever
// partial, so this costs O(1) per evaluation.
func DelayedSurvival(m Model, p DelayedParams, t float64) float64 {
	if t <= 0 {
		return 1
	}
	if t < p.T0 { // interval 0: one copy, q never needed
		return 1 - m.Ftilde(t)
	}
	return delayedSurvivalQ(m, p, 1-m.Ftilde(p.TInf), t)
}

// delayedSurvivalQ is DelayedSurvival with the per-round survival
// probability q = 1 - F̃R(t∞) precomputed — the inner loops of
// ExpectDelayed and nParallelExpectedCells evaluate the survival
// function thousands of times per (t0, t∞) pair and q is constant
// across all of them. Integer fast exponentiation replaces
// math.Pow(q, j).
func delayedSurvivalQ(m Model, p DelayedParams, q, t float64) float64 {
	if t <= 0 {
		return 1
	}
	jf := math.Floor(t / p.T0) // interval index: t ∈ [j·T0, (j+1)·T0)
	if jf == 0 {
		return 1 - m.Ftilde(t)
	}
	u := t - jf*p.T0
	if u < p.TInf-p.T0 {
		// Copies j and j+1 are both racing.
		return powFloorExp(q, jf-1) *
			(1 - m.Ftilde(u+p.T0)) * (1 - m.Ftilde(u))
	}
	// Copy j was canceled at (j-1)·T0 + TInf; only copy j+1 races.
	return powFloorExp(q, jf) * (1 - m.Ftilde(u))
}

// delayedMoments returns E[J] and E[J²] of the delayed strategy in
// closed form. Substituting u = t - j·T0 in the survival integral
// makes every interval integral independent of j, so the series in j
// is geometric:
//
//	E[J]  = IA + (C + q·D)/(1-q)
//	E[J²] = 2·[IA2 + (Cu + q·Du)/(1-q) + T0·(C + q·D)/(1-q)²]
//
// with IA = ∫₀^{T0}(1-F̃), C = ∫₀^{TInf-T0}(1-F̃(u+T0))(1-F̃(u))du,
// D = ∫_{TInf-T0}^{T0}(1-F̃), and IA2, Cu, Du their u-weighted twins.
// Every integral is exact for the empirical model.
func delayedMoments(m Model, p DelayedParams) (ej, ej2 float64) {
	q := 1 - m.Ftilde(p.TInf)
	if q >= 1 {
		return math.Inf(1), math.Inf(1)
	}
	t0, w := p.T0, p.TInf-p.T0

	ia := m.IntOneMinusFPow(t0, 1)
	ia2 := m.IntUOneMinusFPow(t0, 1)
	var c, cu float64
	if pb, ok := m.(ProdBothIntegrals); ok {
		c, cu = pb.IntProdBothOneMinusF(w, t0) // both cross terms, one walk
	} else {
		c = m.IntProdOneMinusF(w, t0)
		cu = m.IntUProdOneMinusF(w, t0)
	}
	d := ia - m.IntOneMinusFPow(w, 1)
	du := ia2 - m.IntUOneMinusFPow(w, 1)

	ej = ia + (c+q*d)/(1-q)
	ej2 = 2 * (ia2 + (cu+q*du)/(1-q) + t0*(c+q*d)/((1-q)*(1-q)))
	return ej, ej2
}

// ejDelayedRow evaluates EJDelayed across one row of the (t0, ratio)
// surface — fixed t0, ascending ratio grid — through the batch
// kernels: the per-row integrals at t0 are computed once, the
// w = t∞ - t0 integrals are answered by one prefix-kernel sweep, and
// both cross terms come from a single merged walk sharing the row's
// shift = t0. Values are identical to per-cell EJDelayed calls.
func ejDelayedRow(m Model, bi BatchIntegrals, t0 float64, ratios []float64) []float64 {
	out := make([]float64, len(ratios))
	if !(t0 > 0) {
		return infSlice(len(ratios))
	}
	ws := make([]float64, len(ratios))
	ascending := true
	for i, r := range ratios {
		// Same expression as the scalar path: w = TInf - T0 with
		// TInf = ratio·t0.
		ws[i] = r*t0 - t0
		if i > 0 && ws[i] < ws[i-1] {
			ascending = false
		}
	}
	if !ascending {
		// Float rounding produced a non-monotone w grid (ratios are
		// ascending, so this is a rounding edge case): keep exactness
		// by evaluating cell by cell.
		for i, r := range ratios {
			out[i] = EJDelayed(m, DelayedParams{T0: t0, TInf: r * t0})
		}
		return out
	}
	ia := m.IntOneMinusFPow(t0, 1)
	iw := bi.IntOneMinusFPowBatch(ws, 1)
	cs, _ := bi.IntProdBothBatch(ws, t0)
	for i, r := range ratios {
		p := DelayedParams{T0: t0, TInf: r * t0}
		if p.Validate() != nil {
			out[i] = math.Inf(1)
			continue
		}
		q := 1 - m.Ftilde(p.TInf)
		if q >= 1 {
			out[i] = math.Inf(1)
			continue
		}
		d := ia - iw[i]
		out[i] = ia + (cs[i]+q*d)/(1-q)
	}
	return out
}

// ejDelayedRatioBatch evaluates EJDelayed along an ascending t0 grid
// with t∞ = ratio·t0 fixed (the §6.2 per-ratio scan). The shift of the
// cross term varies per point, so only the pow-integrals batch; each
// cross term is one windowed walk over [0, w] — already proportional
// to the window, not the support. Values are identical to per-point
// EJDelayed calls.
func ejDelayedRatioBatch(m Model, bi BatchIntegrals, ratio float64, t0s []float64) []float64 {
	out := make([]float64, len(t0s))
	ws := make([]float64, len(t0s))
	for i, t0 := range t0s {
		ws[i] = ratio*t0 - t0
	}
	ia := bi.IntOneMinusFPowBatch(t0s, 1)
	iw := bi.IntOneMinusFPowBatch(ws, 1)
	pb, hasProdBoth := m.(ProdBothIntegrals)
	for i, t0 := range t0s {
		p := DelayedParams{T0: t0, TInf: ratio * t0}
		if p.Validate() != nil {
			out[i] = math.Inf(1)
			continue
		}
		q := 1 - m.Ftilde(p.TInf)
		if q >= 1 {
			out[i] = math.Inf(1)
			continue
		}
		var c float64
		if hasProdBoth {
			c, _ = pb.IntProdBothOneMinusF(ws[i], t0)
		} else {
			c = m.IntProdOneMinusF(ws[i], t0)
		}
		d := ia[i] - iw[i]
		out[i] = ia[i] + (c+q*d)/(1-q)
	}
	return out
}

// EJDelayed returns the exact expected total latency of the delayed
// strategy (the quantity the paper's Eq. 5 approximates; see
// EJDelayedPaper for the paper's own formula). It returns +Inf for
// invalid parameters or a timeout with no success probability.
func EJDelayed(m Model, p DelayedParams) float64 {
	if p.Validate() != nil {
		return math.Inf(1)
	}
	ej, _ := delayedMoments(m, p)
	return ej
}

// SigmaDelayed returns the exact standard deviation of the total
// latency of the delayed strategy.
func SigmaDelayed(m Model, p DelayedParams) float64 {
	if p.Validate() != nil {
		return math.Inf(1)
	}
	ej, ej2 := delayedMoments(m, p)
	if math.IsInf(ej, 1) {
		return math.Inf(1)
	}
	v := ej2 - ej*ej
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// NParallelGivenLatency returns N‖(l): the time-averaged number of
// copies in the system over a run whose total latency was l (paper
// §6.1). The case split follows the interval structure: after the
// first T0 with one copy, each full T0-period contributes TInf of
// copy-seconds (two copies while the older one lives, one after its
// cancellation), plus the partial last period.
func NParallelGivenLatency(l float64, p DelayedParams) float64 {
	if l <= 0 {
		return 1
	}
	n := int(math.Floor(l / p.T0))
	if n == 0 {
		return 1
	}
	t0, tInf := p.T0, p.TInf
	fn := float64(n)
	if l < (fn-1)*t0+tInf {
		// Interval I0: the older copy is still alive at l.
		return (t0 + (fn-1)*tInf + 2*(l-fn*t0)) / l
	}
	// Interval I1: the older copy was canceled at (n-1)·T0 + TInf.
	return (t0 + (fn-1)*tInf + 2*(tInf-t0) + (l - (fn-1)*t0 - tInf)) / l
}

// delayedExpectCells is the number of integration cells per T0-period
// used by ExpectDelayed; the cell *masses* are exact (survival
// differences), only the variation of g within a cell is approximated.
const delayedExpectCells = 1024

// ExpectDelayed returns E[g(J)] for the delayed strategy by exact-mass
// Stieltjes summation over the survival function: each cell of width
// T0/delayedExpectCells carries probability G(a)-G(b), evaluated at
// the cell midpoint. The series over periods stops when the residual
// tail mass drops below 1e-12.
func ExpectDelayed(m Model, p DelayedParams, g func(l float64) float64) float64 {
	if err := p.Validate(); err != nil {
		return math.NaN()
	}
	q := 1 - m.Ftilde(p.TInf)
	if q >= 1 {
		return math.NaN()
	}
	sum := 0.0
	prevG := 1.0
	h := p.T0 / delayedExpectCells
	for j := 0; ; j++ {
		base := float64(j) * p.T0
		for i := 1; i <= delayedExpectCells; i++ {
			t := base + float64(i)*h
			gt := delayedSurvivalQ(m, p, q, t)
			mass := prevG - gt
			if mass > 0 {
				sum += mass * g(t-h/2)
			}
			prevG = gt
		}
		if prevG < 1e-12 {
			break
		}
		if j > 10000 {
			// q extremely close to 1: accept the truncation.
			break
		}
	}
	return sum
}

// NParallelExpected returns E[N‖(J)]: the average number of parallel
// copies the delayed strategy keeps in the system, to be compared with
// b for the multiple-submission strategy.
func NParallelExpected(m Model, p DelayedParams) float64 {
	return ExpectDelayed(m, p, func(l float64) float64 {
		return NParallelGivenLatency(l, p)
	})
}

// DelayedEvaluate bundles the exact EJ, σJ and E[N‖] of the delayed
// strategy at the given parameters.
func DelayedEvaluate(m Model, p DelayedParams) (Evaluation, error) {
	if err := p.Validate(); err != nil {
		return Evaluation{}, err
	}
	ej, ej2 := delayedMoments(m, p)
	if math.IsInf(ej, 1) {
		return Evaluation{}, fmt.Errorf("core: delayed strategy diverges at t0=%v t∞=%v (no success mass)", p.T0, p.TInf)
	}
	v := ej2 - ej*ej
	if v < 0 {
		v = 0
	}
	return Evaluation{
		EJ:       ej,
		Sigma:    math.Sqrt(v),
		Parallel: NParallelExpected(m, p),
	}, nil
}

// EJDelayedPaper evaluates the expected latency using the paper's own
// interval formulas for FJ (§6, the pre-derivation CDF definitions
// feeding Eq. 5), integrated as EJ = ∫(1-FJ).
//
// Note: the paper's I0-interval formula P(J<t) = P(J<n·t0) +
// q^{n-1}·(A + B - A·B) with A = F̃(t-(n-1)t0) - F̃(t0), B = F̃(t-n·t0)
// over-counts runs where copy n started before t0 — in those runs copy
// n+1 is never submitted, yet B credits it. The exact union is
// A + B·(1-F̃(t-(n-1)t0)). The paper's FJ therefore sits slightly
// above the exact law and EJDelayedPaper slightly below EJDelayed;
// both are exposed so the gap can be measured (see EXPERIMENTS.md).
func EJDelayedPaper(m Model, p DelayedParams) float64 {
	if p.Validate() != nil {
		return math.Inf(1)
	}
	q := 1 - m.Ftilde(p.TInf)
	if q >= 1 {
		return math.Inf(1)
	}
	t0, tInf := p.T0, p.TInf
	ft0 := m.Ftilde(t0)

	// EJ = ∫ (1-FJ). First interval [0, t0): FJ = F̃.
	ej := m.IntOneMinusFPow(t0, 1)

	// Walk intervals I0_n, I1_n keeping the running base FJ value, on
	// a uniform grid (trapezoid); the paper's formulas are not exactly
	// integrable over a step ECDF because of the A·B product term.
	const cells = 2048
	base := ft0 // FJ at n·t0 for n=1
	for n := 1; ; n++ {
		fn := float64(n)
		qn1 := stats.PowInt(q, n-1)

		// I0_n = [n·t0, (n-1)·t0 + tInf].
		a0, b0 := fn*t0, (fn-1)*t0+tInf
		h := (b0 - a0) / cells
		prev := paperI0(m, base, qn1, ft0, a0, fn, t0)
		for i := 1; i <= cells; i++ {
			t := a0 + float64(i)*h
			cur := paperI0(m, base, qn1, ft0, t, fn, t0)
			ej += h * (clamp01(1-prev) + clamp01(1-cur)) / 2
			prev = cur
		}
		endI0 := paperI0(m, base, qn1, ft0, b0, fn, t0)

		// I1_n = [(n-1)·t0 + tInf, (n+1)·t0].
		a1, b1 := b0, (fn+1)*t0
		qn := qn1 * q
		h = (b1 - a1) / cells
		prev = endI0 + qn*m.Ftilde(a1-fn*t0)
		for i := 1; i <= cells; i++ {
			t := a1 + float64(i)*h
			cur := endI0 + qn*m.Ftilde(t-fn*t0)
			ej += h * (clamp01(1-prev) + clamp01(1-cur)) / 2
			prev = cur
		}
		base = endI0 + qn*ft0 // FJ at (n+1)·t0

		if 1-base < 1e-12 || qn < 1e-14 {
			// Residual tail: bound by geometric decay q per period of
			// length t0.
			if q < 1 {
				ej += clamp01(1-base) * t0 / (1 - q)
			}
			break
		}
		if n > 10000 {
			break
		}
	}
	return ej
}

// paperI0 evaluates the paper's I0-interval CDF formula at t.
func paperI0(m Model, base, qn1, ft0, t, fn, t0 float64) float64 {
	a := m.Ftilde(t-(fn-1)*t0) - ft0
	b := m.Ftilde(t - fn*t0)
	return base + qn1*(a+b-a*b)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// OptimizeDelayed minimizes the exact EJ over (t0, t∞) subject to
// t0 < t∞ <= 2·t0 (paper Figure 5's surface minimum). The search is
// over the rectangle (t0, ratio) to keep the feasible set box-shaped.
func OptimizeDelayed(m Model) (DelayedParams, Evaluation) {
	p, ev, _ := OptimizeDelayedCtx(context.Background(), m, 1)
	return p, ev
}

// OptimizeDelayedCtx is OptimizeDelayed with cancellation (a done ctx
// short-circuits the remaining surface evaluations and returns the
// context's error) and a worker count for the coarse surface scan
// (<= 0 means all cores; results are identical for every count).
func OptimizeDelayedCtx(ctx context.Context, m Model, workers int) (DelayedParams, Evaluation, error) {
	ub := m.UpperBound()
	obj := func(t0, ratio float64) float64 {
		if ctx.Err() != nil {
			return math.Inf(1)
		}
		return EJDelayed(m, DelayedParams{T0: t0, TInf: ratio * t0})
	}
	var r optimize.Result2D
	if bi, ok := m.(BatchIntegrals); ok {
		// Row-sweep mode: one kernel sweep per grid row (fixed t0).
		frow := func(t0 float64, ratios []float64) []float64 {
			if ctx.Err() != nil {
				return infSlice(len(ratios))
			}
			return ejDelayedRow(m, bi, t0, ratios)
		}
		r = optimize.MinimizeRobust2DSweep(obj, frow, ub*1e-3, ub/2, 1.0005, 2.0, workers)
	} else {
		r = optimize.MinimizeRobust2DPar(obj, ub*1e-3, ub/2, 1.0005, 2.0, workers)
	}
	if err := ctx.Err(); err != nil {
		return DelayedParams{}, Evaluation{}, err
	}
	p := DelayedParams{T0: r.X, TInf: r.X * r.Y}
	ev, err := DelayedEvaluate(m, p)
	if err != nil {
		// The optimizer landed on an infeasible edge; fall back to a
		// safely interior point.
		p = DelayedParams{T0: ub / 20, TInf: ub / 20 * 1.4}
		ev, _ = DelayedEvaluate(m, p)
	}
	return p, ev, nil
}

// OptimizeDelayedRatio minimizes EJ over t0 with t∞ = ratio·t0 fixed
// (the paper's §6.2 per-ratio optimization, Table 3). Out-of-range
// ratios panic; a NaN ratio yields a +Inf evaluation so it can never
// win an EJ comparison.
func OptimizeDelayedRatio(m Model, ratio float64) (DelayedParams, Evaluation) {
	if ratio <= 1 || ratio > 2 {
		panic(fmt.Sprintf("core: delayed ratio must be in (1, 2], got %v", ratio))
	}
	p, ev, err := OptimizeDelayedRatioCtx(context.Background(), m, ratio, 1)
	if err != nil {
		// Only reachable for a NaN ratio, which slips the panic guard
		// above; keep the pre-Ctx convention of an infeasible result.
		return p, Evaluation{EJ: math.Inf(1), Sigma: math.Inf(1), Parallel: 1}
	}
	return p, ev
}

// OptimizeDelayedRatioCtx is OptimizeDelayedRatio with validation,
// cancellation and a worker count: an out-of-range ratio is an error,
// not a panic, a done ctx aborts the scan, and the grid rounds fan
// across up to `workers` goroutines (<= 0 means all cores; results are
// identical for every count).
func OptimizeDelayedRatioCtx(ctx context.Context, m Model, ratio float64, workers int) (DelayedParams, Evaluation, error) {
	if !(ratio > 1 && ratio <= 2) {
		return DelayedParams{}, Evaluation{}, fmt.Errorf("core: delayed ratio must be in (1, 2], got %v", ratio)
	}
	ub := m.UpperBound()
	var r optimize.Result1D
	if bi, ok := m.(BatchIntegrals); ok {
		fb := func(t0s []float64) []float64 {
			if ctx.Err() != nil {
				return infSlice(len(t0s))
			}
			return ejDelayedRatioBatch(m, bi, ratio, t0s)
		}
		r = optimize.GridScan1DSweep(fb, ub*1e-3, ub/2, 400, 4, workers)
	} else {
		obj := func(t0 float64) float64 {
			if ctx.Err() != nil {
				return math.Inf(1)
			}
			return EJDelayed(m, DelayedParams{T0: t0, TInf: ratio * t0})
		}
		r = optimize.GridScan1DPar(obj, ub*1e-3, ub/2, 400, 4, workers)
	}
	if err := ctx.Err(); err != nil {
		return DelayedParams{}, Evaluation{}, err
	}
	p := DelayedParams{T0: r.X, TInf: ratio * r.X}
	ev, err := DelayedEvaluate(m, p)
	if err != nil {
		return p, Evaluation{EJ: math.Inf(1), Sigma: math.Inf(1), Parallel: 1}, nil
	}
	return p, ev, nil
}
