package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// pointMassModel is a degenerate latency law with all mass at zero:
// every job starts instantly. It is the regression fixture for the
// J = 0 division in the delayed simulator.
type pointMassModel struct{}

func (pointMassModel) Ftilde(t float64) float64 {
	if t > 0 {
		return 1
	}
	return 0
}
func (pointMassModel) Rho() float64                              { return 0 }
func (pointMassModel) UpperBound() float64                       { return 1000 }
func (pointMassModel) IntOneMinusFPow(T float64, b int) float64  { return 0 }
func (pointMassModel) IntUOneMinusFPow(T float64, b int) float64 { return 0 }
func (pointMassModel) IntProdOneMinusF(T, s float64) float64     { return 0 }
func (pointMassModel) IntUProdOneMinusF(T, s float64) float64    { return 0 }
func (pointMassModel) Sample(rng *rand.Rand) float64             { return 0 }

// TestSimulateDelayedZeroLatency is the regression test for the
// copySeconds/J division: with a point mass at zero every run has
// J = 0, which used to produce NaN MeanParallel poisoning the whole
// SimResult. The convention is N‖(0) = 1 (one copy, instantly
// started), matching NParallelGivenLatency.
func TestSimulateDelayedZeroLatency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r, err := SimulateDelayed(pointMassModel{}, DelayedParams{T0: 100, TInf: 150}, 5000, rng)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"EJ": r.EJ, "Sigma": r.Sigma, "StdErr": r.StdErr,
		"MeanSubmissions": r.MeanSubmissions, "MeanParallel": r.MeanParallel,
	} {
		if math.IsNaN(v) {
			t.Fatalf("%s is NaN: %+v", name, r)
		}
	}
	if r.EJ != 0 || r.Sigma != 0 {
		t.Fatalf("point mass at 0 must give J ≡ 0, got %+v", r)
	}
	if r.MeanParallel != 1 {
		t.Fatalf("MeanParallel = %v, want 1 (one instantly-started copy)", r.MeanParallel)
	}
	if r.MeanSubmissions != 1 {
		t.Fatalf("MeanSubmissions = %v, want 1", r.MeanSubmissions)
	}
}

// bigMeanModel samples 1e9 ± 1 with equal probability: mean 1e9,
// standard deviation exactly 1. The naive sum²/n − mean² variance
// cancels catastrophically at this magnitude (double spacing at 1e18
// is 128) and used to report σ = 0.
type bigMeanModel struct{}

func (bigMeanModel) Ftilde(t float64) float64 {
	switch {
	case t <= 1e9-1:
		return 0
	case t <= 1e9+1:
		return 0.5
	default:
		return 1
	}
}
func (bigMeanModel) Rho() float64                              { return 0 }
func (bigMeanModel) UpperBound() float64                       { return 2e9 }
func (bigMeanModel) IntOneMinusFPow(T float64, b int) float64  { return 0 }
func (bigMeanModel) IntUOneMinusFPow(T float64, b int) float64 { return 0 }
func (bigMeanModel) IntProdOneMinusF(T, s float64) float64     { return 0 }
func (bigMeanModel) IntUProdOneMinusF(T, s float64) float64    { return 0 }
func (bigMeanModel) Sample(rng *rand.Rand) float64 {
	if rng.Float64() < 0.5 {
		return 1e9 - 1
	}
	return 1e9 + 1
}

// TestSimulateSigmaLargeMean is the regression test for the moment
// accumulation: Welford keeps σ ≈ 1 where the old sum-of-squares
// formula clamped it to 0.
func TestSimulateSigmaLargeMean(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	r, err := SimulateSingle(bigMeanModel{}, 1.5e9, 40000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.EJ-1e9) > 1 {
		t.Fatalf("EJ = %v, want ~1e9", r.EJ)
	}
	if r.Sigma < 0.99 || r.Sigma > 1.01 {
		t.Fatalf("Sigma = %v, want ~1 (catastrophic cancellation regression)", r.Sigma)
	}
	if want := r.Sigma / math.Sqrt(40000); math.Abs(r.StdErr-want) > 1e-9 {
		t.Fatalf("StdErr = %v, want %v", r.StdErr, want)
	}
}

// TestMomentsWelford checks the accumulator against exact closed forms
// and the shard merge against one-pass accumulation.
func TestMomentsWelford(t *testing.T) {
	var a moments
	for i := 0; i < 1000; i++ {
		a.add(1e12 + float64(i%2)) // mean 1e12 + 0.5, variance 0.25
	}
	if math.Abs(a.mean-(1e12+0.5)) > 1e-6 {
		t.Fatalf("mean = %v", a.mean)
	}
	if v := a.variance(); math.Abs(v-0.25) > 1e-9 {
		t.Fatalf("variance = %v, want 0.25", v)
	}

	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 100
	}
	var whole moments
	for _, x := range xs {
		whole.add(x)
	}
	// Merge uneven shards in order; must agree with one-pass to fp
	// noise.
	var merged moments
	for lo := 0; lo < len(xs); {
		hi := lo + 1 + lo%7*100
		if hi > len(xs) {
			hi = len(xs)
		}
		var sh moments
		for _, x := range xs[lo:hi] {
			sh.add(x)
		}
		merged.merge(sh)
		lo = hi
	}
	if merged.n != whole.n {
		t.Fatalf("merged n = %d, want %d", merged.n, whole.n)
	}
	if math.Abs(merged.mean-whole.mean) > 1e-9*math.Abs(whole.mean) {
		t.Fatalf("merged mean %v vs one-pass %v", merged.mean, whole.mean)
	}
	if math.Abs(merged.variance()-whole.variance()) > 1e-9*whole.variance() {
		t.Fatalf("merged variance %v vs one-pass %v", merged.variance(), whole.variance())
	}
}

// TestSimulateDeterministicAcrossWorkers pins the sharding contract:
// for a fixed seed, every simulator returns bit-identical results no
// matter how many workers execute the shards (the decomposition and
// merge order depend only on the run count).
func TestSimulateDeterministicAcrossWorkers(t *testing.T) {
	m := testEmpirical(t)
	const runs = 3 * mcShardRuns / 2 * 4 // several shards, ragged tail
	ctx := context.Background()
	type simCase struct {
		name string
		run  func(workers int) (SimResult, error)
	}
	cases := []simCase{
		{"single", func(w int) (SimResult, error) {
			return SimulateSingleCtx(ctx, m, 500, runs, rand.New(rand.NewSource(42)), w)
		}},
		{"multiple", func(w int) (SimResult, error) {
			return SimulateMultipleCtx(ctx, m, 3, 600, runs, rand.New(rand.NewSource(42)), w)
		}},
		{"delayed", func(w int) (SimResult, error) {
			return SimulateDelayedCtx(ctx, m, DelayedParams{T0: 339, TInf: 485}, runs, rand.New(rand.NewSource(42)), w)
		}},
	}
	for _, c := range cases {
		want, err := c.run(1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 5, 8} {
			got, err := c.run(workers)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s: workers=%d gave %+v, want %+v (workers=1)", c.name, workers, got, want)
			}
		}
	}
}

// TestSimulateShardedCancellation checks that a pre-cancelled context
// aborts the sharded simulators on both the sequential and the pooled
// path.
func TestSimulateShardedCancellation(t *testing.T) {
	m := testEmpirical(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		if _, err := SimulateSingleCtx(ctx, m, 500, 8*mcShardRuns, rand.New(rand.NewSource(1)), workers); err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}
