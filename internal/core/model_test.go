package core

import (
	"math"
	"math/rand"
	"testing"

	"gridstrat/internal/stats"
	"gridstrat/internal/trace"
)

// testEmpirical builds a moderate-size empirical model from the
// calibrated 2006-IX synthetic dataset.
func testEmpirical(t testing.TB) *EmpiricalModel {
	t.Helper()
	spec, err := trace.LookupDataset("2006-IX")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ModelFromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// testParametric builds an analytic heavy-tailed model: shifted
// lognormal latencies with 5% outliers.
func testParametric(t testing.TB) *ParametricModel {
	t.Helper()
	d := stats.NewShifted(stats.LogNormalFromMoments(450, 800), 120)
	m, err := NewParametricModel(stats.NewTruncatedAbove(d, 10000), 0.05, 10000)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModelConstructorsValidate(t *testing.T) {
	e := stats.MustECDF([]float64{1, 2, 3})
	if _, err := NewEmpiricalModel(nil, 0.1, 100); err == nil {
		t.Fatal("nil ECDF should fail")
	}
	if _, err := NewEmpiricalModel(e, -0.1, 100); err == nil {
		t.Fatal("negative rho should fail")
	}
	if _, err := NewEmpiricalModel(e, 1.0, 100); err == nil {
		t.Fatal("rho=1 should fail")
	}
	if _, err := NewEmpiricalModel(e, 0.1, 0); err == nil {
		t.Fatal("zero timeout should fail")
	}
	if _, err := NewParametricModel(nil, 0.1, 100); err == nil {
		t.Fatal("nil distribution should fail")
	}
	if _, err := NewParametricModel(stats.NewExponential(1), 2, 100); err == nil {
		t.Fatal("rho=2 should fail")
	}
}

func TestModelFromTraceErrors(t *testing.T) {
	allOut := &trace.Trace{Name: "dead", Timeout: 100, Records: []trace.ProbeRecord{
		{ID: 0, Latency: 100, Status: trace.StatusOutlier},
	}}
	if _, err := ModelFromTrace(allOut); err == nil {
		t.Fatal("trace with no completions should fail")
	}
}

func TestFtildeShape(t *testing.T) {
	m := testEmpirical(t)
	if m.Ftilde(-1) != 0 {
		t.Fatal("F̃ below support should be 0")
	}
	top := m.Ftilde(m.UpperBound())
	if math.Abs(top-(1-m.Rho())) > 1e-12 {
		t.Fatalf("F̃ saturates at %v, want 1-ρ = %v", top, 1-m.Rho())
	}
	prev := -1.0
	for x := 0.0; x <= m.UpperBound(); x += 97.3 {
		v := m.Ftilde(x)
		if v < prev || v < 0 || v > 1 {
			t.Fatalf("F̃ not monotone/bounded at %v", x)
		}
		prev = v
	}
}

func TestEmpiricalIntegralsMatchParametricLimit(t *testing.T) {
	// A huge sample from the parametric model must reproduce its
	// integrals to sampling accuracy.
	pm := testParametric(t)
	rng := rand.New(rand.NewSource(42))
	sample := make([]float64, 120000)
	for i := range sample {
		sample[i] = pm.Distribution().Rand(rng)
	}
	e := stats.MustECDF(sample)
	em, err := NewEmpiricalModel(e, pm.Rho(), pm.UpperBound())
	if err != nil {
		t.Fatal(err)
	}
	for _, T := range []float64{300, 600, 1500} {
		for _, b := range []int{1, 3} {
			got := em.IntOneMinusFPow(T, b)
			want := pm.IntOneMinusFPow(T, b)
			if math.Abs(got-want) > 0.02*want {
				t.Errorf("∫(1-F̃)^%d to %v: empirical %v vs parametric %v", b, T, got, want)
			}
		}
		got := em.IntProdOneMinusF(T, 200)
		want := pm.IntProdOneMinusF(T, 200)
		if math.Abs(got-want) > 0.02*want {
			t.Errorf("∫prod to %v: empirical %v vs parametric %v", T, got, want)
		}
		gotU := em.IntUProdOneMinusF(T, 200)
		wantU := pm.IntUProdOneMinusF(T, 200)
		if math.Abs(gotU-wantU) > 0.03*wantU {
			t.Errorf("∫u·prod to %v: empirical %v vs parametric %v", T, gotU, wantU)
		}
	}
}

func TestEJSingleExponentialClosedForm(t *testing.T) {
	// For exponential latencies with rate λ and outlier ratio ρ, Eq. 1
	// has the closed form
	//   EJ(t∞) = [ t∞·ρ̄q + (1-ρ̄)t∞ + ρ̄(1-e^{-λt∞})/λ ... ]
	// computed here directly by quadrature-free algebra:
	//   ∫₀^T (1-F̃) = ∫₀^T (ρ + (1-ρ)e^{-λu}) du = ρT + (1-ρ)(1-e^{-λT})/λ.
	lambda := 1.0 / 500
	rho := 0.1
	m, err := NewParametricModel(stats.NewExponential(lambda), rho, 20000)
	if err != nil {
		t.Fatal(err)
	}
	for _, T := range []float64{250, 800, 3000} {
		integral := rho*T + (1-rho)*(1-math.Exp(-lambda*T))/lambda
		ftilde := (1 - rho) * (1 - math.Exp(-lambda*T))
		want := integral / ftilde
		got := EJSingle(m, T)
		if math.Abs(got-want) > 1e-6*want {
			t.Errorf("EJ(%v) = %v, want %v", T, got, want)
		}
	}
}

func TestEJSingleNoOutliersInfiniteTimeoutIsMean(t *testing.T) {
	// With ρ=0 and t∞ → ∞, every job eventually runs: EJ = E[R].
	d := stats.NewGamma(2, 0.004) // mean 500
	m, err := NewParametricModel(d, 0, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	got := EJSingle(m, 1e6)
	if math.Abs(got-d.Mean()) > 0.001*d.Mean() {
		t.Fatalf("EJ(∞) = %v, want mean %v", got, d.Mean())
	}
	// And σJ approaches σR.
	gotS := SigmaSingle(m, 1e6)
	if math.Abs(gotS-stats.Std(d)) > 0.005*stats.Std(d) {
		t.Fatalf("σJ(∞) = %v, want σR %v", gotS, stats.Std(d))
	}
}

func TestEJMultipleReducesToSingle(t *testing.T) {
	m := testEmpirical(t)
	for _, T := range []float64{200, 500, 1500} {
		if EJMultiple(m, 1, T) != EJSingle(m, T) {
			t.Fatalf("b=1 does not reduce to single at %v", T)
		}
		if SigmaMultiple(m, 1, T) != SigmaSingle(m, T) {
			t.Fatalf("σ b=1 mismatch at %v", T)
		}
	}
}

func TestEJMultipleMonotoneInB(t *testing.T) {
	m := testEmpirical(t)
	// At any fixed timeout, more copies can only help.
	for _, T := range []float64{300, 600, 1200} {
		prev := math.Inf(1)
		for b := 1; b <= 12; b++ {
			ej := EJMultiple(m, b, T)
			if ej > prev+1e-9 {
				t.Fatalf("EJ(b=%d, t∞=%v) = %v rose above %v", b, T, ej, prev)
			}
			prev = ej
		}
	}
	// And the optimized EJ is monotone too, with shrinking σ.
	prevEJ, prevSigma := math.Inf(1), math.Inf(1)
	for b := 1; b <= 10; b++ {
		_, ev := OptimizeMultiple(m, b)
		if ev.EJ > prevEJ+1e-9 {
			t.Fatalf("optimal EJ not monotone at b=%d: %v > %v", b, ev.EJ, prevEJ)
		}
		if b >= 2 && ev.Sigma > prevSigma+1e-9 {
			t.Fatalf("optimal σJ not shrinking at b=%d: %v > %v", b, ev.Sigma, prevSigma)
		}
		prevEJ, prevSigma = ev.EJ, ev.Sigma
	}
}

func TestEJInvalidInputs(t *testing.T) {
	m := testEmpirical(t)
	if !math.IsInf(EJSingle(m, 0), 1) || !math.IsInf(EJSingle(m, -10), 1) {
		t.Fatal("non-positive timeout should give +Inf")
	}
	// Timeout below the smallest latency: no success probability.
	if !math.IsInf(EJSingle(m, 1e-9), 1) {
		t.Fatal("timeout below support should give +Inf")
	}
	if !math.IsInf(SigmaMultiple(m, 3, 0), 1) {
		t.Fatal("σ at zero timeout should be +Inf")
	}
	if !math.IsInf(EJMultiple(m, 0, 100), 1) {
		t.Fatal("b < 1 should give +Inf")
	}
	if !math.IsInf(SigmaMultiple(m, -1, 100), 1) {
		t.Fatal("b < 1 should give +Inf σ")
	}
	if MultipleCDF(m, 0, 100) != nil {
		t.Fatal("b < 1 should give a nil CDF")
	}
	mustPanicCore(t, func() { MultipleCurve(m, 2, -1, 10) })
	mustPanicCore(t, func() { MultipleCurve(m, 2, 100, 1) })
}

func TestMultipleCurveShape(t *testing.T) {
	m := testEmpirical(t)
	ts, ej := MultipleCurve(m, 3, 2000, 50)
	if len(ts) != 50 || len(ej) != 50 {
		t.Fatal("curve length mismatch")
	}
	// The curve must dip below its right endpoint somewhere (a finite
	// optimal timeout exists for heavy-tailed latencies).
	min := math.Inf(1)
	for _, v := range ej {
		if v < min {
			min = v
		}
	}
	if !(min < ej[len(ej)-1]) {
		t.Fatal("no interior minimum found on EJ curve")
	}
}

func TestSingleMCMatchesAnalytic(t *testing.T) {
	m := testEmpirical(t)
	rng := rand.New(rand.NewSource(7))
	tInf := 500.0
	want := EJSingle(m, tInf)
	sim, err := SimulateSingle(m, tInf, 150000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sim.EJ-want) > 5*sim.StdErr {
		t.Fatalf("MC EJ %v ± %v vs analytic %v", sim.EJ, sim.StdErr, want)
	}
	wantSigma := SigmaSingle(m, tInf)
	if math.Abs(sim.Sigma-wantSigma) > 0.03*wantSigma {
		t.Fatalf("MC σ %v vs analytic %v", sim.Sigma, wantSigma)
	}
	// Expected submissions per task is 1/F̃(t∞) (geometric).
	wantSubs := 1 / m.Ftilde(tInf)
	if math.Abs(sim.MeanSubmissions-wantSubs) > 0.05*wantSubs {
		t.Fatalf("MC submissions %v vs analytic %v", sim.MeanSubmissions, wantSubs)
	}
}

func TestMultipleMCMatchesAnalytic(t *testing.T) {
	m := testParametric(t)
	rng := rand.New(rand.NewSource(8))
	for _, b := range []int{2, 5} {
		tInf := 700.0
		want := EJMultiple(m, b, tInf)
		sim, err := SimulateMultiple(m, b, tInf, 60000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sim.EJ-want) > 5*sim.StdErr {
			t.Fatalf("b=%d: MC EJ %v ± %v vs analytic %v", b, sim.EJ, sim.StdErr, want)
		}
		wantSigma := SigmaMultiple(m, b, tInf)
		if math.Abs(sim.Sigma-wantSigma) > 0.05*wantSigma {
			t.Fatalf("b=%d: MC σ %v vs analytic %v", b, sim.Sigma, wantSigma)
		}
	}
}

func TestSimulationInputErrors(t *testing.T) {
	m := testEmpirical(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := SimulateSingle(m, 500, 0, rng); err == nil {
		t.Fatal("zero runs should fail")
	}
	if _, err := SimulateSingle(m, 1e-9, 10, rng); err != ErrNoSuccessMass {
		t.Fatal("zero success mass should fail")
	}
	if _, err := SimulateMultiple(m, 2, 1e-9, 10, rng); err != ErrNoSuccessMass {
		t.Fatal("zero success mass should fail for multiple")
	}
	if _, err := SimulateDelayed(m, DelayedParams{T0: 100, TInf: 300}, 10, rng); err == nil {
		t.Fatal("invalid delayed params should fail")
	}
}

func TestSampleOutlierFraction(t *testing.T) {
	m := testEmpirical(t)
	rng := rand.New(rand.NewSource(3))
	const n = 200000
	inf := 0
	for i := 0; i < n; i++ {
		if math.IsInf(m.Sample(rng), 1) {
			inf++
		}
	}
	got := float64(inf) / n
	if math.Abs(got-m.Rho()) > 0.005 {
		t.Fatalf("sampled outlier fraction %v vs ρ=%v", got, m.Rho())
	}
}

func mustPanicCore(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
