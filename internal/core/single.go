package core

import (
	"context"
	"fmt"
	"math"

	"gridstrat/internal/optimize"
)

// Evaluation is the outcome of evaluating a strategy at fixed
// parameters: the expected total latency including resubmissions, its
// standard deviation, and the average number of parallel job copies
// the strategy keeps in the system.
type Evaluation struct {
	EJ       float64 // expectation of total latency J
	Sigma    float64 // standard deviation of J
	Parallel float64 // average number of parallel copies (N‖; b for multiple)
}

// EJSingle evaluates Eq. 1 of the paper: the expected total latency of
// the single-resubmission strategy with timeout tInf,
//
//	EJ(t∞) = (1/F̃R(t∞)) · ∫₀^t∞ (1 - F̃R(u)) du.
//
// It returns +Inf when F̃R(t∞) = 0 (the timeout gives no chance of
// success, so the expectation diverges).
func EJSingle(m Model, tInf float64) float64 {
	return EJMultiple(m, 1, tInf)
}

// SigmaSingle evaluates Eq. 2: the standard deviation of the total
// latency under single resubmission with timeout tInf.
func SigmaSingle(m Model, tInf float64) float64 {
	return SigmaMultiple(m, 1, tInf)
}

// OptimizeSingle minimizes EJ over the timeout t∞ and returns the
// optimum with the matching σJ. The scan covers (0, m.UpperBound()]
// with a multimodality-robust grid search refined to sub-second
// precision.
func OptimizeSingle(m Model) (tInf float64, ev Evaluation) {
	tInf, ev = OptimizeMultiple(m, 1)
	return tInf, ev
}

// OptimizeSingleCtx is OptimizeSingle with cancellation (the scan
// aborts between objective evaluations once ctx is done and the
// context's error is returned) and a worker count for the grid rounds
// (<= 0 means all cores; results are identical for every count).
func OptimizeSingleCtx(ctx context.Context, m Model, workers int) (float64, Evaluation, error) {
	return OptimizeMultipleCtx(ctx, m, 1, workers)
}

// timeoutLowerBracket returns a small positive lower bound for timeout
// searches: below the first latency quantile EJ is guaranteed +Inf.
func timeoutLowerBracket(m Model) float64 {
	lo := m.UpperBound() * 1e-4
	if lo <= 0 {
		lo = 1e-6
	}
	return lo
}

// optimizeTimeout scans EJ(t∞) for a fixed evaluator. Shared by the
// single and multiple strategies. When ctx is cancelled the remaining
// grid points short-circuit to +Inf and the context error is returned.
// Each refinement round's grid is evaluated by up to `workers`
// goroutines; the objective must therefore be safe for concurrent
// calls (all Model implementations are).
//
// When evalBatch is non-nil (a BatchIntegrals-capable model) the scan
// runs in sorted-query sweep mode: each refinement round's ascending
// grid is answered by one kernel sweep per worker chunk instead of a
// per-point evaluation. evalBatch must agree pointwise with eval, so
// the two modes return identical results; cancellation is checked once
// per chunk instead of once per point.
func optimizeTimeout(ctx context.Context, m Model, eval func(tInf float64) float64, evalBatch func(ts []float64) []float64, workers int) (optimize.Result1D, error) {
	lo := timeoutLowerBracket(m)
	hi := m.UpperBound()
	if !(lo < hi) {
		return optimize.Result1D{}, fmt.Errorf("core: degenerate timeout bracket [%v, %v]", lo, hi)
	}
	// EJ(t∞) profiles are piecewise smooth but can be multimodal in
	// b (Table 2 optima jump between basins), so grid-scan first.
	var r optimize.Result1D
	if evalBatch != nil {
		fb := func(ts []float64) []float64 {
			if ctx.Err() != nil {
				return infSlice(len(ts))
			}
			vs := evalBatch(ts)
			for i, v := range vs {
				if math.IsNaN(v) {
					vs[i] = math.Inf(1)
				}
			}
			return vs
		}
		r = optimize.GridScan1DSweep(fb, lo, hi, 400, 4, workers)
	} else {
		obj := func(t float64) float64 {
			if ctx.Err() != nil {
				return math.Inf(1)
			}
			v := eval(t)
			if math.IsNaN(v) {
				return math.Inf(1)
			}
			return v
		}
		r = optimize.GridScan1DPar(obj, lo, hi, 400, 4, workers)
	}
	if err := ctx.Err(); err != nil {
		return optimize.Result1D{}, err
	}
	return r, nil
}

// infSlice returns a +Inf-filled slice (the cancelled-scan sentinel).
func infSlice(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Inf(1)
	}
	return out
}
