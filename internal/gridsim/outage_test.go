package gridsim

import (
	"math"
	"testing"

	"gridstrat/internal/stats"
)

// quietGrid builds a deterministic single-purpose grid: constant WMS
// delay, effectively no background load, no faults.
func quietGrid(t *testing.T, sites, slots int, wms float64) *Grid {
	t.Helper()
	cfg := GridConfig{
		WMSLatency: func(float64) float64 { return wms },
		Seed:       7,
	}
	for i := 0; i < sites; i++ {
		cfg.Sites = append(cfg.Sites, SiteConfig{
			Name:                   "q",
			Slots:                  slots,
			BackgroundInterArrival: 1e9,
			BackgroundRuntime:      stats.NewShifted(stats.NewLogNormal(1, 0.1), 1),
		})
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g
}

func TestScheduleOutageValidation(t *testing.T) {
	g := quietGrid(t, 2, 1, 10)
	if err := g.ScheduleOutage(-1, 0, 10); err == nil {
		t.Error("negative site index accepted")
	}
	if err := g.ScheduleOutage(2, 0, 10); err == nil {
		t.Error("out-of-range site index accepted")
	}
	if err := g.ScheduleOutage(0, -5, 10); err == nil {
		t.Error("negative start accepted")
	}
	if err := g.ScheduleOutage(0, 0, 0); err == nil {
		t.Error("zero duration accepted")
	}
	if err := g.ScheduleOutage(0, 0, math.NaN()); err == nil {
		t.Error("NaN duration accepted")
	}
	if err := g.ScheduleGridOutage(100, 50); err != nil {
		t.Errorf("valid grid-wide outage rejected: %v", err)
	}
}

// TestOutageDuringQueue: a job that reaches the CE queue while the
// site is down must wait out the outage and start at recovery, not
// vanish and not start early.
func TestOutageDuringQueue(t *testing.T) {
	g := quietGrid(t, 1, 1, 10)
	if err := g.ScheduleOutage(0, 0, 500); err != nil {
		t.Fatal(err)
	}
	j := g.Submit(50) // arrives at the queue at t=10, mid-outage
	g.Engine.Run(200)
	if !g.SiteDown(0) {
		t.Fatal("site should be down at t=200")
	}
	if j.State != JobQueued {
		t.Fatalf("job state %v at t=200, want queued behind the outage", j.State)
	}
	g.Engine.Run(2000)
	if j.State != JobDone {
		t.Fatalf("job state %v after recovery, want done", j.State)
	}
	if j.Start < 500 || j.Start > 501 {
		t.Errorf("job started at %v, want at recovery (t=500)", j.Start)
	}
}

// TestOutageDuringRun: an outage beginning while a job occupies a slot
// does not kill the job — batch systems drain; only new starts are
// blocked.
func TestOutageDuringRun(t *testing.T) {
	g := quietGrid(t, 1, 1, 10)
	if err := g.ScheduleOutage(0, 100, 200); err != nil {
		t.Fatal(err)
	}
	running := g.Submit(1000) // starts at t=10, runs through the outage
	queued := (*Job)(nil)
	g.Engine.Schedule(150, func() { queued = g.Submit(50) }) // arrives mid-outage
	g.Engine.Run(250)
	if running.State != JobRunning {
		t.Fatalf("running job state %v mid-outage, want running", running.State)
	}
	g.Engine.Run(5000)
	if running.State != JobDone || math.Abs(running.Done-1010) > 1 {
		t.Errorf("running job: state %v done at %v, want done at ~1010", running.State, running.Done)
	}
	// The queued job waited for the slot, not just the outage: the
	// running job holds the only slot until 1010.
	if queued.State != JobDone {
		t.Fatalf("queued job state %v, want done", queued.State)
	}
	if queued.Start < 1010-1 {
		t.Errorf("queued job started at %v, want after the slot freed (~1010)", queued.Start)
	}
}

// TestOverlappingOutagesNest: two overlapping windows must keep the
// site down until the LAST one ends. With boolean down-tracking the
// inner window's recovery would wrongly re-open the site.
func TestOverlappingOutagesNest(t *testing.T) {
	g := quietGrid(t, 1, 1, 10)
	if err := g.ScheduleOutage(0, 100, 300); err != nil { // down 100..400
		t.Fatal(err)
	}
	if err := g.ScheduleOutage(0, 200, 100); err != nil { // down 200..300, nested
		t.Fatal(err)
	}
	g.Engine.Schedule(150, func() { g.Submit(50) })
	g.Engine.Run(320)
	if !g.SiteDown(0) {
		t.Fatal("site re-opened at t=320 after the nested window closed; outer window should hold it down until 400")
	}
	g.Engine.Run(450)
	if g.SiteDown(0) {
		t.Fatal("site still down at t=450")
	}
}

// TestRecoveryRedispatch: every job queued behind an outage is
// re-dispatched at recovery, in FIFO order, up to the slot count.
func TestRecoveryRedispatch(t *testing.T) {
	g := quietGrid(t, 1, 2, 10)
	if err := g.ScheduleOutage(0, 0, 500); err != nil {
		t.Fatal(err)
	}
	var jobs []*Job
	for i := 0; i < 3; i++ {
		jobs = append(jobs, g.Submit(100))
	}
	g.Engine.Run(400)
	for i, j := range jobs {
		if j.State != JobQueued {
			t.Fatalf("job %d state %v mid-outage, want queued", i, j.State)
		}
	}
	g.Engine.Run(5000)
	for i, j := range jobs {
		if j.State != JobDone {
			t.Fatalf("job %d state %v after recovery, want done", i, j.State)
		}
	}
	// Two slots: the first two start at recovery, the third when a
	// slot frees at ~600.
	if jobs[0].Start > 501 || jobs[1].Start > 501 {
		t.Errorf("first two jobs started at %v and %v, want at recovery (~500)", jobs[0].Start, jobs[1].Start)
	}
	if jobs[2].Start < 599 {
		t.Errorf("third job started at %v, want after a slot freed (~600)", jobs[2].Start)
	}
}

// TestKDistributedUnderOutage: k-fold distributed placement keeps
// completing tasks while one site sits in a long outage — redundancy
// across sites is exactly what the strategy buys.
func TestKDistributedUnderOutage(t *testing.T) {
	g := quietGrid(t, 3, 4, 10)
	if err := g.ScheduleOutage(0, 0, 1e6); err != nil {
		t.Fatal(err)
	}
	out, err := RunKDistributed(g, 2, 20, 10, 1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tasks != 20 {
		t.Fatalf("completed %d/20 tasks", out.Tasks)
	}
	if out.TimedOutTasks != 0 {
		t.Errorf("%d tasks abandoned despite two healthy sites", out.TimedOutTasks)
	}
	if math.IsInf(out.MeanJ, 0) || math.IsNaN(out.MeanJ) || out.MeanJ <= 0 {
		t.Errorf("degenerate mean J %v", out.MeanJ)
	}
}

// TestSubmitToSiteHonorsOutage: direct placement onto a down site
// queues rather than starts.
func TestSubmitToSiteHonorsOutage(t *testing.T) {
	g := quietGrid(t, 2, 1, 10)
	if err := g.ScheduleOutage(1, 0, 300); err != nil {
		t.Fatal(err)
	}
	j := g.SubmitToSite(1, 50)
	g.Engine.Run(200)
	if j.State != JobQueued {
		t.Fatalf("job on down site in state %v at t=200, want queued", j.State)
	}
	g.Engine.Run(1000)
	if j.State != JobDone || j.Start < 300 {
		t.Errorf("job state %v started %v, want done with start at recovery (>=300)", j.State, j.Start)
	}
}

// TestWMSLatencyClamped: a hostile WMSLatency closure returning
// negative or NaN delays must not panic the engine.
func TestWMSLatencyClamped(t *testing.T) {
	bad := []float64{-5, math.NaN(), 0}
	i := 0
	cfg := GridConfig{
		WMSLatency: func(float64) float64 { d := bad[i%len(bad)]; i++; return d },
		Seed:       3,
		Sites: []SiteConfig{{
			Name: "q", Slots: 2,
			BackgroundInterArrival: 1e9,
			BackgroundRuntime:      stats.NewShifted(stats.NewLogNormal(1, 0.1), 1),
		}},
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var jobs []*Job
	for range bad {
		jobs = append(jobs, g.Submit(10))
	}
	g.Engine.Run(100)
	for i, j := range jobs {
		if j.State != JobDone {
			t.Errorf("job %d state %v, want done", i, j.State)
		}
	}
}
