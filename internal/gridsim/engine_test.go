package gridsim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEngineOrdersEvents(t *testing.T) {
	e := NewEngine()
	var order []float64
	for _, d := range []float64{5, 1, 3, 2, 4} {
		d := d
		e.Schedule(d, func() { order = append(order, d) })
	}
	e.Run(10)
	if !sort.Float64sAreSorted(order) {
		t.Fatalf("events out of order: %v", order)
	}
	if len(order) != 5 {
		t.Fatalf("executed %d events", len(order))
	}
	if e.Processed() != 5 {
		t.Fatalf("processed counter %d", e.Processed())
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(7, func() { order = append(order, i) })
	}
	e.Run(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineHorizonStopsEarly(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(1, func() { ran++ })
	e.Schedule(100, func() { ran++ })
	e.Run(10)
	if ran != 1 || e.Pending() != 1 {
		t.Fatalf("ran=%d pending=%d", ran, e.Pending())
	}
	if e.Now() != 1 {
		t.Fatalf("clock at %v", e.Now())
	}
	e.Drain()
	if ran != 2 || e.Now() != 100 {
		t.Fatalf("drain failed: ran=%d now=%v", ran, e.Now())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	hits := 0
	var recur func()
	recur = func() {
		hits++
		if hits < 5 {
			e.Schedule(1, recur)
		}
	}
	e.Schedule(0, recur)
	e.Run(100)
	if hits != 5 {
		t.Fatalf("hits = %d", hits)
	}
	if e.Now() != 4 {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestEngineRejectsNegativeDelay(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestEngineEventAtHorizonRuns(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(10, func() { ran = true })
	e.Run(10)
	if !ran {
		t.Fatal("event exactly at horizon should run")
	}
}

func TestDefaultGridValidates(t *testing.T) {
	cfg := DefaultGrid(12, 1)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(cfg.Sites) != 12 {
		t.Fatalf("%d sites", len(cfg.Sites))
	}
	if cfg0 := DefaultGrid(0, 1); len(cfg0.Sites) != 24 {
		t.Fatal("default site count should be 24")
	}
}

func TestGridConfigValidation(t *testing.T) {
	base := DefaultGrid(3, 1)

	bad := base
	bad.Sites = nil
	if bad.Validate() == nil {
		t.Fatal("no sites should fail")
	}

	bad = base
	bad.WMSDelay = nil
	if bad.Validate() == nil {
		t.Fatal("nil WMS delay should fail")
	}

	bad = base
	bad.Diurnal = 1.5
	if bad.Validate() == nil {
		t.Fatal("diurnal out of range should fail")
	}

	bad = DefaultGrid(3, 1)
	bad.Sites[1].Slots = 0
	if bad.Validate() == nil {
		t.Fatal("zero slots should fail")
	}

	bad = DefaultGrid(3, 1)
	bad.Sites[0].BackgroundInterArrival = 0
	if bad.Validate() == nil {
		t.Fatal("zero inter-arrival should fail")
	}

	bad = DefaultGrid(3, 1)
	bad.Sites[2].DispatchFault = 1
	if bad.Validate() == nil {
		t.Fatal("fault probability 1 should fail")
	}

	if _, err := New(GridConfig{}); err == nil {
		t.Fatal("New must validate")
	}
}

func TestGridSlotCapRespected(t *testing.T) {
	g, err := New(DefaultGrid(6, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Drive the grid for a while, checking occupancy at intervals.
	for step := 0; step < 50; step++ {
		g.Engine.Run(g.Engine.Now() + 600)
		for i := 0; i < g.NumSites(); i++ {
			running, _ := g.SiteOccupancy(i)
			if running > g.Config().Sites[i].Slots {
				t.Fatalf("site %d runs %d jobs with %d slots", i, running, g.Config().Sites[i].Slots)
			}
			if running < 0 {
				t.Fatalf("site %d negative occupancy", i)
			}
		}
	}
}

func TestGridDeterminism(t *testing.T) {
	run := func() (int64, int64, float64) {
		g, err := New(DefaultGrid(8, 42))
		if err != nil {
			t.Fatal(err)
		}
		g.Engine.Run(20000)
		return g.Started, g.Finished, g.Engine.Now()
	}
	s1, f1, n1 := run()
	s2, f2, n2 := run()
	if s1 != s2 || f1 != f2 || n1 != n2 {
		t.Fatalf("non-deterministic: (%d,%d,%v) vs (%d,%d,%v)", s1, f1, n1, s2, f2, n2)
	}
	if s1 == 0 {
		t.Fatal("nothing started in 20,000 s of simulation")
	}
}

func TestUserJobLifecycle(t *testing.T) {
	g, err := New(DefaultGrid(6, 7))
	if err != nil {
		t.Fatal(err)
	}
	started, finished := 0, 0
	var latencies []float64
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 40; i++ {
		j := g.Submit(30 + rng.Float64()*60)
		j.OnStart = func(job *Job) {
			started++
			latencies = append(latencies, job.Latency())
		}
		j.OnFinish = func(job *Job) {
			if job.State == JobDone {
				finished++
			}
		}
		g.Engine.Run(g.Engine.Now() + 2000)
	}
	g.Engine.Run(g.Engine.Now() + 50000)
	if started == 0 {
		t.Fatal("no user jobs started")
	}
	for _, l := range latencies {
		if l < 30 { // WMS floor is ≈60 s + queue time
			t.Fatalf("latency %v below middleware floor", l)
		}
	}
	if finished > started {
		t.Fatalf("finished %d > started %d", finished, started)
	}
}

func TestCancelPreventsStart(t *testing.T) {
	g, err := New(DefaultGrid(4, 9))
	if err != nil {
		t.Fatal(err)
	}
	j := g.Submit(10)
	startFired := false
	j.OnStart = func(*Job) { startFired = true }
	g.Cancel(j)
	g.Engine.Run(g.Engine.Now() + 50000)
	if startFired {
		t.Fatal("cancelled job started anyway")
	}
	if j.State != JobCancelled {
		t.Fatalf("state %v", j.State)
	}
	if g.Cancelled != 1 {
		t.Fatalf("cancelled counter %d", g.Cancelled)
	}
}

func TestJobStateStrings(t *testing.T) {
	if StrategySingle.String() != "single" ||
		StrategyMultiple.String() != "multiple" ||
		StrategyDelayed.String() != "delayed" {
		t.Fatal("strategy names wrong")
	}
	if StrategyKind(42).String() != "strategy(42)" {
		t.Fatal("unknown strategy format")
	}
}
