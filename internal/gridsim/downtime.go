package gridsim

import (
	"fmt"
	"math"
)

// DowntimeConfig adds site outages to the simulation: a CE
// periodically stops starting jobs (scheduled maintenance, middleware
// crashes), which is one of the mechanisms fattening the latency tail
// on production grids — queued jobs silently wait out the outage.
type DowntimeConfig struct {
	MTBF float64 // mean time between failures (s); 0 disables outages
	MTTR float64 // mean time to repair (s)
}

// Validate checks the downtime configuration.
func (d DowntimeConfig) Validate() error {
	if d.MTBF < 0 || d.MTTR < 0 {
		return fmt.Errorf("gridsim: negative downtime parameters %+v", d)
	}
	if d.MTBF > 0 && d.MTTR <= 0 {
		return fmt.Errorf("gridsim: MTBF set but MTTR is %v", d.MTTR)
	}
	return nil
}

// EnableDowntime turns on exponential up/down cycling for every site.
// Call it once, right after New and before running the simulation.
func (g *Grid) EnableDowntime(cfg DowntimeConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.MTBF == 0 {
		return nil
	}
	for i := range g.sites {
		g.scheduleOutage(i, cfg)
	}
	return nil
}

func (g *Grid) scheduleOutage(siteIdx int, cfg DowntimeConfig) {
	s := g.sites[siteIdx]
	up := g.rng.ExpFloat64() * cfg.MTBF
	g.Engine.Schedule(up, func() {
		s.downDepth++
		repair := g.rng.ExpFloat64() * cfg.MTTR
		g.Engine.Schedule(repair, func() {
			s.downDepth--
			g.tryStart(s) // drain the queue that built up
			g.scheduleOutage(siteIdx, cfg)
		})
	})
}

// ScheduleOutage takes site i down for [at, at+dur) of simulated time,
// measured from now. Windows may overlap each other and the random
// up/down cycling of EnableDowntime: the site restarts jobs only when
// the last covering window ends. Used by the correlated-outage regime
// to force synchronized CE downtime bursts.
func (g *Grid) ScheduleOutage(i int, at, dur float64) error {
	if i < 0 || i >= len(g.sites) {
		return fmt.Errorf("gridsim: site index %d out of range", i)
	}
	if at < 0 || dur <= 0 || math.IsNaN(at) || math.IsNaN(dur) {
		return fmt.Errorf("gridsim: invalid outage window at=%v dur=%v", at, dur)
	}
	s := g.sites[i]
	g.Engine.Schedule(at, func() {
		s.downDepth++
		g.Engine.Schedule(dur, func() {
			s.downDepth--
			g.tryStart(s)
		})
	})
	return nil
}

// ScheduleGridOutage takes every site down for [at, at+dur) — the
// synchronized, correlated outage a middleware or network incident
// produces, where client-side redundancy cannot help because all CEs
// fail together.
func (g *Grid) ScheduleGridOutage(at, dur float64) error {
	for i := range g.sites {
		if err := g.ScheduleOutage(i, at, dur); err != nil {
			return err
		}
	}
	return nil
}

// SiteDown reports whether site i is currently in an outage.
func (g *Grid) SiteDown(i int) bool { return g.sites[i].down() }
