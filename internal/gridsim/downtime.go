package gridsim

import "fmt"

// DowntimeConfig adds site outages to the simulation: a CE
// periodically stops starting jobs (scheduled maintenance, middleware
// crashes), which is one of the mechanisms fattening the latency tail
// on production grids — queued jobs silently wait out the outage.
type DowntimeConfig struct {
	MTBF float64 // mean time between failures (s); 0 disables outages
	MTTR float64 // mean time to repair (s)
}

// Validate checks the downtime configuration.
func (d DowntimeConfig) Validate() error {
	if d.MTBF < 0 || d.MTTR < 0 {
		return fmt.Errorf("gridsim: negative downtime parameters %+v", d)
	}
	if d.MTBF > 0 && d.MTTR <= 0 {
		return fmt.Errorf("gridsim: MTBF set but MTTR is %v", d.MTTR)
	}
	return nil
}

// EnableDowntime turns on exponential up/down cycling for every site.
// Call it once, right after New and before running the simulation.
func (g *Grid) EnableDowntime(cfg DowntimeConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.MTBF == 0 {
		return nil
	}
	for i := range g.sites {
		g.scheduleOutage(i, cfg)
	}
	return nil
}

func (g *Grid) scheduleOutage(siteIdx int, cfg DowntimeConfig) {
	s := g.sites[siteIdx]
	up := g.rng.ExpFloat64() * cfg.MTBF
	g.Engine.Schedule(up, func() {
		s.down = true
		repair := g.rng.ExpFloat64() * cfg.MTTR
		g.Engine.Schedule(repair, func() {
			s.down = false
			g.tryStart(s) // drain the queue that built up
			g.scheduleOutage(siteIdx, cfg)
		})
	})
}

// SiteDown reports whether site i is currently in an outage.
func (g *Grid) SiteDown(i int) bool { return g.sites[i].down }
