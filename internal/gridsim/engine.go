// Package gridsim is a discrete-event simulator of an EGEE-style
// production grid: a user interface submits jobs to a workload
// management server (WMS), which match-makes and dispatches them to
// computing elements (CEs) — site gateways running batch queues with a
// fixed number of slots — while background load from other virtual
// organizations keeps the queues busy and non-stationary.
//
// The simulator plays the role of the production infrastructure the
// paper measured: probe jobs submitted through it experience a
// middleware floor, queue waits that depend on emergent occupancy,
// and faults injected at several lifecycle stages. Its output is a
// trace.Trace directly consumable by the core strategy models, and a
// client-side strategy runner executes the paper's three submission
// strategies against the live simulation for end-to-end validation.
package gridsim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback.
type event struct {
	at  float64
	seq int64 // tie-breaker for deterministic ordering
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event executor.
type Engine struct {
	now    float64
	seq    int64
	queue  eventQueue
	events int64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() int64 { return e.events }

// Schedule runs fn after delay seconds of simulated time. Negative
// delays panic: causality violations are always caller bugs.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("gridsim: negative or NaN delay %v", delay))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: e.now + delay, seq: e.seq, fn: fn})
}

// Run executes events in timestamp order until the queue empties or
// the clock passes horizon (events beyond the horizon stay unexecuted).
func (e *Engine) Run(horizon float64) {
	for e.queue.Len() > 0 {
		next := e.queue[0]
		if next.at > horizon {
			return
		}
		heap.Pop(&e.queue)
		e.now = next.at
		e.events++
		next.fn()
	}
}

// Drain executes every pending event regardless of time. Useful for
// letting in-flight jobs finish after the measurement window.
func (e *Engine) Drain() {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		e.events++
		ev.fn()
	}
}

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return e.queue.Len() }
