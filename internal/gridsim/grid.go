package gridsim

import (
	"fmt"
	"math"
	"math/rand"

	"gridstrat/internal/stats"
)

// SiteConfig describes one computing element (a site gateway with a
// batch queue).
type SiteConfig struct {
	Name  string
	Slots int // worker slots behind this CE

	// Background load from other VOs: Poisson arrivals of batch jobs
	// with the given mean inter-arrival time (seconds) and runtime
	// distribution. Arrival intensity is modulated diurnally to create
	// the non-stationarity production grids exhibit.
	BackgroundInterArrival float64
	BackgroundRuntime      stats.Distribution

	// DispatchFault is the probability that a job sent to this CE is
	// silently lost (configuration problems, middleware version skew):
	// it never starts and only the client timeout recovers it.
	DispatchFault float64
	// QueueFault is the probability that a queued job is killed by the
	// local batch system (detected after a delay, surfacing as an
	// error to the client).
	QueueFault float64
}

// GridConfig describes the simulated infrastructure.
type GridConfig struct {
	Sites []SiteConfig

	// WMSDelay is the middleware overhead between submission and
	// arrival at a CE queue: credential delegation, match-making,
	// file-name resolution, dispatch. This is the latency floor.
	WMSDelay stats.Distribution
	// WMSLatency, when set, replaces WMSDelay with a time-varying law:
	// it is called with the current simulation time at each submission
	// and must return that submission's middleware delay in seconds.
	// This is how the regime generator drives a non-stationary latency
	// process through the simulator; the closure owns its own random
	// stream so replays stay deterministic. Negative or NaN returns are
	// clamped to zero.
	WMSLatency func(now float64) float64
	// InfoStaleness is the age (seconds) of the occupancy information
	// the WMS ranks sites with; stale information produces the
	// mis-scheduling bursts that fatten the latency tail.
	InfoStaleness float64
	// Diurnal is the relative amplitude (0..1) of the sinusoidal
	// modulation of background arrivals over a 24 h period.
	Diurnal float64
	// RateModulator, when set, replaces the built-in diurnal modulation
	// of background arrivals: each site's arrival rate is its base rate
	// times RateModulator(now). Returns are clamped to a small positive
	// floor so a hostile modulator cannot stall the event loop.
	RateModulator func(now float64) float64
	// Seed drives all randomness in the simulation.
	Seed int64
}

// DefaultGrid returns a biomed-VO-like configuration: a few dozen
// heterogeneous sites, minute-scale middleware overhead, and enough
// background churn to produce heavy-tailed probe latencies.
func DefaultGrid(sites int, seed int64) GridConfig {
	if sites <= 0 {
		sites = 24
	}
	cfg := GridConfig{
		WMSDelay:      stats.NewShifted(stats.NewLogNormal(3.6, 0.55), 60), // ≈100–180 s
		InfoStaleness: 300,
		Diurnal:       0.35,
		Seed:          seed,
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	for i := 0; i < sites; i++ {
		slots := 8 << uint(rng.Intn(4)) // 8..64 slots
		cfg.Sites = append(cfg.Sites, SiteConfig{
			Name:                   fmt.Sprintf("ce%02d", i),
			Slots:                  slots,
			BackgroundInterArrival: 40 + rng.Float64()*160,
			BackgroundRuntime:      stats.NewShifted(stats.NewLogNormal(6.2, 1.1), 30),
			DispatchFault:          0.01 + rng.Float64()*0.05,
			QueueFault:             0.005 + rng.Float64()*0.02,
		})
	}
	return cfg
}

// Validate checks the configuration for obvious inconsistencies.
func (c GridConfig) Validate() error {
	if len(c.Sites) == 0 {
		return fmt.Errorf("gridsim: no sites configured")
	}
	if c.WMSDelay == nil && c.WMSLatency == nil {
		return fmt.Errorf("gridsim: nil WMS delay distribution")
	}
	if c.Diurnal < 0 || c.Diurnal >= 1 {
		return fmt.Errorf("gridsim: diurnal amplitude %v outside [0, 1)", c.Diurnal)
	}
	for i, s := range c.Sites {
		if s.Slots <= 0 {
			return fmt.Errorf("gridsim: site %d (%s) has no slots", i, s.Name)
		}
		if s.BackgroundInterArrival <= 0 {
			return fmt.Errorf("gridsim: site %d (%s) non-positive inter-arrival", i, s.Name)
		}
		if s.BackgroundRuntime == nil {
			return fmt.Errorf("gridsim: site %d (%s) nil runtime distribution", i, s.Name)
		}
		if s.DispatchFault < 0 || s.DispatchFault >= 1 || s.QueueFault < 0 || s.QueueFault >= 1 {
			return fmt.Errorf("gridsim: site %d (%s) fault probabilities out of range", i, s.Name)
		}
	}
	return nil
}

// JobState is the lifecycle position of a simulated job.
type JobState int

const (
	JobSubmitted JobState = iota // handed to the WMS
	JobQueued                    // waiting in a CE batch queue
	JobRunning                   // occupying a slot
	JobDone                      // finished its runtime
	JobLost                      // silently dropped (dispatch fault)
	JobKilled                    // killed by the batch system (queue fault)
	JobCancelled                 // canceled by the client
)

// Job is one simulated grid job.
type Job struct {
	ID       int64
	State    JobState
	Site     int     // index into GridConfig.Sites once dispatched
	Submit   float64 // submission instant
	Start    float64 // execution start instant (if it ran)
	Runtime  float64 // requested execution duration
	Done     float64 // terminal instant
	OnStart  func(*Job)
	OnFinish func(*Job)
}

// Latency returns the submission-to-start latency, the paper's R.
func (j *Job) Latency() float64 { return j.Start - j.Submit }

// site is the runtime state of one CE.
type site struct {
	cfg     SiteConfig
	running int
	queue   []*Job // FIFO batch queue

	// occupancySnapshot is the queue+running count the WMS last saw;
	// refreshed every InfoStaleness seconds.
	occupancySnapshot int

	// downDepth counts the outage windows currently covering the site:
	// queued jobs wait and nothing starts while it is positive. A depth
	// rather than a flag so overlapping windows (random cycling plus
	// explicitly scheduled outages) nest correctly — the site only
	// comes back up when the last covering window ends.
	downDepth int
}

func (s *site) down() bool { return s.downDepth > 0 }

// Grid is a live simulation instance.
type Grid struct {
	Engine *Engine
	cfg    GridConfig
	rng    *rand.Rand
	sites  []*site
	nextID int64

	// Counters for conservation checks and metrics.
	Submitted int64
	Started   int64
	Finished  int64
	Lost      int64
	Killed    int64
	Cancelled int64
}

// New builds a grid simulation from the configuration.
func New(cfg GridConfig) (*Grid, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Grid{
		Engine: NewEngine(),
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	for _, sc := range cfg.Sites {
		g.sites = append(g.sites, &site{cfg: sc})
	}
	g.startBackground()
	g.refreshSnapshots()
	return g, nil
}

// Config returns the grid configuration.
func (g *Grid) Config() GridConfig { return g.cfg }

// startBackground schedules the first background arrival at each site.
func (g *Grid) startBackground() {
	for i := range g.sites {
		g.scheduleBackgroundArrival(i)
	}
	// Pre-fill queues so measurement does not start on an empty grid:
	// every site begins with its slots busy and a partial queue.
	for i, s := range g.sites {
		idx := i
		backlog := s.cfg.Slots + g.rng.Intn(s.cfg.Slots*2+1)
		for k := 0; k < backlog; k++ {
			j := g.newJob(s.cfg.BackgroundRuntime.Rand(g.rng) * (0.3 + 0.7*g.rng.Float64()))
			g.enqueue(idx, j)
		}
	}
}

func (g *Grid) scheduleBackgroundArrival(siteIdx int) {
	s := g.sites[siteIdx]
	// Modulation of the Poisson rate: the configured RateModulator if
	// any (regime-driven load), the built-in diurnal sinusoid otherwise.
	var mod float64
	if g.cfg.RateModulator != nil {
		mod = g.cfg.RateModulator(g.Engine.Now())
		if !(mod > 1e-6) { // also catches NaN
			mod = 1e-6
		}
	} else {
		phase := 2 * math.Pi * g.Engine.Now() / 86400
		mod = 1 + g.cfg.Diurnal*math.Sin(phase)
	}
	rate := mod / s.cfg.BackgroundInterArrival
	gap := g.rng.ExpFloat64() / rate
	g.Engine.Schedule(gap, func() {
		j := g.newJob(s.cfg.BackgroundRuntime.Rand(g.rng))
		g.enqueue(siteIdx, j)
		g.scheduleBackgroundArrival(siteIdx)
	})
}

// refreshSnapshots periodically copies true occupancy into the stale
// view the WMS ranks with.
func (g *Grid) refreshSnapshots() {
	for _, s := range g.sites {
		s.occupancySnapshot = s.running + len(s.queue)
	}
	stale := g.cfg.InfoStaleness
	if stale <= 0 {
		stale = 60
	}
	g.Engine.Schedule(stale, g.refreshSnapshots)
}

func (g *Grid) newJob(runtime float64) *Job {
	g.nextID++
	return &Job{ID: g.nextID, Runtime: runtime, Submit: g.Engine.Now(), Site: -1}
}

// wmsDelay draws one submission's middleware delay: the time-varying
// WMSLatency law when configured, the stationary WMSDelay distribution
// otherwise.
func (g *Grid) wmsDelay() float64 {
	if g.cfg.WMSLatency != nil {
		d := g.cfg.WMSLatency(g.Engine.Now())
		if d < 0 || math.IsNaN(d) {
			return 0
		}
		return d
	}
	return g.cfg.WMSDelay.Rand(g.rng)
}

// Submit hands a user job with the given runtime to the WMS. The
// returned job's OnStart/OnFinish hooks (set by the caller before the
// WMS delay elapses) observe its lifecycle.
func (g *Grid) Submit(runtime float64) *Job {
	j := g.newJob(runtime)
	g.Submitted++
	j.State = JobSubmitted
	delay := g.wmsDelay()
	g.Engine.Schedule(delay, func() {
		if j.State == JobCancelled {
			return
		}
		g.dispatch(j)
	})
	return j
}

// dispatch match-makes the job onto a CE using the stale occupancy
// snapshot: choose among the lowest-occupancy sites with tie noise.
func (g *Grid) dispatch(j *Job) {
	best, bestScore := 0, math.Inf(1)
	for i, s := range g.sites {
		score := float64(s.occupancySnapshot)/float64(s.cfg.Slots) + 0.25*g.rng.Float64()
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	s := g.sites[best]
	if g.rng.Float64() < s.cfg.DispatchFault {
		// Silently lost: the client only learns via its own timeout.
		j.State = JobLost
		j.Site = best
		j.Done = g.Engine.Now()
		g.Lost++
		return
	}
	g.enqueue(best, j)
}

// enqueue places the job in the site's FIFO batch queue and starts it
// immediately if a slot is free.
func (g *Grid) enqueue(siteIdx int, j *Job) {
	s := g.sites[siteIdx]
	j.Site = siteIdx
	j.State = JobQueued
	if g.rng.Float64() < s.cfg.QueueFault {
		// The batch system will kill it after a detection delay.
		delay := 30 + g.rng.ExpFloat64()*600
		g.Engine.Schedule(delay, func() {
			if j.State != JobQueued {
				return
			}
			j.State = JobKilled
			j.Done = g.Engine.Now()
			g.Killed++
			g.removeFromQueue(s, j)
			if j.OnFinish != nil {
				j.OnFinish(j)
			}
		})
	}
	s.queue = append(s.queue, j)
	g.tryStart(s)
}

func (g *Grid) removeFromQueue(s *site, j *Job) {
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// tryStart fills free slots from the FIFO queue.
func (g *Grid) tryStart(s *site) {
	for !s.down() && s.running < s.cfg.Slots && len(s.queue) > 0 {
		j := s.queue[0]
		s.queue = s.queue[1:]
		if j.State != JobQueued {
			continue // killed or cancelled while waiting
		}
		s.running++
		j.State = JobRunning
		j.Start = g.Engine.Now()
		g.Started++
		if j.OnStart != nil {
			j.OnStart(j)
		}
		g.Engine.Schedule(j.Runtime, func() {
			s.running--
			if j.State == JobRunning {
				j.State = JobDone
				j.Done = g.Engine.Now()
				g.Finished++
				if j.OnFinish != nil {
					j.OnFinish(j)
				}
			}
			g.tryStart(s)
		})
	}
}

// Cancel withdraws a job: a queued or in-WMS job never starts; a
// running job's slot is reclaimed when its runtime event fires.
func (g *Grid) Cancel(j *Job) {
	switch j.State {
	case JobSubmitted, JobQueued:
		if j.State == JobQueued && j.Site >= 0 {
			g.removeFromQueue(g.sites[j.Site], j)
		}
		j.State = JobCancelled
		j.Done = g.Engine.Now()
		g.Cancelled++
	case JobRunning:
		j.State = JobCancelled
		j.Done = g.Engine.Now()
		g.Cancelled++
	}
}

// SiteOccupancy returns (running, queued) for site i — for tests and
// metrics.
func (g *Grid) SiteOccupancy(i int) (running, queued int) {
	return g.sites[i].running, len(g.sites[i].queue)
}

// NumSites returns the number of configured sites.
func (g *Grid) NumSites() int { return len(g.sites) }
