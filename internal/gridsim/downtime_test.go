package gridsim

import (
	"testing"
)

func TestDowntimeValidation(t *testing.T) {
	if (DowntimeConfig{MTBF: -1}).Validate() == nil {
		t.Fatal("negative MTBF should fail")
	}
	if (DowntimeConfig{MTBF: 100, MTTR: 0}).Validate() == nil {
		t.Fatal("MTBF without MTTR should fail")
	}
	if (DowntimeConfig{}).Validate() != nil {
		t.Fatal("zero config is valid (disabled)")
	}
	g, err := New(DefaultGrid(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.EnableDowntime(DowntimeConfig{MTBF: -1, MTTR: 5}); err == nil {
		t.Fatal("EnableDowntime must validate")
	}
	if err := g.EnableDowntime(DowntimeConfig{}); err != nil {
		t.Fatal("disabled downtime should be accepted")
	}
}

func TestDowntimeOccurs(t *testing.T) {
	g, err := New(DefaultGrid(6, 77))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.EnableDowntime(DowntimeConfig{MTBF: 2000, MTTR: 600}); err != nil {
		t.Fatal(err)
	}
	sawDown := false
	for step := 0; step < 200 && !sawDown; step++ {
		g.Engine.Run(g.Engine.Now() + 120)
		for i := 0; i < g.NumSites(); i++ {
			if g.SiteDown(i) {
				sawDown = true
			}
		}
	}
	if !sawDown {
		t.Fatal("no outage observed despite MTBF=2000s over 24000s")
	}
	// Jobs keep their slot caps through outages, and the grid still
	// makes progress overall.
	g.Engine.Run(g.Engine.Now() + 50000)
	for i := 0; i < g.NumSites(); i++ {
		running, _ := g.SiteOccupancy(i)
		if running > g.Config().Sites[i].Slots {
			t.Fatalf("site %d over capacity during downtime test", i)
		}
	}
	if g.Started == 0 {
		t.Fatal("grid made no progress with downtime enabled")
	}
}

func TestDowntimeFattensTail(t *testing.T) {
	campaign := func(withDowntime bool) float64 {
		g, err := New(DefaultGrid(8, 99))
		if err != nil {
			t.Fatal(err)
		}
		if withDowntime {
			if err := g.EnableDowntime(DowntimeConfig{MTBF: 4000, MTTR: 2500}); err != nil {
				t.Fatal(err)
			}
		}
		tr, err := RunProbes(g, DefaultProbeConfig(400), "dt")
		if err != nil {
			t.Fatal(err)
		}
		return tr.ComputeStats().MeanBody
	}
	base := campaign(false)
	down := campaign(true)
	if !(down > base) {
		t.Fatalf("downtime should raise mean latency: %v vs %v", down, base)
	}
}

func TestLeastLoadedSites(t *testing.T) {
	g, err := New(DefaultGrid(10, 5))
	if err != nil {
		t.Fatal(err)
	}
	g.Engine.Run(5000)
	sites := g.LeastLoadedSites(3)
	if len(sites) != 3 {
		t.Fatalf("%d sites", len(sites))
	}
	seen := map[int]bool{}
	for _, s := range sites {
		if seen[s] {
			t.Fatal("duplicate site")
		}
		seen[s] = true
	}
	// Clamping.
	if len(g.LeastLoadedSites(0)) != 1 {
		t.Fatal("k<1 should clamp to 1")
	}
	if len(g.LeastLoadedSites(99)) != g.NumSites() {
		t.Fatal("k>sites should clamp")
	}
}

func TestSubmitToSitePanicsOutOfRange(t *testing.T) {
	g, err := New(DefaultGrid(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.SubmitToSite(99, 1)
}

func TestRunKDistributed(t *testing.T) {
	g, err := New(DefaultGrid(16, 37))
	if err != nil {
		t.Fatal(err)
	}
	g.Engine.Run(5000)

	out, err := RunKDistributed(g, 4, 50, 100, 1, 2500)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tasks == 0 {
		t.Fatal("no K-distributed tasks completed")
	}
	if out.MeanSubmissions < 4 {
		t.Fatalf("submissions %v below K", out.MeanSubmissions)
	}
	if out.MeanJ <= 0 {
		t.Fatalf("mean J %v", out.MeanJ)
	}

	// K=4 should beat K=1 on mean latency (Subramani et al's result)
	// on a comparable fresh grid.
	g2, err := New(DefaultGrid(16, 37))
	if err != nil {
		t.Fatal(err)
	}
	g2.Engine.Run(5000)
	out1, err := RunKDistributed(g2, 1, 50, 100, 1, 2500)
	if err != nil {
		t.Fatal(err)
	}
	if out1.Tasks > 0 && out.Tasks > 0 && out.MeanJ > out1.MeanJ*1.25 {
		t.Fatalf("K=4 (J=%v) should not be much worse than K=1 (J=%v)", out.MeanJ, out1.MeanJ)
	}

	// Input validation.
	if _, err := RunKDistributed(g, 0, 10, 10, 1, 100); err == nil {
		t.Fatal("K=0 should fail")
	}
	if _, err := RunKDistributed(g, 2, 0, 10, 1, 100); err == nil {
		t.Fatal("tasks=0 should fail")
	}
	if _, err := RunKDistributed(g, 2, 10, 10, 1, -5); err == nil {
		t.Fatal("negative tInf should fail")
	}
}
