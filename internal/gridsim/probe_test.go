package gridsim

import (
	"math"
	"testing"

	"gridstrat/internal/core"
	"gridstrat/internal/trace"
)

func runCampaign(t *testing.T, total int, seed int64) *trace.Trace {
	t.Helper()
	g, err := New(DefaultGrid(16, seed))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RunProbes(g, DefaultProbeConfig(total), "sim")
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunProbesProducesValidTrace(t *testing.T) {
	tr := runCampaign(t, 400, 11)
	if tr.Len() != 400 {
		t.Fatalf("got %d records", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := tr.ComputeStats()
	if st.Completed == 0 {
		t.Fatal("no probes completed")
	}
	// The middleware floor guarantees latencies are not trivially 0.
	if st.MeanBody < 50 {
		t.Fatalf("mean latency %v suspiciously small", st.MeanBody)
	}
	// Non-degenerate variability is the whole point of the substrate.
	if st.StdBody <= 0 {
		t.Fatal("zero latency variance")
	}
}

func TestRunProbesConservation(t *testing.T) {
	// Every probe terminates exactly once: records are unique and
	// total equals requested.
	tr := runCampaign(t, 300, 13)
	seen := map[int]bool{}
	for _, r := range tr.Records {
		if seen[r.ID] {
			t.Fatalf("probe %d recorded twice", r.ID)
		}
		seen[r.ID] = true
	}
	if len(seen) != 300 {
		t.Fatalf("%d unique probes", len(seen))
	}
}

func TestRunProbesDeterministic(t *testing.T) {
	a := runCampaign(t, 150, 17)
	b := runCampaign(t, 150, 17)
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a.Records[i], b.Records[i])
		}
	}
}

func TestRunProbesConfigErrors(t *testing.T) {
	g, err := New(DefaultGrid(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunProbes(g, ProbeConfig{InFlight: 0, Total: 10, Timeout: 100}, "x"); err == nil {
		t.Fatal("zero in-flight should fail")
	}
	if _, err := RunProbes(g, ProbeConfig{InFlight: 5, Total: 0, Timeout: 100}, "x"); err == nil {
		t.Fatal("zero total should fail")
	}
	if _, err := RunProbes(g, ProbeConfig{InFlight: 5, Total: 10, Timeout: 0}, "x"); err == nil {
		t.Fatal("zero timeout should fail")
	}
}

func TestSimulatedTraceFeedsCoreModel(t *testing.T) {
	// End-to-end: DES trace → latency model → strategy optimization.
	tr := runCampaign(t, 600, 19)
	m, err := core.ModelFromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	tInf, ev := core.OptimizeSingle(m)
	if math.IsInf(ev.EJ, 1) || tInf <= 0 {
		t.Fatalf("optimization failed: t∞=%v EJ=%v", tInf, ev.EJ)
	}
	// Multiple submission must reduce expected latency on this trace.
	_, ev2 := core.OptimizeMultiple(m, 3)
	if !(ev2.EJ < ev.EJ) {
		t.Fatalf("b=3 EJ %v not below single %v", ev2.EJ, ev.EJ)
	}
}

func TestStrategySpecValidation(t *testing.T) {
	cases := []StrategySpec{
		{Kind: StrategySingle, TInf: 0},
		{Kind: StrategyMultiple, TInf: 100, B: 0},
		{Kind: StrategyMultiple, TInf: 0, B: 2},
		{Kind: StrategyDelayed, Delayed: core.DelayedParams{T0: 10, TInf: 30}},
		{Kind: StrategyKind(9)},
	}
	for _, s := range cases {
		if s.Validate() == nil {
			t.Errorf("%+v should fail validation", s)
		}
	}
	good := []StrategySpec{
		{Kind: StrategySingle, TInf: 600},
		{Kind: StrategyMultiple, TInf: 600, B: 4},
		{Kind: StrategyDelayed, Delayed: core.DelayedParams{T0: 300, TInf: 450}},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("%+v should validate: %v", s, err)
		}
	}
}

func TestRunStrategyAgainstLiveGrid(t *testing.T) {
	g, err := New(DefaultGrid(16, 23))
	if err != nil {
		t.Fatal(err)
	}
	// Warm the grid up.
	g.Engine.Run(5000)

	single, err := RunStrategy(g, StrategySpec{Kind: StrategySingle, TInf: 2500}, 60, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if single.Tasks == 0 {
		t.Fatal("no single-strategy tasks completed")
	}
	if single.MeanJ <= 0 {
		t.Fatalf("mean J = %v", single.MeanJ)
	}
	if single.MeanSubmissions < 1 {
		t.Fatalf("submissions %v below 1", single.MeanSubmissions)
	}

	multi, err := RunStrategy(g, StrategySpec{Kind: StrategyMultiple, TInf: 2500, B: 4}, 60, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Tasks == 0 {
		t.Fatal("no multiple-strategy tasks completed")
	}
	// 4 copies per round: at least 4 submissions per task.
	if multi.MeanSubmissions < 4 {
		t.Fatalf("multiple submissions %v below b", multi.MeanSubmissions)
	}

	delayed, err := RunStrategy(g, StrategySpec{
		Kind:    StrategyDelayed,
		Delayed: core.DelayedParams{T0: 900, TInf: 1400},
	}, 60, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if delayed.Tasks == 0 {
		t.Fatal("no delayed-strategy tasks completed")
	}
	// N‖ of the delayed strategy lives in [1, 2).
	if delayed.MeanParallel < 1 || delayed.MeanParallel >= 2 {
		t.Fatalf("delayed N‖ = %v", delayed.MeanParallel)
	}
}

func TestRunStrategyInputErrors(t *testing.T) {
	g, err := New(DefaultGrid(4, 29))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunStrategy(g, StrategySpec{Kind: StrategySingle, TInf: 100}, 0, 10, 1); err == nil {
		t.Fatal("zero tasks should fail")
	}
	if _, err := RunStrategy(g, StrategySpec{Kind: StrategySingle, TInf: 100}, 5, 0, 1); err == nil {
		t.Fatal("zero rounds should fail")
	}
	if _, err := RunStrategy(g, StrategySpec{Kind: StrategySingle, TInf: -1}, 5, 5, 1); err == nil {
		t.Fatal("invalid spec should fail")
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	e := NewEngine()
	var pump func()
	count := 0
	pump = func() {
		count++
		if count < b.N {
			e.Schedule(1, pump)
		}
	}
	b.ResetTimer()
	e.Schedule(0, pump)
	e.Drain()
}

func BenchmarkProbeCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := New(DefaultGrid(16, int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := RunProbes(g, DefaultProbeConfig(200), "bench"); err != nil {
			b.Fatal(err)
		}
	}
}
