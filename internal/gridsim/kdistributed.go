package gridsim

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the K-distributed scheme of Subramani et al.
// (HPDC'02), which the paper discusses as related work: each job is
// submitted to the K least-loaded sites *directly* (bypassing central
// match-making), and the extra copies are canceled when one starts.
// It serves as a baseline against the paper's client-side strategies,
// which need no knowledge of site occupancy.

// LeastLoadedSites returns the indices of the k sites with the lowest
// occupancy according to the WMS's (stale) snapshot, normalized by
// slot count — the information a K-distributed scheduler would act on.
func (g *Grid) LeastLoadedSites(k int) []int {
	if k < 1 {
		k = 1
	}
	if k > len(g.sites) {
		k = len(g.sites)
	}
	idx := make([]int, len(g.sites))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		sa := g.sites[idx[a]]
		sb := g.sites[idx[b]]
		ra := float64(sa.occupancySnapshot) / float64(sa.cfg.Slots)
		rb := float64(sb.occupancySnapshot) / float64(sb.cfg.Slots)
		if ra != rb {
			return ra < rb
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}

// SubmitToSite places a job at a specific CE, paying only the
// middleware delay (no match-making): the direct-submission mode the
// K-distributed scheme assumes.
func (g *Grid) SubmitToSite(siteIdx int, runtime float64) *Job {
	if siteIdx < 0 || siteIdx >= len(g.sites) {
		panic(fmt.Sprintf("gridsim: site index %d out of range", siteIdx))
	}
	j := g.newJob(runtime)
	g.Submitted++
	j.State = JobSubmitted
	delay := g.wmsDelay()
	g.Engine.Schedule(delay, func() {
		if j.State == JobCancelled {
			return
		}
		s := g.sites[siteIdx]
		if g.rng.Float64() < s.cfg.DispatchFault {
			j.State = JobLost
			j.Site = siteIdx
			j.Done = g.Engine.Now()
			g.Lost++
			return
		}
		g.enqueue(siteIdx, j)
	})
	return j
}

// RunKDistributed executes `tasks` sequential tasks under the
// K-distributed scheme: K copies on the K least-loaded sites, all
// canceled when one starts, the whole set resubmitted at tInf.
func RunKDistributed(g *Grid, k, tasks, maxRounds int, runtime, tInf float64) (StrategyOutcome, error) {
	if k < 1 {
		return StrategyOutcome{}, fmt.Errorf("gridsim: K must be >= 1, got %d", k)
	}
	if tasks <= 0 || maxRounds <= 0 || tInf <= 0 {
		return StrategyOutcome{}, fmt.Errorf("gridsim: invalid run parameters tasks=%d rounds=%d tInf=%v",
			tasks, maxRounds, tInf)
	}
	var out StrategyOutcome
	var sum, sum2, subs, par float64
	for i := 0; i < tasks; i++ {
		start := g.Engine.Now()
		started := false
		var startAt float64
		submissions := 0
		copySeconds := 0.0

		for round := 0; round < maxRounds && !started; round++ {
			roundStart := g.Engine.Now()
			targets := g.LeastLoadedSites(k)
			jobsThisRound := make([]*Job, 0, len(targets))
			for _, siteIdx := range targets {
				j := g.SubmitToSite(siteIdx, runtime)
				submissions++
				j.OnStart = func(job *Job) {
					if !started {
						started = true
						startAt = job.Start
					}
				}
				jobsThisRound = append(jobsThisRound, j)
			}
			g.Engine.Run(roundStart + tInf)
			if started {
				for _, j := range jobsThisRound {
					if j.State != JobRunning {
						g.Cancel(j)
					}
					copySeconds += math.Min(startAt, roundStart+tInf) - roundStart
				}
				break
			}
			for _, j := range jobsThisRound {
				g.Cancel(j)
				copySeconds += tInf
			}
			if g.Engine.Now() < roundStart+tInf {
				g.Engine.Schedule(roundStart+tInf-g.Engine.Now(), func() {})
				g.Engine.Run(roundStart + tInf)
			}
		}
		if !started {
			out.TimedOutTasks++
			continue
		}
		j := startAt - start
		out.Tasks++
		sum += j
		sum2 += j * j
		subs += float64(submissions)
		if j > 0 {
			par += copySeconds / j
		}
	}
	if out.Tasks > 0 {
		n := float64(out.Tasks)
		out.MeanJ = sum / n
		variance := sum2/n - out.MeanJ*out.MeanJ
		if variance < 0 {
			variance = 0
		}
		out.StdJ = math.Sqrt(variance)
		out.MeanSubmissions = subs / n
		out.MeanParallel = par / n
	}
	return out, nil
}
