package gridsim

import (
	"fmt"
	"math"

	"gridstrat/internal/core"
)

// StrategyKind selects a client-side submission strategy.
type StrategyKind int

const (
	// StrategySingle cancels and resubmits at t∞ (paper §4).
	StrategySingle StrategyKind = iota
	// StrategyMultiple submits b copies, cancels the rest when one
	// starts, resubmits the collection at t∞ (paper §5).
	StrategyMultiple
	// StrategyDelayed submits a copy every t0 without cancelling until
	// each copy's own t∞ (paper §6).
	StrategyDelayed
)

func (k StrategyKind) String() string {
	switch k {
	case StrategySingle:
		return "single"
	case StrategyMultiple:
		return "multiple"
	case StrategyDelayed:
		return "delayed"
	}
	return fmt.Sprintf("strategy(%d)", int(k))
}

// StrategySpec fully parameterizes a client strategy.
type StrategySpec struct {
	Kind    StrategyKind
	TInf    float64            // timeout (all strategies)
	B       int                // collection size (multiple)
	Delayed core.DelayedParams // t0/t∞ (delayed; TInf ignored)
}

// Validate checks the spec.
func (s StrategySpec) Validate() error {
	switch s.Kind {
	case StrategySingle:
		if s.TInf <= 0 {
			return fmt.Errorf("gridsim: single strategy needs positive t∞, got %v", s.TInf)
		}
	case StrategyMultiple:
		if s.TInf <= 0 {
			return fmt.Errorf("gridsim: multiple strategy needs positive t∞, got %v", s.TInf)
		}
		if s.B < 1 {
			return fmt.Errorf("gridsim: multiple strategy needs b >= 1, got %d", s.B)
		}
	case StrategyDelayed:
		return s.Delayed.Validate()
	default:
		return fmt.Errorf("gridsim: unknown strategy kind %d", s.Kind)
	}
	return nil
}

// TaskResult is the outcome of running one task under a strategy.
type TaskResult struct {
	J           float64 // total latency: submission of first copy → first start
	Submissions int     // copies submitted in total
	CopySeconds float64 // copy-time spent in the system before J
}

// StrategyOutcome aggregates task results.
type StrategyOutcome struct {
	Tasks           int
	MeanJ           float64
	StdJ            float64
	MeanSubmissions float64
	MeanParallel    float64 // mean of CopySeconds/J
	TimedOutTasks   int     // tasks that never started within the budget
}

// TaskOutcome is one task's result in a detailed strategy run.
type TaskOutcome struct {
	TaskResult
	// Started reports whether the task got a copy running within its
	// round budget; when false the TaskResult carries only the load the
	// abandoned task placed on the grid.
	Started bool
}

// RunStrategy executes `tasks` sequential tasks under the strategy
// against the live grid and aggregates outcomes. Each task is given at
// most maxRounds strategy rounds before being abandoned (counted in
// TimedOutTasks) so a dead grid cannot hang the simulation.
func RunStrategy(g *Grid, spec StrategySpec, tasks, maxRounds int, runtime float64) (StrategyOutcome, error) {
	_, out, err := RunStrategyDetailed(g, spec, tasks, maxRounds, runtime)
	return out, err
}

// RunStrategyDetailed is RunStrategy returning the per-task outcomes
// alongside the aggregate — the raw material for SLO verdicts, where
// a class target is a quantile of the per-task latency law rather than
// a mean. The aggregate is computed exactly as RunStrategy always has.
func RunStrategyDetailed(g *Grid, spec StrategySpec, tasks, maxRounds int, runtime float64) ([]TaskOutcome, StrategyOutcome, error) {
	if err := spec.Validate(); err != nil {
		return nil, StrategyOutcome{}, err
	}
	if tasks <= 0 || maxRounds <= 0 {
		return nil, StrategyOutcome{}, fmt.Errorf("gridsim: tasks and maxRounds must be positive")
	}
	outcomes := make([]TaskOutcome, 0, tasks)
	var out StrategyOutcome
	var sum, sum2, subs, par float64
	for i := 0; i < tasks; i++ {
		res, ok := runOneTask(g, spec, maxRounds, runtime)
		outcomes = append(outcomes, TaskOutcome{TaskResult: res, Started: ok})
		if !ok {
			out.TimedOutTasks++
			continue
		}
		out.Tasks++
		sum += res.J
		sum2 += res.J * res.J
		subs += float64(res.Submissions)
		if res.J > 0 {
			par += res.CopySeconds / res.J
		}
	}
	if out.Tasks > 0 {
		n := float64(out.Tasks)
		out.MeanJ = sum / n
		variance := sum2/n - out.MeanJ*out.MeanJ
		if variance < 0 {
			variance = 0
		}
		out.StdJ = math.Sqrt(variance)
		out.MeanSubmissions = subs / n
		out.MeanParallel = par / n
	}
	return outcomes, out, nil
}

// runOneTask drives a single task to its first start.
func runOneTask(g *Grid, spec StrategySpec, maxRounds int, runtime float64) (TaskResult, bool) {
	start := g.Engine.Now()
	var res TaskResult
	started := false
	var startAt float64

	type liveJob struct {
		job    *Job
		sub    float64
		cancel float64 // scheduled cancellation instant
	}
	var live []*liveJob

	noteStart := func(at float64) {
		if !started {
			started = true
			startAt = at
			for _, lj := range live {
				if lj.job.State != JobRunning {
					g.Cancel(lj.job)
				}
				end := math.Min(lj.cancel, at)
				if end > lj.sub {
					res.CopySeconds += end - lj.sub
				}
			}
		}
	}

	submit := func(cancelAfter float64) *liveJob {
		j := g.Submit(runtime)
		lj := &liveJob{job: j, sub: g.Engine.Now(), cancel: g.Engine.Now() + cancelAfter}
		res.Submissions++
		j.OnStart = func(job *Job) { noteStart(job.Start) }
		g.Engine.Schedule(cancelAfter, func() {
			if !started && (j.State == JobSubmitted || j.State == JobQueued) {
				g.Cancel(j)
			}
		})
		live = append(live, lj)
		return lj
	}

	switch spec.Kind {
	case StrategySingle, StrategyMultiple:
		b := 1
		if spec.Kind == StrategyMultiple {
			b = spec.B
		}
		for round := 0; round < maxRounds && !started; round++ {
			roundStart := g.Engine.Now()
			live = live[:0]
			for k := 0; k < b; k++ {
				submit(spec.TInf)
			}
			g.Engine.Run(roundStart + spec.TInf)
			if !started {
				// Round timed out: count the full windows as load.
				for _, lj := range live {
					res.CopySeconds += spec.TInf
					if lj.job.State != JobRunning {
						g.Cancel(lj.job)
					}
				}
				// Advance the clock to the exact round boundary.
				if g.Engine.Now() < roundStart+spec.TInf {
					g.Engine.Schedule(roundStart+spec.TInf-g.Engine.Now(), func() {})
					g.Engine.Run(roundStart + spec.TInf)
				}
			}
		}
	case StrategyDelayed:
		p := spec.Delayed
		for k := 0; k < maxRounds && !started; k++ {
			submit(p.TInf)
			next := g.Engine.Now() + p.T0
			g.Engine.Run(next)
			if !started && g.Engine.Now() < next {
				g.Engine.Schedule(next-g.Engine.Now(), func() {})
				g.Engine.Run(next)
			}
		}
		if !started {
			// Let the last copies play out their windows.
			g.Engine.Run(g.Engine.Now() + p.TInf)
		}
	}

	if !started {
		return res, false
	}
	res.J = startAt - start
	return res, true
}
