package gridsim

import (
	"fmt"
	"math"

	"gridstrat/internal/trace"
)

// ProbeConfig drives a constant-load probe measurement campaign, the
// methodology of §3.2 of the paper: a fixed number of near-zero-length
// probe jobs is kept in flight, each new probe submitted when another
// terminates, with a client-side timeout marking outliers.
type ProbeConfig struct {
	InFlight int     // constant number of concurrent probes
	Total    int     // probes to collect
	Timeout  float64 // client timeout (the paper's 10,000 s)
	Runtime  float64 // probe execution duration (≈0: /bin/hostname)
}

// DefaultProbeConfig mirrors the paper's campaign shape.
func DefaultProbeConfig(total int) ProbeConfig {
	return ProbeConfig{InFlight: 25, Total: total, Timeout: trace.DefaultTimeout, Runtime: 1}
}

// RunProbes executes a probe campaign against the grid and returns the
// collected trace. The grid keeps serving background load while the
// campaign runs.
func RunProbes(g *Grid, cfg ProbeConfig, name string) (*trace.Trace, error) {
	if cfg.InFlight <= 0 || cfg.Total <= 0 {
		return nil, fmt.Errorf("gridsim: probe campaign needs positive InFlight and Total, got %+v", cfg)
	}
	if cfg.Timeout <= 0 {
		return nil, fmt.Errorf("gridsim: non-positive probe timeout %v", cfg.Timeout)
	}
	tr := &trace.Trace{Name: name, Timeout: cfg.Timeout}
	launched := 0
	id := 0

	var launch func()
	launch = func() {
		if launched >= cfg.Total {
			return
		}
		launched++
		recID := id
		id++
		j := g.Submit(cfg.Runtime)
		submitted := g.Engine.Now()
		settled := false

		record := func(latency float64, st trace.Status) {
			if settled {
				return
			}
			settled = true
			tr.Records = append(tr.Records, trace.ProbeRecord{
				ID:      recID,
				Submit:  submitted,
				Latency: latency,
				Status:  st,
			})
			launch() // keep the in-flight count constant
		}

		j.OnStart = func(job *Job) {
			record(job.Latency(), trace.StatusCompleted)
		}
		j.OnFinish = func(job *Job) {
			if job.State == JobKilled {
				record(job.Done-job.Submit, trace.StatusFault)
			}
		}
		// Client-side timeout: cancel and record an outlier. The probe
		// may have started just before; record() is idempotent.
		g.Engine.Schedule(cfg.Timeout, func() {
			if !settled {
				g.Cancel(j)
				record(cfg.Timeout, trace.StatusOutlier)
			}
		})
	}

	for i := 0; i < cfg.InFlight && i < cfg.Total; i++ {
		launch()
	}
	// Run in chunks and stop as soon as the campaign completes: the
	// background load reschedules itself forever, so running straight
	// to the worst-case horizon would simulate months of idle grid.
	// Every probe resolves within Timeout of its submission and
	// submissions chain, so Total·Timeout bounds the campaign.
	horizon := g.Engine.Now() + float64(cfg.Total+cfg.InFlight)*cfg.Timeout
	chunk := cfg.Timeout / 4
	for len(tr.Records) < cfg.Total && g.Engine.Pending() > 0 && g.Engine.Now() < horizon {
		g.Engine.Run(math.Min(horizon, g.Engine.Now()+chunk))
	}
	if len(tr.Records) < cfg.Total {
		return nil, fmt.Errorf("gridsim: campaign stalled at %d/%d probes", len(tr.Records), cfg.Total)
	}
	tr.Records = tr.Records[:cfg.Total]
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
