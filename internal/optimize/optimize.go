// Package optimize provides the small set of derivative-free
// minimizers the submission-strategy models need: golden-section and
// Brent line searches, coarse-to-fine grid scans in one and two
// dimensions, and a Nelder–Mead simplex for the delayed-resubmission
// surface EJ(t0, t∞).
//
// All routines minimize; negate the objective to maximize. Objectives
// may return +Inf to mark infeasible points (used to encode the
// t0 < t∞ < 2·t0 constraint of the delayed strategy), and every
// routine tolerates such plateaus.
package optimize

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Result1D is the outcome of a one-dimensional minimization.
type Result1D struct {
	X     float64 // argmin
	F     float64 // objective value at X
	Evals int     // number of objective evaluations
}

// Result2D is the outcome of a two-dimensional minimization.
type Result2D struct {
	X, Y  float64 // argmin
	F     float64 // objective value
	Evals int
}

const invPhi = 0.6180339887498949 // (√5-1)/2

// GoldenSection minimizes f over [a, b] to interval tolerance tol
// using golden-section search. It assumes f is unimodal on [a, b];
// on multimodal objectives it converges to *a* local minimum. The
// returned point is the best one actually evaluated: on objectives
// with +Inf plateaus (infeasible-region encoding) the final bracket
// midpoint can sit on the plateau even though interior probes were
// finite, so the incumbent — not the midpoint — is the answer.
func GoldenSection(f func(float64) float64, a, b, tol float64) Result1D {
	if !(a < b) {
		panic(fmt.Sprintf("optimize: invalid bracket [%v, %v]", a, b))
	}
	if tol <= 0 {
		tol = 1e-8
	}
	evals := 0
	bestX, bestF := math.NaN(), math.Inf(1)
	eval := func(x float64) float64 {
		evals++
		v := f(x)
		if v < bestF {
			bestX, bestF = x, v
		}
		return v
	}

	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := eval(x1), eval(x2)
	for b-a > tol {
		if f1 <= f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = eval(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = eval(x2)
		}
	}
	x := 0.5 * (a + b)
	// Prefer the midpoint on ties (the historical answer on smooth
	// objectives); fall back to it only when no probe ever beat it —
	// including the all-infeasible case where bestX was never set.
	if fx := eval(x); fx <= bestF || math.IsNaN(bestX) {
		return Result1D{X: x, F: fx, Evals: evals}
	}
	return Result1D{X: bestX, F: bestF, Evals: evals}
}

// Brent minimizes f over [a, b] using Brent's method (golden section
// with parabolic interpolation acceleration), to x-tolerance tol.
func Brent(f func(float64) float64, a, b, tol float64) Result1D {
	if !(a < b) {
		panic(fmt.Sprintf("optimize: invalid bracket [%v, %v]", a, b))
	}
	if tol <= 0 {
		tol = 1e-8
	}
	const cgold = 0.3819660112501051
	const zeps = 1e-18
	evals := 0
	eval := func(x float64) float64 { evals++; return f(x) }

	x := a + cgold*(b-a)
	w, v := x, x
	fx := eval(x)
	fw, fv := fx, fx
	var d, e float64

	for iter := 0; iter < 200; iter++ {
		xm := 0.5 * (a + b)
		tol1 := tol*math.Abs(x) + zeps
		tol2 := 2 * tol1
		if math.Abs(x-xm) <= tol2-0.5*(b-a) {
			break
		}
		useGolden := true
		if math.Abs(e) > tol1 {
			// Parabolic fit through (v,fv), (w,fw), (x,fx).
			r := (x - w) * (fx - fv)
			q := (x - v) * (fx - fw)
			p := (x-v)*q - (x-w)*r
			q = 2 * (q - r)
			if q > 0 {
				p = -p
			}
			q = math.Abs(q)
			etmp := e
			e = d
			if math.Abs(p) < math.Abs(0.5*q*etmp) && p > q*(a-x) && p < q*(b-x) {
				d = p / q
				u := x + d
				if u-a < tol2 || b-u < tol2 {
					d = math.Copysign(tol1, xm-x)
				}
				useGolden = false
			}
		}
		if useGolden {
			if x >= xm {
				e = a - x
			} else {
				e = b - x
			}
			d = cgold * e
		}
		var u float64
		if math.Abs(d) >= tol1 {
			u = x + d
		} else {
			u = x + math.Copysign(tol1, d)
		}
		fu := eval(u)
		if fu <= fx {
			if u >= x {
				a = x
			} else {
				b = x
			}
			v, w, x = w, x, u
			fv, fw, fx = fw, fx, fu
		} else {
			if u < x {
				a = u
			} else {
				b = u
			}
			if fu <= fw || w == x {
				v, fv = w, fw
				w, fw = u, fu
			} else if fu <= fv || v == x || v == w {
				v, fv = u, fu
			}
		}
	}
	return Result1D{X: x, F: fx, Evals: evals}
}

// Workers normalizes a parallelism degree: values <= 0 mean "all
// cores" (runtime.GOMAXPROCS(0)); 1 means sequential execution on the
// caller's goroutine.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ParallelFor runs body(i) for i in [0, n) on up to `workers`
// goroutines (work-stealing by atomic counter). With workers <= 1 it
// degenerates to a plain loop on the caller's goroutine. body must be
// safe for concurrent invocation when workers > 1. It is the one
// worker pool shared by the grid scans, the sharded Monte Carlo
// simulators and the experiments harness.
func ParallelFor(n, workers int, body func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(i)
			}
		}()
	}
	wg.Wait()
}

// GridScan1D minimizes f over [a, b] by evaluating n+1 uniformly
// spaced points and then refining around the best point with `refine`
// further rounds, each shrinking the window by the grid spacing. It is
// robust to multimodality (up to grid resolution), which matters for
// the paper's EJ(t∞) profiles whose optimum can jump between local
// minima as b changes (Table 2 shows exactly such jumps).
func GridScan1D(f func(float64) float64, a, b float64, n, refine int) Result1D {
	return GridScan1DPar(f, a, b, n, refine, 1)
}

// GridScan1DPar is GridScan1D with each round's grid evaluated by up
// to `workers` goroutines (<= 0 means all cores). f must be safe for
// concurrent calls when workers > 1. Results are bit-identical for
// every worker count: the grid points are fixed per round and the
// incumbent reduction always runs sequentially in index order.
func GridScan1DPar(f func(float64) float64, a, b float64, n, refine, workers int) Result1D {
	if !(a < b) || n < 2 {
		panic(fmt.Sprintf("optimize: invalid grid scan [%v, %v] n=%d", a, b, n))
	}
	workers = Workers(workers)
	evals := 0
	bestX, bestF := a, math.Inf(1)
	lo, hi := a, b
	vals := make([]float64, n+1)
	for round := 0; round <= refine; round++ {
		h := (hi - lo) / float64(n)
		ParallelFor(n+1, workers, func(i int) {
			vals[i] = f(lo + float64(i)*h)
		})
		evals += n + 1
		for i := 0; i <= n; i++ {
			x := lo + float64(i)*h
			if v := vals[i]; v < bestF || (v == bestF && x < bestX) {
				bestX, bestF = x, v
			}
		}
		lo = math.Max(a, bestX-h)
		hi = math.Min(b, bestX+h)
		if hi <= lo {
			break
		}
	}
	return Result1D{X: bestX, F: bestF, Evals: evals}
}

// GridScan1DSweep is GridScan1D in sorted-query sweep mode: instead of
// one objective call per grid point, each refinement round hands the
// whole ascending grid to fb in contiguous chunks (one chunk per
// worker), so batch-capable objectives — the ECDF prefix-sum kernels —
// can answer a round in one O(n + G) sweep. fb must be pointwise
// (fb(xs)[i] depends only on xs[i]) and, with workers != 1, safe for
// concurrent calls; under those contracts the returned result is
// bit-identical to GridScan1DPar over the equivalent scalar objective
// at every worker count.
func GridScan1DSweep(fb func(xs []float64) []float64, a, b float64, n, refine, workers int) Result1D {
	if !(a < b) || n < 2 {
		panic(fmt.Sprintf("optimize: invalid grid scan [%v, %v] n=%d", a, b, n))
	}
	workers = Workers(workers)
	evals := 0
	bestX, bestF := a, math.Inf(1)
	lo, hi := a, b
	grid := make([]float64, n+1)
	vals := make([]float64, n+1)
	for round := 0; round <= refine; round++ {
		h := (hi - lo) / float64(n)
		for i := 0; i <= n; i++ {
			grid[i] = lo + float64(i)*h
		}
		chunks := workers
		if chunks > n+1 {
			chunks = n + 1
		}
		if chunks <= 1 {
			copy(vals, fb(grid))
		} else {
			per := (n + chunks) / chunks // ⌈(n+1)/chunks⌉
			ParallelFor(chunks, chunks, func(w int) {
				loI := w * per
				hiI := loI + per
				if hiI > n+1 {
					hiI = n + 1
				}
				if loI >= hiI {
					return
				}
				copy(vals[loI:hiI], fb(grid[loI:hiI]))
			})
		}
		evals += n + 1
		for i := 0; i <= n; i++ {
			x := lo + float64(i)*h
			if v := vals[i]; v < bestF || (v == bestF && x < bestX) {
				bestX, bestF = x, v
			}
		}
		lo = math.Max(a, bestX-h)
		hi = math.Min(b, bestX+h)
		if hi <= lo {
			break
		}
	}
	return Result1D{X: bestX, F: bestF, Evals: evals}
}

// GridScan2D minimizes f over the rectangle [ax, bx] × [ay, by] with
// an (nx+1) × (ny+1) scan refined `refine` times around the incumbent.
func GridScan2D(f func(x, y float64) float64, ax, bx, ay, by float64, nx, ny, refine int) Result2D {
	return GridScan2DPar(f, ax, bx, ay, by, nx, ny, refine, 1)
}

// GridScan2DPar is GridScan2D with each round's rows fanned across up
// to `workers` goroutines (<= 0 means all cores). f must be safe for
// concurrent calls when workers > 1; results are bit-identical for
// every worker count (sequential row-major reduction).
func GridScan2DPar(f func(x, y float64) float64, ax, bx, ay, by float64, nx, ny, refine, workers int) Result2D {
	if !(ax < bx) || !(ay < by) || nx < 2 || ny < 2 {
		panic(fmt.Sprintf("optimize: invalid 2D grid scan [%v,%v]x[%v,%v]", ax, bx, ay, by))
	}
	workers = Workers(workers)
	evals := 0
	bestX, bestY, bestF := ax, ay, math.Inf(1)
	lox, hix, loy, hiy := ax, bx, ay, by
	vals := make([]float64, (nx+1)*(ny+1))
	for round := 0; round <= refine; round++ {
		hx := (hix - lox) / float64(nx)
		hy := (hiy - loy) / float64(ny)
		ParallelFor(nx+1, workers, func(i int) {
			x := lox + float64(i)*hx
			for j := 0; j <= ny; j++ {
				vals[i*(ny+1)+j] = f(x, loy+float64(j)*hy)
			}
		})
		evals += (nx + 1) * (ny + 1)
		for i := 0; i <= nx; i++ {
			for j := 0; j <= ny; j++ {
				if v := vals[i*(ny+1)+j]; v < bestF {
					bestX, bestY, bestF = lox+float64(i)*hx, loy+float64(j)*hy, v
				}
			}
		}
		lox = math.Max(ax, bestX-hx)
		hix = math.Min(bx, bestX+hx)
		loy = math.Max(ay, bestY-hy)
		hiy = math.Min(by, bestY+hy)
		if hix <= lox || hiy <= loy {
			break
		}
	}
	return Result2D{X: bestX, Y: bestY, F: bestF, Evals: evals}
}

// GridScan2DSweep is GridScan2D in row-sweep mode: each grid row
// (fixed x, the full ascending y grid) is answered by one frow call,
// and rows fan across up to `workers` goroutines. This is the natural
// shape for the delayed-resubmission surface, where a whole row shares
// one shift = t0 and the ECDF cross-term kernel can answer the row in
// a single merged walk. frow must be pointwise per row (result j
// depends only on (x, ys[j])), must not retain or modify ys, and must
// be safe for concurrent calls when workers != 1; the reduction is the
// same sequential row-major pass as GridScan2DPar, so results are
// bit-identical to it over the equivalent scalar objective at every
// worker count.
func GridScan2DSweep(frow func(x float64, ys []float64) []float64, ax, bx, ay, by float64, nx, ny, refine, workers int) Result2D {
	if !(ax < bx) || !(ay < by) || nx < 2 || ny < 2 {
		panic(fmt.Sprintf("optimize: invalid 2D grid scan [%v,%v]x[%v,%v]", ax, bx, ay, by))
	}
	workers = Workers(workers)
	evals := 0
	bestX, bestY, bestF := ax, ay, math.Inf(1)
	lox, hix, loy, hiy := ax, bx, ay, by
	ys := make([]float64, ny+1)
	vals := make([]float64, (nx+1)*(ny+1))
	for round := 0; round <= refine; round++ {
		hx := (hix - lox) / float64(nx)
		hy := (hiy - loy) / float64(ny)
		for j := 0; j <= ny; j++ {
			ys[j] = loy + float64(j)*hy
		}
		ParallelFor(nx+1, workers, func(i int) {
			copy(vals[i*(ny+1):(i+1)*(ny+1)], frow(lox+float64(i)*hx, ys))
		})
		evals += (nx + 1) * (ny + 1)
		for i := 0; i <= nx; i++ {
			for j := 0; j <= ny; j++ {
				if v := vals[i*(ny+1)+j]; v < bestF {
					bestX, bestY, bestF = lox+float64(i)*hx, loy+float64(j)*hy, v
				}
			}
		}
		lox = math.Max(ax, bestX-hx)
		hix = math.Min(bx, bestX+hx)
		loy = math.Max(ay, bestY-hy)
		hiy = math.Min(by, bestY+hy)
		if hix <= lox || hiy <= loy {
			break
		}
	}
	return Result2D{X: bestX, Y: bestY, F: bestF, Evals: evals}
}

// NelderMead minimizes a 2-D objective starting from (x0, y0) with
// initial simplex scale `scale`, for at most maxIter iterations or
// until the simplex function spread falls below tol. Infeasible
// regions may be encoded as +Inf. The search restarts from the
// incumbent with a 10× smaller simplex up to three times, which
// un-sticks simplices collapsed against a constraint boundary.
func NelderMead(f func(x, y float64) float64, x0, y0, scale, tol float64, maxIter int) Result2D {
	if scale <= 0 {
		panic(fmt.Sprintf("optimize: scale must be positive, got %v", scale))
	}
	best := nelderMeadOnce(f, x0, y0, scale, tol, maxIter)
	for i := 0; i < 3; i++ {
		scale /= 10
		r := nelderMeadOnce(f, best.X, best.Y, scale, tol, maxIter)
		r.Evals += best.Evals
		if r.F < best.F {
			best = r
		} else {
			best.Evals = r.Evals
			break
		}
	}
	return best
}

func nelderMeadOnce(f func(x, y float64) float64, x0, y0, scale, tol float64, maxIter int) Result2D {
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 500
	}
	type vertex struct {
		x, y, f float64
	}
	evals := 0
	eval := func(x, y float64) float64 { evals++; return f(x, y) }

	simplex := [3]vertex{
		{x0, y0, eval(x0, y0)},
		{x0 + scale, y0, eval(x0+scale, y0)},
		{x0, y0 + scale, eval(x0, y0+scale)},
	}
	sortSimplex := func() {
		for i := 1; i < 3; i++ {
			for j := i; j > 0 && simplex[j].f < simplex[j-1].f; j-- {
				simplex[j], simplex[j-1] = simplex[j-1], simplex[j]
			}
		}
	}
	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	for iter := 0; iter < maxIter; iter++ {
		sortSimplex()
		best, worst := simplex[0], simplex[2]
		if !math.IsInf(worst.f, 1) && math.Abs(worst.f-best.f) < tol {
			break
		}
		// Centroid of all but worst.
		cx := (simplex[0].x + simplex[1].x) / 2
		cy := (simplex[0].y + simplex[1].y) / 2

		rx, ry := cx+alpha*(cx-worst.x), cy+alpha*(cy-worst.y)
		fr := eval(rx, ry)
		switch {
		case fr < best.f:
			ex, ey := cx+gamma*(rx-cx), cy+gamma*(ry-cy)
			fe := eval(ex, ey)
			if fe < fr {
				simplex[2] = vertex{ex, ey, fe}
			} else {
				simplex[2] = vertex{rx, ry, fr}
			}
		case fr < simplex[1].f:
			simplex[2] = vertex{rx, ry, fr}
		default:
			kx, ky := cx+rho*(worst.x-cx), cy+rho*(worst.y-cy)
			fk := eval(kx, ky)
			if fk < worst.f {
				simplex[2] = vertex{kx, ky, fk}
			} else {
				for i := 1; i < 3; i++ {
					simplex[i].x = best.x + sigma*(simplex[i].x-best.x)
					simplex[i].y = best.y + sigma*(simplex[i].y-best.y)
					simplex[i].f = eval(simplex[i].x, simplex[i].y)
				}
			}
		}
	}
	sortSimplex()
	return Result2D{X: simplex[0].x, Y: simplex[0].y, F: simplex[0].f, Evals: evals}
}

// MinimizeRobust2D combines a coarse grid scan with a Nelder–Mead
// polish: the scan locates the basin, the simplex refines within it.
// This is the default optimizer for EJ(t0, t∞).
func MinimizeRobust2D(f func(x, y float64) float64, ax, bx, ay, by float64) Result2D {
	return MinimizeRobust2DPar(f, ax, bx, ay, by, 1)
}

// MinimizeRobust2DPar is MinimizeRobust2D with the coarse scan fanned
// across up to `workers` goroutines; the (cheap) simplex polish stays
// sequential, so results are bit-identical for every worker count.
func MinimizeRobust2DPar(f func(x, y float64) float64, ax, bx, ay, by float64, workers int) Result2D {
	coarse := GridScan2DPar(f, ax, bx, ay, by, 40, 40, 2, workers)
	return robustPolish(f, coarse, ax, bx, ay, by)
}

// MinimizeRobust2DSweep is MinimizeRobust2D with the coarse scan in
// row-sweep mode (see GridScan2DSweep) and the Nelder–Mead polish on
// the scalar objective f. frow must agree pointwise with f; under that
// contract the result is bit-identical to MinimizeRobust2DPar.
func MinimizeRobust2DSweep(f func(x, y float64) float64, frow func(x float64, ys []float64) []float64, ax, bx, ay, by float64, workers int) Result2D {
	coarse := GridScan2DSweep(frow, ax, bx, ay, by, 40, 40, 2, workers)
	return robustPolish(f, coarse, ax, bx, ay, by)
}

// robustPolish runs the shared Nelder–Mead refinement step of the
// MinimizeRobust2D family and keeps the better of scan and polish.
func robustPolish(f func(x, y float64) float64, coarse Result2D, ax, bx, ay, by float64) Result2D {
	scale := math.Max((bx-ax)/80, (by-ay)/80)
	polish := NelderMead(f, coarse.X, coarse.Y, scale, 1e-9, 300)
	polish.Evals += coarse.Evals
	if polish.F <= coarse.F {
		return polish
	}
	coarse.Evals = polish.Evals
	return coarse
}
