package optimize

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGoldenSectionQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x - 3.7) * (x - 3.7) }
	r := GoldenSection(f, 0, 10, 1e-10)
	if math.Abs(r.X-3.7) > 1e-8 {
		t.Fatalf("argmin %v, want 3.7", r.X)
	}
	if r.F > 1e-15 {
		t.Fatalf("min value %v", r.F)
	}
	if r.Evals <= 0 {
		t.Fatal("evals not counted")
	}
}

func TestGoldenSectionBoundaryMin(t *testing.T) {
	// Monotone increasing: minimum at the left edge.
	r := GoldenSection(func(x float64) float64 { return x }, 2, 9, 1e-9)
	if math.Abs(r.X-2) > 1e-6 {
		t.Fatalf("argmin %v, want 2", r.X)
	}
}

func TestBrentMatchesGolden(t *testing.T) {
	f := func(x float64) float64 { return math.Cos(x) + x*x/50 }
	g := GoldenSection(f, 0, 8, 1e-12)
	b := Brent(f, 0, 8, 1e-12)
	if math.Abs(g.X-b.X) > 1e-6 {
		t.Fatalf("golden %v vs brent %v", g.X, b.X)
	}
	if b.Evals >= g.Evals {
		t.Logf("brent used %d evals vs golden %d (expected fewer, not fatal)", b.Evals, g.Evals)
	}
}

func TestBrentSharpValley(t *testing.T) {
	f := func(x float64) float64 { return math.Abs(x - 1.234567) }
	r := Brent(f, -5, 5, 1e-12)
	if math.Abs(r.X-1.234567) > 1e-6 {
		t.Fatalf("argmin %v", r.X)
	}
}

func TestGridScan1DMultimodal(t *testing.T) {
	// Two valleys: x=2 (depth -1) and x=7 (depth -3). Golden section
	// may fall in the wrong one; the grid scan must find x=7.
	f := func(x float64) float64 {
		return -1*math.Exp(-(x-2)*(x-2)) - 3*math.Exp(-(x-7)*(x-7))
	}
	r := GridScan1D(f, 0, 10, 100, 3)
	if math.Abs(r.X-7) > 0.01 {
		t.Fatalf("argmin %v, want ~7", r.X)
	}
}

func TestGridScan1DPlateauInf(t *testing.T) {
	// Infeasible region marked +Inf left of 4.
	f := func(x float64) float64 {
		if x < 4 {
			return math.Inf(1)
		}
		return (x - 5) * (x - 5)
	}
	r := GridScan1D(f, 0, 10, 50, 4)
	if math.Abs(r.X-5) > 0.01 {
		t.Fatalf("argmin %v, want 5", r.X)
	}
	if math.IsInf(r.F, 1) {
		t.Fatal("failed to escape infeasible plateau")
	}
}

// TestGoldenSectionPlateauIncumbent is the regression test for the
// midpoint bug: on a narrow feasible window inside a +Inf plateau the
// final bracket midpoint can be infeasible even though interior probes
// were finite. GoldenSection must report the incumbent.
func TestGoldenSectionPlateauIncumbent(t *testing.T) {
	f := func(x float64) float64 {
		if x < 6.1 || x > 6.2 {
			return math.Inf(1)
		}
		return x
	}
	r := GoldenSection(f, 0, 10, 2)
	if r.F != f(r.X) {
		t.Fatalf("F=%v inconsistent with f(X)=%v", r.F, f(r.X))
	}
	// With tol=2 the bracket stops wide; the only way to report a
	// finite F is to return the best probe seen, if any was feasible.
	if !math.IsInf(r.F, 1) && !(r.X >= 6.1 && r.X <= 6.2) {
		t.Fatalf("finite F=%v at infeasible X=%v", r.F, r.X)
	}
}

// TestGoldenSectionIncumbentProperty checks, on randomized plateau
// objectives (the documented t0 < t∞ < 2·t0 encoding is exactly such a
// shape), that GoldenSection and Brent return the minimum of the
// points they actually evaluated, and that GoldenSection is never
// worse than +Inf when a dense GridScan1D proves the feasible window
// overlaps its probes.
func TestGoldenSectionIncumbentProperty(t *testing.T) {
	prop := func(rawLo, rawW, rawM float64) bool {
		lo := math.Mod(math.Abs(rawLo), 8)        // plateau edge in [0, 8)
		w := math.Mod(math.Abs(rawW), 2) + 0.05   // feasible width
		mid := lo + math.Mod(math.Abs(rawM), 1)*w // minimum inside window
		obj := func(x float64) float64 {
			if x < lo || x > lo+w {
				return math.Inf(1)
			}
			return (x - mid) * (x - mid)
		}
		check := func(r Result1D, seen []float64) bool {
			if r.F != obj(r.X) && !(math.IsInf(r.F, 1) && math.IsInf(obj(r.X), 1)) {
				return false
			}
			best := math.Inf(1)
			for _, v := range seen {
				if v < best {
					best = v
				}
			}
			return r.F <= best
		}
		var seenG []float64
		g := GoldenSection(func(x float64) float64 {
			v := obj(x)
			seenG = append(seenG, v)
			return v
		}, 0, 10, 1e-9)
		var seenB []float64
		b := Brent(func(x float64) float64 {
			v := obj(x)
			seenB = append(seenB, v)
			return v
		}, 0, 10, 1e-9)
		s := GridScan1D(obj, 0, 10, 400, 4)
		// The grid scan always lands in the window (w >= 0.05 > 10/400).
		if math.IsInf(s.F, 1) {
			return false
		}
		return check(g, seenG) && check(b, seenB)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestGridScanParDeterminism pins the parallel scans bit-identical to
// the sequential ones for several worker counts, on a multimodal
// objective with plateau ties (the tie-break path must reduce in the
// same order regardless of scheduling).
func TestGridScanParDeterminism(t *testing.T) {
	f1 := func(x float64) float64 {
		if x > 3 && x < 4 {
			return -2 // plateau of ties
		}
		return math.Cos(3*x) + x*x/40
	}
	want1 := GridScan1D(f1, 0, 10, 97, 3)
	f2 := func(x, y float64) float64 {
		return math.Cos(3*x)*math.Sin(2*y) + (x*x+y*y)/50
	}
	want2 := GridScan2D(f2, -5, 5, -5, 5, 31, 29, 3)
	wantR := MinimizeRobust2D(f2, -5, 5, -5, 5)
	for _, workers := range []int{0, 2, 3, 8} {
		if got := GridScan1DPar(f1, 0, 10, 97, 3, workers); got != want1 {
			t.Fatalf("GridScan1DPar(workers=%d) = %+v, want %+v", workers, got, want1)
		}
		if got := GridScan2DPar(f2, -5, 5, -5, 5, 31, 29, 3, workers); got != want2 {
			t.Fatalf("GridScan2DPar(workers=%d) = %+v, want %+v", workers, got, want2)
		}
		if got := MinimizeRobust2DPar(f2, -5, 5, -5, 5, workers); got != wantR {
			t.Fatalf("MinimizeRobust2DPar(workers=%d) = %+v, want %+v", workers, got, wantR)
		}
	}
}

func TestGridScan2D(t *testing.T) {
	f := func(x, y float64) float64 {
		return (x-1.5)*(x-1.5) + (y+2.5)*(y+2.5)
	}
	r := GridScan2D(f, -10, 10, -10, 10, 30, 30, 4)
	if math.Abs(r.X-1.5) > 0.01 || math.Abs(r.Y+2.5) > 0.01 {
		t.Fatalf("argmin (%v, %v)", r.X, r.Y)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x, y float64) float64 {
		return (1-x)*(1-x) + 100*(y-x*x)*(y-x*x)
	}
	r := NelderMead(f, -1.2, 1, 0.5, 1e-14, 2000)
	if math.Abs(r.X-1) > 1e-3 || math.Abs(r.Y-1) > 1e-3 {
		t.Fatalf("argmin (%v, %v), want (1,1)", r.X, r.Y)
	}
}

func TestNelderMeadWithInfeasibleRegion(t *testing.T) {
	// Constrained: feasible iff x < y < 2x (the delayed-strategy
	// constraint shape), minimize distance to (3, 4.5).
	f := func(x, y float64) float64 {
		if !(x < y && y < 2*x) {
			return math.Inf(1)
		}
		return (x-3)*(x-3) + (y-4.5)*(y-4.5)
	}
	r := NelderMead(f, 3.1, 4.0, 0.2, 1e-12, 1000)
	if math.Abs(r.X-3) > 1e-3 || math.Abs(r.Y-4.5) > 1e-3 {
		t.Fatalf("argmin (%v, %v), want (3, 4.5)", r.X, r.Y)
	}
}

func TestMinimizeRobust2D(t *testing.T) {
	// Multimodal with the global basin off-center.
	f := func(x, y float64) float64 {
		return -2*math.Exp(-((x-7)*(x-7)+(y-3)*(y-3))/4) -
			1*math.Exp(-((x-2)*(x-2)+(y-8)*(y-8))/4)
	}
	r := MinimizeRobust2D(f, 0, 10, 0, 10)
	if math.Abs(r.X-7) > 0.05 || math.Abs(r.Y-3) > 0.05 {
		t.Fatalf("argmin (%v, %v), want (7, 3)", r.X, r.Y)
	}
}

func TestOptimizerFindsQuadraticMinProperty(t *testing.T) {
	f := func(rawC float64) bool {
		c := math.Mod(math.Abs(rawC), 8) + 1 // minimum in (1, 9)
		obj := func(x float64) float64 { return (x - c) * (x - c) }
		g := GoldenSection(obj, 0, 10, 1e-10)
		b := Brent(obj, 0, 10, 1e-10)
		s := GridScan1D(obj, 0, 10, 64, 5)
		return math.Abs(g.X-c) < 1e-6 && math.Abs(b.X-c) < 1e-6 && math.Abs(s.X-c) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	id := func(x float64) float64 { return x }
	id2 := func(x, y float64) float64 { return x + y }
	for _, fn := range []func(){
		func() { GoldenSection(id, 5, 5, 1e-8) },
		func() { Brent(id, 2, 1, 1e-8) },
		func() { GridScan1D(id, 0, 1, 1, 0) },
		func() { GridScan2D(id2, 0, 0, 0, 1, 10, 10, 1) },
		func() { NelderMead(id2, 0, 0, -1, 1e-8, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkGoldenSection(b *testing.B) {
	f := func(x float64) float64 { return (x - 3.7) * (x - 3.7) }
	for i := 0; i < b.N; i++ {
		GoldenSection(f, 0, 10, 1e-10)
	}
}

func BenchmarkBrent(b *testing.B) {
	f := func(x float64) float64 { return (x - 3.7) * (x - 3.7) }
	for i := 0; i < b.N; i++ {
		Brent(f, 0, 10, 1e-10)
	}
}

func BenchmarkNelderMead(b *testing.B) {
	f := func(x, y float64) float64 {
		return (1-x)*(1-x) + 100*(y-x*x)*(y-x*x)
	}
	for i := 0; i < b.N; i++ {
		NelderMead(f, -1.2, 1, 0.5, 1e-12, 500)
	}
}

// pointwiseWrap turns a scalar objective into the batch form the sweep
// modes consume.
func pointwiseWrap(f func(float64) float64) func(xs []float64) []float64 {
	return func(xs []float64) []float64 {
		out := make([]float64, len(xs))
		for i, x := range xs {
			out[i] = f(x)
		}
		return out
	}
}

// TestGridScan1DSweepMatchesPar pins the sweep-mode contract: over a
// pointwise batch objective, GridScan1DSweep returns exactly the
// GridScan1DPar result at every worker count — including on a
// multimodal objective with an +Inf plateau.
func TestGridScan1DSweepMatchesPar(t *testing.T) {
	objs := []func(float64) float64{
		func(x float64) float64 { return (x - 3.7) * (x - 3.7) },
		func(x float64) float64 { return math.Cos(3*x) + x/10 },
		func(x float64) float64 {
			if x < 1 {
				return math.Inf(1)
			}
			return math.Sin(5*x) + (x-4)*(x-4)/10
		},
	}
	for oi, f := range objs {
		want := GridScan1DPar(f, 0, 10, 57, 3, 1)
		for _, workers := range []int{1, 2, 3, 8} {
			got := GridScan1DSweep(pointwiseWrap(f), 0, 10, 57, 3, workers)
			if got.X != want.X || got.F != want.F || got.Evals != want.Evals {
				t.Fatalf("obj %d workers %d: sweep %+v != par %+v", oi, workers, got, want)
			}
		}
	}
}

// TestGridScan2DSweepMatchesPar pins the 2D row-sweep contract against
// GridScan2DPar, including the MinimizeRobust2DSweep composition.
func TestGridScan2DSweepMatchesPar(t *testing.T) {
	f := func(x, y float64) float64 {
		if y > 2*x {
			return math.Inf(1) // the delayed-constraint shape
		}
		return (x-3)*(x-3) + math.Abs(y-1.4) + math.Sin(x*y)/5
	}
	frow := func(x float64, ys []float64) []float64 {
		out := make([]float64, len(ys))
		for j, y := range ys {
			out[j] = f(x, y)
		}
		return out
	}
	want := GridScan2DPar(f, 0.1, 8, 0.2, 2, 33, 21, 2, 1)
	for _, workers := range []int{1, 2, 5} {
		got := GridScan2DSweep(frow, 0.1, 8, 0.2, 2, 33, 21, 2, workers)
		if got != want {
			t.Fatalf("workers %d: 2D sweep %+v != par %+v", workers, got, want)
		}
	}
	wantR := MinimizeRobust2DPar(f, 0.1, 8, 0.2, 2, 1)
	for _, workers := range []int{1, 4} {
		gotR := MinimizeRobust2DSweep(f, frow, 0.1, 8, 0.2, 2, workers)
		if gotR != wantR {
			t.Fatalf("workers %d: robust sweep %+v != par %+v", workers, gotR, wantR)
		}
	}
}

// TestGridScan1DSweepPanicsLikePar keeps the sweep's precondition
// surface aligned with the scalar scans.
func TestGridScan1DSweepPanicsLikePar(t *testing.T) {
	for _, fn := range []func(){
		func() { GridScan1DSweep(pointwiseWrap(func(x float64) float64 { return x }), 5, 1, 10, 1, 1) },
		func() { GridScan1DSweep(pointwiseWrap(func(x float64) float64 { return x }), 0, 1, 1, 1, 1) },
		func() {
			GridScan2DSweep(func(x float64, ys []float64) []float64 { return make([]float64, len(ys)) },
				1, 0, 0, 1, 10, 10, 1, 1)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
