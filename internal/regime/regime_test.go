package regime

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"gridstrat/internal/core"
	"gridstrat/internal/trace"
)

const testSeed = 20090611

func testSpec(t *testing.T, kind Kind) Spec {
	t.Helper()
	ds, err := trace.LookupDataset("2006-IX")
	if err != nil {
		t.Fatalf("LookupDataset: %v", err)
	}
	return Spec{Kind: kind, Dataset: ds, Seed: testSeed}
}

func traceCSV(t *testing.T, s Spec) []byte {
	t.Helper()
	tr, err := s.Trace()
	if err != nil {
		t.Fatalf("%s: Trace: %v", s.Name(), err)
	}
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, tr); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	return buf.Bytes()
}

// TestTraceDeterministic: the same spec must serialize to the exact
// same bytes on every generation — the seeding contract the replay
// conformance harness depends on.
func TestTraceDeterministic(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			spec := testSpec(t, kind)
			first := traceCSV(t, spec)
			if again := traceCSV(t, spec); !bytes.Equal(first, again) {
				t.Fatal("two sequential generations of the same spec differ")
			}
		})
	}
}

// TestTraceDeterministicUnderConcurrency generates the same spec from
// many goroutines at once (meaningful under -race): the generator must
// not share mutable state across calls, so parallelism can never
// change the bytes.
func TestTraceDeterministicUnderConcurrency(t *testing.T) {
	const workers = 8
	for _, kind := range Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			spec := testSpec(t, kind)
			want := traceCSV(t, spec)
			var wg sync.WaitGroup
			got := make([][]byte, workers)
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					got[i] = traceCSV(t, spec)
				}(i)
			}
			wg.Wait()
			for i, g := range got {
				if !bytes.Equal(want, g) {
					t.Fatalf("worker %d produced different bytes", i)
				}
			}
		})
	}
}

// TestStreamsDistinct: different kinds at the same seed, and the same
// kind at different seeds, must not reuse a latency stream. A collision
// would mean the per-purpose salts or the SplitMix64 seeding collapsed.
func TestStreamsDistinct(t *testing.T) {
	seen := map[string]string{}
	for _, kind := range Kinds() {
		for _, seed := range []uint64{testSeed, testSeed + 1} {
			spec := testSpec(t, kind)
			spec.Seed = seed
			key := string(traceCSV(t, spec))
			id := fmt.Sprintf("%s seed=%d", kind, seed)
			if prev, dup := seen[key]; dup {
				t.Errorf("%s generated the identical trace as %s", id, prev)
			}
			seen[key] = id
		}
	}
}

// TestTraceReplayStreamsIndependent: the generated trace and the
// replay grid must share the regime state path but draw independent
// latencies — the replay is a second realization of the same regime,
// not a byte-replay of the trace.
func TestTraceReplayStreamsIndependent(t *testing.T) {
	spec := testSpec(t, Switching)
	p, err := NewProcess(spec)
	if err != nil {
		t.Fatalf("NewProcess: %v", err)
	}
	traceDraw := func(salt uint64) float64 {
		lat, _ := p.Draw(1000, core.NewSeededRand(spec.Seed+salt))
		return lat
	}
	if a, b := traceDraw(saltTrace), traceDraw(saltReplay); a == b {
		t.Errorf("trace and replay streams produced the same first draw (%v)", a)
	}
}

// TestValidate rejects the malformed specs a caller could plausibly
// construct.
func TestValidate(t *testing.T) {
	good := testSpec(t, HeavyTail)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"unknown kind", func(s *Spec) { s.Kind = numKinds }},
		{"negative probes", func(s *Spec) { s.Probes = -1 }},
		{"negative horizon", func(s *Spec) { s.Horizon = -1 }},
		{"tail fraction > 1", func(s *Spec) { s.TailFrac = 1.5 }},
		{"non-positive tail alpha", func(s *Spec) { s.TailAlpha = -2 }},
		{"storm scale < 1", func(s *Spec) { s.Kind = Switching; s.StormScale = 0.5 }},
		{"empty dataset", func(s *Spec) { s.Dataset = trace.DatasetSpec{} }},
	}
	for _, tc := range cases {
		spec := good
		tc.mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", tc.name)
		}
	}
}

// stationarityProbes is sized so the generated campaign spans several
// days of simulated time: enough windows for drift and trend detection
// to have power.
const stationarityProbes = 3000

// TestStationarityFlagsAdversarialRegimes is the regression guard
// wiring the generator to the trace-analysis layer: the switching and
// diurnal regimes must look non-stationary through
// trace.AnalyzeStationarity, and the stationary control must not.
func TestStationarityFlagsAdversarialRegimes(t *testing.T) {
	report := func(kind Kind) trace.StationarityReport {
		spec := testSpec(t, kind)
		spec.Probes = stationarityProbes
		tr, err := spec.Trace()
		if err != nil {
			t.Fatalf("%s: Trace: %v", kind, err)
		}
		// 2 h windows resolve the ~2 h storm sojourns; longer windows
		// average the storms away and lose the contrast.
		rep, err := trace.AnalyzeStationarity(tr, 2*3600)
		if err != nil {
			t.Fatalf("%s: AnalyzeStationarity: %v", kind, err)
		}
		t.Logf("%s: windows=%d meanDrift=%.3f rhoDrift=%.3f trendP=%.3f",
			kind, rep.Windows, rep.MeanDrift, rep.RhoDrift, rep.MeanTrend.PValue)
		return rep
	}

	control := report(Stationary)
	switching := report(Switching)
	diurnal := report(Diurnal)

	// The adversarial regimes must show materially more window-mean
	// drift than the control — and clear an absolute bar the control
	// stays under (observed at this seed: control 0.38, switching
	// 1.10, diurnal 1.01).
	const driftBar, controlBar = 0.7, 0.5
	if switching.MeanDrift <= driftBar {
		t.Errorf("switching mean drift %.3f not above %.1f", switching.MeanDrift, driftBar)
	}
	if diurnal.MeanDrift <= driftBar {
		t.Errorf("diurnal mean drift %.3f not above %.1f", diurnal.MeanDrift, driftBar)
	}
	if control.MeanDrift >= controlBar {
		t.Errorf("stationary control mean drift %.3f above %.1f — control is broken", control.MeanDrift, controlBar)
	}
	if switching.MeanDrift < 2*control.MeanDrift {
		t.Errorf("switching drift %.3f not clearly above control %.3f", switching.MeanDrift, control.MeanDrift)
	}
	if diurnal.MeanDrift < 2*control.MeanDrift {
		t.Errorf("diurnal drift %.3f not clearly above control %.3f", diurnal.MeanDrift, control.MeanDrift)
	}
	// Switching storms also move the outlier ratio between windows.
	if switching.RhoDrift <= control.RhoDrift {
		t.Errorf("switching rho drift %.3f not above control %.3f", switching.RhoDrift, control.RhoDrift)
	}
}

// TestOutageTraceCarriesFaults: outage windows must leave visible
// scars in the generated trace (faults/outliers inside the windows),
// otherwise the model fitted on it would never learn the regime's
// correlated downtime.
func TestOutageTraceCarriesFaults(t *testing.T) {
	spec := testSpec(t, Outage)
	p, err := NewProcess(spec)
	if err != nil {
		t.Fatalf("NewProcess: %v", err)
	}
	if len(p.Outages()) == 0 {
		t.Fatal("outage regime precomputed no outage windows")
	}
	tr, err := p.GenerateTrace()
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	inWindow, bad := 0, 0
	for _, r := range tr.Records {
		if !p.InOutage(r.Submit) {
			continue
		}
		inWindow++
		if r.Status == trace.StatusCompleted {
			bad++
		}
	}
	if inWindow == 0 {
		t.Skip("no probes landed inside an outage window at this seed")
	}
	if bad > 0 {
		t.Errorf("%d/%d probes submitted during an outage completed anyway", bad, inWindow)
	}
}
