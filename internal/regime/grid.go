package regime

import (
	"math"

	"gridstrat/internal/core"
	"gridstrat/internal/gridsim"
	"gridstrat/internal/stats"
	"gridstrat/internal/trace"
)

// neverStartFactor: a copy whose draw says "never starts" is given a
// finite dispatch delay far beyond any strategy timeout (timeouts are
// bounded by the trace timeout), so the event engine never carries an
// infinite timestamp while the client still only recovers the copy by
// cancelling it.
const neverStartFactor = 4

// GridSites is the replay grid's CE count. The grid is deliberately
// latency-process-dominated: plenty of slots per site and light
// background load, so a probe's observed latency is the regime law
// itself (plus outage queueing), matching the model's view of latency
// as an exogenous process rather than re-deriving it from emergent
// queueing the law was not calibrated to.
const GridSites = 4

// Grid builds a replay grid driven by the regime: probe-facing latency
// follows the same seeded state path as the generated trace (storms,
// outages, diurnal phase) with an independent draw stream, background
// arrivals follow the regime's rate factor through the event engine,
// and synchronized outage windows take every CE down for real so
// queued jobs wait them out.
func (s Spec) Grid() (*gridsim.Grid, *Process, error) {
	p, err := NewProcess(s)
	if err != nil {
		return nil, nil, err
	}
	g, err := p.NewGrid()
	if err != nil {
		return nil, nil, err
	}
	return g, p, nil
}

// NewGrid instantiates the replay grid for an existing process (see
// Spec.Grid).
func (p *Process) NewGrid() (*gridsim.Grid, error) {
	spec := p.spec
	draw := core.NewSeededRand(spec.Seed + saltReplay)
	cfg := gridsim.GridConfig{
		// The latency process replaces the stationary WMS delay; the
		// closure owns its stream, so the grid's internal randomness
		// (background arrivals) cannot shift the regime draws.
		WMSLatency: func(now float64) float64 {
			lat, st := p.Draw(now, draw)
			if st != trace.StatusCompleted {
				return neverStartFactor * trace.DefaultTimeout
			}
			return lat
		},
		RateModulator: p.RateFactor,
		InfoStaleness: 300,
		Seed:          int64(spec.Seed + saltGrid),
	}
	for i := 0; i < GridSites; i++ {
		cfg.Sites = append(cfg.Sites, gridsim.SiteConfig{
			Name:  "ce" + string(rune('a'+i)),
			Slots: 64,
			// Light background churn: the event engine stays busy and
			// the rate modulator is exercised, but queue waits stay
			// negligible next to the regime latency itself.
			BackgroundInterArrival: 240,
			BackgroundRuntime:      stats.NewShifted(stats.NewLogNormal(5.5, 1.0), 30),
		})
	}
	g, err := gridsim.New(cfg)
	if err != nil {
		return nil, err
	}
	// Correlated downtime: every site fails together for each window
	// of the precomputed path, so queued work genuinely stalls.
	for _, iv := range p.outages {
		if err := g.ScheduleGridOutage(iv.Start, iv.End-iv.Start); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// ReplaySLO runs a parameterized strategy against a fresh replay grid
// of the regime and scores it against a per-task latency deadline: the
// achieved hit rate counts a task as meeting the SLO only if it
// started within the deadline, with abandoned tasks counted as misses.
type ReplayResult struct {
	Outcome  gridsim.StrategyOutcome
	HitRate  float64 // fraction of tasks with J <= deadline
	Tasks    int     // tasks replayed (started + abandoned)
	MaxJ     float64 // slowest started task
	Deadline float64
}

// Replay executes the strategy on a fresh grid built from the process
// and scores per-task outcomes against the deadline.
func (p *Process) Replay(spec gridsim.StrategySpec, tasks, maxRounds int, runtime, deadline float64) (ReplayResult, error) {
	g, err := p.NewGrid()
	if err != nil {
		return ReplayResult{}, err
	}
	outcomes, agg, err := gridsim.RunStrategyDetailed(g, spec, tasks, maxRounds, runtime)
	if err != nil {
		return ReplayResult{}, err
	}
	res := ReplayResult{Outcome: agg, Tasks: len(outcomes), Deadline: deadline}
	hits := 0
	for _, o := range outcomes {
		if o.Started && o.J <= deadline {
			hits++
		}
		if o.Started {
			res.MaxJ = math.Max(res.MaxJ, o.J)
		}
	}
	if res.Tasks > 0 {
		res.HitRate = float64(hits) / float64(res.Tasks)
	}
	return res, nil
}
