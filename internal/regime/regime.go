// Package regime generates adversarial, non-stationary latency
// regimes for the planner to be validated against. The paper's 12
// EGEE datasets are static snapshots; production grids exhibit the
// regimes this package synthesizes deliberately: heavy-tailed latency
// bodies, diurnal load swings, bursty regime switching between calm
// and storm states, and correlated outages where every CE fails at
// once.
//
// A Spec is fully seeded and deterministic. It yields two coupled
// products:
//
//   - Trace() — a probe-measurement trace drawn from the regime's
//     time-varying latency law, byte-identical for a given seed, for
//     the model-ingestion path;
//   - Grid() — a gridsim instance whose probe-facing latency follows
//     the *same* seeded regime path (same storm intervals, same outage
//     windows, same diurnal phase) with an independent draw stream,
//     for replaying a planned strategy against the regime the model
//     was fitted on.
//
// Randomness follows the PR 2 sharded-RNG convention: every use site
// gets its own SplitMix64 stream derived from the master seed plus a
// distinct stream salt, so the trace stream, the regime state path,
// and the replay draw stream never couple, and generating traces
// concurrently is race-free by construction.
package regime

import (
	"fmt"
	"math"
	"math/rand"

	"gridstrat/internal/core"
	"gridstrat/internal/stats"
	"gridstrat/internal/trace"
)

// Kind enumerates the adversarial workload regimes.
type Kind int

const (
	// Stationary is the control: the dataset's calibrated latency law,
	// unchanged over time. The planner's i.i.d. assumption holds.
	Stationary Kind = iota
	// HeavyTail mixes a Pareto tail into the latency body: a fraction
	// of probes pay a power-law price, fattening high quantiles far
	// beyond the lognormal calibration.
	HeavyTail
	// Diurnal modulates latency scale and background arrival rate with
	// a 24 h sinusoid — the paper's §3.1 "fast-evolving" load pattern.
	Diurnal
	// Switching is a two-state Markov-modulated regime: exponential
	// sojourns alternate between a calm state (the calibrated law) and
	// a storm state with scaled latencies, boosted outlier probability
	// and boosted background arrivals.
	Switching
	// Outage injects correlated CE downtime bursts: during a window,
	// every site is down at once and no submission can start, so
	// client-side redundancy is useless until the grid recovers.
	Outage
	numKinds
)

var kindNames = map[Kind]string{
	Stationary: "stationary",
	HeavyTail:  "heavytail",
	Diurnal:    "diurnal",
	Switching:  "switching",
	Outage:     "outage",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseKind maps a regime name back to its Kind.
func ParseKind(s string) (Kind, error) {
	for k, n := range kindNames {
		if n == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("regime: unknown regime %q", s)
}

// Kinds returns all regimes in declaration order (the conformance
// harness's row order).
func Kinds() []Kind {
	out := make([]Kind, 0, int(numKinds))
	for k := Kind(0); k < numKinds; k++ {
		out = append(out, k)
	}
	return out
}

// Stream salts: every random stream the package consumes is derived
// as core.NewSeededRand(spec.Seed + salt). SplitMix64 decorrelates
// adjacent seeds, so nearby salts are fine; what matters is that each
// use site owns a distinct stream.
const (
	saltStates = 0x51a7e5 // regime state path (storm + outage intervals)
	saltTrace  = 0x7eace  // trace-generation draws
	saltReplay = 0x3e91a  // grid-replay latency draws
	saltGrid   = 0x6e1d   // gridsim internal randomness (background load)
)

// faultShare is the fraction of non-starting probes recorded as
// middleware faults (detected before the timeout) rather than silent
// outliers — same convention as the calibrated dataset synthesizer.
const faultShare = 0.3

// probeSlots is the constant in-flight probe count of the monitoring
// campaign the trace generator replays.
const probeSlots = 25

// Spec fully parameterizes one regime over one calibration dataset.
// The zero value of every knob selects the per-kind default.
type Spec struct {
	Kind    Kind
	Dataset trace.DatasetSpec // calibration anchor (body moments, ρ)
	Probes  int               // trace length; 0 → Dataset.Probes
	Seed    uint64            // master seed; all streams derive from it

	// Horizon bounds the precomputed regime state path (seconds).
	// Beyond it the regime is calm with no outages. 0 → 14 days.
	Horizon float64

	// HeavyTail knobs.
	TailFrac  float64 // mixture weight of the Pareto tail; 0 → 0.12
	TailAlpha float64 // Pareto shape; 0 → 1.4 (infinite variance)

	// Diurnal knobs.
	DiurnalAmp float64 // relative amplitude of the sinusoid; 0 → 0.6

	// Switching knobs.
	CalmMean   float64 // mean calm sojourn (s); 0 → 6 h
	StormMean  float64 // mean storm sojourn (s); 0 → 2 h
	StormScale float64 // storm latency multiplier; 0 → 3
	StormRho   float64 // additive storm outlier probability; 0 → 0.15

	// Outage knobs.
	OutageGap float64 // mean gap between synchronized outages (s); 0 → 4 h
	OutageDur float64 // mean outage duration (s); 0 → 25 min
}

// withDefaults returns the spec with zero knobs replaced by the
// per-kind defaults.
func (s Spec) withDefaults() Spec {
	if s.Probes == 0 {
		s.Probes = s.Dataset.Probes
	}
	if s.Horizon == 0 {
		s.Horizon = 14 * 86400
	}
	if s.TailFrac == 0 {
		s.TailFrac = 0.12
	}
	if s.TailAlpha == 0 {
		s.TailAlpha = 1.4
	}
	if s.DiurnalAmp == 0 {
		s.DiurnalAmp = 0.6
	}
	if s.CalmMean == 0 {
		s.CalmMean = 6 * 3600
	}
	if s.StormMean == 0 {
		s.StormMean = 2 * 3600
	}
	if s.StormScale == 0 {
		s.StormScale = 3
	}
	if s.StormRho == 0 {
		s.StormRho = 0.15
	}
	if s.OutageGap == 0 {
		s.OutageGap = 4 * 3600
	}
	if s.OutageDur == 0 {
		s.OutageDur = 25 * 60
	}
	return s
}

// Validate checks the spec (after defaulting).
func (s Spec) Validate() error {
	d := s.withDefaults()
	if d.Kind < 0 || d.Kind >= numKinds {
		return fmt.Errorf("regime: unknown kind %d", int(d.Kind))
	}
	if d.Probes <= 0 {
		return fmt.Errorf("regime: non-positive probe count %d", d.Probes)
	}
	if d.Dataset.MeanBody <= 0 || d.Dataset.StdBody <= 0 {
		return fmt.Errorf("regime: dataset %q has no calibration moments", d.Dataset.Name)
	}
	if d.Horizon <= 0 {
		return fmt.Errorf("regime: non-positive horizon %v", d.Horizon)
	}
	if d.TailFrac < 0 || d.TailFrac >= 1 {
		return fmt.Errorf("regime: tail fraction %v outside [0, 1)", d.TailFrac)
	}
	if d.TailAlpha <= 1 {
		return fmt.Errorf("regime: Pareto shape %v must exceed 1 (finite mean)", d.TailAlpha)
	}
	if d.DiurnalAmp < 0 || d.DiurnalAmp >= 1 {
		return fmt.Errorf("regime: diurnal amplitude %v outside [0, 1)", d.DiurnalAmp)
	}
	if d.CalmMean <= 0 || d.StormMean <= 0 || d.StormScale < 1 {
		return fmt.Errorf("regime: invalid switching knobs calm=%v storm=%v scale=%v",
			d.CalmMean, d.StormMean, d.StormScale)
	}
	if d.StormRho < 0 || d.StormRho >= 1 {
		return fmt.Errorf("regime: storm outlier boost %v outside [0, 1)", d.StormRho)
	}
	if d.OutageGap <= 0 || d.OutageDur <= 0 {
		return fmt.Errorf("regime: invalid outage knobs gap=%v dur=%v", d.OutageGap, d.OutageDur)
	}
	rho := d.Dataset.Rho()
	if rho < 0 || rho >= 1 {
		return fmt.Errorf("regime: dataset %q implies invalid outlier ratio %v", d.Dataset.Name, rho)
	}
	return nil
}

// Name returns the canonical cell label, e.g. "2006-IX+switching".
func (s Spec) Name() string { return s.Dataset.Name + "+" + s.Kind.String() }

// interval is one half-open [Start, End) window of the state path.
type interval struct{ Start, End float64 }

func inAny(ivs []interval, t float64) bool {
	for _, iv := range ivs {
		if t >= iv.Start && t < iv.End {
			return true
		}
	}
	return false
}

// Process is an instantiated regime: the calibrated latency law plus
// the precomputed, seed-determined state path. Both the trace
// generator and the replay grid are built from the same Process, so
// they share storm intervals, outage windows and diurnal phase while
// drawing latencies from independent streams.
type Process struct {
	spec Spec
	body stats.Distribution // calibrated body law (below-timeout moments)
	tail stats.Distribution // Pareto tail (HeavyTail only)
	rho  float64            // baseline outlier probability

	storms  []interval // Switching: storm windows
	outages []interval // Outage: synchronized downtime windows
}

// NewProcess calibrates and instantiates the regime.
func NewProcess(spec Spec) (*Process, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.withDefaults()
	body, err := trace.BodyDistribution(spec.Dataset.MeanBody, spec.Dataset.StdBody, trace.DefaultTimeout)
	if err != nil {
		return nil, fmt.Errorf("regime: %s: %w", spec.Name(), err)
	}
	p := &Process{spec: spec, body: body, rho: spec.Dataset.Rho()}
	if spec.Kind == HeavyTail {
		// Tail draws start at the body mean: a tail event is never
		// cheaper than a typical probe, and with α < 2 the excess has
		// infinite variance.
		p.tail = stats.NewShifted(stats.NewPareto(spec.Dataset.MeanBody, spec.TailAlpha), trace.LatencyFloor)
	}

	// The state path consumes its own stream, so traces and replays
	// built from the same seed see the same storms and outages.
	rng := core.NewSeededRand(spec.Seed + saltStates)
	switch spec.Kind {
	case Switching:
		t := rng.ExpFloat64() * spec.CalmMean // start calm
		for t < spec.Horizon {
			storm := rng.ExpFloat64() * spec.StormMean
			p.storms = append(p.storms, interval{Start: t, End: t + storm})
			t += storm + rng.ExpFloat64()*spec.CalmMean
		}
	case Outage:
		t := rng.ExpFloat64() * spec.OutageGap
		for t < spec.Horizon {
			dur := 120 + rng.ExpFloat64()*spec.OutageDur
			p.outages = append(p.outages, interval{Start: t, End: t + dur})
			t += dur + rng.ExpFloat64()*spec.OutageGap
		}
	}
	return p, nil
}

// Spec returns the defaulted spec the process was built from.
func (p *Process) Spec() Spec { return p.spec }

// InStorm reports whether the switching regime is in its storm state
// at time t.
func (p *Process) InStorm(t float64) bool { return inAny(p.storms, t) }

// InOutage reports whether a synchronized outage covers time t.
func (p *Process) InOutage(t float64) bool { return inAny(p.outages, t) }

// Outages returns the synchronized downtime windows (nil for regimes
// without them).
func (p *Process) Outages() []struct{ Start, End float64 } {
	out := make([]struct{ Start, End float64 }, len(p.outages))
	for i, iv := range p.outages {
		out[i] = struct{ Start, End float64 }{iv.Start, iv.End}
	}
	return out
}

// scale is the latency multiplier applied to the above-floor part of a
// draw at time t: diurnal sinusoid or storm boost, 1 elsewhere.
func (p *Process) scale(t float64) float64 {
	switch p.spec.Kind {
	case Diurnal:
		return 1 + p.spec.DiurnalAmp*math.Sin(2*math.Pi*t/86400)
	case Switching:
		if p.InStorm(t) {
			return p.spec.StormScale
		}
	}
	return 1
}

// outlierProb is the probability that a submission at time t never
// starts (silent loss or terminal fault).
func (p *Process) outlierProb(t float64) float64 {
	rho := p.rho
	if p.spec.Kind == Switching && p.InStorm(t) {
		rho += p.spec.StormRho
		if rho > 0.9 {
			rho = 0.9
		}
	}
	return rho
}

// RateFactor is the background arrival-rate multiplier the regime
// imposes on the grid at time t: load swings with the diurnal phase
// and surges during storms. It is the GridConfig.RateModulator of the
// replay grid.
func (p *Process) RateFactor(t float64) float64 {
	switch p.spec.Kind {
	case Diurnal:
		return 1 + p.spec.DiurnalAmp*math.Sin(2*math.Pi*t/86400)
	case Switching:
		if p.InStorm(t) {
			return p.spec.StormScale
		}
	}
	return 1
}

// Draw samples one probe's fate at submission time t from the stream
// rng: its latency and terminal status, censored at the trace timeout
// exactly like a real monitoring campaign.
func (p *Process) Draw(t float64, rng *rand.Rand) (lat float64, st trace.Status) {
	// During a synchronized outage nothing starts: the probe is lost
	// (client timeout) or surfaces as a middleware fault.
	if p.InOutage(t) {
		if rng.Float64() < faultShare {
			return trace.LatencyFloor + rng.Float64()*(trace.DefaultTimeout-trace.LatencyFloor), trace.StatusFault
		}
		return trace.DefaultTimeout, trace.StatusOutlier
	}
	if rng.Float64() < p.outlierProb(t) {
		if rng.Float64() < faultShare {
			return trace.LatencyFloor + rng.Float64()*(trace.DefaultTimeout-trace.LatencyFloor), trace.StatusFault
		}
		return trace.DefaultTimeout, trace.StatusOutlier
	}
	x := p.body.Rand(rng)
	if p.spec.Kind == HeavyTail && rng.Float64() < p.spec.TailFrac {
		x = p.tail.Rand(rng)
	}
	// Scale the above-floor part: the middleware round trip itself is
	// incompressible, load only stretches the queueing on top of it.
	if s := p.scale(t); s != 1 {
		x = trace.LatencyFloor + (x-trace.LatencyFloor)*s
	}
	if x < trace.LatencyFloor {
		x = trace.LatencyFloor
	}
	if x >= trace.DefaultTimeout {
		return trace.DefaultTimeout, trace.StatusOutlier
	}
	return x, trace.StatusCompleted
}

// Trace synthesizes the regime's probe-measurement trace: a constant
// in-flight campaign whose per-probe fate is drawn from the
// time-varying law at each probe's actual submission instant. For a
// fixed Spec the result is byte-identical across runs — the campaign
// replay is sequential and consumes only the spec-derived streams.
func (s Spec) Trace() (*trace.Trace, error) {
	p, err := NewProcess(s)
	if err != nil {
		return nil, err
	}
	return p.GenerateTrace()
}

// GenerateTrace runs the probe campaign against the instantiated
// process (see Spec.Trace).
func (p *Process) GenerateTrace() (*trace.Trace, error) {
	spec := p.spec
	rng := core.NewSeededRand(spec.Seed + saltTrace)
	records := make([]trace.ProbeRecord, spec.Probes)
	free := make([]float64, probeSlots) // next instant each slot frees
	for i := range records {
		slot := 0
		for s := 1; s < len(free); s++ {
			if free[s] < free[slot] {
				slot = s
			}
		}
		submit := free[slot]
		lat, st := p.Draw(submit, rng)
		records[i] = trace.ProbeRecord{ID: i, Submit: submit, Latency: lat, Status: st}
		occupancy := lat
		if st == trace.StatusOutlier {
			occupancy = trace.DefaultTimeout
		}
		free[slot] += occupancy
	}
	t := &trace.Trace{Name: spec.Name(), Timeout: trace.DefaultTimeout, Records: records}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
