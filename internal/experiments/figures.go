package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"gridstrat/internal/core"
)

// Figure1 reproduces Figure 1: the cumulative density FR of
// non-outlier latencies and the cumulative histogram F̃R = (1-ρ)FR of
// all submissions, showing the ρ gap at the top.
func Figure1(c *Context) (*Figure, error) {
	m, err := c.Model(ReferenceDataset)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:     "figure1",
		Title:  "Cumulative density of latency on " + ReferenceDataset,
		XLabel: "seconds",
		YLabel: "cumulative density",
	}
	e := m.ECDF()
	hi := e.Quantile(0.999)
	var fr, ftilde []Point
	for i := 0; i <= 400; i++ {
		x := hi * float64(i) / 400
		fr = append(fr, Point{X: x, Y: e.Eval(x)})
		ftilde = append(ftilde, Point{X: x, Y: m.Ftilde(x)})
	}
	f.AddCurve("FR", fr)
	f.AddCurve("FR-tilde = (1-rho)FR", ftilde)
	f.Notes = append(f.Notes, fmt.Sprintf("rho = %.3f (outlier mass visible as the asymptotic gap)", m.Rho()))
	return f, nil
}

// Figure2 reproduces Figure 2: EJ(t∞) for collection sizes b = 1..10
// on the reference dataset.
func Figure2(c *Context) (*Figure, error) {
	m, err := c.Model(ReferenceDataset)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:     "figure2",
		Title:  "Expectation of execution time per collection size on " + ReferenceDataset,
		XLabel: "timeout value (s)",
		YLabel: "EJ (s)",
	}
	for b := 1; b <= 10; b++ {
		ts, ejs := core.MultipleCurve(m, b, 2000, 200)
		pts := make([]Point, len(ts))
		for i := range ts {
			y := ejs[i]
			if math.IsInf(y, 1) {
				y = math.NaN() // gnuplot-friendly gap
			}
			pts[i] = Point{X: ts[i], Y: y}
		}
		f.AddCurve(fmt.Sprintf("b=%d", b), pts)
	}
	return f, nil
}

// Figure3 reproduces Figure 3: the optimal EJ (top panel) and its σJ
// (bottom panel) versus the number of parallel jobs b, one curve per
// dataset. The two panels are emitted as two curve groups with
// suffixed labels.
func Figure3(c *Context) (*Figure, error) {
	f := &Figure{
		ID:     "figure3",
		Title:  "Minimal EJ and associated sigmaJ vs number of parallel jobs",
		XLabel: "number of jobs in parallel (b)",
		YLabel: "seconds",
	}
	for _, name := range c.DatasetOrder() {
		m, err := c.Model(name)
		if err != nil {
			return nil, err
		}
		var ej, sig []Point
		for b := 1; b <= 10; b++ {
			_, ev := core.OptimizeMultiple(m, b)
			ej = append(ej, Point{X: float64(b), Y: ev.EJ})
			sig = append(sig, Point{X: float64(b), Y: ev.Sigma})
		}
		f.AddCurve("EJ "+name, ej)
		f.AddCurve("sigmaJ "+name, sig)
	}
	return f, nil
}

// Figure4 reproduces Figure 4 as data: the deterministic timeline of
// the delayed strategy (submission and cancellation instants of the
// first copies) plus one simulated realization, which is the paper's
// illustration of the I0/I1 interval structure.
func Figure4(c *Context) (*Table, error) {
	m, err := c.Model(ReferenceDataset)
	if err != nil {
		return nil, err
	}
	p, _ := core.OptimizeDelayed(m)
	t := &Table{
		ID: "figure4",
		Title: fmt.Sprintf("Delayed strategy timeline at t0=%s t-inf=%s (I0 = two copies racing, I1 = one copy)",
			fmtS(p.T0), fmtS(p.TInf)),
		Headers: []string{"copy", "submitted", "canceled at", "I0 with next", "I1 alone"},
	}
	for k := 0; k < 5; k++ {
		sub := float64(k) * p.T0
		t.AddRow(
			fmt.Sprintf("%d", k+1),
			fmtS(sub),
			fmtS(sub+p.TInf),
			fmt.Sprintf("[%s, %s]", fmtS(sub+p.T0), fmtS(sub+p.TInf)),
			fmt.Sprintf("[%s, %s]", fmtS(sub+p.TInf), fmtS(sub+2*p.T0)),
		)
	}
	rng := rand.New(rand.NewSource(4))
	sim, err := core.SimulateDelayed(m, p, 1, rng)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"one sampled realization: J = %s after %.0f submissions", fmtS(sim.EJ), sim.MeanSubmissions))
	return t, nil
}

// Figure5 reproduces Figure 5: the EJ(t0, t∞) surface of the delayed
// strategy on the reference dataset. Curves are constant-t0 slices;
// infeasible points are omitted.
func Figure5(c *Context) (*Figure, error) {
	m, err := c.Model(ReferenceDataset)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:     "figure5",
		Title:  "EJ surface of the delayed strategy on " + ReferenceDataset,
		XLabel: "t-inf (s); one curve per t0",
		YLabel: "EJ (s)",
	}
	for t0 := 50.0; t0 <= 700; t0 += 50 {
		var pts []Point
		for tInf := t0 + 5; tInf <= 2*t0 && tInf <= 700; tInf += 5 {
			ej := core.EJDelayed(m, core.DelayedParams{T0: t0, TInf: tInf})
			if !math.IsInf(ej, 1) {
				pts = append(pts, Point{X: tInf, Y: ej})
			}
		}
		if len(pts) > 0 {
			f.AddCurve(fmt.Sprintf("t0=%.0f", t0), pts)
		}
	}
	p, ev := core.OptimizeDelayed(m)
	f.Notes = append(f.Notes, fmt.Sprintf(
		"surface minimum: EJ = %s at t0 = %s, t-inf = %s", fmtS(ev.EJ), fmtS(p.T0), fmtS(p.TInf)))
	return f, nil
}

// Figure6 reproduces Figure 6: minimal EJ versus the mean number of
// parallel copies, delayed strategy (ratio sweep) against multiple
// submission (b sweep).
func Figure6(c *Context) (*Figure, error) {
	m, err := c.Model(ReferenceDataset)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:     "figure6",
		Title:  "Minimal EJ vs mean number of parallel copies on " + ReferenceDataset,
		XLabel: "nb. of jobs in parallel",
		YLabel: "minimal EJ (s)",
	}
	var delayed []Point
	for _, ratio := range figureRatioSweep {
		_, ev := core.OptimizeDelayedRatio(m, ratio)
		delayed = append(delayed, Point{X: ev.Parallel, Y: ev.EJ})
	}
	f.AddCurve("delayed submission strategy", delayed)
	var multiple []Point
	for b := 1; b <= 5; b++ {
		_, ev := core.OptimizeMultiple(m, b)
		multiple = append(multiple, Point{X: float64(b), Y: ev.EJ})
	}
	f.AddCurve("multiple submissions strategy", multiple)
	return f, nil
}

var figureRatioSweep = []float64{1.02, 1.05, 1.1, 1.15, 1.2, 1.25, 1.3, 1.35, 1.4, 1.45, 1.5, 1.6, 1.7, 1.8, 1.9, 2.0}

// Figure7 reproduces Figure 7's message quantitatively: multiple
// submission can lower total grid occupancy when its time gain exceeds
// its copy count. The figure compares jobs-in-system over one
// single-resubmission expectation window.
func Figure7(c *Context) (*Table, error) {
	cc, err := c.Cost(ReferenceDataset)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "figure7",
		Title:   "Grid occupancy over one single-resubmission window T = EJ(b=1)",
		Headers: []string{"strategy", "copies", "busy fraction of T", "avg jobs on [0,T]"},
	}
	t.AddRow("single resubmission", "1", "100%", fmtF(1, 2))
	for _, b := range []int{2, 4} {
		_, ev, _ := cc.DeltaMultiple(b)
		frac := ev.EJ / cc.RefEJ
		t.AddRow(fmt.Sprintf("multiple (b=%d)", b), fmt.Sprintf("%d", b),
			fmt.Sprintf("%.1f%%", frac*100), fmtF(float64(b)*frac, 2))
	}
	t.Notes = append(t.Notes,
		"avg jobs below 1 means the speed-up outweighs the redundancy (the paper's T/4 vs T/2 illustration)")
	return t, nil
}

// Figure8 reproduces Figure 8: Δcost versus the mean number of
// parallel copies for both strategies.
func Figure8(c *Context) (*Figure, error) {
	m, err := c.Model(ReferenceDataset)
	if err != nil {
		return nil, err
	}
	cc, err := c.Cost(ReferenceDataset)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:     "figure8",
		Title:  "d-cost vs mean number of parallel copies on " + ReferenceDataset,
		XLabel: "nb. of jobs in parallel",
		YLabel: "d-cost",
	}
	var delayed []Point
	for _, ratio := range figureRatioSweep {
		_, ev := core.OptimizeDelayedRatio(m, ratio)
		delayed = append(delayed, Point{X: ev.Parallel, Y: cc.Delta(ev.EJ, ev.Parallel)})
	}
	f.AddCurve("delayed submission strategy", delayed)
	var multiple []Point
	for b := 1; b <= 5; b++ {
		_, ev, delta := cc.DeltaMultiple(b)
		_ = ev
		multiple = append(multiple, Point{X: float64(b), Y: delta})
	}
	f.AddCurve("multiple submissions strategy", multiple)
	res := cc.OptimizeDelayedCost()
	f.Notes = append(f.Notes, fmt.Sprintf(
		"global d-cost minimum %.3f at t0=%s t-inf=%s", res.Delta, fmtS(res.Params.T0), fmtS(res.Params.TInf)))
	return f, nil
}
