//go:build !race

package experiments

// raceEnabled reports whether the race detector is compiled in; heavy
// determinism tests that are already race-covered elsewhere skip under
// -race to keep the suite inside the default per-package timeout.
const raceEnabled = false
