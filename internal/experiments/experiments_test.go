package experiments

import (
	"io"
	"strconv"
	"strings"
	"testing"
)

// sharedCtx is built once: the context caches models and per-dataset
// optimizations, and several tests share the expensive ones.
var sharedCtx *Context

func ctx(t *testing.T) *Context {
	t.Helper()
	if sharedCtx == nil {
		c, err := NewContext()
		if err != nil {
			t.Fatal(err)
		}
		sharedCtx = c
	}
	return sharedCtx
}

// cell parses a table cell like "466s", "-53.9%", "1.03" into a float.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "s"), "%")
	s = strings.TrimPrefix(s, "+")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse cell %q: %v", s, err)
	}
	return v
}

func TestTable1Shape(t *testing.T) {
	tab, err := Table1(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := checkRows(tab); err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 13 {
		t.Fatalf("%d rows, want 13 datasets", len(tab.Rows))
	}
	reduced := 0
	for _, row := range tab.Rows {
		meanBody := cell(t, row[1])
		meanCens := cell(t, row[2])
		ej := cell(t, row[3])
		if !(meanCens > meanBody) {
			t.Errorf("%s: censored mean %v not above body mean %v", row[0], meanCens, meanBody)
		}
		// Paper's observation: EJ at the optimum is of the same order
		// as the non-outlier mean (within ~2x), despite outliers.
		if ej > 2*meanBody || ej < 0.3*meanBody {
			t.Errorf("%s: EJ %v wildly off the body mean %v", row[0], ej, meanBody)
		}
		if cell(t, row[6]) < 0 {
			reduced++
		}
	}
	// σJ < σR for the overwhelming majority of weeks (the paper sees
	// 12 of 13, with 2008-01 as the positive exception).
	if reduced < 10 {
		t.Errorf("only %d/13 weeks reduce sigma", reduced)
	}
}

func TestTable2Shape(t *testing.T) {
	tab, err := Table2(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := checkRows(tab); err != nil {
		t.Fatal(err)
	}
	// EJ column strictly decreasing in b; σJ decreasing from b=2.
	prevEJ, prevSigma := 0.0, 0.0
	for i, row := range tab.Rows {
		ej := cell(t, row[2])
		sigma := cell(t, row[3])
		if i > 0 {
			if ej > prevEJ {
				t.Errorf("EJ not decreasing at b=%s: %v > %v", row[0], ej, prevEJ)
			}
			if i > 1 && sigma > prevSigma {
				t.Errorf("sigma not decreasing at b=%s", row[0])
			}
		}
		prevEJ, prevSigma = ej, sigma
	}
	// The paper's headline: a factor ~2 drop by b=5.
	ej1 := cell(t, tab.Rows[0][2])
	ej5 := cell(t, tab.Rows[4][2])
	if ej5 > 0.75*ej1 {
		t.Errorf("EJ(b=5)=%v is not a strong improvement over EJ(1)=%v", ej5, ej1)
	}
	// Marginal improvement |dEJ/(b-1)| shrinking with b.
	d2 := -cell(t, tab.Rows[1][6])
	d10 := -cell(t, tab.Rows[9][6])
	if !(d10 < d2) {
		t.Errorf("marginal gain should shrink: b=2 %v%% vs b=10 %v%%", d2, d10)
	}
}

func TestTable3Shape(t *testing.T) {
	tab, err := Table3(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := checkRows(tab); err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		npar := cell(t, row[1])
		if npar < 1 || npar > 1.5 {
			t.Errorf("ratio %s: N// = %v outside [1, 1.5]", row[0], npar)
		}
		// Every ratio beats single resubmission (negative delta).
		if cell(t, row[5]) >= 0 {
			t.Errorf("ratio %s: no improvement over single", row[0])
		}
		// t∞/t0 constraint honored by the reported optima.
		ratio := cell(t, row[0])
		tInf, t0 := cell(t, row[2]), cell(t, row[3])
		if t0 <= 0 || tInf <= t0 || tInf > 2*t0+1 {
			t.Errorf("ratio %s: reported params violate constraint: t0=%v t∞=%v", row[0], t0, tInf)
		}
		_ = ratio
	}
}

func TestTable4Shape(t *testing.T) {
	tab, err := Table4(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := checkRows(tab); err != nil {
		t.Fatal(err)
	}
	// Delayed block: some Δcost < 1; multiple block: Δcost increasing
	// and > 1 for b >= 2.
	below := 0
	var prevMulti float64
	for _, row := range tab.Rows {
		if row[3] != "" && row[3] != "|" {
			if cell(t, row[3]) < 1 {
				below++
			}
		}
		if row[5] != "" {
			delta := cell(t, row[7])
			b := cell(t, row[5])
			if b >= 2 {
				if delta <= 1 {
					t.Errorf("multiple b=%v: Δcost %v should exceed 1", b, delta)
				}
				if delta < prevMulti {
					t.Errorf("multiple Δcost not increasing at b=%v", b)
				}
			}
			prevMulti = delta
		}
	}
	if below == 0 {
		t.Error("no delayed configuration achieves Δcost < 1")
	}
}

func TestTable5Shape(t *testing.T) {
	tab, err := Table5(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := checkRows(tab); err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 { // 11 weeks + pooled period
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		t0, tInf := cell(t, row[1]), cell(t, row[2])
		if !(t0 < tInf && tInf <= 2*t0) {
			t.Errorf("%s: params (%v, %v) violate constraint", row[0], t0, tInf)
		}
		delta := cell(t, row[3])
		if delta > 1.2 {
			t.Errorf("%s: suspicious optimal Δcost %v", row[0], delta)
		}
		if row[5] != "" {
			// Stability: the paper's observation is ≲15% degradation
			// within ±5 s.
			if cell(t, row[6]) > 15 {
				t.Errorf("%s: ±5s stability degradation %s%% too large", row[0], row[6])
			}
			if cell(t, row[5]) < delta {
				t.Errorf("%s: max below optimum", row[0])
			}
		}
	}
}

func TestTable6Shape(t *testing.T) {
	tab, err := Table6(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := checkRows(tab); err != nil {
		t.Fatal(err)
	}
	// 11 target weeks × 12 sources.
	if len(tab.Rows) != 11*12 {
		t.Fatalf("%d rows, want %d", len(tab.Rows), 11*12)
	}
	starred := 0
	for _, row := range tab.Rows {
		if strings.HasSuffix(row[1], "*") {
			starred++
		}
		if row[6] != "" {
			// Max divergence across all sources. The paper sees ≲13%
			// on its homogeneous weeks; our synthetic weeks differ
			// more in shape, so this is only a sanity bound.
			if cell(t, row[6]) > 300 {
				t.Errorf("target %s: max transfer penalty %s%%", row[0], row[6])
			}
		}
		if row[7] != "" {
			// The §7.2 operational claim: reusing the *previous
			// week's* parameters stays within a few percent of the
			// week's own optimum (paper: ≤6%).
			if cell(t, row[7]) > 15 {
				t.Errorf("target %s: previous-week transfer penalty %s%%", row[0], row[7])
			}
		}
	}
	if starred != 11 {
		t.Fatalf("%d own-optimum rows, want 11", starred)
	}
}

func TestFiguresHaveExpectedCurves(t *testing.T) {
	c := ctx(t)
	f1, err := Figure1(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1.Curves) != 2 {
		t.Fatalf("figure1 has %d curves", len(f1.Curves))
	}
	// F̃R must sit below FR everywhere (the ρ gap).
	fr, ftilde := f1.Curves[0].Points, f1.Curves[1].Points
	for i := range fr {
		if ftilde[i].Y > fr[i].Y+1e-12 {
			t.Fatalf("F̃R above FR at x=%v", fr[i].X)
		}
	}

	f2, err := Figure2(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Curves) != 10 {
		t.Fatalf("figure2 has %d curves", len(f2.Curves))
	}

	f5, err := Figure5(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.Curves) < 10 {
		t.Fatalf("figure5 has %d slices", len(f5.Curves))
	}

	f6, err := Figure6(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(f6.Curves) != 2 {
		t.Fatalf("figure6 has %d curves", len(f6.Curves))
	}
	// Delayed curve confined to N‖ < 2; multiple reaches b=5.
	for _, p := range f6.Curves[0].Points {
		if p.X < 1 || p.X >= 2 {
			t.Fatalf("delayed curve point at N‖=%v", p.X)
		}
	}

	f8, err := Figure8(c)
	if err != nil {
		t.Fatal(err)
	}
	// The delayed Δcost curve must dip below 1 somewhere.
	min := 2.0
	for _, p := range f8.Curves[0].Points {
		if p.Y < min {
			min = p.Y
		}
	}
	if min >= 1 {
		t.Fatalf("figure8 delayed curve never dips below 1 (min %v)", min)
	}
}

func TestFigure4And7Tables(t *testing.T) {
	c := ctx(t)
	f4, err := Figure4(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.Rows) != 5 {
		t.Fatalf("figure4 has %d rows", len(f4.Rows))
	}
	f7, err := Figure7(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(f7.Rows) != 3 {
		t.Fatalf("figure7 has %d rows", len(f7.Rows))
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:      "tablex",
		Title:   "demo",
		Headers: []string{"a", "bee"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	out := tab.Render()
	if !strings.Contains(out, "TABLEX — demo") {
		t.Fatalf("missing title: %q", out)
	}
	if !strings.Contains(out, "note: a note") {
		t.Fatal("missing note")
	}
	// Title, header, separator, two rows, note.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("unexpected line count %d: %q", len(lines), out)
	}
}

func TestFigureRendering(t *testing.T) {
	f := &Figure{ID: "figx", Title: "demo", XLabel: "x", YLabel: "y"}
	f.AddCurve("c1", []Point{{1, 2}, {3, 4}})
	out := f.Render()
	if !strings.Contains(out, "# curve: c1") || !strings.Contains(out, "1\t2") {
		t.Fatalf("bad figure output: %q", out)
	}
}

// TestRunAllParallelMatchesSequential pins the end-to-end determinism
// contract of the parallel harness: every artifact is byte-identical
// whether the suite runs sequentially or fanned across workers (the
// generators share only the Context's mutex-guarded caches, and the
// sharded Monte Carlo replays are worker-count-independent).
func TestRunAllParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("two full RunAll passes are slow; parallel RunAll is still race-checked via the facade test")
	}
	if raceEnabled {
		t.Skip("byte-equality is asserted without -race; the race detector covers parallel RunAll via the root facade test")
	}
	c, err := NewContext()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := RunAll(c, io.Discard, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunAll(c, io.Discard, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("artifact counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].ID != par[i].ID {
			t.Fatalf("artifact order differs at %d: %s vs %s", i, seq[i].ID, par[i].ID)
		}
		if seq[i].Content != par[i].Content {
			t.Errorf("artifact %s differs between sequential and parallel runs", seq[i].ID)
		}
	}
}

// TestRunAllWorkerPool exercises the artifact worker pool with an
// explicit worker count over a prefix of the suite — cheap enough to
// run under -race, where it is the targeted check that concurrent
// generators sharing the Context's caches are safe (GOMAXPROCS may be
// 1, but the race detector tracks the interleavings regardless).
func TestRunAllWorkerPool(t *testing.T) {
	c := ctx(t)
	gens := generators(c)[:5]
	arts, err := runGenerators(gens, io.Discard, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != len(gens) {
		t.Fatalf("got %d artifacts, want %d", len(arts), len(gens))
	}
	for i, a := range arts {
		if a.ID != gens[i].id {
			t.Fatalf("artifact %d is %s, want %s (input order must be preserved)", i, a.ID, gens[i].id)
		}
		if a.Content == "" {
			t.Fatalf("artifact %s is empty", a.ID)
		}
	}
	// A failing generator surfaces deterministically, by input order.
	boom := append([]gen{}, gens[:2]...)
	boom = append(boom, gen{"boom-a", func() (string, error) { return "", io.ErrUnexpectedEOF }})
	boom = append(boom, gen{"boom-b", func() (string, error) { return "", io.ErrClosedPipe }})
	if _, err := runGenerators(boom, io.Discard, 4); err == nil || !strings.Contains(err.Error(), "boom-a") {
		t.Fatalf("err = %v, want the first failure in input order (boom-a)", err)
	}
}

func TestContextCaching(t *testing.T) {
	c := ctx(t)
	m1, err := c.Model(ReferenceDataset)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := c.Model(ReferenceDataset)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("model not cached")
	}
	if _, err := c.Model("nope"); err == nil {
		t.Fatal("unknown dataset should error")
	}
	if _, err := c.Cost("nope"); err == nil {
		t.Fatal("unknown dataset should error")
	}
	if _, err := c.CostOptimum("nope"); err == nil {
		t.Fatal("unknown dataset should error")
	}
}
