// Package experiments regenerates every table and figure of the
// paper's evaluation from the calibrated synthetic trace sets: Tables
// 1–6 and Figures 1–8 of "Modeling User Submission Strategies on
// Production Grids" (HPDC'09). Each artifact is produced as a
// plain-text table or a gnuplot-ready data series so the shapes can be
// compared directly with the published ones (see EXPERIMENTS.md for
// the paper-vs-measured record).
package experiments

import (
	"fmt"
	"strings"
)

// Table is a titled text table.
type Table struct {
	ID      string // e.g. "table1"
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render lays the table out with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(t.ID), t.Title)

	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Point is one (x, y) sample of a curve.
type Point struct{ X, Y float64 }

// Curve is a named series of points.
type Curve struct {
	Label  string
	Points []Point
}

// Figure is a set of curves sharing axes.
type Figure struct {
	ID     string // e.g. "figure2"
	Title  string
	XLabel string
	YLabel string
	Curves []Curve
	Notes  []string
}

// AddCurve appends a curve.
func (f *Figure) AddCurve(label string, pts []Point) {
	f.Curves = append(f.Curves, Curve{Label: label, Points: pts})
}

// Render emits a gnuplot-style data block per curve: comment header,
// two columns, blank-line separated.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", strings.ToUpper(f.ID), f.Title)
	fmt.Fprintf(&b, "# x: %s, y: %s\n", f.XLabel, f.YLabel)
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "# note: %s\n", n)
	}
	for _, c := range f.Curves {
		fmt.Fprintf(&b, "\n# curve: %s\n", c.Label)
		for _, p := range c.Points {
			fmt.Fprintf(&b, "%g\t%g\n", p.X, p.Y)
		}
	}
	return b.String()
}

// fmtS formats seconds with no decimals (the paper's style).
func fmtS(v float64) string { return fmt.Sprintf("%.0fs", v) }

// fmtF formats a float with the given decimals.
func fmtF(v float64, dec int) string { return fmt.Sprintf("%.*f", dec, v) }

// fmtPct formats a ratio as a signed percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%+.1f%%", v*100) }
