//go:build race

package experiments

// See race_off_test.go.
const raceEnabled = true
