package experiments

import (
	"strings"
	"testing"
)

func TestExtDelayedRoutes(t *testing.T) {
	tab, err := ExtDelayedRoutes(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 13 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		exact := cell(t, row[3])
		mc := cell(t, row[4])
		// Exact route must track Monte Carlo within MC noise (~1%).
		if diff := (exact - mc) / mc; diff > 0.02 || diff < -0.02 {
			t.Errorf("%s: exact %v vs MC %v", row[0], exact, mc)
		}
		// The paper-CDF route sits at or below the exact value.
		if gap := cell(t, row[7]); gap > 0.5 {
			t.Errorf("%s: paper-CDF gap %v%% should be <= 0", row[0], gap)
		}
	}
}

func TestExtBootstrap(t *testing.T) {
	tab, err := ExtBootstrap(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		lo, point, hi := cell(t, row[2]), cell(t, row[1]), cell(t, row[3])
		if !(lo <= point && point <= hi) {
			t.Errorf("%s: point %v outside [%v, %v]", row[0], point, lo, hi)
		}
		// A full week of probes pins EJ to within tens of percent.
		if width := cell(t, row[4]); width > 50 {
			t.Errorf("%s: CI width %v%% too wide", row[0], width)
		}
	}
}

func TestExtMakespan(t *testing.T) {
	tab, err := ExtMakespan(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 13 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		single := cell(t, strings.TrimSuffix(row[1], "h"))
		b5 := cell(t, strings.TrimSuffix(row[3], "h"))
		if !(b5 < single) {
			t.Errorf("%s: b=5 makespan %vh not below single %vh", row[0], b5, single)
		}
		// Replication dominates on the makespan metric.
		if !strings.HasPrefix(row[5], "multiple") {
			t.Errorf("%s: best strategy %q, expected a multiple variant", row[0], row[5])
		}
	}
}

func TestExtStationarity(t *testing.T) {
	tab, err := ExtStationarity(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 13 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	strongTrends := 0
	for _, row := range tab.Rows {
		if cell(t, row[5]) < 0.01 {
			strongTrends++
		}
	}
	// The synthetic traces are i.i.d.: at most an occasional false
	// positive is acceptable.
	if strongTrends > 2 {
		t.Fatalf("%d/13 datasets flagged with strong trends", strongTrends)
	}
}
