package experiments

import (
	"fmt"
	"math/rand"

	"gridstrat/internal/core"
	"gridstrat/internal/trace"
	"gridstrat/internal/workload"
)

// The ext* artifacts go beyond the paper's printed evaluation: they
// quantify the delayed-formula discrepancy found during reproduction,
// the estimation uncertainty of a week of probes, the stationarity of
// the traces, and the application-makespan extension the paper's
// conclusion announces as future work.

// ExtDelayedRoutes compares the three evaluation routes of the
// delayed-resubmission expectation on every dataset: the exact law
// (validated by Monte Carlo), the paper's interval CDF formulas, and
// the printed Eq. 5 — measuring the paper's derivation slips.
func ExtDelayedRoutes(c *Context) (*Table, error) {
	t := &Table{
		ID:    "ext1-delayed-routes",
		Title: "Delayed EJ per evaluation route at the ratio-1.4 optimum (exact vs paper formulas)",
		Headers: []string{"week", "t0", "t-inf", "EJ exact", "EJ MC", "EJ paper-CDF", "EJ eq5",
			"gap CDF", "gap eq5"},
	}
	for _, name := range c.DatasetOrder() {
		m, err := c.Model(name)
		if err != nil {
			return nil, err
		}
		p, ev := core.OptimizeDelayedRatio(m, 1.4)
		rng := rand.New(rand.NewSource(2009))
		sim, err := core.SimulateDelayed(m, p, 60000, rng)
		if err != nil {
			return nil, err
		}
		paperCDF := core.EJDelayedPaper(m, p)
		eq5 := core.EJDelayedPaperEq5(m, p)
		t.AddRow(name, fmtS(p.T0), fmtS(p.TInf),
			fmtS(ev.EJ), fmtS(sim.EJ), fmtS(paperCDF), fmtS(eq5),
			fmtPct((paperCDF-ev.EJ)/ev.EJ), fmtPct((eq5-ev.EJ)/ev.EJ))
	}
	t.Notes = append(t.Notes,
		"exact route agrees with Monte Carlo; the paper's I0-interval formula over-counts success mass by F(t0)*F(t-n*t0) per interval, biasing its EJ low",
	)
	return t, nil
}

// ExtBootstrap reports percentile-bootstrap confidence intervals for
// the strategy expectations on the reference dataset — how well one
// campaign pins the quantities the user tunes on.
func ExtBootstrap(c *Context) (*Table, error) {
	m, err := c.Model(ReferenceDataset)
	if err != nil {
		return nil, err
	}
	cc, err := c.Cost(ReferenceDataset)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ext2-bootstrap",
		Title:   "95% bootstrap confidence intervals on " + ReferenceDataset + " (400 resamples)",
		Headers: []string{"quantity", "point", "lo", "hi", "rel width"},
	}
	rng := rand.New(rand.NewSource(404))
	ciS, err := core.BootstrapSingleEJ(m, cc.RefTimeout, 400, 0.95, rng)
	if err != nil {
		return nil, err
	}
	t.AddRow("EJ single @ opt t-inf", fmtS(ciS.Point), fmtS(ciS.Lo), fmtS(ciS.Hi),
		fmtPct((ciS.Hi-ciS.Lo)/ciS.Point))

	opt := cc.OptimizeDelayedCost()
	ciD, err := core.BootstrapDelayedEJ(m, opt.Params, 400, 0.95, rng)
	if err != nil {
		return nil, err
	}
	t.AddRow(fmt.Sprintf("EJ delayed @ (%.0fs, %.0fs)", opt.Params.T0, opt.Params.TInf),
		fmtS(ciD.Point), fmtS(ciD.Lo), fmtS(ciD.Hi), fmtPct((ciD.Hi-ciD.Lo)/ciD.Point))

	ciDelta, err := core.BootstrapStatistic(m, func(bm core.Model) float64 {
		v, err := core.DelayedEvaluate(bm, opt.Params)
		if err != nil {
			return 0
		}
		return cc.Delta(v.EJ, v.Parallel)
	}, 100, 0.95, rng)
	if err != nil {
		return nil, err
	}
	t.AddRow("d-cost delayed @ optimum", fmtF(ciDelta.Point, 3), fmtF(ciDelta.Lo, 3),
		fmtF(ciDelta.Hi, 3), fmtPct((ciDelta.Hi-ciDelta.Lo)/ciDelta.Point))
	t.Notes = append(t.Notes,
		"percentile bootstrap over completed latencies with binomial outlier redraw")
	return t, nil
}

// ExtMakespan extends the evaluation to application makespan: a
// latency-dominated bag of tasks under each strategy, per dataset.
func ExtMakespan(c *Context) (*Table, error) {
	app := workload.Application{Tasks: 500, WaveWidth: 100, Runtime: 120}
	t := &Table{
		ID: "ext3-makespan",
		Title: fmt.Sprintf("Analytic makespan of a %d-task application (%d-wide waves, %.0fs tasks)",
			app.Tasks, app.WaveWidth, app.Runtime),
		Headers: []string{"week", "single", "multiple b=2", "multiple b=5", "delayed", "best"},
	}
	for _, name := range c.DatasetOrder() {
		m, err := c.Model(name)
		if err != nil {
			return nil, err
		}
		ests, err := workload.Compare(app,
			workload.SingleStrategy(m),
			workload.MultipleStrategy(m, 2),
			workload.MultipleStrategy(m, 5),
			workload.DelayedStrategy(m))
		if err != nil {
			return nil, err
		}
		best := ests[0]
		for _, e := range ests[1:] {
			if e.Makespan < best.Makespan {
				best = e
			}
		}
		t.AddRow(name,
			fmtH(ests[0].Makespan), fmtH(ests[1].Makespan),
			fmtH(ests[2].Makespan), fmtH(ests[3].Makespan), best.Strategy)
	}
	t.Notes = append(t.Notes,
		"wave completion is the order statistic E[max J] + runtime; replication compresses the slowest-task tail hardest")
	return t, nil
}

// ExtStationarity reports the windowed drift/trend analysis per
// dataset: how (non-)stationary each trace is over its submit span.
func ExtStationarity(c *Context) (*Table, error) {
	t := &Table{
		ID:      "ext4-stationarity",
		Title:   "Windowed stationarity analysis (2 h windows over submit time)",
		Headers: []string{"week", "windows", "mean drift", "rho drift", "MK tau", "MK p", "Sen slope"},
	}
	for _, name := range c.DatasetOrder() {
		tr, err := c.Set.Get(name)
		if err != nil {
			return nil, err
		}
		rep, err := trace.AnalyzeStationarity(tr, 2*3600)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, fmt.Sprintf("%d", rep.Windows),
			fmtPct(rep.MeanDrift), fmtF(rep.RhoDrift, 3),
			fmtF(rep.MeanTrend.Tau, 2), fmtF(rep.MeanTrend.PValue, 3),
			fmtF(rep.TrendSlope, 1))
	}
	t.Notes = append(t.Notes,
		"synthetic traces are i.i.d. by construction, so MK p-values should not flag trends; live traces would")
	return t, nil
}

func fmtH(seconds float64) string { return fmt.Sprintf("%.2fh", seconds/3600) }
