package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Artifact is a rendered experiment output.
type Artifact struct {
	ID      string
	Content string
}

// RunAll regenerates every table and figure, in paper order. Progress
// lines go to progress (pass io.Discard to silence).
func RunAll(c *Context, progress io.Writer) ([]Artifact, error) {
	type gen struct {
		id  string
		run func() (string, error)
	}
	gens := []gen{
		{"table1", func() (string, error) { return renderTable(Table1(c)) }},
		{"figure1", func() (string, error) { return renderFigure(Figure1(c)) }},
		{"table2", func() (string, error) { return renderTable(Table2(c)) }},
		{"figure2", func() (string, error) { return renderFigure(Figure2(c)) }},
		{"figure3", func() (string, error) { return renderFigure(Figure3(c)) }},
		{"figure4", func() (string, error) { return renderTable(Figure4(c)) }},
		{"figure5", func() (string, error) { return renderFigure(Figure5(c)) }},
		{"table3", func() (string, error) { return renderTable(Table3(c)) }},
		{"figure6", func() (string, error) { return renderFigure(Figure6(c)) }},
		{"figure7", func() (string, error) { return renderTable(Figure7(c)) }},
		{"figure8", func() (string, error) { return renderFigure(Figure8(c)) }},
		{"table4", func() (string, error) { return renderTable(Table4(c)) }},
		{"table5", func() (string, error) { return renderTable(Table5(c)) }},
		{"table6", func() (string, error) { return renderTable(Table6(c)) }},
		// Extensions beyond the paper's printed evaluation.
		{"ext1-delayed-routes", func() (string, error) { return renderTable(ExtDelayedRoutes(c)) }},
		{"ext2-bootstrap", func() (string, error) { return renderTable(ExtBootstrap(c)) }},
		{"ext3-makespan", func() (string, error) { return renderTable(ExtMakespan(c)) }},
		{"ext4-stationarity", func() (string, error) { return renderTable(ExtStationarity(c)) }},
	}
	var out []Artifact
	for _, g := range gens {
		fmt.Fprintf(progress, "generating %s...\n", g.id)
		content, err := g.run()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", g.id, err)
		}
		out = append(out, Artifact{ID: g.id, Content: content})
	}
	return out, nil
}

// WriteAll runs everything and writes one file per artifact into dir
// (tables as .txt, figures as .dat).
func WriteAll(c *Context, dir string, progress io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	arts, err := RunAll(c, progress)
	if err != nil {
		return err
	}
	for _, a := range arts {
		ext := ".txt"
		if a.Content != "" && a.Content[0] == '#' {
			ext = ".dat"
		}
		path := filepath.Join(dir, a.ID+ext)
		if err := os.WriteFile(path, []byte(a.Content), 0o644); err != nil {
			return fmt.Errorf("experiments: writing %s: %w", path, err)
		}
		fmt.Fprintf(progress, "wrote %s\n", path)
	}
	return nil
}

func renderTable(t *Table, err error) (string, error) {
	if err != nil {
		return "", err
	}
	if err := checkRows(t); err != nil {
		return "", err
	}
	return t.Render(), nil
}

func renderFigure(f *Figure, err error) (string, error) {
	if err != nil {
		return "", err
	}
	if len(f.Curves) == 0 {
		return "", fmt.Errorf("experiments: %s has no curves", f.ID)
	}
	return f.Render(), nil
}
