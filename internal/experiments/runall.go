package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"gridstrat/internal/optimize"
)

// Artifact is a rendered experiment output.
type Artifact struct {
	ID      string
	Content string
}

// syncWriter serializes Write calls so concurrent generators can share
// one progress stream without interleaving partial lines.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// gen is one artifact generator of the evaluation suite.
type gen struct {
	id  string
	run func() (string, error)
}

// generators returns every table and figure of the evaluation, in
// paper order.
func generators(c *Context) []gen {
	return []gen{
		{"table1", func() (string, error) { return renderTable(Table1(c)) }},
		{"figure1", func() (string, error) { return renderFigure(Figure1(c)) }},
		{"table2", func() (string, error) { return renderTable(Table2(c)) }},
		{"figure2", func() (string, error) { return renderFigure(Figure2(c)) }},
		{"figure3", func() (string, error) { return renderFigure(Figure3(c)) }},
		{"figure4", func() (string, error) { return renderTable(Figure4(c)) }},
		{"figure5", func() (string, error) { return renderFigure(Figure5(c)) }},
		{"table3", func() (string, error) { return renderTable(Table3(c)) }},
		{"figure6", func() (string, error) { return renderFigure(Figure6(c)) }},
		{"figure7", func() (string, error) { return renderTable(Figure7(c)) }},
		{"figure8", func() (string, error) { return renderFigure(Figure8(c)) }},
		{"table4", func() (string, error) { return renderTable(Table4(c)) }},
		{"table5", func() (string, error) { return renderTable(Table5(c)) }},
		{"table6", func() (string, error) { return renderTable(Table6(c)) }},
		// Extensions beyond the paper's printed evaluation.
		{"ext1-delayed-routes", func() (string, error) { return renderTable(ExtDelayedRoutes(c)) }},
		{"ext2-bootstrap", func() (string, error) { return renderTable(ExtBootstrap(c)) }},
		{"ext3-makespan", func() (string, error) { return renderTable(ExtMakespan(c)) }},
		{"ext4-stationarity", func() (string, error) { return renderTable(ExtStationarity(c)) }},
	}
}

// RunAll regenerates every table and figure and returns them in paper
// order. The artifacts are independent (they share only the Context's
// mutex-guarded model/cost caches), so they are fanned across up to
// `workers` goroutines (<= 0 means all cores, 1 preserves the fully
// sequential behavior). Artifact contents are identical for every
// worker count: generation order affects only the progress lines,
// which go to progress (pass io.Discard to silence).
func RunAll(c *Context, progress io.Writer, workers int) ([]Artifact, error) {
	return runGenerators(generators(c), progress, workers)
}

// runGenerators executes a generator list on the shared worker pool
// and collects the artifacts in input order.
func runGenerators(gens []gen, progress io.Writer, workers int) ([]Artifact, error) {
	pw := &syncWriter{w: progress}
	out := make([]Artifact, len(gens))
	errs := make([]error, len(gens))
	do := func(i int) bool {
		g := gens[i]
		fmt.Fprintf(pw, "generating %s...\n", g.id)
		content, err := g.run()
		if err != nil {
			errs[i] = fmt.Errorf("experiments: %s: %w", g.id, err)
			return false
		}
		out[i] = Artifact{ID: g.id, Content: content}
		return true
	}
	if w := optimize.Workers(workers); w <= 1 {
		// Sequential runs keep their historical fail-fast: the first
		// failing artifact aborts the remaining (expensive) ones.
		for i := range gens {
			if !do(i) {
				return nil, errs[i]
			}
		}
	} else {
		optimize.ParallelFor(len(gens), w, func(i int) { do(i) })
		// Report the first failure in paper order, deterministically.
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// WriteAll runs everything on up to `workers` goroutines and writes
// one file per artifact into dir (tables as .txt, figures as .dat).
func WriteAll(c *Context, dir string, progress io.Writer, workers int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	arts, err := RunAll(c, progress, workers)
	if err != nil {
		return err
	}
	for _, a := range arts {
		ext := ".txt"
		if a.Content != "" && a.Content[0] == '#' {
			ext = ".dat"
		}
		path := filepath.Join(dir, a.ID+ext)
		if err := os.WriteFile(path, []byte(a.Content), 0o644); err != nil {
			return fmt.Errorf("experiments: writing %s: %w", path, err)
		}
		fmt.Fprintf(progress, "wrote %s\n", path)
	}
	return nil
}

func renderTable(t *Table, err error) (string, error) {
	if err != nil {
		return "", err
	}
	if err := checkRows(t); err != nil {
		return "", err
	}
	return t.Render(), nil
}

func renderFigure(f *Figure, err error) (string, error) {
	if err != nil {
		return "", err
	}
	if len(f.Curves) == 0 {
		return "", fmt.Errorf("experiments: %s has no curves", f.ID)
	}
	return f.Render(), nil
}
