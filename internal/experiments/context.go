package experiments

import (
	"fmt"
	"sync"

	"gridstrat/internal/core"
	"gridstrat/internal/trace"
)

// Context owns the synthesized trace sets and caches the derived
// models and per-dataset optimizations that several artifacts share
// (e.g. the single-resubmission optimum anchors Tables 1–6).
type Context struct {
	Set *trace.Set

	mu       sync.Mutex
	models   map[string]*core.EmpiricalModel
	costs    map[string]*core.CostContext
	costOpts map[string]core.CostResult
}

// NewContext synthesizes all paper datasets.
func NewContext() (*Context, error) {
	set, err := trace.SynthesizeAll()
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return &Context{
		Set:      set,
		models:   make(map[string]*core.EmpiricalModel),
		costs:    make(map[string]*core.CostContext),
		costOpts: make(map[string]core.CostResult),
	}, nil
}

// Model returns (and caches) the latency model of a dataset.
func (c *Context) Model(name string) (*core.EmpiricalModel, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.models[name]; ok {
		return m, nil
	}
	tr, err := c.Set.Get(name)
	if err != nil {
		return nil, err
	}
	m, err := core.ModelFromTrace(tr)
	if err != nil {
		return nil, err
	}
	c.models[name] = m
	return m, nil
}

// Cost returns (and caches) the cost context — the optimized
// single-resubmission baseline — of a dataset.
func (c *Context) Cost(name string) (*core.CostContext, error) {
	c.mu.Lock()
	if cc, ok := c.costs[name]; ok {
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()
	m, err := c.Model(name)
	if err != nil {
		return nil, err
	}
	cc, err := core.NewCostContext(m)
	if err != nil {
		return nil, fmt.Errorf("experiments: cost context for %s: %w", name, err)
	}
	c.mu.Lock()
	c.costs[name] = cc
	c.mu.Unlock()
	return cc, nil
}

// CostOptimum returns (and caches) the Δcost-optimal delayed
// parameters of a dataset — shared by Tables 5 and 6.
func (c *Context) CostOptimum(name string) (core.CostResult, error) {
	c.mu.Lock()
	if r, ok := c.costOpts[name]; ok {
		c.mu.Unlock()
		return r, nil
	}
	c.mu.Unlock()
	cc, err := c.Cost(name)
	if err != nil {
		return core.CostResult{}, err
	}
	r := cc.OptimizeDelayedCost()
	c.mu.Lock()
	c.costOpts[name] = r
	c.mu.Unlock()
	return r, nil
}

// ReferenceDataset is the trace the paper uses for Tables 2–4 and
// Figures 2, 5, 6, 8.
const ReferenceDataset = "2006-IX"

// DatasetOrder returns the canonical row order of Table 1.
func (c *Context) DatasetOrder() []string { return c.Set.Order }
