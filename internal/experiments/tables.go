package experiments

import (
	"fmt"

	"gridstrat/internal/core"
	"gridstrat/internal/trace"
)

// Table1 reproduces the paper's Table 1: per-dataset mean and standard
// deviation of the raw latency R (below the 10⁴ s censoring bound),
// the censored-mean lower bound, and the single-resubmission EJ and σJ
// at the optimal timeout, with the variability reduction Δσ.
func Table1(c *Context) (*Table, error) {
	t := &Table{
		ID:      "table1",
		Title:   "Mean and standard deviation of latency (R) and latency including resubmissions (J)",
		Headers: []string{"week", "mean<10^4", "mean with 10^4", "EJ", "sigmaR<10^4", "sigmaJ", "d-sigma"},
	}
	for _, name := range c.DatasetOrder() {
		tr, err := c.Set.Get(name)
		if err != nil {
			return nil, err
		}
		st := tr.ComputeStats()
		cc, err := c.Cost(name)
		if err != nil {
			return nil, err
		}
		m, err := c.Model(name)
		if err != nil {
			return nil, err
		}
		sigmaJ := core.SigmaSingle(m, cc.RefTimeout)
		dSigma := (sigmaJ - st.StdBody) / st.StdBody
		t.AddRow(name, fmtS(st.MeanBody), fmtS(st.MeanCensored), fmtS(cc.RefEJ),
			fmtS(st.StdBody), fmtS(sigmaJ), fmtPct(dSigma))
	}
	t.Notes = append(t.Notes,
		"EJ is Eq. 1 at the optimal t-inf; d-sigma compares sigmaJ with sigmaR of non-outlier latencies")
	return t, nil
}

// Table2 reproduces Table 2: multiple submission on the reference
// dataset for b = 1..20 — optimal timeout, best EJ, σJ, and the EJ/b
// deltas against b=1 and against b-1.
func Table2(c *Context) (*Table, error) {
	m, err := c.Model(ReferenceDataset)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "table2",
		Title: "Multiple submission on " + ReferenceDataset + ": optimal timeout and expectation per collection size",
		Headers: []string{"b", "opt t-inf", "best EJ", "sigmaJ",
			"dEJ/(b=1)", "db/(b=1)", "dEJ/(b-1)", "db/(b-1)"},
	}
	var ej1 float64
	var prevEJ float64
	for b := 1; b <= 20; b++ {
		tInf, ev := core.OptimizeMultiple(m, b)
		row := []string{
			fmt.Sprintf("%d", b), fmtS(tInf), fmtS(ev.EJ), fmtS(ev.Sigma),
		}
		if b == 1 {
			ej1 = ev.EJ
			row = append(row, "", "", "", "")
		} else {
			row = append(row,
				fmtPct((ev.EJ-ej1)/ej1),
				fmt.Sprintf("%d%%", b*100),
				fmtPct((ev.EJ-prevEJ)/prevEJ),
				fmtPct(1.0/float64(b-1)))
		}
		prevEJ = ev.EJ
		t.AddRow(row...)
	}
	return t, nil
}

// Table3 reproduces Table 3: the delayed strategy on the reference
// dataset with the ratio t∞/t0 imposed — resulting N‖, optimal
// parameters, minimal EJ and the improvement over single resubmission.
func Table3(c *Context) (*Table, error) {
	m, err := c.Model(ReferenceDataset)
	if err != nil {
		return nil, err
	}
	cc, err := c.Cost(ReferenceDataset)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "table3",
		Title:   fmt.Sprintf("Delayed resubmission on %s per imposed ratio (single resubmission EJ = %s)", ReferenceDataset, fmtS(cc.RefEJ)),
		Headers: []string{"t-inf/t0", "N//", "best t-inf", "best t0", "min EJ", "d(100%)"},
	}
	for _, ratio := range table3Ratios {
		p, ev := core.OptimizeDelayedRatio(m, ratio)
		t.AddRow(fmtF(ratio, 2), fmtF(ev.Parallel, 2), fmtS(p.TInf), fmtS(p.T0),
			fmtS(ev.EJ), fmtPct((ev.EJ-cc.RefEJ)/cc.RefEJ))
	}
	return t, nil
}

var table3Ratios = []float64{1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 1.9, 2.0}

// Table4 reproduces Table 4: Δcost of the delayed strategy per imposed
// ratio (left block) and of the multiple-submission strategy per b
// (right block), both on the reference dataset.
func Table4(c *Context) (*Table, error) {
	m, err := c.Model(ReferenceDataset)
	if err != nil {
		return nil, err
	}
	cc, err := c.Cost(ReferenceDataset)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "table4",
		Title:   "Strategy cost on " + ReferenceDataset + ": delayed (per ratio) vs multiple (per b)",
		Headers: []string{"N// (delayed)", "t-inf/t0", "min EJ", "d-cost", "|", "N//=b", "min EJ", "d-cost"},
	}
	type multiRow struct {
		b     int
		ej    float64
		delta float64
	}
	multiBs := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 20, 40, 60, 80, 100}
	multi := make([]multiRow, 0, len(multiBs))
	for _, b := range multiBs {
		_, ev, delta := cc.DeltaMultiple(b)
		multi = append(multi, multiRow{b: b, ej: ev.EJ, delta: delta})
	}
	ratios := append([]float64{1.05}, table3Ratios...)
	for i, ratio := range ratios {
		p, ev := core.OptimizeDelayedRatio(m, ratio)
		_ = p
		left := []string{fmtF(ev.Parallel, 2), fmtF(ratio, 2), fmtS(ev.EJ),
			fmtF(cc.Delta(ev.EJ, ev.Parallel), 2), "|"}
		if i < len(multi) {
			mr := multi[i]
			left = append(left, fmt.Sprintf("%d", mr.b), fmtS(mr.ej), fmtF(mr.delta, 1))
		} else {
			left = append(left, "", "", "")
		}
		t.AddRow(left...)
	}
	for i := len(ratios); i < len(multi); i++ {
		mr := multi[i]
		t.AddRow("", "", "", "", "|", fmt.Sprintf("%d", mr.b), fmtS(mr.ej), fmtF(mr.delta, 1))
	}
	t.Notes = append(t.Notes,
		"d-cost = N// * EJ(strategy) / EJ(single resubmission at optimum); values < 1 load the grid less than doing nothing clever")
	return t, nil
}

// Table5 reproduces Table 5: per-week Δcost-optimal delayed
// parameters, the resulting EJ, and the ±5 s stability probe for the
// weeks whose optimum beats 1.
func Table5(c *Context) (*Table, error) {
	t := &Table{
		ID:      "table5",
		Title:   "Minimal d-cost per period with optimal integer (t0, t-inf) and stability radius 5",
		Headers: []string{"week", "opt t0", "opt t-inf", "opt d-cost", "EJ", "max d-cost(r5)", "max d%"},
	}
	names := append([]string{}, trace.WeeklyNames()...)
	names = append(names, trace.AggregateName)
	for _, name := range names {
		res, err := c.CostOptimum(name)
		if err != nil {
			return nil, err
		}
		cc, err := c.Cost(name)
		if err != nil {
			return nil, err
		}
		row := []string{name, fmtS(res.Params.T0), fmtS(res.Params.TInf),
			fmtF(res.Delta, 3), fmtS(res.Eval.EJ)}
		if res.Delta < 1 {
			st := cc.CostStability(res.Params, 5)
			row = append(row, fmtF(st.MaxDelta, 3), fmtPct(st.MaxRelDiff))
		} else {
			row = append(row, "", "")
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"stability columns only probe optima below 1, matching the paper's Table 5")
	return t, nil
}

// Table6 reproduces Table 6: cross-week transfer of the optimal
// parameters — for every target week, Δcost and EJ obtained with each
// week's (and the pooled period's) optimal (t0, t∞), plus the maximal
// divergence and the divergence when reusing the previous week.
func Table6(c *Context) (*Table, error) {
	t := &Table{
		ID:      "table6",
		Title:   "Cross-week transfer of optimal (t0, t-inf): EJ and d-cost per parameter source",
		Headers: []string{"target week", "params from", "t0", "t-inf", "EJ", "d-cost", "max diff", "diff/prev"},
	}
	weeks := trace.WeeklyNames()
	sources := append([]string{}, weeks...)
	sources = append(sources, trace.AggregateName)

	// Precompute every source's optimal parameters.
	srcParams := make(map[string]core.DelayedParams)
	for _, s := range sources {
		res, err := c.CostOptimum(s)
		if err != nil {
			return nil, err
		}
		srcParams[s] = res.Params
	}

	for wi, target := range weeks {
		cc, err := c.Cost(target)
		if err != nil {
			return nil, err
		}
		own, err := c.CostOptimum(target)
		if err != nil {
			return nil, err
		}
		maxDiff := 0.0
		var prevDiff float64
		hasPrev := false
		type entry struct {
			src   string
			p     core.DelayedParams
			ej    float64
			delta float64
		}
		var entries []entry
		for _, src := range sources {
			p := srcParams[src]
			ev, delta, err := cc.DeltaDelayed(p)
			if err != nil {
				continue
			}
			entries = append(entries, entry{src, p, ev.EJ, delta})
			diff := (delta - own.Delta) / own.Delta
			if diff > maxDiff {
				maxDiff = diff
			}
			if wi > 0 && src == weeks[wi-1] {
				prevDiff = diff
				hasPrev = true
			}
		}
		for i, e := range entries {
			row := []string{"", e.src, fmtS(e.p.T0), fmtS(e.p.TInf), fmtS(e.ej), fmtF(e.delta, 3), "", ""}
			if i == 0 {
				row[0] = target
				row[6] = fmtPct(maxDiff)
				if hasPrev {
					row[7] = fmtPct(prevDiff)
				}
			}
			if e.src == target {
				row[1] = e.src + "*"
			}
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes,
		"* marks the target week's own optimum; max diff is the worst d-cost degradation across sources",
		"diff/prev reuses the previous week's parameters, the paper's practical deployment mode (section 7.2)")
	return t, nil
}

// sanity guard used by tests: all tables must carry at least this many
// rows to be meaningful reproductions.
var minRows = map[string]int{
	"table1": 13, "table2": 20, "table3": 10, "table4": 11, "table5": 12, "table6": 100,
}

func checkRows(t *Table) error {
	if want := minRows[t.ID]; len(t.Rows) < want {
		return fmt.Errorf("experiments: %s has %d rows, want >= %d", t.ID, len(t.Rows), want)
	}
	for _, r := range t.Rows {
		if len(r) != len(t.Headers) {
			return fmt.Errorf("experiments: %s row width %d != header width %d", t.ID, len(r), len(t.Headers))
		}
		for _, cell := range r {
			if cell == "NaN" || cell == "+Inf" || cell == "-Inf" {
				return fmt.Errorf("experiments: %s contains non-finite cell", t.ID)
			}
		}
	}
	return nil
}
