package trace

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"gridstrat/internal/optimize"
	"gridstrat/internal/stats"
)

// LatencyFloor is the hard minimum latency of the synthetic model,
// representing the incompressible middleware round trip (credential
// delegation, match-making, dispatch — the ≈10 machines a submission
// traverses). All body distributions are shifted by this floor.
const LatencyFloor = 120.0

// faultShare is the fraction of outliers that manifest as middleware
// faults (terminal errors detected before the timeout) rather than
// silent never-starting jobs. The latency model treats both
// identically; the split only adds realism to trace records.
const faultShare = 0.3

// probeSlots is the constant number of in-flight probes maintained by
// the monitoring process: the paper keeps the monitoring load constant
// by submitting a new probe whenever one completes.
const probeSlots = 25

// BodyDistribution returns a latency distribution for non-outlier
// probes whose truncated-at-timeout mean and standard deviation match
// the targets: a lognormal shifted by LatencyFloor and conditioned
// below timeout, calibrated by a derivative-free search on the raw
// moments.
func BodyDistribution(meanBody, stdBody, timeout float64) (stats.Distribution, error) {
	if meanBody <= LatencyFloor {
		return nil, fmt.Errorf("trace: body mean %v must exceed the %v s latency floor", meanBody, LatencyFloor)
	}
	if stdBody <= 0 {
		return nil, errors.New("trace: body std must be positive")
	}
	if timeout <= meanBody {
		return nil, fmt.Errorf("trace: timeout %v must exceed body mean %v", timeout, meanBody)
	}

	// Search the raw (pre-truncation) lognormal moments in log space
	// so that the *truncated* moments hit the targets. Truncation at
	// the timeout pulls both moments down, and for very heavy weeks
	// the raw std must greatly exceed the target, so a derivative-free
	// search is far more robust than fixed-point iteration here.
	build := func(lnM, lnS float64) (stats.TruncatedAbove, bool) {
		m := math.Exp(lnM)
		s := math.Exp(lnS)
		if m <= 0 || s <= 0 || math.IsInf(m, 0) || math.IsInf(s, 0) {
			return stats.TruncatedAbove{}, false
		}
		body := stats.NewShifted(stats.LogNormalFromMoments(m, s), LatencyFloor)
		if body.CDF(timeout) <= 1e-9 {
			return stats.TruncatedAbove{}, false
		}
		return stats.NewTruncatedAbove(body, timeout), true
	}
	objective := func(lnM, lnS float64) float64 {
		tr, ok := build(lnM, lnS)
		if !ok {
			return math.Inf(1)
		}
		em := (tr.Mean() - meanBody) / meanBody
		es := (stats.Std(tr) - stdBody) / stdBody
		return em*em + es*es
	}
	r := optimize.NelderMead(objective,
		math.Log(meanBody-LatencyFloor), math.Log(stdBody), 0.7, 1e-12, 400)
	if r.F > 1e-4 { // 1% combined relative error
		return nil, fmt.Errorf("trace: calibration did not converge for mean=%v std=%v (residual %v)",
			meanBody, stdBody, math.Sqrt(r.F))
	}
	dist, _ := build(r.X, r.Y)
	return dist, nil
}

// Synthesize generates a probe trace matching the spec: Probes records
// whose non-outlier latencies follow the calibrated body distribution,
// an outlier ratio of spec.Rho(), and submission times produced by a
// constant-in-flight probe stream.
func Synthesize(spec DatasetSpec) (*Trace, error) {
	if spec.Probes <= 0 {
		return nil, fmt.Errorf("trace: dataset %q has no probes", spec.Name)
	}
	body, err := BodyDistribution(spec.MeanBody, spec.StdBody, DefaultTimeout)
	if err != nil {
		return nil, fmt.Errorf("trace: dataset %q: %w", spec.Name, err)
	}
	rho := spec.Rho()
	if rho < 0 || rho >= 1 {
		return nil, fmt.Errorf("trace: dataset %q implies invalid outlier ratio %v", spec.Name, rho)
	}

	rng := rand.New(rand.NewSource(spec.Seed))
	records := make([]ProbeRecord, spec.Probes)
	var completed []int
	for i := range records {
		if rng.Float64() < rho {
			if rng.Float64() < faultShare {
				// A fault surfaces after a partial traversal of the
				// middleware chain.
				records[i] = ProbeRecord{
					Latency: LatencyFloor + rng.Float64()*(DefaultTimeout-LatencyFloor),
					Status:  StatusFault,
				}
			} else {
				records[i] = ProbeRecord{Latency: DefaultTimeout, Status: StatusOutlier}
			}
		} else {
			records[i].Status = StatusCompleted
			completed = append(completed, i)
		}
	}
	// Draw body latencies by stratified inversion: one uniform per
	// equal-probability stratum, in shuffled order. With only a few
	// hundred probes per week and heavy tails, plain i.i.d. sampling
	// would make the trace's sample mean/std wander far from the
	// Table 1 targets; stratification pins the empirical distribution
	// to the calibrated law while staying random within strata.
	m := len(completed)
	if m > 0 {
		perm := rng.Perm(m)
		for j, idx := range completed {
			u := (float64(perm[j]) + rng.Float64()) / float64(m)
			records[idx].Latency = body.Quantile(u)
		}
	}

	assignStream(records, DefaultTimeout)
	t := &Trace{Name: spec.Name, Timeout: DefaultTimeout, Records: records}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// assignStream sets IDs and submission times by replaying the paper's
// monitoring process: probeSlots probes are kept in flight and a new
// probe is submitted the moment one terminates. A probe occupies its
// slot for its latency (completed, near-zero run time), its fault
// detection time, or the full timeout (outliers).
func assignStream(records []ProbeRecord, timeout float64) {
	free := make([]float64, probeSlots) // next instant each slot is free
	for i := range records {
		// Earliest available slot.
		slot := 0
		for s := 1; s < len(free); s++ {
			if free[s] < free[slot] {
				slot = s
			}
		}
		records[i].ID = i
		records[i].Submit = free[slot]
		occupancy := records[i].Latency
		if records[i].Status == StatusOutlier {
			occupancy = timeout
		}
		free[slot] += occupancy
	}
}
