package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// csvHeader is the column layout of the CSV trace format.
var csvHeader = []string{"id", "submit_s", "latency_s", "status"}

// WriteCSV serializes the trace in a simple four-column CSV format
// with a header row. The trace name and timeout travel in a leading
// comment-style pseudo-record ("#name", name, timeout, "").
func WriteCSV(w io.Writer, t *Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"#name", t.Name, strconv.FormatFloat(t.Timeout, 'g', -1, 64), ""}); err != nil {
		return fmt.Errorf("trace: writing CSV preamble: %w", err)
	}
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: writing CSV header: %w", err)
	}
	for _, r := range t.Records {
		rec := []string{
			strconv.Itoa(r.ID),
			strconv.FormatFloat(r.Submit, 'f', 3, 64),
			strconv.FormatFloat(r.Latency, 'f', 3, 64),
			r.Status.String(),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: writing CSV record %d: %w", r.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4

	preamble, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV preamble: %w", err)
	}
	if preamble[0] != "#name" {
		return nil, fmt.Errorf("trace: missing #name preamble, got %q", preamble[0])
	}
	timeout, err := strconv.ParseFloat(preamble[2], 64)
	if err != nil {
		return nil, fmt.Errorf("trace: bad timeout %q: %w", preamble[2], err)
	}
	t := &Trace{Name: preamble[1], Timeout: timeout}

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV header: %w", err)
	}
	for i, col := range csvHeader {
		if header[i] != col {
			return nil, fmt.Errorf("trace: CSV header column %d is %q, want %q", i, header[i], col)
		}
	}

	for line := 3; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: CSV line %d: %w", line, err)
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("trace: CSV line %d id: %w", line, err)
		}
		submit, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: CSV line %d submit: %w", line, err)
		}
		lat, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: CSV line %d latency: %w", line, err)
		}
		st, err := ParseStatus(rec[3])
		if err != nil {
			return nil, fmt.Errorf("trace: CSV line %d: %w", line, err)
		}
		t.Records = append(t.Records, ProbeRecord{ID: id, Submit: submit, Latency: lat, Status: st})
	}
	return t, t.Validate()
}

// jsonTrace is the JSON wire form of a Trace.
type jsonTrace struct {
	Name    string       `json:"name"`
	Timeout float64      `json:"timeout_s"`
	Records []jsonRecord `json:"records"`
}

type jsonRecord struct {
	ID      int     `json:"id"`
	Submit  float64 `json:"submit_s"`
	Latency float64 `json:"latency_s"`
	Status  string  `json:"status"`
}

// WriteJSON serializes the trace as a single JSON document.
func WriteJSON(w io.Writer, t *Trace) error {
	jt := jsonTrace{Name: t.Name, Timeout: t.Timeout, Records: make([]jsonRecord, len(t.Records))}
	for i, r := range t.Records {
		jt.Records[i] = jsonRecord{ID: r.ID, Submit: r.Submit, Latency: r.Latency, Status: r.Status.String()}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(jt)
}

// ReadJSON parses a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var jt jsonTrace
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("trace: decoding JSON: %w", err)
	}
	t := &Trace{Name: jt.Name, Timeout: jt.Timeout, Records: make([]ProbeRecord, len(jt.Records))}
	for i, r := range jt.Records {
		st, err := ParseStatus(r.Status)
		if err != nil {
			return nil, fmt.Errorf("trace: JSON record %d: %w", i, err)
		}
		t.Records[i] = ProbeRecord{ID: r.ID, Submit: r.Submit, Latency: r.Latency, Status: st}
	}
	return t, t.Validate()
}
