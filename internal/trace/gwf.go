package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements a Grid-Workload-Format (GWF) flavored codec so
// traces interoperate with the Grid Workload Archive tooling ecosystem
// the paper points at (the Grid Observatory, §3.2). The subset used
// here carries the columns the latency models consume:
//
//	JobID SubmitTime WaitTime RunTime Status
//
// with '#' comment lines, whitespace separation and -1 for missing
// values. WaitTime is the grid latency R. Status follows the GWF
// convention: 1 = completed; 0 = failed (mapped to fault); -1 plus a
// WaitTime at/over the timeout marks a censored outlier; 5 = cancelled.

// WriteGWF serializes the trace in the GWF-flavored column format.
func WriteGWF(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# gridstrat GWF export\n")
	fmt.Fprintf(bw, "# Trace: %s\n", t.Name)
	fmt.Fprintf(bw, "# Timeout: %g\n", t.Timeout)
	fmt.Fprintf(bw, "# JobID SubmitTime WaitTime RunTime Status\n")
	for _, r := range t.Records {
		status := 1
		switch r.Status {
		case StatusCompleted:
			status = 1
		case StatusFault:
			status = 0
		case StatusOutlier:
			status = -1
		case StatusCancelled:
			status = 5
		}
		fmt.Fprintf(bw, "%d %.3f %.3f %.3f %d\n", r.ID, r.Submit, r.Latency, 0.0, status)
	}
	return bw.Flush()
}

// ReadGWF parses a GWF-flavored trace written by WriteGWF (or hand-
// assembled with the same columns). The timeout is taken from the
// "# Timeout:" header when present, DefaultTimeout otherwise.
func ReadGWF(r io.Reader) (*Trace, error) {
	t := &Trace{Name: "gwf", Timeout: DefaultTimeout}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if v, ok := strings.CutPrefix(text, "# Trace:"); ok {
				t.Name = strings.TrimSpace(v)
			}
			if v, ok := strings.CutPrefix(text, "# Timeout:"); ok {
				to, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
				if err != nil {
					return nil, fmt.Errorf("trace: GWF line %d: bad timeout: %w", line, err)
				}
				t.Timeout = to
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 5 {
			return nil, fmt.Errorf("trace: GWF line %d: %d columns, want >= 5", line, len(fields))
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("trace: GWF line %d job id: %w", line, err)
		}
		submit, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: GWF line %d submit: %w", line, err)
		}
		wait, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: GWF line %d wait: %w", line, err)
		}
		statusCode, err := strconv.Atoi(fields[4])
		if err != nil {
			return nil, fmt.Errorf("trace: GWF line %d status: %w", line, err)
		}
		var status Status
		switch statusCode {
		case 1:
			status = StatusCompleted
		case 0:
			status = StatusFault
		case -1:
			status = StatusOutlier
		case 5:
			status = StatusCancelled
		default:
			return nil, fmt.Errorf("trace: GWF line %d: unknown status code %d", line, statusCode)
		}
		if wait < 0 { // GWF convention: -1 means missing
			wait = t.Timeout
			if status == StatusCompleted {
				status = StatusOutlier
			}
		}
		t.Records = append(t.Records, ProbeRecord{ID: id, Submit: submit, Latency: wait, Status: status})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading GWF: %w", err)
	}
	// Clamp censored outliers to the timeout for Validate.
	for i := range t.Records {
		if t.Records[i].Status == StatusOutlier && t.Records[i].Latency > t.Timeout {
			t.Records[i].Latency = t.Timeout
		}
	}
	return t, t.Validate()
}
