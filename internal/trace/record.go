// Package trace models probe-job workload traces in the style of the
// EGEE measurements used by "Modeling User Submission Strategies on
// Production Grids" (HPDC'09): probe jobs of near-zero run time whose
// round-trip duration is pure grid latency, a fixed 10,000-second
// timeout beyond which a probe is an outlier, and per-week trace sets.
//
// Since the original probe logs are not public, the package also ships
// a synthetic generator calibrated per dataset to the summary
// statistics the paper reports (Table 1): the non-outlier latency mean
// and standard deviation, and the outlier ratio backed out of the
// censored-mean column.
package trace

import (
	"errors"
	"fmt"
	"math"

	"gridstrat/internal/stats"
)

// DefaultTimeout is the probe timeout used throughout the paper:
// 10,000 seconds, far above the ≈500 s average latency.
const DefaultTimeout = 10000.0

// Status is the terminal state of a probe job.
type Status int

const (
	// StatusCompleted means the probe ran; Latency is the grid latency.
	StatusCompleted Status = iota
	// StatusOutlier means the probe exceeded the trace timeout and was
	// canceled; Latency holds the censoring bound (the timeout).
	StatusOutlier
	// StatusFault means the middleware reported a terminal error
	// before the timeout; treated as an outlier by the latency model.
	StatusFault
	// StatusCancelled means the client canceled the probe (used by
	// strategy simulations, not by raw monitoring traces).
	StatusCancelled
)

var statusNames = map[Status]string{
	StatusCompleted: "completed",
	StatusOutlier:   "outlier",
	StatusFault:     "fault",
	StatusCancelled: "cancelled",
}

func (s Status) String() string {
	if n, ok := statusNames[s]; ok {
		return n
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// ParseStatus converts a status name back to its value.
func ParseStatus(s string) (Status, error) {
	for k, v := range statusNames {
		if v == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown status %q", s)
}

// ProbeRecord is one probe job observation.
type ProbeRecord struct {
	ID      int     // unique within the trace
	Submit  float64 // submission instant, seconds since trace start
	Latency float64 // grid latency (seconds); censored at timeout for outliers
	Status  Status
}

// Trace is a set of probe observations collected under one timeout.
type Trace struct {
	Name    string
	Timeout float64 // censoring bound; DefaultTimeout in the paper
	Records []ProbeRecord
}

// ErrNoCompleted is returned when an operation needs at least one
// successfully completed probe and the trace has none.
var ErrNoCompleted = errors.New("trace: no completed probes")

// Len returns the number of probe records.
func (t *Trace) Len() int { return len(t.Records) }

// Latencies returns the latencies of completed (non-outlier) probes.
func (t *Trace) Latencies() []float64 {
	var out []float64
	for _, r := range t.Records {
		if r.Status == StatusCompleted {
			out = append(out, r.Latency)
		}
	}
	return out
}

// CensoredLatencies returns one duration per probe with outliers and
// faults replaced by the trace timeout — the sample underlying the
// paper's "mean with 10⁵" lower bound.
func (t *Trace) CensoredLatencies() []float64 {
	out := make([]float64, 0, len(t.Records))
	for _, r := range t.Records {
		switch r.Status {
		case StatusCompleted:
			out = append(out, math.Min(r.Latency, t.Timeout))
		case StatusOutlier, StatusFault:
			out = append(out, t.Timeout)
		}
	}
	return out
}

// OutlierRatio returns ρ: the fraction of probes that are outliers or
// faults among all terminally-observed probes (cancelled probes are
// excluded — they carry no latency information).
func (t *Trace) OutlierRatio() float64 {
	var outliers, total int
	for _, r := range t.Records {
		switch r.Status {
		case StatusCompleted:
			total++
		case StatusOutlier, StatusFault:
			total++
			outliers++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(outliers) / float64(total)
}

// ECDF returns the empirical CDF FR of completed-probe latencies.
func (t *Trace) ECDF() (*stats.ECDF, error) {
	lat := t.Latencies()
	if len(lat) == 0 {
		return nil, ErrNoCompleted
	}
	return stats.NewECDF(lat)
}

// Stats summarizes a trace with the quantities of the paper's Table 1.
type Stats struct {
	Name         string
	Probes       int
	Completed    int
	Outliers     int
	Rho          float64 // outlier ratio
	MeanBody     float64 // mean of latencies < timeout ("mean < 10⁵")
	StdBody      float64 // std of latencies < timeout (σR)
	MeanCensored float64 // censored mean ("mean with 10⁵")
	Median       float64
}

// ComputeStats derives Table-1-style summary statistics.
func (t *Trace) ComputeStats() Stats {
	s := Stats{Name: t.Name, Probes: len(t.Records)}
	lat := t.Latencies()
	s.Completed = len(lat)
	for _, r := range t.Records {
		if r.Status == StatusOutlier || r.Status == StatusFault {
			s.Outliers++
		}
	}
	s.Rho = t.OutlierRatio()
	if len(lat) > 0 {
		s.MeanBody = stats.Mean(lat)
		s.StdBody = stats.StdDev(lat)
		sum := stats.Summarize(lat)
		s.Median = sum.Median
	}
	cens := t.CensoredLatencies()
	if len(cens) > 0 {
		s.MeanCensored = stats.Mean(cens)
	}
	return s
}

// Merge concatenates traces into a new one named name. Record IDs are
// renumbered; submit times are kept (merged traces represent pooled
// observation periods, as the paper's 2007/08 row pools 11 weeks). All
// inputs must share the same timeout.
func Merge(name string, traces ...*Trace) (*Trace, error) {
	if len(traces) == 0 {
		return nil, errors.New("trace: nothing to merge")
	}
	out := &Trace{Name: name, Timeout: traces[0].Timeout}
	id := 0
	for _, tr := range traces {
		if tr.Timeout != out.Timeout {
			return nil, fmt.Errorf("trace: timeout mismatch merging %q (%v vs %v)",
				tr.Name, tr.Timeout, out.Timeout)
		}
		for _, r := range tr.Records {
			r.ID = id
			id++
			out.Records = append(out.Records, r)
		}
	}
	return out, nil
}

// Validate checks internal consistency: non-negative latencies and
// submit times, outliers censored at the timeout, unique IDs.
func (t *Trace) Validate() error {
	if t.Timeout <= 0 {
		return fmt.Errorf("trace %q: non-positive timeout %v", t.Name, t.Timeout)
	}
	seen := make(map[int]bool, len(t.Records))
	for i, r := range t.Records {
		if seen[r.ID] {
			return fmt.Errorf("trace %q: duplicate record ID %d", t.Name, r.ID)
		}
		seen[r.ID] = true
		if r.Latency < 0 || math.IsNaN(r.Latency) {
			return fmt.Errorf("trace %q record %d: invalid latency %v", t.Name, i, r.Latency)
		}
		if r.Submit < 0 || math.IsNaN(r.Submit) {
			return fmt.Errorf("trace %q record %d: invalid submit time %v", t.Name, i, r.Submit)
		}
		if r.Status == StatusCompleted && r.Latency > t.Timeout {
			return fmt.Errorf("trace %q record %d: completed latency %v exceeds timeout %v",
				t.Name, i, r.Latency, t.Timeout)
		}
	}
	return nil
}
