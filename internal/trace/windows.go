package trace

import (
	"fmt"
	"math"
	"sort"

	"gridstrat/internal/stats"
)

// WindowStats splits the trace into consecutive submit-time windows of
// the given width (seconds) and returns Table-1-style statistics per
// window. Windows with no terminal probes are skipped. This is the
// raw material of the non-stationarity analysis: production-grid load
// patterns "evolve quickly" (§3.1), and windowed statistics show how
// much.
//
// Ordering contract: the sweep consumes records in ascending submit
// order. A trace whose records already are — the canonical order every
// Rolling snapshot and ingestion rebuild produces — is read in place;
// only out-of-order traces pay the defensive copy and sort. The input
// trace is never modified either way.
func WindowStats(t *Trace, window float64) ([]Stats, error) {
	if window <= 0 {
		return nil, fmt.Errorf("trace: non-positive window %v", window)
	}
	if len(t.Records) == 0 {
		return nil, ErrNoCompleted
	}
	recs := t.Records
	if !submitOrdered(recs) {
		recs = append([]ProbeRecord(nil), t.Records...)
		sort.Slice(recs, func(i, j int) bool { return recs[i].Submit < recs[j].Submit })
	}

	var out []Stats
	start := recs[0].Submit
	var cur []ProbeRecord
	flush := func(winStart float64) {
		if len(cur) == 0 {
			return
		}
		w := &Trace{Name: fmt.Sprintf("%s[%.0fs]", t.Name, winStart), Timeout: t.Timeout, Records: cur}
		st := w.ComputeStats()
		if st.Completed > 0 {
			out = append(out, st)
		}
		cur = nil
	}
	winStart := start
	for _, r := range recs {
		for r.Submit >= winStart+window {
			flush(winStart)
			winStart += window
		}
		cur = append(cur, r)
	}
	flush(winStart)
	if len(out) == 0 {
		return nil, ErrNoCompleted
	}
	return out, nil
}

// LastWindow returns the sub-trace of records whose submit time falls
// inside the trailing window of the given width: every record with
// Submit >= max(Submit) - width. It is the rolling-window primitive of
// the continuous tuning loop (§7.2 run online): append fresh probe
// observations, keep only the trailing window, rebuild the latency
// model. Record IDs and submit times are preserved; the input trace is
// not modified. An empty trace yields ErrNoCompleted.
func LastWindow(t *Trace, width float64) (*Trace, error) {
	if width <= 0 || math.IsNaN(width) {
		return nil, fmt.Errorf("trace: non-positive window %v", width)
	}
	if len(t.Records) == 0 {
		return nil, ErrNoCompleted
	}
	maxSubmit := t.Records[0].Submit
	for _, r := range t.Records[1:] {
		if r.Submit > maxSubmit {
			maxSubmit = r.Submit
		}
	}
	cutoff := maxSubmit - width
	out := &Trace{Name: t.Name, Timeout: t.Timeout}
	for _, r := range t.Records {
		if r.Submit >= cutoff {
			out.Records = append(out.Records, r)
		}
	}
	return out, nil
}

// StationarityReport summarizes how stationary a trace's latency
// process is over submit time.
type StationarityReport struct {
	Windows    int
	MeanDrift  float64           // (max-min)/median of window means
	RhoDrift   float64           // max-min of window outlier ratios
	MeanTrend  stats.TrendResult // Mann–Kendall on window means
	TrendSlope float64           // Theil–Sen slope of window means (s per window)
}

// AnalyzeStationarity computes the windowed drift/trend report.
func AnalyzeStationarity(t *Trace, window float64) (StationarityReport, error) {
	ws, err := WindowStats(t, window)
	if err != nil {
		return StationarityReport{}, err
	}
	means := make([]float64, len(ws))
	minM, maxM := math.Inf(1), math.Inf(-1)
	minR, maxR := math.Inf(1), math.Inf(-1)
	for i, w := range ws {
		means[i] = w.MeanBody
		minM = math.Min(minM, w.MeanBody)
		maxM = math.Max(maxM, w.MeanBody)
		minR = math.Min(minR, w.Rho)
		maxR = math.Max(maxR, w.Rho)
	}
	med := stats.Summarize(means).Median
	rep := StationarityReport{
		Windows:    len(ws),
		RhoDrift:   maxR - minR,
		MeanTrend:  stats.MannKendall(means),
		TrendSlope: stats.SenSlope(means),
	}
	if med > 0 {
		rep.MeanDrift = (maxM - minM) / med
	}
	return rep, nil
}
