package trace

import (
	"math"
	"testing"
)

func sampleTrace() *Trace {
	return &Trace{
		Name:    "test",
		Timeout: 1000,
		Records: []ProbeRecord{
			{ID: 0, Submit: 0, Latency: 100, Status: StatusCompleted},
			{ID: 1, Submit: 10, Latency: 200, Status: StatusCompleted},
			{ID: 2, Submit: 20, Latency: 1000, Status: StatusOutlier},
			{ID: 3, Submit: 30, Latency: 300, Status: StatusCompleted},
			{ID: 4, Submit: 40, Latency: 50, Status: StatusCancelled},
			{ID: 5, Submit: 50, Latency: 400, Status: StatusFault},
		},
	}
}

func TestLatenciesFiltersCompleted(t *testing.T) {
	tr := sampleTrace()
	lat := tr.Latencies()
	if len(lat) != 3 {
		t.Fatalf("got %d latencies, want 3", len(lat))
	}
	want := []float64{100, 200, 300}
	for i, v := range lat {
		if v != want[i] {
			t.Fatalf("latencies = %v", lat)
		}
	}
}

func TestCensoredLatencies(t *testing.T) {
	tr := sampleTrace()
	cens := tr.CensoredLatencies()
	// Completed (3) + outlier (1) + fault (1); cancelled excluded.
	if len(cens) != 5 {
		t.Fatalf("got %d censored, want 5", len(cens))
	}
	sum := 0.0
	for _, v := range cens {
		if v > tr.Timeout {
			t.Fatalf("censored value %v above timeout", v)
		}
		sum += v
	}
	if sum != 100+200+1000+300+1000 {
		t.Fatalf("censored sum = %v", sum)
	}
}

func TestOutlierRatio(t *testing.T) {
	tr := sampleTrace()
	// 2 outliers (outlier+fault) over 5 terminal probes.
	if got := tr.OutlierRatio(); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("rho = %v, want 0.4", got)
	}
	empty := &Trace{Name: "empty", Timeout: 100}
	if empty.OutlierRatio() != 0 {
		t.Fatal("empty trace rho should be 0")
	}
}

func TestComputeStats(t *testing.T) {
	tr := sampleTrace()
	st := tr.ComputeStats()
	if st.Probes != 6 || st.Completed != 3 || st.Outliers != 2 {
		t.Fatalf("counts wrong: %+v", st)
	}
	if math.Abs(st.MeanBody-200) > 1e-12 {
		t.Fatalf("mean body = %v", st.MeanBody)
	}
	if math.Abs(st.MeanCensored-2600.0/5) > 1e-12 {
		t.Fatalf("mean censored = %v", st.MeanCensored)
	}
	if math.Abs(st.Median-200) > 1e-12 {
		t.Fatalf("median = %v", st.Median)
	}
}

func TestECDFFromTrace(t *testing.T) {
	tr := sampleTrace()
	e, err := tr.ECDF()
	if err != nil {
		t.Fatal(err)
	}
	if e.N() != 3 {
		t.Fatalf("ECDF over %d points", e.N())
	}
	empty := &Trace{Name: "none", Timeout: 10,
		Records: []ProbeRecord{{ID: 0, Latency: 10, Status: StatusOutlier}}}
	if _, err := empty.ECDF(); err != ErrNoCompleted {
		t.Fatalf("want ErrNoCompleted, got %v", err)
	}
}

func TestValidate(t *testing.T) {
	good := sampleTrace()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := sampleTrace()
	bad.Records[1].ID = 0
	if bad.Validate() == nil {
		t.Fatal("duplicate ID should fail")
	}
	bad = sampleTrace()
	bad.Records[0].Latency = -5
	if bad.Validate() == nil {
		t.Fatal("negative latency should fail")
	}
	bad = sampleTrace()
	bad.Records[0].Latency = 5000 // completed above timeout
	if bad.Validate() == nil {
		t.Fatal("completed latency above timeout should fail")
	}
	bad = sampleTrace()
	bad.Timeout = 0
	if bad.Validate() == nil {
		t.Fatal("zero timeout should fail")
	}
	bad = sampleTrace()
	bad.Records[2].Submit = math.NaN()
	if bad.Validate() == nil {
		t.Fatal("NaN submit should fail")
	}
}

func TestMerge(t *testing.T) {
	a := sampleTrace()
	b := sampleTrace()
	m, err := Merge("merged", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 12 {
		t.Fatalf("merged len %d", m.Len())
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	c := sampleTrace()
	c.Timeout = 99
	if _, err := Merge("bad", a, c); err == nil {
		t.Fatal("timeout mismatch should fail")
	}
	if _, err := Merge("empty"); err == nil {
		t.Fatal("empty merge should fail")
	}
}

func TestStatusRoundTrip(t *testing.T) {
	for _, s := range []Status{StatusCompleted, StatusOutlier, StatusFault, StatusCancelled} {
		got, err := ParseStatus(s.String())
		if err != nil || got != s {
			t.Fatalf("round trip %v: got %v err %v", s, got, err)
		}
	}
	if _, err := ParseStatus("bogus"); err == nil {
		t.Fatal("bogus status should fail")
	}
	if Status(99).String() != "status(99)" {
		t.Fatal("unknown status format")
	}
}
