package trace

import (
	"math"
	"testing"
)

func TestWindowStatsSplits(t *testing.T) {
	tr := &Trace{Name: "w", Timeout: 1000}
	// Three windows of 100 s with 2 completed probes each.
	for i := 0; i < 6; i++ {
		tr.Records = append(tr.Records, ProbeRecord{
			ID:      i,
			Submit:  float64(i) * 50, // 0,50 | 100,150 | 200,250
			Latency: 100 + float64(i)*10,
			Status:  StatusCompleted,
		})
	}
	ws, err := WindowStats(tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("%d windows, want 3", len(ws))
	}
	for _, w := range ws {
		if w.Completed != 2 {
			t.Fatalf("window %s has %d completed", w.Name, w.Completed)
		}
	}
	// Means increase window over window by construction.
	if !(ws[0].MeanBody < ws[1].MeanBody && ws[1].MeanBody < ws[2].MeanBody) {
		t.Fatalf("window means out of order: %v %v %v", ws[0].MeanBody, ws[1].MeanBody, ws[2].MeanBody)
	}
}

func TestWindowStatsErrors(t *testing.T) {
	tr := sampleTrace()
	if _, err := WindowStats(tr, 0); err == nil {
		t.Fatal("zero window should fail")
	}
	empty := &Trace{Name: "e", Timeout: 10}
	if _, err := WindowStats(empty, 100); err == nil {
		t.Fatal("empty trace should fail")
	}
	allCancelled := &Trace{Name: "c", Timeout: 10, Records: []ProbeRecord{
		{ID: 0, Latency: 5, Status: StatusCancelled},
	}}
	if _, err := WindowStats(allCancelled, 100); err == nil {
		t.Fatal("no terminal probes should fail")
	}
}

func TestWindowStatsSkipsEmptyWindows(t *testing.T) {
	tr := &Trace{Name: "gap", Timeout: 1000, Records: []ProbeRecord{
		{ID: 0, Submit: 0, Latency: 100, Status: StatusCompleted},
		{ID: 1, Submit: 5000, Latency: 200, Status: StatusCompleted},
	}}
	ws, err := WindowStats(tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("%d windows, want 2 (gaps skipped)", len(ws))
	}
}

func TestLastWindow(t *testing.T) {
	tr := &Trace{Name: "roll", Timeout: 1000}
	for i := 0; i < 10; i++ {
		tr.Records = append(tr.Records, ProbeRecord{
			ID: i, Submit: float64(i) * 100, Latency: 50, Status: StatusCompleted,
		})
	}
	// max submit = 900; width 250 keeps submits >= 650: 700, 800, 900.
	w, err := LastWindow(tr, 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Records) != 3 {
		t.Fatalf("%d records in window, want 3", len(w.Records))
	}
	for _, r := range w.Records {
		if r.Submit < 650 {
			t.Fatalf("record %d (submit %v) outside window", r.ID, r.Submit)
		}
	}
	if len(tr.Records) != 10 {
		t.Fatalf("input trace mutated: %d records", len(tr.Records))
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}

	// A width covering everything keeps everything.
	all, err := LastWindow(tr, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Records) != 10 {
		t.Fatalf("%d records, want all 10", len(all.Records))
	}

	if _, err := LastWindow(tr, 0); err == nil {
		t.Fatal("zero width should fail")
	}
	if _, err := LastWindow(&Trace{Name: "e", Timeout: 10}, 100); err == nil {
		t.Fatal("empty trace should fail")
	}
}

func TestAnalyzeStationaritySyntheticTraces(t *testing.T) {
	// The synthetic paper traces are i.i.d. by construction: windowed
	// means must show no strong monotone trend.
	spec, err := LookupDataset("2006-IX")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The campaign spans ≈1 day of simulated submissions; 2 h windows
	// give ≈11 usable windows.
	rep, err := AnalyzeStationarity(tr, 2*3600)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Windows < 5 {
		t.Fatalf("only %d windows", rep.Windows)
	}
	if rep.MeanTrend.PValue < 0.001 {
		t.Fatalf("spurious strong trend detected: %+v", rep.MeanTrend)
	}
	if rep.MeanDrift < 0 || math.IsNaN(rep.MeanDrift) {
		t.Fatalf("bad drift %v", rep.MeanDrift)
	}
}

func TestAnalyzeStationarityDetectsDrift(t *testing.T) {
	// A trace whose latency grows with submit time must be flagged.
	tr := &Trace{Name: "drift", Timeout: 100000}
	for i := 0; i < 600; i++ {
		tr.Records = append(tr.Records, ProbeRecord{
			ID:      i,
			Submit:  float64(i) * 60,
			Latency: 100 + float64(i), // strictly growing
			Status:  StatusCompleted,
		})
	}
	rep, err := AnalyzeStationarity(tr, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanTrend.PValue > 0.01 {
		t.Fatalf("failed to detect drift: %+v", rep.MeanTrend)
	}
	if rep.TrendSlope <= 0 {
		t.Fatalf("slope %v should be positive", rep.TrendSlope)
	}
}
