package trace

import (
	"fmt"
	"math"
)

// DatasetSpec describes one of the paper's trace sets by the summary
// statistics Table 1 reports, from which a synthetic trace with the
// same latency profile is generated.
//
// The outlier ratio is not printed in the paper but is implied by the
// censored-mean column: mean_with = (1-ρ)·mean_less + ρ·timeout, so
// ρ = (mean_with − mean_less) / (timeout − mean_less).
type DatasetSpec struct {
	Name         string
	MeanBody     float64 // mean of latencies below timeout, seconds ("mean < 10⁵")
	StdBody      float64 // σR of latencies below timeout
	MeanCensored float64 // censored mean ("mean with 10⁵")
	Probes       int     // number of probe jobs to synthesize
	Seed         int64   // deterministic generator seed
}

// Rho returns the outlier ratio implied by the censored mean.
func (s DatasetSpec) Rho() float64 {
	return (s.MeanCensored - s.MeanBody) / (DefaultTimeout - s.MeanBody)
}

// AggregateName is the pooled 2007–2008 dataset built by merging the
// 11 weekly traces (the paper's "2007/08" row).
const AggregateName = "2007/08"

// PaperDatasets lists the 12 individually-collected trace sets of the
// paper (2006-IX plus 11 weekly sets from late 2007 to early 2008)
// with the Table 1 statistics they must match. Probe counts are chosen
// to total 10,893 across all sets, as the paper reports.
var PaperDatasets = []DatasetSpec{
	{Name: "2006-IX", MeanBody: 570, StdBody: 886, MeanCensored: 1042, Probes: 1993, Seed: 2006_09},
	{Name: "2007-36", MeanBody: 446, StdBody: 748, MeanCensored: 2739, Probes: 820, Seed: 2007_36},
	{Name: "2007-37", MeanBody: 506, StdBody: 848, MeanCensored: 3639, Probes: 790, Seed: 2007_37},
	{Name: "2007-38", MeanBody: 447, StdBody: 682, MeanCensored: 2739, Probes: 805, Seed: 2007_38},
	{Name: "2007-39", MeanBody: 489, StdBody: 741, MeanCensored: 3533, Probes: 810, Seed: 2007_39},
	{Name: "2007-50", MeanBody: 660, StdBody: 1046, MeanCensored: 2341, Probes: 795, Seed: 2007_50},
	{Name: "2007-51", MeanBody: 478, StdBody: 510, MeanCensored: 1716, Probes: 830, Seed: 2007_51},
	{Name: "2007-52", MeanBody: 443, StdBody: 582, MeanCensored: 1685, Probes: 815, Seed: 2007_52},
	{Name: "2007-53", MeanBody: 449, StdBody: 678, MeanCensored: 1977, Probes: 800, Seed: 2007_53},
	{Name: "2008-01", MeanBody: 434, StdBody: 317, MeanCensored: 1678, Probes: 825, Seed: 2008_01},
	{Name: "2008-02", MeanBody: 418, StdBody: 547, MeanCensored: 1568, Probes: 810, Seed: 2008_02},
	{Name: "2008-03", MeanBody: 538, StdBody: 1196, MeanCensored: 1484, Probes: 800, Seed: 2008_03},
}

// WeeklyNames lists the 11 weekly dataset names in chronological
// order (excluding 2006-IX), i.e. the rows of the paper's Tables 5–6.
func WeeklyNames() []string {
	var out []string
	for _, s := range PaperDatasets {
		if s.Name != "2006-IX" {
			out = append(out, s.Name)
		}
	}
	return out
}

// LookupDataset returns the spec with the given name.
func LookupDataset(name string) (DatasetSpec, error) {
	for _, s := range PaperDatasets {
		if s.Name == name {
			return s, nil
		}
	}
	return DatasetSpec{}, fmt.Errorf("trace: unknown dataset %q", name)
}

// Set is a named collection of traces keyed by dataset name,
// including the pooled aggregate.
type Set struct {
	Traces map[string]*Trace
	Order  []string // stable iteration order: 2006-IX, aggregate, weeks
}

// Get returns the named trace or an error.
func (s *Set) Get(name string) (*Trace, error) {
	t, ok := s.Traces[name]
	if !ok {
		return nil, fmt.Errorf("trace: set has no dataset %q", name)
	}
	return t, nil
}

// SynthesizeAll generates every paper dataset plus the pooled
// 2007/08 aggregate. Generation is deterministic (fixed per-dataset
// seeds).
func SynthesizeAll() (*Set, error) {
	set := &Set{Traces: make(map[string]*Trace)}
	var weekly []*Trace
	for _, spec := range PaperDatasets {
		t, err := Synthesize(spec)
		if err != nil {
			return nil, fmt.Errorf("trace: synthesizing %s: %w", spec.Name, err)
		}
		set.Traces[spec.Name] = t
		if spec.Name != "2006-IX" {
			weekly = append(weekly, t)
		}
	}
	agg, err := Merge(AggregateName, weekly...)
	if err != nil {
		return nil, err
	}
	set.Traces[AggregateName] = agg

	set.Order = append(set.Order, "2006-IX", AggregateName)
	set.Order = append(set.Order, WeeklyNames()...)
	return set, nil
}

// CalibrationError quantifies how far a synthesized trace's statistics
// landed from its spec, as relative errors.
type CalibrationError struct {
	MeanBody, StdBody, Rho float64
}

// CheckCalibration compares a trace against its spec.
func CheckCalibration(t *Trace, spec DatasetSpec) CalibrationError {
	st := t.ComputeStats()
	relErr := func(got, want float64) float64 {
		if want == 0 {
			return math.Abs(got)
		}
		return math.Abs(got-want) / want
	}
	return CalibrationError{
		MeanBody: relErr(st.MeanBody, spec.MeanBody),
		StdBody:  relErr(st.StdBody, spec.StdBody),
		Rho:      relErr(st.Rho, spec.Rho()),
	}
}
